// The redesigned pipeline entry points: every stage of the paper's
// pipeline is callable with a context.Context and functional Options,
// so callers can cancel long solves, tune the allocator and scheduler,
// and attach observability without widening any signature again.
//
//	rec := paradigm.NewEventRecorder()
//	reg := paradigm.NewMetrics()
//	res, err := paradigm.RunContext(ctx, p, m, cal, 64,
//	    paradigm.WithObserver(paradigm.MultiObserver(rec, paradigm.NewMetricsObserver(reg))),
//	    paradigm.WithScheduleOptions(paradigm.ScheduleOptions{PB: 8}))
//
// The historical positional signatures (Run, Allocate, Calibrate,
// BuildSchedule) remain as thin wrappers over these entry points. With
// no observer attached the instrumented pipeline pays one nil check per
// would-be event — see the Run benchmark pair in bench_test.go.
package paradigm

import (
	"context"
	"errors"

	"paradigm/internal/alloc"
	"paradigm/internal/codegen"
	"paradigm/internal/errs"
	"paradigm/internal/obs"
	"paradigm/internal/sched"
	"paradigm/internal/sim"
	"paradigm/internal/trainsets"
)

// Observability re-exports: the event/metrics layer of internal/obs.
type (
	// Observer receives structured pipeline events; see the Event kinds
	// in internal/obs. Implementations must be safe for concurrent use.
	Observer = obs.Observer
	// Event is one structured pipeline event.
	Event = obs.Event
	// Metrics is the zero-dependency metrics registry the pipeline
	// reports into (counters, gauges, histograms with a deterministic
	// text encoding).
	Metrics = obs.Registry
	// MetricsSnapshot is a detached, text-encodable registry snapshot.
	MetricsSnapshot = obs.Snapshot
	// EventRecorder collects every event in memory (for the trace
	// exporter and tests).
	EventRecorder = obs.Recorder
	// AllocOptions tunes the convex allocation (annealing schedule,
	// multi-start, ablations, observer).
	AllocOptions = alloc.Options
)

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewMetricsObserver returns an Observer folding pipeline events into r
// under the canonical metric names (DESIGN.md §8).
func NewMetricsObserver(r *Metrics) Observer { return obs.MetricsObserver(r) }

// NewEventRecorder returns an empty event recorder.
func NewEventRecorder() *EventRecorder { return obs.NewRecorder() }

// MultiObserver fans events out to every non-nil observer; with none it
// returns nil, preserving the uninstrumented fast path.
func MultiObserver(os ...Observer) Observer { return obs.Multi(os...) }

// Typed sentinel errors. Every layer wraps its failures over these with
// %w, so callers can dispatch with errors.Is regardless of which stage
// produced the failure.
var (
	// ErrInfeasible marks a problem that cannot be solved as posed
	// (non-positive system size, PB outside [1, p] or not a power of
	// two, allocation entries outside their box).
	ErrInfeasible = errs.ErrInfeasible
	// ErrBadGraph marks a structurally invalid MDG or source program.
	ErrBadGraph = errs.ErrBadGraph
	// ErrUnsupportedTransfer marks a transfer kind outside the modeled
	// regimes.
	ErrUnsupportedTransfer = errs.ErrUnsupportedTransfer
	// ErrDeadlock marks a simulated run the watchdog stopped with no
	// runnable instruction and no fault implicated (a scheduling or
	// code-generation bug). The full diagnosis is in the *HaltError.
	ErrDeadlock = errs.ErrDeadlock
	// ErrProcessorLost marks a run halted by fail-stop processor death.
	ErrProcessorLost = errs.ErrProcessorLost
	// ErrMessageLost marks a run halted by a receiver waiting on a
	// dropped message.
	ErrMessageLost = errs.ErrMessageLost
)

// Option configures one pipeline call.
type Option func(*config)

type config struct {
	observer Observer
	sched    ScheduleOptions
	alloc    AllocOptions
	// faults is the fault schedule handed to the simulator (nil: none).
	faults *FaultPlan
	// recoverMax bounds failure-aware rescheduling attempts (0: off).
	recoverMax int
	// deadline is the simulator's virtual-time watchdog bound (0: off).
	deadline float64
}

// WithObserver attaches an observer to every instrumented stage of the
// call: solver stages, PSA decisions, simulated messages and processor
// accounting, and calibration fits.
func WithObserver(o Observer) Option {
	return func(c *config) { c.observer = o }
}

// WithScheduleOptions sets the PSA tuning (PB override, rounding
// ablation, ready-queue policy) for the scheduling stage.
func WithScheduleOptions(so ScheduleOptions) Option {
	return func(c *config) { c.sched = so }
}

// WithAllocOptions sets the convex-allocation tuning (annealing
// schedule, multi-start width, transfer ablation).
func WithAllocOptions(ao AllocOptions) Option {
	return func(c *config) { c.alloc = ao }
}

func newConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	// The call-level observer reaches each stage through its options;
	// stage-specific observers set via With*Options take precedence.
	if c.sched.Observer == nil {
		c.sched.Observer = c.observer
	}
	if c.alloc.Observer == nil {
		c.alloc.Observer = c.observer
	}
	return c
}

// CalibrateContext runs the training-sets calibration with cancellation
// and instrumentation: the transfer sweep honours ctx, and every
// completed fit emits a CalibFit event to the observer.
func CalibrateContext(ctx context.Context, m Machine, opts ...Option) (*Calibration, error) {
	c := newConfig(opts)
	return trainsets.CalibrateCtx(ctx, m, c.observer)
}

// AllocateContext solves the convex program of Section 2 with
// cancellation (checked between annealed temperature stages) and
// solver-convergence events.
func AllocateContext(ctx context.Context, g *Graph, model Model, procs int, opts ...Option) (Allocation, error) {
	c := newConfig(opts)
	return alloc.SolveCtx(ctx, g, model, procs, c.alloc)
}

// BuildScheduleContext runs the PSA of Section 3 on a continuous
// allocation, emitting PSARound and PSAPick events to the observer.
func BuildScheduleContext(ctx context.Context, g *Graph, model Model, allocation []float64, procs int, opts ...Option) (*Schedule, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := newConfig(opts)
	return sched.Run(g, model, allocation, procs, c.sched)
}

// ExecuteContext lowers the program under the schedule into MPMD
// instruction streams and simulates them, with cancellation (checked on
// every simulator scheduler sweep) and per-message/per-processor events.
func ExecuteContext(ctx context.Context, p *Program, s *Schedule, m Machine, opts ...Option) (*SimResult, error) {
	c := newConfig(opts)
	streams, err := codegen.Generate(p, s)
	if err != nil {
		return nil, err
	}
	return sim.RunCtx(ctx, p, streams, m, sim.Options{
		Observer: c.observer, Faults: c.faults, VirtualDeadline: c.deadline,
	})
}

// RunContext executes the full paper pipeline — allocate, schedule,
// generate MPMD code, simulate — with cancellation and observability.
func RunContext(ctx context.Context, p *Program, m Machine, cal *Calibration, procs int, opts ...Option) (*Result, error) {
	c := newConfig(opts)
	model := cal.Model()
	ar, err := alloc.SolveCtx(ctx, p.G, model, procs, c.alloc)
	if err != nil {
		return nil, err
	}
	s, err := sched.Run(p.G, model, ar.P, procs, c.sched)
	if err != nil {
		return nil, err
	}
	streams, err := codegen.Generate(p, s)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunCtx(ctx, p, streams, m.WithProcs(procs), sim.Options{
		Observer: c.observer, Faults: c.faults, VirtualDeadline: c.deadline,
	})
	if err != nil {
		var halt *sim.HaltError
		if c.recoverMax > 0 && errors.As(err, &halt) {
			return recoverRun(ctx, p, m, cal, procs, halt, &c)
		}
		return nil, err
	}
	return &Result{Alloc: ar, Sched: s, Sim: res, Predicted: s.Makespan, Actual: res.Makespan}, nil
}

// RunSPMDContext executes the pure data-parallel baseline end to end
// with cancellation and observability.
func RunSPMDContext(ctx context.Context, p *Program, m Machine, cal *Calibration, procs int, opts ...Option) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := newConfig(opts)
	model := cal.Model()
	ar, err := alloc.SPMD(p.G, model, procs)
	if err != nil {
		return nil, err
	}
	s, err := sched.SPMD(p.G, model, procs)
	if err != nil {
		return nil, err
	}
	streams, err := codegen.Generate(p, s)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunCtx(ctx, p, streams, m.WithProcs(procs), sim.Options{Observer: c.observer})
	if err != nil {
		return nil, err
	}
	return &Result{Alloc: ar, Sched: s, Sim: res, Predicted: s.Makespan, Actual: res.Makespan}, nil
}
