// The redesigned pipeline entry points: every stage of the paper's
// pipeline is callable with a context.Context and functional Options,
// so callers can cancel long solves, tune the allocator and scheduler,
// and attach observability without widening any signature again.
//
//	rec := paradigm.NewEventRecorder()
//	reg := paradigm.NewMetrics()
//	res, err := paradigm.RunContext(ctx, p, m, cal, 64,
//	    paradigm.WithObserver(paradigm.MultiObserver(rec, paradigm.NewMetricsObserver(reg))),
//	    paradigm.WithScheduleOptions(paradigm.ScheduleOptions{PB: 8}))
//
// The historical positional signatures (Run, Allocate, Calibrate,
// BuildSchedule) remain as thin wrappers over these entry points. With
// no observer attached the instrumented pipeline pays one nil check per
// would-be event — see the Run benchmark pair in bench_test.go.
package paradigm

import (
	"context"
	"errors"
	"fmt"

	"paradigm/internal/alloc"
	"paradigm/internal/alloccache"
	"paradigm/internal/ckpt"
	"paradigm/internal/codegen"
	"paradigm/internal/costmodel"
	"paradigm/internal/errs"
	"paradigm/internal/machine"
	"paradigm/internal/obs"
	"paradigm/internal/sched"
	"paradigm/internal/sim"
	"paradigm/internal/trainsets"
)

// Observability re-exports: the event/metrics layer of internal/obs.
type (
	// Observer receives structured pipeline events; see the Event kinds
	// in internal/obs. Implementations must be safe for concurrent use.
	Observer = obs.Observer
	// Event is one structured pipeline event.
	Event = obs.Event
	// Metrics is the zero-dependency metrics registry the pipeline
	// reports into (counters, gauges, histograms with a deterministic
	// text encoding).
	Metrics = obs.Registry
	// MetricsSnapshot is a detached, text-encodable registry snapshot.
	MetricsSnapshot = obs.Snapshot
	// EventRecorder collects every event in memory (for the trace
	// exporter and tests).
	EventRecorder = obs.Recorder
	// AllocOptions tunes the convex allocation (annealing schedule,
	// multi-start, backend selection, warm-start cache, ablations,
	// observer).
	AllocOptions = alloc.Options
	// ADMMOptions tunes the consensus-ADMM allocation backend
	// (AllocOptions.Backend = "admm").
	ADMMOptions = alloc.ADMMOptions
	// AllocCache is the warm-start allocation cache: a bounded LRU keyed
	// by the relabel-invariant canonical MDG hash, cost model, solve
	// options and processor count. Share one across calls via
	// AllocOptions.Cache to replay repeated allocations instantly and
	// warm-start near misses.
	AllocCache = alloccache.Cache
	// AllocCacheEvent reports one warm-start cache lookup
	// ("hit"/"seed"/"miss").
	AllocCacheEvent = obs.AllocCache
	// AllocDoneEvent reports one completed allocation solve with its
	// backend and wall-clock seconds.
	AllocDoneEvent = obs.AllocDone
)

// NewAllocCache returns an empty warm-start allocation cache holding at
// most capacity entries.
func NewAllocCache(capacity int) *AllocCache { return alloccache.New(capacity) }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewMetricsObserver returns an Observer folding pipeline events into r
// under the canonical metric names (DESIGN.md §8).
func NewMetricsObserver(r *Metrics) Observer { return obs.MetricsObserver(r) }

// NewEventRecorder returns an empty event recorder.
func NewEventRecorder() *EventRecorder { return obs.NewRecorder() }

// MultiObserver fans events out to every non-nil observer; with none it
// returns nil, preserving the uninstrumented fast path.
func MultiObserver(os ...Observer) Observer { return obs.Multi(os...) }

// Typed sentinel errors. Every layer wraps its failures over these with
// %w, so callers can dispatch with errors.Is regardless of which stage
// produced the failure.
var (
	// ErrInfeasible marks a problem that cannot be solved as posed
	// (non-positive system size, PB outside [1, p] or not a power of
	// two, allocation entries outside their box).
	ErrInfeasible = errs.ErrInfeasible
	// ErrBadGraph marks a structurally invalid MDG or source program.
	ErrBadGraph = errs.ErrBadGraph
	// ErrUnsupportedTransfer marks a transfer kind outside the modeled
	// regimes.
	ErrUnsupportedTransfer = errs.ErrUnsupportedTransfer
	// ErrDeadlock marks a simulated run the watchdog stopped with no
	// runnable instruction and no fault implicated (a scheduling or
	// code-generation bug). The full diagnosis is in the *HaltError.
	ErrDeadlock = errs.ErrDeadlock
	// ErrProcessorLost marks a run halted by fail-stop processor death.
	ErrProcessorLost = errs.ErrProcessorLost
	// ErrMessageLost marks a run halted by a receiver waiting on a
	// dropped message.
	ErrMessageLost = errs.ErrMessageLost
	// ErrJobJournalCorrupt marks a damaged service job journal
	// (internal/jobstore): the scheduling service refuses to boot over
	// one rather than silently dropping accepted jobs.
	ErrJobJournalCorrupt = errs.ErrJobJournalCorrupt
)

// Option configures one pipeline call.
type Option func(*config)

type config struct {
	observer Observer
	sched    ScheduleOptions
	alloc    AllocOptions
	// mach, when non-nil, supplies the machine model in place of the
	// positional Machine/Calibration arguments (WithMachine).
	mach machine.Backend
	// faults is the fault schedule handed to the simulator (nil: none).
	faults *FaultPlan
	// recoverMax bounds failure-aware rescheduling attempts (0: off).
	recoverMax int
	// deadline is the simulator's virtual-time watchdog bound (0: off).
	deadline float64
	// ckpt is the write-ahead checkpoint log (nil: no checkpointing).
	ckpt *Checkpoint
	// budgets are the per-stage deadlines (zero fields: unbounded).
	budgets StageBudgets
	// retry bounds allocation-stage retries (MaxAttempts <= 1: off).
	retry RetryPolicy
	// breaker, when non-nil, gates the allocation solve.
	breaker *Breaker
	// schedCache, when non-nil, memoizes whole allocate→schedule plans
	// (WithScheduleCache).
	schedCache *ScheduleCache
}

// WithObserver attaches an observer to every instrumented stage of the
// call: solver stages, PSA decisions, simulated messages and processor
// accounting, and calibration fits.
func WithObserver(o Observer) Option {
	return func(c *config) { c.observer = o }
}

// WithScheduleOptions sets the PSA tuning (PB override, rounding
// ablation, ready-queue policy) for the scheduling stage.
func WithScheduleOptions(so ScheduleOptions) Option {
	return func(c *config) { c.sched = so }
}

// WithAllocOptions sets the convex-allocation tuning (annealing
// schedule, multi-start width, transfer ablation).
func WithAllocOptions(ao AllocOptions) Option {
	return func(c *config) { c.alloc = ao }
}

func newConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	// The call-level observer reaches each stage through its options;
	// stage-specific observers set via With*Options take precedence.
	if c.sched.Observer == nil {
		c.sched.Observer = c.observer
	}
	if c.alloc.Observer == nil {
		c.alloc.Observer = c.observer
	}
	return c
}

// machineParams resolves the simulator ground truth for a call: a
// WithMachine backend wins over the positional profile.
func (c *config) machineParams(m Machine) Machine {
	if c.mach != nil {
		return c.mach.SimParams()
	}
	return m
}

// pipelineModel resolves the analytic cost model and the loop-pricing
// source for a call: the WithMachine backend when set, the positional
// calibration otherwise. A nil calibration without a backend is the
// caller's error.
func (c *config) pipelineModel(cal *Calibration) (Model, LoopSource, error) {
	if c.mach != nil {
		return costmodel.Model{Transfer: c.mach.Transfer()}, c.mach, nil
	}
	if cal == nil {
		return Model{}, nil, fmt.Errorf("paradigm: %w: nil Calibration and no WithMachine backend", errs.ErrBadMachineSpec)
	}
	return cal.Model(), cal, nil
}

// allocModel applies the WithMachine transfer surface over a
// positionally supplied model.
func (c *config) allocModel(model Model) Model {
	if c.mach != nil {
		return costmodel.Model{Transfer: c.mach.Transfer()}
	}
	return model
}

// CalibrateContext runs the training-sets calibration with cancellation
// and instrumentation: the transfer sweep honours ctx, and every
// completed fit emits a CalibFit event to the observer. With a
// checkpoint attached the fit is committed to (or restored from) the
// "calibrate" stage record; with a Calibrate budget the sweep runs
// under its own deadline.
func CalibrateContext(ctx context.Context, m Machine, opts ...Option) (cal *Calibration, err error) {
	defer guardStage("calibrate", &err)
	c := newConfig(opts)
	if c.ckptActive() {
		if data, seq, ok := c.ckpt.log.Lookup(ckpt.StageCalibrate); ok {
			snap, derr := ckpt.DecodeCalibration(data, m)
			if derr != nil {
				return nil, derr
			}
			c.emit(obs.Resume{Stage: ckpt.StageCalibrate, Seq: seq})
			return trainsets.FromSnapshot(snap, c.observer)
		}
	}
	sctx, cancel := stageContext(ctx, c.budgets.Calibrate)
	defer cancel()
	cal, err = trainsets.CalibrateCtx(sctx, m, c.observer)
	if err != nil {
		return nil, budgetErr(ctx, "calibrate", c.budgets.Calibrate, err)
	}
	if c.ckptActive() {
		payload, perr := ckpt.EncodeCalibration(cal.Snapshot())
		if perr != nil {
			return nil, fmt.Errorf("paradigm: encode calibration checkpoint: %w", perr)
		}
		if cerr := c.ckptCommit(ckpt.StageCalibrate, payload); cerr != nil {
			return nil, cerr
		}
	}
	return cal, nil
}

// AllocateContext solves the convex program of Section 2 with
// cancellation (checked between annealed temperature stages) and
// solver-convergence events. The stage honours the full governance
// surface: Allocate budget, bounded retry with jittered backoff, the
// shared circuit breaker (open: the solve degrades to the heuristic
// allocator), and checkpoint commit/restore of the allocation vector.
func AllocateContext(ctx context.Context, g *Graph, model Model, procs int, opts ...Option) (ar Allocation, err error) {
	defer guardStage("allocate", &err)
	c := newConfig(opts)
	return c.allocStage(ctx, g, c.allocModel(model), procs)
}

// BuildScheduleContext runs the PSA of Section 3 on a continuous
// allocation, emitting PSARound and PSAPick events to the observer.
// Cancellation is checked on every list-scheduling pick; the Schedule
// budget and checkpoint stage apply.
func BuildScheduleContext(ctx context.Context, g *Graph, model Model, allocation []float64, procs int, opts ...Option) (s *Schedule, err error) {
	defer guardStage("schedule", &err)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := newConfig(opts)
	return c.schedStage(ctx, g, c.allocModel(model), allocation, procs)
}

// codegenStage is the governed lowering stage shared by ExecuteContext
// and RunContext.
func (c *config) codegenStage(ctx context.Context, p *Program, s *Schedule) (*codegen.Streams, error) {
	if c.ckptActive() {
		if data, seq, ok := c.ckpt.log.Lookup(ckpt.StageCodegen); ok {
			streams, err := ckpt.DecodeStreams(data, s.ProcsTotal)
			if err != nil {
				return nil, err
			}
			c.emit(obs.Resume{Stage: ckpt.StageCodegen, Seq: seq})
			return streams, nil
		}
	}
	sctx, cancel := stageContext(ctx, c.budgets.Codegen)
	defer cancel()
	streams, err := codegen.GenerateCtx(sctx, p, s)
	if err != nil {
		return nil, budgetErr(ctx, "codegen", c.budgets.Codegen, err)
	}
	if c.ckptActive() {
		payload, perr := ckpt.EncodeStreams(streams)
		if perr != nil {
			return nil, fmt.Errorf("paradigm: encode codegen checkpoint: %w", perr)
		}
		if cerr := c.ckptCommit(ckpt.StageCodegen, payload); cerr != nil {
			return nil, cerr
		}
	}
	return streams, nil
}

// ExecuteContext lowers the program under the schedule into MPMD
// instruction streams and simulates them, with cancellation (checked
// per node in the emission loop and on every simulator scheduler sweep)
// and per-message/per-processor events. The Codegen and Execute budgets
// apply; internal panics surface as typed errors.
func ExecuteContext(ctx context.Context, p *Program, s *Schedule, m Machine, opts ...Option) (res *SimResult, err error) {
	defer guardStage("execute", &err)
	c := newConfig(opts)
	streams, err := c.codegenStage(ctx, p, s)
	if err != nil {
		return nil, err
	}
	sctx, cancel := stageContext(ctx, c.budgets.Execute)
	defer cancel()
	res, err = sim.RunCtx(sctx, p, streams, c.machineParams(m), sim.Options{
		Observer: c.observer, Faults: c.faults, VirtualDeadline: c.deadline,
	})
	return res, budgetErr(ctx, "execute", c.budgets.Execute, err)
}

// RunContext executes the full paper pipeline — allocate, schedule,
// generate MPMD code, simulate — with cancellation, observability, and
// the crash-safety surface: per-stage budgets, retry/breaker governance
// of the allocation solve, and write-ahead checkpointing. With a
// checkpoint attached, every completed stage commits one durable
// record; re-invoking with the same log resumes from the last committed
// stage and (all stages being deterministic) produces a bit-identical
// Result.
func RunContext(ctx context.Context, p *Program, m Machine, cal *Calibration, procs int, opts ...Option) (res *Result, err error) {
	defer guardStage("run", &err)
	c := newConfig(opts)
	mp := c.machineParams(m)
	model, src, err := c.pipelineModel(cal)
	if err != nil {
		return nil, err
	}
	if err := c.ckptBindRun(p, mp.WithProcs(procs), procs); err != nil {
		return nil, err
	}
	ar, s, err := c.planStages(ctx, p.G, model, procs)
	if err != nil {
		return nil, err
	}
	streams, err := c.codegenStage(ctx, p, s)
	if err != nil {
		return nil, err
	}
	sctx, cancel := stageContext(ctx, c.budgets.Execute)
	defer cancel()
	simRes, err := sim.RunCtx(sctx, p, streams, mp.WithProcs(procs), sim.Options{
		Observer: c.observer, Faults: c.faults, VirtualDeadline: c.deadline,
	})
	if err != nil {
		var halt *sim.HaltError
		if c.recoverMax > 0 && errors.As(err, &halt) {
			res, rerr := recoverRun(sctx, p, mp, model, src, procs, halt, &c)
			if rerr != nil {
				return nil, budgetErr(ctx, "execute", c.budgets.Execute, rerr)
			}
			if cerr := c.ckptDone(res); cerr != nil {
				return nil, cerr
			}
			return res, nil
		}
		return nil, budgetErr(ctx, "execute", c.budgets.Execute, err)
	}
	result := &Result{Alloc: ar, Sched: s, Sim: simRes, Predicted: s.Makespan, Actual: simRes.Makespan}
	if cerr := c.ckptDone(result); cerr != nil {
		return nil, cerr
	}
	return result, nil
}

// RunSPMDContext executes the pure data-parallel baseline end to end
// with cancellation and observability. The SPMD baseline is a single
// closed-form stage, so checkpointing does not apply; panic containment
// and the Execute budget do.
func RunSPMDContext(ctx context.Context, p *Program, m Machine, cal *Calibration, procs int, opts ...Option) (res *Result, err error) {
	defer guardStage("run-spmd", &err)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := newConfig(opts)
	mp := c.machineParams(m)
	model, _, err := c.pipelineModel(cal)
	if err != nil {
		return nil, err
	}
	ar, err := alloc.SPMD(p.G, model, procs)
	if err != nil {
		return nil, err
	}
	s, err := sched.SPMD(p.G, model, procs)
	if err != nil {
		return nil, err
	}
	streams, err := codegen.GenerateCtx(ctx, p, s)
	if err != nil {
		return nil, err
	}
	sctx, cancel := stageContext(ctx, c.budgets.Execute)
	defer cancel()
	simRes, err := sim.RunCtx(sctx, p, streams, mp.WithProcs(procs), sim.Options{Observer: c.observer})
	if err != nil {
		return nil, budgetErr(ctx, "execute", c.budgets.Execute, err)
	}
	return &Result{Alloc: ar, Sched: s, Sim: simRes, Predicted: s.Makespan, Actual: simRes.Makespan}, nil
}
