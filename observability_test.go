// Tests for the redesigned pipeline surface: typed sentinel errors,
// context cancellation at every entry point, the metrics registry's
// determinism across worker-pool widths, and the observer wiring of the
// options API.
package paradigm

import (
	"context"
	"errors"
	"testing"

	"paradigm/internal/dist"
	"paradigm/internal/kernels"
	"paradigm/internal/obs"
	"paradigm/internal/par"
)

// tinyProgram builds the quickstart two-node program (row-distributed
// init feeding a column-distributed add over an 8x8 matrix).
func tinyProgram(t testing.TB, cal *Calibration) *Program {
	t.Helper()
	b := NewProgramBuilder("tiny")
	initK := kernels.Kernel{Op: kernels.OpInit, M: 8, N: 8,
		Init: func(i, j int) float64 { return float64(i + j) }}
	lpInit, err := cal.Loop("init8", initK)
	if err != nil {
		t.Fatal(err)
	}
	addK := kernels.Kernel{Op: kernels.OpAdd, M: 8, N: 8}
	lpAdd, err := cal.Loop("add8", addK)
	if err != nil {
		t.Fatal(err)
	}
	b.AddNode("src", NodeSpec{Kernel: initK, Output: "X", Axis: dist.ByRow}, lpInit)
	b.AddNode("dbl", NodeSpec{Kernel: addK, Inputs: []string{"X", "X"}, Output: "Y", Axis: dist.ByCol}, lpAdd)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSentinelErrors(t *testing.T) {
	cal := testCal(t)
	model := cal.Model()
	g := FigureOneMDG()

	cyclic := &Graph{}
	a := cyclic.AddNode(Node{Name: "a", Tau: 1})
	bn := cyclic.AddNode(Node{Name: "b", Tau: 1})
	cyclic.AddEdge(a, bn)
	cyclic.AddEdge(bn, a)

	badKind := &Graph{}
	x := badKind.AddNode(Node{Name: "x", Tau: 1})
	y := badKind.AddNode(Node{Name: "y", Tau: 1})
	badKind.AddEdge(x, y, Transfer{Bytes: 64, Kind: 99})

	cases := []struct {
		name string
		err  func() error
		want []error
	}{
		{"allocate zero procs", func() error {
			_, err := Allocate(g, model, 0)
			return err
		}, []error{ErrInfeasible}},
		{"spmd zero procs", func() error {
			_, err := AllocateSPMD(g, model, 0)
			return err
		}, []error{ErrInfeasible}},
		{"schedule non-power-of-two PB", func() error {
			ar, err := Allocate(g, model, 16)
			if err != nil {
				return err
			}
			_, err = BuildSchedule(g, model, ar.P, 16, ScheduleOptions{PB: 3})
			return err
		}, []error{ErrInfeasible}},
		{"allocate cyclic graph", func() error {
			_, err := Allocate(cyclic, model, 4)
			return err
		}, []error{ErrBadGraph}},
		{"unknown transfer kind", func() error {
			_, err := Allocate(badKind, model, 4)
			return err
		}, []error{ErrBadGraph, ErrUnsupportedTransfer}},
		{"frontend shape mismatch", func() error {
			_, err := CompileSource("bad", "matrix a = init(4, 4, ramp)\nmatrix b = init(8, 8, ramp)\nmatrix c = a + b\n", cal)
			return err
		}, []error{ErrBadGraph}},
		{"simulator watchdog halt", func() error {
			// An impossibly tight virtual deadline trips the watchdog with
			// no fault implicated: the halt wraps ErrDeadlock and carries
			// the *HaltError diagnosis.
			p := tinyProgram(t, cal)
			_, err := RunContext(context.Background(), p, NewCM5(8), cal, 8,
				WithVirtualDeadline(1e-12))
			if err != nil {
				var halt *HaltError
				if !errors.As(err, &halt) {
					t.Fatalf("watchdog halt is %T, want *HaltError", err)
				}
			}
			return err
		}, []error{ErrDeadlock}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			for _, want := range tc.want {
				if !errors.Is(err, want) {
					t.Fatalf("error %v is not %v", err, want)
				}
			}
		})
	}
}

func TestContextCancellation(t *testing.T) {
	cal := testCal(t)
	p := tinyProgram(t, cal)
	model := cal.Model()
	m := NewCM5(8)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := CalibrateContext(ctx, m); !errors.Is(err, context.Canceled) {
		t.Fatalf("CalibrateContext: want context.Canceled, got %v", err)
	}
	if _, err := AllocateContext(ctx, p.G, model, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("AllocateContext: want context.Canceled, got %v", err)
	}
	ar, err := Allocate(p.G, model, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildScheduleContext(ctx, p.G, model, ar.P, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildScheduleContext: want context.Canceled, got %v", err)
	}
	s, err := BuildSchedule(p.G, model, ar.P, 8, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteContext(ctx, p, s, m); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteContext: want context.Canceled, got %v", err)
	}
	if _, err := RunContext(ctx, p, m, cal, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext: want context.Canceled, got %v", err)
	}
	if _, err := RunSPMDContext(ctx, p, m, cal, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunSPMDContext: want context.Canceled, got %v", err)
	}

	// A live context must not disturb the pipeline.
	if _, err := RunContext(context.Background(), p, m, cal, 8); err != nil {
		t.Fatalf("RunContext with live context: %v", err)
	}
}

// TestObserverWiring checks that a call-level observer reaches every
// instrumented stage through the options plumbing.
func TestObserverWiring(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewEventRecorder()
	_, err = RunContext(context.Background(), p, NewCM5(16), cal, 16, WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[obs.Kind]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind()]++
	}
	for _, want := range []obs.Kind{obs.KindSolverStage, obs.KindPSARound, obs.KindPSAPick,
		obs.KindComm, obs.KindNodeRun, obs.KindProcStat} {
		if kinds[want] == 0 {
			t.Fatalf("no %v events recorded (got %v)", want, kinds)
		}
	}
}

// TestMetricsDeterminismAcrossWorkers runs the instrumented pipeline at
// worker-pool widths 1 and 8 and requires byte-identical metrics text:
// the registry's integer counters and fixed-point histogram sums make the
// folds order-independent.
func TestMetricsDeterminismAcrossWorkers(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := func(width string) string {
		t.Setenv(par.EnvWorkers, width)
		reg := NewMetrics()
		_, err := RunContext(context.Background(), p, NewCM5(64), cal, 16,
			WithObserver(NewMetricsObserver(reg)),
			WithAllocOptions(AllocOptions{MultiStart: 4}))
		if err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot().Text()
	}
	one := snapshot("1")
	eight := snapshot("8")
	if one != eight {
		t.Fatalf("metrics text differs between worker widths:\n--- width 1 ---\n%s\n--- width 8 ---\n%s", one, eight)
	}
	if one == "" {
		t.Fatal("empty metrics snapshot")
	}
}
