// The cluster chaos gate: seeded processor deaths injected mid-stream
// into a pool running ≥ 10 concurrent MDG jobs, with the full pipeline
// as the runner. The acceptance bars, verbatim from the issue: every
// acknowledged job completes with a data digest byte-identical to its
// fault-free run (oracle-checked), no acknowledged job is lost,
// rejected jobs are shed deterministically by SLO class, and
// counterfactual replay of a routing decision is byte-deterministic for
// a fixed seed.
package paradigm

import (
	"strings"
	"testing"

	"paradigm/internal/loadgen"
)

// chaosFixture builds the shared job stream: a dozen jobs over two
// programs, three SLO classes, seeded Poisson arrivals.
type chaosFixture struct {
	cal     *Calibration
	m       Machine
	specs   []ClusterSpec
	refs    map[string]string // program name -> fault-free data digest
	plan    *FaultPlan
	opts    ClusterOptions
	bronze  map[string]bool
	runner  *PipelineRunner
	horizon float64
}

func newChaosFixture(t *testing.T) *chaosFixture {
	t.Helper()
	cal := testCal(t)
	m := NewCM5(12)
	cmm, err := ComplexMatMul(16, cal)
	if err != nil {
		t.Fatal(err)
	}
	str, err := Strassen(16, cal)
	if err != nil {
		t.Fatal(err)
	}

	// Fault-free reference digests — and the oracle's own sanity check:
	// the data digest must be invariant across partition sizes, or
	// comparing a degraded 6-proc run against an 8-proc reference would
	// be meaningless.
	refs := map[string]string{}
	horizon := 0.0
	for name, p := range map[string]*Program{"cmm": cmm, "str": str} {
		var at8 string
		for _, procs := range []int{4, 8} {
			res, err := Run(p, NewCM5(procs), cal, procs)
			if err != nil {
				t.Fatal(err)
			}
			mustVerifyExact(t, p, res)
			d, err := DataDigest(p, res.Sim)
			if err != nil {
				t.Fatal(err)
			}
			if procs == 8 {
				at8 = d
				if res.Actual > horizon {
					horizon = res.Actual
				}
			} else if at8 != "" && d != at8 {
				t.Fatalf("%s: digest differs across procs — oracle invalid", name)
			}
			refs[name] = d
		}
	}

	// Twelve jobs: gold(3)/silver(2)/bronze(1), arrivals from a seeded
	// Poisson process compressed so the stream genuinely overlaps, with
	// an oversized job that can only run degraded once the pool shrinks.
	// Admission is unbounded here — every job is acknowledged, and the
	// zero-jobs-lost bar covers the whole stream; the shedding ladder
	// has its own deterministic scenario in TestClusterShedBySLOClass.
	arr := loadgen.Poisson(41, 12, 1, 2, 1)
	classes := []struct {
		class string
		prio  int
	}{{"gold", 3}, {"silver", 2}, {"bronze", 1}}
	specs := make([]ClusterSpec, 0, 12)
	bronze := map[string]bool{}
	progs := map[int]*Program{0: cmm, 1: str}
	progName := map[int]string{0: "cmm", 1: "str"}
	for i, a := range arr {
		c := classes[i%3]
		req := 4
		if i%4 == 1 {
			req = 8
		}
		id := progName[i%2] + "-" + c.class + "-" + string(rune('a'+i))
		s := ClusterSpec{
			ID: id, Class: c.class, Priority: c.prio,
			Arrive:   a.Offset * horizon / 3,
			Procs:    req,
			MinProcs: 2,
			Payload:  progs[i%2],
		}
		if i == 5 {
			// The oversized job: more than the pool will ever have again
			// after the deaths — exercises shrink-before-reject.
			s.Procs, s.MinProcs = 16, 4
		}
		if c.class == "bronze" {
			bronze[id] = true
		}
		specs = append(specs, s)
	}

	// Three pool deaths spread across the stream. The pool never drops
	// below every job's MinProcs, so nothing is evicted; detection lags
	// the death by a deterministic latency, so jobs placed in the
	// suspect window absorb a relative-time-0 fault.
	plan := &FaultPlan{ProcFails: []ProcFail{
		{Proc: 3, At: horizon * 0.3},
		{Proc: 7, At: horizon * 1.2},
		{Proc: 10, At: horizon * 2.4},
	}}
	runner := NewPipelineRunner(m, cal, 3)
	return &chaosFixture{
		cal: cal, m: m, specs: specs, refs: refs, plan: plan,
		bronze: bronze, runner: runner, horizon: horizon,
		opts: ClusterOptions{
			Procs: 12, Router: RouterLeastLoaded,
			Faults: plan, DetectLatency: horizon * 0.1,
			Runner: runner,
		},
	}
}

func (f *chaosFixture) refFor(t *testing.T, id string) string {
	t.Helper()
	for name, d := range f.refs {
		if strings.HasPrefix(id, name+"-") {
			return d
		}
	}
	t.Fatalf("no reference digest for job %q", id)
	return ""
}

// checkOutcome applies the no-job-lost and byte-identity bars to one
// cluster outcome.
func (f *chaosFixture) checkOutcome(t *testing.T, out *ClusterOutcome) {
	t.Helper()
	accounted := map[string]bool{}
	for _, j := range out.Jobs {
		if j.Err != "" {
			t.Fatalf("acknowledged job %s lost: %s", j.ID, j.Err)
		}
		if want := f.refFor(t, j.ID); j.Digest != want {
			t.Fatalf("job %s digest %s != fault-free reference %s (granted %d/%d, recovered %t)",
				j.ID, j.Digest[:12], want[:12], j.Granted, j.Requested, j.Recovered)
		}
		accounted[j.ID] = true
	}
	for _, id := range out.Shed {
		if !f.bronze[id] {
			t.Fatalf("shed job %s is not bronze — shedding must follow SLO class", id)
		}
		accounted[id] = true
	}
	if len(out.Evicted) != 0 {
		t.Fatalf("unexpected evictions: %v (pool never drops below MinProcs)", out.Evicted)
	}
	for _, s := range f.specs {
		if !accounted[s.ID] {
			t.Fatalf("job %s vanished: neither completed nor shed", s.ID)
		}
	}
}

func TestClusterChaosGate(t *testing.T) {
	f := newChaosFixture(t)
	out, err := RunCluster(f.specs, f.m, f.cal, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	f.checkOutcome(t, out)

	// The fault plan must have actually disturbed the stream: at least
	// one job recovered from a partition death, and the pool detected
	// all three deaths.
	recovered := 0
	for _, j := range out.Jobs {
		if j.Recovered {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("no job recovered — the pool deaths never landed on a partition")
	}
	replaces := 0
	for _, d := range out.Decisions {
		if d.Decision == "replace" {
			replaces++
		}
	}
	if replaces != len(f.plan.ProcFails) {
		t.Fatalf("replace decisions = %d, want %d (one per pool death)", replaces, len(f.plan.ProcFails))
	}
	if len(out.Jobs)+len(out.Shed) != len(f.specs) {
		t.Fatalf("completed %d + shed %d != %d submitted", len(out.Jobs), len(out.Shed), len(f.specs))
	}

	// Byte-determinism of the whole faulted stream: a second run with
	// identical inputs renders the identical outcome.
	out2, err := RunCluster(f.specs, f.m, f.cal, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != out2.String() {
		t.Fatal("two identical chaos runs rendered different outcomes")
	}
}

func TestClusterCounterfactualReplay(t *testing.T) {
	f := newChaosFixture(t)
	base, err := RunCluster(f.specs, f.m, f.cal, f.opts)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a completed 4-proc job and ask: what if it had gotten 8?
	var target string
	for _, j := range base.Jobs {
		if j.Requested == 4 && !j.Degraded {
			target = j.ID
			break
		}
	}
	if target == "" {
		t.Fatal("no 4-proc job completed in the base run")
	}
	over := map[string]int{target: 8}
	rep1, err := ReplayCluster(f.specs, f.m, f.cal, f.opts, over)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := ReplayCluster(f.specs, f.m, f.cal, f.opts, over)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.String() != rep2.String() {
		t.Fatal("counterfactual replay is not byte-deterministic")
	}
	j, ok := rep1.Job(target)
	if !ok {
		t.Fatalf("counterfactual lost job %s", target)
	}
	if j.Granted != 8 {
		t.Fatalf("counterfactual granted %d procs, want 8", j.Granted)
	}
	// The counterfactual world still honours every robustness bar.
	f.checkOutcome(t, rep1)
	if rep1.String() == base.String() {
		t.Fatal("doubling a job's partition changed nothing — replay is not counterfactual")
	}
}

// TestClusterShedBySLOClass pins deterministic class-based shedding
// with the real pipeline, free of arrival-timing luck: a hog takes the
// whole pool at t=0, then five jobs arrive at the same instant in
// submission order — two gold/silver waiters fill the pending bound,
// and the two bronze arrivals overflow it. The victims must be exactly
// the bronze jobs, every acknowledged job must complete bit-exact, and
// the whole episode must replay byte-identically.
func TestClusterShedBySLOClass(t *testing.T) {
	f := newChaosFixture(t)
	cmm := f.specs[0].Payload
	mk := func(id, class string, prio, req int) ClusterSpec {
		return ClusterSpec{
			ID: id, Class: class, Priority: prio,
			Arrive: 0, Procs: req, MinProcs: 2, Payload: cmm,
		}
	}
	specs := []ClusterSpec{
		mk("hog", "gold", 3, 12), // placed immediately, pool fully held
		mk("g1", "gold", 3, 4),
		mk("s1", "silver", 2, 4),
		mk("s2", "silver", 2, 4),
		mk("b1", "bronze", 1, 4),
		mk("b2", "bronze", 1, 4),
	}
	opts := ClusterOptions{
		Procs: 12, Router: RouterRoundRobin,
		MaxPending: 3, Runner: f.runner,
	}
	run := func() *ClusterOutcome {
		out, err := RunCluster(specs, f.m, f.cal, opts)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	out := run()
	if len(out.Shed) != 2 || out.Shed[0] != "b1" || out.Shed[1] != "b2" {
		t.Fatalf("Shed = %v, want [b1 b2]: bronze and only bronze, in arrival order", out.Shed)
	}
	for _, id := range []string{"hog", "g1", "s1", "s2"} {
		j, ok := out.Job(id)
		if !ok {
			t.Fatalf("acknowledged job %s lost", id)
		}
		if j.Err != "" {
			t.Fatalf("job %s failed: %s", id, j.Err)
		}
		if want := f.refs["cmm"]; j.Digest != want {
			t.Fatalf("job %s digest mismatch after queueing", id)
		}
	}
	if out2 := run(); out.String() != out2.String() {
		t.Fatal("shedding episode is not byte-deterministic")
	}
}

// TestClusterBestFitPipeline runs the best-fit router against the real
// predictor on a small stream: the router must produce legal partitions
// and byte-identical digests like any other policy.
func TestClusterBestFitPipeline(t *testing.T) {
	f := newChaosFixture(t)
	specs := f.specs[:4]
	opts := f.opts
	opts.Router = RouterBestFit
	opts.Faults, opts.MaxPending = nil, 0
	out, err := RunCluster(specs, f.m, f.cal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != len(specs) {
		t.Fatalf("completed %d of %d jobs", len(out.Jobs), len(specs))
	}
	for _, j := range out.Jobs {
		if want := f.refFor(t, j.ID); j.Digest != want {
			t.Fatalf("best-fit job %s digest mismatch", j.ID)
		}
		if j.Granted < 2 || j.Granted > j.Requested {
			t.Fatalf("best-fit granted %d procs outside [2, %d]", j.Granted, j.Requested)
		}
	}
}
