// Strassen's matrix multiplication (the paper's second test program,
// Figure 6 right): 33 computation nodes with rich functional parallelism.
// Runs the full pipeline at 128x128, prints the Table-3-style Phi vs
// T_psa deviation, and verifies the assembled product against a direct
// multiply of the conceptual operands.
package main

import (
	"fmt"
	"log"

	"paradigm"
	"paradigm/internal/matrix"
	"paradigm/internal/programs"
)

func main() {
	cal, err := paradigm.Calibrate(paradigm.NewCM5(64))
	if err != nil {
		log.Fatal(err)
	}
	const n = 128
	p, err := paradigm.Strassen(n, cal)
	if err != nil {
		log.Fatal(err)
	}
	m := paradigm.NewCM5(64)

	fmt.Printf("%s: %d MDG nodes\n\n", p.Name, p.G.NumNodes())
	fmt.Printf("%6s  %10s  %10s  %10s  %8s\n", "procs", "Phi (s)", "T_psa (s)", "actual (s)", "dev (%)")
	var last *paradigm.Result
	for _, procs := range []int{16, 32, 64} {
		res, err := paradigm.Run(p, m, cal, procs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %10.4f  %10.4f  %10.4f  %+8.1f\n",
			procs, res.Alloc.Phi, res.Predicted, res.Actual,
			100*(res.Predicted-res.Alloc.Phi)/res.Alloc.Phi)
		last = res
	}

	// Assemble C from the simulated quadrants and verify against the
	// direct product of the conceptual operands.
	h := n / 2
	c := matrix.New(n, n)
	for _, q := range []struct {
		name   string
		r0, c0 int
	}{{"C11", 0, 0}, {"C12", 0, h}, {"C21", h, 0}, {"C22", h, h}} {
		blk, err := last.Sim.Gather(q.name)
		if err != nil {
			log.Fatal(err)
		}
		c.SetBlock(q.r0, q.c0, blk)
	}
	a := matrix.New(n, n)
	b := matrix.New(n, n)
	a.Fill(programs.AElem)
	b.Fill(programs.BElem)
	want := matrix.New(n, n)
	if err := matrix.Mul(want, a, b); err != nil {
		log.Fatal(err)
	}
	d, err := matrix.MaxAbsDiff(c, want)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStrassen result vs direct %dx%d multiply: max |deviation| = %.3g\n", n, n, d)
	if d > 1e-9 {
		log.Fatal("verification FAILED")
	}
	fmt.Println("verification passed: 7 multiplies + 18 adds reproduce the direct product")
}
