// Fault injection and failure-aware rescheduling: run the complex
// matrix multiply under a fault schedule that kills a processor
// mid-flight, let the pipeline salvage the completed arrays, replan on
// the survivors, and verify the recovered result against the sequential
// reference bit for bit.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"paradigm"
)

func main() {
	cal, err := paradigm.Calibrate(paradigm.NewCM5(64))
	if err != nil {
		log.Fatal(err)
	}
	p, err := paradigm.ComplexMatMul(32, cal)
	if err != nil {
		log.Fatal(err)
	}
	m := paradigm.NewCM5(8)
	ctx := context.Background()

	// A fault-free run gives the makespan the fail time is scaled by.
	clean, err := paradigm.RunContext(ctx, p, m, cal, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean run: %.6f s on 8 processors\n", clean.Actual)

	// Kill processor 2 a quarter of the way through. Without recovery
	// the run halts with a classified diagnosis.
	plan := &paradigm.FaultPlan{
		ProcFails: []paradigm.ProcFail{{Proc: 2, At: clean.Actual / 4}},
	}
	_, err = paradigm.RunContext(ctx, p, m, cal, 8, paradigm.WithFaultPlan(plan))
	if !errors.Is(err, paradigm.ErrProcessorLost) {
		log.Fatalf("want ErrProcessorLost, got %v", err)
	}
	var halt *paradigm.HaltError
	errors.As(err, &halt)
	fmt.Printf("without recovery: halted — %v (failed procs %v)\n", err, halt.Failed)

	// With recovery the halted run is salvaged, replanned on the seven
	// survivors, and resumed. The observer shows the fault, salvage and
	// replan events as they happen.
	rec := paradigm.NewEventRecorder()
	res, err := paradigm.RunContext(ctx, p, m, cal, 8,
		paradigm.WithFaultPlan(plan),
		paradigm.WithRecovery(2),
		paradigm.WithObserver(rec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with recovery: survived loss of %v in %d attempt(s); recovered makespan %.6f s\n",
		res.FailedProcs, res.RecoveryAttempts, res.Actual)

	// Recovery is exact: restored blocks and re-run nodes repeat the
	// same floating-point summation orders as an undisturbed run.
	worst, err := paradigm.Verify(p, res.Sim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("numerical verification: max |deviation| = %.3g (bit-identical)\n", worst)
	if worst != 0 {
		log.Fatal("recovered run deviates from the sequential reference")
	}
}
