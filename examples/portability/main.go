// Portability: the same program, the same pipeline, two machines. The
// methodology — training-sets calibration, convex allocation, PSA — is
// machine-agnostic; only the fitted parameters change. The CM-5 has slow
// processors, expensive message startups and zero network transit (t_n
// folded into receives); the Paragon profile is an order of magnitude
// faster with a real wire delay that the calibration must discover.
package main

import (
	"fmt"
	"log"

	"paradigm"
)

func main() {
	for _, mk := range []struct {
		name    string
		profile func(int) paradigm.Machine
	}{
		{"Thinking Machines CM-5", paradigm.NewCM5},
		{"Intel Paragon (like)", paradigm.NewParagon},
	} {
		m := mk.profile(64)
		cal, err := paradigm.Calibrate(m)
		if err != nil {
			log.Fatal(err)
		}
		tp := cal.Transfer.Params
		fmt.Printf("%s\n", mk.name)
		fmt.Printf("  fitted: t_ss=%.1fus t_ps=%.1fns t_sr=%.1fus t_pr=%.1fns t_n=%.2fns\n",
			tp.Tss*1e6, tp.Tps*1e9, tp.Tsr*1e6, tp.Tpr*1e9, tp.Tn*1e9)

		p, err := paradigm.Strassen(128, cal)
		if err != nil {
			log.Fatal(err)
		}
		for _, procs := range []int{16, 64} {
			res, err := paradigm.Run(p, m, cal, procs)
			if err != nil {
				log.Fatal(err)
			}
			worst, err := paradigm.Verify(p, res.Sim)
			if err != nil || worst > 1e-9 {
				log.Fatalf("verification failed: %v %v", worst, err)
			}
			fmt.Printf("  Strassen 128x128, p=%2d: Phi=%.5fs  T_psa=%.5fs  actual=%.5fs (verified)\n",
				procs, res.Alloc.Phi, res.Predicted, res.Actual)
		}
		fmt.Println()
	}
	fmt.Println("same pipeline, both machines: only the calibrated constants differ")
}
