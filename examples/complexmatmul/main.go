// Complex matrix multiply (the paper's first test program, Figure 6
// left): run both the SPMD baseline and the MPMD pipeline across system
// sizes, reproduce the Figure 8 speedup comparison, and verify the
// complex product numerically.
package main

import (
	"fmt"
	"log"

	"paradigm"
)

func main() {
	cal, err := paradigm.Calibrate(paradigm.NewCM5(64))
	if err != nil {
		log.Fatal(err)
	}
	p, err := paradigm.ComplexMatMul(64, cal)
	if err != nil {
		log.Fatal(err)
	}
	m := paradigm.NewCM5(64)

	serial, err := paradigm.RunSPMD(p, m, cal, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s — serial time %.4f s\n\n", p.Name, serial.Actual)
	fmt.Printf("%6s  %12s  %12s  %14s  %14s\n", "procs", "SPMD (s)", "MPMD (s)", "SPMD speedup", "MPMD speedup")
	for _, procs := range []int{4, 16, 32, 64} {
		spmd, err := paradigm.RunSPMD(p, m, cal, procs)
		if err != nil {
			log.Fatal(err)
		}
		mpmd, err := paradigm.Run(p, m, cal, procs)
		if err != nil {
			log.Fatal(err)
		}
		sS, _ := paradigm.Speedup(serial.Actual, spmd.Actual)
		sM, _ := paradigm.Speedup(serial.Actual, mpmd.Actual)
		fmt.Printf("%6d  %12.4f  %12.4f  %14.2f  %14.2f\n", procs, spmd.Actual, mpmd.Actual, sS, sM)

		if worst, err := paradigm.Verify(p, mpmd.Sim); err != nil || worst > 1e-9 {
			log.Fatalf("verification failed at p=%d: worst %v err %v", procs, worst, err)
		}
	}
	fmt.Println("\nall runs verified against the sequential reference")
	fmt.Println("note the crossover: at small p pure data parallelism is competitive;")
	fmt.Println("the mixed-parallelism advantage appears as the machine grows (the")
	fmt.Println("paper's Figure 8 point, 'especially for larger systems')")

	// Show the mixed-parallelism schedule at p=16.
	mpmd, err := paradigm.Run(p, m, cal, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMPMD schedule at p = 16 (the four multiplies run concurrently):")
	fmt.Print(mpmd.Sched.Gantt(p.G, 72))
}
