// DSL: compile a matrix program written in the front-end language, run
// the full pipeline, verify numerically, and export a Chrome trace with
// the predicted and actual executions side by side.
package main

import (
	"fmt"
	"log"
	"os"

	"paradigm"
	"paradigm/internal/trace"
)

const source = `
# A small image-processing-style pipeline: one input operator applied
# along two independent filter paths, then combined.
param n = 48

matrix input  = init(n, n, wave)
matrix kernelA = init(n, n, ramp)
matrix kernelB = init(n, n, ramp)   @ col

matrix pathA = input * kernelA * kernelA
matrix pathB = (input * kernelB) * kernelB   @ col

matrix residual = pathA + pathB - input
`

func main() {
	cal, err := paradigm.Calibrate(paradigm.NewCM5(16))
	if err != nil {
		log.Fatal(err)
	}
	p, err := paradigm.CompileSource("filter-pipeline", source, cal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s: %d MDG nodes, %d edges\n\n", p.Name, p.G.NumNodes(), len(p.G.Edges))

	m := paradigm.NewCM5(16)
	res, err := paradigm.Run(p, m, cal, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Sched.Gantt(p.G, 72))
	fmt.Printf("\npredicted %.4fs, simulated %.4fs\n", res.Predicted, res.Actual)

	worst, err := paradigm.Verify(p, res.Sim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified against sequential reference (max deviation %g)\n", worst)

	f, err := os.Create("filter-pipeline.trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteRun(f, p.G, res.Sched, res.Sim); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote filter-pipeline.trace.json (open in chrome://tracing)")
}
