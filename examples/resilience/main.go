// Crash-safe scheduling: checkpoint the pipeline's stage boundaries to
// a write-ahead log, kill the run mid-flight, and resume it — the
// resumed result is bit-identical because every stage is deterministic.
// Then put the allocation stage under governance: a deadline budget,
// bounded retries, and a circuit breaker that degrades to the heuristic
// allocator instead of hanging the caller.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"paradigm"
)

func main() {
	cal, err := paradigm.Calibrate(paradigm.NewCM5(64))
	if err != nil {
		log.Fatal(err)
	}
	p, err := paradigm.ComplexMatMul(32, cal)
	if err != nil {
		log.Fatal(err)
	}
	m := paradigm.NewCM5(8)
	dir, err := os.MkdirTemp("", "paradigm-resilience")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	wal := filepath.Join(dir, "run.wal")

	// --- Part 1: kill a checkpointed run, then resume it. ---
	cp, err := paradigm.OpenCheckpoint(wal)
	if err != nil {
		log.Fatal(err)
	}
	// The commit hook fires only after a stage record is durable on
	// disk; cancelling there simulates a kill at the worst moment.
	ctx, cancel := context.WithCancel(context.Background())
	commits := 0
	cp.OnCommit(func(stage string, _ int) {
		commits++
		fmt.Printf("committed stage %q\n", stage)
		if commits == 3 { // die right after the schedule hits the WAL
			cancel()
		}
	})
	_, err = paradigm.RunContext(ctx, p, m, cal, 8, paradigm.WithCheckpoint(cp))
	fmt.Printf("killed run: %v\n\n", err)

	resumed, err := paradigm.LoadCheckpoint(wal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resuming from committed stages %v\n", resumed.Stages())
	res, err := paradigm.RunContext(context.Background(), p, m, cal, 8,
		paradigm.WithCheckpoint(resumed))
	if err != nil {
		log.Fatal(err)
	}
	ref, err := paradigm.RunContext(context.Background(), p, m, cal, 8)
	if err != nil {
		log.Fatal(err)
	}
	if res.Actual != ref.Actual || res.Sim.Messages != ref.Sim.Messages {
		log.Fatalf("resumed run diverged: %v vs %v", res.Actual, ref.Actual)
	}
	fmt.Printf("resumed run is bit-identical: makespan %.6f s, %d messages\n\n",
		res.Actual, res.Sim.Messages)

	// A truncated WAL is refused with a typed sentinel — never resumed
	// silently from a torn prefix.
	data, err := os.ReadFile(wal)
	if err != nil {
		log.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.wal")
	if err := os.WriteFile(torn, data[:len(data)-4], 0o644); err != nil {
		log.Fatal(err)
	}
	if _, err := paradigm.LoadCheckpoint(torn); errors.Is(err, paradigm.ErrCheckpointCorrupt) {
		fmt.Printf("torn log refused: %v\n\n", err)
	} else {
		log.Fatalf("torn log accepted: %v", err)
	}

	// --- Part 2: deadline budgets, retry, and the circuit breaker. ---
	// An impossible 1ns allocation budget times the solver out; after
	// the retries trip the breaker, the call degrades to the heuristic
	// allocator instead of failing — and while the breaker stays open,
	// later calls shed straight to the heuristic.
	br := paradigm.NewBreaker(paradigm.BreakerOptions{Threshold: 2, Cooldown: time.Minute})
	ar, err := paradigm.AllocateContext(context.Background(), p.G, cal.Model(), 8,
		paradigm.WithStageBudgets(paradigm.StageBudgets{Allocate: time.Nanosecond}),
		paradigm.WithRetry(paradigm.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}),
		paradigm.WithBreaker(br))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("breaker %s: solver timed out twice, heuristic allocation Phi = %.6f s\n",
		br.State(), ar.Phi)
}
