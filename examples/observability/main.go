// Observability: run the Strassen pipeline with an event recorder and a
// metrics registry attached, print a digest of what each stage reported,
// and export the unified Chrome/Perfetto trace (predicted and actual
// node tracks, per-message comm flows, PSA decisions, and the solver's
// Φ-convergence counter track) to strassen_trace.json.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"paradigm"
	"paradigm/internal/obs"
	"paradigm/internal/trace"
)

func main() {
	const procs = 16
	m := paradigm.NewCM5(procs)
	ctx := context.Background()

	rec := paradigm.NewEventRecorder()
	reg := paradigm.NewMetrics()
	ob := paradigm.MultiObserver(rec, paradigm.NewMetricsObserver(reg))

	cal, err := paradigm.CalibrateContext(ctx, paradigm.NewCM5(64), paradigm.WithObserver(ob))
	if err != nil {
		log.Fatal(err)
	}
	p, err := paradigm.Strassen(128, cal)
	if err != nil {
		log.Fatal(err)
	}
	res, err := paradigm.RunContext(ctx, p, m, cal, procs, paradigm.WithObserver(ob))
	if err != nil {
		log.Fatal(err)
	}

	// A digest of the recorded event stream, stage by stage.
	var stages, rounds, picks, comms, nodes int
	var lastPhi float64
	for _, e := range rec.Events() {
		switch ev := e.(type) {
		case obs.SolverStage:
			stages++
			lastPhi = ev.Phi
		case obs.PSARound:
			rounds++
		case obs.PSAPick:
			picks++
		case obs.Comm:
			comms++
		case obs.NodeRun:
			nodes++
		}
	}
	fmt.Printf("solver   : %d anneal stages, final Phi %.6f s\n", stages, lastPhi)
	fmt.Printf("PSA      : %d rounding decisions, %d placements\n", rounds, picks)
	fmt.Printf("simulator: %d node runs, %d messages\n", nodes, comms)
	fmt.Printf("makespan : predicted %.6f s, actual %.6f s\n\n", res.Predicted, res.Actual)
	fmt.Printf("metrics:\n%s\n", reg.Snapshot().Text())

	f, err := os.Create("strassen_trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteUnified(f, p.G, res.Sched, res.Sim, rec.Events()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unified trace written to strassen_trace.json (%d events recorded)\n", rec.Len())
}
