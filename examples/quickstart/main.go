// Quickstart: build a tiny two-node program with the public API, run the
// full convex-allocation + PSA + MPMD pipeline on a simulated 8-processor
// CM-5 with metrics attached, and verify the result numerically.
package main

import (
	"context"
	"fmt"
	"log"

	"paradigm"
	"paradigm/internal/dist"
	"paradigm/internal/kernels"
)

func main() {
	// 1. A machine and its training-sets calibration.
	m := paradigm.NewCM5(8)
	cal, err := paradigm.Calibrate(m)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A program: Y = X + X over a generated 64x64 matrix. The source is
	// row-distributed and the add column-distributed, so the edge is a
	// real ROW2COL (2D) redistribution.
	b := paradigm.NewProgramBuilder("quickstart")
	initK := kernels.Kernel{Op: kernels.OpInit, M: 64, N: 64,
		Init: func(i, j int) float64 { return float64(i + j) }}
	addK := kernels.Kernel{Op: kernels.OpAdd, M: 64, N: 64}
	lpInit, err := cal.Loop("init", initK)
	if err != nil {
		log.Fatal(err)
	}
	lpAdd, err := cal.Loop("add", addK)
	if err != nil {
		log.Fatal(err)
	}
	b.AddNode("source", paradigm.NodeSpec{Kernel: initK, Output: "X", Axis: dist.ByRow}, lpInit)
	b.AddNode("double", paradigm.NodeSpec{Kernel: addK, Inputs: []string{"X", "X"}, Output: "Y", Axis: dist.ByCol}, lpAdd)
	p, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Allocate, schedule, generate MPMD code, simulate — through the
	// context entry point, with a metrics registry observing the run.
	// (paradigm.Run(p, m, cal, 8) is the shorthand without either.)
	reg := paradigm.NewMetrics()
	res, err := paradigm.RunContext(context.Background(), p, m, cal, 8,
		paradigm.WithObserver(paradigm.NewMetricsObserver(reg)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Phi (convex optimum)  : %.6f s\n", res.Alloc.Phi)
	fmt.Printf("T_psa (schedule)      : %.6f s\n", res.Predicted)
	fmt.Printf("simulated actual time : %.6f s\n", res.Actual)
	fmt.Println()
	fmt.Print(res.Sched.Gantt(p.G, 64))
	fmt.Printf("\npipeline metrics:\n%s\n", reg.Snapshot().Text())

	// 4. Verify against the sequential reference.
	worst, err := paradigm.Verify(p, res.Sim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmax deviation from sequential reference: %g\n", worst)
	y, err := res.Sim.Gather("Y")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Y[10,20] = %.0f (want %d)\n", y.At(10, 20), 2*(10+20))
}
