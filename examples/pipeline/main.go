// Pipeline: the workload class the paper's introduction motivates — a
// wide signal-processing-style pipeline whose branches expose functional
// parallelism that pure data parallelism cannot use. Sweeps the branch
// width and shows the MPMD advantage growing with the available
// functional parallelism.
package main

import (
	"fmt"
	"log"

	"paradigm"
)

func main() {
	cal, err := paradigm.Calibrate(paradigm.NewCM5(64))
	if err != nil {
		log.Fatal(err)
	}
	m := paradigm.NewCM5(32)
	const procs = 32

	fmt.Printf("synthetic pipeline on %d processors (64x64 stages, depth 3)\n\n", procs)
	fmt.Printf("%8s  %12s  %12s  %12s\n", "branches", "SPMD (s)", "MPMD (s)", "MPMD gain")
	for _, width := range []int{1, 2, 4, 8} {
		p, err := paradigm.SyntheticPipeline(64, width, 3, cal)
		if err != nil {
			log.Fatal(err)
		}
		spmd, err := paradigm.RunSPMD(p, m, cal, procs)
		if err != nil {
			log.Fatal(err)
		}
		mpmd, err := paradigm.Run(p, m, cal, procs)
		if err != nil {
			log.Fatal(err)
		}
		if worst, err := paradigm.Verify(p, mpmd.Sim); err != nil || worst > 1e-9 {
			log.Fatalf("verification failed at width=%d: %v %v", width, worst, err)
		}
		fmt.Printf("%8d  %12.4f  %12.4f  %11.2fx\n",
			width, spmd.Actual, mpmd.Actual, spmd.Actual/mpmd.Actual)
	}
	fmt.Println("\nwider pipelines -> more functional parallelism -> larger MPMD advantage")
}
