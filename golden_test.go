package paradigm

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden schedule files under testdata/golden")

// formatSchedule renders a schedule as a canonical, diff-friendly text
// form: header, then one line per node in (start, id) order. The pipeline
// is deterministic end to end, so the rendering is byte-stable; any churn
// in a golden file is a behavior change in the allocator, the rounding,
// or the list scheduler, and must be reviewed (and re-blessed with
// `go test -run TestGoldenSchedules -update`).
func formatSchedule(name string, procs int, p *Program, s *Schedule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s on CM-5 procs=%d PB=%d policy=%s\n", name, procs, s.PB, s.Policy)
	fmt.Fprintf(&b, "# makespan %.12g\n", s.Makespan)
	order := make([]int, len(s.Entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := s.Entries[order[a]], s.Entries[order[b]]
		if ea.Start != eb.Start {
			return ea.Start < eb.Start
		}
		return ea.Node < eb.Node
	})
	for _, i := range order {
		e := s.Entries[i]
		procsStr := make([]string, len(e.Procs))
		for k, pr := range e.Procs {
			procsStr[k] = fmt.Sprintf("%d", pr)
		}
		fmt.Fprintf(&b, "%-12s alloc=%-3d procs=[%s] start=%.12g finish=%.12g\n",
			p.G.Nodes[e.Node].Name, s.Alloc[e.Node], strings.Join(procsStr, ","), e.Start, e.Finish)
	}
	return b.String()
}

// TestGoldenSchedules pins the canonical schedules of the paper's two
// benchmark programs at three system sizes. A golden mismatch means the
// allocate->round->schedule pipeline changed its output for a fixed
// input — intentional changes are re-blessed with -update.
func TestGoldenSchedules(t *testing.T) {
	cal := testCal(t)
	model := cal.Model()
	programs := []struct {
		name  string
		build func() (*Program, error)
	}{
		{"cmm32", func() (*Program, error) { return ComplexMatMul(32, cal) }},
		{"strassen16", func() (*Program, error) { return Strassen(16, cal) }},
	}
	for _, pg := range programs {
		p, err := pg.build()
		if err != nil {
			t.Fatalf("%s: %v", pg.name, err)
		}
		for _, procs := range []int{4, 16, 64} {
			t.Run(fmt.Sprintf("%s-p%d", pg.name, procs), func(t *testing.T) {
				ar, err := Allocate(p.G, model, procs)
				if err != nil {
					t.Fatal(err)
				}
				s, err := BuildSchedule(p.G, model, ar.P, procs, ScheduleOptions{})
				if err != nil {
					t.Fatal(err)
				}
				got := formatSchedule(pg.name, procs, p, s)
				path := filepath.Join("testdata", "golden", fmt.Sprintf("%s-p%d.golden", pg.name, procs))
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update to create): %v", err)
				}
				if got != string(want) {
					t.Errorf("schedule diverged from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
				}
			})
		}
	}
}
