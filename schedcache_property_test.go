// The PR 9 schedule-cache purity gate: for the paper's two real
// programs and a population of generated MDGs, a schedule-cache hit must
// replay the allocate→schedule plan byte-identically to the cold solve
// that filled it — and a fresh cache (a restarted service) repopulated
// by one cold solve must replay the same bytes again. For the runnable
// programs the check extends to the full Result digest: the pipeline
// downstream of the plan is deterministic, so a cached plan yields a
// digest equal to an uncached run's.
package paradigm

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"paradigm/internal/mdg"
	"paradigm/internal/oracle"
)

// schedCacheTrace records schedule-cache outcomes and allocation
// backends, the observable evidence that a hit bypassed the solver.
type schedCacheTrace struct {
	mu       sync.Mutex
	outcomes []string
	backends []string
}

func (tr *schedCacheTrace) Observe(e Event) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	switch ev := e.(type) {
	case SchedCacheEvent:
		tr.outcomes = append(tr.outcomes, ev.Outcome)
	case AllocDoneEvent:
		tr.backends = append(tr.backends, ev.Backend)
	}
}

func (tr *schedCacheTrace) last() (outcome, backend string) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if n := len(tr.outcomes); n > 0 {
		outcome = tr.outcomes[n-1]
	}
	if n := len(tr.backends); n > 0 {
		backend = tr.backends[n-1]
	}
	return outcome, backend
}

func samePlan(t *testing.T, label string, ar, br Allocation, as, bs *Schedule) {
	t.Helper()
	if ar.Phi != br.Phi || ar.Ap != br.Ap || ar.Cp != br.Cp {
		t.Fatalf("%s: Φ/A_p/C_p differ: (%v %v %v) vs (%v %v %v)",
			label, ar.Phi, ar.Ap, ar.Cp, br.Phi, br.Ap, br.Cp)
	}
	if len(ar.P) != len(br.P) {
		t.Fatalf("%s: allocation lengths differ", label)
	}
	for i := range ar.P {
		if ar.P[i] != br.P[i] {
			t.Fatalf("%s: P[%d] = %v vs %v", label, i, ar.P[i], br.P[i])
		}
	}
	if as.Makespan != bs.Makespan || as.PB != bs.PB || as.ProcsTotal != bs.ProcsTotal || as.Policy != bs.Policy {
		t.Fatalf("%s: schedule shape differs: %v/%v/%v/%v vs %v/%v/%v/%v", label,
			as.Makespan, as.PB, as.ProcsTotal, as.Policy, bs.Makespan, bs.PB, bs.ProcsTotal, bs.Policy)
	}
	for i := range as.Entries {
		ea, eb := as.Entries[i], bs.Entries[i]
		if as.Alloc[i] != bs.Alloc[i] || ea.Node != eb.Node || ea.Start != eb.Start || ea.Finish != eb.Finish {
			t.Fatalf("%s: entry %d differs: %+v vs %+v", label, i, ea, eb)
		}
		if len(ea.Procs) != len(eb.Procs) {
			t.Fatalf("%s: entry %d proc sets differ", label, i)
		}
		for k := range ea.Procs {
			if ea.Procs[k] != eb.Procs[k] {
				t.Fatalf("%s: entry %d proc %d: %d vs %d", label, i, k, ea.Procs[k], eb.Procs[k])
			}
		}
	}
}

// TestScheduleCacheByteIdentity is the property gate over 50 generated
// MDGs plus the two paper programs: cold solve → warm hit → fresh-cache
// (restart) cold solve → warm hit, all four plans byte-identical, with
// each hit observably bypassing the solver (outcome "hit", backend
// "sched-cache").
func TestScheduleCacheByteIdentity(t *testing.T) {
	cal := testCal(t)
	model := cal.Model()

	graphs := map[string]*mdg.Graph{}
	cmm, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	graphs["cmm"] = cmm.G
	strassen, err := Strassen(16, cal)
	if err != nil {
		t.Fatal(err)
	}
	graphs["strassen"] = strassen.G
	for seed := uint64(1); seed <= 50; seed++ {
		g := oracle.RandomGraph(seed, oracle.GenOptions{})
		// The PSA requires a single-source, single-sink MDG.
		if _, _, err := g.EnsureStartStop(); err != nil {
			t.Fatalf("gen-%d: %v", seed, err)
		}
		graphs[fmt.Sprintf("gen-%d", seed)] = g
	}

	const procs = 16
	ctx := context.Background()
	for name, g := range graphs {
		tr := &schedCacheTrace{}
		solve := func(sc *ScheduleCache, wantOutcome, wantBackend string) (Allocation, *Schedule) {
			ar, s, err := AllocateAndScheduleContext(ctx, g, model, procs,
				WithScheduleCache(sc), WithObserver(tr))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			outcome, backend := tr.last()
			if outcome != wantOutcome {
				t.Fatalf("%s: cache outcome %q, want %q", name, outcome, wantOutcome)
			}
			if wantBackend != "" && backend != wantBackend {
				t.Fatalf("%s: alloc backend %q, want %q", name, backend, wantBackend)
			}
			return ar, s
		}

		sc := NewScheduleCache(8, 2)
		coldAr, coldS := solve(sc, "miss", "")
		warmAr, warmS := solve(sc, "hit", string(BackendSchedCache))
		samePlan(t, name+" warm-vs-cold", warmAr, coldAr, warmS, coldS)

		// "Service restart": an empty cache repopulated by one cold solve
		// must replay the identical plan again.
		sc2 := NewScheduleCache(8, 2)
		reAr, reS := solve(sc2, "miss", "")
		samePlan(t, name+" restart-cold-vs-cold", reAr, coldAr, reS, coldS)
		reWarmAr, reWarmS := solve(sc2, "hit", string(BackendSchedCache))
		samePlan(t, name+" restart-warm-vs-cold", reWarmAr, coldAr, reWarmS, coldS)
	}
}

// TestScheduleCacheDigestIdentity runs the two real programs through the
// full pipeline: a run whose plan replays from the schedule cache must
// produce a Result digest byte-identical to an uncached run.
func TestScheduleCacheDigestIdentity(t *testing.T) {
	cal := testCal(t)
	ctx := context.Background()
	for _, name := range []string{"cmm", "strassen"} {
		var (
			p   *Program
			err error
		)
		if name == "cmm" {
			p, err = ComplexMatMul(16, cal)
		} else {
			p, err = Strassen(16, cal)
		}
		if err != nil {
			t.Fatal(err)
		}
		const procs = 4
		m := NewCM5(procs)
		bare, err := RunContext(ctx, p, m, cal, procs)
		if err != nil {
			t.Fatal(err)
		}

		sc := NewScheduleCache(8, 1)
		cold, err := RunContext(ctx, p, m, cal, procs, WithScheduleCache(sc))
		if err != nil {
			t.Fatal(err)
		}
		tr := &schedCacheTrace{}
		warm, err := RunContext(ctx, p, m, cal, procs, WithScheduleCache(sc), WithObserver(tr))
		if err != nil {
			t.Fatal(err)
		}
		if outcome, backend := tr.last(); outcome != "hit" || backend != string(BackendSchedCache) {
			t.Fatalf("%s: warm run outcome %q backend %q, want hit via sched-cache", name, outcome, backend)
		}
		if d := bare.Digest(); cold.Digest() != d || warm.Digest() != d {
			t.Fatalf("%s: digests diverge: bare %s cold %s warm %s",
				name, d, cold.Digest(), warm.Digest())
		}
	}
}
