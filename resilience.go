// Budget governance and panic containment: the public face of
// internal/resil.
//
// WithStageBudgets bounds each pipeline stage with its own deadline (a
// wedged solver cannot hold the caller past its allocation budget),
// WithRetry retries budget failures with decorrelated-jitter backoff,
// and WithBreaker shares a circuit breaker across calls: after repeated
// allocation timeouts the breaker opens and calls degrade straight to
// the pre-convex heuristic allocator instead of waiting on the solver
// again. None of these mask semantic failures — ErrInfeasible,
// ErrBadGraph and parent-context cancellation always surface unchanged
// (see internal/resil's classification contract).
//
// Panic containment: every public entry point (RunContext,
// ExecuteContext, AllocateContext, ...) recovers internal panics — the
// costmodel's unknown-transfer-kind and dist's grid-position guards are
// reachable with a hand-corrupted Program — and returns them as typed
// errors (ErrUnsupportedTransfer / ErrBadGraph) naming the stage, so no
// malformed input can crash a long-running service.
package paradigm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"paradigm/internal/alloc"
	"paradigm/internal/ckpt"
	"paradigm/internal/obs"
	"paradigm/internal/resil"
	"paradigm/internal/sched"
)

// Resilience re-exports.
type (
	// RetryPolicy bounds stage retries: attempt count, backoff base and
	// cap, and the deterministic jitter seed.
	RetryPolicy = resil.RetryPolicy
	// Breaker is a three-state circuit breaker (closed → open →
	// half-open) shared across pipeline calls.
	Breaker = resil.Breaker
	// BreakerOptions tunes NewBreaker (trip threshold, cooldown).
	BreakerOptions = resil.BreakerOptions
)

// NewBreaker returns a closed circuit breaker.
func NewBreaker(o BreakerOptions) *Breaker { return resil.NewBreaker(o) }

// StageBudgets assigns each pipeline stage its own deadline. A zero
// field leaves that stage unbounded. Budgets nest inside the caller's
// context: the earlier of the stage budget and the parent deadline
// wins, and a parent cancellation is never reclassified as a stage
// timeout.
type StageBudgets struct {
	Calibrate time.Duration
	Allocate  time.Duration
	Schedule  time.Duration
	Codegen   time.Duration
	Execute   time.Duration
}

// WithStageBudgets applies per-stage deadlines to the call.
func WithStageBudgets(b StageBudgets) Option {
	return func(c *config) { c.budgets = b }
}

// WithRetry retries budget failures of the allocation stage under p.
// Semantic errors and parent-context cancellation are never retried.
func WithRetry(p RetryPolicy) Option {
	return func(c *config) { c.retry = p }
}

// WithBreaker shares a circuit breaker across calls: budget failures of
// the allocation stage count toward its threshold, and while it is open
// the solve is shed to the heuristic allocator immediately.
func WithBreaker(b *Breaker) Option {
	return func(c *config) { c.breaker = b }
}

// guardStage converts an escaped internal panic into a typed error
// naming the stage. The costmodel's transfer-kind guards map to
// ErrUnsupportedTransfer; every other panic (dist grid positions,
// matrix shape guards) is a malformed-input bug: ErrBadGraph.
func guardStage(stage string, err *error) {
	r := recover()
	if r == nil {
		return
	}
	msg := fmt.Sprint(r)
	sentinel := ErrBadGraph
	if strings.Contains(msg, "transfer kind") {
		sentinel = ErrUnsupportedTransfer
	}
	*err = fmt.Errorf("paradigm: panic in %s stage: %s: %w", stage, msg, sentinel)
}

// stageContext narrows ctx to the stage budget (0: unchanged).
func stageContext(ctx context.Context, budget time.Duration) (context.Context, context.CancelFunc) {
	if budget <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, budget)
}

// budgetErr rewrites a stage-budget expiry (parent still live) into an
// error naming the stage and its budget; other errors pass unchanged.
func budgetErr(parent context.Context, stage string, budget time.Duration, err error) error {
	if err != nil && budget > 0 && parent.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("paradigm: %s stage exceeded its %v budget: %w", stage, budget, err)
	}
	return err
}

// allocStage is the governed allocation stage shared by AllocateContext
// and RunContext: checkpoint lookup, breaker gate, budgeted solve with
// bounded retry, heuristic degradation when the breaker is open, and
// checkpoint commit.
func (c *config) allocStage(ctx context.Context, g *Graph, model Model, procs int) (Allocation, error) {
	if c.ckptActive() {
		if data, seq, ok := c.ckpt.log.Lookup(ckpt.StageAlloc); ok {
			ar, err := ckpt.DecodeAlloc(data, g.NumNodes())
			if err != nil {
				return Allocation{}, err
			}
			c.emit(obs.Resume{Stage: ckpt.StageAlloc, Seq: seq})
			return ar, nil
		}
	}

	heuristic := func(state string) (Allocation, error) {
		c.emit(obs.Breaker{Stage: "alloc", State: state})
		ar, err := alloc.SolveHeuristic(g, model, procs)
		if err != nil {
			return Allocation{}, err
		}
		c.emit(obs.Replan{Stage: "breaker-fallback", Procs: procs, Phi: ar.Phi})
		return ar, nil
	}
	if c.breaker != nil && !c.breaker.Allow() {
		return c.allocCommit(heuristic(resil.StateOpen))
	}

	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := resil.NewBackoff(c.retry)
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		sctx, cancel := stageContext(ctx, c.budgets.Allocate)
		ar, err := alloc.SolveCtx(sctx, g, model, procs, c.alloc)
		cancel()
		if err == nil {
			if c.breaker != nil {
				c.breaker.Success()
			}
			return c.allocCommit(ar, nil)
		}
		err = budgetErr(ctx, "allocate", c.budgets.Allocate, err)
		switch resil.Classify(ctx, err) {
		case resil.Fatal:
			return Allocation{}, err
		case resil.Budget:
			if c.breaker != nil {
				c.breaker.Failure()
			}
		}
		lastErr = err
		if attempt < attempts {
			d := backoff.Next()
			c.emit(obs.Retry{Stage: "alloc", Attempt: attempt, DelaySeconds: d.Seconds(), Err: err.Error()})
			if serr := resil.Sleep(ctx, d, c.retry.Sleep); serr != nil {
				return Allocation{}, serr
			}
		}
	}
	if c.breaker != nil && !c.breaker.Allow() {
		// The retries themselves tripped the breaker: degrade rather
		// than fail, exactly as the next caller would.
		return c.allocCommit(heuristic(resil.StateOpen))
	}
	return Allocation{}, fmt.Errorf("paradigm: allocation failed after %d attempt(s): %w", attempts, lastErr)
}

// allocCommit checkpoints a successful allocation before returning it.
func (c *config) allocCommit(ar Allocation, err error) (Allocation, error) {
	if err != nil || !c.ckptActive() {
		return ar, err
	}
	payload, perr := ckpt.EncodeAlloc(ar)
	if perr != nil {
		return Allocation{}, fmt.Errorf("paradigm: encode allocation checkpoint: %w", perr)
	}
	if cerr := c.ckptCommit(ckpt.StageAlloc, payload); cerr != nil {
		return Allocation{}, cerr
	}
	return ar, nil
}

// schedStage is the governed PSA stage shared by BuildScheduleContext
// and RunContext.
func (c *config) schedStage(ctx context.Context, g *Graph, model Model, allocation []float64, procs int) (*Schedule, error) {
	if c.ckptActive() {
		if data, seq, ok := c.ckpt.log.Lookup(ckpt.StageSched); ok {
			s, err := ckpt.DecodeSchedule(data, g.NumNodes(), procs)
			if err != nil {
				return nil, err
			}
			c.emit(obs.Resume{Stage: ckpt.StageSched, Seq: seq})
			return s, nil
		}
	}
	sctx, cancel := stageContext(ctx, c.budgets.Schedule)
	defer cancel()
	s, err := sched.RunCtx(sctx, g, model, allocation, procs, c.sched)
	if err != nil {
		return nil, budgetErr(ctx, "schedule", c.budgets.Schedule, err)
	}
	if cerr := c.schedCommit(s); cerr != nil {
		return nil, cerr
	}
	return s, nil
}

// schedCommit checkpoints a completed schedule (no-op without an active
// checkpoint). Shared by schedStage and the schedule-cache replay path.
func (c *config) schedCommit(s *Schedule) error {
	if !c.ckptActive() {
		return nil
	}
	payload, perr := ckpt.EncodeSchedule(s)
	if perr != nil {
		return fmt.Errorf("paradigm: encode schedule checkpoint: %w", perr)
	}
	return c.ckptCommit(ckpt.StageSched, payload)
}
