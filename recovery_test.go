// Chaos harness for fault injection and failure-aware rescheduling: the
// pipeline runs under seeded fault schedules and every recovered result
// must match the sequential reference bit for bit — salvage restores
// blocks exactly and re-run nodes repeat the same FP summation orders,
// so tolerance is zero throughout.
package paradigm

import (
	"context"
	"errors"
	"strings"
	"testing"

	"paradigm/internal/matrix"
	"paradigm/internal/obs"
)

// mustVerifyExact gathers every array and requires a zero worst-case
// deviation from the sequential reference.
func mustVerifyExact(t *testing.T, p *Program, res *Result) {
	t.Helper()
	worst, err := Verify(p, res.Sim)
	if err != nil {
		t.Fatal(err)
	}
	if worst != 0 {
		t.Fatalf("recovered run deviates from reference by %v, want bit-identical", worst)
	}
}

// cleanMakespan runs the fault-free pipeline once for a fail-time hint.
func cleanMakespan(t *testing.T, p *Program, m Machine, cal *Calibration, procs int) float64 {
	t.Helper()
	res, err := Run(p, m, cal, procs)
	if err != nil {
		t.Fatal(err)
	}
	mustVerifyExact(t, p, res)
	return res.Actual
}

func TestChaosRecoveryComplexMatMul(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	m := NewCM5(8)
	hint := cleanMakespan(t, p, m, cal, 8)

	recovered := 0
	for seed := uint64(1); seed <= 6; seed++ {
		plan, err := RandomFaultPlan(seed, FaultRandOptions{
			Procs: 8, MakespanHint: hint, ProcFails: 1, MsgDelays: 2, Stragglers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunContext(context.Background(), p, m, cal, 8,
			WithFaultPlan(plan), WithRecovery(2))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mustVerifyExact(t, p, res)
		if res.Recovered {
			recovered++
			if len(res.FailedProcs) == 0 {
				t.Fatalf("seed %d: recovered run reports no failed processors", seed)
			}
			if res.RecoveryAttempts < 1 {
				t.Fatalf("seed %d: RecoveryAttempts = %d", seed, res.RecoveryAttempts)
			}
		}
	}
	if recovered == 0 {
		t.Fatal("no seed exercised the recovery path — fail times never landed mid-run")
	}
}

func TestChaosRecoveryStrassen(t *testing.T) {
	cal := testCal(t)
	p, err := Strassen(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	m := NewCM5(8)
	hint := cleanMakespan(t, p, m, cal, 8)

	recovered := 0
	for seed := uint64(10); seed <= 15; seed++ {
		plan, err := RandomFaultPlan(seed, FaultRandOptions{
			Procs: 8, MakespanHint: hint, ProcFails: 1, MsgDelays: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunContext(context.Background(), p, m, cal, 8,
			WithFaultPlan(plan), WithRecovery(2))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mustVerifyExact(t, p, res)
		if res.Recovered {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("no seed exercised the recovery path")
	}
}

// TestEveryProcFailureRecovers is the property-style check: ANY single
// processor failure before makespan/2 on the Strassen MDG recovers with
// correct numerics.
func TestEveryProcFailureRecovers(t *testing.T) {
	cal := testCal(t)
	p, err := Strassen(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	m := NewCM5(8)
	hint := cleanMakespan(t, p, m, cal, 8)

	for pr := 0; pr < 8; pr++ {
		for _, frac := range []float64{0.1, 0.4} {
			plan := &FaultPlan{ProcFails: []ProcFail{{Proc: pr, At: hint * frac}}}
			res, err := RunContext(context.Background(), p, m, cal, 8,
				WithFaultPlan(plan), WithRecovery(2))
			if err != nil {
				t.Fatalf("proc %d at %.0f%%: %v", pr, frac*100, err)
			}
			mustVerifyExact(t, p, res)
			// A processor dead mid-run must have forced recovery; a fail
			// time past its last instruction legitimately does not.
			if res.Recovered && (len(res.FailedProcs) != 1 || res.FailedProcs[0] != pr) {
				t.Fatalf("proc %d: FailedProcs = %v", pr, res.FailedProcs)
			}
		}
	}
}

// TestTwoWaveFaultRecovers is the second-wave regression gate: a fault
// plan whose second processor death lands *after* the first halt — i.e.
// during or after the salvage→replan cycle — must re-enter recovery
// (bounded by the retry budget) instead of being silently dropped or
// surfacing as a raw halt. The recovered result must still be
// bit-identical to the sequential reference, and a budget of one must
// surface the second wave as the classified halt it is.
func TestTwoWaveFaultRecovers(t *testing.T) {
	cal := testCal(t)
	p, err := Strassen(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	m := NewCM5(8)
	hint := cleanMakespan(t, p, m, cal, 8)

	var confirmed *FaultPlan
	for _, frac2 := range []float64{0.35, 0.5, 0.7, 0.9} {
		plan := &FaultPlan{ProcFails: []ProcFail{
			{Proc: 2, At: hint * 0.2},
			{Proc: 5, At: hint * frac2},
		}}
		res, err := RunContext(context.Background(), p, m, cal, 8,
			WithFaultPlan(plan), WithRecovery(3))
		if err != nil {
			t.Fatalf("second wave at %.0f%%: %v", frac2*100, err)
		}
		mustVerifyExact(t, p, res)
		if res.RecoveryAttempts >= 2 {
			confirmed = plan
			if !res.Recovered {
				t.Fatalf("two-wave run with %d attempts not marked recovered", res.RecoveryAttempts)
			}
		}
	}
	if confirmed == nil {
		t.Fatal("no second-wave timing re-entered recovery — the residual plan never reached the re-run")
	}

	// The same confirmed two-wave plan under a budget of one must surface
	// the second wave's halt instead of exceeding the budget silently.
	_, err = RunContext(context.Background(), p, m, cal, 8,
		WithFaultPlan(confirmed), WithRecovery(1))
	if err == nil {
		t.Fatal("budget 1 absorbed a two-wave plan that needs two recoveries")
	}
	if !errors.Is(err, ErrProcessorLost) {
		t.Fatalf("budget-exhausted error = %v, want ErrProcessorLost", err)
	}
}

// TestMessageLossRecovers drops early messages by sequence number: the
// watchdog classifies the halt as message loss (no processor died) and
// recovery replans on the full system size.
func TestMessageLossRecovers(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	m := NewCM5(8)
	for seq := 0; seq < 3; seq++ {
		plan := &FaultPlan{MsgFaults: []MsgFault{{Kind: FaultDrop, Seq: seq}}}
		res, err := RunContext(context.Background(), p, m, cal, 8,
			WithFaultPlan(plan), WithRecovery(2))
		if err != nil {
			t.Fatalf("drop seq %d: %v", seq, err)
		}
		mustVerifyExact(t, p, res)
		if !res.Recovered {
			t.Fatalf("drop seq %d: run did not recover (message never blocked a receive?)", seq)
		}
		if len(res.FailedProcs) != 0 {
			t.Fatalf("drop seq %d: message loss reported failed procs %v", seq, res.FailedProcs)
		}
	}
}

// TestRecoveryWithoutOptionSurfacesHalt: a fault plan without
// WithRecovery must surface the classified halt unchanged.
func TestRecoveryWithoutOptionSurfacesHalt(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{ProcFails: []ProcFail{{Proc: 0, At: 0}}}
	_, err = RunContext(context.Background(), p, NewCM5(8), cal, 8, WithFaultPlan(plan))
	if err == nil {
		t.Fatal("want halt without recovery enabled")
	}
	if !errors.Is(err, ErrProcessorLost) {
		t.Fatalf("err = %v, want ErrProcessorLost", err)
	}
	var halt *HaltError
	if !errors.As(err, &halt) {
		t.Fatalf("err = %T, want *HaltError", err)
	}
}

// TestFaultFreeByteIdentical: attaching an empty fault plan and recovery
// must leave the fault-free pipeline byte-identical — same makespan,
// same message count, same data.
func TestFaultFreeByteIdentical(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	m := NewCM5(8)
	plain, err := Run(p, m, cal, 8)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := RunContext(context.Background(), p, m, cal, 8,
		WithFaultPlan(&FaultPlan{}), WithRecovery(3))
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Recovered {
		t.Fatal("fault-free run claims recovery")
	}
	if plain.Actual != faulted.Actual || plain.Sim.Messages != faulted.Sim.Messages {
		t.Fatalf("empty plan changed the run: %v/%d vs %v/%d",
			plain.Actual, plain.Sim.Messages, faulted.Actual, faulted.Sim.Messages)
	}
	for name := range p.Arrays {
		a, err := plain.Sim.Gather(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := faulted.Sim.Gather(name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := matrix.MaxAbsDiff(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Fatalf("array %q differs between plain and empty-plan runs", name)
		}
	}
}

// TestRecoveryEventsEmitted: a recovering run emits Fault, Recovery and
// Replan events through the call-level observer, and the metrics fold
// counts them.
func TestRecoveryEventsEmitted(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	m := NewCM5(8)
	hint := cleanMakespan(t, p, m, cal, 8)
	rec := NewEventRecorder()
	reg := NewMetrics()
	plan := &FaultPlan{ProcFails: []ProcFail{{Proc: 1, At: hint / 4}}}
	res, err := RunContext(context.Background(), p, m, cal, 8,
		WithFaultPlan(plan), WithRecovery(2),
		WithObserver(MultiObserver(rec, NewMetricsObserver(reg))))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Skip("processor 1 finished before the fail time on this schedule")
	}
	kinds := map[obs.Kind]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind()]++
	}
	for _, want := range []obs.Kind{obs.KindFault, obs.KindRecovery, obs.KindReplan} {
		if kinds[want] == 0 {
			t.Fatalf("no %v events recorded (got %v)", want, kinds)
		}
	}
	text := reg.Snapshot().Text()
	for _, metric := range []string{"fault_injected", "recovery_attempts_total", "replan_total"} {
		if !strings.Contains(text, metric) {
			t.Fatalf("metrics snapshot missing %q:\n%s", metric, text)
		}
	}
}
