// The PR 6 determinism gate: the allocator's raw-speed machinery —
// racing multi-start with certified-bound pruning, the warm-start
// cache, the consensus-ADMM backend — must never trade reproducibility
// for speed. For the paper's two real programs and a population of
// generated MDGs, every solve mode must return byte-identical
// allocations at one worker, four workers, and every available core.
package paradigm

import (
	"fmt"
	"runtime"
	"testing"

	"paradigm/internal/alloc"
	"paradigm/internal/alloccache"
	"paradigm/internal/mdg"
	"paradigm/internal/oracle"
	"paradigm/internal/par"
)

func sameAlloc(t *testing.T, label string, a, b alloc.Result) {
	t.Helper()
	if a.Phi != b.Phi || a.Ap != b.Ap || a.Cp != b.Cp {
		t.Fatalf("%s: Φ/A_p/C_p differ: (%v %v %v) vs (%v %v %v)",
			label, a.Phi, a.Ap, a.Cp, b.Phi, b.Ap, b.Cp)
	}
	if len(a.P) != len(b.P) {
		t.Fatalf("%s: allocation lengths differ", label)
	}
	for i := range a.P {
		if a.P[i] != b.P[i] {
			t.Fatalf("%s: P[%d] = %v vs %v", label, i, a.P[i], b.P[i])
		}
	}
}

func TestAllocDeterminismAcrossWidthsAndModes(t *testing.T) {
	cal := testCal(t)
	model := cal.Model()

	graphs := map[string]*mdg.Graph{}
	cmm, err := ComplexMatMul(64, cal)
	if err != nil {
		t.Fatal(err)
	}
	graphs["cmm"] = cmm.G
	strassen, err := Strassen(64, cal)
	if err != nil {
		t.Fatal(err)
	}
	graphs["strassen"] = strassen.G
	for seed := uint64(1); seed <= 50; seed++ {
		graphs[fmt.Sprintf("gen-%d", seed)] = oracle.RandomGraph(seed, oracle.GenOptions{})
	}

	widths := []string{"1", "4", fmt.Sprint(runtime.GOMAXPROCS(0))}
	const procs = 16
	for name, g := range graphs {
		// base[mode] is the width-1 result each other width must match.
		var baseCold, baseRacing, baseWarm alloc.Result
		for wi, width := range widths {
			t.Setenv(par.EnvWorkers, width)
			cold, err := alloc.Solve(g, model, procs, alloc.Options{})
			if err != nil {
				t.Fatalf("%s width %s: cold: %v", name, width, err)
			}
			cache := alloccache.New(4)
			racing, err := alloc.Solve(g, model, procs, alloc.Options{MultiStart: 4, Cache: cache})
			if err != nil {
				t.Fatalf("%s width %s: racing: %v", name, width, err)
			}
			if racing.CacheOutcome != "miss" {
				t.Fatalf("%s width %s: racing outcome %q", name, width, racing.CacheOutcome)
			}
			warm, err := alloc.Solve(g, model, procs, alloc.Options{MultiStart: 4, Cache: cache})
			if err != nil {
				t.Fatalf("%s width %s: warm: %v", name, width, err)
			}
			if warm.CacheOutcome != "hit" {
				t.Fatalf("%s width %s: warm outcome %q", name, width, warm.CacheOutcome)
			}
			// The exact hit replays the racing solve it memoized.
			sameAlloc(t, name+" warm-vs-racing width "+width, warm, racing)
			if wi == 0 {
				baseCold, baseRacing, baseWarm = cold, racing, warm
				continue
			}
			sameAlloc(t, name+" cold width "+width, cold, baseCold)
			sameAlloc(t, name+" racing width "+width, racing, baseRacing)
			sameAlloc(t, name+" warm width "+width, warm, baseWarm)
		}
	}
}
