// Benchmarks regenerating every table and figure of the paper's
// evaluation section (one benchmark per artifact, per DESIGN.md's
// experiment index), plus the ablations. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the complete experiment — calibration reuse,
// convex allocation, PSA scheduling, MPMD code generation and simulated
// execution where applicable — so the reported time is the cost of
// regenerating that artifact end to end.
package paradigm

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"paradigm/internal/alloc"
	"paradigm/internal/alloccache"
	"paradigm/internal/experiments"
	"paradigm/internal/mdg"
	"paradigm/internal/programs"
	"paradigm/internal/trainsets"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() { benchEnv, benchErr = experiments.NewEnv() })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkFig1Fig2Example regenerates the Section 1.2 motivating example
// (naive 15.6 s vs mixed 14.3 s on 4 processors).
func BenchmarkFig1Fig2Example(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Example3Node(e)
		if err != nil {
			b.Fatal(err)
		}
		if r.MixedTime >= r.NaiveTime {
			b.Fatal("mixed schedule must beat naive")
		}
	}
}

// BenchmarkTable1ProcessingFit regenerates the Amdahl parameter fits.
func BenchmarkTable1ProcessingFit(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ProcessingCurves regenerates the actual-vs-predicted
// processing cost series.
func BenchmarkFig3ProcessingCurves(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2TransferFit regenerates the transfer parameter fits
// (full measurement sweep plus regression) — the actual calibration work
// behind Table 2, not the cached Env copy.
func BenchmarkTable2TransferFit(b *testing.B) {
	e := env(b)
	configs := trainsets.DefaultTransferConfigs(e.Machine.Procs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainsets.CalibrateTransfers(e.Machine, configs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5TransferCurves regenerates the transfer cost series.
func BenchmarkFig5TransferCurves(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6MDGs rebuilds both test-program MDGs and their DOT
// renderings.
func BenchmarkFig6MDGs(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Gantt regenerates the Complex Matrix Multiply allocation
// and schedule on 4 processors.
func BenchmarkFig7Gantt(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8SpeedupEfficiency regenerates the SPMD-versus-MPMD sweep:
// 2 programs × {serial, 16, 32, 64} × both disciplines, all simulated.
func BenchmarkFig8SpeedupEfficiency(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(e)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.MPMDSpeedup < row.SPMDSpeedup {
				b.Fatalf("%s p=%d: MPMD lost to SPMD", row.Program, row.Procs)
			}
		}
	}
}

// BenchmarkFig9PredictedVsActual regenerates the prediction accuracy
// comparison.
func BenchmarkFig9PredictedVsActual(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(e)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Normalized < 0.7 || row.Normalized > 1.4 {
				b.Fatalf("%s p=%d: normalized %v", row.Program, row.Procs, row.Normalized)
			}
		}
	}
}

// BenchmarkTable3PhiVsTpsa regenerates the Φ-versus-T_psa deviations.
func BenchmarkTable3PhiVsTpsa(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRounding regenerates ablation A1 (rounding/bounding
// cost and the Theorem 3 bound check).
func BenchmarkAblationRounding(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRounding(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPBSweep regenerates ablation A2 (PB sweep versus
// Corollary 1).
func BenchmarkAblationPBSweep(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPBSweep(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoTransferCosts regenerates ablation A3
// (transfer-blind allocation penalty).
func BenchmarkAblationNoTransferCosts(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationNoTransferCosts(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScheduler regenerates ablation A4 (PSA vs FIFO).
func BenchmarkAblationScheduler(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationScheduler(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndStrassen64 measures one full pipeline run (allocate +
// schedule + codegen + simulate) of Strassen 128×128 on 64 processors —
// the heaviest single configuration in the paper.
func BenchmarkEndToEndStrassen64(b *testing.B) {
	e := env(b)
	cal := e.Cal
	p, err := Strassen(128, cal)
	if err != nil {
		b.Fatal(err)
	}
	m := NewCM5(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(p, m, cal, 64)
		if err != nil {
			b.Fatal(err)
		}
		if res.Actual <= 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkAblationHeuristic regenerates ablation A5 (convex vs greedy
// heuristic allocation).
func BenchmarkAblationHeuristic(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationHeuristic(e)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.GapPct < -0.5 {
				b.Fatal("heuristic beat the convex optimum")
			}
		}
	}
}

// BenchmarkAblationStaticEstimate regenerates ablation A6 (training sets
// vs compile-time static estimation).
func BenchmarkAblationStaticEstimate(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStaticEstimate(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPortabilityParagon regenerates experiment E11 (full pipeline
// on the Intel-Paragon-like profile, including its own calibration).
func BenchmarkPortabilityParagon(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Portability(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationJitter regenerates ablation A7 (execution noise
// robustness sweep).
func BenchmarkAblationJitter(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationJitter(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridDistribution regenerates experiment E12 (the general
// 2D-distribution extension: grid vs 1D multiply layouts end to end).
func BenchmarkGridDistribution(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.GridDistribution(e)
		if err != nil {
			b.Fatal(err)
		}
		if r.AlphaGridPct >= r.Alpha1DPct {
			b.Fatal("grid multiply should fit a lower serial fraction")
		}
	}
}

// BenchmarkScalability regenerates experiment E13 (allocator scalability
// on layered synthetic MDGs up to 100+ nodes).
func BenchmarkScalability(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Scalability(e)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.PhiHeuristic < row.PhiConvex*(1-5e-3) {
				b.Fatal("heuristic beat convex")
			}
		}
	}
}

// BenchmarkStrassenRecursion regenerates experiment E14 (recursive
// Strassen depth sweep on 64 processors).
func BenchmarkStrassenRecursion(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.StrassenRecursion(e)
		if err != nil {
			b.Fatal(err)
		}
		if r.WorstNumDiff > 1e-9 {
			b.Fatal("numerics broken")
		}
	}
}

// BenchmarkAllocSolveCMM is the direct allocation fast path: one convex
// solve (expression-DAG compile + annealed projected gradient descent)
// for the Complex Matrix Multiply MDG on 32 processors.
func BenchmarkAllocSolveCMM(b *testing.B) {
	e := env(b)
	p, err := programs.ComplexMatMul(64, e.Cal)
	if err != nil {
		b.Fatal(err)
	}
	model := e.Cal.Model()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alloc.Solve(p.G, model, 32, alloc.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocSolveMultiStart runs the same problem with four
// deterministic start points fanned across the worker pool.
func BenchmarkAllocSolveMultiStart(b *testing.B) {
	e := env(b)
	p, err := programs.ComplexMatMul(64, e.Cal)
	if err != nil {
		b.Fatal(err)
	}
	model := e.Cal.Model()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alloc.Solve(p.G, model, 32, alloc.Options{MultiStart: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocSolveWarmCache measures the warm-start cache's exact-hit
// replay: the same multi-start problem as above, primed once outside the
// timer, then served entirely from the cache (canonical hash + lookup +
// permute back, no compile, no solve).
func BenchmarkAllocSolveWarmCache(b *testing.B) {
	e := env(b)
	p, err := programs.ComplexMatMul(64, e.Cal)
	if err != nil {
		b.Fatal(err)
	}
	model := e.Cal.Model()
	opts := alloc.Options{MultiStart: 4, Cache: alloccache.New(8)}
	if _, err := alloc.Solve(p.G, model, 32, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := alloc.Solve(p.G, model, 32, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.CacheOutcome != "hit" {
			b.Fatalf("outcome %q, want hit", res.CacheOutcome)
		}
	}
}

// benchLayeredMDG builds the 1000-node layered DAG the decomposition
// backend is scaled on: 100 layers × 10 nodes, 1-2 successors each.
func benchLayeredMDG() *mdg.Graph {
	rng := rand.New(rand.NewSource(42))
	var g mdg.Graph
	const layers, width = 100, 10
	ids := make([][]mdg.NodeID, layers)
	for l := range ids {
		ids[l] = make([]mdg.NodeID, width)
		for w := 0; w < width; w++ {
			ids[l][w] = g.AddNode(mdg.Node{
				Alpha: 0.1 + 0.8*rng.Float64(),
				Tau:   1e-3 + 1e-2*rng.Float64(),
			})
		}
	}
	for l := 0; l+1 < layers; l++ {
		for w := 0; w < width; w++ {
			for _, dst := range []int{w, (w + 1) % width}[:1+rng.Intn(2)] {
				g.AddEdge(ids[l][w], ids[l+1][dst], mdg.Transfer{
					Bytes: 256 << rng.Intn(6),
					Kind:  mdg.Transfer1D,
				})
			}
		}
	}
	return &g
}

// BenchmarkAllocSolveADMM1000 scales the consensus-ADMM backend over the
// subgraph count on a 1000-node MDG, raw decomposition only (no polish,
// fixed outer-iteration budget): the wall-clock should drop near
// linearly as the per-subgraph convex programs shrink and parallelize.
func BenchmarkAllocSolveADMM1000(b *testing.B) {
	e := env(b)
	model := e.Cal.Model()
	g := benchLayeredMDG()
	for _, subs := range []int{2, 4, 8, 16} {
		// "subs=N", not "subs-N": benchparse strips a trailing -<int>
		// as the GOMAXPROCS suffix.
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			opts := alloc.Options{Backend: "admm", ADMM: alloc.ADMMOptions{
				Subgraphs: subs, MaxIters: 6, SkipPolish: true,
			}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := alloc.Solve(g, model, 64, opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Phi <= 0 {
					b.Fatal("empty solve")
				}
			}
		})
	}
}

// BenchmarkRunNilObserver is the full pipeline (allocate, schedule,
// generate, simulate) for the Complex Matrix Multiply on 16 processors
// with no observer attached: the instrumented code paths pay one nil
// check per would-be event. Its pair below attaches a recorder and a
// metrics registry; the delta is the total cost of the observability
// layer.
func BenchmarkRunNilObserver(b *testing.B) {
	e := env(b)
	p, err := programs.ComplexMatMul(64, e.Cal)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunContext(context.Background(), p, e.Machine, e.Cal, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunWithObserver is BenchmarkRunNilObserver with the full
// observer stack attached: an event recorder plus a metrics registry
// fanned out through MultiObserver.
func BenchmarkRunWithObserver(b *testing.B) {
	e := env(b)
	p, err := programs.ComplexMatMul(64, e.Cal)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := NewMetrics()
		ob := MultiObserver(NewEventRecorder(), NewMetricsObserver(reg))
		if _, err := RunContext(context.Background(), p, e.Machine, e.Cal, 16, WithObserver(ob)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunNoFaults is the full Complex Matrix Multiply pipeline on
// 16 processors with the fault machinery idle (no plan, no recovery):
// the baseline the recovery benchmark below is compared against, and
// the regression guard for the fault-injection hooks on the clean path.
func BenchmarkRunNoFaults(b *testing.B) {
	e := env(b)
	p, err := programs.ComplexMatMul(64, e.Cal)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunContext(context.Background(), p, e.Machine, e.Cal, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunWithRecovery kills one processor a quarter of the way
// through the run and measures the full survive-and-replan cycle:
// halted simulation, salvage, residual program, re-allocation, PSA on
// the survivors, code generation and the recovery run.
func BenchmarkRunWithRecovery(b *testing.B) {
	e := env(b)
	p, err := programs.ComplexMatMul(64, e.Cal)
	if err != nil {
		b.Fatal(err)
	}
	clean, err := RunContext(context.Background(), p, e.Machine, e.Cal, 16)
	if err != nil {
		b.Fatal(err)
	}
	plan := &FaultPlan{ProcFails: []ProcFail{{Proc: 1, At: clean.Actual / 4}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunContext(context.Background(), p, e.Machine, e.Cal, 16,
			WithFaultPlan(plan), WithRecovery(2))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Recovered {
			b.Fatal("benchmark plan did not trigger recovery")
		}
	}
}

// BenchmarkRunNoCheckpoint is the full Complex Matrix Multiply pipeline
// (n=256 on 64 processors — the paper's production scale) with
// checkpointing off: the baseline the WAL overhead below is measured
// against (the <3% budget of DESIGN.md §11).
func BenchmarkRunNoCheckpoint(b *testing.B) {
	e := env(b)
	p, err := programs.ComplexMatMul(256, e.Cal)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunContext(context.Background(), p, e.Machine, e.Cal, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunWithCheckpoint is the same pipeline with a write-ahead
// checkpoint log attached: five stage commits per run on a fresh WAL,
// each an encode + CRC + record append + commit-pointer publish
// (process-crash durability, the default — see DESIGN.md §11).
func BenchmarkRunWithCheckpoint(b *testing.B) {
	e := env(b)
	p, err := programs.ComplexMatMul(256, e.Cal)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp, err := CreateCheckpoint(filepath.Join(dir, "bench.wal"))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunContext(context.Background(), p, e.Machine, e.Cal, 64, WithCheckpoint(cp)); err != nil {
			b.Fatal(err)
		}
		cp.Close()
	}
}
