package jobstore

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"paradigm/internal/errs"
)

func submit(id, tenant string) Submit {
	return Submit{ID: id, Program: "cmm", Size: 32, Procs: 8, Tenant: tenant}
}

func TestShardedRoutingAndReplay(t *testing.T) {
	dir := t.TempDir()
	s, states, err := OpenSharded(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 || s.Shards() != 4 {
		t.Fatalf("fresh store: %d states, %d shards", len(states), s.Shards())
	}
	tenants := []string{"acme", "hobby", "acme", "zeta"}
	for i, tn := range tenants {
		if err := s.AppendSubmit(submit(fmt.Sprint(i+1), tn)); err != nil {
			t.Fatal(err)
		}
	}
	// Same tenant always routes to the same shard.
	if s.ShardFor("acme") != s.ShardFor("acme") {
		t.Fatal("unstable tenant routing")
	}
	if err := s.AppendState(State{ID: "2", Status: StatusDone, Digest: "d2"}); err != nil {
		t.Fatal(err)
	}
	if got := s.Lag(); got != 3 {
		t.Fatalf("lag = %d, want 3", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: merged replay in numeric id order, transitions intact.
	s2, states, err := OpenSharded(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(states) != 4 {
		t.Fatalf("replayed %d states, want 4", len(states))
	}
	for i, st := range states {
		if st.ID != fmt.Sprint(i+1) {
			t.Fatalf("state %d has id %s: not in id order", i, st.ID)
		}
		if st.Tenant != tenants[i] {
			t.Fatalf("job %s lost tenant: %q", st.ID, st.Tenant)
		}
	}
	if states[1].Status != StatusDone || states[1].Digest != "d2" {
		t.Fatalf("job 2 state %+v", states[1])
	}
	// A recovered job's transition still lands on the original shard.
	if err := s2.AppendState(State{ID: "1", Status: StatusFailed, Error: "x"}); err != nil {
		t.Fatal(err)
	}
}

// Shrinking the configured shard count never orphans committed records.
func TestShardedResizeSafe(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenSharded(dir, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.AppendSubmit(submit(fmt.Sprint(i), fmt.Sprintf("t%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	small, states, err := OpenSharded(dir, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	if len(states) != 8 {
		t.Fatalf("resize lost records: %d/8", len(states))
	}
	if small.Shards() < 8 {
		t.Fatalf("discovered %d shards, want >= 8", small.Shards())
	}
}

// A pre-tenancy single-file journal is adopted: its jobs replay and can
// finish, but new submits route to the sharded files.
func TestShardedAdoptsLegacyJournal(t *testing.T) {
	dir := t.TempDir()
	legacy, _, err := Open(dir+"/"+FileName, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.AppendSubmit(Submit{ID: "1", Program: "strassen", Size: 64, Procs: 16}); err != nil {
		t.Fatal(err)
	}
	legacy.Close()

	s, states, err := OpenSharded(dir, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if len(states) != 1 || states[0].ID != "1" {
		t.Fatalf("legacy job not adopted: %+v", states)
	}
	if err := s.AppendState(State{ID: "1", Status: StatusDone, Digest: "d"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubmit(submit("2", "acme")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// The legacy file holds job 1's terminal state; job 2 lives in a
	// shard file.
	j, jstates, err := Open(dir+"/"+FileName, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(jstates) != 1 || jstates[0].Status != StatusDone {
		t.Fatalf("legacy journal: %+v", jstates)
	}
}

func TestShardedRefusesCorruptShard(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenSharded(dir, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubmit(submit("1", "acme")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := ShardPath(dir, s.ShardFor("acme"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenSharded(dir, 2, nil); !errors.Is(err, errs.ErrJobJournalCorrupt) {
		t.Fatalf("corrupt shard opened: %v", err)
	}
}

func TestShardedRefusesCrossShardDuplicate(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		j, _, err := Open(ShardPath(dir, i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.AppendSubmit(submit("7", fmt.Sprintf("t%d", i))); err != nil {
			t.Fatal(err)
		}
		j.Close()
	}
	if _, _, err := OpenSharded(dir, 2, nil); !errors.Is(err, errs.ErrJobJournalCorrupt) {
		t.Fatalf("cross-shard duplicate accepted: %v", err)
	}
}
