// The tenant-sharded job store: N independent journals, each with the
// full WAL durability model of jobstore.Journal, with submits routed by
// a stable hash of the tenant name. Sharding bounds append contention
// (tenants on different shards never serialize on one mutex or one
// fsync stream) and bounds the blast radius of file damage to the
// tenants of one shard — though any damaged shard still refuses the
// whole store, per the journal's no-silent-loss contract.
//
// Resize safety: OpenSharded discovers existing shard files by glob and
// opens max(requested, discovered), so shrinking the configured count
// never orphans committed records. A job's status transitions always
// append to the shard holding its submit (tracked in an id→shard map
// built at replay), so rerouting caused by a resize affects only new
// submits. A legacy single-file "jobs.journal" from a pre-tenancy
// service is adopted read/append as an extra shard: its jobs recover and
// finish normally, but no new submit routes to it.

package jobstore

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"paradigm/internal/obs"
)

// ShardPath returns the journal path of shard i inside dir.
func ShardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("jobs-shard-%03d.journal", i))
}

// Sharded is a tenant-sharded job store. All methods are safe for
// concurrent use.
type Sharded struct {
	mu sync.Mutex
	// shards[0:routable] receive new submits; any adopted legacy journal
	// sits past routable and only ever receives state transitions.
	shards   []*Journal
	routable int
	// byID maps every known job id to the shard index holding its
	// submit record.
	byID map[string]int
}

// OpenSharded opens (or creates) a store of at least n shards inside
// dir, adopting any extra shard files a previously larger configuration
// left behind and any legacy single-file journal. It returns the merged
// replay of every shard in job-id order (numeric ids numerically, others
// lexically). Any damaged shard refuses the whole store with
// errs.ErrJobJournalCorrupt; a duplicate job id across shards is the
// same refusal — it cannot result from the append discipline.
func OpenSharded(dir string, n int, observer obs.Observer) (*Sharded, []JobState, error) {
	if n < 1 {
		n = 1
	}
	found, err := filepath.Glob(filepath.Join(dir, "jobs-shard-*.journal"))
	if err != nil {
		return nil, nil, fmt.Errorf("jobstore: scan shards in %s: %w", dir, err)
	}
	for _, path := range found {
		var i int
		if _, serr := fmt.Sscanf(filepath.Base(path), "jobs-shard-%d.journal", &i); serr == nil && i+1 > n {
			n = i + 1
		}
	}
	s := &Sharded{routable: n, byID: map[string]int{}}
	paths := make([]string, 0, n+1)
	for i := 0; i < n; i++ {
		paths = append(paths, ShardPath(dir, i))
	}
	if legacy := filepath.Join(dir, FileName); fileExists(legacy) {
		paths = append(paths, legacy)
	}

	var merged []JobState
	for idx, path := range paths {
		j, states, err := Open(path, observer)
		if err != nil {
			s.Close()
			return nil, nil, err
		}
		s.shards = append(s.shards, j)
		for _, st := range states {
			if prev, dup := s.byID[st.ID]; dup {
				s.Close()
				return nil, nil, corrupt("job %s submitted in both %s and %s",
					st.ID, paths[prev], path)
			}
			s.byID[st.ID] = idx
			merged = append(merged, st)
		}
	}
	sort.Slice(merged, func(a, b int) bool { return jobIDLess(merged[a].ID, merged[b].ID) })
	return s, merged, nil
}

// jobIDLess orders ids numerically when both are integers (the service
// assigns dense integer ids) and lexically otherwise.
func jobIDLess(a, b string) bool {
	na, ea := strconv.Atoi(a)
	nb, eb := strconv.Atoi(b)
	if ea == nil && eb == nil {
		return na < nb
	}
	if (ea == nil) != (eb == nil) {
		return ea == nil
	}
	return a < b
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// ShardFor returns the shard index new submits for the tenant route to.
func (s *Sharded) ShardFor(tenant string) int {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	return int(h.Sum32()) % s.routable
}

// Shards reports the number of open shards (including an adopted legacy
// journal).
func (s *Sharded) Shards() int { return len(s.shards) }

// AppendSubmit journals an accepted job on its tenant's shard,
// committed before return exactly as Journal.AppendSubmit.
func (s *Sharded) AppendSubmit(sub Submit) error {
	if err := validateSubmit(sub); err != nil {
		return fmt.Errorf("jobstore: refusing to journal invalid %v", err)
	}
	idx := s.ShardFor(sub.Tenant)
	s.mu.Lock()
	if _, dup := s.byID[sub.ID]; dup {
		s.mu.Unlock()
		return fmt.Errorf("jobstore: duplicate submit for job %s", sub.ID)
	}
	s.byID[sub.ID] = idx
	s.mu.Unlock()
	if err := s.shards[idx].AppendSubmit(sub); err != nil {
		s.mu.Lock()
		delete(s.byID, sub.ID)
		s.mu.Unlock()
		return err
	}
	return nil
}

// AppendState journals one status transition on the shard holding the
// job's submit.
func (s *Sharded) AppendState(st State) error {
	s.mu.Lock()
	idx, ok := s.byID[st.ID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("jobstore: state for unknown job %s", st.ID)
	}
	return s.shards[idx].AppendState(st)
}

// Lag sums the per-shard journal lag: accepted jobs not yet terminal.
func (s *Sharded) Lag() int {
	n := 0
	for _, j := range s.shards {
		n += j.Lag()
	}
	return n
}

// Len sums the committed record counts of every shard.
func (s *Sharded) Len() int {
	n := 0
	for _, j := range s.shards {
		n += j.Len()
	}
	return n
}

// Close releases every shard's write handle, returning the first error.
func (s *Sharded) Close() error {
	var first error
	for _, j := range s.shards {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
