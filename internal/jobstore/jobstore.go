// Package jobstore is the scheduling service's durable job journal: an
// append-only record of every accepted submit and every job status
// transition, committed to disk before it is acknowledged, so a SIGKILL
// of the service loses no accepted job.
//
// The journal reuses internal/ckpt's write-ahead log verbatim — the same
// magic/version header, the same committed-length/CRC commit pointer
// published in place after each append, the same torn-tail truncation on
// reopen — so its durability and integrity model is exactly the WAL's:
// a record either committed completely or is invisible, and any damage
// inside the committed region is refused loudly. On top of the byte
// layer this package adds two record kinds (a "submit" and a "state"
// transition, both strict JSON), a total Decode over arbitrary bytes
// (the FuzzJobJournalDecode target), and a Replay that folds the record
// stream into per-job end states for restart recovery.
//
// Every structural or semantic defect — ckpt-level corruption, an
// undecodable or invalid payload, a transition for a job never
// submitted, a transition out of a terminal state — wraps
// errs.ErrJobJournalCorrupt: the service refuses to boot over a damaged
// journal rather than silently dropping or inventing accepted jobs.
package jobstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"paradigm/internal/ckpt"
	"paradigm/internal/errs"
	"paradigm/internal/obs"
)

// FileName is the journal's conventional file name inside the service's
// checkpoint directory, next to the per-job "job-<id>.wal" files.
const FileName = "jobs.journal"

// Record kinds (the ckpt stage names the journal commits under).
const (
	recSubmit = "submit"
	recState  = "state"
)

// Job statuses a state record may carry. Queued and Running are open;
// Done and Failed are terminal — no transition may leave them.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Submit is the accepted-job record: the full request, journaled before
// the 202 acknowledgement. A journaled submit with no terminal state is
// re-enqueued on restart.
type Submit struct {
	ID        string `json:"id"`
	Program   string `json:"program"`
	Size      int    `json:"size"`
	Procs     int    `json:"procs"`
	Recover   int    `json:"recover,omitempty"`
	Retries   int    `json:"retries,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Tenant and Class scope the job under the multi-tenant admission
	// policy; both empty on journals written before tenancy existed, so
	// old journals decode unchanged.
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class,omitempty"`
}

// State is one status transition. Done records carry the result digest
// and headline numbers; Failed records carry the error.
type State struct {
	ID     string  `json:"id"`
	Status string  `json:"status"`
	Error  string  `json:"error,omitempty"`
	Phi    float64 `json:"phi,omitempty"`
	Actual float64 `json:"actual,omitempty"`
	Digest string  `json:"digest,omitempty"`
}

// Event is one decoded journal record: exactly one of Submit or State is
// non-nil.
type Event struct {
	Submit *Submit
	State  *State
}

// JobState is one job's folded end state after Replay: the original
// submit plus the latest journaled status.
type JobState struct {
	Submit
	Status string
	Error  string
	Phi    float64
	Actual float64
	Digest string
}

// Terminal reports whether the job reached done or failed.
func (s JobState) Terminal() bool {
	return s.Status == StatusDone || s.Status == StatusFailed
}

// corrupt wraps a journal defect over both the package sentinel and the
// underlying cause.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("jobstore: %w: %s", errs.ErrJobJournalCorrupt, fmt.Sprintf(format, args...))
}

func validateSubmit(s Submit) error {
	switch {
	case s.ID == "":
		return fmt.Errorf("submit with empty job id")
	case s.Program == "":
		return fmt.Errorf("submit %s with empty program", s.ID)
	case s.Size <= 0 || s.Procs <= 0:
		return fmt.Errorf("submit %s with size=%d procs=%d", s.ID, s.Size, s.Procs)
	case s.Recover < 0 || s.Retries < 0:
		return fmt.Errorf("submit %s with recover=%d retries=%d", s.ID, s.Recover, s.Retries)
	}
	return nil
}

func validateState(s State) error {
	if s.ID == "" {
		return fmt.Errorf("state with empty job id")
	}
	switch s.Status {
	case StatusQueued, StatusRunning, StatusDone, StatusFailed:
		return nil
	}
	return fmt.Errorf("state for job %s with unknown status %q", s.ID, s.Status)
}

// Journal is an open job journal. Unlike a per-run checkpoint, a journal
// is shared by every service worker, so appends are serialized by an
// internal mutex.
type Journal struct {
	mu       sync.Mutex
	log      *ckpt.Log
	observer obs.Observer
	// lag counts jobs journaled as accepted whose terminal state has not
	// been journaled yet — the restart backlog the health endpoint
	// reports as journal lag.
	lag int
}

// Open opens (or creates) the journal at path and folds the committed
// records into per-job states for restart recovery. A structurally
// damaged journal, or one whose record stream is semantically invalid,
// is refused with errs.ErrJobJournalCorrupt — torn uncommitted tails are
// not damage and are truncated to the commit pointer exactly as
// internal/ckpt does. The observer (may be nil) receives one
// obs.JournalAppend per subsequent durable append.
func Open(path string, observer obs.Observer) (*Journal, []JobState, error) {
	l, err := ckpt.Open(path)
	if err != nil {
		if errors.Is(err, ckpt.ErrCorrupt) || errors.Is(err, ckpt.ErrVersion) {
			return nil, nil, fmt.Errorf("%w (%v)", corrupt("open %s", path), err)
		}
		// An IO failure (missing directory, permissions) is not damage.
		return nil, nil, fmt.Errorf("jobstore: open %s: %w", path, err)
	}
	events, err := fold(l.Records())
	if err != nil {
		return nil, nil, fmt.Errorf("%w (in %s)", err, path)
	}
	states, err := Replay(events)
	if err != nil {
		return nil, nil, fmt.Errorf("%w (in %s)", err, path)
	}
	j := &Journal{log: l, observer: observer}
	for _, st := range states {
		if !st.Terminal() {
			j.lag++
		}
	}
	return j, states, nil
}

// AppendSubmit journals an accepted job. It returns only after the
// record is committed: the caller may acknowledge the submit the moment
// this returns.
func (j *Journal) AppendSubmit(s Submit) error {
	if err := validateSubmit(s); err != nil {
		return fmt.Errorf("jobstore: refusing to journal invalid %v", err)
	}
	return j.append(recSubmit, s.ID, s, func() { j.lag++ })
}

// AppendState journals one status transition, committed before the
// transition is visible anywhere else.
func (j *Journal) AppendState(s State) error {
	if err := validateState(s); err != nil {
		return fmt.Errorf("jobstore: refusing to journal invalid %v", err)
	}
	onCommit := func() {}
	if s.Status == StatusDone || s.Status == StatusFailed {
		onCommit = func() {
			if j.lag > 0 {
				j.lag--
			}
		}
	}
	return j.append(recState, s.Status, s, onCommit)
}

func (j *Journal) append(kind, label string, v any, onCommit func()) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("jobstore: encode %s: %w", kind, err)
	}
	j.mu.Lock()
	err = j.log.Commit(kind, payload)
	if err == nil {
		onCommit()
	}
	j.mu.Unlock()
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if j.observer != nil {
		record := label
		if kind == recSubmit {
			record = recSubmit
		}
		j.observer.Observe(obs.JournalAppend{Record: record, Bytes: len(payload)})
	}
	return nil
}

// Lag returns the number of journaled jobs with no terminal state yet.
func (j *Journal) Lag() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lag
}

// Len returns the number of committed journal records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Len()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.log.Path() }

// Close releases the journal's write handle; a later append reopens it.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Close()
}

// Decode parses a raw journal image into its event stream. It is total
// over arbitrary bytes — the FuzzJobJournalDecode target — and strict:
// the ckpt layer validates structure and CRCs, and every payload must
// decode to a valid submit or state record. All failures wrap
// errs.ErrJobJournalCorrupt.
func Decode(data []byte) ([]Event, error) {
	records, err := ckpt.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%v)", corrupt("undecodable image"), err)
	}
	return fold(records)
}

// fold converts validated ckpt records into typed journal events.
func fold(records []ckpt.Record) ([]Event, error) {
	events := make([]Event, 0, len(records))
	for _, r := range records {
		switch r.Stage {
		case recSubmit:
			var s Submit
			if err := json.Unmarshal(r.Payload, &s); err != nil {
				return nil, corrupt("record %d: submit: %v", r.Seq, err)
			}
			if err := validateSubmit(s); err != nil {
				return nil, corrupt("record %d: %v", r.Seq, err)
			}
			events = append(events, Event{Submit: &s})
		case recState:
			var s State
			if err := json.Unmarshal(r.Payload, &s); err != nil {
				return nil, corrupt("record %d: state: %v", r.Seq, err)
			}
			if err := validateState(s); err != nil {
				return nil, corrupt("record %d: %v", r.Seq, err)
			}
			events = append(events, Event{State: &s})
		default:
			return nil, corrupt("record %d: unknown record kind %q", r.Seq, r.Stage)
		}
	}
	return events, nil
}

// Replay folds an event stream into per-job end states, in submit
// order. The stream must be causally consistent: one submit per job id,
// every transition names a submitted job, and no transition leaves a
// terminal state — violations mean the journal was not written by the
// service's append discipline and wrap errs.ErrJobJournalCorrupt.
func Replay(events []Event) ([]JobState, error) {
	byID := map[string]*JobState{}
	var order []string
	for i, e := range events {
		switch {
		case e.Submit != nil:
			if _, dup := byID[e.Submit.ID]; dup {
				return nil, corrupt("event %d: duplicate submit for job %s", i, e.Submit.ID)
			}
			byID[e.Submit.ID] = &JobState{Submit: *e.Submit, Status: StatusQueued}
			order = append(order, e.Submit.ID)
		case e.State != nil:
			st, ok := byID[e.State.ID]
			if !ok {
				return nil, corrupt("event %d: transition for unsubmitted job %s", i, e.State.ID)
			}
			if st.Terminal() {
				return nil, corrupt("event %d: job %s transitions %s -> %s out of a terminal state",
					i, e.State.ID, st.Status, e.State.Status)
			}
			st.Status = e.State.Status
			st.Error = e.State.Error
			st.Phi = e.State.Phi
			st.Actual = e.State.Actual
			st.Digest = e.State.Digest
		default:
			return nil, corrupt("event %d: empty event", i)
		}
	}
	out := make([]JobState, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out, nil
}
