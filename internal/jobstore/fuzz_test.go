package jobstore

import (
	"os"
	"path/filepath"
	"testing"

	"paradigm/internal/ckpt"
)

// fuzzSeeds builds representative journal images: empty, populated,
// torn, and structurally odd.
func fuzzSeeds(t testing.TB) [][]byte {
	path := filepath.Join(t.TempDir(), FileName)
	j, _, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSubmit(Submit{ID: "1", Program: "cmm", Size: 32, Procs: 8, Recover: 2, FaultSeed: 7}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendState(State{ID: "1", Status: StatusRunning}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendState(State{ID: "1", Status: StatusDone, Phi: 3.5, Actual: 1.5, Digest: "deadbeef"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return [][]byte{
		ckpt.Encode(nil),
		full,
		full[:len(full)-3],
		append(append([]byte(nil), full...), 0xff, 0x00),
		ckpt.Encode([]ckpt.Record{{Stage: "state", Payload: []byte(`{"id":"9","status":"done"}`)}}),
		ckpt.Encode([]ckpt.Record{{Stage: "submit", Payload: []byte(`not json`)}}),
	}
}

// FuzzJobJournalDecode asserts Decode is total over arbitrary bytes: it
// must never panic or over-allocate, and anything it accepts must also
// survive Replay without panicking — the same contract the WAL decoder
// fuzzes at the byte layer, extended to the journal's record semantics.
func FuzzJobJournalDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted streams must replay without panicking; Replay may
		// still reject them (causal defects are semantic, not byte-level).
		_, _ = Replay(events)
	})
}

// TestFuzzSeedsDecode runs the committed seed shapes as a plain subtest
// so `go test` exercises them without the fuzz engine.
func TestFuzzSeedsDecode(t *testing.T) {
	for i, seed := range fuzzSeeds(t) {
		events, err := Decode(seed)
		if err != nil {
			continue
		}
		if _, rerr := Replay(events); rerr != nil && i < 4 {
			// The first four seeds are genuine journals (or torn/ignored
			// tails of one) and must replay cleanly.
			t.Fatalf("seed %d: valid journal failed replay: %v", i, rerr)
		}
	}
}
