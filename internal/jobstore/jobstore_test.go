package jobstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"paradigm/internal/ckpt"
	"paradigm/internal/errs"
	"paradigm/internal/obs"
)

func submitN(t *testing.T, j *Journal, id string) {
	t.Helper()
	if err := j.AppendSubmit(Submit{ID: id, Program: "cmm", Size: 16, Procs: 4}); err != nil {
		t.Fatal(err)
	}
}

func state(t *testing.T, j *Journal, s State) {
	t.Helper()
	if err := j.AppendState(s); err != nil {
		t.Fatal(err)
	}
}

// A journal round-trips through a close/reopen cycle: submits with no
// terminal record come back open (the restart backlog), finished jobs
// come back with their digest, and the lag accounting matches.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	j, states, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(states))
	}
	submitN(t, j, "1")
	submitN(t, j, "2")
	submitN(t, j, "3")
	state(t, j, State{ID: "1", Status: StatusRunning})
	state(t, j, State{ID: "1", Status: StatusDone, Phi: 2.5, Actual: 1.25, Digest: "abc123"})
	state(t, j, State{ID: "2", Status: StatusRunning})
	state(t, j, State{ID: "3", Status: StatusFailed, Error: "unknown program"})
	if got := j.Lag(); got != 1 {
		t.Fatalf("lag = %d, want 1 (job 2 still open)", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	re, states, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(states))
	}
	want := []struct {
		id, status, digest, errMsg string
	}{
		{"1", StatusDone, "abc123", ""},
		{"2", StatusRunning, "", ""},
		{"3", StatusFailed, "", "unknown program"},
	}
	for i, w := range want {
		got := states[i]
		if got.ID != w.id || got.Status != w.status || got.Digest != w.digest || got.Error != w.errMsg {
			t.Fatalf("job %d = %+v, want %+v", i, got, w)
		}
	}
	if states[0].Phi != 2.5 || states[0].Actual != 1.25 {
		t.Fatalf("done job lost its numbers: %+v", states[0])
	}
	if got := re.Lag(); got != 1 {
		t.Fatalf("reopened lag = %d, want 1", got)
	}
}

// Appends emit one JournalAppend event each, labeled submit or by the
// landed status, only after the record is durable.
func TestJournalObserverEvents(t *testing.T) {
	rec := obs.NewRecorder()
	j, _, err := Open(filepath.Join(t.TempDir(), FileName), rec)
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, j, "1")
	state(t, j, State{ID: "1", Status: StatusRunning})
	state(t, j, State{ID: "1", Status: StatusDone, Digest: "d"})
	var got []string
	for _, e := range rec.Events() {
		if ja, ok := e.(obs.JournalAppend); ok {
			got = append(got, ja.Record)
			if ja.Bytes <= 0 {
				t.Fatalf("append %q has %d bytes", ja.Record, ja.Bytes)
			}
		}
	}
	want := []string{"submit", "running", "done"}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}
}

// Invalid records are refused before they hit the disk.
func TestJournalRefusesInvalidAppends(t *testing.T) {
	j, _, err := Open(filepath.Join(t.TempDir(), FileName), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := []error{
		j.AppendSubmit(Submit{ID: "", Program: "cmm", Size: 16, Procs: 4}),
		j.AppendSubmit(Submit{ID: "1", Program: "", Size: 16, Procs: 4}),
		j.AppendSubmit(Submit{ID: "1", Program: "cmm", Size: 0, Procs: 4}),
		j.AppendSubmit(Submit{ID: "1", Program: "cmm", Size: 16, Procs: 4, Retries: -1}),
		j.AppendState(State{ID: "", Status: StatusDone}),
		j.AppendState(State{ID: "1", Status: "sideways"}),
	}
	for i, err := range bad {
		if err == nil {
			t.Fatalf("invalid append %d was journaled", i)
		}
	}
	if got := j.Len(); got != 0 {
		t.Fatalf("journal has %d records after refused appends", got)
	}
}

// A damaged journal — truncated, bit-flipped, or written with garbage
// payloads — is refused at open with the typed sentinel; a torn
// uncommitted tail is not damage.
func TestJournalCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName)
	j, _, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, j, "1")
	state(t, j, State{ID: "1", Status: StatusDone, Digest: "d"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-3] ^= 0x40
	truncated := data[:len(data)-4]
	// A semantically invalid stream behind a valid CRC: a transition for
	// a job that was never submitted.
	orphan := ckpt.Encode([]ckpt.Record{{Stage: "state", Payload: []byte(`{"id":"9","status":"done"}`)}})
	// A record kind the journal never writes.
	alien := ckpt.Encode([]ckpt.Record{{Stage: "meta", Payload: []byte(`{}`)}})
	for name, img := range map[string][]byte{
		"flipped": flipped, "truncated": truncated, "orphan-state": orphan, "alien-kind": alien,
	} {
		bad := filepath.Join(dir, name+".journal")
		if err := os.WriteFile(bad, img, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(bad, nil); !errors.Is(err, errs.ErrJobJournalCorrupt) {
			t.Fatalf("Open(%s) = %v, want ErrJobJournalCorrupt", name, err)
		}
	}

	// Uncommitted tail bytes past the commit pointer are ignored.
	torn := append(append([]byte(nil), data...), 0xde, 0xad, 0xbe)
	tornPath := filepath.Join(dir, "torn.journal")
	if err := os.WriteFile(tornPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, states, err := Open(tornPath, nil); err != nil || len(states) != 1 {
		t.Fatalf("torn tail: states=%d err=%v, want 1 job and no error", len(states), err)
	}
}

// Replay enforces the append discipline: duplicate submits and
// transitions out of terminal states are corruption.
func TestReplayRejectsInconsistentStreams(t *testing.T) {
	sub := func(id string) Event {
		return Event{Submit: &Submit{ID: id, Program: "cmm", Size: 16, Procs: 4}}
	}
	st := func(id, status string) Event { return Event{State: &State{ID: id, Status: status}} }
	cases := map[string][]Event{
		"duplicate-submit": {sub("1"), sub("1")},
		"post-terminal":    {sub("1"), st("1", StatusDone), st("1", StatusRunning)},
		"empty-event":      {{}},
	}
	for name, events := range cases {
		if _, err := Replay(events); !errors.Is(err, errs.ErrJobJournalCorrupt) {
			t.Fatalf("Replay(%s) = %v, want ErrJobJournalCorrupt", name, err)
		}
	}
	// Re-queueing an open job (the restart path) is legal.
	ok := []Event{sub("1"), st("1", StatusRunning), st("1", StatusQueued)}
	states, err := Replay(ok)
	if err != nil || len(states) != 1 || states[0].Status != StatusQueued {
		t.Fatalf("requeue replay = %+v, %v", states, err)
	}
}
