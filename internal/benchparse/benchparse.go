// Package benchparse parses `go test -bench -benchmem` text output into
// structured results, the input format of the benchmark-trajectory
// harness (cmd/benchjson). It understands the standard benchmark line:
//
//	BenchmarkName-8   	  1000	  123456 ns/op	  789 B/op	  12 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so results compare across hosts.
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Parse reads benchmark lines from r, ignoring everything else (headers,
// PASS/ok trailers, warnings). Duplicate names keep the last occurrence.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	idx := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if i, dup := idx[res.Name]; dup {
			out[i] = res
		} else {
			idx[res.Name] = len(out)
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	// Minimum: name, iterations, value, "ns/op".
	if len(fields) < 4 {
		return Result{}, false, nil
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Result{}, false, nil
	}
	res := Result{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("benchparse: bad value %q in %q", fields[i], line)
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			seen = true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	if !seen {
		return Result{}, false, nil
	}
	return res, true, nil
}

// Delta compares a current run against a baseline by benchmark name.
type Delta struct {
	Name          string  `json:"name"`
	NsPctChange   float64 `json:"ns_pct_change"`
	AllocsChange  float64 `json:"allocs_change"`
	AllocsPctChg  float64 `json:"allocs_pct_change"`
	BaselineFound bool    `json:"baseline_found"`
}

// Diff pairs current results with baseline results by name. Benchmarks
// missing from the baseline are reported with BaselineFound=false.
func Diff(baseline, current []Result) []Delta {
	base := map[string]Result{}
	for _, r := range baseline {
		base[r.Name] = r
	}
	out := make([]Delta, 0, len(current))
	for _, c := range current {
		d := Delta{Name: c.Name}
		if b, ok := base[c.Name]; ok {
			d.BaselineFound = true
			if b.NsPerOp > 0 {
				d.NsPctChange = 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
			}
			d.AllocsChange = c.AllocsPerOp - b.AllocsPerOp
			if b.AllocsPerOp > 0 {
				d.AllocsPctChg = 100 * (c.AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp
			}
		}
		out = append(out, d)
	}
	return out
}
