package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: paradigm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable2TransferFit-8   	     100	  11500000 ns/op	  220000 B/op	  3300 allocs/op
BenchmarkAllocSolveCMM        	       1	   7547870 ns/op	   65208 B/op	     666 allocs/op
BenchmarkFig6MDGs-8            	      50	    400000 ns/op
PASS
ok  	paradigm	12.3s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	if rs[0].Name != "BenchmarkTable2TransferFit" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", rs[0].Name)
	}
	if rs[0].Iterations != 100 || rs[0].NsPerOp != 11500000 || rs[0].AllocsPerOp != 3300 {
		t.Fatalf("bad row: %+v", rs[0])
	}
	if rs[1].Name != "BenchmarkAllocSolveCMM" || rs[1].BytesPerOp != 65208 {
		t.Fatalf("bad unsuffixed row: %+v", rs[1])
	}
	if rs[2].AllocsPerOp != 0 {
		t.Fatalf("missing allocs must stay 0: %+v", rs[2])
	}
}

func TestParseKeepsLastDuplicate(t *testing.T) {
	dup := "BenchmarkX-2 10 100 ns/op\nBenchmarkX-2 20 50 ns/op\n"
	rs, err := Parse(strings.NewReader(dup))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].NsPerOp != 50 || rs[0].Iterations != 20 {
		t.Fatalf("duplicate handling wrong: %+v", rs)
	}
}

func TestDiff(t *testing.T) {
	base := []Result{{Name: "BenchmarkA", NsPerOp: 200, AllocsPerOp: 100}}
	cur := []Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 40},
		{Name: "BenchmarkNew", NsPerOp: 5},
	}
	ds := Diff(base, cur)
	if len(ds) != 2 {
		t.Fatalf("deltas: %+v", ds)
	}
	if !ds[0].BaselineFound || ds[0].NsPctChange != -50 || ds[0].AllocsChange != -60 || ds[0].AllocsPctChg != -60 {
		t.Fatalf("delta wrong: %+v", ds[0])
	}
	if ds[1].BaselineFound {
		t.Fatalf("new benchmark must report missing baseline: %+v", ds[1])
	}
}
