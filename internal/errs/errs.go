// Package errs defines the pipeline's typed sentinel errors. Every layer
// (mdg validation, allocation, scheduling, the frontend) wraps its
// failures over these sentinels with %w, so callers of the public API can
// dispatch with errors.Is instead of string matching:
//
//	if errors.Is(err, paradigm.ErrInfeasible) { ... }
//
// The sentinels live in their own leaf package because the layers that
// wrap them must not import each other.
package errs

import "errors"

var (
	// ErrInfeasible marks a problem instance that cannot be solved as
	// posed: a non-positive system size, a processor bound outside
	// [1, p] or not a power of two, or an allocation entry outside its
	// box.
	ErrInfeasible = errors.New("infeasible problem")

	// ErrBadGraph marks a structurally invalid MDG or program: cycles,
	// dangling edges, duplicate edges, negative costs, or a source
	// program that compiles to no valid graph.
	ErrBadGraph = errors.New("invalid graph")

	// ErrUnsupportedTransfer marks a data transfer whose kind is outside
	// the modeled regimes (1D, 2D and the grid extensions).
	ErrUnsupportedTransfer = errors.New("unsupported transfer kind")

	// ErrDeadlock marks a simulated run that stopped making progress with
	// every processor blocked (a scheduling or code-generation bug, or an
	// injected fault whose cause could not be attributed).
	ErrDeadlock = errors.New("simulation deadlock")

	// ErrProcessorLost marks a simulated run halted by a fail-stop
	// processor death: the surviving processors blocked on messages or
	// barriers involving a dead processor. Recoverable by replanning on
	// the survivors (see the recovery driver).
	ErrProcessorLost = errors.New("processor lost")

	// ErrMessageLost marks a simulated run halted by a dropped message: a
	// receiver blocked on a tag the fault plan discarded. Recoverable by
	// replanning — no processor state was lost.
	ErrMessageLost = errors.New("message lost")

	// ErrUnknownBackend marks a backend selector that names no registered
	// implementation: an alloc.Options.Backend outside the typed constant
	// set, or a machine-model kind the library does not provide.
	ErrUnknownBackend = errors.New("unknown backend")

	// ErrBadMachineSpec marks a machine specification that failed
	// validation on load: malformed JSON, unknown fields, non-finite or
	// negative cost constants, or inconsistent per-processor tables.
	ErrBadMachineSpec = errors.New("invalid machine spec")

	// ErrJobJournalCorrupt marks a service job journal that failed
	// structural, CRC, or record validation on load: the scheduling
	// service refuses to boot over it rather than silently dropping or
	// inventing accepted jobs.
	ErrJobJournalCorrupt = errors.New("corrupt job journal")

	// ErrBadPolicy marks an admission policy configuration that failed
	// strict decoding or validation: malformed JSON, unknown fields, an
	// unknown queue policy, non-finite or negative rates, or a tenant
	// naming an undeclared SLO class. The service refuses to start over
	// one rather than admitting traffic under a policy it cannot honor.
	ErrBadPolicy = errors.New("invalid admission policy")
)
