package mdg

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestComputeMetricsDiamond(t *testing.T) {
	g, _, _, _, _ := diamond()
	m, err := g.ComputeMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes != 4 || m.Edges != 4 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Depth != 3 { // s -> a/b -> t
		t.Fatalf("depth = %d, want 3", m.Depth)
	}
	if m.Width != 2 { // a and b share a level
		t.Fatalf("width = %d, want 2", m.Width)
	}
	if m.Transfers != 4 || m.TransferBytes != 100+200+100+200 {
		t.Fatalf("transfers = %+v", m)
	}
	if !strings.Contains(m.String(), "4 nodes") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestComputeMetricsRejectsCycle(t *testing.T) {
	var g Graph
	a := g.AddNode(Node{})
	b := g.AddNode(Node{})
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := g.ComputeMetrics(); err == nil {
		t.Fatal("want cycle error")
	}
}

func TestRandomLayeredShape(t *testing.T) {
	g, err := RandomLayered(7, 4, 5, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := g.ComputeMetrics()
	if err != nil {
		t.Fatal(err)
	}
	// 4 layers × 5 nodes + START/STOP dummies.
	if m.Nodes < 20 || m.Nodes > 22 {
		t.Fatalf("nodes = %d", m.Nodes)
	}
	// Depth at least the layer count (plus dummies).
	if m.Depth < 4 {
		t.Fatalf("depth = %d", m.Depth)
	}
	if m.Width < 5 {
		t.Fatalf("width = %d, want >= layer width", m.Width)
	}
	if _, err := RandomLayered(1, 0, 5, 2, 1024); err == nil {
		t.Fatal("want spec error")
	}
}

func TestRandomLayeredDeterministic(t *testing.T) {
	a, _ := RandomLayered(42, 3, 4, 2, 512)
	b, _ := RandomLayered(42, 3, 4, 2, 512)
	if a.NumNodes() != b.NumNodes() || len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed must give identical graphs")
	}
	for i := range a.Edges {
		if a.Edges[i].From != b.Edges[i].From || a.Edges[i].To != b.Edges[i].To {
			t.Fatal("edge sets differ")
		}
	}
	c, _ := RandomLayered(43, 3, 4, 2, 512)
	if len(a.Edges) == len(c.Edges) {
		// Edge counts can coincide; compare structure loosely.
		same := true
		for i := range a.Edges {
			if a.Edges[i].From != c.Edges[i].From || a.Edges[i].To != c.Edges[i].To {
				same = false
				break
			}
		}
		if same && a.Nodes[2].Tau == c.Nodes[2].Tau {
			t.Fatal("different seeds gave identical graphs")
		}
	}
}

// TestMetricsWidthDepthBounds: width·depth >= nodes on layered graphs.
func TestMetricsWidthDepthBounds(t *testing.T) {
	f := func(seed int16, lRaw, wRaw uint8) bool {
		layers := 1 + int(lRaw)%6
		width := 1 + int(wRaw)%6
		g, err := RandomLayered(int64(seed), layers, width, 2, 64)
		if err != nil {
			return false
		}
		m, err := g.ComputeMetrics()
		if err != nil {
			return false
		}
		return m.Width*m.Depth >= m.Nodes && m.Depth >= 1 && m.Width >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
