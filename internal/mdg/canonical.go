// Canonical form: a relabel-invariant ordering and hash of an MDG.
//
// The allocator's warm-start cache (internal/alloccache) must recognize
// that two MDGs which differ only in node numbering describe the same
// convex program — Relabel preserves every cost (the metamorphic relation
// PR 4 proves), so a solved allocation for one is a solved allocation for
// the other, permuted. CanonicalPerm computes a permutation into a
// canonical node order from the cost-relevant content alone (Amdahl α/τ,
// edge transfers, graph structure; names and metadata carry no cost and
// are ignored), and CanonicalHash digests the canonicalized graph.
//
// The ordering is Weisfeiler-Lehman color refinement over content
// signatures, with sequential individualization when refinement leaves
// tied classes. Ties after refinement mean the nodes are (in every case
// that arises from real programs, whose α/τ are distinct floats)
// automorphic, so individualizing any member yields the same canonical
// serialization. A WL collision between non-automorphic nodes would at
// worst canonicalize two isomorphic graphs differently — a cache miss,
// never a false hit, because the hash covers the full canonical structure.
package mdg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// mix64 is a splitmix64 finalizer: the signature combiner for refinement.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// combine folds v into h order-sensitively.
func combine(h, v uint64) uint64 {
	return mix64(h ^ (v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)))
}

// combineSorted folds a multiset of values into h order-insensitively by
// sorting first (vs is clobbered).
func combineSorted(h uint64, vs []uint64) uint64 {
	sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
	for _, v := range vs {
		h = combine(h, v)
	}
	return h
}

// transferSig hashes one edge's transfer multiset.
func transferSig(trs []Transfer) uint64 {
	sigs := make([]uint64, len(trs))
	for i, tr := range trs {
		sigs[i] = combine(combine(0x7472616e73666572, uint64(tr.Bytes)), uint64(tr.Kind))
	}
	return combineSorted(0xedfe, sigs)
}

// CanonicalPerm computes a relabel-invariant permutation of g: perm[i] is
// the canonical index of node i, suitable for g.Relabel(perm). Two graphs
// equal up to node renumbering canonicalize to byte-identical Relabel
// outputs (modulo the cost-free Name/Meta fields) whenever refinement
// fully separates the nodes — which the distinct fitted α/τ of real
// programs guarantee in practice.
func (g *Graph) CanonicalPerm() ([]NodeID, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(g.Nodes)
	sig := make([]uint64, n)
	for i, nd := range g.Nodes {
		sig[i] = combine(combine(0x6e6f6465, math.Float64bits(nd.Alpha)), math.Float64bits(nd.Tau))
	}
	esig := make(map[[2]NodeID]uint64, len(g.Edges))
	for _, e := range g.Edges {
		esig[[2]NodeID{e.From, e.To}] = transferSig(e.Transfers)
	}

	refine := func() {
		next := make([]uint64, n)
		var scratch []uint64
		for round := 0; round <= n; round++ {
			classes := countDistinct(sig)
			for i := 0; i < n; i++ {
				id := NodeID(i)
				h := combine(0x726f756e64, sig[i])
				scratch = scratch[:0]
				for _, m := range g.Preds(id) {
					scratch = append(scratch, combine(sig[m], esig[[2]NodeID{m, id}]))
				}
				h = combine(h, combineSorted(0x696e, scratch))
				scratch = scratch[:0]
				for _, s := range g.Succs(id) {
					scratch = append(scratch, combine(sig[s], esig[[2]NodeID{id, s}]))
				}
				next[i] = combine(h, combineSorted(0x6f7574, scratch))
			}
			copy(sig, next)
			if c := countDistinct(sig); c == n || c == classes {
				return
			}
		}
	}

	refine()
	// Individualize while refinement leaves tied classes: distinguish one
	// member of the smallest-signature tie class and re-refine. Tied nodes
	// are automorphic in practice, so the choice of member cannot change
	// the canonical serialization; n rounds always terminate.
	for round := 0; round < n && countDistinct(sig) < n; round++ {
		dup := findSmallestDuplicate(sig)
		for i := 0; i < n; i++ {
			if sig[i] == dup {
				sig[i] = combine(sig[i], 0x696e646976) // individualize
				break
			}
		}
		refine()
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return sig[order[a]] < sig[order[b]] })
	perm := make([]NodeID, n)
	for rank, orig := range order {
		perm[orig] = NodeID(rank)
	}
	return perm, nil
}

func countDistinct(sig []uint64) int {
	seen := make(map[uint64]struct{}, len(sig))
	for _, s := range sig {
		seen[s] = struct{}{}
	}
	return len(seen)
}

func findSmallestDuplicate(sig []uint64) uint64 {
	counts := make(map[uint64]int, len(sig))
	for _, s := range sig {
		counts[s]++
	}
	best := uint64(0)
	found := false
	for s, c := range counts {
		if c > 1 && (!found || s < best) {
			best, found = s, true
		}
	}
	return best
}

// CanonicalHash returns a collision-resistant digest of g's canonical
// form along with the canonicalizing permutation (perm[i] = canonical
// index of node i). The digest covers node count, per-node α/τ bits in
// canonical order, and the canonical edge list with sorted transfer
// multisets — everything the cost model reads, nothing it doesn't.
func (g *Graph) CanonicalHash() (string, []NodeID, error) {
	perm, err := g.CanonicalPerm()
	if err != nil {
		return "", nil, err
	}
	canon, err := g.Relabel(perm)
	if err != nil {
		return "", nil, err
	}
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(len(canon.Nodes)))
	for _, nd := range canon.Nodes {
		writeU64(math.Float64bits(nd.Alpha))
		writeU64(math.Float64bits(nd.Tau))
	}
	writeU64(uint64(len(canon.Edges)))
	for _, e := range canon.Edges {
		writeU64(uint64(e.From))
		writeU64(uint64(e.To))
		trs := append([]Transfer(nil), e.Transfers...)
		sort.Slice(trs, func(a, b int) bool {
			if trs[a].Bytes != trs[b].Bytes {
				return trs[a].Bytes < trs[b].Bytes
			}
			return trs[a].Kind < trs[b].Kind
		})
		writeU64(uint64(len(trs)))
		for _, tr := range trs {
			writeU64(uint64(tr.Bytes))
			writeU64(uint64(tr.Kind))
		}
	}
	return hex.EncodeToString(h.Sum(nil)), perm, nil
}
