package mdg

import (
	"fmt"
	"math/rand"
)

// Metrics summarizes an MDG's shape: size, depth (longest node-count
// path), width (the largest antichain layer under ASAP leveling) and
// edge statistics. Used by the allocator-scalability study (E13) and the
// CLI's describe output.
type Metrics struct {
	Nodes, Edges int
	// Depth is the number of nodes on the longest path.
	Depth int
	// Width is the maximum number of nodes sharing an ASAP level — an
	// upper bound on exploitable functional parallelism.
	Width int
	// Transfers and TransferBytes total the edge payloads.
	Transfers     int
	TransferBytes int
}

// ComputeMetrics derives the metrics. The graph must be acyclic.
func (g *Graph) ComputeMetrics() (Metrics, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{Nodes: g.NumNodes(), Edges: len(g.Edges)}
	level := make([]int, g.NumNodes())
	byLevel := map[int]int{}
	for _, v := range order {
		lv := 0
		for _, p := range g.Preds(v) {
			if level[p]+1 > lv {
				lv = level[p] + 1
			}
		}
		level[v] = lv
		byLevel[lv]++
		if lv+1 > m.Depth {
			m.Depth = lv + 1
		}
	}
	for _, n := range byLevel {
		if n > m.Width {
			m.Width = n
		}
	}
	for _, e := range g.Edges {
		for _, tr := range e.Transfers {
			m.Transfers++
			m.TransferBytes += tr.Bytes
		}
	}
	return m, nil
}

// String renders the metrics on one line.
func (m Metrics) String() string {
	return fmt.Sprintf("%d nodes, %d edges, depth %d, width %d, %d transfers (%d bytes)",
		m.Nodes, m.Edges, m.Depth, m.Width, m.Transfers, m.TransferBytes)
}

// RandomLayered generates a synthetic layered MDG for scalability and
// stress studies: `layers` levels of `width` nodes each, every node wired
// to 1..maxFanIn random nodes of the previous layer with 1D transfers,
// Amdahl parameters drawn from realistic ranges. Deterministic in seed.
// The graph includes explicit START/STOP dummies.
func RandomLayered(seed int64, layers, width, maxFanIn int, bytes int) (*Graph, error) {
	if layers < 1 || width < 1 || maxFanIn < 1 || bytes < 1 {
		return nil, fmt.Errorf("mdg: invalid layered spec %d/%d/%d/%d", layers, width, maxFanIn, bytes)
	}
	rng := rand.New(rand.NewSource(seed))
	var g Graph
	prev := []NodeID{}
	for l := 0; l < layers; l++ {
		var cur []NodeID
		for w := 0; w < width; w++ {
			id := g.AddNode(Node{
				Name:  fmt.Sprintf("L%dN%d", l, w),
				Alpha: 0.02 + rng.Float64()*0.3,
				Tau:   0.01 + rng.Float64()*0.5,
			})
			cur = append(cur, id)
			if l > 0 {
				fanIn := 1 + rng.Intn(maxFanIn)
				perm := rng.Perm(len(prev))
				if fanIn > len(perm) {
					fanIn = len(perm)
				}
				for _, pi := range perm[:fanIn] {
					g.AddEdge(prev[pi], id, Transfer{Bytes: bytes, Kind: Transfer1D})
				}
			}
		}
		prev = cur
	}
	if _, _, err := g.EnsureStartStop(); err != nil {
		return nil, err
	}
	return &g, nil
}
