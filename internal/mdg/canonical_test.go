package mdg

import (
	"math/rand"
	"testing"
)

// randomTestGraph builds a random DAG with rng-drawn α/τ and transfers.
func randomTestGraph(rng *rand.Rand, n int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.Nodes = append(g.Nodes, Node{
			Name:  "t",
			Alpha: 0.1 + 0.8*rng.Float64(),
			Tau:   1 + 10*rng.Float64(),
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				nt := 1 + rng.Intn(2)
				var trs []Transfer
				for k := 0; k < nt; k++ {
					trs = append(trs, Transfer{
						Bytes: 64 << rng.Intn(8),
						Kind:  TransferKind(rng.Intn(5)),
					})
				}
				g.Edges = append(g.Edges, Edge{From: NodeID(i), To: NodeID(j), Transfers: trs})
			}
		}
	}
	return g
}

// randomPerm returns a uniformly random permutation as []NodeID.
func randomPerm(rng *rand.Rand, n int) []NodeID {
	p := make([]NodeID, n)
	for i, v := range rng.Perm(n) {
		p[i] = NodeID(v)
	}
	return p
}

func TestCanonicalHashRelabelInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		g := randomTestGraph(rng, 2+rng.Intn(10))
		h1, perm1, err := g.CanonicalHash()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(perm1) != len(g.Nodes) {
			t.Fatalf("trial %d: perm length %d, want %d", trial, len(perm1), len(g.Nodes))
		}
		rel, err := g.Relabel(randomPerm(rng, len(g.Nodes)))
		if err != nil {
			t.Fatalf("trial %d: relabel: %v", trial, err)
		}
		h2, _, err := rel.CanonicalHash()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if h1 != h2 {
			t.Fatalf("trial %d: canonical hash not relabel-invariant: %s vs %s", trial, h1, h2)
		}
	}
}

func TestCanonicalPermMapsToSameCanonicalGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randomTestGraph(rng, 2+rng.Intn(8))
		_, perm, err := g.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		canonA, err := g.Relabel(perm)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := g.Relabel(randomPerm(rng, len(g.Nodes)))
		if err != nil {
			t.Fatal(err)
		}
		_, perm2, err := rel.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		canonB, err := rel.Relabel(perm2)
		if err != nil {
			t.Fatal(err)
		}
		// Cost-relevant content must agree position-by-position.
		for i := range canonA.Nodes {
			if canonA.Nodes[i].Alpha != canonB.Nodes[i].Alpha || canonA.Nodes[i].Tau != canonB.Nodes[i].Tau {
				t.Fatalf("trial %d: canonical node %d differs", trial, i)
			}
		}
		if len(canonA.Edges) != len(canonB.Edges) {
			t.Fatalf("trial %d: canonical edge counts differ", trial)
		}
		for i := range canonA.Edges {
			if canonA.Edges[i].From != canonB.Edges[i].From || canonA.Edges[i].To != canonB.Edges[i].To {
				t.Fatalf("trial %d: canonical edge %d differs", trial, i)
			}
		}
	}
}

func TestCanonicalHashDistinguishesGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seen := map[string]int{}
	for trial := 0; trial < 60; trial++ {
		g := randomTestGraph(rng, 3+rng.Intn(6))
		h, _, err := g.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[h]; ok {
			t.Fatalf("trial %d collides with trial %d", trial, prev)
		}
		seen[h] = trial
	}
	// Perturbing one α must change the hash.
	g := randomTestGraph(rng, 5)
	h1, _, _ := g.CanonicalHash()
	g.Nodes[2].Alpha *= 1.0000001
	h2, _, _ := g.CanonicalHash()
	if h1 == h2 {
		t.Fatal("alpha perturbation did not change canonical hash")
	}
}

func TestCanonicalHashAutomorphicTies(t *testing.T) {
	// Two identical parallel chains a→b: nodes tie pairwise under
	// refinement; individualization must still produce one canonical form.
	mk := func(order []int) *Graph {
		g := &Graph{Nodes: make([]Node, 4)}
		for _, i := range order {
			_ = i
		}
		for i := 0; i < 4; i++ {
			g.Nodes[i] = Node{Name: "n", Alpha: 0.5, Tau: 2}
		}
		tr := []Transfer{{Bytes: 1024, Kind: Transfer1D}}
		g.Edges = []Edge{
			{From: NodeID(order[0]), To: NodeID(order[1]), Transfers: tr},
			{From: NodeID(order[2]), To: NodeID(order[3]), Transfers: tr},
		}
		return g
	}
	h1, _, err := mk([]int{0, 1, 2, 3}).CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := mk([]int{2, 3, 0, 1}).CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	h3, _, err := mk([]int{1, 3, 0, 2}).CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || h1 != h3 {
		t.Fatalf("automorphic relabelings hash differently: %s / %s / %s", h1, h2, h3)
	}
}
