// Package mdg implements the Macro Dataflow Graph of Section 1.1.
//
// An MDG is a weighted directed acyclic graph whose nodes correspond to
// loop nests of the source program and whose edges are precedence
// constraints. Node weights combine the processing cost of the loop with
// the receiving costs of incoming transfers and the sending costs of
// outgoing transfers; edge weights are the network cost component of the
// transfer between the two loops. The weights depend on the processor
// allocation, so this package stores the *parameters* of the weights —
// Amdahl (α, τ) per node and transfer descriptors per edge — and leaves
// weight evaluation to internal/costmodel.
//
// Following Section 2, a schedulable MDG has a START node preceding all
// nodes and a STOP node succeeding all nodes; EnsureStartStop augments any
// DAG into that form with zero-cost dummy nodes.
package mdg

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"paradigm/internal/errs"
)

// NodeID indexes a node within its Graph.
type NodeID int

// TransferKind distinguishes the two redistribution regimes of Figure 4.
type TransferKind uint8

const (
	// Transfer1D covers ROW2ROW and COL2COL: source and destination
	// distribute the array along the same dimension (Equation 2).
	Transfer1D TransferKind = iota
	// Transfer2D covers ROW2COL and COL2ROW: source and destination
	// distribute along different dimensions (Equation 3).
	Transfer2D
	// The grid kinds below extend the paper's model to blocked 2D
	// distributions (its stated future work; see internal/dist and the
	// extended cost functions in internal/costmodel).
	//
	// TransferG2L: grid-distributed source to linearly distributed
	// destination.
	TransferG2L
	// TransferL2G: linearly distributed source to grid-distributed
	// destination.
	TransferL2G
	// TransferG2G: grid to grid.
	TransferG2G
)

// String renders the transfer kind.
func (k TransferKind) String() string {
	switch k {
	case Transfer1D:
		return "1D"
	case Transfer2D:
		return "2D"
	case TransferG2L:
		return "G2L"
	case TransferL2G:
		return "L2G"
	case TransferG2G:
		return "G2G"
	default:
		return fmt.Sprintf("TransferKind(%d)", uint8(k))
	}
}

// Transfer describes one array moved along an edge.
type Transfer struct {
	// Bytes is the total array length L in bytes.
	Bytes int `json:"bytes"`
	// Kind selects the 1D or 2D cost regime.
	Kind TransferKind `json:"kind"`
}

// Node is one loop nest. Alpha and Tau parameterize the Amdahl processing
// cost model of Equation 1: t^C = (α + (1-α)/p)·τ. Dummy START/STOP nodes
// have Tau = 0.
type Node struct {
	Name  string  `json:"name"`
	Alpha float64 `json:"alpha"`
	Tau   float64 `json:"tau"`
	// Meta carries an optional program-level payload (e.g. which kernel
	// and operands the node computes); the scheduler ignores it.
	Meta string `json:"meta,omitempty"`
}

// Edge is a precedence constraint with its data transfers.
type Edge struct {
	From      NodeID     `json:"from"`
	To        NodeID     `json:"to"`
	Transfers []Transfer `json:"transfers,omitempty"`
}

// Graph is a mutable MDG. The zero value is an empty graph ready for use.
// Mutation (AddNode, AddEdge, EnsureStartStop, UnmarshalJSON) is not safe
// for concurrent use, but once construction is done any number of
// goroutines may read the graph concurrently — the lazy adjacency index
// is rebuilt under a lock with an atomic fast path, so parallel
// experiment drivers can share one graph across allocator, scheduler and
// simulator tasks.
type Graph struct {
	Nodes []Node
	Edges []Edge

	// adjacency caches; rebuilt lazily after mutation. ready is true
	// while the caches match Nodes/Edges; mu serializes rebuilds so
	// concurrent readers of a freshly built graph stay race-free.
	mu           sync.Mutex
	ready        atomic.Bool
	preds, succs [][]NodeID
	edgeIdx      map[[2]NodeID]int
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// AddNode appends a node and returns its id.
func (g *Graph) AddNode(n Node) NodeID {
	g.Nodes = append(g.Nodes, n)
	g.ready.Store(false)
	return NodeID(len(g.Nodes) - 1)
}

// AddEdge appends a precedence edge from -> to carrying the given
// transfers. Adding an edge between the same pair twice merges the
// transfer lists.
func (g *Graph) AddEdge(from, to NodeID, transfers ...Transfer) {
	g.ensureIndex()
	if i, ok := g.edgeIdx[[2]NodeID{from, to}]; ok {
		g.Edges[i].Transfers = append(g.Edges[i].Transfers, transfers...)
		return
	}
	g.Edges = append(g.Edges, Edge{From: from, To: to, Transfers: append([]Transfer(nil), transfers...)})
	g.ready.Store(false)
}

func (g *Graph) ensureIndex() {
	if g.ready.Load() {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ready.Load() {
		return
	}
	n := len(g.Nodes)
	g.preds = make([][]NodeID, n)
	g.succs = make([][]NodeID, n)
	g.edgeIdx = make(map[[2]NodeID]int, len(g.Edges))
	for i, e := range g.Edges {
		g.edgeIdx[[2]NodeID{e.From, e.To}] = i
		g.succs[e.From] = append(g.succs[e.From], e.To)
		g.preds[e.To] = append(g.preds[e.To], e.From)
	}
	for i := range g.preds {
		sortIDs(g.preds[i])
		sortIDs(g.succs[i])
	}
	g.ready.Store(true)
}

func sortIDs(ids []NodeID) {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
}

// Preds returns the predecessor ids of n in ascending order. The returned
// slice is shared; callers must not modify it.
func (g *Graph) Preds(n NodeID) []NodeID {
	g.ensureIndex()
	return g.preds[n]
}

// Succs returns the successor ids of n in ascending order. The returned
// slice is shared; callers must not modify it.
func (g *Graph) Succs(n NodeID) []NodeID {
	g.ensureIndex()
	return g.succs[n]
}

// EdgeBetween returns the edge from -> to, if present.
func (g *Graph) EdgeBetween(from, to NodeID) (Edge, bool) {
	g.ensureIndex()
	if i, ok := g.edgeIdx[[2]NodeID{from, to}]; ok {
		return g.Edges[i], true
	}
	return Edge{}, false
}

// Validate checks structural invariants: edge endpoints in range, no
// self-loops, no duplicate edges, nonnegative costs, acyclicity, and
// positive transfer sizes. Failures wrap errs.ErrBadGraph (and
// errs.ErrUnsupportedTransfer for an out-of-vocabulary transfer kind),
// so callers anywhere up the stack can dispatch with errors.Is.
func (g *Graph) Validate() error {
	n := len(g.Nodes)
	seen := map[[2]NodeID]bool{}
	for _, e := range g.Edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return fmt.Errorf("mdg: %w: edge %d->%d out of range [0,%d)", errs.ErrBadGraph, e.From, e.To, n)
		}
		if e.From == e.To {
			return fmt.Errorf("mdg: %w: self loop on node %d", errs.ErrBadGraph, e.From)
		}
		k := [2]NodeID{e.From, e.To}
		if seen[k] {
			return fmt.Errorf("mdg: %w: duplicate edge %d->%d", errs.ErrBadGraph, e.From, e.To)
		}
		seen[k] = true
		for _, tr := range e.Transfers {
			if tr.Bytes <= 0 {
				return fmt.Errorf("mdg: %w: edge %d->%d has non-positive transfer size %d", errs.ErrBadGraph, e.From, e.To, tr.Bytes)
			}
			switch tr.Kind {
			case Transfer1D, Transfer2D, TransferG2L, TransferL2G, TransferG2G:
			default:
				return fmt.Errorf("mdg: %w: %w: edge %d->%d has transfer kind %d",
					errs.ErrBadGraph, errs.ErrUnsupportedTransfer, e.From, e.To, tr.Kind)
			}
		}
	}
	for i, nd := range g.Nodes {
		if nd.Alpha < 0 || nd.Alpha > 1 {
			return fmt.Errorf("mdg: %w: node %d (%s) alpha %v outside [0,1]", errs.ErrBadGraph, i, nd.Name, nd.Alpha)
		}
		if nd.Tau < 0 {
			return fmt.Errorf("mdg: %w: node %d (%s) negative tau %v", errs.ErrBadGraph, i, nd.Name, nd.Tau)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return fmt.Errorf("%w: %w", errs.ErrBadGraph, err)
	}
	return nil
}

// ErrCycle reports that the graph is not acyclic.
var ErrCycle = errors.New("mdg: graph contains a cycle")

// TopoOrder returns a deterministic topological order (Kahn's algorithm
// with smallest-id tie-breaking), or ErrCycle.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	g.ensureIndex()
	n := len(g.Nodes)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	// Min-heap behaviour via sorted frontier; graphs here are small.
	frontier := []NodeID{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for len(frontier) > 0 {
		sortIDs(frontier)
		v := frontier[0]
		frontier = frontier[1:]
		order = append(order, v)
		for _, s := range g.succs[v] {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = append(frontier, s)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// StartStop locates the START and STOP nodes: START is the unique node
// with no predecessors, STOP the unique node with no successors. An error
// is returned if either is not unique (use EnsureStartStop first).
func (g *Graph) StartStop() (start, stop NodeID, err error) {
	g.ensureIndex()
	start, stop = -1, -1
	for i := range g.Nodes {
		if len(g.preds[i]) == 0 {
			if start != -1 {
				return -1, -1, fmt.Errorf("mdg: multiple source nodes (%d and %d); call EnsureStartStop", start, i)
			}
			start = NodeID(i)
		}
		if len(g.succs[i]) == 0 {
			if stop != -1 {
				return -1, -1, fmt.Errorf("mdg: multiple sink nodes (%d and %d); call EnsureStartStop", stop, i)
			}
			stop = NodeID(i)
		}
	}
	if start == -1 || stop == -1 {
		return -1, -1, errors.New("mdg: graph has no source or no sink (empty or cyclic)")
	}
	return start, stop, nil
}

// EnsureStartStop guarantees a unique zero-cost START preceding all
// sources and a unique zero-cost STOP succeeding all sinks, adding dummy
// nodes (with no transfers on their edges) only when needed. It returns
// the START and STOP ids.
func (g *Graph) EnsureStartStop() (start, stop NodeID, err error) {
	if len(g.Nodes) == 0 {
		return -1, -1, errors.New("mdg: empty graph")
	}
	if _, err := g.TopoOrder(); err != nil {
		return -1, -1, err
	}
	g.ensureIndex()
	var sources, sinks []NodeID
	for i := range g.Nodes {
		if len(g.preds[i]) == 0 {
			sources = append(sources, NodeID(i))
		}
		if len(g.succs[i]) == 0 {
			sinks = append(sinks, NodeID(i))
		}
	}
	start = sources[0]
	if len(sources) > 1 || len(g.Nodes) == 1 {
		start = g.AddNode(Node{Name: "START"})
		for _, s := range sources {
			g.AddEdge(start, s)
		}
	}
	stop = sinks[0]
	if len(sinks) > 1 || stop == start {
		stop = g.AddNode(Node{Name: "STOP"})
		for _, s := range sinks {
			if s != stop {
				g.AddEdge(s, stop)
			}
		}
	}
	return start, stop, nil
}

// CriticalPath computes the longest path through the DAG under the given
// node and edge weight functions, returning the finish times y_i of
// Section 2 (y_i = max over preds (y_m + edgeW(m,i)) + nodeW(i)) and the
// overall critical path time (the max finish time).
func (g *Graph) CriticalPath(nodeW func(NodeID) float64, edgeW func(Edge) float64) (y []float64, cp float64, err error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	g.ensureIndex()
	y = make([]float64, len(g.Nodes))
	for _, v := range order {
		est := 0.0
		for _, m := range g.preds[v] {
			e, _ := g.EdgeBetween(m, v)
			if t := y[m] + edgeW(e); t > est {
				est = t
			}
		}
		y[v] = est + nodeW(v)
		if y[v] > cp {
			cp = y[v]
		}
	}
	return y, cp, nil
}

// Relabel returns a copy of g with node i renamed to perm[i]; perm must
// be a permutation of [0, NumNodes). Edges are remapped consistently and
// emitted in ascending (from, to) order so two isomorphic relabelings
// produce identical edge lists. The relation consumers rely on (see
// internal/oracle's metamorphic suite) is that node identity carries no
// cost: any weight evaluation of the relabeled graph under a permuted
// allocation equals the original's.
func (g *Graph) Relabel(perm []NodeID) (*Graph, error) {
	n := len(g.Nodes)
	if len(perm) != n {
		return nil, fmt.Errorf("mdg: %w: permutation has %d entries for %d nodes", errs.ErrBadGraph, len(perm), n)
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || int(v) >= n || seen[v] {
			return nil, fmt.Errorf("mdg: %w: not a permutation of [0,%d)", errs.ErrBadGraph, n)
		}
		seen[v] = true
	}
	out := &Graph{Nodes: make([]Node, n), Edges: make([]Edge, 0, len(g.Edges))}
	for i, nd := range g.Nodes {
		out.Nodes[perm[i]] = nd
	}
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, Edge{
			From:      perm[e.From],
			To:        perm[e.To],
			Transfers: append([]Transfer(nil), e.Transfers...),
		})
	}
	sort.Slice(out.Edges, func(a, b int) bool {
		if out.Edges[a].From != out.Edges[b].From {
			return out.Edges[a].From < out.Edges[b].From
		}
		return out.Edges[a].To < out.Edges[b].To
	})
	return out, nil
}

// DOT renders the graph in Graphviz format with node names and α/τ labels.
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box];\n", title)
	for i, n := range g.Nodes {
		label := n.Name
		if label == "" {
			label = fmt.Sprintf("n%d", i)
		}
		if n.Tau > 0 {
			fmt.Fprintf(&b, "  n%d [label=\"%s\\nα=%.3g τ=%.4gs\"];\n", i, label, n.Alpha, n.Tau)
		} else {
			fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", i, label)
		}
	}
	for _, e := range g.Edges {
		bytes := 0
		for _, tr := range e.Transfers {
			bytes += tr.Bytes
		}
		if bytes > 0 {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%dB\"];\n", e.From, e.To, bytes)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// jsonGraph is the serialized form.
type jsonGraph struct {
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
}

// MarshalJSON serializes nodes and edges.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonGraph{Nodes: g.Nodes, Edges: g.Edges})
}

// UnmarshalJSON deserializes and validates the graph.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	g.Nodes = jg.Nodes
	g.Edges = jg.Edges
	g.ready.Store(false)
	return g.Validate()
}
