package mdg

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds START -> a,b -> STOP with a transfer on each edge.
func diamond() (*Graph, NodeID, NodeID, NodeID, NodeID) {
	var g Graph
	s := g.AddNode(Node{Name: "s", Tau: 1})
	a := g.AddNode(Node{Name: "a", Tau: 2, Alpha: 0.1})
	b := g.AddNode(Node{Name: "b", Tau: 3, Alpha: 0.2})
	t := g.AddNode(Node{Name: "t", Tau: 1})
	g.AddEdge(s, a, Transfer{Bytes: 100, Kind: Transfer1D})
	g.AddEdge(s, b, Transfer{Bytes: 200, Kind: Transfer2D})
	g.AddEdge(a, t, Transfer{Bytes: 100, Kind: Transfer1D})
	g.AddEdge(b, t, Transfer{Bytes: 200, Kind: Transfer1D})
	return &g, s, a, b, t
}

func TestTopoOrderDiamond(t *testing.T) {
	g, s, a, b, stop := diamond()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[NodeID]int{}
	for i, v := range order {
		pos[v] = i
	}
	if pos[s] != 0 || pos[stop] != 3 || pos[a] > pos[stop] || pos[b] > pos[stop] {
		t.Fatalf("bad order %v", order)
	}
}

func TestCycleDetected(t *testing.T) {
	var g Graph
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should reject cycles")
	}
}

func TestPredsSuccs(t *testing.T) {
	g, s, a, b, stop := diamond()
	if got := g.Preds(stop); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Preds(stop) = %v", got)
	}
	if got := g.Succs(s); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Succs(s) = %v", got)
	}
	if got := g.Preds(s); len(got) != 0 {
		t.Fatalf("Preds(s) = %v", got)
	}
}

func TestEdgeBetweenAndMerge(t *testing.T) {
	var g Graph
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	g.AddEdge(a, b, Transfer{Bytes: 10, Kind: Transfer1D})
	g.AddEdge(a, b, Transfer{Bytes: 20, Kind: Transfer2D})
	e, ok := g.EdgeBetween(a, b)
	if !ok || len(e.Transfers) != 2 {
		t.Fatalf("merged edge = %+v ok=%v", e, ok)
	}
	if _, ok := g.EdgeBetween(b, a); ok {
		t.Fatal("reverse edge should not exist")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	t.Run("out of range edge", func(t *testing.T) {
		var g Graph
		g.AddNode(Node{})
		g.Edges = append(g.Edges, Edge{From: 0, To: 5})
		if err := g.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		var g Graph
		a := g.AddNode(Node{})
		g.Edges = append(g.Edges, Edge{From: a, To: a})
		if err := g.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("duplicate edge", func(t *testing.T) {
		var g Graph
		a := g.AddNode(Node{})
		b := g.AddNode(Node{})
		g.Edges = append(g.Edges, Edge{From: a, To: b}, Edge{From: a, To: b})
		if err := g.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("bad alpha", func(t *testing.T) {
		var g Graph
		g.AddNode(Node{Alpha: 1.5})
		if err := g.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("negative tau", func(t *testing.T) {
		var g Graph
		g.AddNode(Node{Tau: -1})
		if err := g.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("zero byte transfer", func(t *testing.T) {
		var g Graph
		a := g.AddNode(Node{})
		b := g.AddNode(Node{})
		g.Edges = append(g.Edges, Edge{From: a, To: b, Transfers: []Transfer{{Bytes: 0}}})
		if err := g.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
}

func TestStartStopOnDiamond(t *testing.T) {
	g, s, _, _, stop := diamond()
	start, end, err := g.StartStop()
	if err != nil {
		t.Fatal(err)
	}
	if start != s || end != stop {
		t.Fatalf("start/stop = %d/%d, want %d/%d", start, end, s, stop)
	}
}

func TestEnsureStartStopAddsDummies(t *testing.T) {
	var g Graph
	a := g.AddNode(Node{Name: "a", Tau: 1})
	b := g.AddNode(Node{Name: "b", Tau: 1})
	// Two disconnected nodes: two sources, two sinks.
	start, stop, err := g.EnsureStartStop()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.Nodes[start].Tau != 0 || g.Nodes[stop].Tau != 0 {
		t.Fatal("dummy nodes must be zero cost")
	}
	if len(g.Succs(start)) != 2 || len(g.Preds(stop)) != 2 {
		t.Fatalf("dummy wiring wrong: succs=%v preds=%v", g.Succs(start), g.Preds(stop))
	}
	if _, err := g.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	_ = a
	_ = b
}

func TestEnsureStartStopNoOpOnWellFormed(t *testing.T) {
	g, s, _, _, stop := diamond()
	n0 := g.NumNodes()
	start, end, err := g.EnsureStartStop()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != n0 || start != s || end != stop {
		t.Fatalf("EnsureStartStop changed a well-formed graph")
	}
}

func TestEnsureStartStopSingleNode(t *testing.T) {
	var g Graph
	g.AddNode(Node{Name: "only", Tau: 1})
	start, stop, err := g.EnsureStartStop()
	if err != nil {
		t.Fatal(err)
	}
	if start == stop {
		t.Fatal("START and STOP must be distinct")
	}
	if _, _, err := g.StartStop(); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPathUnitWeights(t *testing.T) {
	g, _, _, _, stop := diamond()
	// Node weight = tau, edge weight = 0: longest path s(1) -> b(3) -> t(1) = 5.
	y, cp, err := g.CriticalPath(
		func(n NodeID) float64 { return g.Nodes[n].Tau },
		func(Edge) float64 { return 0 },
	)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 5 {
		t.Fatalf("cp = %v, want 5", cp)
	}
	if y[stop] != 5 {
		t.Fatalf("y[stop] = %v, want 5", y[stop])
	}
}

func TestCriticalPathEdgeWeights(t *testing.T) {
	g, _, _, b, _ := diamond()
	// Edge weight = bytes/100: s->b adds 2, b->t adds 2: 1+2+3+2+1 = 9.
	_, cp, err := g.CriticalPath(
		func(n NodeID) float64 { return g.Nodes[n].Tau },
		func(e Edge) float64 {
			w := 0.0
			for _, tr := range e.Transfers {
				w += float64(tr.Bytes) / 100
			}
			return w
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 9 {
		t.Fatalf("cp = %v, want 9", cp)
	}
	_ = b
}

func TestJSONRoundTrip(t *testing.T) {
	g, _, _, _, _ := diamond()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var g2 Graph
	if err := json.Unmarshal(data, &g2); err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || len(g2.Edges) != len(g.Edges) {
		t.Fatalf("round trip mismatch: %d/%d nodes, %d/%d edges",
			g2.NumNodes(), g.NumNodes(), len(g2.Edges), len(g.Edges))
	}
	if g2.Nodes[1].Alpha != g.Nodes[1].Alpha {
		t.Fatal("node payload lost")
	}
	if _, err := g2.TopoOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	bad := `{"nodes":[{"name":"a"},{"name":"b"}],"edges":[{"from":0,"to":1},{"from":1,"to":0}]}`
	var g Graph
	if err := json.Unmarshal([]byte(bad), &g); err == nil {
		t.Fatal("want error for cyclic JSON graph")
	}
}

func TestDOTContainsNodesAndEdges(t *testing.T) {
	g, _, _, _, _ := diamond()
	dot := g.DOT("diamond")
	for _, want := range []string{"digraph", "n0 -> n1", "100B", "α="} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// randomDAG builds a random DAG with edges only from lower to higher ids
// (guaranteeing acyclicity).
func randomDAG(rng *rand.Rand, n int, pEdge float64) *Graph {
	var g Graph
	for i := 0; i < n; i++ {
		g.AddNode(Node{Name: "n", Tau: rng.Float64(), Alpha: rng.Float64() * 0.5})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < pEdge {
				g.AddEdge(NodeID(i), NodeID(j), Transfer{Bytes: 1 + rng.Intn(1000), Kind: TransferKind(rng.Intn(2))})
			}
		}
	}
	return &g
}

// TestTopoOrderPropertyRandomDAGs: every edge goes forward in the order,
// and the order is a permutation of the nodes.
func TestTopoOrderPropertyRandomDAGs(t *testing.T) {
	f := func(seed uint16, nRaw uint8, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 1 + int(nRaw)%20
		g := randomDAG(rng, n, float64(pRaw)/255)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		if len(order) != n {
			return false
		}
		pos := make(map[NodeID]int, n)
		for i, v := range order {
			if _, dup := pos[v]; dup {
				return false
			}
			pos[v] = i
		}
		for _, e := range g.Edges {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEnsureStartStopProperty: after augmentation every graph has a unique
// source and sink reachable from/to everything, and Validate passes.
func TestEnsureStartStopProperty(t *testing.T) {
	f := func(seed uint16, nRaw uint8, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 1 + int(nRaw)%15
		g := randomDAG(rng, n, float64(pRaw)/255)
		start, stop, err := g.EnsureStartStop()
		if err != nil {
			return false
		}
		if s2, t2, err := g.StartStop(); err != nil || s2 != start || t2 != stop {
			return false
		}
		// START reaches everything; everything reaches STOP.
		reach := map[NodeID]bool{start: true}
		order, _ := g.TopoOrder()
		for _, v := range order {
			if reach[v] {
				for _, s := range g.Succs(v) {
					reach[s] = true
				}
			}
		}
		if len(reach) != g.NumNodes() {
			return false
		}
		coreach := map[NodeID]bool{stop: true}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if coreach[v] {
				for _, m := range g.Preds(v) {
					coreach[m] = true
				}
			}
		}
		return len(coreach) == g.NumNodes() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCriticalPathMonotonicity: increasing any node weight cannot decrease
// the critical path.
func TestCriticalPathMonotonicity(t *testing.T) {
	f := func(seed uint16, bump uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		g := randomDAG(rng, 8, 0.3)
		w := make([]float64, g.NumNodes())
		for i := range w {
			w[i] = rng.Float64()
		}
		nodeW := func(n NodeID) float64 { return w[n] }
		edgeW := func(Edge) float64 { return 0 }
		_, cp1, err := g.CriticalPath(nodeW, edgeW)
		if err != nil {
			return false
		}
		w[int(bump)%len(w)] += 1.5
		_, cp2, err := g.CriticalPath(nodeW, edgeW)
		if err != nil {
			return false
		}
		return cp2 >= cp1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
