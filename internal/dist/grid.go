package dist

import (
	"fmt"

	"paradigm/internal/mdg"
)

// This file implements the paper's stated extension ("for other programs
// more general distributions may be needed for optimal performance ...
// we are in the process of extending our cost functions"): blocked
// two-dimensional (grid) distributions, where a matrix is partitioned in
// both dimensions over a pr×pc processor grid. Grid distributions make
// the data-parallel multiply scale better (panel gathers over √q peers
// instead of a full operand all-gather), at the price of more complex
// redistribution patterns — both captured by the extended cost functions
// in internal/costmodel.

// PlacedRect is one block of a distribution: the rectangle rows [R0,R1) ×
// cols [C0,C1) resident on processor Proc. Empty rectangles are valid
// (more processors than blocks).
type PlacedRect struct {
	Proc           int
	R0, R1, C0, C1 int
}

// Empty reports whether the block holds no elements.
func (p PlacedRect) Empty() bool { return p.R0 >= p.R1 || p.C0 >= p.C1 }

// Placement is a full block map: every element of the matrix appears in
// exactly one rectangle.
type Placement struct {
	Rows, Cols int
	Blocks     []PlacedRect
}

// BlockFor returns the rectangle owned by proc, if any.
func (pl Placement) BlockFor(proc int) (PlacedRect, bool) {
	for _, b := range pl.Blocks {
		if b.Proc == proc {
			return b, true
		}
	}
	return PlacedRect{}, false
}

// Validate checks the exact-tiling invariant.
func (pl Placement) Validate() error {
	if pl.Rows <= 0 || pl.Cols <= 0 {
		return fmt.Errorf("dist: invalid placement shape %dx%d", pl.Rows, pl.Cols)
	}
	area := 0
	seen := map[int]bool{}
	for _, b := range pl.Blocks {
		if b.R0 < 0 || b.R1 > pl.Rows || b.C0 < 0 || b.C1 > pl.Cols || b.R0 > b.R1 || b.C0 > b.C1 {
			return fmt.Errorf("dist: block %+v outside %dx%d", b, pl.Rows, pl.Cols)
		}
		if seen[b.Proc] {
			return fmt.Errorf("dist: processor %d owns two blocks", b.Proc)
		}
		seen[b.Proc] = true
		area += (b.R1 - b.R0) * (b.C1 - b.C0)
	}
	if area != pl.Rows*pl.Cols {
		return fmt.Errorf("dist: blocks cover %d of %d elements", area, pl.Rows*pl.Cols)
	}
	return nil
}

// PlacementOf returns the block map of a 1D distribution.
func (d Dist) Placement() Placement {
	pl := Placement{Rows: d.Rows, Cols: d.Cols}
	for b := range d.Procs {
		r0, r1, c0, c1 := d.BlockRect(b)
		pl.Blocks = append(pl.Blocks, PlacedRect{Proc: d.Procs[b], R0: r0, R1: r1, C0: c0, C1: c1})
	}
	return pl
}

// GridShape returns the near-square factorization pr×pc = q with pr <= pc
// and pr the largest divisor of q not exceeding √q. Powers of two always
// split evenly (e.g. 8 → 2×4, 16 → 4×4).
func GridShape(q int) (pr, pc int) {
	if q < 1 {
		panic(fmt.Sprintf("dist: grid of %d processors", q))
	}
	pr = 1
	for d := 1; d*d <= q; d++ {
		if q%d == 0 {
			pr = d
		}
	}
	return pr, q / pr
}

// Grid is a blocked 2D distribution of an R×C matrix over a pr×pc
// processor grid in row-major order: grid position (i, j) holds block
// (i, j) on Procs[i*pc+j].
type Grid struct {
	Rows, Cols int
	PR, PC     int
	Procs      []int
}

// NewGrid builds a grid distribution over the ordered processor list,
// using the near-square GridShape factorization of its size.
func NewGrid(rows, cols int, procs []int) (Grid, error) {
	g := Grid{Rows: rows, Cols: cols, Procs: procs}
	g.PR, g.PC = 0, 0
	if len(procs) > 0 {
		g.PR, g.PC = GridShape(len(procs))
	}
	if err := g.Validate(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// Validate checks the grid invariants.
func (g Grid) Validate() error {
	if g.Rows <= 0 || g.Cols <= 0 {
		return fmt.Errorf("dist: invalid grid shape %dx%d", g.Rows, g.Cols)
	}
	if g.PR < 1 || g.PC < 1 || g.PR*g.PC != len(g.Procs) {
		return fmt.Errorf("dist: grid %dx%d does not match %d processors", g.PR, g.PC, len(g.Procs))
	}
	seen := map[int]bool{}
	for _, p := range g.Procs {
		if p < 0 {
			return fmt.Errorf("dist: negative processor id %d", p)
		}
		if seen[p] {
			return fmt.Errorf("dist: duplicate processor id %d", p)
		}
		seen[p] = true
	}
	return nil
}

// blockRange splits extent over n blocks with ceil-sized blocks.
func blockRange(extent, n, i int) (lo, hi int) {
	bs := (extent + n - 1) / n
	lo = i * bs
	hi = lo + bs
	if hi > extent {
		hi = extent
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// BlockRect returns the rectangle of grid position (i, j).
func (g Grid) BlockRect(i, j int) (r0, r1, c0, c1 int) {
	if i < 0 || i >= g.PR || j < 0 || j >= g.PC {
		panic(fmt.Sprintf("dist: grid position (%d,%d) outside %dx%d", i, j, g.PR, g.PC))
	}
	r0, r1 = blockRange(g.Rows, g.PR, i)
	c0, c1 = blockRange(g.Cols, g.PC, j)
	return
}

// Placement returns the grid's block map.
func (g Grid) Placement() Placement {
	pl := Placement{Rows: g.Rows, Cols: g.Cols}
	for i := 0; i < g.PR; i++ {
		for j := 0; j < g.PC; j++ {
			r0, r1, c0, c1 := g.BlockRect(i, j)
			pl.Blocks = append(pl.Blocks, PlacedRect{
				Proc: g.Procs[i*g.PC+j], R0: r0, R1: r1, C0: c0, C1: c1,
			})
		}
	}
	return pl
}

// RowPeers returns the processors of grid row i (ascending grid column).
func (g Grid) RowPeers(i int) []int {
	out := make([]int, g.PC)
	copy(out, g.Procs[i*g.PC:(i+1)*g.PC])
	return out
}

// ColPeers returns the processors of grid column j (ascending grid row).
func (g Grid) ColPeers(j int) []int {
	out := make([]int, g.PR)
	for i := 0; i < g.PR; i++ {
		out[i] = g.Procs[i*g.PC+j]
	}
	return out
}

// MessagesBetween computes the exact redistribution message list between
// two arbitrary placements of the same matrix: one message per
// non-empty pairwise block intersection.
func MessagesBetween(src, dst Placement) ([]Msg, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	if err := dst.Validate(); err != nil {
		return nil, err
	}
	if src.Rows != dst.Rows || src.Cols != dst.Cols {
		return nil, fmt.Errorf("dist: shape mismatch %dx%d vs %dx%d", src.Rows, src.Cols, dst.Rows, dst.Cols)
	}
	var out []Msg
	for _, sb := range src.Blocks {
		if sb.Empty() {
			continue
		}
		for _, db := range dst.Blocks {
			r0, r1 := max(sb.R0, db.R0), min(sb.R1, db.R1)
			c0, c1 := max(sb.C0, db.C0), min(sb.C1, db.C1)
			if r0 >= r1 || c0 >= c1 {
				continue
			}
			out = append(out, Msg{From: sb.Proc, To: db.Proc, R0: r0, R1: r1, C0: c0, C1: c1})
		}
	}
	return out, nil
}

// KindBetween classifies a redistribution between two layouts for the
// extended cost model: the original 1D/2D kinds for linear-linear pairs,
// and the grid kinds of the extension otherwise.
func KindBetween(srcAxis, dstAxis Axis) mdg.TransferKind {
	srcGrid := srcAxis == ByGrid
	dstGrid := dstAxis == ByGrid
	switch {
	case srcGrid && dstGrid:
		return mdg.TransferG2G
	case srcGrid:
		return mdg.TransferG2L
	case dstGrid:
		return mdg.TransferL2G
	case srcAxis == dstAxis:
		return mdg.Transfer1D
	default:
		return mdg.Transfer2D
	}
}
