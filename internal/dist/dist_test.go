package dist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paradigm/internal/mdg"
)

func TestBlockRangesEvenSplit(t *testing.T) {
	d, err := New(10, 4, ByRow, []int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := d.BlockRange(0); lo != 0 || hi != 5 {
		t.Fatalf("block 0 = [%d,%d)", lo, hi)
	}
	if lo, hi := d.BlockRange(1); lo != 5 || hi != 10 {
		t.Fatalf("block 1 = [%d,%d)", lo, hi)
	}
	if d.OwnerProc(4) != 3 || d.OwnerProc(5) != 7 {
		t.Fatal("owner wrong")
	}
	if d.TotalBytes() != 10*4*8 {
		t.Fatalf("TotalBytes = %d", d.TotalBytes())
	}
}

func TestBlockRangesUnevenAndEmpty(t *testing.T) {
	// 10 rows over 4 procs: blocks of 3 -> [0,3) [3,6) [6,9) [9,10).
	d, _ := New(10, 2, ByRow, []int{0, 1, 2, 3})
	want := [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 10}}
	for b, w := range want {
		if lo, hi := d.BlockRange(b); lo != w[0] || hi != w[1] {
			t.Fatalf("block %d = [%d,%d), want %v", b, lo, hi, w)
		}
	}
	// 2 rows over 4 procs: blocks of 1 -> two procs empty.
	d2, _ := New(2, 2, ByRow, []int{0, 1, 2, 3})
	if lo, hi := d2.BlockRange(2); lo != hi {
		t.Fatalf("block 2 should be empty, got [%d,%d)", lo, hi)
	}
}

func TestBlockRectByCol(t *testing.T) {
	d, _ := New(6, 8, ByCol, []int{0, 1})
	r0, r1, c0, c1 := d.BlockRect(1)
	if r0 != 0 || r1 != 6 || c0 != 4 || c1 != 8 {
		t.Fatalf("rect = [%d:%d,%d:%d)", r0, r1, c0, c1)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 2, ByRow, []int{0}); err == nil {
		t.Fatal("want shape error")
	}
	if _, err := New(2, 2, ByRow, nil); err == nil {
		t.Fatal("want empty group error")
	}
	if _, err := New(2, 2, ByRow, []int{0, 0}); err == nil {
		t.Fatal("want duplicate proc error")
	}
	if _, err := New(2, 2, ByRow, []int{-1}); err == nil {
		t.Fatal("want negative proc error")
	}
	if _, err := New(2, 2, Axis(5), []int{0}); err == nil {
		t.Fatal("want axis error")
	}
}

func TestKind(t *testing.T) {
	a, _ := New(4, 4, ByRow, []int{0})
	b, _ := New(4, 4, ByCol, []int{1})
	if Kind(a, a) != mdg.Transfer1D || Kind(b, b) != mdg.Transfer1D {
		t.Fatal("same axis should be 1D")
	}
	if Kind(a, b) != mdg.Transfer2D || Kind(b, a) != mdg.Transfer2D {
		t.Fatal("cross axis should be 2D")
	}
}

func TestMessagesRow2RowEqualGroups(t *testing.T) {
	src, _ := New(8, 4, ByRow, []int{0, 1})
	dst, _ := New(8, 4, ByRow, []int{2, 3})
	msgs, err := Messages(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Identical block boundaries: one message per block pair.
	if len(msgs) != 2 {
		t.Fatalf("msgs = %v", msgs)
	}
	if msgs[0].From != 0 || msgs[0].To != 2 || msgs[0].Bytes() != 4*4*8 {
		t.Fatalf("msg0 = %+v", msgs[0])
	}
}

func TestMessagesRow2RowDifferentCounts(t *testing.T) {
	// 2 senders -> 4 receivers: each sender's half splits in two.
	src, _ := New(8, 4, ByRow, []int{0, 1})
	dst, _ := New(8, 4, ByRow, []int{4, 5, 6, 7})
	msgs, err := Messages(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 4 {
		t.Fatalf("want 4 messages, got %v", msgs)
	}
}

func TestMessagesRow2ColAllToAll(t *testing.T) {
	src, _ := New(8, 8, ByRow, []int{0, 1})
	dst, _ := New(8, 8, ByCol, []int{2, 3, 4})
	msgs, err := Messages(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// All-to-all: 2 × 3 rectangles.
	if len(msgs) != 6 {
		t.Fatalf("want 6 messages, got %d: %v", len(msgs), msgs)
	}
}

func TestMessagesLocalMove(t *testing.T) {
	// Same proc in both groups: local move message with From == To.
	src, _ := New(8, 4, ByRow, []int{0, 1})
	dst, _ := New(8, 4, ByRow, []int{0, 1})
	msgs, err := Messages(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if m.From != m.To {
			t.Fatalf("expected local moves only, got %+v", m)
		}
	}
}

func TestMessagesShapeMismatch(t *testing.T) {
	a, _ := New(8, 4, ByRow, []int{0})
	b, _ := New(4, 8, ByRow, []int{1})
	if _, err := Messages(a, b); err == nil {
		t.Fatal("want shape error")
	}
}

func TestPanics(t *testing.T) {
	d, _ := New(4, 4, ByRow, []int{0, 1})
	for name, fn := range map[string]func(){
		"block range": func() { d.BlockRange(2) },
		"owner range": func() { d.OwnerProc(4) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// randomDist builds a random distribution of a fixed shape.
func randomDist(rng *rand.Rand, rows, cols int) Dist {
	axis := ByRow
	if rng.Intn(2) == 1 {
		axis = ByCol
	}
	q := 1 + rng.Intn(8)
	procs := rng.Perm(32)[:q]
	d, err := New(rows, cols, axis, procs)
	if err != nil {
		panic(err)
	}
	return d
}

// TestMessagesExactCoverage: for random src/dst distributions, the
// messages tile the matrix exactly — every element is carried exactly
// once, never duplicated, never dropped.
func TestMessagesExactCoverage(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(20)
		src := randomDist(rng, rows, cols)
		dst := randomDist(rng, rows, cols)
		msgs, err := Messages(src, dst)
		if err != nil {
			return false
		}
		count := make([]int, rows*cols)
		for _, m := range msgs {
			// Sender must own the rectangle; receiver must own it too.
			for r := m.R0; r < m.R1; r++ {
				for c := m.C0; c < m.C1; c++ {
					count[r*cols+c]++
					srcIdx, dstIdx := r, r
					if src.Axis == ByCol {
						srcIdx = c
					}
					if dst.Axis == ByCol {
						dstIdx = c
					}
					if src.OwnerProc(srcIdx) != m.From || dst.OwnerProc(dstIdx) != m.To {
						return false
					}
				}
			}
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestMessagesByteConservation: total message bytes equal the array size.
func TestMessagesByteConservation(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		rows := 1 + rng.Intn(50)
		cols := 1 + rng.Intn(50)
		src := randomDist(rng, rows, cols)
		dst := randomDist(rng, rows, cols)
		msgs, err := Messages(src, dst)
		if err != nil {
			return false
		}
		total := 0
		for _, m := range msgs {
			if m.Bytes() <= 0 {
				return false
			}
			total += m.Bytes()
		}
		return total == src.TotalBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestMessageCount1DLinearIn2DQuadratic: the structural difference behind
// Equations 2 vs 3 — same-axis redistribution produces O(max(pi,pj))
// messages, cross-axis produces pi·pj (when blocks are non-empty).
func TestMessageCount1DLinearIn2DQuadratic(t *testing.T) {
	mk := func(axis Axis, procs ...int) Dist {
		d, err := New(64, 64, axis, procs)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	seq := func(n, base int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = base + i
		}
		return out
	}
	m1, _ := Messages(mk(ByRow, seq(4, 0)...), mk(ByRow, seq(8, 100)...))
	if len(m1) != 8 {
		t.Fatalf("1D message count = %d, want 8", len(m1))
	}
	m2, _ := Messages(mk(ByRow, seq(4, 0)...), mk(ByCol, seq(8, 100)...))
	if len(m2) != 32 {
		t.Fatalf("2D message count = %d, want 32", len(m2))
	}
}
