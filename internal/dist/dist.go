// Package dist implements blocked one-dimensional data distributions and
// exact redistribution message generation — the machinery behind the
// paper's Figure 4 transfer patterns.
//
// A matrix is distributed across an ordered group of processors along one
// dimension (rows or columns) in contiguous blocks of ceil(extent/q)
// indices. Moving an array between two nodes of the MDG is a
// redistribution from the producer's distribution to the consumer's:
//
//   - same axis on both sides: the ROW2ROW / COL2COL ("1D") pattern —
//     each processor exchanges with the few peers whose index ranges
//     overlap its own;
//   - different axes: the ROW2COL / COL2ROW ("2D") pattern — every
//     sender intersects every receiver, an all-to-all of sub-rectangles.
//
// Messages carries the exact rectangle geometry, so the simulator moves
// the true bytes and verification can check that every element arrives
// exactly once.
package dist

import (
	"fmt"

	"paradigm/internal/mdg"
)

// ElemBytes is the size of one matrix element (float64).
const ElemBytes = 8

// Axis selects the distributed dimension.
type Axis uint8

const (
	// ByRow distributes contiguous row blocks.
	ByRow Axis = iota
	// ByCol distributes contiguous column blocks.
	ByCol
	// ByGrid distributes blocks over a near-square processor grid in
	// both dimensions (the paper's general-distribution extension; see
	// grid.go). A node axis only: 1D Dist values never carry it.
	ByGrid
)

// String renders the axis.
func (a Axis) String() string {
	switch a {
	case ByRow:
		return "row"
	case ByCol:
		return "col"
	case ByGrid:
		return "grid"
	default:
		return fmt.Sprintf("Axis(%d)", uint8(a))
	}
}

// Dist is a blocked distribution of an R×C matrix over an ordered
// processor group along Axis. Block b lives on Procs[b].
type Dist struct {
	Rows, Cols int
	Axis       Axis
	Procs      []int
}

// New builds a distribution, validating its shape.
func New(rows, cols int, axis Axis, procs []int) (Dist, error) {
	d := Dist{Rows: rows, Cols: cols, Axis: axis, Procs: procs}
	if err := d.Validate(); err != nil {
		return Dist{}, err
	}
	return d, nil
}

// Validate checks the distribution invariants.
func (d Dist) Validate() error {
	if d.Rows <= 0 || d.Cols <= 0 {
		return fmt.Errorf("dist: invalid shape %dx%d", d.Rows, d.Cols)
	}
	if len(d.Procs) == 0 {
		return fmt.Errorf("dist: empty processor group")
	}
	if d.Axis != ByRow && d.Axis != ByCol {
		return fmt.Errorf("dist: unknown axis %d", d.Axis)
	}
	seen := map[int]bool{}
	for _, p := range d.Procs {
		if p < 0 {
			return fmt.Errorf("dist: negative processor id %d", p)
		}
		if seen[p] {
			return fmt.Errorf("dist: duplicate processor id %d", p)
		}
		seen[p] = true
	}
	return nil
}

// extent returns the length of the distributed dimension.
func (d Dist) extent() int {
	if d.Axis == ByRow {
		return d.Rows
	}
	return d.Cols
}

// BlockSize returns ceil(extent/q), the nominal block length.
func (d Dist) BlockSize() int {
	q := len(d.Procs)
	return (d.extent() + q - 1) / q
}

// BlockRange returns the half-open index range [lo, hi) of block b along
// the distributed axis. Trailing blocks may be short or empty when the
// extent does not divide evenly.
func (d Dist) BlockRange(b int) (lo, hi int) {
	if b < 0 || b >= len(d.Procs) {
		panic(fmt.Sprintf("dist: block %d outside [0,%d)", b, len(d.Procs)))
	}
	bs := d.BlockSize()
	lo = b * bs
	hi = lo + bs
	if ext := d.extent(); hi > ext {
		hi = ext
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// BlockRect returns block b as a full rectangle rows [r0,r1) × cols [c0,c1).
func (d Dist) BlockRect(b int) (r0, r1, c0, c1 int) {
	lo, hi := d.BlockRange(b)
	if d.Axis == ByRow {
		return lo, hi, 0, d.Cols
	}
	return 0, d.Rows, lo, hi
}

// OwnerProc returns the processor holding index i of the distributed axis.
func (d Dist) OwnerProc(i int) int {
	ext := d.extent()
	if i < 0 || i >= ext {
		panic(fmt.Sprintf("dist: index %d outside [0,%d)", i, ext))
	}
	b := i / d.BlockSize()
	return d.Procs[b]
}

// TotalBytes is the array size L in bytes.
func (d Dist) TotalBytes() int { return d.Rows * d.Cols * ElemBytes }

// Kind classifies the redistribution src -> dst per Figure 4: 1D when the
// axes match, 2D when they differ.
func Kind(src, dst Dist) mdg.TransferKind {
	if src.Axis == dst.Axis {
		return mdg.Transfer1D
	}
	return mdg.Transfer2D
}

// Msg is one point-to-point message of a redistribution: the rectangle
// rows [R0,R1) × cols [C0,C1) moving from processor From to processor To.
// From == To denotes a processor-local move (no network involvement).
type Msg struct {
	From, To       int
	R0, R1, C0, C1 int
}

// Bytes returns the payload size.
func (m Msg) Bytes() int { return (m.R1 - m.R0) * (m.C1 - m.C0) * ElemBytes }

// Messages computes the exact message list redistributing an array from
// src to dst. Both must describe the same matrix shape. Every element of
// the matrix appears in exactly one message; empty intersections produce
// no message.
func Messages(src, dst Dist) ([]Msg, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	if err := dst.Validate(); err != nil {
		return nil, err
	}
	if src.Rows != dst.Rows || src.Cols != dst.Cols {
		return nil, fmt.Errorf("dist: shape mismatch %dx%d vs %dx%d", src.Rows, src.Cols, dst.Rows, dst.Cols)
	}
	var out []Msg
	for sb := range src.Procs {
		sr0, sr1, sc0, sc1 := src.BlockRect(sb)
		if sr0 == sr1 || sc0 == sc1 {
			continue
		}
		for db := range dst.Procs {
			dr0, dr1, dc0, dc1 := dst.BlockRect(db)
			r0, r1 := max(sr0, dr0), min(sr1, dr1)
			c0, c1 := max(sc0, dc0), min(sc1, dc1)
			if r0 >= r1 || c0 >= c1 {
				continue
			}
			out = append(out, Msg{
				From: src.Procs[sb], To: dst.Procs[db],
				R0: r0, R1: r1, C0: c0, C1: c1,
			})
		}
	}
	return out, nil
}
