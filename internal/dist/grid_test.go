package dist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paradigm/internal/mdg"
)

func TestGridShape(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 8: {2, 4}, 16: {4, 4},
		32: {4, 8}, 64: {8, 8}, 6: {2, 3}, 12: {3, 4}, 7: {1, 7}, 36: {6, 6},
	}
	for q, want := range cases {
		pr, pc := GridShape(q)
		if pr != want[0] || pc != want[1] {
			t.Fatalf("GridShape(%d) = %dx%d, want %dx%d", q, pr, pc, want[0], want[1])
		}
		if pr*pc != q || pr > pc {
			t.Fatalf("GridShape(%d) invalid: %dx%d", q, pr, pc)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for q=0")
		}
	}()
	GridShape(0)
}

func TestNewGridBlocks(t *testing.T) {
	g, err := NewGrid(8, 12, []int{10, 11, 12, 13})
	if err != nil {
		t.Fatal(err)
	}
	if g.PR != 2 || g.PC != 2 {
		t.Fatalf("grid %dx%d", g.PR, g.PC)
	}
	r0, r1, c0, c1 := g.BlockRect(1, 0)
	if r0 != 4 || r1 != 8 || c0 != 0 || c1 != 6 {
		t.Fatalf("block(1,0) = [%d:%d,%d:%d)", r0, r1, c0, c1)
	}
	pl := g.Placement()
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pl.Blocks) != 4 || pl.Blocks[3].Proc != 13 {
		t.Fatalf("placement = %+v", pl)
	}
}

func TestGridPeers(t *testing.T) {
	g, _ := NewGrid(8, 8, []int{0, 1, 2, 3, 4, 5, 6, 7}) // 2x4
	row := g.RowPeers(1)
	if len(row) != 4 || row[0] != 4 || row[3] != 7 {
		t.Fatalf("RowPeers(1) = %v", row)
	}
	col := g.ColPeers(2)
	if len(col) != 2 || col[0] != 2 || col[1] != 6 {
		t.Fatalf("ColPeers(2) = %v", col)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 4, []int{0}); err == nil {
		t.Fatal("want shape error")
	}
	if _, err := NewGrid(4, 4, nil); err == nil {
		t.Fatal("want empty group error")
	}
	if _, err := NewGrid(4, 4, []int{0, 0}); err == nil {
		t.Fatal("want duplicate error")
	}
	if _, err := NewGrid(4, 4, []int{-1}); err == nil {
		t.Fatal("want negative id error")
	}
}

func TestPlacementValidateCatchesGaps(t *testing.T) {
	bad := Placement{Rows: 2, Cols: 2, Blocks: []PlacedRect{
		{Proc: 0, R0: 0, R1: 1, C0: 0, C1: 2},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("want coverage error")
	}
	dup := Placement{Rows: 2, Cols: 2, Blocks: []PlacedRect{
		{Proc: 0, R0: 0, R1: 2, C0: 0, C1: 2},
		{Proc: 0, R0: 0, R1: 0, C0: 0, C1: 0},
	}}
	if err := dup.Validate(); err == nil {
		t.Fatal("want duplicate-proc error")
	}
}

// TestMessagesBetweenExactCoverage extends the exact-tiling property to
// arbitrary placement pairs, including grids.
func TestMessagesBetweenExactCoverage(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(20)
		mk := func() Placement {
			q := 1 + rng.Intn(9)
			procs := rng.Perm(32)[:q]
			switch rng.Intn(3) {
			case 0:
				d, _ := New(rows, cols, ByRow, procs)
				return d.Placement()
			case 1:
				d, _ := New(rows, cols, ByCol, procs)
				return d.Placement()
			default:
				g, _ := NewGrid(rows, cols, procs)
				return g.Placement()
			}
		}
		src, dst := mk(), mk()
		msgs, err := MessagesBetween(src, dst)
		if err != nil {
			return false
		}
		count := make([]int, rows*cols)
		total := 0
		for _, m := range msgs {
			for r := m.R0; r < m.R1; r++ {
				for c := m.C0; c < m.C1; c++ {
					count[r*cols+c]++
				}
			}
			total += m.Bytes()
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return total == rows*cols*ElemBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKindBetween(t *testing.T) {
	cases := []struct {
		src, dst Axis
		want     mdg.TransferKind
	}{
		{ByRow, ByRow, mdg.Transfer1D},
		{ByCol, ByCol, mdg.Transfer1D},
		{ByRow, ByCol, mdg.Transfer2D},
		{ByCol, ByRow, mdg.Transfer2D},
		{ByGrid, ByRow, mdg.TransferG2L},
		{ByGrid, ByCol, mdg.TransferG2L},
		{ByRow, ByGrid, mdg.TransferL2G},
		{ByGrid, ByGrid, mdg.TransferG2G},
	}
	for _, c := range cases {
		if got := KindBetween(c.src, c.dst); got != c.want {
			t.Fatalf("KindBetween(%v,%v) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

// TestGridMessageCountsVsLinear: grid-to-grid redistribution produces far
// fewer messages than the 2D all-to-all at the same sizes — the
// structural reason the extension pays off.
func TestGridMessageCountsVsLinear(t *testing.T) {
	procsA := make([]int, 16)
	procsB := make([]int, 16)
	for i := range procsA {
		procsA[i] = i
		procsB[i] = 100 + i
	}
	gA, _ := NewGrid(64, 64, procsA)
	gB, _ := NewGrid(64, 64, procsB)
	g2g, err := MessagesBetween(gA.Placement(), gB.Placement())
	if err != nil {
		t.Fatal(err)
	}
	dA, _ := New(64, 64, ByRow, procsA)
	dB, _ := New(64, 64, ByCol, procsB)
	allToAll, err := MessagesBetween(dA.Placement(), dB.Placement())
	if err != nil {
		t.Fatal(err)
	}
	if len(g2g) >= len(allToAll) {
		t.Fatalf("aligned grid-to-grid (%d msgs) should beat row-to-col all-to-all (%d msgs)",
			len(g2g), len(allToAll))
	}
	// Aligned grids exchange exactly one message per block.
	if len(g2g) != 16 {
		t.Fatalf("aligned 4x4 grids: %d messages, want 16", len(g2g))
	}
}
