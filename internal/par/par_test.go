package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersEnvOverride(t *testing.T) {
	t.Setenv(EnvWorkers, "3")
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
	t.Setenv(EnvWorkers, "not-a-number")
	if got := Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() = %d, want NumCPU %d on invalid env", got, runtime.NumCPU())
	}
	t.Setenv(EnvWorkers, "-2")
	if got := Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() = %d, want NumCPU %d on negative env", got, runtime.NumCPU())
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got, err := MapN(context.Background(), workers, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const workers = 4
	var cur, peak atomic.Int64
	err := DoN(context.Background(), workers, 64, func(context.Context, int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", p, workers)
	}
}

func TestFirstErrorPropagation(t *testing.T) {
	want := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := DoN(context.Background(), workers, 32, func(_ context.Context, i int) error {
			if i == 7 {
				return want
			}
			return nil
		})
		if !errors.Is(err, want) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, want)
		}
	}
}

func TestLowestIndexedErrorWins(t *testing.T) {
	// Every task fails; the reported error must be a task error, and for
	// the serial pool exactly task 0's.
	mk := func(i int) error { return fmt.Errorf("task %d", i) }
	if err := DoN(context.Background(), 1, 8, func(_ context.Context, i int) error { return mk(i) }); err == nil || err.Error() != "task 0" {
		t.Fatalf("serial err = %v, want task 0", err)
	}
	err := DoN(context.Background(), 4, 8, func(_ context.Context, i int) error { return mk(i) })
	if err == nil {
		t.Fatal("want an error")
	}
	// Parallel: lowest observed failure; with every task failing that is
	// one of the first `workers` claimed indices.
	var idx int
	if _, scanErr := fmt.Sscanf(err.Error(), "task %d", &idx); scanErr != nil {
		t.Fatalf("unexpected error %q", err)
	}
	if idx >= 4 {
		t.Fatalf("reported failure index %d, want one of the first claimed tasks", idx)
	}
}

func TestErrorCancelsRemainingTasks(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("fail fast")
	err := DoN(context.Background(), 2, 1000, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Fatal("cancellation did not skip any unstarted task")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := DoN(ctx, 4, 16, func(context.Context, int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := DoN(ctx, 1, 0, func(context.Context, int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("n=0 err = %v, want context.Canceled", err)
	}
}

func TestSerialModeStopsAtFirstError(t *testing.T) {
	var ran []int
	err := DoN(context.Background(), 1, 10, func(_ context.Context, i int) error {
		ran = append(ran, i)
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if len(ran) != 4 {
		t.Fatalf("serial mode ran %v, want exactly tasks 0..3", ran)
	}
}
