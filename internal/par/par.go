// Package par is the shared bounded worker pool behind every parallel
// layer of the reproduction: the experiment drivers fan individual
// artifacts and (program, procs) cells through it, the training-sets
// calibration fans its measurement sweep, and the allocator fans
// multi-start solves.
//
// The pool is deliberately small: indexed fan-out with ordered results,
// context cancellation, first-error propagation, and a width taken from
// PARADIGM_WORKERS (falling back to runtime.NumCPU). Determinism is the
// design constraint — callers assemble results by task index, never by
// completion order, so a run with PARADIGM_WORKERS=1 and a run at full
// width produce byte-identical outputs.
package par

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable overriding the pool width.
const EnvWorkers = "PARADIGM_WORKERS"

// Workers reports the default pool width: PARADIGM_WORKERS when set to a
// positive integer, otherwise runtime.NumCPU. It is consulted on every
// call, so tests can retarget the width with t.Setenv.
func Workers() int {
	if s := os.Getenv(EnvWorkers); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.NumCPU()
}

// Do runs fn(ctx, i) for every i in [0, n) on at most Workers()
// goroutines and waits for all of them. See DoN for the error contract.
func Do(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	return DoN(ctx, Workers(), n, fn)
}

// DoN is Do with an explicit worker bound. With workers <= 1 the tasks
// run inline in index order, stopping at the first error — the serial
// reference behaviour. With more workers, tasks are claimed from an
// atomic counter; on failure the pool context is cancelled (so running
// tasks can bail early and unstarted tasks are skipped) and the error of
// the lowest-indexed observed failure is returned. Because a failing
// task fails regardless of schedule, that is the same task the serial
// mode would have stopped at whenever all lower-indexed tasks succeed.
func DoN(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu      sync.Mutex
		failIdx = -1
		failErr error
		claimed atomic.Int64
		wg      sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if failIdx == -1 || i < failIdx {
			failIdx, failErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(claimed.Add(1)) - 1
				if i >= n {
					return
				}
				if err := cctx.Err(); err != nil {
					return
				}
				if err := fn(cctx, i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if failErr != nil {
		return failErr
	}
	return ctx.Err()
}

// Map runs fn over [0, n) through Do and returns the results ordered by
// task index, independent of completion order.
func Map[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapN(ctx, Workers(), n, fn)
}

// MapN is Map with an explicit worker bound.
func MapN[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := DoN(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
