package costmodel

import (
	"fmt"
	"math"

	"paradigm/internal/expr"
	"paradigm/internal/mdg"
	"paradigm/internal/posy"
)

// This file extends the Section 4 cost model to blocked 2D (grid)
// distributions — the generalization the paper says it is "in the process
// of extending our cost functions" toward. A grid node uses a near-square
// √p×√p processor grid (internal/dist.GridShape), so the message-count
// analysis of the 1D/2D cases generalizes with half-integer exponents:
//
//   G2L (grid p_i → linear p_j):
//     each sender's block spans 1/√p_i of the distributed dimension and
//     intersects max(1, p_j/√p_i) destination strips;
//     each receiver's strip intersects √p_i·max(1, √p_i/p_j) grid blocks:
//       t^S = max(1, p_j·p_i^-½)·t_ss + (L/p_i)·t_ps
//       t^R = max(p_i^½, p_i/p_j)·t_sr + (L/p_j)·t_pr
//
//   L2G (linear p_i → grid p_j): the mirror image:
//       t^S = max(p_j^½, p_j/p_i)·t_ss + (L/p_i)·t_ps
//       t^R = max(1, p_i·p_j^-½)·t_sr + (L/p_j)·t_pr
//
//   G2G (grid p_i → grid p_j): row and column overlap factors multiply
//   back into the familiar 1D form:
//       t^S = (max(p_i,p_j)/p_i)·t_ss + (L/p_i)·t_ps
//       t^R = (max(p_i,p_j)/p_j)·t_sr + (L/p_j)·t_pr
//
// The network component keeps the 1D form t^D = L/max(p_i,p_j)·t_n.
// Every component is a max of monomials with rational exponents — a
// generalized posynomial — so log-space convexity, and with it the
// global-optimality guarantee of the allocation step, is preserved.

// gridTransfer evaluates the extended kinds (float path).
func (tp TransferParams) gridTransfer(kind mdg.TransferKind, bytes int, pi, pj float64) TransferCost {
	l := float64(bytes)
	sqPi := math.Sqrt(pi)
	sqPj := math.Sqrt(pj)
	base := TransferCost{
		Net: l / math.Max(pi, pj) * tp.Tn,
	}
	switch kind {
	case mdg.TransferG2L:
		base.Send = math.Max(1, pj/sqPi)*tp.Tss + l/pi*tp.Tps
		base.Recv = math.Max(sqPi, pi/pj)*tp.Tsr + l/pj*tp.Tpr
	case mdg.TransferL2G:
		base.Send = math.Max(sqPj, pj/pi)*tp.Tss + l/pi*tp.Tps
		base.Recv = math.Max(1, pi/sqPj)*tp.Tsr + l/pj*tp.Tpr
	case mdg.TransferG2G:
		base.Send = math.Max(pi, pj)/pi*tp.Tss + l/pi*tp.Tps
		base.Recv = math.Max(pi, pj)/pj*tp.Tsr + l/pj*tp.Tpr
	default:
		panic(fmt.Sprintf("costmodel: not a grid transfer kind: %v", kind))
	}
	return base
}

// gridTransferExprs builds the extended kinds as log-space expressions
// (allocator path). Max terms become SmoothMax of monomials; the network
// term uses the sender-denominator upper bound as in the 1D case.
func gridTransferExprs(eg *expr.Graph, tp TransferParams, kind mdg.TransferKind, bytes int, vi, vj int) (send, net, recv expr.ID) {
	l := float64(bytes)
	mono := func(c float64, expI, expJ float64) expr.ID {
		return eg.Monomial(c, map[int]float64{vi: expI, vj: expJ})
	}
	net = eg.Monomial(l*tp.Tn, map[int]float64{vi: -1})
	switch kind {
	case mdg.TransferG2L:
		send = eg.Sum(
			eg.Scale(tp.Tss, eg.SmoothMax(eg.Const(1), mono(1, -0.5, 1))),
			mono(l*tp.Tps, -1, 0),
		)
		recv = eg.Sum(
			eg.Scale(tp.Tsr, eg.SmoothMax(mono(1, 0.5, 0), mono(1, 1, -1))),
			mono(l*tp.Tpr, 0, -1),
		)
	case mdg.TransferL2G:
		send = eg.Sum(
			eg.Scale(tp.Tss, eg.SmoothMax(mono(1, 0, 0.5), mono(1, -1, 1))),
			mono(l*tp.Tps, -1, 0),
		)
		recv = eg.Sum(
			eg.Scale(tp.Tsr, eg.SmoothMax(eg.Const(1), mono(1, 1, -0.5))),
			mono(l*tp.Tpr, 0, -1),
		)
	case mdg.TransferG2G:
		mx := eg.SmoothMax(eg.Var(vi), eg.Var(vj))
		send = eg.Sum(
			eg.Mul(mx, mono(tp.Tss, -1, 0)),
			mono(l*tp.Tps, -1, 0),
		)
		recv = eg.Sum(
			eg.Mul(mx, mono(tp.Tsr, 0, -1)),
			mono(l*tp.Tpr, 0, -1),
		)
	default:
		panic(fmt.Sprintf("costmodel: not a grid transfer kind: %v", kind))
	}
	return send, net, recv
}

// GridPosyBranches returns, for each extended-kind component, the
// posynomial branches whose pointwise max is the component — the
// generalized-posynomial witness used by the Lemma-style tests.
func GridPosyBranches(tp TransferParams, kind mdg.TransferKind, bytes int) (sendBranches, recvBranches []posy.Posynomial) {
	l := float64(bytes)
	m := func(c float64, ei, ej float64) posy.Posynomial {
		return posy.Mono(c, map[string]float64{"pi": ei, "pj": ej})
	}
	perByteS := m(l*tp.Tps, -1, 0)
	perByteR := m(l*tp.Tpr, 0, -1)
	switch kind {
	case mdg.TransferG2L:
		sendBranches = []posy.Posynomial{
			posy.Const(tp.Tss).Add(perByteS),
			m(tp.Tss, -0.5, 1).Add(perByteS),
		}
		recvBranches = []posy.Posynomial{
			m(tp.Tsr, 0.5, 0).Add(perByteR),
			m(tp.Tsr, 1, -1).Add(perByteR),
		}
	case mdg.TransferL2G:
		sendBranches = []posy.Posynomial{
			m(tp.Tss, 0, 0.5).Add(perByteS),
			m(tp.Tss, -1, 1).Add(perByteS),
		}
		recvBranches = []posy.Posynomial{
			posy.Const(tp.Tsr).Add(perByteR),
			m(tp.Tsr, 1, -0.5).Add(perByteR),
		}
	case mdg.TransferG2G:
		sendBranches = []posy.Posynomial{
			posy.Const(tp.Tss).Add(perByteS),
			m(tp.Tss, -1, 1).Add(perByteS),
		}
		recvBranches = []posy.Posynomial{
			posy.Const(tp.Tsr).Add(perByteR),
			m(tp.Tsr, 1, -1).Add(perByteR),
		}
	default:
		panic(fmt.Sprintf("costmodel: not a grid transfer kind: %v", kind))
	}
	return sendBranches, recvBranches
}
