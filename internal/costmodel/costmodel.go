// Package costmodel implements the mathematical cost models of Section 4.
//
// Processing cost follows Amdahl's law (Equation 1):
//
//	t^C_i = (α_i + (1-α_i)/p_i)·τ_i
//
// Data transfer between node i (p_i processors) and node j (p_j
// processors) has a sending, a network and a receiving component. For 1D
// transfers (ROW2ROW / COL2COL, Equation 2):
//
//	t^S = max(p_i,p_j)/p_i·t_ss + L/p_i·t_ps
//	t^D = L/max(p_i,p_j)·t_n
//	t^R = max(p_i,p_j)/p_j·t_sr + L/p_j·t_pr
//
// and for 2D transfers (ROW2COL / COL2ROW, Equation 3):
//
//	t^S = p_j·t_ss + L/p_i·t_ps
//	t^D = L/(p_i·p_j)·t_n
//	t^R = p_i·t_sr + L/p_j·t_pr
//
// Every component is exposed three ways: plain float64 evaluation (used by
// the scheduler, the bound calculators and the experiment harness), as
// log-space expression-DAG builders (used by the convex allocator, with
// max smoothed), and as posynomial values (used by tests to verify Lemmas
// 1 and 2 mechanically). The 2D components and the processing cost are
// posynomials outright; the 1D components are generalized posynomials — a
// max of two posynomial branches — which preserves log-space convexity,
// the property the convex programming formulation needs.
package costmodel

import (
	"fmt"
	"math"

	"paradigm/internal/expr"
	"paradigm/internal/mdg"
	"paradigm/internal/posy"
)

// LoopParams are the fitted Amdahl parameters of one loop (one Table 1 row).
type LoopParams struct {
	Alpha float64 // serial fraction α ∈ [0,1]
	Tau   float64 // single-processor execution time τ (seconds)
}

// Processing evaluates Equation 1 at p processors.
func (lp LoopParams) Processing(p float64) float64 {
	if p < 1 {
		panic(fmt.Sprintf("costmodel: processor count %v < 1", p))
	}
	return (lp.Alpha + (1-lp.Alpha)/p) * lp.Tau
}

// TransferParams are the fitted messaging parameters (the Table 2 row).
type TransferParams struct {
	Tss float64 // send startup (s/message)
	Tps float64 // send per byte (s/B)
	Tsr float64 // receive startup (s/message)
	Tpr float64 // receive per byte (s/B)
	Tn  float64 // network per byte (s/B); 0 on the CM-5
}

// TransferCost is one evaluated (send, network, receive) triple.
type TransferCost struct {
	Send float64 // t^S: accounted into the sending node's weight
	Net  float64 // t^D: the edge weight
	Recv float64 // t^R: accounted into the receiving node's weight
}

// Transfer evaluates Equations 2 or 3 for one array of the given byte
// length moving from p_i sending to p_j receiving processors.
func (tp TransferParams) Transfer(kind mdg.TransferKind, bytes int, pi, pj float64) TransferCost {
	if pi < 1 || pj < 1 {
		panic(fmt.Sprintf("costmodel: processor counts (%v,%v) must be >= 1", pi, pj))
	}
	if bytes < 0 {
		panic(fmt.Sprintf("costmodel: negative transfer size %d", bytes))
	}
	switch kind {
	case mdg.TransferG2L, mdg.TransferL2G, mdg.TransferG2G:
		return tp.gridTransfer(kind, bytes, pi, pj)
	}
	l := float64(bytes)
	switch kind {
	case mdg.Transfer1D:
		mx := math.Max(pi, pj)
		return TransferCost{
			Send: mx/pi*tp.Tss + l/pi*tp.Tps,
			Net:  l / mx * tp.Tn,
			Recv: mx/pj*tp.Tsr + l/pj*tp.Tpr,
		}
	case mdg.Transfer2D:
		return TransferCost{
			Send: pj*tp.Tss + l/pi*tp.Tps,
			Net:  l / (pi * pj) * tp.Tn,
			Recv: pi*tp.Tsr + l/pj*tp.Tpr,
		}
	default:
		panic(fmt.Sprintf("costmodel: unknown transfer kind %v", kind))
	}
}

// EdgeTransfer sums the transfer costs of every array on an edge.
func (tp TransferParams) EdgeTransfer(e mdg.Edge, pi, pj float64) TransferCost {
	var total TransferCost
	for _, tr := range e.Transfers {
		c := tp.Transfer(tr.Kind, tr.Bytes, pi, pj)
		total.Send += c.Send
		total.Net += c.Net
		total.Recv += c.Recv
	}
	return total
}

// Model binds fitted transfer parameters to MDG weight evaluation. Node
// Amdahl parameters travel on the MDG nodes themselves.
type Model struct {
	Transfer TransferParams
}

// NodeWeight computes T_i of Section 2 — receive costs from all
// predecessors, the processing cost, and send costs to all successors —
// under the allocation p (indexed by NodeID).
func (m Model) NodeWeight(g *mdg.Graph, i mdg.NodeID, p []float64) float64 {
	w := LoopParams{Alpha: g.Nodes[i].Alpha, Tau: g.Nodes[i].Tau}.Processing(p[i])
	for _, pr := range g.Preds(i) {
		e, _ := g.EdgeBetween(pr, i)
		w += m.Transfer.EdgeTransfer(e, p[pr], p[i]).Recv
	}
	for _, s := range g.Succs(i) {
		e, _ := g.EdgeBetween(i, s)
		w += m.Transfer.EdgeTransfer(e, p[i], p[s]).Send
	}
	return w
}

// EdgeDelay computes the edge weight t^D_ij under the allocation p.
func (m Model) EdgeDelay(g *mdg.Graph, e mdg.Edge, p []float64) float64 {
	return m.Transfer.EdgeTransfer(e, p[e.From], p[e.To]).Net
}

// AverageFinishTime computes A_p of Section 2: (1/procs)·Σ T_i·p_i, the
// processor-time-area lower bound.
func (m Model) AverageFinishTime(g *mdg.Graph, p []float64, procs int) float64 {
	s := 0.0
	for i := range g.Nodes {
		s += m.NodeWeight(g, mdg.NodeID(i), p) * p[i]
	}
	return s / float64(procs)
}

// CriticalPathTime computes C_p of Section 2 under the allocation p.
func (m Model) CriticalPathTime(g *mdg.Graph, p []float64) (float64, error) {
	_, cp, err := g.CriticalPath(
		func(i mdg.NodeID) float64 { return m.NodeWeight(g, i, p) },
		func(e mdg.Edge) float64 { return m.EdgeDelay(g, e, p) },
	)
	return cp, err
}

// Phi evaluates the exact (hard-max) objective Φ = max(A_p, C_p).
func (m Model) Phi(g *mdg.Graph, p []float64, procs int) (phi, ap, cp float64, err error) {
	ap = m.AverageFinishTime(g, p, procs)
	cp, err = m.CriticalPathTime(g, p)
	if err != nil {
		return 0, 0, 0, err
	}
	return math.Max(ap, cp), ap, cp, nil
}

// --- Expression-DAG builders (allocator path) ------------------------------

// ProcessingExpr builds t^C as an expression over log-variable v.
func ProcessingExpr(eg *expr.Graph, lp LoopParams, v int) expr.ID {
	return eg.Sum(
		eg.Const(lp.Alpha*lp.Tau),
		eg.Monomial((1-lp.Alpha)*lp.Tau, map[int]float64{v: -1}),
	)
}

// ProcessingTimesPExpr builds t^C·p (the A_p contribution of the
// processing cost): τα·p + τ(1-α).
func ProcessingTimesPExpr(eg *expr.Graph, lp LoopParams, v int) expr.ID {
	return eg.Sum(
		eg.Monomial(lp.Alpha*lp.Tau, map[int]float64{v: 1}),
		eg.Const((1-lp.Alpha)*lp.Tau),
	)
}

// TransferExprs builds the (send, net, recv) components of one transfer as
// expressions over the log-variables vi (sender) and vj (receiver).
// max(p_i, p_j) becomes a SmoothMax of the two variables, annealed to the
// exact max by the solver.
func TransferExprs(eg *expr.Graph, tp TransferParams, kind mdg.TransferKind, bytes int, vi, vj int) (send, net, recv expr.ID) {
	switch kind {
	case mdg.TransferG2L, mdg.TransferL2G, mdg.TransferG2G:
		return gridTransferExprs(eg, tp, kind, bytes, vi, vj)
	}
	l := float64(bytes)
	switch kind {
	case mdg.Transfer1D:
		mx := eg.SmoothMax(eg.Var(vi), eg.Var(vj))
		send = eg.Sum(
			eg.Mul(mx, eg.Monomial(tp.Tss, map[int]float64{vi: -1})),
			eg.Monomial(l*tp.Tps, map[int]float64{vi: -1}),
		)
		// l·t_n/max(pi,pj): max in the denominator is handled with the
		// min-form equivalent 1/max(a,b) = min(1/a, 1/b); since t_n >= 0
		// and the term must stay convex, we use the posynomial upper
		// bound l·t_n·min(...) <= l·t_n/pi. On the CM-5 t_n = 0 so the
		// term vanishes; for general machines we conservatively charge
		// the sender-side denominator, which upper-bounds the true delay
		// and keeps the formulation convex.
		net = eg.Monomial(l*tp.Tn, map[int]float64{vi: -1})
		recv = eg.Sum(
			eg.Mul(mx, eg.Monomial(tp.Tsr, map[int]float64{vj: -1})),
			eg.Monomial(l*tp.Tpr, map[int]float64{vj: -1}),
		)
	case mdg.Transfer2D:
		send = eg.Sum(
			eg.Monomial(tp.Tss, map[int]float64{vj: 1}),
			eg.Monomial(l*tp.Tps, map[int]float64{vi: -1}),
		)
		net = eg.Monomial(l*tp.Tn, map[int]float64{vi: -1, vj: -1})
		recv = eg.Sum(
			eg.Monomial(tp.Tsr, map[int]float64{vi: 1}),
			eg.Monomial(l*tp.Tpr, map[int]float64{vj: -1}),
		)
	default:
		panic(fmt.Sprintf("costmodel: unknown transfer kind %v", kind))
	}
	return send, net, recv
}

// EdgeTransferExprs sums TransferExprs over every array on the edge,
// returning zero constants for transfer-free edges.
func EdgeTransferExprs(eg *expr.Graph, tp TransferParams, e mdg.Edge, vi, vj int) (send, net, recv expr.ID) {
	if len(e.Transfers) == 0 {
		z := eg.Const(0)
		return z, z, z
	}
	var ss, ns, rs []expr.ID
	for _, tr := range e.Transfers {
		s, n, r := TransferExprs(eg, tp, tr.Kind, tr.Bytes, vi, vj)
		ss, ns, rs = append(ss, s), append(ns, n), append(rs, r)
	}
	return eg.Sum(ss...), eg.Sum(ns...), eg.Sum(rs...)
}

// --- Posynomial forms (Lemma 1 and Lemma 2 verification) -------------------

// ProcessingPosy returns t^C as a posynomial in variable "p" (Lemma 1).
func ProcessingPosy(lp LoopParams) posy.Posynomial {
	return posy.Const(lp.Alpha * lp.Tau).
		Add(posy.Mono((1-lp.Alpha)*lp.Tau, map[string]float64{"p": -1}))
}

// ProcessingTimesPPosy returns t^C·p as a posynomial in "p" (the second
// condition of Section 2).
func ProcessingTimesPPosy(lp LoopParams) posy.Posynomial {
	return ProcessingPosy(lp).MulMono(1, map[string]float64{"p": 1})
}

// Transfer2DPosy returns the 2D (send, net, recv) components as
// posynomials in "pi" and "pj" (Lemma 2, Equation 3).
func Transfer2DPosy(tp TransferParams, bytes int) (send, net, recv posy.Posynomial) {
	l := float64(bytes)
	send = posy.Mono(tp.Tss, map[string]float64{"pj": 1}).
		Add(posy.Mono(l*tp.Tps, map[string]float64{"pi": -1}))
	net = posy.Mono(l*tp.Tn, map[string]float64{"pi": -1, "pj": -1})
	recv = posy.Mono(tp.Tsr, map[string]float64{"pi": 1}).
		Add(posy.Mono(l*tp.Tpr, map[string]float64{"pj": -1}))
	return
}

// Transfer1DPosyBranches returns, for each 1D component, the pair of
// posynomial branches whose pointwise max is the component: branch A
// assumes max(p_i,p_j) = p_i, branch B assumes max(p_i,p_j) = p_j. A max
// of posynomials is a generalized posynomial — still convex in log space —
// which is the precise sense in which Lemma 2 holds for the 1D case.
func Transfer1DPosyBranches(tp TransferParams, bytes int) (sendA, sendB, netA, netB, recvA, recvB posy.Posynomial) {
	l := float64(bytes)
	// Send: max(pi,pj)/pi·tss + l/pi·tps.
	sendA = posy.Const(tp.Tss).Add(posy.Mono(l*tp.Tps, map[string]float64{"pi": -1}))
	sendB = posy.Mono(tp.Tss, map[string]float64{"pi": -1, "pj": 1}).
		Add(posy.Mono(l*tp.Tps, map[string]float64{"pi": -1}))
	// Net: l·tn/max(pi,pj); branches use the respective denominators.
	netA = posy.Mono(l*tp.Tn, map[string]float64{"pi": -1})
	netB = posy.Mono(l*tp.Tn, map[string]float64{"pj": -1})
	// Recv: max(pi,pj)/pj·tsr + l/pj·tpr.
	recvA = posy.Mono(tp.Tsr, map[string]float64{"pi": 1, "pj": -1}).
		Add(posy.Mono(l*tp.Tpr, map[string]float64{"pj": -1}))
	recvB = posy.Const(tp.Tsr).Add(posy.Mono(l*tp.Tpr, map[string]float64{"pj": -1}))
	return
}
