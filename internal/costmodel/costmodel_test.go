package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"paradigm/internal/expr"
	"paradigm/internal/mdg"
	"paradigm/internal/posy"
)

func approx(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

var paperTransfer = TransferParams{
	Tss: 777.56e-6,
	Tps: 486.98e-9,
	Tsr: 465.58e-6,
	Tpr: 426.25e-9,
	Tn:  0,
}

func TestProcessingAmdahlEndpoints(t *testing.T) {
	lp := LoopParams{Alpha: 0.121, Tau: 0.29847}
	if got := lp.Processing(1); !approx(got, lp.Tau, 1e-12) {
		t.Fatalf("t^C(1) = %v, want τ = %v", got, lp.Tau)
	}
	// As p -> ∞ the cost approaches α·τ.
	if got := lp.Processing(1e9); !approx(got, lp.Alpha*lp.Tau, 1e-6) {
		t.Fatalf("t^C(inf) = %v, want ατ = %v", got, lp.Alpha*lp.Tau)
	}
	// Monotone decreasing in p.
	prev := math.Inf(1)
	for p := 1.0; p <= 64; p *= 2 {
		v := lp.Processing(p)
		if v >= prev {
			t.Fatalf("t^C not decreasing at p=%v: %v >= %v", p, v, prev)
		}
		prev = v
	}
}

func TestProcessingPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LoopParams{Tau: 1}.Processing(0.5)
}

func TestTransfer1DSymmetricGroups(t *testing.T) {
	// Equal group sizes: max(pi,pj)/pi = 1; exactly one message per
	// processor pair in the model's terms.
	c := paperTransfer.Transfer(mdg.Transfer1D, 32768, 8, 8)
	wantSend := paperTransfer.Tss + 32768.0/8*paperTransfer.Tps
	wantRecv := paperTransfer.Tsr + 32768.0/8*paperTransfer.Tpr
	if !approx(c.Send, wantSend, 1e-12) || !approx(c.Recv, wantRecv, 1e-12) {
		t.Fatalf("1D cost = %+v, want send %v recv %v", c, wantSend, wantRecv)
	}
	if c.Net != 0 {
		t.Fatalf("CM-5 t_n = 0 must give zero net cost, got %v", c.Net)
	}
}

func TestTransfer1DAsymmetricGroups(t *testing.T) {
	// pi=2 sending to pj=8: each sender serves 4 receivers' worth of
	// startups: max/pi = 4.
	c := paperTransfer.Transfer(mdg.Transfer1D, 1024, 2, 8)
	if !approx(c.Send, 4*paperTransfer.Tss+512*paperTransfer.Tps, 1e-12) {
		t.Fatalf("send = %v", c.Send)
	}
	if !approx(c.Recv, paperTransfer.Tsr+128*paperTransfer.Tpr, 1e-12) {
		t.Fatalf("recv = %v", c.Recv)
	}
}

func TestTransfer2DAllToAll(t *testing.T) {
	// 2D: every sender talks to every receiver: pj startups at senders.
	c := paperTransfer.Transfer(mdg.Transfer2D, 32768, 4, 8)
	if !approx(c.Send, 8*paperTransfer.Tss+32768.0/4*paperTransfer.Tps, 1e-12) {
		t.Fatalf("2D send = %v", c.Send)
	}
	if !approx(c.Recv, 4*paperTransfer.Tsr+32768.0/8*paperTransfer.Tpr, 1e-12) {
		t.Fatalf("2D recv = %v", c.Recv)
	}
}

func TestTransfer2DCostsExceed1DForLargeGroups(t *testing.T) {
	// The 2D redistribution pays O(p) startups; 1D pays O(1) for equal
	// groups — the reason the paper distinguishes the regimes.
	for _, p := range []float64{4, 8, 16, 32} {
		c1 := paperTransfer.Transfer(mdg.Transfer1D, 32768, p, p)
		c2 := paperTransfer.Transfer(mdg.Transfer2D, 32768, p, p)
		if c2.Send <= c1.Send || c2.Recv <= c1.Recv {
			t.Fatalf("at p=%v: 2D (%v,%v) should exceed 1D (%v,%v)",
				p, c2.Send, c2.Recv, c1.Send, c1.Recv)
		}
	}
}

func TestTransferPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"pi<1":      func() { paperTransfer.Transfer(mdg.Transfer1D, 1, 0.5, 1) },
		"negL":      func() { paperTransfer.Transfer(mdg.Transfer1D, -1, 1, 1) },
		"badKind":   func() { paperTransfer.Transfer(mdg.TransferKind(9), 1, 1, 1) },
		"exprBadKd": func() { var eg expr.Graph; TransferExprs(&eg, paperTransfer, mdg.TransferKind(9), 1, 0, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// chainGraph builds a 3-node chain with one 1D transfer per edge.
func chainGraph() *mdg.Graph {
	var g mdg.Graph
	a := g.AddNode(mdg.Node{Name: "a", Alpha: 0.067, Tau: 3.73e-3})
	b := g.AddNode(mdg.Node{Name: "b", Alpha: 0.121, Tau: 0.29847})
	c := g.AddNode(mdg.Node{Name: "c", Alpha: 0.067, Tau: 3.73e-3})
	g.AddEdge(a, b, mdg.Transfer{Bytes: 32768, Kind: mdg.Transfer1D})
	g.AddEdge(b, c, mdg.Transfer{Bytes: 32768, Kind: mdg.Transfer2D})
	return &g
}

func TestNodeWeightComposition(t *testing.T) {
	g := chainGraph()
	m := Model{Transfer: paperTransfer}
	p := []float64{4, 8, 2}
	// Node b: recv from a at (4->8), processing at 8, send to c at (8->2).
	eAB, _ := g.EdgeBetween(0, 1)
	eBC, _ := g.EdgeBetween(1, 2)
	want := paperTransfer.EdgeTransfer(eAB, 4, 8).Recv +
		LoopParams{Alpha: 0.121, Tau: 0.29847}.Processing(8) +
		paperTransfer.EdgeTransfer(eBC, 8, 2).Send
	if got := m.NodeWeight(g, 1, p); !approx(got, want, 1e-12) {
		t.Fatalf("NodeWeight = %v, want %v", got, want)
	}
}

func TestPhiIsMaxOfApCp(t *testing.T) {
	g := chainGraph()
	m := Model{Transfer: paperTransfer}
	p := []float64{2, 4, 2}
	phi, ap, cp, err := m.Phi(g, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if phi != math.Max(ap, cp) {
		t.Fatalf("phi = %v, max(ap,cp) = %v", phi, math.Max(ap, cp))
	}
	// A chain has no functional parallelism: critical path includes every
	// node weight, so C_p >= any single node weight.
	if cp < m.NodeWeight(g, 1, p) {
		t.Fatalf("cp = %v < node weight", cp)
	}
}

// TestExprMatchesFloat: the expression-DAG forms evaluate to the same
// values as the float forms at hard max (temperature 0).
func TestExprMatchesFloat(t *testing.T) {
	f := func(piRaw, pjRaw uint8, kindRaw bool, lRaw uint16) bool {
		pi := 1 + float64(piRaw)/4
		pj := 1 + float64(pjRaw)/4
		bytes := int(lRaw) + 1
		kind := mdg.Transfer1D
		if kindRaw {
			kind = mdg.Transfer2D
		}
		var eg expr.Graph
		s, n, r := TransferExprs(&eg, paperTransfer, kind, bytes, 0, 1)
		ev := expr.NewEvaluator(&eg)
		x := []float64{math.Log(pi), math.Log(pj)}
		c := paperTransfer.Transfer(kind, bytes, pi, pj)
		if !approx(ev.Eval(s, x, 0), c.Send, 1e-9) {
			return false
		}
		if !approx(ev.Eval(r, x, 0), c.Recv, 1e-9) {
			return false
		}
		// Net: 1D expr charges the sender denominator (upper bound); with
		// Tn = 0 both are zero. 2D matches exactly.
		if kind == mdg.Transfer2D && !approx(ev.Eval(n, x, 0), c.Net, 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessingExprMatchesFloat(t *testing.T) {
	f := func(aRaw, pRaw uint8, tRaw uint16) bool {
		lp := LoopParams{Alpha: float64(aRaw) / 255, Tau: float64(tRaw) / 100}
		p := 1 + float64(pRaw)/4
		var eg expr.Graph
		id := ProcessingExpr(&eg, lp, 0)
		idp := ProcessingTimesPExpr(&eg, lp, 0)
		ev := expr.NewEvaluator(&eg)
		x := []float64{math.Log(p)}
		if !approx(ev.Eval(id, x, 0), lp.Processing(p), 1e-9) {
			return false
		}
		return approx(ev.Eval(idp, x, 0), lp.Processing(p)*p, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma1: t^C and t^C·p are posynomials (mechanical check of the
// paper's Lemma 1).
func TestLemma1(t *testing.T) {
	f := func(aRaw uint8, tRaw uint16) bool {
		lp := LoopParams{Alpha: float64(aRaw) / 255, Tau: 0.001 + float64(tRaw)/100}
		return ProcessingPosy(lp).IsPosynomial() && ProcessingTimesPPosy(lp).IsPosynomial()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma2For2D: every 2D component, and the products t^R·p_j and
// t^S·p_i, are posynomials (Lemma 2 + the Section 2 conditions).
func TestLemma2For2D(t *testing.T) {
	f := func(lRaw uint16) bool {
		s, n, r := Transfer2DPosy(paperTransfer, int(lRaw)+1)
		if !(s.IsPosynomial() && n.IsPosynomial() && r.IsPosynomial()) {
			return false
		}
		sp := s.MulMono(1, map[string]float64{"pi": 1})
		rp := r.MulMono(1, map[string]float64{"pj": 1})
		return sp.IsPosynomial() && rp.IsPosynomial()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma2For1D: each 1D component is the max of two posynomial
// branches (a generalized posynomial), the branches agree with the float
// evaluation, and the max selects branch A when p_i >= p_j.
func TestLemma2For1D(t *testing.T) {
	f := func(piRaw, pjRaw uint8, lRaw uint16) bool {
		pi := 1 + float64(piRaw)/4
		pj := 1 + float64(pjRaw)/4
		bytes := int(lRaw) + 1
		sa, sb, na, nb, ra, rb := Transfer1DPosyBranches(paperTransfer, bytes)
		for _, p := range []interface{ IsPosynomial() bool }{sa, sb, na, nb, ra, rb} {
			if !p.IsPosynomial() {
				return false
			}
		}
		vals := map[string]float64{"pi": pi, "pj": pj}
		c := paperTransfer.Transfer(mdg.Transfer1D, bytes, pi, pj)
		send := math.Max(sa.Eval(vals), sb.Eval(vals))
		recv := math.Max(ra.Eval(vals), rb.Eval(vals))
		return approx(send, c.Send, 1e-9) && approx(recv, c.Recv, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeTransferSumsArrays: an edge carrying two arrays costs the sum of
// the individual transfers.
func TestEdgeTransferSumsArrays(t *testing.T) {
	e := mdg.Edge{Transfers: []mdg.Transfer{
		{Bytes: 1000, Kind: mdg.Transfer1D},
		{Bytes: 2000, Kind: mdg.Transfer2D},
	}}
	got := paperTransfer.EdgeTransfer(e, 4, 8)
	c1 := paperTransfer.Transfer(mdg.Transfer1D, 1000, 4, 8)
	c2 := paperTransfer.Transfer(mdg.Transfer2D, 2000, 4, 8)
	if !approx(got.Send, c1.Send+c2.Send, 1e-12) ||
		!approx(got.Recv, c1.Recv+c2.Recv, 1e-12) ||
		!approx(got.Net, c1.Net+c2.Net, 1e-12) {
		t.Fatalf("EdgeTransfer = %+v, want sum of %+v and %+v", got, c1, c2)
	}
}

func TestEdgeTransferExprsEmptyEdge(t *testing.T) {
	var eg expr.Graph
	s, n, r := EdgeTransferExprs(&eg, paperTransfer, mdg.Edge{}, 0, 1)
	ev := expr.NewEvaluator(&eg)
	x := []float64{0, 0}
	if ev.Eval(s, x, 0) != 0 || ev.Eval(n, x, 0) != 0 || ev.Eval(r, x, 0) != 0 {
		t.Fatal("transfer-free edge must cost zero")
	}
}

func BenchmarkNodeWeightChain(b *testing.B) {
	g := chainGraph()
	m := Model{Transfer: paperTransfer}
	p := []float64{4, 8, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NodeWeight(g, 1, p)
	}
}

// TestGridTransferExprMatchesFloat: the extended-kind expression forms
// agree with the float forms at hard max.
func TestGridTransferExprMatchesFloat(t *testing.T) {
	kinds := []mdg.TransferKind{mdg.TransferG2L, mdg.TransferL2G, mdg.TransferG2G}
	f := func(piRaw, pjRaw uint8, kRaw uint8, lRaw uint16) bool {
		pi := 1 + float64(piRaw)/4
		pj := 1 + float64(pjRaw)/4
		bytes := int(lRaw) + 1
		kind := kinds[int(kRaw)%3]
		var eg expr.Graph
		s, _, r := TransferExprs(&eg, paperTransfer, kind, bytes, 0, 1)
		ev := expr.NewEvaluator(&eg)
		x := []float64{math.Log(pi), math.Log(pj)}
		c := paperTransfer.Transfer(kind, bytes, pi, pj)
		return approx(ev.Eval(s, x, 0), c.Send, 1e-9) && approx(ev.Eval(r, x, 0), c.Recv, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestGridPosyBranchesAreGeneralizedPosynomials: every branch is a
// posynomial and their max reproduces the float costs (the Lemma-2
// extension for grid kinds).
func TestGridPosyBranchesAreGeneralizedPosynomials(t *testing.T) {
	kinds := []mdg.TransferKind{mdg.TransferG2L, mdg.TransferL2G, mdg.TransferG2G}
	f := func(piRaw, pjRaw uint8, kRaw uint8, lRaw uint16) bool {
		pi := 1 + float64(piRaw)/4
		pj := 1 + float64(pjRaw)/4
		bytes := int(lRaw) + 1
		kind := kinds[int(kRaw)%3]
		sb, rb := GridPosyBranches(paperTransfer, kind, bytes)
		vals := map[string]float64{"pi": pi, "pj": pj}
		maxOf := func(ps []posy.Posynomial) float64 {
			best := math.Inf(-1)
			for _, p := range ps {
				if !p.IsPosynomial() {
					return math.NaN()
				}
				if v := p.Eval(vals); v > best {
					best = v
				}
			}
			return best
		}
		c := paperTransfer.Transfer(kind, bytes, pi, pj)
		return approx(maxOf(sb), c.Send, 1e-9) && approx(maxOf(rb), c.Recv, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestGridG2GMatches1DForm: grid-to-grid redistribution costs exactly the
// 1D formula (row and column overlap factors multiply back together).
func TestGridG2GMatches1DForm(t *testing.T) {
	for _, pq := range [][2]float64{{4, 16}, {16, 4}, {8, 8}, {1, 64}} {
		g := paperTransfer.Transfer(mdg.TransferG2G, 32768, pq[0], pq[1])
		d := paperTransfer.Transfer(mdg.Transfer1D, 32768, pq[0], pq[1])
		if !approx(g.Send, d.Send, 1e-12) || !approx(g.Recv, d.Recv, 1e-12) {
			t.Fatalf("G2G at %v != 1D: %+v vs %+v", pq, g, d)
		}
	}
}
