package costmodel

import (
	"math"
	"testing"

	"paradigm/internal/mdg"
)

// Table-driven regime tests pinning Equations 2 and 3 against values
// computed by hand, so a silent change to either transfer formula (a
// swapped denominator, a dropped startup factor) fails with the exact
// expected triple rather than a derived-quantity drift. The round-number
// parameter set makes every expectation exact in float64; the last rows
// use the paper's Table 2 CM-5 fit.

// handTransfer is a deliberately clean parameter set: every expected
// value below is an exact decimal.
var handTransfer = TransferParams{
	Tss: 0.01,   // send startup
	Tps: 0.0001, // send per byte
	Tsr: 0.02,   // receive startup
	Tpr: 0.0002, // receive per byte
	Tn:  0.001,  // network per byte
}

// cm5Transfer is the Table 2 CM-5 fit (t_n = 0: no network term).
var cm5Transfer = TransferParams{
	Tss: 777.56e-6, Tps: 486.98e-9, Tsr: 465.58e-6, Tpr: 426.25e-9, Tn: 0,
}

func TestTransferRegimeTables(t *testing.T) {
	cases := []struct {
		name   string
		tp     TransferParams
		kind   mdg.TransferKind
		bytes  int
		pi, pj float64
		want   TransferCost
	}{
		// --- 1D regime (ROW2ROW / COL2COL, Equation 2) -------------------
		// t^S = max/pi·tss + L/pi·tps; t^D = L/max·tn; t^R = max/pj·tsr + L/pj·tpr.
		{
			name: "1D grow 4->8", tp: handTransfer, kind: mdg.Transfer1D,
			bytes: 1000, pi: 4, pj: 8,
			// S = 8/4·0.01 + 1000/4·0.0001 = 0.02 + 0.025
			// D = 1000/8·0.001
			// R = 8/8·0.02 + 1000/8·0.0002 = 0.02 + 0.025
			want: TransferCost{Send: 0.045, Net: 0.125, Recv: 0.045},
		},
		{
			name: "1D shrink 8->2", tp: handTransfer, kind: mdg.Transfer1D,
			bytes: 512, pi: 8, pj: 2,
			// S = 8/8·0.01 + 512/8·0.0001 = 0.01 + 0.0064
			// D = 512/8·0.001
			// R = 8/2·0.02 + 512/2·0.0002 = 0.08 + 0.0512
			want: TransferCost{Send: 0.0164, Net: 0.064, Recv: 0.1312},
		},
		{
			name: "1D equal 4->4", tp: handTransfer, kind: mdg.Transfer1D,
			bytes: 2000, pi: 4, pj: 4,
			// S = 0.01 + 500·0.0001; D = 500·0.001; R = 0.02 + 500·0.0002
			want: TransferCost{Send: 0.06, Net: 0.5, Recv: 0.12},
		},
		// --- 2D regime (ROW2COL / COL2ROW, Equation 3) -------------------
		// t^S = pj·tss + L/pi·tps; t^D = L/(pi·pj)·tn; t^R = pi·tsr + L/pj·tpr.
		{
			name: "2D grow 4->8", tp: handTransfer, kind: mdg.Transfer2D,
			bytes: 1000, pi: 4, pj: 8,
			// S = 8·0.01 + 250·0.0001 = 0.08 + 0.025
			// D = 1000/32·0.001
			// R = 4·0.02 + 125·0.0002 = 0.08 + 0.025
			want: TransferCost{Send: 0.105, Net: 0.03125, Recv: 0.105},
		},
		{
			name: "2D shrink 8->2", tp: handTransfer, kind: mdg.Transfer2D,
			bytes: 512, pi: 8, pj: 2,
			// S = 2·0.01 + 64·0.0001 = 0.02 + 0.0064
			// D = 512/16·0.001
			// R = 8·0.02 + 256·0.0002 = 0.16 + 0.0512
			want: TransferCost{Send: 0.0264, Net: 0.032, Recv: 0.2112},
		},
		// --- Paper fit (Table 2, CM-5) -----------------------------------
		{
			name: "1D CM-5 4->4", tp: cm5Transfer, kind: mdg.Transfer1D,
			bytes: 4000, pi: 4, pj: 4,
			// S = 777.56e-6 + 1000·486.98e-9; R = 465.58e-6 + 1000·426.25e-9
			want: TransferCost{Send: 1264.54e-6, Net: 0, Recv: 891.83e-6},
		},
		{
			name: "2D CM-5 4->4", tp: cm5Transfer, kind: mdg.Transfer2D,
			bytes: 4000, pi: 4, pj: 4,
			// S = 4·777.56e-6 + 1000·486.98e-9; R = 4·465.58e-6 + 1000·426.25e-9
			want: TransferCost{Send: 3597.22e-6, Net: 0, Recv: 2288.57e-6},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.tp.Transfer(tc.kind, tc.bytes, tc.pi, tc.pj)
			checkTriple(t, got, tc.want)
		})
	}
}

// TestTransferRegimeCrossover pins the structural difference between the
// regimes: at equal group sizes p the 2D startup terms carry an extra
// factor of p (every one of the p senders messages all p receivers),
// which is exactly the redistribution penalty the paper's Figure 4
// motivates.
func TestTransferRegimeCrossover(t *testing.T) {
	const bytes = 1 << 16
	for _, p := range []float64{2, 4, 8, 16} {
		d1 := handTransfer.Transfer(mdg.Transfer1D, bytes, p, p)
		d2 := handTransfer.Transfer(mdg.Transfer2D, bytes, p, p)
		wantSendDelta := (p - 1) * handTransfer.Tss
		if !near(d2.Send-d1.Send, wantSendDelta) {
			t.Errorf("p = %v: 2D-1D send delta = %g, want (p-1)·tss = %g", p, d2.Send-d1.Send, wantSendDelta)
		}
		wantRecvDelta := (p - 1) * handTransfer.Tsr
		if !near(d2.Recv-d1.Recv, wantRecvDelta) {
			t.Errorf("p = %v: 2D-1D recv delta = %g, want (p-1)·tsr = %g", p, d2.Recv-d1.Recv, wantRecvDelta)
		}
		// Network: 1D moves L through max(p,p)=p channels, 2D through p².
		if !near(d1.Net/d2.Net, p) {
			t.Errorf("p = %v: net ratio 1D/2D = %g, want p", p, d1.Net/d2.Net)
		}
	}
}

// TestProcessingAmdahlTable pins Equation 1 rows computed by hand.
func TestProcessingAmdahlTable(t *testing.T) {
	cases := []struct {
		alpha, tau, p, want float64
	}{
		{0, 1, 4, 0.25},        // perfectly parallel: τ/p
		{1, 3, 64, 3},          // perfectly serial: τ regardless of p
		{0.5, 2, 4, 1.25},      // (0.5 + 0.5/4)·2
		{0.25, 8, 8, 2.75},     // (0.25 + 0.75/8)·8 = 2 + 0.75
		{0.1, 10, 1, 10},       // single processor recovers τ
		{0.02, 100, 16, 8.125}, // (0.02 + 0.98/16)·100 = 2 + 6.125
	}
	for _, tc := range cases {
		got := LoopParams{Alpha: tc.alpha, Tau: tc.tau}.Processing(tc.p)
		if !near(got, tc.want) {
			t.Errorf("Processing(α=%v, τ=%v, p=%v) = %g, want %g", tc.alpha, tc.tau, tc.p, got, tc.want)
		}
	}
}

func checkTriple(t *testing.T, got, want TransferCost) {
	t.Helper()
	if !near(got.Send, want.Send) || !near(got.Net, want.Net) || !near(got.Recv, want.Recv) {
		t.Errorf("Transfer = {S: %g, D: %g, R: %g}, want {S: %g, D: %g, R: %g}",
			got.Send, got.Net, got.Recv, want.Send, want.Net, want.Recv)
	}
}

func near(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}
