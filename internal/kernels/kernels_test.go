package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"paradigm/internal/machine"
	"paradigm/internal/matrix"
)

var cm5 = machine.CM5(64)

func TestValidate(t *testing.T) {
	good := []Kernel{
		{Op: OpNone},
		{Op: OpInit, M: 4, N: 4, Init: func(i, j int) float64 { return 1 }},
		{Op: OpAdd, M: 4, N: 4},
		{Op: OpSub, M: 2, N: 8},
		{Op: OpMul, M: 4, N: 4, K: 4},
	}
	for _, k := range good {
		if err := k.Validate(); err != nil {
			t.Fatalf("%s: %v", k.Op, err)
		}
	}
	bad := []Kernel{
		{Op: OpInit, M: 4, N: 4}, // missing generator
		{Op: OpInit, M: 0, N: 4, Init: func(i, j int) float64 { return 0 }},
		{Op: OpAdd, M: -1, N: 4},
		{Op: OpMul, M: 4, N: 4, K: 0},
		{Op: Op(42)},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Fatalf("%v should fail validation", k)
		}
	}
}

func TestExecuteInit(t *testing.T) {
	k := Kernel{Op: OpInit, M: 3, N: 2, Init: func(i, j int) float64 { return float64(10*i + j) }}
	dst := matrix.New(3, 2)
	if err := k.Execute(dst); err != nil {
		t.Fatal(err)
	}
	if dst.At(2, 1) != 21 {
		t.Fatalf("init = %v", dst.At(2, 1))
	}
	if err := k.Execute(matrix.New(2, 2)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestExecuteAddSubMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := matrix.New(4, 4)
	b := matrix.New(4, 4)
	a.Fill(func(i, j int) float64 { return rng.NormFloat64() })
	b.Fill(func(i, j int) float64 { return rng.NormFloat64() })
	dst := matrix.New(4, 4)
	if err := (Kernel{Op: OpAdd, M: 4, N: 4}).Execute(dst, a, b); err != nil {
		t.Fatal(err)
	}
	if dst.At(1, 1) != a.At(1, 1)+b.At(1, 1) {
		t.Fatal("add wrong")
	}
	if err := (Kernel{Op: OpSub, M: 4, N: 4}).Execute(dst, a, b); err != nil {
		t.Fatal(err)
	}
	if dst.At(2, 3) != a.At(2, 3)-b.At(2, 3) {
		t.Fatal("sub wrong")
	}
	if err := (Kernel{Op: OpMul, M: 4, N: 4, K: 4}).Execute(dst, a, b); err != nil {
		t.Fatal(err)
	}
	ref := matrix.New(4, 4)
	if err := matrix.Mul(ref, a, b); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(dst, ref, 0) {
		t.Fatal("mul wrong")
	}
	if err := (Kernel{Op: OpAdd, M: 4, N: 4}).Execute(dst, a); err == nil {
		t.Fatal("want arity error")
	}
	if err := (Kernel{Op: OpMul, M: 4, N: 4, K: 4}).Execute(dst, a); err == nil {
		t.Fatal("want arity error")
	}
	if err := (Kernel{Op: OpNone}).Execute(nil); err != nil {
		t.Fatal("OpNone must be a no-op")
	}
}

func TestSerialTimeMagnitudes(t *testing.T) {
	// The CM5 profile should put a 64x64 multiply near the paper's
	// τ ≈ 298 ms and a 64x64 add near τ ≈ 3.7 ms.
	mul := Kernel{Op: OpMul, M: 64, N: 64, K: 64}
	add := Kernel{Op: OpAdd, M: 64, N: 64}
	tm := mul.SerialTime(cm5)
	ta := add.SerialTime(cm5)
	if tm < 0.2 || tm > 0.4 {
		t.Fatalf("serial multiply = %v s, want ~0.3", tm)
	}
	if ta < 2e-3 || ta > 6e-3 {
		t.Fatalf("serial add = %v s, want ~3.7e-3", ta)
	}
}

func TestMaxProcTimeDecreasesThenFlattens(t *testing.T) {
	mul := Kernel{Op: OpMul, M: 64, N: 64, K: 64}
	prev := math.Inf(1)
	for q := 1; q <= 32; q *= 2 {
		v := mul.MaxProcTime(cm5, q)
		if v >= prev {
			t.Fatalf("multiply time not decreasing at q=%d: %v >= %v", q, v, prev)
		}
		prev = v
	}
	// At q=64 a 64×64 multiply may saturate (collectives overtake the
	// one-row-per-processor compute) — the efficiency decay of Figure 1 —
	// but it must not regress badly.
	if v := mul.MaxProcTime(cm5, 64); v > 1.2*prev {
		t.Fatalf("multiply time at q=64 regressed badly: %v vs %v at q=32", v, prev)
	}
	// Scaling must be sublinear (Amdahl-like): 32-way speedup < 32.
	sp := mul.SerialTime(cm5) / mul.MaxProcTime(cm5, 32)
	if sp >= 32 || sp < 4 {
		t.Fatalf("32-way multiply speedup = %v, want sublinear but real", sp)
	}
}

func TestAddScalesBetterThanMul(t *testing.T) {
	// Add has no collectives: its parallel efficiency at 16 procs should
	// exceed the multiply's at the same matrix size... in fitted-α terms
	// the paper found α_add < α_mul. Compare efficiency directly.
	add := Kernel{Op: OpAdd, M: 64, N: 64}
	mul := Kernel{Op: OpMul, M: 64, N: 64, K: 64}
	const q = 16
	effAdd := add.SerialTime(cm5) / (float64(q) * add.MaxProcTime(cm5, q))
	effMul := mul.SerialTime(cm5) / (float64(q) * mul.MaxProcTime(cm5, q))
	if effAdd <= effMul {
		t.Fatalf("eff(add)=%v should exceed eff(mul)=%v", effAdd, effMul)
	}
}

func TestProcTimeImbalance(t *testing.T) {
	// 10 rows over 4 procs: slots own 3,3,3,1 rows; slot 3 is faster.
	k := Kernel{Op: OpAdd, M: 10, N: 10}
	t3 := k.ProcTime(cm5, 4, k.rowsOf(4, 3))
	t0 := k.ProcTime(cm5, 4, k.rowsOf(4, 0))
	if t3 >= t0 {
		t.Fatalf("short block should be faster: %v vs %v", t3, t0)
	}
	if k.rowsOf(4, 0) != 3 || k.rowsOf(4, 3) != 1 {
		t.Fatalf("rowsOf = %d, %d", k.rowsOf(4, 0), k.rowsOf(4, 3))
	}
}

func TestProcTimePanics(t *testing.T) {
	k := Kernel{Op: OpAdd, M: 4, N: 4}
	for name, fn := range map[string]func(){
		"q<1":        func() { k.ProcTime(cm5, 0, 1) },
		"neg extent": func() { k.ProcTime(cm5, 1, -1) },
		"unknown op": func() { Kernel{Op: Op(9), M: 1, N: 1}.ProcTime(cm5, 1, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestShapes(t *testing.T) {
	mul := Kernel{Op: OpMul, M: 2, N: 3, K: 4}
	if r, c := mul.OutputShape(); r != 2 || c != 3 {
		t.Fatalf("output %dx%d", r, c)
	}
	if r, c := mul.InputShape(0); r != 2 || c != 4 {
		t.Fatalf("A %dx%d", r, c)
	}
	if r, c := mul.InputShape(1); r != 4 || c != 3 {
		t.Fatalf("B %dx%d", r, c)
	}
	add := Kernel{Op: OpAdd, M: 5, N: 6}
	if r, c := add.InputShape(1); r != 5 || c != 6 {
		t.Fatalf("add input %dx%d", r, c)
	}
	if n := mul.NumInputs(); n != 2 {
		t.Fatalf("NumInputs = %d", n)
	}
	if n := (Kernel{Op: OpInit}).NumInputs(); n != 0 {
		t.Fatalf("init NumInputs = %d", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad input index")
		}
	}()
	mul.InputShape(2)
}

// TestWorkConservation: summing element-work across all group members
// equals the serial element count (the ceil-blocks partition the rows).
func TestWorkConservation(t *testing.T) {
	f := func(mRaw, qRaw uint8) bool {
		m := 1 + int(mRaw)%100
		q := 1 + int(qRaw)%16
		k := Kernel{Op: OpAdd, M: m, N: 7}
		total := 0
		for s := 0; s < q; s++ {
			total += k.rowsOf(q, s)
		}
		return total == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxProcTimeMonotoneInSize: larger matrices never run faster.
func TestMaxProcTimeMonotoneInSize(t *testing.T) {
	f := func(mRaw, qRaw uint8) bool {
		m := 1 + int(mRaw)%60
		q := 1 + int(qRaw)%16
		small := Kernel{Op: OpMul, M: m, N: 16, K: 16}
		big := Kernel{Op: OpMul, M: m + 8, N: 16, K: 16}
		return big.MaxProcTime(cm5, q) >= small.MaxProcTime(cm5, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExecuteMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := matrix.New(64, 64)
	c := matrix.New(64, 64)
	a.Fill(func(i, j int) float64 { return rng.NormFloat64() })
	c.Fill(func(i, j int) float64 { return rng.NormFloat64() })
	dst := matrix.New(64, 64)
	k := Kernel{Op: OpMul, M: 64, N: 64, K: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.Execute(dst, a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGridMulScalesBetterThan1D(t *testing.T) {
	// The extension's point: at large q the SUMMA-style grid multiply
	// keeps scaling where the 1D all-gather multiply saturates.
	lin := Kernel{Op: OpMul, M: 64, N: 64, K: 64}
	grid := Kernel{Op: OpMul, M: 64, N: 64, K: 64, Grid: true}
	t64Lin := lin.MaxProcTime(cm5, 64)
	t64Grid := grid.MaxProcTime(cm5, 64)
	if t64Grid >= t64Lin {
		t.Fatalf("grid multiply at q=64 (%v) should beat 1D (%v)", t64Grid, t64Lin)
	}
	// At q=1 both layouts are the same serial loop.
	if math.Abs(lin.MaxProcTime(cm5, 1)-grid.MaxProcTime(cm5, 1)) > 1e-12 {
		t.Fatal("serial times must agree across layouts")
	}
}

func TestGridProcTimeShapes(t *testing.T) {
	k := Kernel{Op: OpMul, M: 10, N: 10, K: 10, Grid: true}
	// 10x10 over a 2x2 grid: blocks 5x5.
	v := k.GridProcTime(cm5, 2, 2, 5, 5)
	if v <= 0 {
		t.Fatalf("GridProcTime = %v", v)
	}
	if z := (Kernel{Op: OpNone, Grid: true}).GridProcTime(cm5, 2, 2, 0, 0); z != 0 {
		t.Fatalf("OpNone grid time = %v", z)
	}
	add := Kernel{Op: OpAdd, M: 8, N: 8, Grid: true}
	if add.GridProcTime(cm5, 2, 2, 4, 4) <= cm5.LoopOverhead {
		t.Fatal("grid add must cost more than the prologue")
	}
	for name, fn := range map[string]func(){
		"bad grid":  func() { k.GridProcTime(cm5, 0, 2, 1, 1) },
		"neg block": func() { k.GridProcTime(cm5, 2, 2, -1, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestMaxGridProcTimeCoversWholeMatrix(t *testing.T) {
	// Work conservation on the grid: per-block spans tile the matrix.
	k := Kernel{Op: OpAdd, M: 13, N: 7, Grid: true}
	total := 0
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			total += spanOf(13, 3, i) * spanOf(7, 2, j)
		}
	}
	if total != 13*7 {
		t.Fatalf("grid blocks cover %d of %d", total, 13*7)
	}
	if k.MaxGridProcTime(cm5, 6) <= 0 {
		t.Fatal("empty MaxGridProcTime")
	}
}
