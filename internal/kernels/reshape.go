package kernels

import (
	"fmt"

	"paradigm/internal/machine"
	"paradigm/internal/matrix"
)

// This file adds the two data-reshaping loop types needed to express
// *recursive* Strassen multiplication at the MDG level (each half-size
// product expands into its own Strassen subgraph):
//
//   - OpExtract copies a rectangle out of a larger matrix (quadrant
//     extraction);
//   - OpAssemble4 tiles four equal quadrants into one matrix.
//
// Both are memory-bound copy loops. Their machine cost is a per-element
// copy plus, on multi-processor groups, one collective stage: the
// extraction rectangle generally misaligns with the owning blocks, so the
// group must shuffle rows internally — the same style of intra-node
// communication the multiply's gathers model.

// Extract returns an OpExtract kernel producing the m×n rectangle of the
// (srcRows×srcCols) input anchored at (offR, offC).
func Extract(m, n, srcRows, srcCols, offR, offC int) Kernel {
	return Kernel{Op: OpExtract, M: m, N: n,
		SrcRows: srcRows, SrcCols: srcCols, OffR: offR, OffC: offC}
}

// Assemble4 returns an OpAssemble4 kernel producing an m×n matrix from
// four (m/2)×(n/2) quadrants given in row-major order (q11, q12, q21,
// q22). m and n must be even.
func Assemble4(m, n int) Kernel {
	return Kernel{Op: OpAssemble4, M: m, N: n}
}

// validateReshape extends Kernel.Validate for the reshape ops.
func (k Kernel) validateReshape() error {
	switch k.Op {
	case OpExtract:
		if k.M <= 0 || k.N <= 0 {
			return fmt.Errorf("kernels: invalid extract shape %dx%d", k.M, k.N)
		}
		if k.SrcRows <= 0 || k.SrcCols <= 0 {
			return fmt.Errorf("kernels: invalid extract source %dx%d", k.SrcRows, k.SrcCols)
		}
		if k.OffR < 0 || k.OffC < 0 || k.OffR+k.M > k.SrcRows || k.OffC+k.N > k.SrcCols {
			return fmt.Errorf("kernels: extract %dx%d at (%d,%d) outside %dx%d",
				k.M, k.N, k.OffR, k.OffC, k.SrcRows, k.SrcCols)
		}
	case OpAssemble4:
		if k.M <= 0 || k.N <= 0 || k.M%2 != 0 || k.N%2 != 0 {
			return fmt.Errorf("kernels: assemble4 needs even positive shape, got %dx%d", k.M, k.N)
		}
	}
	return nil
}

// executeReshape extends Kernel.Execute for the reshape ops.
func (k Kernel) executeReshape(dst *matrix.Matrix, inputs []*matrix.Matrix) error {
	switch k.Op {
	case OpExtract:
		if len(inputs) != 1 {
			return fmt.Errorf("kernels: extract needs 1 input, got %d", len(inputs))
		}
		if dst.Rows != k.M || dst.Cols != k.N {
			return fmt.Errorf("kernels: extract dst %dx%d, want %dx%d", dst.Rows, dst.Cols, k.M, k.N)
		}
		src := inputs[0]
		if src.Rows != k.SrcRows || src.Cols != k.SrcCols {
			return fmt.Errorf("kernels: extract src %dx%d, want %dx%d", src.Rows, src.Cols, k.SrcRows, k.SrcCols)
		}
		dst.SetBlock(0, 0, src.Block(k.OffR, k.OffR+k.M, k.OffC, k.OffC+k.N))
		return nil
	case OpAssemble4:
		if len(inputs) != 4 {
			return fmt.Errorf("kernels: assemble4 needs 4 inputs, got %d", len(inputs))
		}
		if dst.Rows != k.M || dst.Cols != k.N {
			return fmt.Errorf("kernels: assemble4 dst %dx%d, want %dx%d", dst.Rows, dst.Cols, k.M, k.N)
		}
		hr, hc := k.M/2, k.N/2
		for idx, anchor := range [][2]int{{0, 0}, {0, hc}, {hr, 0}, {hr, hc}} {
			q := inputs[idx]
			if q.Rows != hr || q.Cols != hc {
				return fmt.Errorf("kernels: assemble4 quadrant %d is %dx%d, want %dx%d", idx, q.Rows, q.Cols, hr, hc)
			}
			dst.SetBlock(anchor[0], anchor[1], q)
		}
		return nil
	}
	return fmt.Errorf("kernels: not a reshape op %v", k.Op)
}

// reshapeProcTime is the per-processor cost of a reshape op over myElems
// output elements on a q-processor group.
func reshapeProcTime(mp machine.Params, q, myElems int) float64 {
	t := mp.LoopOverhead + float64(myElems*8)*mp.CopyPerByte
	if q > 1 {
		// One shuffle stage: misaligned blocks exchange rows inside the
		// group.
		t += mp.CollStartup + float64(myElems*8)*mp.CollPerByte
	}
	return t
}
