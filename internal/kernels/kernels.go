// Package kernels implements the loop nests appearing in the test
// programs — Matrix Initialization, Matrix Addition/Subtraction and Matrix
// Multiplication (the three loop types of Section 6) — together with their
// ground-truth execution cost on a machine.Params profile.
//
// Each kernel provides:
//
//   - a sequential reference (Execute), used both by the simulator to
//     produce real values and by the test suite as the verification
//     oracle;
//   - a per-processor parallel cost rule (ProcTime), used by the
//     simulator as the machine's ground truth. The rule is intentionally
//     NOT of the clean Amdahl form: it has ceiling-based block imbalance,
//     a fixed serial prologue, and (for Multiply) a log-tree all-gather
//     of the second operand whose cost grows with the group size. The
//     Amdahl model of Equation 1 only *fits* this behaviour, which is
//     what gives the training-sets regression of Table 1 something real
//     to estimate.
package kernels

import (
	"fmt"
	"math"

	"paradigm/internal/machine"
	"paradigm/internal/matrix"
)

// Op enumerates the kernel types.
type Op uint8

const (
	// OpNone marks dummy nodes (START/STOP); it computes nothing and
	// costs nothing.
	OpNone Op = iota
	// OpInit fills the output matrix from an element generator.
	OpInit
	// OpAdd computes dst = a + b.
	OpAdd
	// OpSub computes dst = a - b.
	OpSub
	// OpMul computes dst = a·b.
	OpMul
	// OpExtract copies a rectangle out of a larger matrix (reshape.go).
	OpExtract
	// OpAssemble4 tiles four quadrants into one matrix (reshape.go).
	OpAssemble4
)

// String renders the op name.
func (o Op) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpInit:
		return "init"
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpMul:
		return "mul"
	case OpExtract:
		return "extract"
	case OpAssemble4:
		return "assemble4"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Kernel describes one loop nest. Shapes: Init/Add/Sub produce M×N from
// M×N inputs; Mul produces M×N from M×K and K×N inputs.
type Kernel struct {
	Op      Op
	M, N, K int
	// Init generates element (i, j) for OpInit; ignored otherwise.
	Init func(i, j int) float64
	// Grid selects the blocked-2D layout cost rules (grid.go) instead of
	// the linear ones. Set by prog.Builder from the node's axis.
	Grid bool
	// OpExtract geometry: the input shape and the anchor of the copied
	// rectangle (reshape.go).
	SrcRows, SrcCols int
	OffR, OffC       int
}

// Validate checks shape invariants.
func (k Kernel) Validate() error {
	switch k.Op {
	case OpNone:
		return nil
	case OpInit:
		if k.Init == nil {
			return fmt.Errorf("kernels: OpInit requires an Init generator")
		}
		if k.M <= 0 || k.N <= 0 {
			return fmt.Errorf("kernels: invalid init shape %dx%d", k.M, k.N)
		}
	case OpAdd, OpSub:
		if k.M <= 0 || k.N <= 0 {
			return fmt.Errorf("kernels: invalid %s shape %dx%d", k.Op, k.M, k.N)
		}
	case OpMul:
		if k.M <= 0 || k.N <= 0 || k.K <= 0 {
			return fmt.Errorf("kernels: invalid mul shape %dx%dx%d", k.M, k.K, k.N)
		}
	case OpExtract, OpAssemble4:
		return k.validateReshape()
	default:
		return fmt.Errorf("kernels: unknown op %d", k.Op)
	}
	return nil
}

// NumInputs returns how many operand arrays the kernel consumes.
func (k Kernel) NumInputs() int {
	switch k.Op {
	case OpAdd, OpSub, OpMul:
		return 2
	case OpExtract:
		return 1
	case OpAssemble4:
		return 4
	default:
		return 0
	}
}

// Execute runs the sequential reference: dst receives the result. Inputs
// are given in operand order (a, b). OpNone is a no-op.
func (k Kernel) Execute(dst *matrix.Matrix, inputs ...*matrix.Matrix) error {
	if err := k.Validate(); err != nil {
		return err
	}
	switch k.Op {
	case OpNone:
		return nil
	case OpInit:
		if dst.Rows != k.M || dst.Cols != k.N {
			return fmt.Errorf("kernels: init dst %dx%d, want %dx%d", dst.Rows, dst.Cols, k.M, k.N)
		}
		dst.Fill(k.Init)
		return nil
	case OpAdd:
		if len(inputs) != 2 {
			return fmt.Errorf("kernels: add needs 2 inputs, got %d", len(inputs))
		}
		return matrix.Add(dst, inputs[0], inputs[1])
	case OpSub:
		if len(inputs) != 2 {
			return fmt.Errorf("kernels: sub needs 2 inputs, got %d", len(inputs))
		}
		return matrix.Sub(dst, inputs[0], inputs[1])
	case OpMul:
		if len(inputs) != 2 {
			return fmt.Errorf("kernels: mul needs 2 inputs, got %d", len(inputs))
		}
		return matrix.Mul(dst, inputs[0], inputs[1])
	case OpExtract, OpAssemble4:
		return k.executeReshape(dst, inputs)
	}
	return fmt.Errorf("kernels: unknown op %d", k.Op)
}

// SerialTime is the machine ground-truth single-processor execution time.
func (k Kernel) SerialTime(mp machine.Params) float64 {
	return k.ProcTime(mp, 1, k.rowsOf(1, 0))
}

// rowsOf returns the number of distributed-axis indices processor slot s
// of q owns under the blocked distribution (ceil-based).
func (k Kernel) rowsOf(q, s int) int {
	bs := (k.M + q - 1) / q
	lo := s * bs
	hi := lo + bs
	if hi > k.M {
		hi = k.M
	}
	if lo > hi {
		lo = hi
	}
	return hi - lo
}

// MaxProcTime returns the slowest group member's time on a q-processor
// group — the loop's observable execution time, the quantity the
// training-sets calibration measures. Grid-layout kernels dispatch to
// the grid cost rules.
func (k Kernel) MaxProcTime(mp machine.Params, q int) float64 {
	if k.Grid {
		return k.MaxGridProcTime(mp, q)
	}
	worst := 0.0
	for s := 0; s < q; s++ {
		if t := k.ProcTime(mp, q, k.rowsOf(q, s)); t > worst {
			worst = t
		}
	}
	return worst
}

// ProcTime is the machine ground-truth time one processor spends executing
// its share (myExtent indices along the distributed dimension) of the
// kernel on a q-processor group.
func (k Kernel) ProcTime(mp machine.Params, q, myExtent int) float64 {
	if q < 1 {
		panic(fmt.Sprintf("kernels: group size %d", q))
	}
	if myExtent < 0 {
		panic(fmt.Sprintf("kernels: negative extent %d", myExtent))
	}
	switch k.Op {
	case OpNone:
		return 0
	case OpInit:
		return mp.LoopOverhead + float64(myExtent*k.N)*mp.InitElemTime
	case OpAdd, OpSub:
		return mp.LoopOverhead + float64(myExtent*k.N)*mp.AddElemTime
	case OpMul:
		t := mp.LoopOverhead + float64(myExtent*k.N*k.K)*mp.FMATime
		if q > 1 {
			// All-gather of the K×N second operand over a log-depth tree:
			// the intra-node communication that makes the data-parallel
			// multiply less than perfectly scalable.
			stages := math.Ceil(math.Log2(float64(q)))
			bytes := float64(k.K * k.N * 8)
			t += stages * (mp.CollStartup + bytes*mp.CollPerByte)
		}
		return t
	case OpExtract, OpAssemble4:
		return reshapeProcTime(mp, q, myExtent*k.N)
	default:
		panic(fmt.Sprintf("kernels: unknown op %d", k.Op))
	}
}

// Shape returns the cost-relevant geometry, implementing
// machine.LoopSpec: together with Validate and MaxProcTime it lets any
// machine backend price this kernel without importing this package.
func (k Kernel) Shape() machine.LoopShape {
	return machine.LoopShape{Op: k.Op.String(), M: k.M, N: k.N, K: k.K, Grid: k.Grid}
}

var _ machine.LoopSpec = Kernel{}

// OutputShape returns the produced matrix shape (0x0 for OpNone).
func (k Kernel) OutputShape() (rows, cols int) {
	if k.Op == OpNone {
		return 0, 0
	}
	return k.M, k.N
}

// InputShape returns the shape of operand idx.
func (k Kernel) InputShape(idx int) (rows, cols int) {
	switch k.Op {
	case OpAdd, OpSub:
		if idx == 0 || idx == 1 {
			return k.M, k.N
		}
	case OpMul:
		if idx == 0 {
			return k.M, k.K
		}
		if idx == 1 {
			return k.K, k.N
		}
	case OpExtract:
		if idx == 0 {
			return k.SrcRows, k.SrcCols
		}
	case OpAssemble4:
		if idx >= 0 && idx < 4 {
			return k.M / 2, k.N / 2
		}
	}
	panic(fmt.Sprintf("kernels: %s has no input %d", k.Op, idx))
}
