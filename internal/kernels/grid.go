package kernels

import (
	"fmt"
	"math"

	"paradigm/internal/dist"
	"paradigm/internal/machine"
)

// This file extends the kernel cost rules to grid (blocked 2D) data
// layouts. The headline effect is on the multiply: with the output on a
// near-square pr×pc grid, each processor gathers only a row panel of A
// (across its pc grid-row peers) and a column panel of B (across its pr
// grid-column peers) — SUMMA-style — instead of the full second operand.
// Communication volume per processor shrinks from O(K·N) to
// O((M·K + K·N)/√q), so the effective Amdahl serial fraction α of the
// loop drops and the multiply keeps scaling where the 1D layout
// saturates (experiment E12).

// Grid reports whether the kernel is costed for a grid layout. It is set
// by prog.Builder from the node's distribution axis so the calibration
// and the simulator always agree on the layout.
//
// The field lives on Kernel (rather than being passed per call) so that
// the training-sets cache distinguishes grid and linear fits of the same
// loop shape.

// GridProcTime is the machine ground-truth time one processor spends
// executing its myRows×myCols output block of the kernel on a pr×pc grid.
func (k Kernel) GridProcTime(mp machine.Params, pr, pc, myRows, myCols int) float64 {
	if pr < 1 || pc < 1 {
		panic(fmt.Sprintf("kernels: grid %dx%d", pr, pc))
	}
	if myRows < 0 || myCols < 0 {
		panic(fmt.Sprintf("kernels: negative block %dx%d", myRows, myCols))
	}
	switch k.Op {
	case OpNone:
		return 0
	case OpInit:
		return mp.LoopOverhead + float64(myRows*myCols)*mp.InitElemTime
	case OpAdd, OpSub:
		return mp.LoopOverhead + float64(myRows*myCols)*mp.AddElemTime
	case OpExtract, OpAssemble4:
		return reshapeProcTime(mp, pr*pc, myRows*myCols)
	case OpMul:
		t := mp.LoopOverhead + float64(myRows*myCols*k.K)*mp.FMATime
		// Row panel of A: gathered across the pc processors of my grid
		// row; column panel of B: across the pr processors of my column.
		if pc > 1 {
			stages := math.Ceil(math.Log2(float64(pc)))
			bytes := float64(myRows * k.K * 8)
			t += stages * (mp.CollStartup + bytes*mp.CollPerByte)
		}
		if pr > 1 {
			stages := math.Ceil(math.Log2(float64(pr)))
			bytes := float64(k.K * myCols * 8)
			t += stages * (mp.CollStartup + bytes*mp.CollPerByte)
		}
		return t
	default:
		panic(fmt.Sprintf("kernels: unknown op %d", k.Op))
	}
}

// MaxGridProcTime returns the slowest grid member's time on a q-processor
// near-square grid — the grid loop's observable execution time.
func (k Kernel) MaxGridProcTime(mp machine.Params, q int) float64 {
	pr, pc := dist.GridShape(q)
	worst := 0.0
	for i := 0; i < pr; i++ {
		for j := 0; j < pc; j++ {
			rows := spanOf(k.M, pr, i)
			cols := spanOf(k.N, pc, j)
			if t := k.GridProcTime(mp, pr, pc, rows, cols); t > worst {
				worst = t
			}
		}
	}
	return worst
}

// spanOf returns the length of ceil-block i of extent over n blocks.
func spanOf(extent, n, i int) int {
	bs := (extent + n - 1) / n
	lo := i * bs
	hi := lo + bs
	if hi > extent {
		hi = extent
	}
	if lo > hi {
		lo = hi
	}
	return hi - lo
}
