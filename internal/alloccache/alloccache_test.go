package alloccache

import "testing"

func entry(procs int, vals ...float64) Entry {
	return Entry{PCanon: vals, Phi: vals[0], Procs: procs}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", "na", entry(8, 1, 2, 3))
	e, ok := c.Get("a")
	if !ok || e.Procs != 8 || len(e.PCanon) != 3 || e.PCanon[1] != 2 {
		t.Fatalf("round trip: %+v ok=%v", e, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCloneIsolation(t *testing.T) {
	c := New(4)
	src := entry(8, 1, 2, 3)
	c.Put("a", "", src)
	src.PCanon[0] = 99
	e, _ := c.Get("a")
	if e.PCanon[0] != 1 {
		t.Fatal("Put did not copy the slice")
	}
	e.PCanon[1] = 99
	e2, _ := c.Get("a")
	if e2.PCanon[1] != 2 {
		t.Fatal("Get did not copy the slice")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", "na", entry(1, 1))
	c.Put("b", "nb", entry(2, 2))
	// Touch a so b becomes the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", "nc", entry(3, 3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	// The evicted entry's near index must not dangle.
	if _, ok := c.GetNear("nb"); ok {
		t.Fatal("near index served an evicted entry")
	}
}

func TestNearIndexTracksFreshest(t *testing.T) {
	c := New(8)
	c.Put("a|p8", "a", entry(8, 1))
	c.Put("a|p16", "a", entry(16, 2))
	e, ok := c.GetNear("a")
	if !ok || e.Procs != 16 {
		t.Fatalf("near lookup: %+v ok=%v, want the freshest (procs 16)", e, ok)
	}
	// Updating an existing exact key re-points the near index.
	c.Put("a|p8", "a", entry(8, 3))
	e, ok = c.GetNear("a")
	if !ok || e.Procs != 8 {
		t.Fatalf("near lookup after update: %+v ok=%v", e, ok)
	}
}

func TestPutUpdateExisting(t *testing.T) {
	c := New(2)
	c.Put("a", "na", entry(8, 1))
	c.Put("a", "na", entry(8, 42))
	if c.Len() != 1 {
		t.Fatalf("Len = %d after update", c.Len())
	}
	e, _ := c.Get("a")
	if e.PCanon[0] != 42 {
		t.Fatal("update did not replace the entry")
	}
}

func TestCapacityFloor(t *testing.T) {
	c := New(0)
	c.Put("a", "", entry(1, 1))
	c.Put("b", "", entry(2, 2))
	if c.Len() != 1 {
		t.Fatalf("capacity floor: Len = %d, want 1", c.Len())
	}
}
