// Package alloccache is a bounded LRU of solved allocations, keyed by
// the relabel-invariant canonical MDG hash plus the machine fit and
// processor count (the key is derived in internal/alloc; this package
// stores plain data so it depends on nothing above the standard
// library).
//
// Two lookup granularities exist. An exact key (canonical graph + model
// + options + procs) returns the stored allocation verbatim — the
// allocator replays it byte-identically without solving. A near key
// (everything but procs) indexes the most recently stored entry for the
// same canonical program on a different machine size; the allocator
// rescales it into a warm-start seed. Entries store allocations in
// canonical node order, so graphs that differ only by relabeling share
// entries (mdg.CanonicalHash).
//
// All methods are safe for concurrent use.
package alloccache

import (
	"container/list"
	"sync"
)

// Entry is one solved allocation in canonical node order.
type Entry struct {
	// PCanon holds the continuous per-node allocation permuted into
	// canonical order: PCanon[perm[i]] = P[i] for the canonicalizing
	// perm of the solved graph.
	PCanon []float64
	// Phi, Ap, Cp are the exact objective values of the stored solve.
	Phi, Ap, Cp float64
	// Procs is the machine size the entry was solved for.
	Procs int
}

// clone guards cached slices against caller mutation in both directions.
func (e Entry) clone() Entry {
	e.PCanon = append([]float64(nil), e.PCanon...)
	return e
}

// Cache is a bounded LRU over exact keys with a near-key index.
type Cache struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List               // front = most recent
	m    map[string]*list.Element // exact key -> element
	near map[string]string        // near key -> exact key of freshest entry
}

type cacheItem struct {
	key     string
	nearKey string
	entry   Entry
}

// New creates a cache holding at most capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:  capacity,
		ll:   list.New(),
		m:    make(map[string]*list.Element),
		near: make(map[string]string),
	}
}

// Len reports the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Get returns the entry stored under the exact key, marking it most
// recently used.
func (c *Cache) Get(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return Entry{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).entry.clone(), true
}

// GetNear returns the freshest entry stored under the near key — the
// same canonical program at a possibly different processor count.
func (c *Cache) GetNear(nearKey string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	exact, ok := c.near[nearKey]
	if !ok {
		return Entry{}, false
	}
	el, ok := c.m[exact]
	if !ok {
		// The pointed-to entry was evicted; drop the dangling index.
		delete(c.near, nearKey)
		return Entry{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).entry.clone(), true
}

// Put stores the entry under the exact key and points the near key at
// it, evicting the least recently used entry past capacity.
func (c *Cache) Put(key, nearKey string, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		item := el.Value.(*cacheItem)
		item.entry = e.clone()
		item.nearKey = nearKey
		c.ll.MoveToFront(el)
		if nearKey != "" {
			c.near[nearKey] = key
		}
		return
	}
	el := c.ll.PushFront(&cacheItem{key: key, nearKey: nearKey, entry: e.clone()})
	c.m[key] = el
	if nearKey != "" {
		c.near[nearKey] = key
	}
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		item := oldest.Value.(*cacheItem)
		c.ll.Remove(oldest)
		delete(c.m, item.key)
		if item.nearKey != "" && c.near[item.nearKey] == item.key {
			delete(c.near, item.nearKey)
		}
	}
}
