package oracle

import (
	"testing"

	"paradigm/internal/alloc"
)

// TestDifferentialADMMVsBruteForce pits the consensus-ADMM decomposition
// backend against the exact brute-force grid on the same generated
// population the annealed solver is checked with: the decomposition plus
// its polish pass must stay within the same 1% envelope of the
// discretized optimum.
func TestDifferentialADMMVsBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("differential population test")
	}
	const procs = 8
	worst := 0.0
	for seed := uint64(1); seed <= diffSeeds; seed++ {
		g := RandomGraph(seed, GenOptions{})
		r, err := alloc.Solve(g, cm5Fit, procs, alloc.Options{Backend: "admm"})
		if err != nil {
			t.Fatalf("seed %d: admm solve: %v", seed, err)
		}
		if r.Backend != "admm" {
			t.Fatalf("seed %d: backend %q", seed, r.Backend)
		}
		if err := CheckAllocation(g, cm5Fit, procs, r, Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bf, err := BruteForceAlloc(g, cm5Fit, procs, BruteForceOptions{})
		if err != nil {
			t.Fatalf("seed %d: brute force: %v", seed, err)
		}
		if r.Phi > bf.Phi*1.01 {
			t.Errorf("seed %d: ADMM Φ = %g exceeds brute-force optimum %g by more than 1%% (ratio %g, n = %d)",
				seed, r.Phi, bf.Phi, r.Phi/bf.Phi, g.NumNodes())
		}
		if ratio := r.Phi / bf.Phi; ratio > worst {
			worst = ratio
		}
	}
	t.Logf("%d graphs, worst ADMM/BruteForce Φ ratio = %.6f", diffSeeds, worst)
}
