package oracle

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"paradigm/internal/alloc"
	"paradigm/internal/convex"
	"paradigm/internal/errs"
	"paradigm/internal/mdg"
	"paradigm/internal/sched"
)

// The fuzz targets feed arbitrary bytes through the total decoders in
// gen.go and then push every decoded instance through the production
// solvers with the invariant checkers as the oracle: a crash, a
// non-sentinel error, or a checker rejection is a finding. Seed corpora
// live in testdata/fuzz/<FuzzName>/ and run as ordinary subtests under
// plain `go test`; `make fuzz-smoke` runs each target for a few seconds
// of coverage-guided exploration.

// fuzzAnneal is a deliberately small solver budget: fuzzing probes
// feasibility and consistency, not solution quality, so a short anneal
// keeps executions-per-second high.
var fuzzAnneal = alloc.Options{Anneal: convex.AnnealOptions{
	StartTemp: 0.1, EndTemp: 1e-2, Decay: 0.2,
	Inner: convex.Options{MaxIter: 150},
}}

// knownSentinel reports whether err wraps one of the repo's typed error
// sentinels — the only errors the solvers may return on fuzzed input.
func knownSentinel(err error) bool {
	for _, s := range []error{
		errs.ErrInfeasible, errs.ErrBadGraph, errs.ErrUnsupportedTransfer,
	} {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

func FuzzSolve(f *testing.F) {
	f.Add([]byte("\x00\x03\x80\x40"))
	f.Add([]byte("\x02\x01\x10\xf0\x80\x80\xe0\x20\x01\x00\x04\x01\x02\x07\x00\x03\x0c"))
	f.Add([]byte("\x05\x04\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c" +
		"\x01\x00\x05\x01\x01\x06\x00\x02\x07\x01\x03\x08\x01\x04\x09" +
		"\x01\x00\x0a\x01\x01\x0b\x00\x02\x0c\x01\x03\x0d\x01\x04\x0e"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, procs, ok := DecodeGraph(data)
		if !ok {
			t.Skip()
		}
		r, err := alloc.Solve(g, cm5Fit, procs, fuzzAnneal)
		if err != nil {
			if !knownSentinel(err) {
				t.Fatalf("Solve returned a non-sentinel error on a decoded-valid graph: %v", err)
			}
			return
		}
		if err := CheckAllocation(g, cm5Fit, procs, r, Options{}); err != nil {
			t.Fatalf("Solve result failed the oracle: %v\ngraph: %d nodes, %d edges, procs %d",
				err, g.NumNodes(), len(g.Edges), procs)
		}
	})
}

func FuzzPSA(f *testing.F) {
	f.Add([]byte("\x00\x03\x80\x40"), []byte("\x01\x02\x03"))
	f.Add([]byte("\x02\x01\x10\xf0\x80\x80\xe0\x20\x01\x00\x04\x01\x02\x07\x00\x03\x0c"),
		[]byte("\x00\x01\x02\x03\x04\x05"))
	f.Add([]byte("\x03\x02\x20\x30\x40\x50\x60\x70\x80\x90\x01\x01\x05\x01\x02\x06\x00\x00\x07"),
		[]byte("\x07\x03\x01\x00\x02\x05\x04\x06"))
	f.Fuzz(func(t *testing.T, gdata, adata []byte) {
		g, procs, ok := DecodeGraph(gdata)
		if !ok {
			t.Skip()
		}
		if _, _, err := g.EnsureStartStop(); err != nil {
			t.Fatalf("EnsureStartStop rejected a decoded-valid graph: %v", err)
		}
		al, ok := DecodeAlloc(adata, g.NumNodes(), procs)
		if !ok {
			t.Skip()
		}
		s, err := sched.PSA(g, cm5Fit, al, procs, sched.LowestEST)
		if err != nil {
			if !knownSentinel(err) {
				t.Fatalf("PSA returned a non-sentinel error on a decoded-valid instance: %v", err)
			}
			return
		}
		if err := CheckSchedule(g, cm5Fit, s); err != nil {
			t.Fatalf("PSA schedule failed the oracle: %v\ngraph: %d nodes, procs %d, alloc %v",
				err, g.NumNodes(), procs, al)
		}
	})
}

func FuzzMDGParse(f *testing.F) {
	for _, seed := range []uint64{1, 2, 3} {
		g := RandomGraph(seed, GenOptions{GridKinds: seed == 3})
		data, err := json.Marshal(g)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"nodes":[],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"a","alpha":0.5,"tau":1}],"edges":[{"from":0,"to":0}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g mdg.Graph
		if err := json.Unmarshal(data, &g); err != nil {
			t.Skip() // rejecting malformed input is the correct behavior
		}
		// An accepted graph must actually be valid...
		if err := g.Validate(); err != nil {
			t.Fatalf("UnmarshalJSON accepted an invalid graph: %v\ninput: %q", err, data)
		}
		// ...must re-serialize to a stable fixed point...
		out1, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var g2 mdg.Graph
		if err := json.Unmarshal(out1, &g2); err != nil {
			t.Fatalf("round trip rejected its own output: %v\n%s", err, out1)
		}
		out2, err := json.Marshal(&g2)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("marshal is not a fixed point:\n%s\n%s", out1, out2)
		}
		// ...and must evaluate without panicking under the oracle's
		// independent cost arithmetic.
		if g.NumNodes() > 0 {
			p := make([]float64, g.NumNodes())
			for i := range p {
				p[i] = 1
			}
			if _, _, _, ok := phiEval(&g, cm5Fit.Transfer, p, 4); !ok {
				t.Fatalf("validated graph failed oracle evaluation (cycle?): %q", data)
			}
		}
	})
}
