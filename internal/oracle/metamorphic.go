package oracle

import (
	"fmt"

	"paradigm/internal/costmodel"
	"paradigm/internal/mdg"
)

// Metamorphic relations: properties the cost semantics must satisfy
// without knowing the true optimum. Each checker transforms an instance,
// re-evaluates with the oracle's independent arithmetic, and verifies the
// predicted covariance. The solver-level versions of these relations
// (does alloc.Solve's optimal Φ scale/shrink the same way?) live in the
// metamorphic test suite; these checkers are the exact fixed-allocation
// core they build on.

// ScaleModel multiplies every transfer cost coefficient by k: with the
// node τ scaled alongside (ScaleTau), the whole objective is k-homogeneous.
func ScaleModel(m costmodel.Model, k float64) costmodel.Model {
	t := m.Transfer
	t.Tss *= k
	t.Tps *= k
	t.Tsr *= k
	t.Tpr *= k
	t.Tn *= k
	return costmodel.Model{Transfer: t}
}

// ScaleTau returns a copy of g with every node's τ multiplied by k.
// Structure, α and transfers are unchanged.
func ScaleTau(g *mdg.Graph, k float64) *mdg.Graph {
	var out mdg.Graph
	for _, n := range g.Nodes {
		n.Tau *= k
		out.AddNode(n)
	}
	for _, e := range g.Edges {
		out.AddEdge(e.From, e.To, e.Transfers...)
	}
	return &out
}

// CheckCostScaling verifies the k-homogeneity relation at a fixed
// allocation: scaling every τ_i and every transfer coefficient by k > 0
// scales Φ, A_p and C_p by exactly k. Both sides are evaluated with the
// oracle's independent arithmetic.
func CheckCostScaling(g *mdg.Graph, model costmodel.Model, procs int, p []float64, k float64, o Options) error {
	o = o.withDefaults()
	if k <= 0 {
		return fmt.Errorf("oracle: scale factor %v, want > 0", k)
	}
	phi0, ap0, cp0, ok := phiEval(g, model.Transfer, p, procs)
	if !ok {
		return fmt.Errorf("oracle: graph is cyclic")
	}
	gs := ScaleTau(g, k)
	ms := ScaleModel(model, k)
	phi1, ap1, cp1, ok := phiEval(gs, ms.Transfer, p, procs)
	if !ok {
		return fmt.Errorf("oracle: scaled graph is cyclic")
	}
	if !o.close(phi1, k*phi0) || !o.close(ap1, k*ap0) || !o.close(cp1, k*cp0) {
		return fmt.Errorf("oracle: cost scaling by %v broke homogeneity: Φ %v -> %v (want %v), A_p %v -> %v, C_p %v -> %v",
			k, phi0, phi1, k*phi0, ap0, ap1, cp0, cp1)
	}
	return nil
}

// CheckProcMonotonicity verifies that adding processors never increases
// the objective at a fixed feasible allocation: growing the system from
// procs to more (p unchanged, still inside the smaller box) leaves C_p
// unchanged and shrinks A_p by exactly procs/more, so Φ cannot rise.
func CheckProcMonotonicity(g *mdg.Graph, model costmodel.Model, p []float64, procs, more int, o Options) error {
	o = o.withDefaults()
	if more < procs || procs < 1 {
		return fmt.Errorf("oracle: processor counts %d -> %d must grow", procs, more)
	}
	phi0, ap0, cp0, ok := phiEval(g, model.Transfer, p, procs)
	if !ok {
		return fmt.Errorf("oracle: graph is cyclic")
	}
	phi1, ap1, cp1, ok := phiEval(g, model.Transfer, p, more)
	if !ok {
		return fmt.Errorf("oracle: graph is cyclic")
	}
	if phi1 > phi0*(1+o.RelTol) {
		return fmt.Errorf("oracle: Φ rose from %v to %v when processors grew %d -> %d", phi0, phi1, procs, more)
	}
	if !o.close(cp1, cp0) {
		return fmt.Errorf("oracle: C_p changed (%v -> %v) with the system size; it must not", cp0, cp1)
	}
	if !o.close(ap1*float64(more), ap0*float64(procs)) {
		return fmt.Errorf("oracle: A_p did not rescale by the processor ratio: %v·%d != %v·%d", ap1, more, ap0, procs)
	}
	return nil
}

// RandomPerm returns a deterministic pseudo-random permutation of [0, n).
func RandomPerm(seed uint64, n int) []mdg.NodeID {
	r := newRNG(seed)
	perm := make([]mdg.NodeID, n)
	for i := range perm {
		perm[i] = mdg.NodeID(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// PermuteFloats maps p (indexed by old node id) into the relabeled index
// space: out[perm[i]] = p[i].
func PermuteFloats(p []float64, perm []mdg.NodeID) []float64 {
	out := make([]float64, len(p))
	for i, v := range p {
		out[perm[i]] = v
	}
	return out
}

// PermuteInts is PermuteFloats for integer allocations.
func PermuteInts(a []int, perm []mdg.NodeID) []int {
	out := make([]int, len(a))
	for i, v := range a {
		out[perm[i]] = v
	}
	return out
}

// CheckRelabelInvariance verifies that node identity carries no cost:
// relabeling the graph by perm (and permuting the allocation alongside)
// leaves Φ, A_p and C_p unchanged up to float association noise.
func CheckRelabelInvariance(g *mdg.Graph, model costmodel.Model, procs int, p []float64, perm []mdg.NodeID, o Options) error {
	o = o.withDefaults()
	rg, err := g.Relabel(perm)
	if err != nil {
		return fmt.Errorf("oracle: relabel: %w", err)
	}
	phi0, ap0, cp0, ok := phiEval(g, model.Transfer, p, procs)
	if !ok {
		return fmt.Errorf("oracle: graph is cyclic")
	}
	phi1, ap1, cp1, ok := phiEval(rg, model.Transfer, PermuteFloats(p, perm), procs)
	if !ok {
		return fmt.Errorf("oracle: relabeled graph is cyclic")
	}
	if !o.close(phi0, phi1) || !o.close(ap0, ap1) || !o.close(cp0, cp1) {
		return fmt.Errorf("oracle: relabeling changed the objective: Φ %v -> %v, A_p %v -> %v, C_p %v -> %v",
			phi0, phi1, ap0, ap1, cp0, cp1)
	}
	return nil
}
