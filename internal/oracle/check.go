package oracle

import (
	"fmt"
	"math"
	"sort"

	"paradigm/internal/alloc"
	"paradigm/internal/costmodel"
	"paradigm/internal/mdg"
	"paradigm/internal/obs"
	"paradigm/internal/sched"
	"paradigm/internal/sim"
)

// CheckAllocation verifies an allocation result against the oracle's
// independent re-derivation: every p_i inside [1, procs], the reported
// Φ/A_p/C_p equal to the re-derived values with Φ = max(A_p, C_p), and —
// the property the whole convex formulation rests on — log-space midpoint
// convexity of the exact objective, probed at Options.ConvexProbes random
// point pairs (Lemmas 1–2 make Φ a generalized posynomial, hence convex
// under x = ln p; a non-convex probe means a cost term left the class).
func CheckAllocation(g *mdg.Graph, model costmodel.Model, procs int, r alloc.Result, o Options) error {
	o = o.withDefaults()
	if procs < 1 {
		return fmt.Errorf("oracle: procs = %d", procs)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("oracle: invalid graph: %w", err)
	}
	n := g.NumNodes()
	if len(r.P) != n {
		return fmt.Errorf("oracle: allocation has %d entries for %d nodes", len(r.P), n)
	}
	const boxTol = 1e-9
	for i, p := range r.P {
		if math.IsNaN(p) || p < 1-boxTol || p > float64(procs)*(1+boxTol) {
			return fmt.Errorf("oracle: node %d allocation %v outside [1, %d]", i, p, procs)
		}
	}
	phi, ap, cp, ok := phiEval(g, model.Transfer, r.P, procs)
	if !ok {
		return fmt.Errorf("oracle: graph is cyclic")
	}
	if !o.close(ap, r.Ap) {
		return fmt.Errorf("oracle: A_p re-derived %v, reported %v", ap, r.Ap)
	}
	if !o.close(cp, r.Cp) {
		return fmt.Errorf("oracle: C_p re-derived %v, reported %v", cp, r.Cp)
	}
	if !o.close(phi, r.Phi) {
		return fmt.Errorf("oracle: Φ re-derived %v, reported %v", phi, r.Phi)
	}
	if !o.close(r.Phi, math.Max(r.Ap, r.Cp)) {
		return fmt.Errorf("oracle: Φ %v != max(A_p %v, C_p %v)", r.Phi, r.Ap, r.Cp)
	}
	return checkConvexity(g, model.Transfer, procs, o)
}

// checkConvexity probes f(x) = Φ(e^x) for midpoint convexity at random
// pairs inside the log box [0, ln procs]^n: convex f satisfies
// f((x+y)/2) <= (f(x)+f(y))/2 everywhere.
func checkConvexity(g *mdg.Graph, tp costmodel.TransferParams, procs int, o Options) error {
	if o.ConvexProbes < 0 || g.NumNodes() == 0 {
		return nil
	}
	n := g.NumNodes()
	rng := newRNG(o.Seed)
	ub := math.Log(float64(procs))
	x := make([]float64, n)
	y := make([]float64, n)
	mid := make([]float64, n)
	expOf := func(v []float64) []float64 {
		p := make([]float64, n)
		for i := range p {
			p[i] = math.Exp(v[i])
		}
		return p
	}
	for probe := 0; probe < o.ConvexProbes; probe++ {
		for i := 0; i < n; i++ {
			x[i] = rng.float() * ub
			y[i] = rng.float() * ub
			mid[i] = (x[i] + y[i]) / 2
		}
		fx, _, _, ok1 := phiEval(g, tp, expOf(x), procs)
		fy, _, _, ok2 := phiEval(g, tp, expOf(y), procs)
		fm, _, _, ok3 := phiEval(g, tp, expOf(mid), procs)
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("oracle: graph is cyclic")
		}
		chord := (fx + fy) / 2
		if fm > chord*(1+1e-9)+1e-12 {
			return fmt.Errorf("oracle: convexity violated at probe %d: f(mid) %v > chord %v (Φ left the generalized-posynomial class)",
				probe, fm, chord)
		}
	}
	return nil
}

// CheckSchedule verifies a schedule against the oracle's independent
// semantics: every node scheduled exactly once on a distinct in-range
// processor set of its allocated size, durations equal to the re-derived
// node weights, every precedence edge separated by the re-derived network
// delay, no processor running two nodes over a positive-measure interval,
// the makespan equal to the last finish (and to STOP's finish when a
// unique STOP exists), and the two lower bounds any feasible schedule
// must respect: the critical path C_p at the integer allocation and the
// processor-time area Σ T_i·q_i / procs.
func CheckSchedule(g *mdg.Graph, model costmodel.Model, s *sched.Schedule) error {
	o := Options{}.withDefaults()
	if s == nil {
		return fmt.Errorf("oracle: nil schedule")
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("oracle: invalid graph: %w", err)
	}
	n := g.NumNodes()
	if n == 0 {
		return fmt.Errorf("oracle: empty graph")
	}
	if len(s.Entries) != n || len(s.Alloc) != n {
		return fmt.Errorf("oracle: schedule covers %d entries / %d allocs for %d nodes", len(s.Entries), len(s.Alloc), n)
	}
	if s.ProcsTotal < 1 {
		return fmt.Errorf("oracle: schedule has %d processors", s.ProcsTotal)
	}
	if s.PB != 0 {
		if s.PB < 1 || s.PB > s.ProcsTotal || s.PB&(s.PB-1) != 0 {
			return fmt.Errorf("oracle: PB %d is not a power of two in [1, %d]", s.PB, s.ProcsTotal)
		}
	}
	pf := make([]float64, n)
	for i, q := range s.Alloc {
		if q < 1 || q > s.ProcsTotal {
			return fmt.Errorf("oracle: node %d allocation %d outside [1, %d]", i, q, s.ProcsTotal)
		}
		if s.PB != 0 && q > s.PB {
			return fmt.Errorf("oracle: node %d allocation %d exceeds PB %d", i, q, s.PB)
		}
		pf[i] = float64(q)
	}

	// Per-entry invariants and per-processor busy intervals.
	type iv struct {
		lo, hi float64
		node   int
	}
	perProc := make([][]iv, s.ProcsTotal)
	lastFinish := 0.0
	area := 0.0
	for i, e := range s.Entries {
		if int(e.Node) != i {
			return fmt.Errorf("oracle: entry %d names node %d", i, e.Node)
		}
		if math.IsNaN(e.Start) || math.IsNaN(e.Finish) || e.Start < 0 || e.Finish < e.Start {
			return fmt.Errorf("oracle: node %d has invalid window [%v, %v]", i, e.Start, e.Finish)
		}
		if len(e.Procs) != s.Alloc[i] {
			return fmt.Errorf("oracle: node %d runs on %d processors, allocated %d", i, len(e.Procs), s.Alloc[i])
		}
		seen := make(map[int]bool, len(e.Procs))
		for _, p := range e.Procs {
			if p < 0 || p >= s.ProcsTotal {
				return fmt.Errorf("oracle: node %d uses processor %d outside [0, %d)", i, p, s.ProcsTotal)
			}
			if seen[p] {
				return fmt.Errorf("oracle: node %d lists processor %d twice", i, p)
			}
			seen[p] = true
			perProc[p] = append(perProc[p], iv{e.Start, e.Finish, i})
		}
		w := nodeWeight(g, model.Transfer, mdg.NodeID(i), pf)
		if !o.close(e.Finish-e.Start, w) {
			return fmt.Errorf("oracle: node %d duration %v, re-derived weight %v", i, e.Finish-e.Start, w)
		}
		area += w * pf[i]
		if e.Finish > lastFinish {
			lastFinish = e.Finish
		}
	}

	// Precedence with re-derived network delays.
	for _, e := range g.Edges {
		_, net, _ := edgeCosts(model.Transfer, e, pf[e.From], pf[e.To])
		from, to := s.Entries[e.From], s.Entries[e.To]
		if to.Start+o.RelTol*math.Max(1, from.Finish+net) < from.Finish+net {
			return fmt.Errorf("oracle: edge %d->%d violated: start %v < finish %v + delay %v",
				e.From, e.To, to.Start, from.Finish, net)
		}
	}

	// Positive-measure processor exclusivity (zero-width dummy nodes may
	// share instants).
	const eps = 1e-9
	for p, ivs := range perProc {
		sort.Slice(ivs, func(a, b int) bool {
			if ivs[a].lo != ivs[b].lo {
				return ivs[a].lo < ivs[b].lo
			}
			return ivs[a].hi < ivs[b].hi
		})
		for k := 1; k < len(ivs); k++ {
			prev, cur := ivs[k-1], ivs[k]
			if cur.lo < prev.hi-eps {
				return fmt.Errorf("oracle: processor %d runs nodes %d and %d concurrently ([%v,%v] vs [%v,%v])",
					p, prev.node, cur.node, prev.lo, prev.hi, cur.lo, cur.hi)
			}
		}
	}

	// Makespan consistency and lower bounds.
	if !o.close(s.Makespan, lastFinish) {
		return fmt.Errorf("oracle: makespan %v, last finish %v", s.Makespan, lastFinish)
	}
	if stop, uniq := uniqueSink(g); uniq && !o.close(s.Makespan, s.Entries[stop].Finish) {
		return fmt.Errorf("oracle: makespan %v, STOP finish %v", s.Makespan, s.Entries[stop].Finish)
	}
	_, _, cp, ok := phiEval(g, model.Transfer, pf, s.ProcsTotal)
	if !ok {
		return fmt.Errorf("oracle: graph is cyclic")
	}
	slack := 1 + 1e-9
	if s.Makespan*slack+1e-12 < cp {
		return fmt.Errorf("oracle: makespan %v below critical-path bound %v", s.Makespan, cp)
	}
	if s.Makespan*slack+1e-12 < area/float64(s.ProcsTotal) {
		return fmt.Errorf("oracle: makespan %v below area bound %v", s.Makespan, area/float64(s.ProcsTotal))
	}
	return nil
}

// uniqueSink reports the unique node without successors, if any.
func uniqueSink(g *mdg.Graph) (mdg.NodeID, bool) {
	hasSucc := make([]bool, g.NumNodes())
	for _, e := range g.Edges {
		hasSucc[e.From] = true
	}
	sink, found := mdg.NodeID(-1), false
	for i, h := range hasSucc {
		if !h {
			if found {
				return -1, false
			}
			sink, found = mdg.NodeID(i), true
		}
	}
	return sink, found
}

// Trace is an obs.Observer recording the communication and node-execution
// events of one simulated run for CheckRun. Safe for concurrent use.
type Trace struct {
	Comms []obs.Comm
	Runs  []obs.NodeRun
}

// Observe implements obs.Observer.
func (t *Trace) Observe(e obs.Event) {
	switch ev := e.(type) {
	case obs.Comm:
		t.Comms = append(t.Comms, ev)
	case obs.NodeRun:
		t.Runs = append(t.Runs, ev)
	}
}

// CheckRun verifies a completed simulated run against its recorded trace:
//
//   - message conservation: every sent message was received exactly once
//     (Result.Messages counts sends, the trace counts receives) and the
//     byte totals agree;
//   - per-message causality: send precedes network readiness precedes
//     receive, with non-negative spans;
//   - node windows: each executed node ran exactly once, its trace window
//     matching Result.NodeStart/NodeFinish;
//   - schedule ordering: along every transfer-carrying edge between
//     executed nodes, the consumer's barrier starts no earlier than the
//     producer's (message causality through the simulated network);
//   - makespan: equal to the slowest processor clock, no earlier than any
//     node finish (the run's realized critical path), with per-processor
//     busy time never exceeding the clock.
func CheckRun(g *mdg.Graph, tr *Trace, r *sim.Result) error {
	o := Options{}.withDefaults()
	if r == nil || tr == nil {
		return fmt.Errorf("oracle: nil run or trace")
	}
	const eps = 1e-9
	if len(tr.Comms) != r.Messages {
		return fmt.Errorf("oracle: %d messages sent, %d received (loss or duplication)", r.Messages, len(tr.Comms))
	}
	bytes := 0
	for i, c := range tr.Comms {
		bytes += c.Bytes
		if c.SendStart < -eps || c.SendEnd < c.SendStart-eps {
			return fmt.Errorf("oracle: comm %d (%s) has invalid send window [%v, %v]", i, c.Tag, c.SendStart, c.SendEnd)
		}
		if c.NetReady < c.SendEnd-eps {
			return fmt.Errorf("oracle: comm %d (%s) ready %v before send end %v", i, c.Tag, c.NetReady, c.SendEnd)
		}
		if c.RecvStart < c.NetReady-eps || c.RecvEnd < c.RecvStart-eps {
			return fmt.Errorf("oracle: comm %d (%s) has invalid receive window [%v, %v] (ready %v)",
				i, c.Tag, c.RecvStart, c.RecvEnd, c.NetReady)
		}
	}
	if bytes != r.NetworkBytes {
		return fmt.Errorf("oracle: %d network bytes counted, trace carries %d", r.NetworkBytes, bytes)
	}

	n := g.NumNodes()
	if len(r.NodeStart) != n || len(r.NodeFinish) != n || len(r.NodeDone) != n {
		return fmt.Errorf("oracle: run covers %d nodes, graph has %d", len(r.NodeStart), n)
	}
	ran := make([]bool, n)
	for _, ev := range tr.Runs {
		if ev.Node < 0 || ev.Node >= n {
			return fmt.Errorf("oracle: trace runs unknown node %d", ev.Node)
		}
		if ran[ev.Node] {
			return fmt.Errorf("oracle: node %d executed twice", ev.Node)
		}
		ran[ev.Node] = true
		if ev.Finish < ev.Start-eps {
			return fmt.Errorf("oracle: node %d window [%v, %v]", ev.Node, ev.Start, ev.Finish)
		}
		if !o.close(ev.Start, r.NodeStart[ev.Node]) || !o.close(ev.Finish, r.NodeFinish[ev.Node]) {
			return fmt.Errorf("oracle: node %d trace window [%v, %v] != result window [%v, %v]",
				ev.Node, ev.Start, ev.Finish, r.NodeStart[ev.Node], r.NodeFinish[ev.Node])
		}
	}
	for i, done := range r.NodeDone {
		if done && !ran[i] {
			return fmt.Errorf("oracle: node %d done without a trace event", i)
		}
	}

	// Message causality orders barrier starts along dataflow edges.
	for _, e := range g.Edges {
		if len(e.Transfers) == 0 || !r.NodeDone[e.From] || !r.NodeDone[e.To] {
			continue
		}
		if r.NodeStart[e.To] < r.NodeStart[e.From]-eps {
			return fmt.Errorf("oracle: edge %d->%d: consumer started %v before producer %v",
				e.From, e.To, r.NodeStart[e.To], r.NodeStart[e.From])
		}
	}

	maxClock, maxFinish := 0.0, 0.0
	for pr, c := range r.ProcClock {
		if c > maxClock {
			maxClock = c
		}
		if r.ProcBusy[pr] > c*(1+o.RelTol)+eps {
			return fmt.Errorf("oracle: processor %d busy %v exceeds clock %v", pr, r.ProcBusy[pr], c)
		}
	}
	for _, f := range r.NodeFinish {
		if f > maxFinish {
			maxFinish = f
		}
	}
	if !o.close(r.Makespan, maxClock) {
		return fmt.Errorf("oracle: makespan %v, slowest clock %v", r.Makespan, maxClock)
	}
	if r.Makespan*(1+o.RelTol)+eps < maxFinish {
		return fmt.Errorf("oracle: makespan %v below last node finish %v (realized critical path)", r.Makespan, maxFinish)
	}
	return nil
}
