package oracle

import (
	"fmt"
	"math"
	"sort"

	"paradigm/internal/costmodel"
	"paradigm/internal/mdg"
)

// --- Exact reference allocator --------------------------------------------

// BruteForceOptions tunes the exact allocation reference.
type BruteForceOptions struct {
	// MaxNodes caps the instance size (default 6): the grid is
	// exponential in n, the tractability boundary the differential suite
	// respects.
	MaxNodes int
	// GridPoints per node (default: the largest K with K^n <= 20000,
	// clamped to [3, 17]).
	GridPoints int
	// RefineRounds of per-coordinate geometric line search around the
	// coarse-grid winner (default 3; negative disables).
	RefineRounds int
}

func (o BruteForceOptions) withDefaults(n int) BruteForceOptions {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 6
	}
	if o.GridPoints <= 0 {
		k := 17
		for k > 3 && pow(k, n) > 20000 {
			k--
		}
		o.GridPoints = k
	}
	if o.GridPoints < 2 {
		o.GridPoints = 2
	}
	if o.RefineRounds == 0 {
		o.RefineRounds = 3
	}
	return o
}

func pow(base, exp int) int {
	v := 1
	for i := 0; i < exp; i++ {
		if v > 1<<30 {
			return v
		}
		v *= base
	}
	return v
}

// BruteForceResult is the exact reference allocation.
type BruteForceResult struct {
	// P is the best allocation found on the (refined) grid.
	P []float64
	// Phi, Ap, Cp are the oracle-evaluated objective values at P.
	Phi, Ap, Cp float64
	// Evals counts objective evaluations spent.
	Evals int
}

// BruteForceAlloc grid-searches discretized allocations for the global
// minimum of Φ = max(A_p, C_p) on a small MDG: each p_i ranges over a
// geometric grid spanning [1, procs] (endpoints included), every
// combination is evaluated with the oracle's independent cost semantics,
// and the winner is optionally tightened by per-coordinate refinement.
//
// Because every grid point is a feasible point of the continuous program,
// the returned Phi upper-bounds the true optimum; a convex solver claiming
// global optimality must therefore come in at or below it (up to grid
// resolution), which is the differential test.
func BruteForceAlloc(g *mdg.Graph, model costmodel.Model, procs int, o BruteForceOptions) (BruteForceResult, error) {
	if procs < 1 {
		return BruteForceResult{}, fmt.Errorf("oracle: procs = %d", procs)
	}
	if err := g.Validate(); err != nil {
		return BruteForceResult{}, fmt.Errorf("oracle: invalid graph: %w", err)
	}
	n := g.NumNodes()
	o = o.withDefaults(n)
	if n == 0 {
		return BruteForceResult{}, fmt.Errorf("oracle: empty graph")
	}
	if n > o.MaxNodes {
		return BruteForceResult{}, fmt.Errorf("oracle: %d nodes exceeds brute-force bound %d", n, o.MaxNodes)
	}
	tp := model.Transfer

	// Geometric grid over [1, procs].
	k := o.GridPoints
	grid := make([]float64, k)
	for i := range grid {
		grid[i] = math.Pow(float64(procs), float64(i)/float64(k-1))
	}
	grid[0], grid[k-1] = 1, float64(procs)

	best := BruteForceResult{Phi: math.Inf(1), P: make([]float64, n)}
	idx := make([]int, n)
	p := make([]float64, n)
	for {
		for i, gi := range idx {
			p[i] = grid[gi]
		}
		phi, ap, cp, ok := phiEval(g, tp, p, procs)
		best.Evals++
		if !ok {
			return BruteForceResult{}, fmt.Errorf("oracle: graph is cyclic")
		}
		if phi < best.Phi {
			best.Phi, best.Ap, best.Cp = phi, ap, cp
			copy(best.P, p)
		}
		// Odometer increment.
		d := 0
		for d < n {
			idx[d]++
			if idx[d] < k {
				break
			}
			idx[d] = 0
			d++
		}
		if d == n {
			break
		}
	}

	// Per-coordinate refinement: a geometric line search around the
	// winner with a shrinking span, narrowing toward the continuous
	// optimum without re-running the full grid.
	span := math.Pow(float64(procs), 1/float64(k-1)) // one grid step
	for round := 0; round < o.RefineRounds; round++ {
		for i := 0; i < n; i++ {
			copy(p, best.P)
			base := best.P[i]
			for s := 0; s < 9; s++ {
				f := math.Pow(span, float64(s)/4-1) // span^-1 .. span^+1
				v := base * f
				if v < 1 {
					v = 1
				}
				if v > float64(procs) {
					v = float64(procs)
				}
				p[i] = v
				phi, ap, cp, _ := phiEval(g, tp, p, procs)
				best.Evals++
				if phi < best.Phi {
					best.Phi, best.Ap, best.Cp = phi, ap, cp
					copy(best.P, p)
				}
			}
		}
		span = math.Sqrt(span)
	}
	return best, nil
}

// --- Exhaustive list-schedule reference -----------------------------------

// ExhaustiveResult brackets every list schedule of an MDG.
type ExhaustiveResult struct {
	// Best and Worst are the minimum and maximum makespans over every
	// linear extension of the precedence order, under the PSA placement
	// rule. Any list schedule — the PSA's lowest-EST order included —
	// must land inside [Best, Worst].
	Best, Worst float64
	// BestOrder is a linear extension achieving Best.
	BestOrder []mdg.NodeID
	// Count is the number of linear extensions enumerated.
	Count int
}

// ExhaustiveSchedules enumerates every linear extension of g (every order
// a list scheduler could process the nodes in) under a fixed integer
// allocation, places each with the same buddy/earliest-free rule the PSA
// uses, and returns the min/max makespan bracket. limit caps the number
// of extensions (default 200000); exceeding it is an error, keeping the
// reference honest about what it covered.
func ExhaustiveSchedules(g *mdg.Graph, model costmodel.Model, alloc []int, procs, limit int) (ExhaustiveResult, error) {
	if procs < 1 {
		return ExhaustiveResult{}, fmt.Errorf("oracle: procs = %d", procs)
	}
	if err := g.Validate(); err != nil {
		return ExhaustiveResult{}, fmt.Errorf("oracle: invalid graph: %w", err)
	}
	n := g.NumNodes()
	if n == 0 {
		return ExhaustiveResult{}, fmt.Errorf("oracle: empty graph")
	}
	if len(alloc) != n {
		return ExhaustiveResult{}, fmt.Errorf("oracle: allocation has %d entries for %d nodes", len(alloc), n)
	}
	for i, q := range alloc {
		if q < 1 || q > procs {
			return ExhaustiveResult{}, fmt.Errorf("oracle: node %d allocation %d outside [1, %d]", i, q, procs)
		}
	}
	if limit <= 0 {
		limit = 200000
	}

	// Structure and weights re-derived independently, once.
	tp := model.Transfer
	pf := make([]float64, n)
	for i, q := range alloc {
		pf[i] = float64(q)
	}
	weight := make([]float64, n)
	for i := 0; i < n; i++ {
		weight[i] = nodeWeight(g, tp, mdg.NodeID(i), pf)
	}
	preds := make([][]int, n)
	net := make(map[[2]int]float64, len(g.Edges))
	indeg := make([]int, n)
	for _, e := range g.Edges {
		preds[e.To] = append(preds[e.To], int(e.From))
		_, d, _ := edgeCosts(tp, e, pf[e.From], pf[e.To])
		net[[2]int{int(e.From), int(e.To)}] = d
		indeg[e.To]++
	}
	succs := make([][]int, n)
	for _, e := range g.Edges {
		succs[e.From] = append(succs[e.From], int(e.To))
	}

	res := ExhaustiveResult{Best: math.Inf(1), Worst: math.Inf(-1)}
	finish := make([]float64, n)
	order := make([]mdg.NodeID, 0, n)
	freeAt := make([]float64, procs)
	buddy := isPow2(procs)
	var overflow bool

	var walk func(depth int, makespan float64)
	walk = func(depth int, makespan float64) {
		if overflow {
			return
		}
		if depth == n {
			res.Count++
			if res.Count > limit {
				overflow = true
				return
			}
			if makespan < res.Best {
				res.Best = makespan
				res.BestOrder = append(res.BestOrder[:0], order...)
			}
			if makespan > res.Worst {
				res.Worst = makespan
			}
			return
		}
		for v := 0; v < n; v++ {
			if indeg[v] != 0 || finish[v] >= 0 {
				continue
			}
			est := 0.0
			for _, m := range preds[v] {
				if t := finish[m] + net[[2]int{m, v}]; t > est {
					est = t
				}
			}
			procSet, pst := place(freeAt, alloc[v], est, buddy)
			startT := math.Max(est, pst)
			finishT := startT + weight[v]

			saved := make([]float64, len(procSet))
			for i, pr := range procSet {
				saved[i] = freeAt[pr]
				freeAt[pr] = finishT
			}
			finish[v] = finishT
			for _, s := range succs[v] {
				indeg[s]--
			}
			order = append(order, mdg.NodeID(v))

			walk(depth+1, math.Max(makespan, finishT))

			order = order[:len(order)-1]
			for _, s := range succs[v] {
				indeg[s]++
			}
			finish[v] = -1
			for i, pr := range procSet {
				freeAt[pr] = saved[i]
			}
		}
	}
	for i := range finish {
		finish[i] = -1
	}
	walk(0, 0)
	if overflow {
		return res, fmt.Errorf("oracle: more than %d linear extensions; graph too wide for the exhaustive reference", limit)
	}
	if res.Count == 0 {
		return res, fmt.Errorf("oracle: no linear extension (cyclic graph)")
	}
	return res, nil
}

// place mirrors the PSA's processor placement semantics, independently
// restated: aligned contiguous buddy blocks when both the system size and
// the request are powers of two (the block minimizing max(est, block PST),
// ties to the lowest base), otherwise the q earliest-free processors
// (ties to the lowest id) with the PST of the slowest chosen.
func place(freeAt []float64, q int, est float64, buddy bool) ([]int, float64) {
	if buddy && isPow2(q) {
		bestStart := math.Inf(1)
		bestPST := 0.0
		bestBase := -1
		for base := 0; base+q <= len(freeAt); base += q {
			pst := 0.0
			for i := base; i < base+q; i++ {
				if freeAt[i] > pst {
					pst = freeAt[i]
				}
			}
			if start := math.Max(est, pst); start < bestStart {
				bestStart, bestPST, bestBase = start, pst, base
			}
		}
		sel := make([]int, q)
		for i := range sel {
			sel[i] = bestBase + i
		}
		return sel, bestPST
	}
	ids := make([]int, len(freeAt))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool { return freeAt[ids[a]] < freeAt[ids[b]] })
	sel := append([]int(nil), ids[:q]...)
	sort.Ints(sel)
	pst := 0.0
	for _, pr := range sel {
		if freeAt[pr] > pst {
			pst = freeAt[pr]
		}
	}
	return sel, pst
}

// isPow2 reports whether v is a positive power of two (restated locally:
// the oracle does not import internal/bounds).
func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }
