package oracle

import (
	"context"
	"strings"
	"testing"

	"paradigm/internal/alloc"
	"paradigm/internal/codegen"
	"paradigm/internal/costmodel"
	"paradigm/internal/dist"
	"paradigm/internal/kernels"
	"paradigm/internal/machine"
	"paradigm/internal/mdg"
	"paradigm/internal/obs"
	"paradigm/internal/prog"
	"paradigm/internal/sched"
	"paradigm/internal/sim"
)

// cm5Fit is the paper's Table 2 CM-5 messaging fit — the model every
// oracle suite checks against.
var cm5Fit = costmodel.Model{Transfer: costmodel.TransferParams{
	Tss: 777.56e-6, Tps: 486.98e-9, Tsr: 465.58e-6, Tpr: 426.25e-9, Tn: 0,
}}

// wantErr asserts err is non-nil and mentions frag.
func wantErr(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("checker accepted corrupted input, want error mentioning %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("err = %v, want mention of %q", err, frag)
	}
}

// --- CheckAllocation -------------------------------------------------------

func TestCheckAllocationAcceptsSolve(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		g := RandomGraph(seed, GenOptions{})
		r, err := alloc.Solve(g, cm5Fit, 8, alloc.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckAllocation(g, cm5Fit, 8, r, Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCheckAllocationAcceptsGridKinds(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		g := RandomGraph(seed, GenOptions{GridKinds: true})
		r, err := alloc.Solve(g, cm5Fit, 8, alloc.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckAllocation(g, cm5Fit, 8, r, Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCheckAllocationCatchesCorruption(t *testing.T) {
	g := RandomGraph(7, GenOptions{})
	r, err := alloc.Solve(g, cm5Fit, 8, alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}

	phiOff := r
	phiOff.Phi *= 1.001
	wantErr(t, CheckAllocation(g, cm5Fit, 8, phiOff, Options{}), "Φ")

	apOff := r
	apOff.Ap *= 0.999
	wantErr(t, CheckAllocation(g, cm5Fit, 8, apOff, Options{}), "A_p")

	outOfBox := r
	outOfBox.P = append([]float64(nil), r.P...)
	outOfBox.P[0] = 9.5 // > procs
	wantErr(t, CheckAllocation(g, cm5Fit, 8, outOfBox, Options{}), "outside")

	short := r
	short.P = r.P[:len(r.P)-1]
	wantErr(t, CheckAllocation(g, cm5Fit, 8, short, Options{}), "entries")
}

func TestCheckAllocationRejectsCyclicGraph(t *testing.T) {
	var g mdg.Graph
	a := g.AddNode(mdg.Node{Name: "a", Tau: 1})
	b := g.AddNode(mdg.Node{Name: "b", Tau: 1})
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	r := alloc.Result{P: []float64{1, 1}}
	wantErr(t, CheckAllocation(&g, cm5Fit, 4, r, Options{}), "invalid graph")
}

// --- CheckSchedule ---------------------------------------------------------

// scheduleFor builds a START/STOP-augmented graph from a seed and runs the
// full PSA pipeline on it.
func scheduleFor(t *testing.T, seed uint64, procs int) (*mdg.Graph, *sched.Schedule) {
	t.Helper()
	g := RandomGraph(seed, GenOptions{})
	if _, _, err := g.EnsureStartStop(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	r, err := alloc.Solve(g, cm5Fit, procs, alloc.Options{})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	s, err := sched.Run(g, cm5Fit, r.P, procs, sched.Options{})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return g, s
}

func TestCheckScheduleAcceptsPSA(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		g, s := scheduleFor(t, seed, 8)
		if err := CheckSchedule(g, cm5Fit, s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCheckScheduleAcceptsSPMD(t *testing.T) {
	g := RandomGraph(3, GenOptions{})
	if _, _, err := g.EnsureStartStop(); err != nil {
		t.Fatal(err)
	}
	s, err := sched.SPMD(g, cm5Fit, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSchedule(g, cm5Fit, s); err != nil {
		t.Fatal(err)
	}
}

func TestCheckScheduleCatchesCorruption(t *testing.T) {
	g, s := scheduleFor(t, 5, 8)
	if err := CheckSchedule(g, cm5Fit, s); err != nil {
		t.Fatal(err)
	}
	// Pick a real (positive-duration) node to corrupt.
	victim := -1
	for i, e := range s.Entries {
		if e.Finish > e.Start {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no positive-duration node")
	}

	mutate := func(f func(c *sched.Schedule)) *sched.Schedule {
		c := *s
		c.Entries = append([]sched.Entry(nil), s.Entries...)
		c.Alloc = append([]int(nil), s.Alloc...)
		for i := range c.Entries {
			c.Entries[i].Procs = append([]int(nil), s.Entries[i].Procs...)
		}
		f(&c)
		return &c
	}

	wantErr(t, CheckSchedule(g, cm5Fit, mutate(func(c *sched.Schedule) {
		c.Entries[victim].Finish *= 1.01 // duration no longer the weight
	})), "duration")
	wantErr(t, CheckSchedule(g, cm5Fit, mutate(func(c *sched.Schedule) {
		c.Makespan *= 1.01
	})), "makespan")
	wantErr(t, CheckSchedule(g, cm5Fit, mutate(func(c *sched.Schedule) {
		c.Entries[victim].Procs[0] = c.Entries[victim].Procs[len(c.Entries[victim].Procs)-1]
		if len(c.Entries[victim].Procs) == 1 {
			c.Entries[victim].Procs[0] = -1
		}
	})), "processor")
	wantErr(t, CheckSchedule(g, cm5Fit, mutate(func(c *sched.Schedule) {
		c.Alloc[victim]++ // allocation no longer matches the proc set
	})), "")
	wantErr(t, CheckSchedule(g, cm5Fit, nil), "nil")
}

func TestCheckScheduleCatchesOverlap(t *testing.T) {
	// Hand-built two-node chain scheduled onto the same processor with
	// overlapping windows.
	var g mdg.Graph
	a := g.AddNode(mdg.Node{Name: "a", Alpha: 1, Tau: 1})
	b := g.AddNode(mdg.Node{Name: "b", Alpha: 1, Tau: 1})
	g.AddEdge(a, b)
	s := &sched.Schedule{
		ProcsTotal: 1,
		Alloc:      []int{1, 1},
		Entries: []sched.Entry{
			{Node: 0, Start: 0, Finish: 1, Procs: []int{0}},
			{Node: 1, Start: 0.5, Finish: 1.5, Procs: []int{0}},
		},
		Makespan: 1.5,
	}
	wantErr(t, CheckSchedule(&g, costmodel.Model{}, s), "")
}

// --- CheckRun --------------------------------------------------------------

// mulProgram builds C = A·B with A ByRow and B ByCol, forcing a 2D
// redistribution through the simulated network.
func mulProgram(t testing.TB, n int) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("mul")
	b.AddNode("initA", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpInit, M: n, N: n,
			Init: func(i, j int) float64 { return float64(i*3+j) / 7 }},
		Output: "A", Axis: dist.ByRow,
	}, costmodel.LoopParams{Alpha: 0.05, Tau: 0.002})
	b.AddNode("initB", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpInit, M: n, N: n,
			Init: func(i, j int) float64 { return float64(i-2*j) / 5 }},
		Output: "B", Axis: dist.ByCol,
	}, costmodel.LoopParams{Alpha: 0.05, Tau: 0.002})
	b.AddNode("mul", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpMul, M: n, N: n, K: n},
		Inputs: []string{"A", "B"}, Output: "C", Axis: dist.ByRow,
	}, costmodel.LoopParams{Alpha: 0.12, Tau: 0.3})
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// tracedRun executes a program end to end with the oracle Trace attached.
func tracedRun(t *testing.T, p *prog.Program, procs int) (*Trace, *sim.Result) {
	t.Helper()
	ar, err := alloc.Solve(p.G, cm5Fit, procs, alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(p.G, cm5Fit, ar.P, procs, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := codegen.Generate(p, s)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	res, err := sim.RunCtx(context.Background(), p, streams, machine.CM5(procs), sim.Options{Observer: tr})
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

func TestCheckRunAcceptsSimulation(t *testing.T) {
	tr, res := tracedRun(t, mulProgram(t, 16), 8)
	if err := CheckRun(mulProgram(t, 16).G, tr, res); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRunCatchesCorruption(t *testing.T) {
	p := mulProgram(t, 16)
	tr, res := tracedRun(t, p, 8)

	lost := *res
	lost.Messages++
	wantErr(t, CheckRun(p.G, tr, &lost), "messages")

	bytesOff := *res
	bytesOff.NetworkBytes += 8
	wantErr(t, CheckRun(p.G, tr, &bytesOff), "bytes")

	clockOff := *res
	clockOff.Makespan *= 1.01
	wantErr(t, CheckRun(p.G, tr, &clockOff), "makespan")

	windowOff := *res
	windowOff.NodeStart = append([]float64(nil), res.NodeStart...)
	for i, d := range res.NodeDone {
		if d {
			windowOff.NodeStart[i] += 1e-3
			break
		}
	}
	wantErr(t, CheckRun(p.G, tr, &windowOff), "window")

	if len(tr.Comms) > 0 {
		// A message received twice (duplication) breaks conservation.
		dup := &Trace{Comms: append(append([]obs.Comm(nil), tr.Comms...), tr.Comms[0]), Runs: tr.Runs}
		wantErr(t, CheckRun(p.G, dup, res), "")
		// An acausal receive (ready before send completed) breaks causality.
		warp := &Trace{Comms: append([]obs.Comm(nil), tr.Comms...), Runs: tr.Runs}
		warp.Comms[0].NetReady = warp.Comms[0].SendEnd - 1e-3
		warp.Comms[0].RecvStart = warp.Comms[0].NetReady
		wantErr(t, CheckRun(p.G, warp, res), "")
	}

	wantErr(t, CheckRun(p.G, nil, res), "nil")
}
