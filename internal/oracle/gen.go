package oracle

import (
	"math"

	"paradigm/internal/mdg"
)

// --- Deterministic random source ------------------------------------------

// rng is a splitmix64 generator: tiny, seedable, and independent of
// math/rand so oracle probe sequences never shift under Go releases.
type rng struct{ s uint64 }

// newRNG seeds a generator. Seed 0 is remapped so the stream never
// degenerates to the fixed point of splitmix64's zero orbit start.
func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

// next returns the next 64 random bits.
func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// --- Random small-MDG generator -------------------------------------------

// GenOptions shapes RandomGraph's output. The zero value produces the
// differential-suite defaults: up to 6 nodes, 1D/2D transfers only.
type GenOptions struct {
	// MaxNodes bounds the node count (default 6, the largest size the
	// exact references stay tractable at).
	MaxNodes int
	// GridKinds admits the G2L/L2G/G2G extension kinds alongside 1D/2D.
	GridKinds bool
	// EdgeProb is the probability of an edge i->j for i < j (default 0.5).
	EdgeProb float64
}

func (o GenOptions) withDefaults() GenOptions {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 6
	}
	if o.EdgeProb <= 0 || o.EdgeProb > 1 {
		o.EdgeProb = 0.5
	}
	return o
}

// RandomGraph deterministically generates a small random valid MDG from a
// seed: 1..MaxNodes nodes with Amdahl parameters spread over realistic
// ranges (α ∈ [0.02, 0.9], τ ∈ [1ms, 1s]), forward edges i -> j (i < j,
// so the graph is a DAG by construction) carrying one or two transfers.
// The same seed always yields the same graph.
func RandomGraph(seed uint64, o GenOptions) *mdg.Graph {
	o = o.withDefaults()
	r := newRNG(seed)
	var g mdg.Graph
	n := 1 + r.intn(o.MaxNodes)
	for i := 0; i < n; i++ {
		g.AddNode(mdg.Node{
			Name:  nodeName(i),
			Alpha: 0.02 + 0.88*r.float(),
			Tau:   1e-3 * math.Pow(10, 3*r.float()), // 1ms .. 1s, log-uniform
		})
	}
	kinds := []mdg.TransferKind{mdg.Transfer1D, mdg.Transfer2D}
	if o.GridKinds {
		kinds = append(kinds, mdg.TransferG2L, mdg.TransferL2G, mdg.TransferG2G)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.float() >= o.EdgeProb {
				continue
			}
			nt := 1 + r.intn(2)
			trs := make([]mdg.Transfer, nt)
			for k := range trs {
				trs[k] = mdg.Transfer{
					// 256B .. ~1MB, log-uniform in powers of two.
					Bytes: 256 << r.intn(13),
					Kind:  kinds[r.intn(len(kinds))],
				}
			}
			g.AddEdge(mdg.NodeID(i), mdg.NodeID(j), trs...)
		}
	}
	return &g
}

// nodeName labels generated nodes n0, n1, ...
func nodeName(i int) string {
	return "n" + string(rune('0'+i%10))
}

// --- Total fuzz decoders ---------------------------------------------------
//
// The native fuzz targets receive arbitrary byte strings. These decoders
// are total: every input maps to either (valid structure, true) or
// (_, false); they never panic, so the fuzzer explores the solver and
// scheduler semantics rather than the decoder's.

// DecodeGraph interprets a fuzz byte string as a small MDG plus a system
// size. Layout (all bytes, consumed in order; short inputs are rejected):
//
//	[0]    node count n, mapped to 1..6
//	[1]    procs, mapped to {2,4,6,8,16}
//	[2..]  per node: alpha byte, tau byte
//	[...]  per (i,j) pair i<j: presence byte, kind byte, size byte
//
// The decoded graph is always a valid DAG (forward edges only, costs in
// range), so a decode success followed by a Validate failure is itself an
// oracle finding.
func DecodeGraph(data []byte) (*mdg.Graph, int, bool) {
	if len(data) < 2 {
		return nil, 0, false
	}
	n := 1 + int(data[0])%6
	procsChoices := []int{2, 4, 6, 8, 16}
	procs := procsChoices[int(data[1])%len(procsChoices)]
	pos := 2
	need := func(k int) bool { return pos+k <= len(data) }
	if !need(2 * n) {
		return nil, 0, false
	}
	var g mdg.Graph
	for i := 0; i < n; i++ {
		alpha := float64(data[pos]) / 255 // [0, 1]
		tau := 1e-3 * (1 + float64(data[pos+1]))
		pos += 2
		g.AddNode(mdg.Node{Name: nodeName(i), Alpha: alpha, Tau: tau})
	}
	kinds := []mdg.TransferKind{
		mdg.Transfer1D, mdg.Transfer2D, mdg.TransferG2L, mdg.TransferL2G, mdg.TransferG2G,
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !need(3) {
				return &g, procs, true // remaining pairs absent
			}
			present := data[pos]&1 == 1
			kind := kinds[int(data[pos+1])%len(kinds)]
			bytes := 64 << (int(data[pos+2]) % 15)
			pos += 3
			if present {
				g.AddEdge(mdg.NodeID(i), mdg.NodeID(j), mdg.Transfer{Bytes: bytes, Kind: kind})
			}
		}
	}
	return &g, procs, true
}

// DecodeAlloc interprets the tail of a fuzz byte string as an integer
// allocation for n nodes on a procs-processor system: one byte per node,
// mapped into [1, procs]. Returns false when data is too short.
func DecodeAlloc(data []byte, n, procs int) ([]int, bool) {
	if len(data) < n {
		return nil, false
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = 1 + int(data[i])%procs
	}
	return out, true
}
