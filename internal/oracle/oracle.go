// Package oracle is the repository's verification oracle: an independent
// checking layer that re-derives, from the paper's equations alone, what
// an allocation, a schedule and a simulated run must satisfy, and exact
// small-instance references the production solvers are differential-tested
// against.
//
// The package deliberately reimplements the Section 2/4 cost semantics —
// Amdahl processing (Equation 1), the 1D/2D transfer regimes (Equations
// 2–3) and the blocked-2D grid extensions — in its own arithmetic, its own
// topological order and its own critical-path relaxation, sharing nothing
// with internal/costmodel or internal/sched beyond the parameter structs.
// A bug in the production evaluation path and an identical bug here would
// have to be introduced twice, independently, in different code, which is
// the point of an oracle.
//
// Four layers:
//
//   - Invariant checkers (check.go): CheckAllocation re-derives
//     Φ = max(A_p, C_p), verifies box bounds, and probes log-space
//     midpoint convexity of the objective (the Lemma 1–2 posynomial
//     property the convex formulation rests on); CheckSchedule re-verifies
//     precedence, processor-capacity exclusivity, weight-consistent
//     durations and the two makespan lower bounds (critical path and
//     processor-time area); CheckRun validates a simulated run's trace
//     against conservation and causality invariants.
//
//   - Exact references (exact.go): BruteForceAlloc grid-searches
//     discretized allocations on small MDGs; ExhaustiveSchedules
//     enumerates every list-scheduling order (every linear extension of
//     the MDG) under the PSA placement rule, bracketing any list
//     schedule's makespan between its Best and Worst.
//
//   - Metamorphic relations (metamorphic.go): cost-scaling covariance,
//     processor-count monotonicity and node-relabeling invariance —
//     properties the optimal Φ and PSA must satisfy without knowing the
//     true optimum.
//
//   - Deterministic generators and fuzz decoders (gen.go): seeded random
//     small MDGs for the differential suites, and total byte-string
//     decoders that let the native Go fuzz targets (FuzzSolve, FuzzPSA,
//     FuzzMDGParse) drive arbitrary inputs through the checkers.
package oracle

import (
	"math"

	"paradigm/internal/costmodel"
	"paradigm/internal/mdg"
)

// Options tunes the checkers. The zero value selects robust defaults.
type Options struct {
	// RelTol is the relative tolerance for float comparisons between the
	// oracle's re-derived values and the production values (default 1e-9:
	// the two paths compute the same reals in different association
	// orders, so only rounding noise separates them).
	RelTol float64
	// ConvexProbes is the number of random log-space midpoint convexity
	// probes CheckAllocation performs (default 32; 0 keeps the default,
	// negative disables probing).
	ConvexProbes int
	// Seed drives the deterministic probe generator (default 1).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.RelTol <= 0 {
		o.RelTol = 1e-9
	}
	if o.ConvexProbes == 0 {
		o.ConvexProbes = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// close reports |a-b| <= tol·max(1,|a|,|b|).
func (o Options) close(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= o.RelTol*scale
}

// --- Independent cost evaluation ------------------------------------------
//
// Everything below re-derives the cost semantics from the paper's
// equations, on purpose without calling costmodel's evaluation methods.

// processing is Equation 1: t^C = (α + (1-α)/p)·τ.
func processing(alpha, tau, p float64) float64 {
	return (alpha + (1-alpha)/p) * tau
}

// transfer evaluates one array's (send, net, recv) costs from the
// equations: Equation 2 for 1D, Equation 3 for 2D, and the half-integer
// message-count analysis for the grid kinds (internal/costmodel/grid.go
// derivation, re-stated here independently).
func transfer(tp costmodel.TransferParams, kind mdg.TransferKind, bytes int, pi, pj float64) (send, net, recv float64) {
	l := float64(bytes)
	switch kind {
	case mdg.Transfer1D:
		mx := pi
		if pj > mx {
			mx = pj
		}
		send = mx/pi*tp.Tss + l/pi*tp.Tps
		net = l / mx * tp.Tn
		recv = mx/pj*tp.Tsr + l/pj*tp.Tpr
	case mdg.Transfer2D:
		send = pj*tp.Tss + l/pi*tp.Tps
		net = l / (pi * pj) * tp.Tn
		recv = pi*tp.Tsr + l/pj*tp.Tpr
	case mdg.TransferG2L:
		send = math.Max(1, pj/math.Sqrt(pi))*tp.Tss + l/pi*tp.Tps
		net = l / math.Max(pi, pj) * tp.Tn
		recv = math.Max(math.Sqrt(pi), pi/pj)*tp.Tsr + l/pj*tp.Tpr
	case mdg.TransferL2G:
		send = math.Max(math.Sqrt(pj), pj/pi)*tp.Tss + l/pi*tp.Tps
		net = l / math.Max(pi, pj) * tp.Tn
		recv = math.Max(1, pi/math.Sqrt(pj))*tp.Tsr + l/pj*tp.Tpr
	case mdg.TransferG2G:
		mx := math.Max(pi, pj)
		send = mx/pi*tp.Tss + l/pi*tp.Tps
		net = l / mx * tp.Tn
		recv = mx/pj*tp.Tsr + l/pj*tp.Tpr
	}
	return send, net, recv
}

// edgeCosts sums transfer over every array on the edge.
func edgeCosts(tp costmodel.TransferParams, e mdg.Edge, pi, pj float64) (send, net, recv float64) {
	for _, tr := range e.Transfers {
		s, n, r := transfer(tp, tr.Kind, tr.Bytes, pi, pj)
		send += s
		net += n
		recv += r
	}
	return send, net, recv
}

// nodeWeight is T_i of Section 2: receive costs from all predecessors,
// Equation-1 processing, send costs to all successors. It walks g.Edges
// directly instead of the graph's adjacency cache.
func nodeWeight(g *mdg.Graph, tp costmodel.TransferParams, i mdg.NodeID, p []float64) float64 {
	w := processing(g.Nodes[i].Alpha, g.Nodes[i].Tau, p[i])
	for _, e := range g.Edges {
		if e.To == i {
			_, _, r := edgeCosts(tp, e, p[e.From], p[i])
			w += r
		}
		if e.From == i {
			s, _, _ := edgeCosts(tp, e, p[i], p[e.To])
			w += s
		}
	}
	return w
}

// topoDFS returns a topological order by iterative depth-first postorder —
// a different algorithm from mdg's Kahn implementation. Returns nil on a
// cycle.
func topoDFS(g *mdg.Graph) []mdg.NodeID {
	n := g.NumNodes()
	succs := make([][]mdg.NodeID, n)
	for _, e := range g.Edges {
		if int(e.From) < 0 || int(e.From) >= n || int(e.To) < 0 || int(e.To) >= n {
			return nil
		}
		succs[e.From] = append(succs[e.From], e.To)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, n)
	order := make([]mdg.NodeID, 0, n)
	type frame struct {
		v    mdg.NodeID
		next int
	}
	for root := 0; root < n; root++ {
		if color[root] != white {
			continue
		}
		stack := []frame{{v: mdg.NodeID(root)}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(succs[f.v]) {
				s := succs[f.v][f.next]
				f.next++
				switch color[s] {
				case white:
					color[s] = gray
					stack = append(stack, frame{v: s})
				case gray:
					return nil // back edge: cycle
				}
				continue
			}
			color[f.v] = black
			order = append(order, f.v)
			stack = stack[:len(stack)-1]
		}
	}
	// Postorder is reverse-topological; reverse in place.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// phiEval re-derives Φ = max(A_p, C_p) at allocation p: A_p as the
// processor-time area (1/procs)·Σ T_i·p_i, C_p by longest-path relaxation
// over the DFS topological order. ok is false on a cyclic graph.
func phiEval(g *mdg.Graph, tp costmodel.TransferParams, p []float64, procs int) (phi, ap, cp float64, ok bool) {
	order := topoDFS(g)
	if order == nil {
		return 0, 0, 0, false
	}
	n := g.NumNodes()
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = nodeWeight(g, tp, mdg.NodeID(i), p)
		ap += w[i] * p[i]
	}
	ap /= float64(procs)
	y := make([]float64, n)
	for _, v := range order {
		est := 0.0
		for _, e := range g.Edges {
			if e.To != v {
				continue
			}
			_, net, _ := edgeCosts(tp, e, p[e.From], p[v])
			if t := y[e.From] + net; t > est {
				est = t
			}
		}
		y[v] = est + w[v]
		if y[v] > cp {
			cp = y[v]
		}
	}
	return math.Max(ap, cp), ap, cp, true
}
