package oracle

import (
	"testing"

	"paradigm/internal/alloc"
)

// randomAlloc draws a feasible continuous allocation in [1, procs]^n.
func randomAlloc(seed uint64, n, procs int) []float64 {
	r := newRNG(seed)
	p := make([]float64, n)
	for i := range p {
		p[i] = 1 + r.float()*float64(procs-1)
	}
	return p
}

// --- Checker-level relations (exact, fixed allocation) ---------------------

func TestMetamorphicCostScaling(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		g := RandomGraph(seed, GenOptions{GridKinds: seed%2 == 0})
		p := randomAlloc(seed+1000, g.NumNodes(), 8)
		for _, k := range []float64{0.25, 2, 1000} {
			if err := CheckCostScaling(g, cm5Fit, 8, p, k, Options{}); err != nil {
				t.Fatalf("seed %d, k = %v: %v", seed, k, err)
			}
		}
	}
}

func TestMetamorphicProcMonotonicity(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		g := RandomGraph(seed, GenOptions{})
		p := randomAlloc(seed+2000, g.NumNodes(), 4)
		if err := CheckProcMonotonicity(g, cm5Fit, p, 4, 8, Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckProcMonotonicity(g, cm5Fit, p, 4, 64, Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestMetamorphicRelabelInvariance(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		g := RandomGraph(seed, GenOptions{GridKinds: seed%3 == 0})
		n := g.NumNodes()
		p := randomAlloc(seed+3000, n, 8)
		perm := RandomPerm(seed+4000, n)
		if err := CheckRelabelInvariance(g, cm5Fit, 8, p, perm, Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestMetamorphicRelabelExhaustiveBracket: the exhaustive [Best, Worst]
// makespan bracket is a set over linear extensions, so it cannot depend on
// node labels. (The PSA itself tie-breaks on node id, so its single
// makespan is NOT exactly relabel-invariant — the bracket is.)
func TestMetamorphicRelabelExhaustiveBracket(t *testing.T) {
	o := Options{}.withDefaults()
	for seed := uint64(1); seed <= 30; seed++ {
		g := RandomGraph(seed, GenOptions{})
		if _, _, err := g.EnsureStartStop(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		n := g.NumNodes()
		al := make([]int, n)
		r := newRNG(seed + 5000)
		for i := range al {
			al[i] = 1 << r.intn(4) // 1, 2, 4 or 8
		}
		ex0, err := ExhaustiveSchedules(g, cm5Fit, al, 8, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		perm := RandomPerm(seed+6000, n)
		rg, err := g.Relabel(perm)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ex1, err := ExhaustiveSchedules(rg, cm5Fit, PermuteInts(al, perm), 8, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ex0.Count != ex1.Count {
			t.Fatalf("seed %d: extension count changed under relabeling: %d -> %d", seed, ex0.Count, ex1.Count)
		}
		if !o.close(ex0.Best, ex1.Best) || !o.close(ex0.Worst, ex1.Worst) {
			t.Fatalf("seed %d: bracket moved under relabeling: [%g, %g] -> [%g, %g]",
				seed, ex0.Best, ex0.Worst, ex1.Best, ex1.Worst)
		}
	}
}

// --- Solver-level relations (alloc.Solve end to end) -----------------------

// TestMetamorphicSolverTauScaling: scaling every τ_i and every transfer
// coefficient by k makes the objective exactly k-homogeneous, so the
// solver's optimal Φ must scale by k too. The anneal trajectory is not
// bit-identical across scales, so a 1% band absorbs solver noise.
func TestMetamorphicSolverTauScaling(t *testing.T) {
	const k = 64.0
	for seed := uint64(1); seed <= 20; seed++ {
		g := RandomGraph(seed, GenOptions{})
		r0, err := alloc.Solve(g, cm5Fit, 8, alloc.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r1, err := alloc.Solve(ScaleTau(g, k), ScaleModel(cm5Fit, k), 8, alloc.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ratio := r1.Phi / (k * r0.Phi); ratio < 0.99 || ratio > 1.01 {
			t.Errorf("seed %d: Φ did not scale with τ: %g vs %g·%g (ratio %g)",
				seed, r1.Phi, k, r0.Phi, ratio)
		}
	}
}

// TestMetamorphicSolverProcMonotonicity: a larger machine can always
// emulate a smaller one, so the solved optimum must not get worse when
// processors are added.
func TestMetamorphicSolverProcMonotonicity(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		g := RandomGraph(seed, GenOptions{})
		r4, err := alloc.Solve(g, cm5Fit, 4, alloc.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r16, err := alloc.Solve(g, cm5Fit, 16, alloc.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r16.Phi > r4.Phi*1.01 {
			t.Errorf("seed %d: Φ rose from %g to %g when the machine grew 4 -> 16",
				seed, r4.Phi, r16.Phi)
		}
	}
}
