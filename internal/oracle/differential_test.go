package oracle

import (
	"testing"

	"paradigm/internal/alloc"
	"paradigm/internal/mdg"
	"paradigm/internal/sched"
)

// The differential suites pit the production solvers against the exact
// references on a population of generated small MDGs. The brute-force grid
// evaluates only feasible points of the continuous program, so its Φ upper-
// bounds the true optimum: a convex solver claiming global optimality must
// come in at or below it (to within grid/anneal resolution, 1%). The
// exhaustive scheduler brackets every linear extension, so the PSA — one
// particular linear extension under the same placement rule — must land
// inside [Best, Worst].
//
// The model is the CM-5 fit with Tn = 0: the allocator's 1D net term is a
// convex upper bound on the exact cost, and comparing against the exact
// oracle is only apples-to-apples when that term vanishes.

const diffSeeds = 200

func TestDifferentialAllocVsBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("differential population test")
	}
	const procs = 8
	worst := 0.0
	for seed := uint64(1); seed <= diffSeeds; seed++ {
		g := RandomGraph(seed, GenOptions{})
		r, err := alloc.Solve(g, cm5Fit, procs, alloc.Options{})
		if err != nil {
			t.Fatalf("seed %d: solve: %v", seed, err)
		}
		if err := CheckAllocation(g, cm5Fit, procs, r, Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bf, err := BruteForceAlloc(g, cm5Fit, procs, BruteForceOptions{})
		if err != nil {
			t.Fatalf("seed %d: brute force: %v", seed, err)
		}
		if r.Phi > bf.Phi*1.01 {
			t.Errorf("seed %d: Solve Φ = %g exceeds brute-force optimum %g by more than 1%% (ratio %g, n = %d)",
				seed, r.Phi, bf.Phi, r.Phi/bf.Phi, g.NumNodes())
		}
		if ratio := r.Phi / bf.Phi; ratio > worst {
			worst = ratio
		}
	}
	t.Logf("%d graphs, worst Solve/BruteForce Φ ratio = %.6f", diffSeeds, worst)
}

func TestDifferentialPSAVsExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("differential population test")
	}
	const procs = 8
	bracketed := 0
	for seed := uint64(1); seed <= diffSeeds; seed++ {
		g := RandomGraph(seed, GenOptions{})
		if _, _, err := g.EnsureStartStop(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r, err := alloc.Solve(g, cm5Fit, procs, alloc.Options{})
		if err != nil {
			t.Fatalf("seed %d: solve: %v", seed, err)
		}
		s, err := sched.Run(g, cm5Fit, r.P, procs, sched.Options{})
		if err != nil {
			t.Fatalf("seed %d: sched: %v", seed, err)
		}
		if err := CheckSchedule(g, cm5Fit, s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ex, err := ExhaustiveSchedules(g, cm5Fit, s.Alloc, procs, 0)
		if err != nil {
			t.Fatalf("seed %d: exhaustive: %v", seed, err)
		}
		const tol = 1e-9
		if s.Makespan > ex.Worst*(1+tol) {
			t.Errorf("seed %d: PSA makespan %g exceeds exhaustive worst-case %g over %d extensions",
				seed, s.Makespan, ex.Worst, ex.Count)
		}
		if s.Makespan < ex.Best*(1-tol) {
			t.Errorf("seed %d: PSA makespan %g beats exhaustive best %g — reference placement diverged",
				seed, s.Makespan, ex.Best)
		}
		bracketed++
	}
	t.Logf("%d schedules bracketed by their exhaustive references", bracketed)
}

// TestBruteForceRefinementMonotone checks the reference against itself:
// refinement rounds may only improve on the coarse grid.
func TestBruteForceRefinementMonotone(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		g := RandomGraph(seed, GenOptions{})
		coarse, err := BruteForceAlloc(g, cm5Fit, 8, BruteForceOptions{RefineRounds: -1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fine, err := BruteForceAlloc(g, cm5Fit, 8, BruteForceOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fine.Phi > coarse.Phi {
			t.Errorf("seed %d: refinement worsened Φ: %g -> %g", seed, coarse.Phi, fine.Phi)
		}
	}
}

func TestExhaustiveSchedulesOverflow(t *testing.T) {
	g := RandomGraph(2, GenOptions{})
	if _, _, err := g.EnsureStartStop(); err != nil {
		t.Fatal(err)
	}
	al := make([]int, g.NumNodes())
	for i := range al {
		al[i] = 1
	}
	if _, err := ExhaustiveSchedules(g, cm5Fit, al, 4, 1); err == nil {
		t.Fatal("limit 1 must overflow on any graph with > 1 extension")
	}
}

func TestBruteForceRejectsLargeGraph(t *testing.T) {
	var g mdg.Graph
	for i := 0; i < 7; i++ {
		g.AddNode(mdg.Node{Name: string(rune('a' + i)), Alpha: 0.5, Tau: 1})
	}
	if _, err := BruteForceAlloc(&g, cm5Fit, 8, BruteForceOptions{}); err == nil {
		t.Fatal("brute force accepted a graph above its tractability bound")
	}
}
