// Package admission implements the multi-tenant admission surface of
// the scheduling service (DESIGN.md §15): a strictly validated JSON
// policy configuration, per-tenant token-bucket rate limiting, and a
// bounded priority queue with pluggable ordering disciplines.
//
// The policy config declares SLO classes (each with an integer
// priority), per-tenant buckets (rate/burst) bound to a class, and the
// queue discipline: "fcfs" (arrival order), "priority-fcfs" (class
// priority, arrival order within a class), or "sjf" (shortest predicted
// job first by Φ, arrival order among ties). Decoding is strict —
// unknown fields, unknown policies, non-finite or negative rates, and
// tenants naming undeclared classes all fail with errs.ErrBadPolicy — so
// a service refuses to boot over a config it cannot honor rather than
// admitting traffic under a misread policy.
package admission

import (
	"bytes"
	"container/heap"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"paradigm/internal/errs"
)

// Policy is the queue ordering discipline.
type Policy uint8

const (
	// FCFS serves jobs in arrival order.
	FCFS Policy = iota
	// PriorityFCFS serves the highest class priority first, arrival
	// order within a class.
	PriorityFCFS
	// SJF serves the lowest predicted Φ first (shortest job first),
	// arrival order among ties.
	SJF
)

// String renders the policy's config spelling.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case PriorityFCFS:
		return "priority-fcfs"
	case SJF:
		return "sjf"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy maps a config spelling to its Policy. The empty string
// selects FCFS.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "fcfs":
		return FCFS, nil
	case "priority-fcfs":
		return PriorityFCFS, nil
	case "sjf":
		return SJF, nil
	default:
		return 0, fmt.Errorf("admission: %w: unknown queue policy %q (want fcfs, priority-fcfs, or sjf)", errs.ErrBadPolicy, s)
	}
}

// Class is one SLO class.
type Class struct {
	// Priority orders classes under priority-fcfs: higher is served
	// first.
	Priority int `json:"priority"`
}

// Tenant is one tenant's admission contract.
type Tenant struct {
	// Class names a declared SLO class; empty means priority 0.
	Class string `json:"class,omitempty"`
	// Rate is the sustained admission rate in jobs/second; 0 disables
	// rate limiting for the tenant.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket capacity (peak back-to-back admissions);
	// 0 defaults to max(1, Rate).
	Burst float64 `json:"burst,omitempty"`
}

// Config is the service admission policy.
type Config struct {
	// QueuePolicy selects the discipline: "fcfs" (default),
	// "priority-fcfs", or "sjf".
	QueuePolicy string `json:"queue_policy,omitempty"`
	// Classes declares the SLO classes tenants may reference.
	Classes map[string]Class `json:"classes,omitempty"`
	// Tenants maps tenant names to their admission contracts.
	Tenants map[string]Tenant `json:"tenants,omitempty"`
	// Default, when non-nil, is the contract applied to tenants not
	// listed in Tenants; nil admits unknown tenants unlimited at
	// priority 0.
	Default *Tenant `json:"default,omitempty"`
}

// Decode strictly parses and validates a policy config. Every failure
// wraps errs.ErrBadPolicy.
func Decode(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("admission: %w: %v", errs.ErrBadPolicy, err)
	}
	// Exactly one JSON value: trailing garbage is a config error, not
	// padding.
	if dec.More() {
		return Config{}, fmt.Errorf("admission: %w: trailing data after policy object", errs.ErrBadPolicy)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate checks the semantic constraints Decode enforces.
func (c *Config) Validate() error {
	if _, err := ParsePolicy(c.QueuePolicy); err != nil {
		return err
	}
	checkTenant := func(name string, t Tenant) error {
		if !finite(t.Rate) || t.Rate < 0 {
			return fmt.Errorf("admission: %w: tenant %q rate %v must be finite and >= 0", errs.ErrBadPolicy, name, t.Rate)
		}
		if !finite(t.Burst) || t.Burst < 0 {
			return fmt.Errorf("admission: %w: tenant %q burst %v must be finite and >= 0", errs.ErrBadPolicy, name, t.Burst)
		}
		if t.Class != "" {
			if _, ok := c.Classes[t.Class]; !ok {
				return fmt.Errorf("admission: %w: tenant %q names undeclared class %q", errs.ErrBadPolicy, name, t.Class)
			}
		}
		return nil
	}
	// Deterministic error selection: validate in sorted tenant order.
	names := make([]string, 0, len(c.Tenants))
	for name := range c.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name == "" {
			return fmt.Errorf("admission: %w: empty tenant name", errs.ErrBadPolicy)
		}
		if err := checkTenant(name, c.Tenants[name]); err != nil {
			return err
		}
	}
	if c.Default != nil {
		if err := checkTenant("(default)", *c.Default); err != nil {
			return err
		}
	}
	return nil
}

// TenantContract resolves the contract for a tenant name: its explicit
// entry, else the default, else unlimited at priority 0.
func (c *Config) TenantContract(name string) Tenant {
	if t, ok := c.Tenants[name]; ok {
		return t
	}
	if c.Default != nil {
		return *c.Default
	}
	return Tenant{}
}

// PriorityOf resolves a tenant contract's class priority.
func (c *Config) PriorityOf(t Tenant) int {
	if t.Class == "" {
		return 0
	}
	return c.Classes[t.Class].Priority
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Bucket is a token bucket: capacity Burst, refilled at Rate tokens per
// second. Rate <= 0 disables limiting (Allow always succeeds). Safe for
// concurrent use.
type Bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewBucket returns a full bucket. A nil now uses the wall clock; tests
// inject a fake clock.
func NewBucket(rate, burst float64, now func() time.Time) *Bucket {
	if now == nil {
		now = time.Now
	}
	if burst <= 0 {
		burst = math.Max(1, rate)
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// Allow takes one token, reporting whether the admission is within the
// tenant's contract.
func (b *Bucket) Allow() bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = t
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Item is one queued admission.
type Item struct {
	// Payload is the opaque job handle.
	Payload any
	// Priority orders under PriorityFCFS (higher first).
	Priority int
	// Phi orders under SJF (lower first): the predicted job cost.
	Phi float64
	// seq is the arrival tiebreak, assigned by Push.
	seq uint64
}

// Queue is a bounded, blocking priority queue over one of the Policy
// disciplines. Safe for concurrent use.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	policy Policy
	cap    int
	h      itemHeap
	closed bool
	seq    uint64
}

// NewQueue returns an empty queue bounded at capacity items (minimum 1).
func NewQueue(policy Policy, capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{policy: policy, cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	q.h.policy = policy
	return q
}

// Push enqueues the item, reporting false when the queue is full or
// closed (the caller sheds load or refuses the submit).
func (q *Queue) Push(it Item) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.h.items) >= q.cap {
		return false
	}
	q.seq++
	it.seq = q.seq
	heap.Push(&q.h, it)
	q.cond.Signal()
	return true
}

// Pop blocks until an item is available or the queue is closed and
// drained; ok is false only in the latter case.
func (q *Queue) Pop() (it Item, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.h.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.h.items) == 0 {
		return Item{}, false
	}
	return heap.Pop(&q.h).(Item), true
}

// TryPop dequeues without blocking; ok is false when the queue is empty.
func (q *Queue) TryPop() (it Item, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.h.items) == 0 {
		return Item{}, false
	}
	return heap.Pop(&q.h).(Item), true
}

// Len reports the number of queued items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h.items)
}

// Grow raises the capacity bound by n (recovered-backlog headroom).
func (q *Queue) Grow(n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n > 0 {
		q.cap += n
	}
}

// Close wakes every blocked Pop once the queue drains; subsequent Push
// calls are refused.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// itemHeap orders items under the queue's policy with the arrival seq as
// the final tiebreak, so every discipline is a strict total order and
// dequeue order is deterministic for a given arrival order.
type itemHeap struct {
	policy Policy
	items  []Item
}

func (h *itemHeap) Len() int { return len(h.items) }

func (h *itemHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	switch h.policy {
	case PriorityFCFS:
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
	case SJF:
		if a.Phi != b.Phi {
			return a.Phi < b.Phi
		}
	}
	return a.seq < b.seq
}

func (h *itemHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *itemHeap) Push(x any) { h.items = append(h.items, x.(Item)) }

func (h *itemHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
