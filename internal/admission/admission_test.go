package admission

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"paradigm/internal/errs"
)

const goodConfig = `{
  "queue_policy": "priority-fcfs",
  "classes": {"gold": {"priority": 2}, "free": {"priority": 0}},
  "tenants": {
    "acme": {"class": "gold", "rate": 10, "burst": 20},
    "hobby": {"class": "free", "rate": 1}
  },
  "default": {"class": "free", "rate": 0.5, "burst": 1}
}`

func TestDecodeGood(t *testing.T) {
	c, err := Decode([]byte(goodConfig))
	if err != nil {
		t.Fatal(err)
	}
	if c.QueuePolicy != "priority-fcfs" {
		t.Fatalf("policy %q", c.QueuePolicy)
	}
	acme := c.TenantContract("acme")
	if acme.Rate != 10 || acme.Burst != 20 || c.PriorityOf(acme) != 2 {
		t.Fatalf("acme contract %+v priority %d", acme, c.PriorityOf(acme))
	}
	// Unlisted tenant falls to the default contract.
	other := c.TenantContract("someone")
	if other.Rate != 0.5 || c.PriorityOf(other) != 0 {
		t.Fatalf("default contract %+v", other)
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := map[string]string{
		"malformed":        `{`,
		"unknown field":    `{"queue_policy": "fcfs", "bogus": 1}`,
		"unknown policy":   `{"queue_policy": "lifo"}`,
		"negative rate":    `{"tenants": {"a": {"rate": -1}}}`,
		"negative burst":   `{"tenants": {"a": {"burst": -2}}}`,
		"undeclared class": `{"tenants": {"a": {"class": "gold"}}}`,
		"bad default":      `{"default": {"rate": -3}}`,
		"empty tenant":     `{"tenants": {"": {"rate": 1}}}`,
		"trailing data":    `{"queue_policy": "fcfs"} {"queue_policy": "sjf"}`,
		"non-object":       `[1, 2]`,
	}
	for name, cfg := range cases {
		if _, err := Decode([]byte(cfg)); !errors.Is(err, errs.ErrBadPolicy) {
			t.Errorf("%s: error %v, want ErrBadPolicy", name, err)
		}
	}
	// Empty policy object is valid: unlimited FCFS.
	if _, err := Decode([]byte(`{}`)); err != nil {
		t.Errorf("empty object rejected: %v", err)
	}
}

func TestBucketRefill(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	b := NewBucket(2, 2, now) // 2 jobs/s, burst 2

	if !b.Allow() || !b.Allow() {
		t.Fatal("burst capacity not honored")
	}
	if b.Allow() {
		t.Fatal("allowed past burst with no refill")
	}
	clock = clock.Add(500 * time.Millisecond) // +1 token
	if !b.Allow() {
		t.Fatal("refill not credited")
	}
	if b.Allow() {
		t.Fatal("over-credited refill")
	}
	clock = clock.Add(time.Hour) // refill clamps at burst
	if !b.Allow() || !b.Allow() {
		t.Fatal("clamped refill lost tokens")
	}
	if b.Allow() {
		t.Fatal("refill exceeded burst")
	}
}

func TestBucketUnlimited(t *testing.T) {
	b := NewBucket(0, 0, nil)
	for i := 0; i < 1000; i++ {
		if !b.Allow() {
			t.Fatal("unlimited bucket refused")
		}
	}
}

func TestQueuePolicies(t *testing.T) {
	pop := func(q *Queue, n int) []string {
		var out []string
		for i := 0; i < n; i++ {
			it, ok := q.TryPop()
			if !ok {
				t.Fatal("queue empty early")
			}
			out = append(out, it.Payload.(string))
		}
		return out
	}
	eq := func(got []string, want ...string) {
		t.Helper()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("order %v, want %v", got, want)
		}
	}

	q := NewQueue(FCFS, 8)
	q.Push(Item{Payload: "a", Priority: 9})
	q.Push(Item{Payload: "b", Priority: 0})
	q.Push(Item{Payload: "c", Priority: 5})
	eq(pop(q, 3), "a", "b", "c")

	q = NewQueue(PriorityFCFS, 8)
	q.Push(Item{Payload: "low1", Priority: 0})
	q.Push(Item{Payload: "high", Priority: 2})
	q.Push(Item{Payload: "low2", Priority: 0})
	eq(pop(q, 3), "high", "low1", "low2")

	q = NewQueue(SJF, 8)
	q.Push(Item{Payload: "slow", Phi: 9.5})
	q.Push(Item{Payload: "fast", Phi: 0.25})
	q.Push(Item{Payload: "mid", Phi: 3})
	q.Push(Item{Payload: "tie", Phi: 0.25})
	eq(pop(q, 4), "fast", "tie", "mid", "slow")
}

func TestQueueBoundAndClose(t *testing.T) {
	q := NewQueue(FCFS, 2)
	if !q.Push(Item{Payload: 1}) || !q.Push(Item{Payload: 2}) {
		t.Fatal("push within capacity refused")
	}
	if q.Push(Item{Payload: 3}) {
		t.Fatal("push past capacity accepted")
	}
	q.Grow(1)
	if !q.Push(Item{Payload: 3}) {
		t.Fatal("push refused after Grow")
	}
	q.Close()
	if q.Push(Item{Payload: 4}) {
		t.Fatal("push accepted after Close")
	}
	// Close drains: queued items still pop, then ok=false.
	for i := 1; i <= 3; i++ {
		it, ok := q.Pop()
		if !ok || it.Payload.(int) != i {
			t.Fatalf("drain pop %d: %v %v", i, it.Payload, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop after drain reported ok")
	}
}

func TestQueueBlockingPop(t *testing.T) {
	q := NewQueue(FCFS, 4)
	got := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		it, ok := q.Pop()
		if !ok {
			t.Error("blocked pop failed")
			got <- -1
			return
		}
		got <- it.Payload.(int)
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(Item{Payload: 42})
	if v := <-got; v != 42 {
		t.Fatalf("got %d", v)
	}
	wg.Wait()

	// Close releases blocked workers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := q.Pop(); ok {
			t.Error("pop after close-empty reported ok")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	<-done
}
