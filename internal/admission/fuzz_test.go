package admission

import (
	"errors"
	"testing"

	"paradigm/internal/errs"
)

// policySeeds are representative config images: valid, empty, and each
// rejection class the strict decoder enforces.
var policySeeds = []string{
	goodConfig,
	`{}`,
	`{"queue_policy": "sjf"}`,
	`{"queue_policy": "lifo"}`,
	`{"queue_policy": "fcfs", "bogus": true}`,
	`{"tenants": {"a": {"rate": -1}}}`,
	`{"tenants": {"a": {"class": "missing"}}}`,
	`{"tenants": {"a": {"rate": 1e308, "burst": 1e308}}}`,
	`{"default": {"class": "free", "rate": 2}, "classes": {"free": {"priority": -3}}}`,
	`{`,
	`[1]`,
	`null`,
	`{"queue_policy": "fcfs"} garbage`,
}

// FuzzPolicyConfigDecode asserts the strict policy decoder is total over
// arbitrary bytes: it never panics, every rejection is typed
// errs.ErrBadPolicy, and every accepted config re-validates and resolves
// tenant contracts without panicking (the invariants the service relies
// on at boot).
func FuzzPolicyConfigDecode(f *testing.F) {
	for _, seed := range policySeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			if !errors.Is(err, errs.ErrBadPolicy) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted configs are internally consistent: validation is
		// idempotent, the policy parses, and contract resolution is
		// total (including for tenants the config never names).
		if verr := c.Validate(); verr != nil {
			t.Fatalf("accepted config failed re-validation: %v", verr)
		}
		if _, perr := ParsePolicy(c.QueuePolicy); perr != nil {
			t.Fatalf("accepted config has unparseable policy: %v", perr)
		}
		for name := range c.Tenants {
			ct := c.TenantContract(name)
			_ = c.PriorityOf(ct)
		}
		_ = c.PriorityOf(c.TenantContract("never-named-tenant"))
	})
}

// TestFuzzSeedsDecode runs the committed seed shapes as a plain subtest
// so `go test` exercises them without the fuzz engine.
func TestFuzzSeedsDecode(t *testing.T) {
	for i, seed := range policySeeds {
		c, err := Decode([]byte(seed))
		if err != nil {
			if !errors.Is(err, errs.ErrBadPolicy) {
				t.Fatalf("seed %d: untyped error: %v", i, err)
			}
			continue
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("seed %d: accepted config failed re-validation: %v", i, verr)
		}
	}
}
