package resil

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"paradigm/internal/errs"
)

// The decorrelated-jitter sequence must be deterministic under a seed
// and bounded by [base, cap].
func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond, Seed: 42}
	a, b := NewBackoff(p), NewBackoff(p)
	var prev time.Duration
	for i := 0; i < 50; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < p.BaseDelay || da > p.MaxDelay {
			t.Fatalf("step %d: delay %v outside [%v, %v]", i, da, p.BaseDelay, p.MaxDelay)
		}
		prev = da
	}
	if prev == 0 {
		t.Fatal("no delays generated")
	}
	// A different seed must give a different trajectory (decorrelation).
	c := NewBackoff(RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond, Seed: 43})
	c.Next() // first delay is always base
	a2 := NewBackoff(p)
	a2.Next()
	same := true
	for i := 0; i < 10; i++ {
		if a2.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(RetryPolicy{})
	if d := b.Next(); d != 10*time.Millisecond {
		t.Fatalf("first default delay = %v, want 10ms", d)
	}
	for i := 0; i < 100; i++ {
		if d := b.Next(); d > 2*time.Second {
			t.Fatalf("default cap exceeded: %v", d)
		}
	}
}

func TestSleepHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on cancelled ctx = %v", err)
	}
	var got time.Duration
	err := Sleep(context.Background(), 5*time.Second, func(_ context.Context, d time.Duration) error {
		got = d
		return nil
	})
	if err != nil || got != 5*time.Second {
		t.Fatalf("custom sleeper: err=%v d=%v", err, got)
	}
}

func TestClassify(t *testing.T) {
	bg := context.Background()
	cancelled, cancel := context.WithCancel(bg)
	cancel()
	cases := []struct {
		name   string
		parent context.Context
		err    error
		want   Class
	}{
		{"infeasible", bg, fmt.Errorf("x: %w", errs.ErrInfeasible), Fatal},
		{"bad-graph", bg, fmt.Errorf("x: %w", errs.ErrBadGraph), Fatal},
		{"unsupported-transfer", bg, fmt.Errorf("x: %w", errs.ErrUnsupportedTransfer), Fatal},
		{"parent-cancelled", cancelled, context.Canceled, Fatal},
		{"parent-cancelled-any-error", cancelled, fmt.Errorf("solver broke"), Fatal},
		{"stage-deadline", bg, fmt.Errorf("x: %w", context.DeadlineExceeded), Budget},
		{"solver-breakdown", bg, fmt.Errorf("line search failed"), Transient},
	}
	for _, tc := range cases {
		if got := Classify(tc.parent, tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// clock is a manual test clock.
type clock struct{ now time.Time }

func (c *clock) Now() time.Time { return c.now }

func TestBreakerStateMachine(t *testing.T) {
	ck := &clock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerOptions{Threshold: 3, Cooldown: time.Minute, Now: ck.Now})

	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("fresh breaker not closed/allowing")
	}
	// Two failures: still closed. Third: open.
	b.Failure()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatalf("state after 2 failures = %s", b.State())
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Fatalf("state after 3 failures = %s", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before cooldown")
	}
	// Cooldown elapses: exactly one half-open probe is admitted.
	ck.now = ck.now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("half-open probe refused after cooldown")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	// Probe fails: re-open, cooldown restarts.
	b.Failure()
	if b.State() != StateOpen || b.Allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	// Next probe succeeds: closed, counting resets.
	ck.now = ck.now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("probe refused after second cooldown")
	}
	b.Success()
	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
	// The consecutive counter was reset: two failures stay closed.
	b.Failure()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatal("failure count survived the reset")
	}
}

// Stats exposes the health surface services report: the effective state
// (cooldown-aware, like State) plus the consecutive-failure count.
func TestBreakerStats(t *testing.T) {
	ck := &clock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerOptions{Threshold: 2, Cooldown: time.Minute, Now: ck.Now})

	if state, n := b.Stats(); state != StateClosed || n != 0 {
		t.Fatalf("fresh Stats = %s/%d, want closed/0", state, n)
	}
	b.Failure()
	if state, n := b.Stats(); state != StateClosed || n != 1 {
		t.Fatalf("Stats after 1 failure = %s/%d, want closed/1", state, n)
	}
	b.Failure()
	if state, n := b.Stats(); state != StateOpen || n != 2 {
		t.Fatalf("Stats after trip = %s/%d, want open/2", state, n)
	}
	// Cooldown elapsed: Stats reports half-open without mutating the
	// breaker (like State, unlike Allow).
	ck.now = ck.now.Add(2 * time.Minute)
	if state, _ := b.Stats(); state != StateHalfOpen {
		t.Fatalf("Stats after cooldown = %s, want half-open", state)
	}
	if state, _ := b.Stats(); state != StateHalfOpen {
		t.Fatal("Stats must be read-only: second read differed")
	}
	b.Success()
	if state, n := b.Stats(); state != StateClosed || n != 0 {
		t.Fatalf("Stats after close = %s/%d, want closed/0", state, n)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(BreakerOptions{Threshold: 2, Cooldown: time.Minute})
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatal("interleaved successes should keep the breaker closed")
	}
}
