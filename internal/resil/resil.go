// Package resil is the budget-governance layer of the pipeline: stage
// deadline budgets, bounded retry with decorrelated-jitter backoff, and
// a circuit breaker — the three mechanisms that keep a wedged solver
// from holding a caller forever while preserving the pipeline's typed
// error semantics.
//
// Error-classification contract. None of these mechanisms may mask a
// *semantic* failure: ErrInfeasible and ErrBadGraph mean the problem is
// wrong, not slow, and retrying or degrading on them would hide a real
// bug; a parent-context cancellation means the caller gave up and must
// see its own error. Only *budget* failures — a stage deadline expiring
// while the parent context is still live — count toward retry and
// breaker state. Classify encodes this triage and the pipeline calls it
// before every retry/breaker decision.
//
// Determinism. Backoff jitter draws from the same seeded splitmix64
// stream the fault injector uses (fault.NewRNG), and the sleep itself is
// injectable, so tests replay an exact retry trajectory with zero wall
// clock.
package resil

import (
	"context"
	"errors"
	"sync"
	"time"

	"paradigm/internal/errs"
	"paradigm/internal/fault"
)

// RetryPolicy bounds the retry loop around a budget-governed stage.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Values <= 1 disable retry.
	MaxAttempts int
	// BaseDelay seeds the backoff (default 10ms); MaxDelay caps it
	// (default 2s).
	BaseDelay, MaxDelay time.Duration
	// Seed drives the decorrelated jitter deterministically.
	Seed uint64
	// Sleep replaces the context-aware timer sleep (tests pass a
	// recorder; nil uses the real clock).
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseDelay > 0 {
		return p.BaseDelay
	}
	return 10 * time.Millisecond
}

func (p RetryPolicy) cap() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return 2 * time.Second
}

// Backoff generates the decorrelated-jitter delay sequence
//
//	d_0 = base,  d_n = min(cap, base + U[0,1) · (3·d_{n-1} − base))
//
// (the "decorrelated jitter" recurrence): each delay is drawn relative
// to the previous one rather than the attempt number, which spreads
// synchronized retriers apart while staying within [base, cap].
type Backoff struct {
	policy RetryPolicy
	prev   time.Duration
	rng    *fault.RNG
}

// NewBackoff starts a delay sequence under p, seeded by p.Seed.
func NewBackoff(p RetryPolicy) *Backoff {
	return &Backoff{policy: p, rng: fault.NewRNG(p.Seed)}
}

// Next returns the following delay in the sequence.
func (b *Backoff) Next() time.Duration {
	base, ceiling := b.policy.base(), b.policy.cap()
	if b.prev == 0 {
		b.prev = base
		return base
	}
	span := 3*b.prev - base
	if span < 0 {
		span = 0
	}
	d := base + time.Duration(b.rng.Float64()*float64(span))
	if d > ceiling {
		d = ceiling
	}
	b.prev = d
	return d
}

// Sleep waits for d or until ctx is done, whichever first, honouring a
// custom sleeper from the policy.
func Sleep(ctx context.Context, d time.Duration, custom func(context.Context, time.Duration) error) error {
	if custom != nil {
		return custom(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Class is the retry/breaker triage of a stage failure.
type Class int

const (
	// Fatal failures must surface unchanged: semantic errors
	// (ErrInfeasible, ErrBadGraph, ErrUnsupportedTransfer) and
	// parent-context cancellation. Retrying would mask a real bug or a
	// caller that already gave up.
	Fatal Class = iota
	// Budget failures are stage-deadline expiries with a live parent:
	// the stage was slow, not wrong. These drive retry and trip the
	// breaker.
	Budget
	// Transient failures are everything else (e.g. a solver breakdown):
	// retryable, but they do not count toward the breaker, whose job is
	// specifically to stop waiting on a stage that keeps timing out.
	Transient
)

// Classify triages err for a stage whose parent context is parent.
func Classify(parent context.Context, err error) Class {
	if err == nil {
		return Transient
	}
	if parent.Err() != nil {
		return Fatal
	}
	if errors.Is(err, errs.ErrInfeasible) || errors.Is(err, errs.ErrBadGraph) ||
		errors.Is(err, errs.ErrUnsupportedTransfer) {
		return Fatal
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		// The parent is live (checked above), so the deadline/cancel
		// belongs to the stage budget.
		return Budget
	}
	return Transient
}

// Breaker state names (State()).
const (
	StateClosed   = "closed"
	StateOpen     = "open"
	StateHalfOpen = "half-open"
)

// BreakerOptions tunes the circuit breaker.
type BreakerOptions struct {
	// Threshold is the number of consecutive budget failures that trips
	// the breaker (default 3).
	Threshold int
	// Cooldown is how long the breaker stays open before allowing one
	// half-open probe (default 30s).
	Cooldown time.Duration
	// Now replaces the clock for tests (nil: time.Now).
	Now func() time.Time
}

// Breaker is a three-state circuit breaker: Closed (calls flow; counting
// consecutive failures) → Open after Threshold failures (calls are
// refused for Cooldown) → HalfOpen (one probe call; success closes,
// failure re-opens). Safe for concurrent use — the service shares one
// breaker across workers so repeated solver timeouts on any job shed
// load for all of them.
type Breaker struct {
	opts BreakerOptions

	mu          sync.Mutex
	state       string
	consecutive int
	openedAt    time.Time
	probing     bool
}

// NewBreaker returns a closed breaker.
func NewBreaker(o BreakerOptions) *Breaker {
	if o.Threshold <= 0 {
		o.Threshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 30 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return &Breaker{opts: o, state: StateClosed}
}

// Allow reports whether a call may proceed. In the open state it returns
// false until the cooldown elapses, then admits exactly one half-open
// probe; further calls are refused until that probe reports.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.opts.Now().Sub(b.openedAt) >= b.opts.Cooldown {
			b.state = StateHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open
		if b.probing {
			return false // a probe is already in flight
		}
		b.probing = true
		return true
	}
}

// Success reports a completed call: any state resets to closed.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = StateClosed
	b.consecutive = 0
	b.probing = false
}

// Failure reports a budget failure. Closed counts toward the threshold;
// a failed half-open probe re-opens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.consecutive++
		if b.consecutive >= b.opts.Threshold {
			b.state = StateOpen
			b.openedAt = b.opts.Now()
		}
	case StateHalfOpen:
		b.state = StateOpen
		b.openedAt = b.opts.Now()
		b.probing = false
	case StateOpen:
		// A failure racing the trip: refresh the cooldown window.
		b.openedAt = b.opts.Now()
	}
}

// State returns the current state name ("closed", "open", "half-open").
func (b *Breaker) State() string {
	state, _ := b.Stats()
	return state
}

// Stats reports the current state name and the consecutive
// budget-failure count feeding the trip threshold — the health surface a
// service exports (ok vs degraded) without reaching into breaker
// internals.
func (b *Breaker) Stats() (state string, consecutive int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	state = b.state
	if b.state == StateOpen && b.opts.Now().Sub(b.openedAt) >= b.opts.Cooldown {
		state = StateHalfOpen
	}
	return state, b.consecutive
}
