// Half-open breaker behavior under concurrent probes. The half-open
// state admits exactly one probe at a time — a thundering herd arriving
// the instant the cooldown elapses must collapse to a single call — and
// the probe's report decides the next state: success closes, failure
// re-opens. These tests run under -race; the barriers are real
// goroutines hammering Allow concurrently.
package resil

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for BreakerOptions.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// trip drives a closed breaker to open with threshold consecutive
// budget failures.
func trip(t *testing.T, b *Breaker, threshold int) {
	t.Helper()
	for i := 0; i < threshold; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d before the threshold", i)
		}
		b.Failure()
	}
	if state, _ := b.Stats(); state != StateOpen {
		t.Fatalf("state after %d failures = %q, want open", threshold, state)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
}

// TestBreakerSingleProbeAdmission: when the cooldown elapses, N
// goroutines racing Allow get exactly one true — the single half-open
// probe — and everyone else is refused until that probe reports.
func TestBreakerSingleProbeAdmission(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerOptions{Threshold: 3, Cooldown: time.Minute, Now: clock.Now})
	trip(t, b, 3)
	clock.Advance(time.Minute)

	const workers = 32
	var admitted atomic.Int64
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	start.Done()
	done.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", got)
	}
	if state, _ := b.Stats(); state != StateHalfOpen {
		t.Fatalf("state during probe = %q, want half-open", state)
	}
	// While the probe is in flight, every further call is refused.
	for i := 0; i < 8; i++ {
		if b.Allow() {
			t.Fatal("breaker admitted a second probe while one is in flight")
		}
	}
}

// TestBreakerProbeSuccessCloses: the half-open probe reporting success
// closes the breaker and restores full admission, with the consecutive
// failure count reset.
func TestBreakerProbeSuccessCloses(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerOptions{Threshold: 2, Cooldown: time.Second, Now: clock.Now})
	trip(t, b, 2)
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	b.Success()
	state, consecutive := b.Stats()
	if state != StateClosed || consecutive != 0 {
		t.Fatalf("after probe success: state %q, consecutive %d, want closed/0", state, consecutive)
	}
	// Closed again: concurrent calls all flow.
	var refused atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !b.Allow() {
				refused.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := refused.Load(); n != 0 {
		t.Fatalf("closed breaker refused %d of 16 concurrent calls", n)
	}
}

// TestBreakerProbeFailureReopens: a failed probe re-opens the breaker
// for a fresh cooldown, and the next cooldown expiry admits exactly one
// new probe — the full open→half-open→open→half-open cycle.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerOptions{Threshold: 3, Cooldown: time.Minute, Now: clock.Now})
	trip(t, b, 3)
	clock.Advance(time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	b.Failure()
	if state, _ := b.Stats(); state != StateOpen {
		t.Fatalf("state after failed probe = %q, want open", state)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call inside the fresh cooldown")
	}
	// Half the cooldown is not enough — the window restarted at the
	// probe failure.
	clock.Advance(30 * time.Second)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call at half the fresh cooldown")
	}
	clock.Advance(30 * time.Second)
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("second half-open window admitted %d probes, want exactly 1", got)
	}
	b.Success()
	if state, _ := b.Stats(); state != StateClosed {
		t.Fatalf("state after second probe success = %q, want closed", state)
	}
}

// TestBreakerConcurrentChurn stress-mixes Allow/Success/Failure across
// goroutines while the clock advances — no invariant assertions beyond
// the race detector and the terminal states being legal.
func TestBreakerConcurrentChurn(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerOptions{Threshold: 3, Cooldown: time.Millisecond, Now: clock.Now})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if b.Allow() {
					if (worker+j)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				if j%17 == 0 {
					clock.Advance(time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()
	state, _ := b.Stats()
	switch state {
	case StateClosed, StateOpen, StateHalfOpen:
	default:
		t.Fatalf("terminal state %q is not a breaker state", state)
	}
}
