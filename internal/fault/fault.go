// Package fault defines deterministic, seeded fault schedules for the
// simulated multicomputer — the failure model the paper's reliable-CM-5
// assumption rules out.
//
// A Plan is a declarative list of fault events the simulator interprets
// while executing MPMD streams:
//
//   - ProcFail: fail-stop processor death at a virtual time. The
//     processor executes no instruction once its clock reaches the fail
//     time, its blocks are considered lost, and its in-flight messages
//     (still in the network at death) are dropped.
//   - MsgFault: per-message loss, duplication or extra latency, matched
//     by the global send sequence number (deterministic: the simulator's
//     sweep order is fixed) or by message tag.
//   - Straggler: a multiplicative kernel slowdown for one (node, proc)
//     pair — OS noise far beyond the jitter model, enough to invert
//     scheduling decisions.
//
// Plans are plain data: the same plan replayed against the same program
// and machine yields a bit-identical simulation, which is what makes the
// chaos harness's "recovered result equals the sequential reference"
// check meaningful. Rand builds randomized-but-seeded plans for that
// harness.
package fault

import (
	"fmt"
	"math"
)

// MsgFaultKind enumerates the message fault modes.
type MsgFaultKind uint8

const (
	// Drop discards the message after the sender paid its send cost: the
	// receiver blocks until the watchdog diagnoses the loss.
	Drop MsgFaultKind = iota
	// Duplicate delivers a spurious second copy; under tag-matched
	// receive semantics the duplicate is discarded, costing the receiver
	// one extra matching overhead.
	Duplicate
	// Delay holds the message in the network for Extra seconds beyond
	// its modeled transit.
	Delay
)

// String renders the kind name.
func (k MsgFaultKind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("MsgFaultKind(%d)", uint8(k))
	}
}

// ProcFail is a fail-stop processor death: processor Proc executes no
// instruction once its virtual clock reaches At.
type ProcFail struct {
	Proc int
	At   float64
}

// MsgFault applies Kind to one message, selected by the global send
// sequence number Seq (0-based, in simulator sweep order) or — when Tag
// is non-empty — by the codegen message tag.
type MsgFault struct {
	Kind MsgFaultKind
	Seq  int
	Tag  string
	// Extra is the added network latency in seconds (Delay only).
	Extra float64
}

// Straggler scales the kernel execution cost of node Node on processor
// Proc by Factor (>= 1): a deterministic slow processor.
type Straggler struct {
	Node, Proc int
	Factor     float64
}

// Plan is one deterministic fault schedule.
type Plan struct {
	ProcFails  []ProcFail
	MsgFaults  []MsgFault
	Stragglers []Straggler
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.ProcFails) == 0 && len(p.MsgFaults) == 0 && len(p.Stragglers) == 0)
}

// Validate checks the plan against a system size. Plans are validated
// both at full machine scope and partition-relative (the cluster layer
// rebases pool faults onto partition-local indices), so every bound is
// strict: out-of-range processors, negative/NaN/Inf times, and duplicate
// ProcFail entries for one processor are all rejected — a processor dies
// fail-stop exactly once, and a duplicate means the plan was assembled
// from two sources that disagree.
func (p *Plan) Validate(procs int) error {
	if p == nil {
		return nil
	}
	seen := make(map[int]bool, len(p.ProcFails))
	for _, f := range p.ProcFails {
		if f.Proc < 0 || f.Proc >= procs {
			return fmt.Errorf("fault: ProcFail.Proc = %d outside [0, %d)", f.Proc, procs)
		}
		if f.At < 0 || math.IsNaN(f.At) || math.IsInf(f.At, 0) {
			return fmt.Errorf("fault: ProcFail.At = %v, want finite and >= 0", f.At)
		}
		if seen[f.Proc] {
			return fmt.Errorf("fault: duplicate ProcFail for processor %d", f.Proc)
		}
		seen[f.Proc] = true
	}
	for _, f := range p.MsgFaults {
		if f.Tag == "" && f.Seq < 0 {
			return fmt.Errorf("fault: MsgFault needs a Tag or a Seq >= 0, got Seq = %d", f.Seq)
		}
		if f.Kind == Delay && !(f.Extra > 0 && !math.IsInf(f.Extra, 0)) {
			return fmt.Errorf("fault: Delay needs finite Extra > 0, got %v", f.Extra)
		}
		if f.Kind > Delay {
			return fmt.Errorf("fault: unknown message fault kind %d", f.Kind)
		}
	}
	for _, s := range p.Stragglers {
		if s.Proc < 0 || s.Proc >= procs {
			return fmt.Errorf("fault: Straggler.Proc = %d outside [0, %d)", s.Proc, procs)
		}
		if s.Node < 0 {
			return fmt.Errorf("fault: Straggler.Node = %d, want >= 0", s.Node)
		}
		if s.Factor < 1 || math.IsNaN(s.Factor) || math.IsInf(s.Factor, 0) {
			return fmt.Errorf("fault: Straggler.Factor = %v, want >= 1 and finite", s.Factor)
		}
	}
	return nil
}

// Residual returns the fault schedule that survives a halt-and-replan
// cycle: the plan that applies to a recovery re-run after the processors
// in failed (ascending, all < procs) died and the run was rebased to a
// fresh virtual clock.
//
// ProcFail entries for already-failed processors are dropped (they
// fired), the rest are remapped onto the compacted survivor indexing
// (survivor k is the k-th non-failed processor, preserving order — the
// recovery driver replans on procs-len(failed) processors numbered from
// zero) and their fail times shifted by rebase (clamped at zero: a
// fault that was already due fires the moment the re-run starts).
// Message faults and stragglers are dropped: their coordinates — global
// send sequence numbers and MDG node ids — do not survive replanning on
// a residual program.
//
// A nil receiver, or a plan with nothing left, returns nil, which the
// simulator treats as fault-free.
func (p *Plan) Residual(procs int, failed []int, rebase float64) *Plan {
	if p == nil || len(p.ProcFails) == 0 {
		return nil
	}
	gone := make(map[int]bool, len(failed))
	for _, pr := range failed {
		gone[pr] = true
	}
	// newIdx[q] is q's partition-relative index among the survivors.
	newIdx := make(map[int]int, procs)
	next := 0
	for q := 0; q < procs; q++ {
		if !gone[q] {
			newIdx[q] = next
			next++
		}
	}
	var out *Plan
	for _, f := range p.ProcFails {
		idx, alive := newIdx[f.Proc]
		if !alive {
			continue
		}
		if out == nil {
			out = &Plan{}
		}
		out.ProcFails = append(out.ProcFails, ProcFail{Proc: idx, At: math.Max(0, f.At-rebase)})
	}
	return out
}

// FailAt returns the earliest fail time for a processor, if any.
func (p *Plan) FailAt(proc int) (float64, bool) {
	if p == nil {
		return 0, false
	}
	at, ok := math.Inf(1), false
	for _, f := range p.ProcFails {
		if f.Proc == proc && f.At < at {
			at, ok = f.At, true
		}
	}
	return at, ok
}

// MsgFaultFor returns the fault applying to a message, matching Tag
// entries first, then Seq entries; the first match in plan order wins.
func (p *Plan) MsgFaultFor(seq int, tag string) (MsgFault, bool) {
	if p == nil {
		return MsgFault{}, false
	}
	for _, f := range p.MsgFaults {
		if f.Tag != "" && f.Tag == tag {
			return f, true
		}
	}
	for _, f := range p.MsgFaults {
		if f.Tag == "" && f.Seq == seq {
			return f, true
		}
	}
	return MsgFault{}, false
}

// SlowdownFor returns the combined straggler factor for one (node, proc)
// execution (1 when no straggler applies).
func (p *Plan) SlowdownFor(node, proc int) float64 {
	if p == nil {
		return 1
	}
	f := 1.0
	for _, s := range p.Stragglers {
		if s.Node == node && s.Proc == proc {
			f *= s.Factor
		}
	}
	return f
}

// rng is a splitmix64 stream: deterministic across platforms and Go
// versions (unlike math/rand's unspecified algorithm migrations).
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	x := r.state
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / float64(1<<53) }

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// RandOptions shapes Rand's generated plans.
type RandOptions struct {
	// Procs is the system size faults are drawn over (required).
	Procs int
	// MakespanHint scales fail times: deaths land uniformly in
	// (0, MakespanHint). Required when ProcFails > 0.
	MakespanHint float64
	// ProcFails, MsgDrops, MsgDelays, Stragglers set how many faults of
	// each kind to draw.
	ProcFails, MsgDrops, MsgDelays, Stragglers int
	// Messages bounds the Seq draw for message faults (default 64).
	Messages int
	// Nodes bounds the Node draw for stragglers (default 8).
	Nodes int
}

// Rand builds a randomized-but-seeded plan: the same seed and options
// always produce the same plan. Distinct processors are drawn for
// ProcFails so a k-fault plan kills exactly k processors.
func Rand(seed uint64, o RandOptions) (*Plan, error) {
	if o.Procs < 1 {
		return nil, fmt.Errorf("fault: RandOptions.Procs = %d, want >= 1", o.Procs)
	}
	if o.ProcFails > 0 && o.MakespanHint <= 0 {
		return nil, fmt.Errorf("fault: ProcFails > 0 needs MakespanHint > 0")
	}
	if o.ProcFails >= o.Procs {
		return nil, fmt.Errorf("fault: cannot fail %d of %d processors", o.ProcFails, o.Procs)
	}
	if o.Messages <= 0 {
		o.Messages = 64
	}
	if o.Nodes <= 0 {
		o.Nodes = 8
	}
	r := &rng{state: seed}
	p := &Plan{}
	used := map[int]bool{}
	for i := 0; i < o.ProcFails; i++ {
		proc := r.intn(o.Procs)
		for used[proc] {
			proc = r.intn(o.Procs)
		}
		used[proc] = true
		p.ProcFails = append(p.ProcFails, ProcFail{Proc: proc, At: r.float64() * o.MakespanHint})
	}
	for i := 0; i < o.MsgDrops; i++ {
		p.MsgFaults = append(p.MsgFaults, MsgFault{Kind: Drop, Seq: r.intn(o.Messages)})
	}
	for i := 0; i < o.MsgDelays; i++ {
		p.MsgFaults = append(p.MsgFaults, MsgFault{
			Kind: Delay, Seq: r.intn(o.Messages), Extra: 1e-4 + 1e-2*r.float64(),
		})
	}
	for i := 0; i < o.Stragglers; i++ {
		p.Stragglers = append(p.Stragglers, Straggler{
			Node: r.intn(o.Nodes), Proc: r.intn(o.Procs), Factor: 1 + 9*r.float64(),
		})
	}
	return p, nil
}

// RNG is the exported face of the splitmix64 stream: the deterministic
// randomness source for everything that must replay identically under a
// seed (fault plans here, retry-backoff jitter in internal/resil).
type RNG struct{ r rng }

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{r: rng{state: seed}} }

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.float64() }

// Intn returns a uniform value in [0, n).
func (g *RNG) Intn(n int) int { return g.r.intn(n) }
