package fault

import (
	"reflect"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name  string
		plan  *Plan
		procs int
		ok    bool
	}{
		{"nil plan", nil, 4, true},
		{"empty plan", &Plan{}, 4, true},
		{"good fail", &Plan{ProcFails: []ProcFail{{Proc: 3, At: 0.5}}}, 4, true},
		{"proc out of range", &Plan{ProcFails: []ProcFail{{Proc: 4, At: 0.5}}}, 4, false},
		{"negative time", &Plan{ProcFails: []ProcFail{{Proc: 0, At: -1}}}, 4, false},
		{"drop by seq", &Plan{MsgFaults: []MsgFault{{Kind: Drop, Seq: 2}}}, 4, true},
		{"drop unaddressed", &Plan{MsgFaults: []MsgFault{{Kind: Drop, Seq: -1}}}, 4, false},
		{"delay without extra", &Plan{MsgFaults: []MsgFault{{Kind: Delay, Seq: 0}}}, 4, false},
		{"straggler below one", &Plan{Stragglers: []Straggler{{Node: 0, Proc: 0, Factor: 0.5}}}, 4, false},
		{"straggler ok", &Plan{Stragglers: []Straggler{{Node: 1, Proc: 2, Factor: 3}}}, 4, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(tc.procs)
			if (err == nil) != tc.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestLookups(t *testing.T) {
	p := &Plan{
		ProcFails: []ProcFail{{Proc: 2, At: 0.7}, {Proc: 2, At: 0.3}},
		MsgFaults: []MsgFault{
			{Kind: Drop, Seq: 5},
			{Kind: Delay, Tag: "A@0->2#0", Extra: 0.01},
		},
		Stragglers: []Straggler{{Node: 1, Proc: 0, Factor: 2}, {Node: 1, Proc: 0, Factor: 3}},
	}
	if at, ok := p.FailAt(2); !ok || at != 0.3 {
		t.Fatalf("FailAt(2) = %v, %v; want earliest 0.3", at, ok)
	}
	if _, ok := p.FailAt(0); ok {
		t.Fatal("FailAt(0) should not match")
	}
	if f, ok := p.MsgFaultFor(5, "other"); !ok || f.Kind != Drop {
		t.Fatalf("MsgFaultFor(5) = %+v, %v", f, ok)
	}
	// Tag matches win over Seq matches.
	if f, ok := p.MsgFaultFor(5, "A@0->2#0"); !ok || f.Kind != Delay {
		t.Fatalf("tag match lost to seq: %+v, %v", f, ok)
	}
	if _, ok := p.MsgFaultFor(4, "none"); ok {
		t.Fatal("unexpected message fault match")
	}
	if got := p.SlowdownFor(1, 0); got != 6 {
		t.Fatalf("SlowdownFor = %v, want compounded 6", got)
	}
	if got := p.SlowdownFor(2, 0); got != 1 {
		t.Fatalf("SlowdownFor(no match) = %v, want 1", got)
	}
}

func TestRandDeterministicAndDistinct(t *testing.T) {
	opts := RandOptions{Procs: 8, MakespanHint: 2.0, ProcFails: 3, MsgDrops: 2, MsgDelays: 1, Stragglers: 2}
	a, err := Rand(42, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rand(42, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%+v\n%+v", a, b)
	}
	c, err := Rand(43, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	seen := map[int]bool{}
	for _, f := range a.ProcFails {
		if seen[f.Proc] {
			t.Fatalf("processor %d failed twice", f.Proc)
		}
		seen[f.Proc] = true
		if f.At < 0 || f.At >= opts.MakespanHint {
			t.Fatalf("fail time %v outside (0, %v)", f.At, opts.MakespanHint)
		}
	}
	if err := a.Validate(8); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
}

func TestRandRejectsBadOptions(t *testing.T) {
	if _, err := Rand(1, RandOptions{Procs: 0}); err == nil {
		t.Fatal("want error for zero procs")
	}
	if _, err := Rand(1, RandOptions{Procs: 4, ProcFails: 1}); err == nil {
		t.Fatal("want error for missing makespan hint")
	}
	if _, err := Rand(1, RandOptions{Procs: 2, ProcFails: 2, MakespanHint: 1}); err == nil {
		t.Fatal("want error for failing every processor")
	}
}

func TestEmpty(t *testing.T) {
	var p *Plan
	if !p.Empty() {
		t.Fatal("nil plan should be empty")
	}
	if !(&Plan{}).Empty() {
		t.Fatal("zero plan should be empty")
	}
	if (&Plan{Stragglers: []Straggler{{Factor: 2}}}).Empty() {
		t.Fatal("straggler plan should not be empty")
	}
}
