// FuzzFaultPlan drives Validate and the partition-relative helpers with
// adversarial plans: whatever the bytes decode to, Validate must never
// panic, must reject every malformed plan the hardening covers
// (out-of-range processors, negative/NaN/Inf times, duplicate ProcFail
// entries), and every plan it accepts must survive the helper surface —
// FailAt/MsgFaultFor/SlowdownFor lookups and a Residual rebase whose
// output re-validates at the survivor count.
package fault

import (
	"encoding/binary"
	"math"
	"testing"
)

// planFromBytes deterministically decodes a fuzzed byte string into a
// plan plus the system size to validate it against. The decoder is
// intentionally loose: it produces plenty of invalid plans (indices and
// times are raw draws), which is the point — Validate has to catch them.
func planFromBytes(data []byte) (*Plan, int) {
	read := func() uint64 {
		if len(data) == 0 {
			return 0
		}
		n := min(len(data), 8)
		var buf [8]byte
		copy(buf[:], data[:n])
		data = data[n:]
		return binary.LittleEndian.Uint64(buf[:])
	}
	f64 := func() float64 {
		bits := read()
		v := math.Float64frombits(bits)
		if bits%7 == 0 {
			// Keep a healthy share of plausible finite times in range.
			v = float64(bits%1024) / 16
		}
		return v
	}
	procs := int(read()%16) + 1
	p := &Plan{}
	for n := read() % 5; n > 0; n-- {
		p.ProcFails = append(p.ProcFails, ProcFail{Proc: int(read()%24) - 4, At: f64()})
	}
	for n := read() % 4; n > 0; n-- {
		p.MsgFaults = append(p.MsgFaults, MsgFault{
			Kind: MsgFaultKind(read() % 5), Seq: int(read()%64) - 8, Extra: f64(),
		})
	}
	for n := read() % 4; n > 0; n-- {
		p.Stragglers = append(p.Stragglers, Straggler{
			Node: int(read()%32) - 4, Proc: int(read()%24) - 4, Factor: f64(),
		})
	}
	return p, procs
}

func FuzzFaultPlan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 3})
	f.Add(func() []byte {
		// A valid two-fault plan at procs=8 as a structured seed.
		var b []byte
		app := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
		app(7)  // procs = 8
		app(2)  // two ProcFails
		app(1)  // proc 1
		app(14) // bits%7==0 → in-range time
		app(3)  // proc 3
		app(21)
		app(0) // no msg faults
		app(0) // no stragglers
		return b
	}())
	f.Fuzz(func(t *testing.T, data []byte) {
		p, procs := planFromBytes(data)
		err := p.Validate(procs)
		if err != nil {
			return
		}
		// Accepted plans must be internally consistent and survive every
		// helper the simulator and the cluster layer lean on.
		seen := map[int]bool{}
		for _, pf := range p.ProcFails {
			if pf.Proc < 0 || pf.Proc >= procs || seen[pf.Proc] {
				t.Fatalf("Validate accepted ProcFails %+v at procs=%d", p.ProcFails, procs)
			}
			seen[pf.Proc] = true
			at, ok := p.FailAt(pf.Proc)
			if !ok || at != pf.At {
				t.Fatalf("FailAt(%d) = %v,%v, want %v,true", pf.Proc, at, ok, pf.At)
			}
		}
		for pr := 0; pr < procs; pr++ {
			p.SlowdownFor(0, pr)
			p.MsgFaultFor(pr, "")
		}
		// Residual of a valid plan must re-validate at the survivor count
		// for any failed subset drawn from the plan's own fail entries.
		for k := 0; k <= len(p.ProcFails); k++ {
			failed := make([]int, 0, k)
			for _, pf := range p.ProcFails[:k] {
				failed = append(failed, pf.Proc)
			}
			res := p.Residual(procs, failed, 1.5)
			if res == nil {
				continue
			}
			if rerr := res.Validate(procs - len(failed)); rerr != nil {
				t.Fatalf("Residual(%v) of a valid plan fails Validate(%d): %v",
					failed, procs-len(failed), rerr)
			}
			if len(res.MsgFaults) != 0 || len(res.Stragglers) != 0 {
				t.Fatalf("Residual carried non-ProcFail entries: %+v", res)
			}
		}
	})
}

// TestValidateHardened pins the partition-relative hardening: duplicate
// deaths, infinite times, and boundary indices are all refused.
func TestValidateHardened(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"duplicate-procfail", Plan{ProcFails: []ProcFail{{Proc: 2, At: 1}, {Proc: 2, At: 3}}}, false},
		{"inf-time", Plan{ProcFails: []ProcFail{{Proc: 0, At: math.Inf(1)}}}, false},
		{"nan-time", Plan{ProcFails: []ProcFail{{Proc: 0, At: math.NaN()}}}, false},
		{"negative-time", Plan{ProcFails: []ProcFail{{Proc: 0, At: -1}}}, false},
		{"proc-at-bound", Plan{ProcFails: []ProcFail{{Proc: 4, At: 1}}}, false},
		{"negative-proc", Plan{ProcFails: []ProcFail{{Proc: -1, At: 1}}}, false},
		{"inf-delay", Plan{MsgFaults: []MsgFault{{Kind: Delay, Seq: 0, Extra: math.Inf(1)}}}, false},
		{"nan-delay", Plan{MsgFaults: []MsgFault{{Kind: Delay, Seq: 0, Extra: math.NaN()}}}, false},
		{"distinct-procs", Plan{ProcFails: []ProcFail{{Proc: 0, At: 1}, {Proc: 3, At: 1}}}, true},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(4)
		if tc.ok && err != nil {
			t.Errorf("%s: Validate = %v, want nil", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Validate accepted an invalid plan", tc.name)
		}
	}
}

// TestResidualRemap pins the survivor remapping and rebase semantics the
// recovery driver and the cluster layer rely on.
func TestResidualRemap(t *testing.T) {
	p := &Plan{
		ProcFails: []ProcFail{{Proc: 1, At: 2}, {Proc: 3, At: 5}, {Proc: 6, At: 1}},
		MsgFaults: []MsgFault{{Kind: Drop, Seq: 0}},
	}
	// Processor 1 died at t=2: survivors of an 8-proc run are
	// 0,2,3,4,5,6,7 → proc 3 becomes 2, proc 6 becomes 5.
	res := p.Residual(8, []int{1}, 2)
	if res == nil {
		t.Fatal("Residual = nil, want the two surviving fails")
	}
	want := []ProcFail{{Proc: 2, At: 3}, {Proc: 5, At: 0}}
	if len(res.ProcFails) != len(want) {
		t.Fatalf("Residual ProcFails = %+v, want %+v", res.ProcFails, want)
	}
	for i, pf := range res.ProcFails {
		if pf != want[i] {
			t.Fatalf("Residual ProcFails[%d] = %+v, want %+v", i, pf, want[i])
		}
	}
	if len(res.MsgFaults) != 0 {
		t.Fatal("Residual kept message faults across a replan")
	}
	if err := res.Validate(7); err != nil {
		t.Fatalf("residual plan invalid at survivor count: %v", err)
	}
	// Every fail consumed → nil.
	if got := p.Residual(8, []int{1, 3, 6}, 9); got != nil {
		t.Fatalf("fully-consumed Residual = %+v, want nil", got)
	}
	if got := (*Plan)(nil).Residual(8, nil, 0); got != nil {
		t.Fatalf("nil Residual = %+v, want nil", got)
	}
}
