// Package bounds implements the optimality analysis of Section 5:
// Theorem 1 (list-scheduling factor under a processor bound PB), Theorem 2
// (cost of the rounding and bounding steps), Theorem 3 (their product) and
// Corollary 1 (the power-of-two PB minimizing the Theorem 3 factor).
package bounds

import (
	"fmt"
	"math"
)

// validate checks 1 <= PB <= p.
func validate(p, pb int) error {
	if p < 1 {
		return fmt.Errorf("bounds: system size p = %d, want >= 1", p)
	}
	if pb < 1 || pb > p {
		return fmt.Errorf("bounds: PB = %d outside [1, %d]", pb, p)
	}
	return nil
}

// Theorem1Factor bounds T_psa / T_opt^PB for the PSA on a p-processor
// system when no node uses more than PB processors (Equation 5):
// 1 + p/(p - PB + 1).
func Theorem1Factor(p, pb int) (float64, error) {
	if err := validate(p, pb); err != nil {
		return 0, err
	}
	return 1 + float64(p)/float64(p-pb+1), nil
}

// Theorem2Factor bounds T_opt^PB / Φ after the rounding-off and bounding
// steps (Equation 11): (3/2)²·(p/PB)².
func Theorem2Factor(p, pb int) (float64, error) {
	if err := validate(p, pb); err != nil {
		return 0, err
	}
	r := float64(p) / float64(pb)
	return 2.25 * r * r, nil
}

// Theorem3Factor bounds T_psa / Φ overall (Equation 17): the product of
// the Theorem 1 and Theorem 2 factors.
func Theorem3Factor(p, pb int) (float64, error) {
	f1, err := Theorem1Factor(p, pb)
	if err != nil {
		return 0, err
	}
	f2, err := Theorem2Factor(p, pb)
	if err != nil {
		return 0, err
	}
	return f1 * f2, nil
}

// OptimalPB returns the power of two PB ∈ [1, p] minimizing the Theorem 3
// factor (Corollary 1), together with that factor. Ties resolve to the
// larger PB (more parallelism per node at equal theoretical cost).
func OptimalPB(p int) (pb int, factor float64, err error) {
	if p < 1 {
		return 0, 0, fmt.Errorf("bounds: system size p = %d, want >= 1", p)
	}
	best, bestF := 0, math.Inf(1)
	for cand := 1; cand <= p; cand *= 2 {
		f, err := Theorem3Factor(p, cand)
		if err != nil {
			return 0, 0, err
		}
		if f <= bestF {
			best, bestF = cand, f
		}
	}
	return best, bestF, nil
}

// RoundPow2 rounds a positive real processor allocation to the arithmetic
// nearest power of two, clamped to [1, limit] (limit <= 0 means no upper
// clamp). Arithmetic-nearest rounding changes the value by a factor in
// [2/3, 4/3] — the constants Theorem 2's proof uses: for p ∈ [2^k, 2^(k+1)]
// the midpoint 1.5·2^k splits the interval, so the worst increase is
// 1.5·2^k → 2^(k+1) (factor 4/3) and the worst decrease is 1.5·2^k → 2^k
// (factor 2/3).
func RoundPow2(p float64, limit int) int {
	if p < 1 || math.IsNaN(p) || math.IsInf(p, 0) {
		p = 1
	}
	lower := 1
	for lower*2 <= int(p) {
		lower *= 2
	}
	upper := lower
	if float64(lower) < p {
		upper = lower * 2
	}
	rounded := lower
	if p-float64(lower) > float64(upper)-p {
		rounded = upper
	}
	if limit > 0 && rounded > limit {
		rounded = largestPow2AtMost(limit)
	}
	return rounded
}

// largestPow2AtMost returns the largest power of two <= n (n >= 1).
func largestPow2AtMost(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("bounds: largestPow2AtMost(%d)", n))
	}
	v := 1
	for v*2 <= n {
		v *= 2
	}
	return v
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}
