package bounds

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTheorem1KnownValues(t *testing.T) {
	// p=64, PB=64: 1 + 64/1 = 65. p=64, PB=1: 1 + 64/64 = 2.
	f, err := Theorem1Factor(64, 64)
	if err != nil || f != 65 {
		t.Fatalf("f = %v err = %v, want 65", f, err)
	}
	f, err = Theorem1Factor(64, 1)
	if err != nil || f != 2 {
		t.Fatalf("f = %v err = %v, want 2", f, err)
	}
}

func TestTheorem2KnownValues(t *testing.T) {
	// PB=p: (3/2)² = 2.25. PB=p/2: 2.25·4 = 9.
	f, err := Theorem2Factor(64, 64)
	if err != nil || f != 2.25 {
		t.Fatalf("f = %v err = %v, want 2.25", f, err)
	}
	f, err = Theorem2Factor(64, 32)
	if err != nil || f != 9 {
		t.Fatalf("f = %v err = %v, want 9", f, err)
	}
}

func TestTheorem3IsProduct(t *testing.T) {
	for _, pb := range []int{1, 2, 4, 8, 16, 32, 64} {
		f1, _ := Theorem1Factor(64, pb)
		f2, _ := Theorem2Factor(64, pb)
		f3, err := Theorem3Factor(64, pb)
		if err != nil || f3 != f1*f2 {
			t.Fatalf("PB=%d: f3 = %v, want %v", pb, f3, f1*f2)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Theorem1Factor(0, 1); err == nil {
		t.Fatal("want error for p=0")
	}
	if _, err := Theorem1Factor(8, 0); err == nil {
		t.Fatal("want error for PB=0")
	}
	if _, err := Theorem1Factor(8, 9); err == nil {
		t.Fatal("want error for PB>p")
	}
	if _, err := Theorem3Factor(8, 0); err == nil {
		t.Fatal("want error from Theorem3")
	}
	if _, _, err := OptimalPB(0); err == nil {
		t.Fatal("want error from OptimalPB(0)")
	}
}

func TestOptimalPBIsPow2AndBeatsAllPow2(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16, 31, 32, 64, 100, 128} {
		pb, f, err := OptimalPB(p)
		if err != nil {
			t.Fatal(err)
		}
		if !IsPow2(pb) || pb > p {
			t.Fatalf("p=%d: PB=%d not a power of two within range", p, pb)
		}
		for cand := 1; cand <= p; cand *= 2 {
			cf, _ := Theorem3Factor(p, cand)
			if cf < f-1e-12 {
				t.Fatalf("p=%d: PB=%d (f=%v) beaten by %d (f=%v)", p, pb, f, cand, cf)
			}
		}
	}
}

func TestOptimalPB64(t *testing.T) {
	// For p=64 the factor (1 + p/(p-PB+1))·2.25·(p/PB)² strictly favors
	// the largest PB until the Theorem-1 term blows up at PB = p.
	pb, _, err := OptimalPB(64)
	if err != nil {
		t.Fatal(err)
	}
	f32, _ := Theorem3Factor(64, 32)
	f64, _ := Theorem3Factor(64, 64)
	want := 32
	if f64 < f32 {
		want = 64
	}
	if pb != want {
		t.Fatalf("OptimalPB(64) = %d, want %d (f32=%v f64=%v)", pb, want, f32, f64)
	}
}

func TestRoundPow2KnownCases(t *testing.T) {
	cases := []struct {
		in    float64
		limit int
		want  int
	}{
		{1, 0, 1},
		{1.4, 0, 1},
		{1.6, 0, 2},
		{2, 0, 2},
		{2.9, 0, 2},
		{3.1, 0, 4},
		{3, 0, 2},     // tie at exact midpoint resolves down
		{6, 0, 4},     // midpoint of [4,8]
		{6.01, 0, 8},  // just past midpoint
		{47.9, 0, 32}, // below midpoint 48
		{48.1, 0, 64},
		{100, 64, 64},
		{100, 48, 32}, // clamp to largest pow2 <= limit
		{0.3, 0, 1},   // below 1 clamps to 1
		{math.NaN(), 0, 1},
		{math.Inf(1), 0, 1},
	}
	for _, c := range cases {
		if got := RoundPow2(c.in, c.limit); got != c.want {
			t.Fatalf("RoundPow2(%v, %d) = %d, want %d", c.in, c.limit, got, c.want)
		}
	}
}

// TestRoundPow2FactorBounds: the Theorem-2 premise — rounding changes the
// allocation by a factor within [2/3, 4/3].
func TestRoundPow2FactorBounds(t *testing.T) {
	f := func(raw uint16) bool {
		p := 1 + float64(raw)/512 // p in [1, 129)
		r := float64(RoundPow2(p, 0))
		ratio := r / p
		return ratio >= 2.0/3-1e-12 && ratio <= 4.0/3+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundPow2AlwaysPow2WithinLimit under random inputs.
func TestRoundPow2AlwaysPow2WithinLimit(t *testing.T) {
	f := func(raw uint16, limRaw uint8) bool {
		p := float64(raw) / 100
		limit := int(limRaw)%100 + 1
		r := RoundPow2(p, limit)
		return IsPow2(r) && r <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Fatalf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 12, 1000} {
		if IsPow2(n) {
			t.Fatalf("IsPow2(%d) = true", n)
		}
	}
}

// TestTheorem1Monotonicity: the factor grows with PB (less slack for the
// list scheduler).
func TestTheorem1Monotonicity(t *testing.T) {
	prev := 0.0
	for pb := 1; pb <= 64; pb++ {
		f, err := Theorem1Factor(64, pb)
		if err != nil {
			t.Fatal(err)
		}
		if f <= prev {
			t.Fatalf("Theorem1 factor not increasing at PB=%d", pb)
		}
		prev = f
	}
}

// TestTheorem2Monotonicity: the factor shrinks as PB grows (less clamping
// damage).
func TestTheorem2Monotonicity(t *testing.T) {
	prev := math.Inf(1)
	for pb := 1; pb <= 64; pb *= 2 {
		f, err := Theorem2Factor(64, pb)
		if err != nil {
			t.Fatal(err)
		}
		if f >= prev {
			t.Fatalf("Theorem2 factor not decreasing at PB=%d", pb)
		}
		prev = f
	}
}
