package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func tempLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "run.wal")
}

func TestCommitAndReload(t *testing.T) {
	path := tempLog(t)
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	stages := []struct {
		stage   string
		payload string
	}{
		{StageMeta, `{"program":"cmm"}`},
		{StageAlloc, `{"p":[1,2,4]}`},
		{StageSched, `{"entries":[]}`},
	}
	for _, s := range stages {
		if err := l.Commit(s.stage, []byte(s.payload)); err != nil {
			t.Fatalf("commit %s: %v", s.stage, err)
		}
	}

	re, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != len(stages) {
		t.Fatalf("reloaded %d records, want %d", re.Len(), len(stages))
	}
	for i, s := range stages {
		data, seq, ok := re.Lookup(s.stage)
		if !ok {
			t.Fatalf("stage %s missing after reload", s.stage)
		}
		if seq != i {
			t.Fatalf("stage %s seq = %d, want %d", s.stage, seq, i)
		}
		if string(data) != s.payload {
			t.Fatalf("stage %s payload = %q, want %q", s.stage, data, s.payload)
		}
	}
}

func TestLookupReturnsLatestCommit(t *testing.T) {
	l, err := Create(tempLog(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"first", "second", "third"} {
		if err := l.Commit(StageSalvage, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	data, seq, ok := l.Lookup(StageSalvage)
	if !ok || string(data) != "third" || seq != 2 {
		t.Fatalf("Lookup = (%q, %d, %v), want (third, 2, true)", data, seq, ok)
	}
	if got := l.Stages(); len(got) != 3 {
		t.Fatalf("Stages() = %v, want 3 entries", got)
	}
}

func TestOpenCreatesThenResumes(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatalf("fresh log has %d records", l.Len())
	}
	if err := l.Commit(StageMeta, []byte("x")); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Fatalf("reopened log has %d records, want 1", re.Len())
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.wal"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Load missing = %v, want os.ErrNotExist", err)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	path := tempLog(t)
	l, _ := Create(path)
	if err := l.Commit(StageMeta, []byte("old")); err != nil {
		t.Fatal(err)
	}
	fresh, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 0 {
		t.Fatalf("Create left %d records", fresh.Len())
	}
	re, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 0 {
		t.Fatalf("truncated log reloads %d records", re.Len())
	}
}

// Truncation anywhere in the file must fail with ErrCorrupt — a torn
// log is refused, never resumed from a prefix silently.
func TestTruncationIsCorrupt(t *testing.T) {
	path := tempLog(t)
	l, _ := Create(path)
	for _, s := range []string{StageMeta, StageAlloc, StageSched} {
		if err := l.Commit(s, []byte(`{"some":"payload for `+s+`"}`)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(data) - 1; cut > len(Magic)+4; cut -= 7 {
		if _, err := Decode(data[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Decode(truncated at %d) = %v, want ErrCorrupt", cut, err)
		}
	}
}

// Any single bit flip in a payload must fail the CRC.
func TestBitFlipIsCorrupt(t *testing.T) {
	path := tempLog(t)
	l, _ := Create(path)
	if err := l.Commit(StageAlloc, []byte(`{"p":[1,2,4,8]}`)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the payload region (last byte of the file).
	data[len(data)-1] ^= 0x40
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode(bit-flipped) = %v, want ErrCorrupt", err)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := Decode([]byte("NOTAWAL!....")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic = %v, want ErrCorrupt", err)
	}
	img := Encode(nil)
	img[len(Magic)] = 99 // version field
	if _, err := Decode(img); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version = %v, want ErrVersion", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	recs := []Record{
		{Stage: "meta", Seq: 0, Payload: []byte("abc")},
		{Stage: "alloc", Seq: 1, Payload: nil},
		{Stage: "salvage-1", Seq: 2, Payload: make([]byte, 1000)},
	}
	got, err := Decode(Encode(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d != %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Stage != recs[i].Stage || got[i].Seq != i || len(got[i].Payload) != len(recs[i].Payload) {
			t.Fatalf("record %d round-tripped as %+v", i, got[i])
		}
	}
}

func TestOnCommitHookOrder(t *testing.T) {
	l, _ := Create(tempLog(t))
	var seen []string
	l.OnCommit(func(stage string, seq int) {
		// The record must already be durable when the hook runs: a
		// reload from disk sees it.
		re, err := Load(l.Path())
		if err != nil {
			t.Errorf("reload inside hook: %v", err)
		}
		if _, _, ok := re.Lookup(stage); !ok {
			t.Errorf("stage %s not durable when hook ran", stage)
		}
		seen = append(seen, stage)
	})
	for _, s := range []string{StageMeta, StageAlloc} {
		if err := l.Commit(s, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 2 || seen[0] != StageMeta || seen[1] != StageAlloc {
		t.Fatalf("hook order = %v", seen)
	}
}

func TestCommitRollsBackOnFlushFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.wal")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the directory out from under the log: the commit's lazy
	// open must fail, leaving the in-memory view at the previous state.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(StageMeta, []byte("x")); err == nil {
		t.Fatal("Commit into a removed directory succeeded")
	}
	if l.Len() != 0 {
		t.Fatalf("failed commit left %d in-memory records", l.Len())
	}
	if _, _, ok := l.Lookup(StageMeta); ok {
		t.Fatal("failed commit still visible via Lookup")
	}
}

// Close releases the write handle but does not retire the log: the next
// Commit reopens the file and appends after the committed region.
func TestCloseThenCommitReopens(t *testing.T) {
	path := tempLog(t)
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(StageMeta, []byte("m")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(StageAlloc, []byte("a")); err != nil {
		t.Fatalf("Commit after Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Stages(); len(got) != 2 || got[0] != StageMeta || got[1] != StageAlloc {
		t.Fatalf("reloaded stages = %v", got)
	}
}

// A torn append — record bytes written but the commit pointer not yet
// updated — must reload as the previous committed state, and the next
// commit must overwrite the torn tail.
func TestTornAppendIsIgnored(t *testing.T) {
	path := tempLog(t)
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(StageMeta, []byte("m")); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill between the record append and the pointer write.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{5, 0, 0, 0, 's'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Load(path)
	if err != nil {
		t.Fatalf("Load with torn tail: %v", err)
	}
	if got := re.Stages(); len(got) != 1 || got[0] != StageMeta {
		t.Fatalf("stages with torn tail = %v", got)
	}
	if err := re.Commit(StageAlloc, []byte("a")); err != nil {
		t.Fatal(err)
	}
	again, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Stages(); len(got) != 2 || got[1] != StageAlloc {
		t.Fatalf("stages after overwrite = %v", got)
	}
}

// Full-sync mode must keep the same on-disk format and reload behavior;
// it only changes durability (fsync), which is not observable here
// beyond commits still succeeding.
func TestFullSyncCommitAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	l.SetFullSync(true)
	if err := l.Commit(StageMeta, []byte("meta")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(StageAlloc, []byte("alloc")); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("reloaded %d records, want 2", got.Len())
	}
	payload, seq, ok := got.Lookup(StageAlloc)
	if !ok || seq != 1 || string(payload) != "alloc" {
		t.Fatalf("Lookup(alloc) = %q, %d, %v", payload, seq, ok)
	}
}
