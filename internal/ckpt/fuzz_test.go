package ckpt

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// seedImages builds the WAL decoder's seed corpus: a valid multi-record
// log, boundary shapes, and structurally hostile variants. The same
// seeds run as plain subtests under `go test` and as the corpus of
// FuzzWALDecode under `make fuzz-smoke`.
func seedImages() [][]byte {
	valid := Encode([]Record{
		{Stage: StageMeta, Payload: []byte(`{"program":"cmm","procs":8,"nodes":12}`)},
		{Stage: StageAlloc, Payload: []byte(`{"p":[1,2,4],"phi":0.5}`)},
		{Stage: StageSched, Payload: []byte(`{"entries":[]}`)},
		{Stage: StageSalvage + "-1", Payload: bytes.Repeat([]byte{0xAB}, 257)},
		{Stage: StageDone, Payload: []byte(`{"makespan":1.25}`)},
	})
	empty := Encode(nil)
	one := Encode([]Record{{Stage: "x", Payload: nil}})

	truncated := append([]byte(nil), valid...)
	truncated = truncated[:len(truncated)-3]

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01

	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xFF

	badVersion := append([]byte(nil), valid...)
	badVersion[len(Magic)] = 0xFE

	// Declared payload length far beyond the bytes present, inside a
	// committed region whose prefix CRC checks out: the decoder must
	// reject the record before allocating.
	rec := []byte{1, 0, 0, 0, 'x', 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}
	hugeLen := append([]byte(nil), Magic...)
	hugeLen = binary.LittleEndian.AppendUint32(hugeLen, Version)
	hugeLen = binary.LittleEndian.AppendUint32(hugeLen, uint32(len(rec)))
	hugeLen = binary.LittleEndian.AppendUint32(hugeLen, crc32.ChecksumIEEE(rec))
	hugeLen = append(hugeLen, rec...)

	// Bytes past the commit pointer are the uncommitted tail of an
	// interrupted append: ignored, not corruption.
	tornTail := append(append([]byte(nil), valid...), 0xEE, 0x0B, 0xAD)

	return [][]byte{valid, empty, one, truncated, flipped, badMagic, badVersion, hugeLen, tornTail, nil, []byte("PDGMWAL1")}
}

// decodeNeverPanics is the fuzz property: Decode is total, and anything
// it accepts re-encodes to the byte-identical committed image (the
// round-trip the resume path depends on). Bytes past the commit pointer
// are an uncommitted tail, so the comparison stops at the re-encoded
// length.
func decodeNeverPanics(t *testing.T, data []byte) {
	t.Helper()
	recs, err := Decode(data)
	if err != nil {
		return
	}
	re := Encode(recs)
	if len(re) > len(data) || !bytes.Equal(re, data[:len(re)]) {
		t.Fatalf("accepted image does not round-trip: %d bytes in, %d bytes re-encoded", len(data), len(re))
	}
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("record %d decoded with seq %d", i, r.Seq)
		}
	}
}

func TestSeedCorpus(t *testing.T) {
	for i, img := range seedImages() {
		decodeNeverPanics(t, img)
		_ = i
	}
}

func FuzzWALDecode(f *testing.F) {
	for _, img := range seedImages() {
		f.Add(img)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeNeverPanics(t, data)
	})
}
