// Package ckpt is the crash-safety layer of the pipeline: a versioned,
// CRC-checked write-ahead checkpoint log that snapshots stage boundaries
// (calibration fit, allocation vector, PSA schedule, codegen program,
// salvage state) so a killed run can resume from the last committed
// stage bit-identically.
//
// Durability model. The log is a single file created atomically
// (write-to-temp + rename, so the path never holds a torn header). Each
// Commit then appends the new record with one positioned write and
// publishes it with a second 8-byte write that updates the header's
// committed-length/CRC pointer in place. The pointer update is smaller
// than a page, so under process death (SIGKILL, panic, OOM) it either
// lands completely or not at all: a run killed mid-commit loses at most
// the record being committed, and any torn bytes past the committed
// pointer are discarded on load. Page-cache writes survive process
// death without fsync, so this rename-on-create / pointer-publish
// scheme is crash-safe for the pipeline's crash model (process loss) at
// two small writes per commit. SetFullSync(true) additionally fsyncs
// the data before the pointer write and the pointer after it — the
// classic WAL ordering — extending the guarantee to kernel crashes and
// power loss at roughly a millisecond per commit on ext4.
//
// Integrity model. The file opens with an 8-byte magic, a format
// version, and the committed-region pointer (byte length + CRC-32 of
// the whole committed region); each record additionally carries a
// CRC-32 (IEEE) of its payload. Any truncation, bit flip, or garbage
// inside the committed region fails Decode with ErrCorrupt — a corrupt
// log is refused loudly, never resumed silently. Bytes beyond the
// committed pointer are uncommitted leftovers of an interrupted append
// and are ignored. Decode is a total function over arbitrary bytes (it
// is the fuzz target in fuzz_test.go) and never panics or
// over-allocates: declared lengths are validated against the bytes
// actually present before any allocation.
//
// Record semantics. Records are append-only and stage-named. Lookup
// returns the latest record for a stage, so a stage may be re-committed
// (recovery attempts commit one salvage record per attempt). Payloads
// are opaque bytes to this layer; codec.go defines the JSON stage
// payloads the pipeline uses. JSON is safe for bit-identical resume
// because Go marshals float64 in shortest-round-trip form: decode(
// encode(x)) == x exactly.
package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Canonical stage names committed by the pipeline, in commit order.
// Salvage records append "-<attempt>" to StageSalvage.
const (
	StageMeta      = "meta"
	StageCalibrate = "calibrate"
	StageAlloc     = "alloc"
	StageSched     = "sched"
	StageCodegen   = "codegen"
	StageSalvage   = "salvage"
	StageDone      = "done"
)

// Typed sentinels. Callers dispatch with errors.Is; the chaos tests
// assert that a damaged log surfaces ErrCorrupt rather than resuming.
var (
	// ErrCorrupt marks a log that fails structural or CRC validation:
	// truncated file, bit flip, bad magic, or an undecodable payload.
	ErrCorrupt = errors.New("ckpt: corrupt checkpoint log")
	// ErrVersion marks a log written by an incompatible format version.
	ErrVersion = errors.New("ckpt: unsupported checkpoint version")
	// ErrMismatch marks a structurally valid log whose contents do not
	// match the job being resumed (different program, machine, or
	// system size) — resuming would silently produce a wrong schedule.
	ErrMismatch = errors.New("ckpt: checkpoint does not match this job")
)

// Magic opens every log file; Version is the current format.
const (
	Magic   = "PDGMWAL1"
	Version = 1
)

// Header layout: magic[8] version[u32] committedLen[u32] prefixCRC[u32].
// committedLen counts record bytes after the header; prefixCRC is the
// CRC-32 of exactly those bytes. The 8-byte (committedLen, prefixCRC)
// pair at ptrOffset is the commit pointer rewritten in place on every
// Commit.
const (
	headerLen = 20
	ptrOffset = 12
)

// Practical bounds on declared lengths: far above anything the pipeline
// writes, low enough that a fuzzed length cannot force a huge allocation
// before the remaining-bytes check.
const (
	maxStageLen   = 256
	maxPayloadLen = 1 << 30
)

// Record is one committed stage snapshot.
type Record struct {
	// Stage names the pipeline boundary ("meta", "alloc", ...).
	Stage string
	// Seq is the record's position in commit order (0-based).
	Seq int
	// Payload is the stage snapshot (JSON for the codec.go stages).
	Payload []byte
}

// Log is an open checkpoint log bound to a file path. A Log is not safe
// for concurrent use; the pipeline commits from a single goroutine.
type Log struct {
	path    string
	records []Record
	byStage map[string]int // stage -> latest record index
	// encoded is the committed on-disk image (header + records): the
	// append offset and commit pointer are derived from it, so Commit
	// never re-encodes or rewrites records already on disk.
	encoded []byte
	// f is the write handle, opened lazily on first Commit and
	// released by Close. A closed log reopens on the next Commit.
	f *os.File
	// fullSync upgrades commits from process-crash durability (the
	// default) to machine-crash durability (fsync data, then pointer).
	fullSync bool
	// onCommit, if set, runs after each commit's pointer publish has
	// made the record durable — the hook the kill-and-resume chaos
	// test uses to SIGKILL the process at a precise checkpoint
	// boundary.
	onCommit func(stage string, seq int)
}

// Create starts a fresh log at path, truncating any existing file. The
// empty log (header only) is published atomically (write-to-temp +
// rename) before Create returns.
func Create(path string) (*Log, error) {
	l := &Log{path: path, byStage: map[string]int{}, encoded: Encode(nil)}
	if err := l.publish(); err != nil {
		return nil, err
	}
	return l, nil
}

// Open resumes the log at path if it exists, or creates a fresh one.
// This is the "checkpoint this run, resuming if a previous attempt was
// killed" entry point.
func Open(path string) (*Log, error) {
	l, err := Load(path)
	if errors.Is(err, os.ErrNotExist) {
		return Create(path)
	}
	return l, err
}

// Load opens an existing log strictly: a missing file is an error
// (wrapping os.ErrNotExist), as is any corruption.
func Load(path string) (*Log, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	records, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	committed := headerLen + int(binary.LittleEndian.Uint32(data[ptrOffset:]))
	l := &Log{
		path:    path,
		records: records,
		byStage: map[string]int{},
		encoded: append([]byte(nil), data[:committed]...),
	}
	for i, r := range records {
		l.byStage[r.Stage] = i
	}
	return l, nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Len returns the number of committed records.
func (l *Log) Len() int { return len(l.records) }

// Stages lists the committed stage names in commit order (duplicates
// kept: a re-committed stage appears once per commit).
func (l *Log) Stages() []string {
	out := make([]string, len(l.records))
	for i, r := range l.records {
		out[i] = r.Stage
	}
	return out
}

// Records returns the committed records in commit order. The slice is a
// copy; payloads are shared. Stage-keyed consumers use Lookup — Records
// serves append-only journals (the service job journal) that replay
// every record, duplicates included.
func (l *Log) Records() []Record {
	return append([]Record(nil), l.records...)
}

// Lookup returns the payload and sequence number of the latest record
// committed for stage.
func (l *Log) Lookup(stage string) (payload []byte, seq int, ok bool) {
	i, ok := l.byStage[stage]
	if !ok {
		return nil, 0, false
	}
	return l.records[i].Payload, l.records[i].Seq, true
}

// OnCommit registers a hook invoked after each commit is durable on
// disk. Chaos tests kill the process from it; services may log from it.
func (l *Log) OnCommit(fn func(stage string, seq int)) { l.onCommit = fn }

// SetFullSync selects the durability mode for subsequent commits. When
// off (the default), a commit is two page-cache writes, which survive
// process death — the pipeline's crash model — at microsecond cost.
// When on, the record append is fsynced before the commit pointer is
// written and the pointer after, so a committed record also survives
// kernel crashes and power loss, at fsync cost per commit.
func (l *Log) SetFullSync(on bool) { l.fullSync = on }

// Close releases the log's write handle. The log remains usable: a
// later Commit reopens the file at the committed offset.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// Commit appends a stage record and publishes it via the header's
// commit pointer. The in-memory state changes only after the disk
// writes succeed, so a failed commit leaves both views at the previous
// record.
func (l *Log) Commit(stage string, payload []byte) error {
	if stage == "" || len(stage) > maxStageLen {
		return fmt.Errorf("ckpt: invalid stage name %q", stage)
	}
	rec := encodeRecord(stage, payload)
	// The committed-region CRC extends incrementally over the new record
	// — recomputing it from scratch (setPointer) would rescan the whole
	// log and turn an append-only journal quadratic.
	crc := crc32.Update(currentCRC(l.encoded), crc32.IEEETable, rec)
	if err := l.appendRecord(rec, crc); err != nil {
		return err
	}
	l.encoded = append(l.encoded, rec...)
	binary.LittleEndian.PutUint32(l.encoded[ptrOffset:], uint32(len(l.encoded)-headerLen))
	binary.LittleEndian.PutUint32(l.encoded[ptrOffset+4:], crc)
	l.records = append(l.records, Record{Stage: stage, Seq: len(l.records), Payload: append([]byte(nil), payload...)})
	l.byStage[stage] = len(l.records) - 1
	if l.onCommit != nil {
		l.onCommit(stage, len(l.records)-1)
	}
	return nil
}

// CommitJSON marshals v and commits it under stage.
func (l *Log) CommitJSON(stage string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("ckpt: encode %s: %w", stage, err)
	}
	return l.Commit(stage, data)
}

// appendRecord writes rec after the committed region and publishes it
// by rewriting the 8-byte commit pointer in place, with crc the
// committed-region CRC extended over rec. A failure after the record
// write truncates the torn tail (best-effort) and leaves the pointer —
// and therefore every reload — at the previous commit.
func (l *Log) appendRecord(rec []byte, crc uint32) error {
	if l.f == nil {
		f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("ckpt: %w", err)
		}
		// Drop uncommitted tail bytes a killed append may have left.
		if err := f.Truncate(int64(len(l.encoded))); err != nil {
			f.Close()
			return fmt.Errorf("ckpt: %w", err)
		}
		l.f = f
	}
	off := int64(len(l.encoded))
	if _, err := l.f.WriteAt(rec, off); err != nil {
		l.f.Truncate(off)
		return fmt.Errorf("ckpt: %w", err)
	}
	if l.fullSync {
		// Data must be durable before the pointer names it.
		if err := l.f.Sync(); err != nil {
			l.f.Truncate(off)
			return fmt.Errorf("ckpt: %w", err)
		}
	}
	var ptr [8]byte
	binary.LittleEndian.PutUint32(ptr[:4], uint32(int(off)-headerLen+len(rec)))
	binary.LittleEndian.PutUint32(ptr[4:], crc)
	if _, err := l.f.WriteAt(ptr[:], ptrOffset); err != nil {
		l.f.Truncate(off)
		return fmt.Errorf("ckpt: %w", err)
	}
	if l.fullSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("ckpt: %w", err)
		}
	}
	return nil
}

// publish writes the full in-memory image atomically: temp file in the
// same directory (rename must not cross filesystems), then rename.
// Used to create the log; commits go through appendRecord.
func (l *Log) publish() error {
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(l.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(l.encoded); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: %w", err)
	}
	if l.fullSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return fmt.Errorf("ckpt: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmpName, l.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: %w", err)
	}
	if l.fullSync {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Only used in full-sync mode.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// currentCRC reads the committed-region CRC from an encoded image.
func currentCRC(img []byte) uint32 {
	return binary.LittleEndian.Uint32(img[ptrOffset+4:])
}

// setPointer rewrites an image's commit pointer to cover every byte
// after the header.
func setPointer(img []byte) {
	binary.LittleEndian.PutUint32(img[ptrOffset:], uint32(len(img)-headerLen))
	binary.LittleEndian.PutUint32(img[ptrOffset+4:], crc32.ChecksumIEEE(img[headerLen:]))
}

// encodeRecord serializes one record:
//
//	stageLen[u32] stage payloadLen[u32] crc32(payload)[u32] payload
//
// All integers are little-endian.
func encodeRecord(stage string, payload []byte) []byte {
	out := make([]byte, 0, 4+len(stage)+4+4+len(payload))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(stage)))
	out = append(out, stage...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = append(out, payload...)
	return out
}

// Encode serializes records into the on-disk format:
//
//	magic[8] version[u32] committedLen[u32] prefixCRC[u32]
//	repeat: stageLen[u32] stage payloadLen[u32] crc32(payload)[u32] payload
//
// with the commit pointer covering every record.
func Encode(records []Record) []byte {
	size := headerLen
	for _, r := range records {
		size += 4 + len(r.Stage) + 4 + 4 + len(r.Payload)
	}
	out := make([]byte, 0, size)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = append(out, 0, 0, 0, 0, 0, 0, 0, 0) // pointer, patched below
	for _, r := range records {
		out = append(out, encodeRecord(r.Stage, r.Payload)...)
	}
	setPointer(out)
	return out
}

// Decode parses a log image, validating magic, version, the committed
// region's pointer and CRC, and every record CRC. It is total over
// arbitrary input (the WAL fuzz target) and strict inside the committed
// region: any truncation or flipped bit there is ErrCorrupt. Bytes past
// the committed pointer are the uncommitted tail of an interrupted
// append and are ignored.
func Decode(data []byte) ([]Record, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d-byte file, want >= %d-byte header", ErrCorrupt, len(data), headerLen)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:len(Magic)])
	}
	if v := binary.LittleEndian.Uint32(data[len(Magic):]); v != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrVersion, v, Version)
	}
	committedLen := binary.LittleEndian.Uint32(data[ptrOffset:])
	sum := binary.LittleEndian.Uint32(data[ptrOffset+4:])
	if uint64(committedLen) > uint64(len(data)-headerLen) {
		return nil, fmt.Errorf("%w: committed length %d exceeds %d file bytes",
			ErrCorrupt, committedLen, len(data)-headerLen)
	}
	rest := data[headerLen : headerLen+int(committedLen)]
	if got := crc32.ChecksumIEEE(rest); got != sum {
		return nil, fmt.Errorf("%w: committed-region CRC mismatch (got %08x, want %08x)", ErrCorrupt, got, sum)
	}

	var records []Record
	for len(rest) > 0 {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated record header", ErrCorrupt)
		}
		stageLen := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if stageLen == 0 || stageLen > maxStageLen || uint64(stageLen) > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: stage length %d out of range", ErrCorrupt, stageLen)
		}
		stage := string(rest[:stageLen])
		rest = rest[stageLen:]
		if len(rest) < 8 {
			return nil, fmt.Errorf("%w: truncated record for stage %q", ErrCorrupt, stage)
		}
		payloadLen := binary.LittleEndian.Uint32(rest)
		recSum := binary.LittleEndian.Uint32(rest[4:])
		rest = rest[8:]
		if payloadLen > maxPayloadLen || uint64(payloadLen) > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: payload length %d exceeds remaining %d bytes (stage %q)",
				ErrCorrupt, payloadLen, len(rest), stage)
		}
		payload := rest[:payloadLen]
		rest = rest[payloadLen:]
		if got := crc32.ChecksumIEEE(payload); got != recSum {
			return nil, fmt.Errorf("%w: CRC mismatch on stage %q (got %08x, want %08x)",
				ErrCorrupt, stage, got, recSum)
		}
		records = append(records, Record{
			Stage:   stage,
			Seq:     len(records),
			Payload: append([]byte(nil), payload...),
		})
	}
	return records, nil
}
