// Stage payload codecs: the snapshots the pipeline commits at each
// stage boundary (JSON, except the large MPMD program which is binary),
// with strict decoders that validate structure before the snapshot is
// trusted. Every decode failure wraps ErrCorrupt (the
// bytes are damaged) and every job-shape disagreement wraps ErrMismatch
// (the bytes are fine but belong to a different job) — callers never
// have to guess which happened.
//
// Bit-identical resume rests on two facts: Go's encoding/json marshals
// float64 in shortest-round-trip form (decode(encode(x)) == x exactly),
// and every stage snapshot below carries only plain exported data — no
// solver diagnostics, caches, or other state that could differ between
// the original and resumed processes.
package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"paradigm/internal/alloc"
	"paradigm/internal/codegen"
	"paradigm/internal/machine"
	"paradigm/internal/matrix"
	"paradigm/internal/mdg"
	"paradigm/internal/sched"
	"paradigm/internal/trainsets"
)

// Meta identifies the job a log belongs to. It is committed first and
// validated on resume: a log replayed against a different program,
// machine, or system size fails with ErrMismatch instead of silently
// resuming the wrong run.
type Meta struct {
	Program string         `json:"program"`
	Procs   int            `json:"procs"`
	Nodes   int            `json:"nodes"`
	Machine machine.Params `json:"machine"`
}

// EncodeMeta marshals the job identity.
func EncodeMeta(m Meta) ([]byte, error) { return json.Marshal(m) }

// DecodeMeta unmarshals and sanity-checks a meta payload.
func DecodeMeta(data []byte) (Meta, error) {
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		return Meta{}, fmt.Errorf("%w: meta: %v", ErrCorrupt, err)
	}
	if m.Procs < 1 || m.Nodes < 1 {
		return Meta{}, fmt.Errorf("%w: meta procs=%d nodes=%d", ErrCorrupt, m.Procs, m.Nodes)
	}
	return m, nil
}

// Check compares the stored identity against the job being resumed.
func (m Meta) Check(program string, procs, nodes int, mp machine.Params) error {
	if m.Program != program || m.Procs != procs || m.Nodes != nodes {
		return fmt.Errorf("%w: log is for %q (p=%d, %d nodes), resuming %q (p=%d, %d nodes)",
			ErrMismatch, m.Program, m.Procs, m.Nodes, program, procs, nodes)
	}
	if !m.Machine.Equal(mp) {
		return fmt.Errorf("%w: log is for machine %q, resuming on %q", ErrMismatch, m.Machine.Name, mp.Name)
	}
	return nil
}

// AllocState is the allocation-stage snapshot: the continuous vector and
// objective decomposition, without the solver's convergence diagnostics
// (iteration counts differ between a fresh solve and a resumed no-op,
// and nothing downstream reads them).
type AllocState struct {
	P   []float64 `json:"p"`
	Phi float64   `json:"phi"`
	Ap  float64   `json:"ap"`
	Cp  float64   `json:"cp"`
}

// EncodeAlloc snapshots an allocation result.
func EncodeAlloc(r alloc.Result) ([]byte, error) {
	return json.Marshal(AllocState{P: r.P, Phi: r.Phi, Ap: r.Ap, Cp: r.Cp})
}

// DecodeAlloc restores an allocation result for a graph with nodes
// nodes.
func DecodeAlloc(data []byte, nodes int) (alloc.Result, error) {
	var st AllocState
	if err := json.Unmarshal(data, &st); err != nil {
		return alloc.Result{}, fmt.Errorf("%w: alloc: %v", ErrCorrupt, err)
	}
	for _, v := range append([]float64{st.Phi, st.Ap, st.Cp}, st.P...) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return alloc.Result{}, fmt.Errorf("%w: alloc: non-finite value", ErrCorrupt)
		}
	}
	if len(st.P) != nodes {
		return alloc.Result{}, fmt.Errorf("%w: alloc vector has %d entries for %d nodes",
			ErrMismatch, len(st.P), nodes)
	}
	return alloc.Result{P: st.P, Phi: st.Phi, Ap: st.Ap, Cp: st.Cp}, nil
}

// EncodeSchedule snapshots a PSA schedule (all fields exported: direct).
func EncodeSchedule(s *sched.Schedule) ([]byte, error) { return json.Marshal(s) }

// DecodeSchedule restores a schedule for a graph with nodes nodes on
// procs processors.
func DecodeSchedule(data []byte, nodes, procs int) (*sched.Schedule, error) {
	var s sched.Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%w: sched: %v", ErrCorrupt, err)
	}
	if len(s.Entries) != nodes || len(s.Alloc) != nodes {
		return nil, fmt.Errorf("%w: schedule covers %d nodes (alloc %d), resuming %d",
			ErrMismatch, len(s.Entries), len(s.Alloc), nodes)
	}
	if s.ProcsTotal != procs {
		return nil, fmt.Errorf("%w: schedule is for %d processors, resuming %d",
			ErrMismatch, s.ProcsTotal, procs)
	}
	for i, e := range s.Entries {
		for _, p := range e.Procs {
			if p < 0 || p >= procs {
				return nil, fmt.Errorf("%w: sched entry %d uses processor %d outside [0,%d)",
					ErrCorrupt, i, p, procs)
			}
		}
	}
	return &s, nil
}

// The MPMD program is by far the largest stage payload (hundreds of KB
// at production scale), so unlike the other stages it uses a compact
// varint binary encoding instead of JSON: an order of magnitude smaller
// and cheaper to commit, with the same exact round-trip (instructions
// carry only ints and strings). Layout:
//
//	format[u8] procs[uvarint] streams[uvarint]
//	per stream: count[uvarint], then per instruction an opcode byte
//	followed by its fields; ints are zig-zag varints, strings and
//	groups are length-prefixed.
const streamsFormat = 1

// Instruction opcodes in the binary streams encoding.
const (
	opSend = 1
	opRecv = 2
	opMove = 3
	opExec = 4
)

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendInt(b []byte, v int) []byte { return binary.AppendVarint(b, int64(v)) }

func appendRect(b []byte, r codegen.Rect) []byte {
	b = appendInt(b, r.R0)
	b = appendInt(b, r.R1)
	b = appendInt(b, r.C0)
	return appendInt(b, r.C1)
}

// streamsReader is a cursor over the binary streams payload. The first
// decode error sticks; every later read returns zero values, so decode
// loops stay linear and check err once.
type streamsReader struct {
	data []byte
	err  error
}

func (r *streamsReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: codegen: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (r *streamsReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.data) == 0 {
		r.fail("truncated payload")
		return 0
	}
	b := r.data[0]
	r.data = r.data[1:]
	return b
}

func (r *streamsReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *streamsReader) int() int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.data = r.data[n:]
	return int(v)
}

func (r *streamsReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)) {
		r.fail("string length %d exceeds remaining %d bytes", n, len(r.data))
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

func (r *streamsReader) rect() codegen.Rect {
	return codegen.Rect{R0: r.int(), R1: r.int(), C0: r.int(), C1: r.int()}
}

// EncodeStreams snapshots a generated MPMD program.
func EncodeStreams(st *codegen.Streams) ([]byte, error) {
	out := make([]byte, 0, 64<<10)
	out = append(out, streamsFormat)
	out = binary.AppendUvarint(out, uint64(st.Procs))
	out = binary.AppendUvarint(out, uint64(len(st.PerProc)))
	for _, stream := range st.PerProc {
		out = binary.AppendUvarint(out, uint64(len(stream)))
		for _, in := range stream {
			switch v := in.(type) {
			case codegen.Send:
				out = append(out, opSend)
				out = appendStr(out, v.Tag)
				out = appendInt(out, v.To)
				out = appendRect(out, v.Payload)
				out = appendStr(out, v.SrcInstance)
			case codegen.Recv:
				out = append(out, opRecv)
				out = appendStr(out, v.Tag)
				out = appendInt(out, v.From)
				out = appendRect(out, v.Payload)
				out = appendStr(out, v.DstInstance)
				out = appendRect(out, v.Block)
			case codegen.Move:
				out = append(out, opMove)
				out = appendRect(out, v.Payload)
				out = appendStr(out, v.SrcInstance)
				out = appendStr(out, v.DstInstance)
				out = appendRect(out, v.Block)
			case codegen.Exec:
				out = append(out, opExec)
				out = appendInt(out, int(v.Node))
				out = binary.AppendUvarint(out, uint64(len(v.Group)))
				for _, g := range v.Group {
					out = appendInt(out, g)
				}
				out = appendInt(out, v.MySlot)
			default:
				return nil, fmt.Errorf("ckpt: unknown instruction type %T", in)
			}
		}
	}
	return out, nil
}

// DecodeStreams restores an MPMD program for procs processors.
func DecodeStreams(data []byte, procs int) (*codegen.Streams, error) {
	r := &streamsReader{data: data}
	if f := r.byte(); r.err == nil && f != streamsFormat {
		return nil, fmt.Errorf("%w: codegen: unknown streams format %d", ErrCorrupt, f)
	}
	gotProcs := int(r.uvarint())
	streams := int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	if gotProcs != procs {
		return nil, fmt.Errorf("%w: streams are for %d processors, resuming %d",
			ErrMismatch, gotProcs, procs)
	}
	if streams != gotProcs {
		return nil, fmt.Errorf("%w: %d streams for %d processors", ErrCorrupt, streams, gotProcs)
	}
	st := &codegen.Streams{Procs: gotProcs, PerProc: make([][]codegen.Instr, gotProcs)}
	for pi := 0; pi < streams; pi++ {
		count := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if count > uint64(len(r.data)) {
			return nil, fmt.Errorf("%w: codegen: stream %d declares %d instructions with %d bytes left",
				ErrCorrupt, pi, count, len(r.data))
		}
		out := make([]codegen.Instr, 0, count)
		for i := uint64(0); i < count; i++ {
			switch op := r.byte(); op {
			case opSend:
				out = append(out, codegen.Send{Tag: r.str(), To: r.int(),
					Payload: r.rect(), SrcInstance: r.str()})
			case opRecv:
				out = append(out, codegen.Recv{Tag: r.str(), From: r.int(),
					Payload: r.rect(), DstInstance: r.str(), Block: r.rect()})
			case opMove:
				out = append(out, codegen.Move{Payload: r.rect(),
					SrcInstance: r.str(), DstInstance: r.str(), Block: r.rect()})
			case opExec:
				e := codegen.Exec{Node: mdg.NodeID(r.int())}
				n := r.uvarint()
				if r.err != nil {
					return nil, r.err
				}
				if n > uint64(len(r.data))+1 {
					return nil, fmt.Errorf("%w: codegen: group of %d members with %d bytes left",
						ErrCorrupt, n, len(r.data))
				}
				if n > 0 {
					e.Group = make([]int, n)
					for gi := range e.Group {
						e.Group[gi] = r.int()
					}
				}
				e.MySlot = r.int()
				out = append(out, e)
			default:
				if r.err != nil {
					return nil, r.err
				}
				return nil, fmt.Errorf("%w: codegen: unknown instruction opcode %d", ErrCorrupt, op)
			}
			if r.err != nil {
				return nil, r.err
			}
		}
		st.PerProc[pi] = out
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("%w: codegen: %d trailing bytes", ErrCorrupt, len(r.data))
	}
	return st, nil
}

// EncodeCalibration snapshots a calibration fit.
func EncodeCalibration(s trainsets.Snapshot) ([]byte, error) { return json.Marshal(s) }

// DecodeCalibration restores a calibration snapshot for machine mp.
func DecodeCalibration(data []byte, mp machine.Params) (trainsets.Snapshot, error) {
	var s trainsets.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return trainsets.Snapshot{}, fmt.Errorf("%w: calibrate: %v", ErrCorrupt, err)
	}
	if len(s.ProcSweep) == 0 {
		return trainsets.Snapshot{}, fmt.Errorf("%w: calibrate: empty processor sweep", ErrCorrupt)
	}
	if !s.Machine.Equal(mp) {
		return trainsets.Snapshot{}, fmt.Errorf("%w: calibration is for machine %q, resuming on %q",
			ErrMismatch, s.Machine.Name, mp.Name)
	}
	return s, nil
}

// SalvageState is the partial-sim-state snapshot one recovery attempt
// commits: which processors died, and every array restored bit-for-bit
// from surviving blocks via the CompletedFrontier/SalvageArray
// machinery. On a resumed run the recomputed salvage is validated
// against this record — a divergence means non-deterministic recovery
// and fails loudly.
type SalvageState struct {
	Attempt   int                       `json:"attempt"`
	Survivors int                       `json:"survivors"`
	Failed    []int                     `json:"failed"`
	Arrays    map[string]*matrix.Matrix `json:"arrays"`
}

// EncodeSalvage snapshots one recovery attempt's salvage.
func EncodeSalvage(s SalvageState) ([]byte, error) { return json.Marshal(s) }

// DecodeSalvage restores a salvage snapshot.
func DecodeSalvage(data []byte) (SalvageState, error) {
	var s SalvageState
	if err := json.Unmarshal(data, &s); err != nil {
		return SalvageState{}, fmt.Errorf("%w: salvage: %v", ErrCorrupt, err)
	}
	for name, m := range s.Arrays {
		if m == nil || len(m.Data) != m.Rows*m.Cols {
			return SalvageState{}, fmt.Errorf("%w: salvage array %q has inconsistent shape", ErrCorrupt, name)
		}
	}
	return s, nil
}

// DoneState records the completed run's headline numbers. A resumed run
// that finds a done record validates its own result against it instead
// of re-committing — the final guard that resume was bit-identical.
type DoneState struct {
	Makespan     float64 `json:"makespan"`
	Messages     int     `json:"messages"`
	NetworkBytes int     `json:"network_bytes"`
	Recovered    bool    `json:"recovered"`
	Attempts     int     `json:"attempts"`
}

// EncodeDone snapshots the run outcome.
func EncodeDone(d DoneState) ([]byte, error) { return json.Marshal(d) }

// DecodeDone restores a run outcome.
func DecodeDone(data []byte) (DoneState, error) {
	var d DoneState
	if err := json.Unmarshal(data, &d); err != nil {
		return DoneState{}, fmt.Errorf("%w: done: %v", ErrCorrupt, err)
	}
	return d, nil
}
