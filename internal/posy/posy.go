// Package posy implements posynomial functions symbolically.
//
// A posynomial is a finite sum of monomials c·Π v^a with strictly positive
// coefficients c and arbitrary real exponents a over positive variables v.
// Posynomials are closed under addition, multiplication, positive scaling
// and positive integer powers, and become convex under the log-variable
// substitution — the property Section 2 of the paper relies on to make the
// allocation problem a convex program.
//
// The package is used two ways:
//
//   - by internal/costmodel to state the paper's cost functions (Equations
//     1–3) symbolically, so that tests can verify Lemma 1 and Lemma 2
//     (each cost function, and the products t^C_i·p_i, t^R_ij·p_j,
//     t^S_ij·p_i, are posynomials) mechanically rather than on paper;
//   - to cross-check the log-space expression DAG in internal/expr against
//     an independent evaluation path.
package posy

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Monomial is c·Π v^Exps[v] with c > 0 over named positive variables.
type Monomial struct {
	Coeff float64
	Exps  map[string]float64
}

// Posynomial is a sum of monomials. The zero-length posynomial represents
// the constant 0 (a degenerate but convenient case: 0 is not a posynomial
// in the strict sense but is absorbed by addition).
type Posynomial struct {
	Terms []Monomial
}

// Const returns the constant posynomial c. c must be >= 0.
func Const(c float64) Posynomial {
	if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("posy: constant %v must be finite and >= 0", c))
	}
	if c == 0 {
		return Posynomial{}
	}
	return Posynomial{Terms: []Monomial{{Coeff: c}}}
}

// Var returns the posynomial consisting of the single variable name.
func Var(name string) Posynomial {
	return Mono(1, map[string]float64{name: 1})
}

// Mono returns the single-monomial posynomial c·Π v^exps[v]. c must be >= 0;
// c == 0 yields the zero posynomial.
func Mono(c float64, exps map[string]float64) Posynomial {
	if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("posy: coefficient %v must be finite and >= 0", c))
	}
	if c == 0 {
		return Posynomial{}
	}
	m := Monomial{Coeff: c, Exps: map[string]float64{}}
	for v, a := range exps {
		if a != 0 {
			m.Exps[v] = a
		}
	}
	return Posynomial{Terms: []Monomial{m}}
}

func (m Monomial) key() string {
	vars := make([]string, 0, len(m.Exps))
	for v := range m.Exps {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	for _, v := range vars {
		fmt.Fprintf(&b, "%s^%g;", v, m.Exps[v])
	}
	return b.String()
}

// normalize merges monomials with identical exponent vectors, drops
// zero-coefficient terms and zero exponents (p^0 is the constant 1),
// producing a canonical ordering.
func normalize(terms []Monomial) []Monomial {
	byKey := map[string]*Monomial{}
	order := []string{}
	for _, t := range terms {
		if t.Coeff == 0 {
			continue
		}
		cp := Monomial{Coeff: t.Coeff, Exps: map[string]float64{}}
		for v, a := range t.Exps {
			if a != 0 {
				cp.Exps[v] = a
			}
		}
		k := cp.key()
		if ex, ok := byKey[k]; ok {
			ex.Coeff += cp.Coeff
		} else {
			byKey[k] = &cp
			order = append(order, k)
		}
	}
	sort.Strings(order)
	out := make([]Monomial, 0, len(order))
	for _, k := range order {
		if byKey[k].Coeff != 0 {
			out = append(out, *byKey[k])
		}
	}
	return out
}

// Add returns p + q.
func (p Posynomial) Add(q Posynomial) Posynomial {
	return Posynomial{Terms: normalize(append(append([]Monomial{}, p.Terms...), q.Terms...))}
}

// AddConst returns p + c, c >= 0.
func (p Posynomial) AddConst(c float64) Posynomial { return p.Add(Const(c)) }

// Scale returns c·p with c >= 0.
func (p Posynomial) Scale(c float64) Posynomial {
	if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("posy: scale factor %v must be finite and >= 0", c))
	}
	out := Posynomial{Terms: make([]Monomial, 0, len(p.Terms))}
	for _, t := range p.Terms {
		m := Monomial{Coeff: t.Coeff * c, Exps: map[string]float64{}}
		for v, a := range t.Exps {
			m.Exps[v] = a
		}
		out.Terms = append(out.Terms, m)
	}
	out.Terms = normalize(out.Terms)
	return out
}

// Mul returns p·q (the product of posynomials is a posynomial).
func (p Posynomial) Mul(q Posynomial) Posynomial {
	out := Posynomial{}
	for _, a := range p.Terms {
		for _, b := range q.Terms {
			m := Monomial{Coeff: a.Coeff * b.Coeff, Exps: map[string]float64{}}
			for v, e := range a.Exps {
				m.Exps[v] += e
			}
			for v, e := range b.Exps {
				m.Exps[v] += e
			}
			out.Terms = append(out.Terms, m)
		}
	}
	out.Terms = normalize(out.Terms)
	return out
}

// MulMono returns p multiplied by the monomial c·Π v^exps[v]. Monomial
// division (negative exponents) keeps the result a posynomial, which is
// why T_i/p etc. remain in the class.
func (p Posynomial) MulMono(c float64, exps map[string]float64) Posynomial {
	return p.Mul(Mono(c, exps))
}

// Pow returns p^k for a nonnegative integer k (p^0 = 1).
func (p Posynomial) Pow(k int) Posynomial {
	if k < 0 {
		panic("posy: negative powers of general posynomials are not posynomials")
	}
	out := Const(1)
	for i := 0; i < k; i++ {
		out = out.Mul(p)
	}
	return out
}

// Eval evaluates p at the given positive variable assignment. Missing
// variables panic (they would silently evaluate as 1 otherwise).
func (p Posynomial) Eval(vals map[string]float64) float64 {
	s := 0.0
	for _, t := range p.Terms {
		term := t.Coeff
		for v, a := range t.Exps {
			val, ok := vals[v]
			if !ok {
				panic(fmt.Sprintf("posy: variable %q not assigned", v))
			}
			if val <= 0 {
				panic(fmt.Sprintf("posy: variable %q = %v must be positive", v, val))
			}
			term *= math.Pow(val, a)
		}
		s += term
	}
	return s
}

// Vars returns the sorted set of variable names appearing in p.
func (p Posynomial) Vars() []string {
	set := map[string]bool{}
	for _, t := range p.Terms {
		for v := range t.Exps {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// IsPosynomial reports whether every term has a strictly positive finite
// coefficient — the defining property. The zero posynomial reports true
// (it is the additive identity of the class).
func (p Posynomial) IsPosynomial() bool {
	for _, t := range p.Terms {
		if !(t.Coeff > 0) || math.IsInf(t.Coeff, 0) {
			return false
		}
		for _, a := range t.Exps {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return false
			}
		}
	}
	return true
}

// Substitute replaces variable name with the monomial c·Π v^exps[v]
// everywhere it occurs. Substituting a monomial into a posynomial yields a
// posynomial (used e.g. to pin p_j to a constant).
func (p Posynomial) Substitute(name string, c float64, exps map[string]float64) Posynomial {
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("posy: substitution value %v must be finite and > 0", c))
	}
	out := Posynomial{}
	for _, t := range p.Terms {
		a, has := t.Exps[name]
		if !has {
			out.Terms = append(out.Terms, t)
			continue
		}
		m := Monomial{Coeff: t.Coeff * math.Pow(c, a), Exps: map[string]float64{}}
		for v, e := range t.Exps {
			if v != name {
				m.Exps[v] = e
			}
		}
		for v, e := range exps {
			m.Exps[v] += e * a
		}
		out.Terms = append(out.Terms, m)
	}
	out.Terms = normalize(out.Terms)
	return out
}

// String renders the posynomial in a stable human-readable form.
func (p Posynomial) String() string {
	if len(p.Terms) == 0 {
		return "0"
	}
	parts := make([]string, 0, len(p.Terms))
	for _, t := range p.Terms {
		vars := make([]string, 0, len(t.Exps))
		for v := range t.Exps {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		var b strings.Builder
		fmt.Fprintf(&b, "%.6g", t.Coeff)
		for _, v := range vars {
			a := t.Exps[v]
			if a == 1 {
				fmt.Fprintf(&b, "·%s", v)
			} else {
				fmt.Fprintf(&b, "·%s^%g", v, a)
			}
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, " + ")
}
