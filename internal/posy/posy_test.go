package posy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

func TestConstAndVar(t *testing.T) {
	c := Const(3)
	if got := c.Eval(nil); got != 3 {
		t.Fatalf("Const eval = %v", got)
	}
	v := Var("p")
	if got := v.Eval(map[string]float64{"p": 4}); got != 4 {
		t.Fatalf("Var eval = %v", got)
	}
}

func TestZeroConstIsEmpty(t *testing.T) {
	z := Const(0)
	if len(z.Terms) != 0 {
		t.Fatalf("Const(0) should have no terms")
	}
	if got := z.Eval(nil); got != 0 {
		t.Fatalf("zero eval = %v", got)
	}
	if !z.IsPosynomial() {
		t.Fatalf("zero should report IsPosynomial (additive identity)")
	}
}

func TestAddMergesLikeTerms(t *testing.T) {
	a := Mono(2, map[string]float64{"p": -1})
	b := Mono(3, map[string]float64{"p": -1})
	s := a.Add(b)
	if len(s.Terms) != 1 {
		t.Fatalf("like terms not merged: %v", s)
	}
	if got := s.Eval(map[string]float64{"p": 5}); !approx(got, 1, 1e-12) {
		t.Fatalf("eval = %v, want 1", got)
	}
}

func TestMulDistributes(t *testing.T) {
	// (1 + p)·(2 + 1/p) = 2 + 1/p + 2p + 1 = 3 + 1/p + 2p
	a := Const(1).Add(Var("p"))
	b := Const(2).Add(Mono(1, map[string]float64{"p": -1}))
	m := a.Mul(b)
	if len(m.Terms) != 3 {
		t.Fatalf("expected 3 terms after merge, got %v: %s", len(m.Terms), m)
	}
	vals := map[string]float64{"p": 2}
	if got, want := m.Eval(vals), 3.0+0.5+4.0; !approx(got, want, 1e-12) {
		t.Fatalf("eval = %v, want %v", got, want)
	}
}

func TestPow(t *testing.T) {
	p := Const(1).Add(Var("x"))
	sq := p.Pow(2) // 1 + 2x + x^2
	if len(sq.Terms) != 3 {
		t.Fatalf("Pow terms = %d, want 3", len(sq.Terms))
	}
	if got := sq.Eval(map[string]float64{"x": 3}); !approx(got, 16, 1e-12) {
		t.Fatalf("eval = %v, want 16", got)
	}
	one := p.Pow(0)
	if got := one.Eval(map[string]float64{"x": 99}); got != 1 {
		t.Fatalf("p^0 = %v, want 1", got)
	}
}

func TestSubstituteMonomial(t *testing.T) {
	// p = 2q^2 in 3·p^-1: 3/(2q^2) = 1.5·q^-2
	p := Mono(3, map[string]float64{"p": -1})
	s := p.Substitute("p", 2, map[string]float64{"q": 2})
	want := s.Eval(map[string]float64{"q": 3})
	if !approx(want, 3.0/(2*9), 1e-12) {
		t.Fatalf("substitute eval = %v", want)
	}
	if !s.IsPosynomial() {
		t.Fatalf("substitution must preserve posynomial form")
	}
}

func TestSubstituteConstant(t *testing.T) {
	p := Var("p").Add(Mono(4, map[string]float64{"p": -1, "q": 1}))
	s := p.Substitute("p", 2, nil)
	if got := s.Eval(map[string]float64{"q": 3}); !approx(got, 2+6, 1e-12) {
		t.Fatalf("eval = %v, want 8", got)
	}
	if len(s.Vars()) != 1 || s.Vars()[0] != "q" {
		t.Fatalf("vars = %v, want [q]", s.Vars())
	}
}

func TestVarsSorted(t *testing.T) {
	p := Mono(1, map[string]float64{"pj": 1, "pi": -1}).Add(Var("a"))
	got := p.Vars()
	if len(got) != 3 || got[0] != "a" || got[1] != "pi" || got[2] != "pj" {
		t.Fatalf("Vars = %v", got)
	}
}

func TestStringStable(t *testing.T) {
	p := Mono(2, map[string]float64{"p": -1}).Add(Const(1))
	s1, s2 := p.String(), p.String()
	if s1 != s2 || s1 == "" {
		t.Fatalf("String unstable: %q vs %q", s1, s2)
	}
	if Const(0).String() != "0" {
		t.Fatalf("zero String = %q", Const(0).String())
	}
}

func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"negative const", func() { Const(-1) }},
		{"negative mono", func() { Mono(-2, nil) }},
		{"negative scale", func() { Const(1).Scale(-1) }},
		{"negative pow", func() { Var("p").Pow(-1) }},
		{"eval missing var", func() { Var("p").Eval(nil) }},
		{"eval nonpositive var", func() { Var("p").Eval(map[string]float64{"p": 0}) }},
		{"substitute nonpositive", func() { Var("p").Substitute("p", 0, nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

// randomPosy builds a random posynomial over variables p, q.
func randomPosy(rng *rand.Rand) Posynomial {
	out := Posynomial{}
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		out = out.Add(Mono(0.1+rng.Float64()*3, map[string]float64{
			"p": float64(rng.Intn(7)-3) / 2,
			"q": float64(rng.Intn(7)-3) / 2,
		}))
	}
	return out
}

// TestClosureProperties: posynomials are closed under +, ·, scaling and
// integer powers (testing/quick over random instances).
func TestClosureProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		a, b := randomPosy(r), randomPosy(r)
		if !a.Add(b).IsPosynomial() {
			return false
		}
		if !a.Mul(b).IsPosynomial() {
			return false
		}
		if !a.Scale(r.Float64() * 5).IsPosynomial() {
			return false
		}
		return a.Pow(1 + r.Intn(3)).IsPosynomial()
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAlgebraIdentities checks (a+b)(c) == ac + bc and commutativity on
// random values.
func TestAlgebraIdentities(t *testing.T) {
	f := func(seed uint16, pv, qv uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		a, b, c := randomPosy(r), randomPosy(r), randomPosy(r)
		vals := map[string]float64{
			"p": 0.5 + float64(pv)/16,
			"q": 0.5 + float64(qv)/16,
		}
		lhs := a.Add(b).Mul(c).Eval(vals)
		rhs := a.Mul(c).Add(b.Mul(c)).Eval(vals)
		if !approx(lhs, rhs, 1e-9) {
			return false
		}
		return approx(a.Mul(b).Eval(vals), b.Mul(a).Eval(vals), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLogSpaceConvexitySampled: the defining analytic property — a random
// posynomial is convex in log variables (midpoint inequality).
func TestLogSpaceConvexitySampled(t *testing.T) {
	f := func(seed uint16, x0, x1, y0, y1 uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		p := randomPosy(r)
		xa := []float64{float64(x0)/64 - 2, float64(x1)/64 - 2}
		ya := []float64{float64(y0)/64 - 2, float64(y1)/64 - 2}
		at := func(x []float64) float64 {
			return p.Eval(map[string]float64{"p": math.Exp(x[0]), "q": math.Exp(x[1])})
		}
		fx, fy := at(xa), at(ya)
		fm := at([]float64{(xa[0] + ya[0]) / 2, (xa[1] + ya[1]) / 2})
		return fm <= (fx+fy)/2+1e-9*(1+fx+fy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
