// The machine-model backend interface: one contract covering everything
// the pipeline asks of a target machine, with three interchangeable
// implementations behind it (DESIGN.md §13).
//
// The pipeline consumes a machine model at three points:
//
//   - program build time, where each loop nest needs Amdahl (α, τ)
//     processing parameters (Backend.Loop);
//   - allocation and scheduling time, where edge delays need the
//     t_ss/t_ps/t_sr/t_pr/t_n transfer surface (Backend.Transfer);
//   - execution time, where the simulator needs the ground-truth
//     constants (Backend.SimParams).
//
// The trained backend (internal/trainsets) fills the first two by the
// paper's training-sets regression; the analytical backend (this
// package) derives them in closed form from the ground-truth constants
// with no calibration run; the file-loaded backend reads a JSON Spec.
package machine

import (
	"fmt"

	"paradigm/internal/costmodel"
)

// Kind names a backend implementation family.
type Kind string

const (
	// KindTrained is the training-sets regression of Section 4: model
	// parameters fitted to measured sweeps on the simulated machine.
	KindTrained Kind = "trained"
	// KindAnalytical is the closed-form roofline estimator: model
	// parameters derived directly from the machine constants, no
	// calibration run needed.
	KindAnalytical Kind = "analytical"
	// KindFile is a JSON machine spec loaded from the database or a
	// user file, estimated analytically unless the spec pins an explicit
	// transfer surface.
	KindFile Kind = "file"
)

// Topology describes the interconnect family of a machine, carried for
// topology-aware extensions. Dims, when present, multiply out to the
// processor count (e.g. a mesh's side lengths).
type Topology struct {
	// Kind is the interconnect family: "fat-tree", "mesh", "grid",
	// "full", or "" when unknown.
	Kind string `json:"kind"`
	Dims []int  `json:"dims,omitempty"`
}

// LoopShape is the cost-relevant geometry of one loop nest: the kernel
// operation name, its matrix extents, and whether it runs on a blocked-2D
// (grid) layout. It is everything a backend needs to price processing.
type LoopShape struct {
	// Op is the kernel operation name: "none", "init", "add", "sub",
	// "mul", "extract" or "assemble4".
	Op      string
	M, N, K int
	Grid    bool
}

// Key is the canonical cache key for a shape. Its format is the trained
// backend's historical kernel cache key, so calibration snapshots taken
// before the backend interface replay byte-identically.
func (s LoopShape) Key() string {
	layout := "linear"
	if s.Grid {
		layout = "grid"
	}
	return fmt.Sprintf("%s:%dx%dx%d:%s", s.Op, s.M, s.N, s.K, layout)
}

// LoopSpec is a loop nest a backend can price: internal/kernels.Kernel
// implements it. The interface keeps the dependency arrow pointing the
// right way — kernels imports machine for Params, so machine sees loop
// nests only through this contract.
type LoopSpec interface {
	// Validate checks the loop's shape invariants.
	Validate() error
	// Shape returns the cost-relevant geometry.
	Shape() LoopShape
	// MaxProcTime is the ground-truth execution time of the loop on a
	// q-processor group of the profile — the measurable quantity the
	// trained backend sweeps.
	MaxProcTime(mp Params, q int) float64
}

// LoopSource is the narrow processing-cost surface program builders
// consume: both *trainsets.Calibration and every Backend satisfy it.
type LoopSource interface {
	// Loop returns Amdahl (α, τ) parameters for one named loop nest.
	Loop(name string, spec LoopSpec) (costmodel.LoopParams, error)
}

// Backend is one machine model: everything the allocate → schedule →
// simulate pipeline asks of a target machine. Implementations must be
// safe for concurrent use and deterministic — the same backend value
// must always return the same parameters, or checkpoint resume and the
// differential oracle both break.
type Backend interface {
	LoopSource

	// Name identifies the machine (e.g. "CM5").
	Name() string
	// Kind names the implementation family.
	Kind() Kind
	// Procs is the native system size of the profile; pipelines may run
	// any subset via SimParams().WithProcs.
	Procs() int
	// SimParams returns the ground-truth simulator constants.
	SimParams() Params
	// Transfer returns the fitted or derived redistribution cost surface
	// covering the 1D, 2D and grid regimes.
	Transfer() costmodel.TransferParams
	// Speed returns processor proc's relative speed multiplier (1 when
	// homogeneous or out of range).
	Speed(proc int) float64
	// Capacity returns processor proc's memory capacity in bytes (0:
	// unbounded).
	Capacity(proc int) int64
	// Topology describes the interconnect.
	Topology() Topology
}

// DefaultTopology maps the built-in profile names to their interconnect
// families: the CM-5 was a fat-tree, the Paragon a 2D mesh.
func DefaultTopology(name string, procs int) Topology {
	switch name {
	case "CM5":
		return Topology{Kind: "fat-tree"}
	case "Paragon":
		return Topology{Kind: "mesh", Dims: meshDims(procs)}
	default:
		return Topology{}
	}
}

// meshDims returns the most-square 2D factorization of p.
func meshDims(p int) []int {
	if p < 1 {
		return nil
	}
	r := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			r = d
		}
	}
	return []int{r, p / r}
}
