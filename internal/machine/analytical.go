// The analytical backend: a roofline-style closed-form estimator that
// derives the paper's model parameters directly from the ground-truth
// machine constants, with no calibration run. It trades the trained
// backend's fit quality (which absorbs ceiling imbalance and per-message
// residuals) for instant availability — exactly what a new machine spec
// needs before anyone has run the training sets on it.
package machine

import (
	"fmt"
	"math"

	"paradigm/internal/costmodel"
)

// Analytical prices loops and transfers in closed form from a Params
// profile.
type Analytical struct {
	p Params
}

var _ Backend = (*Analytical)(nil)

// NewAnalytical returns the closed-form backend for a validated profile.
func NewAnalytical(p Params) (*Analytical, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Analytical{p: p}, nil
}

// Name implements Backend.
func (a *Analytical) Name() string { return a.p.Name }

// Kind implements Backend.
func (a *Analytical) Kind() Kind { return KindAnalytical }

// Procs implements Backend.
func (a *Analytical) Procs() int { return a.p.Procs }

// SimParams implements Backend.
func (a *Analytical) SimParams() Params { return a.p }

// Speed implements Backend.
func (a *Analytical) Speed(proc int) float64 { return a.p.SpeedOf(proc) }

// Capacity implements Backend.
func (a *Analytical) Capacity(proc int) int64 { return a.p.CapacityOf(proc) }

// Topology implements Backend.
func (a *Analytical) Topology() Topology { return DefaultTopology(a.p.Name, a.p.Procs) }

// Transfer derives the redistribution surface from the per-message
// constants: startups map to the fixed terms, per-byte rates to the
// linear terms, and tag matching — paid per message at the receiver —
// folds into the receive startup. The trained backend fits the same
// five parameters from measured sweeps; on these profiles the two agree
// to within the regression's residuals.
func (a *Analytical) Transfer() costmodel.TransferParams {
	return costmodel.TransferParams{
		Tss: a.p.SendStartup,
		Tps: a.p.SendPerByte,
		Tsr: a.p.RecvStartup + a.p.MsgMatchOverhead,
		Tpr: a.p.RecvPerByte,
		Tn:  a.p.NetPerByte,
	}
}

// Loop derives Amdahl (α, τ) for a loop nest: τ is the serial execution
// time (prologue + work + the full collective tree at the native system
// size), and ατ is the part that does not shrink with the group — the
// prologue plus the collectives, the same decomposition the trained
// regression recovers from its sweep.
func (a *Analytical) Loop(name string, spec LoopSpec) (costmodel.LoopParams, error) {
	if err := spec.Validate(); err != nil {
		return costmodel.LoopParams{}, err
	}
	return analyticalLoop(a.p, spec.Shape())
}

// analyticalLoop is the shared closed-form estimate (also used by the
// file-loaded backend).
func analyticalLoop(p Params, sh LoopShape) (costmodel.LoopParams, error) {
	if sh.Op == "none" {
		return costmodel.LoopParams{}, nil
	}
	elems := float64(sh.M) * float64(sh.N)
	stages := 0.0
	if p.Procs > 1 {
		stages = math.Ceil(math.Log2(float64(p.Procs)))
	}
	var work, comm float64
	switch sh.Op {
	case "init":
		work = elems * p.InitElemTime
	case "add", "sub":
		work = elems * p.AddElemTime
	case "mul":
		work = elems * float64(sh.K) * p.FMATime
		// The all-gather of the second operand (and, on grids, of the row
		// panel too): a log-depth tree whose cost does not shrink with the
		// group — the dominant serial fraction of a distributed multiply.
		bytes := float64(sh.K*sh.N) * 8
		if sh.Grid {
			bytes += float64(sh.M*sh.K) * 8
		}
		comm = stages * (p.CollStartup + bytes*p.CollPerByte)
	case "extract", "assemble4":
		work = elems * 8 * p.CopyPerByte
		// One shuffle exchange to land the blocks.
		comm = p.CollStartup + elems*8*p.CollPerByte
	default:
		return costmodel.LoopParams{}, fmt.Errorf("machine: analytical backend cannot price op %q", sh.Op)
	}
	serial := p.LoopOverhead + comm
	tau := serial + work
	alpha := 0.0
	if tau > 0 {
		alpha = math.Min(1, serial/tau)
	}
	return costmodel.LoopParams{Alpha: alpha, Tau: tau}, nil
}
