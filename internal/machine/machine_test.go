package machine

import "testing"

func TestCM5Validates(t *testing.T) {
	for _, procs := range []int{1, 4, 16, 32, 64} {
		if err := CM5(procs).Validate(); err != nil {
			t.Fatalf("CM5(%d): %v", procs, err)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	p := CM5(0)
	if err := p.Validate(); err == nil {
		t.Fatal("want error for 0 processors")
	}
	p = CM5(4)
	p.SendStartup = -1
	if err := p.Validate(); err == nil {
		t.Fatal("want error for negative cost")
	}
	p = CM5(4)
	p.CopyPerByte = -1e-9
	if err := p.Validate(); err == nil {
		t.Fatal("want error for negative copy cost")
	}
}

func TestWithProcs(t *testing.T) {
	p := CM5(64)
	q := p.WithProcs(16)
	if q.Procs != 16 || p.Procs != 64 {
		t.Fatalf("WithProcs mutated or failed: %d / %d", q.Procs, p.Procs)
	}
	if q.SendStartup != p.SendStartup {
		t.Fatal("WithProcs must preserve costs")
	}
}

func TestCM5MessagingMagnitudes(t *testing.T) {
	// Ground truth should sit near the paper's fitted Table 2 values.
	p := CM5(64)
	if p.SendStartup < 500e-6 || p.SendStartup > 1000e-6 {
		t.Fatalf("SendStartup = %v, want ~778 µs scale", p.SendStartup)
	}
	if p.NetPerByte != 0 {
		t.Fatal("CM-5 profile must fold network time into receives (t_n = 0)")
	}
}

func TestParagonValidatesAndDiffers(t *testing.T) {
	p := Paragon(64)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NetPerByte <= 0 {
		t.Fatal("Paragon must have a real network transit term")
	}
	cm5 := CM5(64)
	if p.FMATime >= cm5.FMATime {
		t.Fatal("Paragon processors should be faster than the CM-5's")
	}
	if p.SendStartup >= cm5.SendStartup {
		t.Fatal("Paragon startups should be lower than the CM-5's")
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	p := CM5(8)
	p.JitterFrac = 0.25
	p.JitterSeed = 42
	seen := map[float64]bool{}
	for node := 0; node < 10; node++ {
		for proc := 0; proc < 8; proc++ {
			j1 := p.Jitter(node, proc)
			j2 := p.Jitter(node, proc)
			if j1 != j2 {
				t.Fatal("jitter must be deterministic")
			}
			if j1 < 1 || j1 >= 1.25 {
				t.Fatalf("jitter %v outside [1, 1.25)", j1)
			}
			seen[j1] = true
		}
	}
	if len(seen) < 40 {
		t.Fatalf("jitter not varied enough: %d distinct values", len(seen))
	}
	p.JitterFrac = 0
	if p.Jitter(3, 4) != 1 {
		t.Fatal("zero jitter must be exactly 1")
	}
	p.JitterFrac = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative jitter must fail validation")
	}
}
