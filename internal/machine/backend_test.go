package machine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"paradigm/internal/errs"
)

// testLoop is a minimal LoopSpec for exercising the backends without
// importing internal/kernels (which imports this package).
type testLoop struct {
	shape LoopShape
	bad   bool
}

func (l testLoop) Validate() error {
	if l.bad {
		return fmt.Errorf("test: invalid loop")
	}
	return nil
}
func (l testLoop) Shape() LoopShape                    { return l.shape }
func (l testLoop) MaxProcTime(p Params, q int) float64 { return 0 }

func TestLoopShapeKeyMatchesHistoricalFormat(t *testing.T) {
	// The trained backend's cache key predates the Backend interface;
	// calibration snapshots replay byte-identically only if Key keeps
	// the exact historical format.
	for _, tc := range []struct {
		shape LoopShape
		want  string
	}{
		{LoopShape{Op: "mul", M: 64, N: 64, K: 64}, "mul:64x64x64:linear"},
		{LoopShape{Op: "add", M: 32, N: 16}, "add:32x16x0:linear"},
		{LoopShape{Op: "mul", M: 8, N: 8, K: 8, Grid: true}, "mul:8x8x8:grid"},
	} {
		if got := tc.shape.Key(); got != tc.want {
			t.Errorf("Key(%+v) = %q, want %q", tc.shape, got, tc.want)
		}
	}
}

func TestAnalyticalBackendConformance(t *testing.T) {
	a, err := NewAnalytical(CM5(64))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "CM5" || a.Kind() != KindAnalytical || a.Procs() != 64 {
		t.Fatalf("identity: %s/%s/%d", a.Name(), a.Kind(), a.Procs())
	}
	if !a.SimParams().Equal(CM5(64)) {
		t.Error("SimParams does not round-trip the profile")
	}
	if a.Speed(3) != 1 || a.Capacity(3) != 0 {
		t.Errorf("homogeneous profile: Speed=%v Capacity=%v", a.Speed(3), a.Capacity(3))
	}
	if top := a.Topology(); top.Kind != "fat-tree" {
		t.Errorf("CM5 topology %q, want fat-tree", top.Kind)
	}

	tp := a.Transfer()
	p := CM5(64)
	if tp.Tss != p.SendStartup || tp.Tps != p.SendPerByte ||
		tp.Tsr != p.RecvStartup+p.MsgMatchOverhead || tp.Tpr != p.RecvPerByte || tp.Tn != p.NetPerByte {
		t.Errorf("transfer derivation: %+v", tp)
	}
}

func TestAnalyticalLoopEstimates(t *testing.T) {
	a, err := NewAnalytical(CM5(64))
	if err != nil {
		t.Fatal(err)
	}

	lp, err := a.Loop("Matrix Multiply (64x64)", testLoop{shape: LoopShape{Op: "mul", M: 64, N: 64, K: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if lp.Tau <= 0 || lp.Alpha <= 0 || lp.Alpha >= 1 {
		t.Fatalf("multiply estimate out of range: α=%v τ=%v", lp.Alpha, lp.Tau)
	}
	// The serial multiply is dominated by the 64³ FMAs; the estimate must
	// be within a factor of two of that floor.
	work := 64 * 64 * 64 * CM5(64).FMATime
	if lp.Tau < work || lp.Tau > 2*work {
		t.Errorf("multiply τ=%v, want within [%v, %v]", lp.Tau, work, 2*work)
	}

	add, err := a.Loop("Matrix add (64x64)", testLoop{shape: LoopShape{Op: "add", M: 64, N: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if add.Tau >= lp.Tau {
		t.Errorf("add τ=%v not cheaper than multiply τ=%v", add.Tau, lp.Tau)
	}

	if zero, err := a.Loop("start", testLoop{shape: LoopShape{Op: "none"}}); err != nil || zero.Tau != 0 {
		t.Errorf("none op: %+v, %v", zero, err)
	}
	if _, err := a.Loop("bad", testLoop{shape: LoopShape{Op: "transmogrify"}}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := a.Loop("bad", testLoop{bad: true}); err == nil {
		t.Error("invalid loop spec accepted")
	}
}

func TestAnalyticalRejectsInvalidProfile(t *testing.T) {
	if _, err := NewAnalytical(Params{Name: "x"}); err == nil {
		t.Error("zero-processor profile accepted")
	}
}

func TestDefaultTopology(t *testing.T) {
	if top := DefaultTopology("CM5", 64); top.Kind != "fat-tree" {
		t.Errorf("CM5: %+v", top)
	}
	top := DefaultTopology("Paragon", 64)
	if top.Kind != "mesh" || len(top.Dims) != 2 || top.Dims[0]*top.Dims[1] != 64 {
		t.Errorf("Paragon: %+v", top)
	}
	if top := DefaultTopology("VAX", 4); top.Kind != "" {
		t.Errorf("unknown machine got topology %+v", top)
	}
}

func TestBuiltinSpecsRoundTripCanonically(t *testing.T) {
	for _, name := range BuiltinNames() {
		s, ok := Builtin(name)
		if !ok {
			t.Fatalf("builtin %q vanished", name)
		}
		c1, err := s.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s2, err := DecodeSpec(c1)
		if err != nil {
			t.Fatalf("%s: decode canonical: %v", name, err)
		}
		c2, err := s2.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(c1) != string(c2) {
			t.Errorf("%s: canonical form not a fixed point:\n%s\nvs\n%s", name, c1, c2)
		}
		if !s2.Params().Equal(s.Params()) {
			t.Errorf("%s: params changed across the round trip", name)
		}
		if _, err := FromSpec(s2); err != nil {
			t.Errorf("%s: FromSpec: %v", name, err)
		}
	}
}

func TestDecodeSpecRejectsMalformed(t *testing.T) {
	for _, tc := range []struct {
		name string
		data string
	}{
		{"syntax", `{"name":"x","procs":1`},
		{"unknown field", `{"name":"x","procs":1,"warp_factor":9}`},
		{"trailing data", `{"name":"x","procs":1}{"name":"y","procs":1}`},
		{"empty name", `{"procs":4}`},
		{"zero procs", `{"name":"x","procs":0}`},
		{"negative constant", `{"name":"x","procs":1,"fma_time":-1e-6}`},
		{"speeds length", `{"name":"x","procs":4,"speeds":[1,1]}`},
		{"zero speed", `{"name":"x","procs":2,"speeds":[1,0]}`},
		{"negative speed", `{"name":"x","procs":2,"speeds":[1,-0.5]}`},
		{"negative capacity", `{"name":"x","procs":2,"mem_capacity":[1024,-1]}`},
		{"capacity length", `{"name":"x","procs":4,"mem_capacity":[1024]}`},
		{"topology mismatch", `{"name":"x","procs":8,"topology":{"kind":"mesh","dims":[3,2]}}`},
		{"negative pinned transfer", `{"name":"x","procs":2,"transfer":{"t_ss":-1,"t_ps":0,"t_sr":0,"t_pr":0,"t_n":0}}`},
	} {
		_, err := DecodeSpec([]byte(tc.data))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, errs.ErrBadMachineSpec) {
			t.Errorf("%s: error %v does not wrap ErrBadMachineSpec", tc.name, err)
		}
	}
}

func TestResolve(t *testing.T) {
	// Builtin hit, case-insensitive.
	s, err := Resolve("CM5-Hetero8")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "CM5-hetero8" || len(s.Speeds) != 8 {
		t.Fatalf("resolved %q with %d speeds", s.Name, len(s.Speeds))
	}

	// Unknown bare name: ErrUnknownBackend naming the database.
	if _, err := Resolve("vax"); !errors.Is(err, errs.ErrUnknownBackend) {
		t.Errorf("unknown name: %v", err)
	}

	// A path resolves through LoadSpec.
	dir := t.TempDir()
	good, _ := Builtin("paragon")
	data, err := good.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "custom.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if s, err = Resolve(path); err != nil || s.Name != "Paragon" {
		t.Errorf("file resolve: %v, %v", s, err)
	}
	if _, err := Resolve(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFileBackendPinnedTransfer(t *testing.T) {
	s, _ := Builtin("cm5")
	s.Transfer = &TransferSpec{Tss: 1e-3, Tps: 2e-9, Tsr: 3e-4, Tpr: 4e-9, Tn: 5e-9}
	f, err := FromSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	tp := f.Transfer()
	if tp.Tss != 1e-3 || tp.Tps != 2e-9 || tp.Tsr != 3e-4 || tp.Tpr != 4e-9 || tp.Tn != 5e-9 {
		t.Errorf("pinned surface not honoured: %+v", tp)
	}

	// Without a pin the file backend agrees with the analytical one.
	plain, _ := Builtin("cm5")
	fp, err := FromSpec(plain)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewAnalytical(plain.Params())
	if fp.Transfer() != a.Transfer() {
		t.Errorf("unpinned file transfer %+v != analytical %+v", fp.Transfer(), a.Transfer())
	}
}

func TestHeterogeneousParams(t *testing.T) {
	p := CM5(4)
	p.Speeds = []float64{2, 1, 1, 0.5}
	p.MemCapacity = []int64{64, 64, 32, 32}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Heterogeneous() {
		t.Error("profile with speed 2 not heterogeneous")
	}
	if p.SpeedOf(0) != 2 || p.SpeedOf(3) != 0.5 || p.SpeedOf(9) != 1 || p.SpeedOf(-1) != 1 {
		t.Error("SpeedOf")
	}
	if p.CapacityOf(2) != 32 || p.CapacityOf(9) != 0 {
		t.Error("CapacityOf")
	}

	// Resize truncates and pads.
	small := p.WithProcs(2)
	if len(small.Speeds) != 2 || small.Speeds[0] != 2 {
		t.Errorf("truncate: %+v", small.Speeds)
	}
	big := p.WithProcs(6)
	if len(big.Speeds) != 6 || big.Speeds[5] != 1 || big.MemCapacity[5] != 0 {
		t.Errorf("pad: %+v / %+v", big.Speeds, big.MemCapacity)
	}
	// Homogeneous tables stay empty across resizes.
	if h := CM5(4).WithProcs(8); len(h.Speeds) != 0 || len(h.MemCapacity) != 0 {
		t.Error("homogeneous resize materialized tables")
	}

	// Equal distinguishes the tables.
	q := p
	if !p.Equal(q) {
		t.Error("Equal(self)")
	}
	q.Speeds = []float64{2, 1, 1, 1}
	if p.Equal(q) {
		t.Error("Equal ignores speed tables")
	}
}

func TestBuiltinNamesSorted(t *testing.T) {
	names := BuiltinNames()
	if len(names) != 4 {
		t.Fatalf("builtin database has %d entries: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
