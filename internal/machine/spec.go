// JSON machine specifications: the file-loaded backend. A Spec is the
// durable, user-editable form of a machine profile — explicit snake_case
// fields, strict decoding (unknown fields are errors, so a typo cannot
// silently zero a constant), validation with typed errors, and a
// canonical encoding that the committed database round-trips through
// byte-identically.
package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"paradigm/internal/costmodel"
	"paradigm/internal/errs"
)

// TransferSpec optionally pins an explicit transfer surface in a spec —
// for machines whose fitted parameters are known (e.g. from a real
// calibration run) and should override the analytical derivation.
type TransferSpec struct {
	Tss float64 `json:"t_ss"`
	Tps float64 `json:"t_ps"`
	Tsr float64 `json:"t_sr"`
	Tpr float64 `json:"t_pr"`
	Tn  float64 `json:"t_n"`
}

// Spec is the JSON form of a machine profile. All times are seconds,
// capacities bytes.
type Spec struct {
	Name  string `json:"name"`
	Procs int    `json:"procs"`

	SendStartup      float64 `json:"send_startup"`
	SendPerByte      float64 `json:"send_per_byte"`
	RecvStartup      float64 `json:"recv_startup"`
	RecvPerByte      float64 `json:"recv_per_byte"`
	NetPerByte       float64 `json:"net_per_byte"`
	MsgMatchOverhead float64 `json:"msg_match_overhead"`
	CopyPerByte      float64 `json:"copy_per_byte"`

	FMATime      float64 `json:"fma_time"`
	AddElemTime  float64 `json:"add_elem_time"`
	InitElemTime float64 `json:"init_elem_time"`
	LoopOverhead float64 `json:"loop_overhead"`

	CollStartup float64 `json:"coll_startup"`
	CollPerByte float64 `json:"coll_per_byte"`

	JitterFrac float64 `json:"jitter_frac,omitempty"`
	JitterSeed uint64  `json:"jitter_seed,omitempty"`

	// Speeds are per-processor relative speed multipliers (empty:
	// homogeneous); MemCapacity are per-processor memory bounds in bytes
	// (empty: unbounded).
	Speeds      []float64 `json:"speeds,omitempty"`
	MemCapacity []int64   `json:"mem_capacity,omitempty"`

	// Interconnect is the topology family (optional).
	Interconnect *Topology `json:"topology,omitempty"`

	// Transfer, when present, pins the model's transfer surface instead
	// of deriving it analytically from the constants above.
	Transfer *TransferSpec `json:"transfer,omitempty"`
}

// DecodeSpec strictly parses and validates a JSON machine spec. Unknown
// fields, trailing garbage, non-finite or negative constants all fail
// with errors wrapping errs.ErrBadMachineSpec.
func DecodeSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("machine: %w: %v", errs.ErrBadMachineSpec, err)
	}
	// A second Decode must hit EOF: concatenated documents are rejected.
	if dec.More() {
		return nil, fmt.Errorf("machine: %w: trailing data after spec", errs.ErrBadMachineSpec)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and decodes a spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := DecodeSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Validate checks the spec: every constant finite and non-negative,
// per-processor tables sized to Procs with positive speeds, topology
// dimensions multiplying out to the system size.
func (s *Spec) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("machine: %w: %s", errs.ErrBadMachineSpec, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return bad("empty name")
	}
	if s.Procs < 1 {
		return bad("procs = %d, want >= 1", s.Procs)
	}
	type field struct {
		name string
		v    float64
	}
	fields := []field{
		{"send_startup", s.SendStartup}, {"send_per_byte", s.SendPerByte},
		{"recv_startup", s.RecvStartup}, {"recv_per_byte", s.RecvPerByte},
		{"net_per_byte", s.NetPerByte}, {"msg_match_overhead", s.MsgMatchOverhead},
		{"copy_per_byte", s.CopyPerByte},
		{"fma_time", s.FMATime}, {"add_elem_time", s.AddElemTime},
		{"init_elem_time", s.InitElemTime}, {"loop_overhead", s.LoopOverhead},
		{"coll_startup", s.CollStartup}, {"coll_per_byte", s.CollPerByte},
		{"jitter_frac", s.JitterFrac},
	}
	if t := s.Transfer; t != nil {
		fields = append(fields,
			field{"transfer.t_ss", t.Tss}, field{"transfer.t_ps", t.Tps},
			field{"transfer.t_sr", t.Tsr}, field{"transfer.t_pr", t.Tpr},
			field{"transfer.t_n", t.Tn})
	}
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return bad("%s = %v, want finite", f.name, f.v)
		}
		if f.v < 0 {
			return bad("%s = %v, want >= 0", f.name, f.v)
		}
	}
	if len(s.Speeds) != 0 && len(s.Speeds) != s.Procs {
		return bad("%d speed entries for %d processors", len(s.Speeds), s.Procs)
	}
	for i, v := range s.Speeds {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return bad("speeds[%d] = %v, want finite > 0", i, v)
		}
	}
	if len(s.MemCapacity) != 0 && len(s.MemCapacity) != s.Procs {
		return bad("%d mem_capacity entries for %d processors", len(s.MemCapacity), s.Procs)
	}
	for i, v := range s.MemCapacity {
		if v < 0 {
			return bad("mem_capacity[%d] = %d, want >= 0", i, v)
		}
	}
	if t := s.Interconnect; t != nil {
		prod := 1
		for i, d := range t.Dims {
			if d < 1 {
				return bad("topology dims[%d] = %d, want >= 1", i, d)
			}
			prod *= d
		}
		if len(t.Dims) > 0 && prod != s.Procs {
			return bad("topology dims %v multiply to %d, want procs = %d", t.Dims, prod, s.Procs)
		}
	}
	return nil
}

// Canonical returns the canonical encoding of the spec: two-space
// indented JSON with a trailing newline. Every committed database file
// is stored in this form, and the spec-lint test asserts the
// round-trip.
func (s *Spec) Canonical() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Params lowers the spec to simulator ground-truth constants.
func (s *Spec) Params() Params {
	return Params{
		Name:  s.Name,
		Procs: s.Procs,

		SendStartup:      s.SendStartup,
		SendPerByte:      s.SendPerByte,
		RecvStartup:      s.RecvStartup,
		RecvPerByte:      s.RecvPerByte,
		NetPerByte:       s.NetPerByte,
		MsgMatchOverhead: s.MsgMatchOverhead,
		CopyPerByte:      s.CopyPerByte,

		FMATime:      s.FMATime,
		AddElemTime:  s.AddElemTime,
		InitElemTime: s.InitElemTime,
		LoopOverhead: s.LoopOverhead,

		CollStartup: s.CollStartup,
		CollPerByte: s.CollPerByte,

		JitterFrac: s.JitterFrac,
		JitterSeed: s.JitterSeed,

		Speeds:      append([]float64(nil), s.Speeds...),
		MemCapacity: append([]int64(nil), s.MemCapacity...),
	}
}

// SpecFromParams lifts ground-truth constants into a spec (the form the
// committed database is generated from).
func SpecFromParams(p Params) *Spec {
	s := &Spec{
		Name:  p.Name,
		Procs: p.Procs,

		SendStartup:      p.SendStartup,
		SendPerByte:      p.SendPerByte,
		RecvStartup:      p.RecvStartup,
		RecvPerByte:      p.RecvPerByte,
		NetPerByte:       p.NetPerByte,
		MsgMatchOverhead: p.MsgMatchOverhead,
		CopyPerByte:      p.CopyPerByte,

		FMATime:      p.FMATime,
		AddElemTime:  p.AddElemTime,
		InitElemTime: p.InitElemTime,
		LoopOverhead: p.LoopOverhead,

		CollStartup: p.CollStartup,
		CollPerByte: p.CollPerByte,

		JitterFrac: p.JitterFrac,
		JitterSeed: p.JitterSeed,

		Speeds:      append([]float64(nil), p.Speeds...),
		MemCapacity: append([]int64(nil), p.MemCapacity...),
	}
	if top := DefaultTopology(p.Name, p.Procs); top.Kind != "" {
		s.Interconnect = &top
	}
	return s
}

// File is the file-loaded backend: a validated Spec served through the
// Backend interface, priced analytically unless the spec pins an
// explicit transfer surface.
type File struct {
	spec Spec
	p    Params
}

var _ Backend = (*File)(nil)

// FromSpec returns the backend for a spec, validating it first.
func FromSpec(s *Spec) (*File, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &File{spec: *s, p: s.Params()}, nil
}

// Name implements Backend.
func (f *File) Name() string { return f.spec.Name }

// Kind implements Backend.
func (f *File) Kind() Kind { return KindFile }

// Procs implements Backend.
func (f *File) Procs() int { return f.spec.Procs }

// SimParams implements Backend.
func (f *File) SimParams() Params { return f.p }

// Speed implements Backend.
func (f *File) Speed(proc int) float64 { return f.p.SpeedOf(proc) }

// Capacity implements Backend.
func (f *File) Capacity(proc int) int64 { return f.p.CapacityOf(proc) }

// Topology implements Backend.
func (f *File) Topology() Topology {
	if f.spec.Interconnect != nil {
		return *f.spec.Interconnect
	}
	return DefaultTopology(f.spec.Name, f.spec.Procs)
}

// Transfer implements Backend: the spec's pinned surface when present,
// the analytical derivation otherwise.
func (f *File) Transfer() costmodel.TransferParams {
	if t := f.spec.Transfer; t != nil {
		return costmodel.TransferParams{Tss: t.Tss, Tps: t.Tps, Tsr: t.Tsr, Tpr: t.Tpr, Tn: t.Tn}
	}
	return (&Analytical{p: f.p}).Transfer()
}

// Loop implements Backend via the closed-form estimator.
func (f *File) Loop(name string, spec LoopSpec) (costmodel.LoopParams, error) {
	if err := spec.Validate(); err != nil {
		return costmodel.LoopParams{}, err
	}
	return analyticalLoop(f.p, spec.Shape())
}
