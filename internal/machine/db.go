// The built-in machine database: the two paper machines plus one
// heterogeneous-speed and one memory-capacitated profile, the committed
// JSON forms of which live in testdata/machines/. Resolve gives the CLI
// its "-machine <name|path.json>" semantics: database names first, then
// the filesystem.
package machine

import (
	"fmt"
	"sort"
	"strings"

	"paradigm/internal/errs"
)

// builtins maps database names to spec constructors. Constructors (not
// values) keep every lookup independent — a caller mutating its Spec
// cannot poison the database.
var builtins = map[string]func() *Spec{
	"cm5":     func() *Spec { return SpecFromParams(CM5(64)) },
	"paragon": func() *Spec { return SpecFromParams(Paragon(64)) },
	"cm5-hetero8": func() *Spec {
		// An 8-node CM-5 with two double-speed nodes, four stock nodes
		// and two half-speed nodes — the smallest profile that makes
		// speed-aware placement observable end to end.
		s := SpecFromParams(CM5(8))
		s.Name = "CM5-hetero8"
		s.Speeds = []float64{2, 2, 1, 1, 1, 1, 0.5, 0.5}
		return s
	},
	"paragon-memcap8": func() *Spec {
		// An 8-node Paragon with 32 MiB on half the nodes and 16 MiB on
		// the other half — per-processor memory capacity as a first-class
		// machine property.
		s := SpecFromParams(Paragon(8))
		s.Name = "Paragon-memcap8"
		s.Interconnect = &Topology{Kind: "mesh", Dims: []int{4, 2}}
		s.MemCapacity = []int64{
			32 << 20, 32 << 20, 32 << 20, 32 << 20,
			16 << 20, 16 << 20, 16 << 20, 16 << 20,
		}
		return s
	},
}

// BuiltinNames lists the database names, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Builtin returns the database spec for a name (case-insensitive).
func Builtin(name string) (*Spec, bool) {
	ctor, ok := builtins[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return ctor(), true
}

// Resolve maps a machine reference to a validated spec: built-in
// database names first (case-insensitive), then a path to a JSON spec
// file. A reference that is neither fails naming the available names.
func Resolve(ref string) (*Spec, error) {
	if s, ok := Builtin(ref); ok {
		return s, nil
	}
	if strings.ContainsAny(ref, "/\\.") {
		return LoadSpec(ref)
	}
	return nil, fmt.Errorf("machine: %w: %q is not a built-in machine (have %s) or a spec path",
		errs.ErrUnknownBackend, ref, strings.Join(BuiltinNames(), ", "))
}
