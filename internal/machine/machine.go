// Package machine defines the parameter sets describing a target
// distributed-memory multicomputer.
//
// Two distinct parameter families live here:
//
//   - Params: the simulator's ground-truth constants. These drive
//     internal/sim and play the role of the physical CM-5 in the paper.
//     They are deliberately richer than the analytic cost models
//     (per-message matching overhead, log-tree collectives, ceiling-based
//     block imbalance arise from them), so the posynomial models remain an
//     approximation that the training-sets regression has to fit — exactly
//     the situation the authors faced with real hardware.
//
//   - The *fitted* model parameters (α, τ per loop; t_ss, t_ps, t_sr,
//     t_pr, t_n per machine) live in internal/costmodel and are produced
//     by internal/trainsets, mirroring Tables 1 and 2.
//
// All times are in seconds.
package machine

import (
	"fmt"
	"slices"
)

// Params is the ground truth describing one machine configuration.
type Params struct {
	// Name identifies the profile (e.g. "CM5").
	Name string
	// Procs is the system size p.
	Procs int

	// Point-to-point messaging.
	SendStartup float64 // per-message fixed cost at the sender
	SendPerByte float64 // per-byte cost at the sender
	RecvStartup float64 // per-message fixed cost at the receiver
	RecvPerByte float64 // per-byte cost at the receiver
	NetPerByte  float64 // network transit per byte (0 on the CM-5: folded
	// into the receive when the send completed first; see Section 4)

	// MsgMatchOverhead is an extra per-message tag-matching cost paid by
	// the receiver. It is NOT part of the paper's model; it exists so the
	// fitted model has a genuine residual.
	MsgMatchOverhead float64

	// CopyPerByte is the cost of a processor-local memory move, paid when
	// a redistribution keeps a block on the same processor. The paper's
	// model conservatively charges such moves as full transfers; the
	// machine charges only the memcpy — another source of model residual.
	CopyPerByte float64

	// Compute costs.
	FMATime      float64 // per fused multiply-add (matrix multiply inner loop)
	AddElemTime  float64 // per element of a matrix add/subtract
	InitElemTime float64 // per element of a matrix initialization
	LoopOverhead float64 // fixed serial prologue per loop nest invocation

	// Intra-node collectives (the all-gather of the B operand inside a
	// data-parallel matrix multiply): a log2(q)-depth tree with per-stage
	// startup and per-byte costs. This is the main source of the Amdahl
	// serial fraction α that calibration recovers for Multiply.
	CollStartup float64
	CollPerByte float64

	// JitterFrac adds deterministic pseudo-random noise to per-processor
	// kernel execution times: each (node, processor) execution is scaled
	// by a factor in [1, 1+JitterFrac], derived from JitterSeed. It
	// emulates OS noise and cache effects real machines exhibit; 0 keeps
	// the simulator exactly repeatable against the analytic model
	// (ablation A7 sweeps it).
	JitterFrac float64
	JitterSeed uint64

	// Speeds holds per-processor relative speed multipliers for
	// heterogeneous machines: processor i executes compute kernels
	// Speeds[i] times faster than the base constants above. Empty means
	// homogeneous (every processor at speed 1), which keeps the simulator
	// arithmetic bit-identical to the pre-heterogeneity pipeline. When
	// non-empty the length must equal Procs and every entry must be
	// positive. JSON key kept at the default field name but omitted when
	// empty so homogeneous checkpoint payloads do not change shape.
	Speeds []float64 `json:",omitempty"`
	// MemCapacity holds per-processor memory capacities in bytes. Empty
	// means unbounded; a zero entry also means unbounded for that
	// processor. Carried as a first-class machine property for
	// capacity-aware allocation (ROADMAP item 3); the current pipeline
	// records and validates it but does not yet enforce it.
	MemCapacity []int64 `json:",omitempty"`
}

// SpeedOf returns processor proc's relative speed multiplier: 1 for
// homogeneous profiles or out-of-range indices.
func (p Params) SpeedOf(proc int) float64 {
	if proc < 0 || proc >= len(p.Speeds) {
		return 1
	}
	return p.Speeds[proc]
}

// CapacityOf returns processor proc's memory capacity in bytes, 0
// meaning unbounded.
func (p Params) CapacityOf(proc int) int64 {
	if proc < 0 || proc >= len(p.MemCapacity) {
		return 0
	}
	return p.MemCapacity[proc]
}

// Heterogeneous reports whether any per-processor speed differs from 1.
func (p Params) Heterogeneous() bool {
	for _, s := range p.Speeds {
		if s != 1 {
			return true
		}
	}
	return false
}

// Equal compares two profiles field by field, including the
// per-processor tables. Params is no longer comparable with == (it
// carries slices), so identity checks — checkpoint resume validation in
// particular — go through this.
func (p Params) Equal(q Params) bool {
	return p.Name == q.Name && p.Procs == q.Procs &&
		p.SendStartup == q.SendStartup && p.SendPerByte == q.SendPerByte &&
		p.RecvStartup == q.RecvStartup && p.RecvPerByte == q.RecvPerByte &&
		p.NetPerByte == q.NetPerByte && p.MsgMatchOverhead == q.MsgMatchOverhead &&
		p.CopyPerByte == q.CopyPerByte &&
		p.FMATime == q.FMATime && p.AddElemTime == q.AddElemTime &&
		p.InitElemTime == q.InitElemTime && p.LoopOverhead == q.LoopOverhead &&
		p.CollStartup == q.CollStartup && p.CollPerByte == q.CollPerByte &&
		p.JitterFrac == q.JitterFrac && p.JitterSeed == q.JitterSeed &&
		slices.Equal(p.Speeds, q.Speeds) && slices.Equal(p.MemCapacity, q.MemCapacity)
}

// Jitter returns the multiplicative execution-noise factor for one
// (node, processor) pair: deterministic in (JitterSeed, node, proc) via a
// splitmix64 hash, uniform in [1, 1+JitterFrac].
func (p Params) Jitter(node, proc int) float64 {
	if p.JitterFrac <= 0 {
		return 1
	}
	x := p.JitterSeed ^ (uint64(node)+1)*0x9E3779B97F4A7C15 ^ (uint64(proc)+1)*0xBF58476D1CE4E5B9
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53) // [0,1)
	return 1 + p.JitterFrac*u
}

// Validate checks that the profile is physically meaningful.
func (p Params) Validate() error {
	if p.Procs < 1 {
		return fmt.Errorf("machine: Procs = %d, want >= 1", p.Procs)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"SendStartup", p.SendStartup}, {"SendPerByte", p.SendPerByte},
		{"RecvStartup", p.RecvStartup}, {"RecvPerByte", p.RecvPerByte},
		{"NetPerByte", p.NetPerByte}, {"MsgMatchOverhead", p.MsgMatchOverhead},
		{"CopyPerByte", p.CopyPerByte},
		{"FMATime", p.FMATime}, {"AddElemTime", p.AddElemTime},
		{"InitElemTime", p.InitElemTime}, {"LoopOverhead", p.LoopOverhead},
		{"CollStartup", p.CollStartup}, {"CollPerByte", p.CollPerByte},
		{"JitterFrac", p.JitterFrac},
	} {
		if c.v < 0 {
			return fmt.Errorf("machine: %s = %v, want >= 0", c.name, c.v)
		}
	}
	if len(p.Speeds) != 0 && len(p.Speeds) != p.Procs {
		return fmt.Errorf("machine: %d speed entries for %d processors", len(p.Speeds), p.Procs)
	}
	for i, s := range p.Speeds {
		if !(s > 0) { // also rejects NaN
			return fmt.Errorf("machine: Speeds[%d] = %v, want > 0", i, s)
		}
	}
	if len(p.MemCapacity) != 0 && len(p.MemCapacity) != p.Procs {
		return fmt.Errorf("machine: %d capacity entries for %d processors", len(p.MemCapacity), p.Procs)
	}
	for i, c := range p.MemCapacity {
		if c < 0 {
			return fmt.Errorf("machine: MemCapacity[%d] = %d, want >= 0", i, c)
		}
	}
	return nil
}

// WithProcs returns a copy of the profile resized to n processors. A
// heterogeneous speed (or capacity) table is truncated or padded — with
// speed 1 / unbounded capacity — to the new size, so a recovery replan
// on fewer survivors keeps a valid profile.
func (p Params) WithProcs(n int) Params {
	p.Procs = n
	p.Speeds = resizeTable(p.Speeds, n, 1)
	p.MemCapacity = resizeTable(p.MemCapacity, n, 0)
	return p
}

// resizeTable truncates or pads a per-processor table to n entries,
// leaving empty (homogeneous/unbounded) tables empty.
func resizeTable[T any](t []T, n int, pad T) []T {
	if len(t) == 0 || len(t) == n {
		return t
	}
	if n < 0 {
		n = 0
	}
	out := make([]T, n)
	copied := copy(out, t)
	for i := copied; i < n; i++ {
		out[i] = pad
	}
	return out
}

// CM5 returns a profile whose constants put the calibrated model
// parameters in the same magnitude range the paper measured on the 64-node
// Thinking Machines CM-5 (Tables 1 and 2: t_ss ≈ 778 µs, t_ps ≈ 487 ns/B,
// t_sr ≈ 466 µs, t_pr ≈ 426 ns/B, t_n = 0; τ ≈ 298 ms for a 64×64 matrix
// multiply with α ≈ 12%, τ ≈ 3.7 ms for a 64×64 add with α ≈ 7%).
func CM5(procs int) Params {
	return Params{
		Name:  "CM5",
		Procs: procs,

		SendStartup: 740e-6,
		SendPerByte: 480e-9,
		RecvStartup: 430e-6,
		RecvPerByte: 300e-9,
		NetPerByte:  0, // CM-5 semantics: transit paid inside the receive
		// (receives always follow completed sends under PSA schedules)
		MsgMatchOverhead: 12e-6,
		CopyPerByte:      30e-9,

		FMATime:      1.12e-6, // 64³ FMAs ≈ 294 ms serial multiply
		AddElemTime:  0.82e-6, // 64² adds ≈ 3.4 ms serial add
		InitElemTime: 0.40e-6,
		LoopOverhead: 230e-6,

		CollStartup: 350e-6,
		CollPerByte: 160e-9,
	}
}

// Paragon returns an Intel-Paragon-like profile: an order of magnitude
// faster processors and network than the CM-5, lower message startups,
// and — unlike the CM-5 — a genuine per-byte network transit (t_n > 0),
// exercising the edge-delay term of the cost model. Used by the
// portability experiment (E11) to show the methodology is not
// CM-5-specific.
func Paragon(procs int) Params {
	return Params{
		Name:  "Paragon",
		Procs: procs,

		SendStartup:      120e-6,
		SendPerByte:      25e-9,
		RecvStartup:      90e-6,
		RecvPerByte:      20e-9,
		NetPerByte:       6e-9,
		MsgMatchOverhead: 5e-6,
		CopyPerByte:      5e-9,

		FMATime:      30e-9,
		AddElemTime:  20e-9,
		InitElemTime: 10e-9,
		LoopOverhead: 30e-6,

		CollStartup: 60e-6,
		CollPerByte: 8e-9,
	}
}
