package machine

import (
	"bytes"
	"errors"
	"testing"

	"paradigm/internal/errs"
)

// FuzzMachineSpec drives arbitrary bytes through the strict spec
// decoder. The contract: every rejection wraps ErrBadMachineSpec, and
// every accepted spec lowers to a valid Params, builds a backend, and
// reaches a canonical fixed point (decode → canonical → decode →
// canonical is byte-stable).
func FuzzMachineSpec(f *testing.F) {
	for _, name := range BuiltinNames() {
		s, _ := Builtin(name)
		data, err := s.Canonical()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","procs":1`))
	f.Add([]byte(`{"name":"x","procs":2,"speeds":[1,-1]}`))
	f.Add([]byte(`{"name":"x","procs":2,"mem_capacity":[0,1048576],"topology":{"kind":"mesh","dims":[2,1]}}`))
	f.Add([]byte(`{"name":"x","procs":1,"transfer":{"t_ss":1e-3,"t_ps":0,"t_sr":0,"t_pr":0,"t_n":0}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSpec(data)
		if err != nil {
			if !errors.Is(err, errs.ErrBadMachineSpec) {
				t.Fatalf("rejection %v does not wrap ErrBadMachineSpec", err)
			}
			return
		}
		p := s.Params()
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted spec lowers to invalid params: %v\nspec: %s", err, data)
		}
		b, err := FromSpec(s)
		if err != nil {
			t.Fatalf("accepted spec refused a backend: %v", err)
		}
		tp := b.Transfer()
		for _, v := range []float64{tp.Tss, tp.Tps, tp.Tsr, tp.Tpr, tp.Tn} {
			if v < 0 || v != v {
				t.Fatalf("backend transfer surface has invalid entry: %+v", tp)
			}
		}
		c1, err := s.Canonical()
		if err != nil {
			t.Fatalf("canonical: %v", err)
		}
		s2, err := DecodeSpec(c1)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, c1)
		}
		c2, err := s2.Canonical()
		if err != nil {
			t.Fatalf("re-canonical: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical form not a fixed point:\n%s\nvs\n%s", c1, c2)
		}
	})
}
