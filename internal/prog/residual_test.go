package prog

import (
	"testing"

	"paradigm/internal/costmodel"
	"paradigm/internal/dist"
	"paradigm/internal/kernels"
	"paradigm/internal/matrix"
)

// chain builds init -> double (A = init, B = A + A).
func chain(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("chain")
	b.AddNode("initA", NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpInit, M: 8, N: 8,
			Init: func(i, j int) float64 { return float64(i*8 + j) }},
		Output: "A", Axis: dist.ByRow,
	}, costmodel.LoopParams{Alpha: 0.1, Tau: 0.01})
	b.AddNode("double", NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpAdd, M: 8, N: 8},
		Inputs: []string{"A", "A"}, Output: "B", Axis: dist.ByRow,
	}, costmodel.LoopParams{Alpha: 0.1, Tau: 0.01})
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func constLP(string, kernels.Kernel) (costmodel.LoopParams, error) {
	return costmodel.LoopParams{Alpha: 0.05, Tau: 0.001}, nil
}

func TestResidualRestoresAndRecomputes(t *testing.T) {
	p := chain(t)
	ref, err := p.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Residual(map[string]*matrix.Matrix{"A": ref["A"]}, constLP)
	if err != nil {
		t.Fatal(err)
	}
	// The restore node replaces initA; double re-runs against it.
	prodA, ok := res.Producer("A")
	if !ok {
		t.Fatal("residual lost array A")
	}
	if res.Specs[prodA].Kernel.Op != kernels.OpInit {
		t.Fatalf("A's producer is %v, want restore OpInit", res.Specs[prodA].Kernel.Op)
	}
	got, err := res.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	for name := range p.Arrays {
		if !matrix.Equal(got[name], ref[name], 0) {
			t.Fatalf("residual run diverges on %q", name)
		}
	}
}

func TestResidualNothingRestored(t *testing.T) {
	p := chain(t)
	res, err := p.Residual(nil, constLP)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := p.ReferenceRun()
	got, err := res.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got["B"], ref["B"], 0) {
		t.Fatal("full re-run diverges")
	}
}

func TestResidualValidation(t *testing.T) {
	p := chain(t)
	if _, err := p.Residual(map[string]*matrix.Matrix{"ghost": matrix.New(8, 8)}, constLP); err == nil {
		t.Fatal("want error for unknown restored array")
	}
	if _, err := p.Residual(map[string]*matrix.Matrix{"A": matrix.New(3, 3)}, constLP); err == nil {
		t.Fatal("want error for wrong-shape restored array")
	}
}
