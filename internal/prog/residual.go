// Residual program construction for failure recovery: arrays salvaged
// from a halted run's surviving processors become cheap OpInit "restore"
// nodes, and everything else re-runs. Builder re-derives the MDG edges
// mechanically, so the residual program is schedulable by the ordinary
// pipeline with no special cases downstream.

package prog

import (
	"fmt"

	"paradigm/internal/costmodel"
	"paradigm/internal/dist"
	"paradigm/internal/kernels"
	"paradigm/internal/matrix"
)

// Residual builds the recovery program for a partial run of p: every
// array in restored is reproduced by an OpInit node closing over the
// salvaged matrix (keeping the original producer's distribution axis, so
// consumers redistribute exactly as before), and every other computation
// node re-runs with its original spec and Amdahl parameters. lp
// calibrates the restore kernels — recovery passes the training-sets
// cache, so restore nodes are costed like any other initialization.
//
// The rule is inductively sound: a re-running node's inputs are either
// restored (salvaged bit-for-bit) or produced by another re-running
// node, so the residual run reproduces the original run's values
// exactly.
func (p *Program) Residual(restored map[string]*matrix.Matrix, lp func(name string, k kernels.Kernel) (costmodel.LoopParams, error)) (*Program, error) {
	order, err := p.G.TopoOrder()
	if err != nil {
		return nil, err
	}
	for name, m := range restored {
		arr, ok := p.Arrays[name]
		if !ok {
			return nil, fmt.Errorf("prog: restored array %q not in program %q", name, p.Name)
		}
		if m == nil || m.Rows != arr.Rows || m.Cols != arr.Cols {
			return nil, fmt.Errorf("prog: restored array %q has wrong shape", name)
		}
	}
	b := NewBuilder(p.Name + "+recovery")
	for _, v := range order {
		spec := p.Specs[v]
		if spec.Kernel.Op == kernels.OpNone {
			continue
		}
		nodeName := p.G.Nodes[v].Name
		if m, ok := restored[spec.Output]; ok {
			arr := p.Arrays[spec.Output]
			k := kernels.Kernel{
				Op: kernels.OpInit, M: arr.Rows, N: arr.Cols,
				Init: func(i, j int) float64 { return m.At(i, j) },
				// Match AddNode's layout normalization so the calibration
				// cache keys the same kernel shape the simulator charges.
				Grid: spec.Axis == dist.ByGrid,
			}
			lpv, err := lp("Restore ("+spec.Output+")", k)
			if err != nil {
				return nil, fmt.Errorf("prog: calibrating restore of %q: %w", spec.Output, err)
			}
			b.AddNode("restore_"+nodeName, NodeSpec{Kernel: k, Output: spec.Output, Axis: spec.Axis}, lpv)
			continue
		}
		nd := p.G.Nodes[v]
		b.AddNode(nodeName, spec, costmodel.LoopParams{Alpha: nd.Alpha, Tau: nd.Tau})
	}
	return b.Finish()
}
