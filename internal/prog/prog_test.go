package prog

import (
	"testing"

	"paradigm/internal/costmodel"
	"paradigm/internal/dist"
	"paradigm/internal/kernels"
	"paradigm/internal/matrix"
	"paradigm/internal/mdg"
)

func lp(alpha, tau float64) costmodel.LoopParams {
	return costmodel.LoopParams{Alpha: alpha, Tau: tau}
}

// buildMulProgram: C = A·B with A init ByRow, B init ByCol, C ByRow.
func buildMulProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("mul")
	initA := kernels.Kernel{Op: kernels.OpInit, M: 8, N: 8,
		Init: func(i, j int) float64 { return float64(i + j) }}
	initB := kernels.Kernel{Op: kernels.OpInit, M: 8, N: 8,
		Init: func(i, j int) float64 { return float64(i - j) }}
	b.AddNode("initA", NodeSpec{Kernel: initA, Output: "A", Axis: dist.ByRow}, lp(0.05, 0.001))
	b.AddNode("initB", NodeSpec{Kernel: initB, Output: "B", Axis: dist.ByCol}, lp(0.05, 0.001))
	b.AddNode("mul", NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpMul, M: 8, N: 8, K: 8},
		Inputs: []string{"A", "B"}, Output: "C", Axis: dist.ByRow,
	}, lp(0.12, 0.01))
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderDerivesEdges(t *testing.T) {
	p := buildMulProgram(t)
	// initA -> mul is 1D (ByRow to ByRow); initB -> mul is 2D.
	eA, ok := p.G.EdgeBetween(0, 2)
	if !ok || len(eA.Transfers) != 1 || eA.Transfers[0].Kind != mdg.Transfer1D {
		t.Fatalf("A edge = %+v ok=%v", eA, ok)
	}
	if eA.Transfers[0].Bytes != 8*8*8 {
		t.Fatalf("A bytes = %d", eA.Transfers[0].Bytes)
	}
	eB, ok := p.G.EdgeBetween(1, 2)
	if !ok || eB.Transfers[0].Kind != mdg.Transfer2D {
		t.Fatalf("B edge = %+v", eB)
	}
	// START/STOP added: 3 real + dummies; graph validates.
	if _, _, err := p.G.StartStop(); err != nil {
		t.Fatal(err)
	}
	if len(p.Specs) != p.G.NumNodes() {
		t.Fatalf("specs %d != nodes %d", len(p.Specs), p.G.NumNodes())
	}
}

func TestReferenceRun(t *testing.T) {
	p := buildMulProgram(t)
	vals, err := p.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	a, bm, c := vals["A"], vals["B"], vals["C"]
	if a == nil || bm == nil || c == nil {
		t.Fatal("missing arrays")
	}
	want := matrix.New(8, 8)
	if err := matrix.Mul(want, a, bm); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(c, want, 0) {
		t.Fatal("reference multiply wrong")
	}
}

func TestProducerAndConsumers(t *testing.T) {
	p := buildMulProgram(t)
	if id, ok := p.Producer("A"); !ok || id != 0 {
		t.Fatalf("Producer(A) = %v %v", id, ok)
	}
	if _, ok := p.Producer("Z"); ok {
		t.Fatal("Producer(Z) should not exist")
	}
	cons := p.Consumers("A")
	if len(cons) != 1 || cons[0] != 2 {
		t.Fatalf("Consumers(A) = %v", cons)
	}
	if len(p.Consumers("C")) != 0 {
		t.Fatal("C has no consumers")
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("undefined input", func(t *testing.T) {
		b := NewBuilder("x")
		b.AddNode("n", NodeSpec{
			Kernel: kernels.Kernel{Op: kernels.OpAdd, M: 2, N: 2},
			Inputs: []string{"A", "B"}, Output: "C",
		}, lp(0, 1))
		if _, err := b.Finish(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("duplicate output", func(t *testing.T) {
		b := NewBuilder("x")
		k := kernels.Kernel{Op: kernels.OpInit, M: 2, N: 2, Init: func(i, j int) float64 { return 0 }}
		b.AddNode("a", NodeSpec{Kernel: k, Output: "A"}, lp(0, 1))
		b.AddNode("b", NodeSpec{Kernel: k, Output: "A"}, lp(0, 1))
		if _, err := b.Finish(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("shape mismatch", func(t *testing.T) {
		b := NewBuilder("x")
		k := kernels.Kernel{Op: kernels.OpInit, M: 2, N: 2, Init: func(i, j int) float64 { return 0 }}
		b.AddNode("a", NodeSpec{Kernel: k, Output: "A"}, lp(0, 1))
		b.AddNode("b", NodeSpec{Kernel: k, Output: "B"}, lp(0, 1))
		b.AddNode("add", NodeSpec{
			Kernel: kernels.Kernel{Op: kernels.OpAdd, M: 3, N: 3},
			Inputs: []string{"A", "B"}, Output: "C",
		}, lp(0, 1))
		if _, err := b.Finish(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("wrong arity", func(t *testing.T) {
		b := NewBuilder("x")
		k := kernels.Kernel{Op: kernels.OpInit, M: 2, N: 2, Init: func(i, j int) float64 { return 0 }}
		b.AddNode("a", NodeSpec{Kernel: k, Output: "A"}, lp(0, 1))
		b.AddNode("add", NodeSpec{
			Kernel: kernels.Kernel{Op: kernels.OpAdd, M: 2, N: 2},
			Inputs: []string{"A"}, Output: "C",
		}, lp(0, 1))
		if _, err := b.Finish(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("missing output", func(t *testing.T) {
		b := NewBuilder("x")
		k := kernels.Kernel{Op: kernels.OpInit, M: 2, N: 2, Init: func(i, j int) float64 { return 0 }}
		b.AddNode("a", NodeSpec{Kernel: k}, lp(0, 1))
		if _, err := b.Finish(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("explicit OpNone rejected", func(t *testing.T) {
		b := NewBuilder("x")
		b.AddNode("a", NodeSpec{Kernel: kernels.Kernel{Op: kernels.OpNone}, Output: "A"}, lp(0, 1))
		if _, err := b.Finish(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("bad amdahl", func(t *testing.T) {
		b := NewBuilder("x")
		k := kernels.Kernel{Op: kernels.OpInit, M: 2, N: 2, Init: func(i, j int) float64 { return 0 }}
		b.AddNode("a", NodeSpec{Kernel: k, Output: "A"}, lp(2, 1))
		if _, err := b.Finish(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("empty program", func(t *testing.T) {
		if _, err := NewBuilder("x").Finish(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("first error wins and AddNode after error is inert", func(t *testing.T) {
		b := NewBuilder("x")
		b.AddNode("bad", NodeSpec{Kernel: kernels.Kernel{Op: kernels.OpAdd}}, lp(0, 1))
		id := b.AddNode("later", NodeSpec{Kernel: kernels.Kernel{Op: kernels.OpAdd, M: 1, N: 1}}, lp(0, 1))
		if id != -1 {
			t.Fatal("AddNode after error should return -1")
		}
	})
}

func TestSharedProducerMergesEdges(t *testing.T) {
	// Node consuming the same producer's array twice (A + A): one edge
	// with ONE transfer — the data is moved once, matching codegen.
	b := NewBuilder("x")
	k := kernels.Kernel{Op: kernels.OpInit, M: 2, N: 2, Init: func(i, j int) float64 { return 1 }}
	b.AddNode("a", NodeSpec{Kernel: k, Output: "A", Axis: dist.ByRow}, lp(0, 1))
	b.AddNode("dbl", NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpAdd, M: 2, N: 2},
		Inputs: []string{"A", "A"}, Output: "D", Axis: dist.ByRow,
	}, lp(0, 1))
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	e, ok := p.G.EdgeBetween(0, 1)
	if !ok || len(e.Transfers) != 1 {
		t.Fatalf("edge = %+v", e)
	}
	vals, err := p.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	if vals["D"].At(0, 0) != 2 {
		t.Fatalf("A+A = %v", vals["D"].At(0, 0))
	}
}
