// Package prog represents executable MDG programs: the binding between
// MDG nodes and the kernels, arrays and data distributions they operate
// on. It is the layer the paper's Step 1 (MDG identification) hands to
// Steps 3-5 (allocation, scheduling, code generation).
//
// A Program owns an MDG whose nodes carry fitted Amdahl parameters, plus a
// NodeSpec per node naming the kernel, its input arrays, its output array
// and the distribution axis the node uses. Builder derives the MDG edges
// mechanically from producer/consumer relationships: an edge m→j carries
// one Transfer per consumed array, classified 1D when producer and
// consumer distribute along the same axis and 2D otherwise (Figure 4).
//
// ReferenceRun executes the whole program sequentially — the verification
// oracle every simulated MPMD/SPMD run is checked against.
package prog

import (
	"fmt"

	"paradigm/internal/costmodel"
	"paradigm/internal/dist"
	"paradigm/internal/kernels"
	"paradigm/internal/matrix"
	"paradigm/internal/mdg"
)

// Array names one matrix flowing between nodes.
type Array struct {
	Name       string
	Rows, Cols int
}

// Bytes is the array's size in bytes.
func (a Array) Bytes() int { return a.Rows * a.Cols * dist.ElemBytes }

// NodeSpec binds one MDG node to its computation.
type NodeSpec struct {
	// Kernel is the loop nest; OpNone for dummy START/STOP nodes.
	Kernel kernels.Kernel
	// Inputs are consumed array names in kernel operand order.
	Inputs []string
	// Output is the produced array name; empty for OpNone.
	Output string
	// Axis is the blocked distribution axis this node uses for its
	// output and its view of the inputs.
	Axis dist.Axis
}

// Program is a complete schedulable program.
type Program struct {
	Name   string
	G      *mdg.Graph
	Specs  []NodeSpec // indexed by NodeID
	Arrays map[string]Array

	producer map[string]mdg.NodeID
}

// Producer returns the node producing the named array.
func (p *Program) Producer(name string) (mdg.NodeID, bool) {
	id, ok := p.producer[name]
	return id, ok
}

// Builder incrementally assembles a Program.
type Builder struct {
	name     string
	g        mdg.Graph
	specs    []NodeSpec
	arrays   map[string]Array
	producer map[string]mdg.NodeID
	err      error
}

// NewBuilder starts a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		arrays:   map[string]Array{},
		producer: map[string]mdg.NodeID{},
	}
}

func (b *Builder) fail(format string, args ...interface{}) mdg.NodeID {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return -1
}

// AddNode appends a computation node. name labels the MDG node; lp are the
// fitted Amdahl parameters for the node's loop (from calibration). The
// output array is registered with the kernel's output shape. Errors are
// deferred to Finish.
func (b *Builder) AddNode(name string, spec NodeSpec, lp costmodel.LoopParams) mdg.NodeID {
	if b.err != nil {
		return -1
	}
	if err := spec.Kernel.Validate(); err != nil {
		return b.fail("prog: node %s: %v", name, err)
	}
	if spec.Kernel.Op == kernels.OpNone {
		return b.fail("prog: node %s: OpNone nodes are added automatically", name)
	}
	if got, want := len(spec.Inputs), spec.Kernel.NumInputs(); got != want {
		return b.fail("prog: node %s: %d inputs, kernel needs %d", name, got, want)
	}
	for idx, in := range spec.Inputs {
		arr, ok := b.arrays[in]
		if !ok {
			return b.fail("prog: node %s consumes undefined array %q (define producers first)", name, in)
		}
		wr, wc := spec.Kernel.InputShape(idx)
		if arr.Rows != wr || arr.Cols != wc {
			return b.fail("prog: node %s input %q is %dx%d, kernel wants %dx%d",
				name, in, arr.Rows, arr.Cols, wr, wc)
		}
	}
	if spec.Output == "" {
		return b.fail("prog: node %s: missing output array name", name)
	}
	if _, dup := b.producer[spec.Output]; dup {
		return b.fail("prog: array %q produced twice", spec.Output)
	}
	if lp.Tau < 0 || lp.Alpha < 0 || lp.Alpha > 1 {
		return b.fail("prog: node %s: invalid Amdahl parameters %+v", name, lp)
	}
	// Keep the kernel's cost layout consistent with the node's data
	// layout so calibration and simulation always agree.
	spec.Kernel.Grid = spec.Axis == dist.ByGrid
	id := b.g.AddNode(mdg.Node{Name: name, Alpha: lp.Alpha, Tau: lp.Tau, Meta: spec.Kernel.Op.String()})
	or, oc := spec.Kernel.OutputShape()
	b.arrays[spec.Output] = Array{Name: spec.Output, Rows: or, Cols: oc}
	b.producer[spec.Output] = id
	b.specs = append(b.specs, spec)
	return id
}

// Finish derives the MDG edges from the producer/consumer relationships,
// augments START/STOP, and validates the result.
func (b *Builder) Finish() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.specs) == 0 {
		return nil, fmt.Errorf("prog: empty program %q", b.name)
	}
	for id, spec := range b.specs {
		seen := map[string]bool{}
		for _, in := range spec.Inputs {
			if seen[in] {
				// The same array feeding two operand slots is moved once;
				// the edge carries one transfer per distinct array
				// (matching the generated MPMD code).
				continue
			}
			seen[in] = true
			src := b.producer[in]
			arr := b.arrays[in]
			kind := dist.KindBetween(b.specs[src].Axis, spec.Axis)
			b.g.AddEdge(src, mdg.NodeID(id), mdg.Transfer{Bytes: arr.Bytes(), Kind: kind})
		}
	}
	if _, _, err := b.g.EnsureStartStop(); err != nil {
		return nil, err
	}
	// Dummy nodes appended by EnsureStartStop get OpNone specs.
	for len(b.specs) < b.g.NumNodes() {
		b.specs = append(b.specs, NodeSpec{Kernel: kernels.Kernel{Op: kernels.OpNone}})
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return &Program{
		Name:     b.name,
		G:        &b.g,
		Specs:    b.specs,
		Arrays:   b.arrays,
		producer: b.producer,
	}, nil
}

// ReferenceRun executes the program sequentially in topological order,
// returning every array's final value. This is the numerical oracle for
// simulated parallel runs.
func (p *Program) ReferenceRun() (map[string]*matrix.Matrix, error) {
	order, err := p.G.TopoOrder()
	if err != nil {
		return nil, err
	}
	vals := map[string]*matrix.Matrix{}
	for _, v := range order {
		spec := p.Specs[v]
		if spec.Kernel.Op == kernels.OpNone {
			continue
		}
		inputs := make([]*matrix.Matrix, 0, len(spec.Inputs))
		for _, in := range spec.Inputs {
			m, ok := vals[in]
			if !ok {
				return nil, fmt.Errorf("prog: node %d consumes %q before production", v, in)
			}
			inputs = append(inputs, m)
		}
		arr := p.Arrays[spec.Output]
		out := matrix.New(arr.Rows, arr.Cols)
		if err := spec.Kernel.Execute(out, inputs...); err != nil {
			return nil, fmt.Errorf("prog: node %d (%s): %w", v, p.G.Nodes[v].Name, err)
		}
		vals[spec.Output] = out
	}
	return vals, nil
}

// Consumers returns the nodes consuming the named array, ascending.
func (p *Program) Consumers(name string) []mdg.NodeID {
	var out []mdg.NodeID
	for id, spec := range p.Specs {
		for _, in := range spec.Inputs {
			if in == name {
				out = append(out, mdg.NodeID(id))
				break
			}
		}
	}
	return out
}
