// Package programs builds the paper's test programs as executable MDG
// programs (Figure 6), plus the Section 1.2 motivating example (Figure 1)
// and a synthetic pipeline generator for stress tests.
//
// Both test programs use the three loop types of Section 6 — Matrix
// Initialization, Matrix Multiplication and Matrix Addition (plus
// subtraction, an addition-cost loop) — and all their data transfers are
// of the 1D type, as the paper notes, because every node distributes by
// rows.
package programs

import (
	"fmt"
	"math"

	"paradigm/internal/costmodel"
	"paradigm/internal/dist"
	"paradigm/internal/kernels"
	"paradigm/internal/machine"
	"paradigm/internal/mdg"
	"paradigm/internal/prog"
)

// FigureOneMDG reproduces the Section 1.2 example: three nodes, no data
// transfer costs, processing curves such that on a 4-processor system the
// naive all-processors schedule takes 15.6 s while the mixed schedule
// (N1 on 4, then N2 ∥ N3 on 2 each) takes 14.3 s.
func FigureOneMDG() *mdg.Graph {
	var g mdg.Graph
	// t1(4) = 2.6 s with α = 0.05.
	n1 := g.AddNode(mdg.Node{Name: "N1", Alpha: 0.05, Tau: 2.6 / (0.05 + 0.95/4)})
	// t2(4) = 6.5 s, t2(2) = 11.7 s -> α = 1/17, τ = 6.5/(α+(1-α)/4).
	alpha := 1.0 / 17.0
	tau := 6.5 / (alpha + (1-alpha)/4)
	n2 := g.AddNode(mdg.Node{Name: "N2", Alpha: alpha, Tau: tau})
	n3 := g.AddNode(mdg.Node{Name: "N3", Alpha: alpha, Tau: tau})
	g.AddEdge(n1, n2)
	g.AddEdge(n1, n3)
	if _, _, err := g.EnsureStartStop(); err != nil {
		panic(err) // structurally impossible
	}
	return &g
}

// loop returns calibrated Amdahl parameters for a kernel, naming it for
// the Table 1 printer.
func loop(src machine.LoopSource, name string, k kernels.Kernel) (costmodel.LoopParams, error) {
	return src.Loop(name, k)
}

// ComplexMatMul builds the complex matrix multiplication program of
// Figure 6 (left): C = A·B over complex n×n matrices held as separate
// real and imaginary parts. Ten computation nodes: four initializations,
// four real multiplies, one subtraction (Cr = ArBr − AiBi) and one
// addition (Ci = ArBi + AiBr). Every node distributes by rows, so all
// transfers are 1D.
func ComplexMatMul(n int, src machine.LoopSource) (*prog.Program, error) {
	return ComplexMatMulLayout(n, src, false)
}

// ComplexMatMulLayout builds the complex matrix multiply with the four
// multiply nodes optionally on grid (blocked-2D) distributions — the
// paper's general-distribution extension, evaluated by experiment E12.
// Init and combine nodes stay row-distributed, so the grid variant
// exercises the L2G and G2L transfer kinds.
func ComplexMatMulLayout(n int, src machine.LoopSource, gridMuls bool) (*prog.Program, error) {
	if n < 1 {
		return nil, fmt.Errorf("programs: matrix size %d", n)
	}
	name := fmt.Sprintf("complex-matmul-%dx%d", n, n)
	if gridMuls {
		name += "-grid"
	}
	b := prog.NewBuilder(name)
	initK := func(phase float64) kernels.Kernel {
		return kernels.Kernel{Op: kernels.OpInit, M: n, N: n,
			Init: func(i, j int) float64 {
				return math.Sin(phase + float64(i*n+j)/float64(n*n)*2*math.Pi)
			}}
	}
	mulK := kernels.Kernel{Op: kernels.OpMul, M: n, N: n, K: n}
	addK := kernels.Kernel{Op: kernels.OpAdd, M: n, N: n}
	subK := kernels.Kernel{Op: kernels.OpSub, M: n, N: n}

	lpInit, err := loop(src, fmt.Sprintf("Matrix Init (%dx%d)", n, n), initK(0))
	if err != nil {
		return nil, err
	}
	mulAxis := dist.ByRow
	mulCalName := fmt.Sprintf("Matrix Multiply (%dx%d)", n, n)
	mulCalK := mulK
	if gridMuls {
		mulAxis = dist.ByGrid
		mulCalName = fmt.Sprintf("Matrix Multiply grid (%dx%d)", n, n)
		mulCalK.Grid = true
	}
	lpMul, err := loop(src, mulCalName, mulCalK)
	if err != nil {
		return nil, err
	}
	lpAdd, err := loop(src, fmt.Sprintf("Matrix Addition (%dx%d)", n, n), addK)
	if err != nil {
		return nil, err
	}

	add := func(name string, spec prog.NodeSpec, lp costmodel.LoopParams) {
		if spec.Axis != dist.ByGrid {
			spec.Axis = dist.ByRow
		}
		b.AddNode(name, spec, lp)
	}
	add("init_Ar", prog.NodeSpec{Kernel: initK(0.0), Output: "Ar"}, lpInit)
	add("init_Ai", prog.NodeSpec{Kernel: initK(0.7), Output: "Ai"}, lpInit)
	add("init_Br", prog.NodeSpec{Kernel: initK(1.4), Output: "Br"}, lpInit)
	add("init_Bi", prog.NodeSpec{Kernel: initK(2.1), Output: "Bi"}, lpInit)
	add("mul_ArBr", prog.NodeSpec{Kernel: mulK, Inputs: []string{"Ar", "Br"}, Output: "ArBr", Axis: mulAxis}, lpMul)
	add("mul_AiBi", prog.NodeSpec{Kernel: mulK, Inputs: []string{"Ai", "Bi"}, Output: "AiBi", Axis: mulAxis}, lpMul)
	add("mul_ArBi", prog.NodeSpec{Kernel: mulK, Inputs: []string{"Ar", "Bi"}, Output: "ArBi", Axis: mulAxis}, lpMul)
	add("mul_AiBr", prog.NodeSpec{Kernel: mulK, Inputs: []string{"Ai", "Br"}, Output: "AiBr", Axis: mulAxis}, lpMul)
	add("sub_Cr", prog.NodeSpec{Kernel: subK, Inputs: []string{"ArBr", "AiBi"}, Output: "Cr"}, lpAdd)
	add("add_Ci", prog.NodeSpec{Kernel: addK, Inputs: []string{"ArBi", "AiBr"}, Output: "Ci"}, lpAdd)
	return b.Finish()
}

// Strassen builds Strassen's matrix multiplication of Figure 6 (right)
// for n×n matrices (n even): quadrant initializations, the ten pre-adds
// S1..S5/T1..T5, the seven half-size multiplies M1..M7, and the eight
// post-adds assembling C11, C12, C21, C22. All nodes distribute by rows
// (1D transfers), matching the paper. The conceptual operands are
// A = [A11 A12; A21 A22], B likewise, generated by AElem/BElem below.
func Strassen(n int, src machine.LoopSource) (*prog.Program, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("programs: Strassen needs an even size, got %d", n)
	}
	h := n / 2
	b := prog.NewBuilder(fmt.Sprintf("strassen-%dx%d", n, n))

	initK := func(src func(i, j int) float64, r0, c0 int) kernels.Kernel {
		return kernels.Kernel{Op: kernels.OpInit, M: h, N: h,
			Init: func(i, j int) float64 { return src(r0+i, c0+j) }}
	}
	mulK := kernels.Kernel{Op: kernels.OpMul, M: h, N: h, K: h}
	addK := kernels.Kernel{Op: kernels.OpAdd, M: h, N: h}
	subK := kernels.Kernel{Op: kernels.OpSub, M: h, N: h}

	lpInit, err := loop(src, fmt.Sprintf("Matrix Init (%dx%d)", h, h), initK(AElem, 0, 0))
	if err != nil {
		return nil, err
	}
	lpMul, err := loop(src, fmt.Sprintf("Matrix Multiply (%dx%d)", h, h), mulK)
	if err != nil {
		return nil, err
	}
	lpAdd, err := loop(src, fmt.Sprintf("Matrix Addition (%dx%d)", h, h), addK)
	if err != nil {
		return nil, err
	}

	add := func(name string, spec prog.NodeSpec, lp costmodel.LoopParams) {
		spec.Axis = dist.ByRow
		b.AddNode(name, spec, lp)
	}

	// Quadrant initializations.
	for _, q := range []struct {
		name   string
		src    func(i, j int) float64
		r0, c0 int
	}{
		{"A11", AElem, 0, 0}, {"A12", AElem, 0, h}, {"A21", AElem, h, 0}, {"A22", AElem, h, h},
		{"B11", BElem, 0, 0}, {"B12", BElem, 0, h}, {"B21", BElem, h, 0}, {"B22", BElem, h, h},
	} {
		add("init_"+q.name, prog.NodeSpec{Kernel: initK(q.src, q.r0, q.c0), Output: q.name}, lpInit)
	}

	// Pre-additions.
	pre := []struct {
		name string
		op   kernels.Kernel
		a, b string
	}{
		{"S1", addK, "A11", "A22"}, // M1 left
		{"T1", addK, "B11", "B22"}, // M1 right
		{"S2", addK, "A21", "A22"}, // M2 left
		{"T3", subK, "B12", "B22"}, // M3 right
		{"T4", subK, "B21", "B11"}, // M4 right
		{"S5", addK, "A11", "A12"}, // M5 left
		{"S6", subK, "A21", "A11"}, // M6 left
		{"T6", addK, "B11", "B12"}, // M6 right
		{"S7", subK, "A12", "A22"}, // M7 left
		{"T7", addK, "B21", "B22"}, // M7 right
	}
	for _, p := range pre {
		add(p.name, prog.NodeSpec{Kernel: p.op, Inputs: []string{p.a, p.b}, Output: p.name}, lpAdd)
	}

	// The seven products.
	muls := []struct {
		name string
		a, b string
	}{
		{"M1", "S1", "T1"},
		{"M2", "S2", "B11"},
		{"M3", "A11", "T3"},
		{"M4", "A22", "T4"},
		{"M5", "S5", "B22"},
		{"M6", "S6", "T6"},
		{"M7", "S7", "T7"},
	}
	for _, m := range muls {
		add(m.name, prog.NodeSpec{Kernel: mulK, Inputs: []string{m.a, m.b}, Output: m.name}, lpMul)
	}

	// Post-additions:
	// C11 = M1 + M4 - M5 + M7; C12 = M3 + M5; C21 = M2 + M4;
	// C22 = M1 - M2 + M3 + M6.
	post := []struct {
		name string
		op   kernels.Kernel
		a, b string
	}{
		{"U1", addK, "M1", "M4"},  // M1+M4
		{"U2", subK, "U1", "M5"},  // M1+M4-M5
		{"C11", addK, "U2", "M7"}, // +M7
		{"C12", addK, "M3", "M5"},
		{"C21", addK, "M2", "M4"},
		{"U3", subK, "M1", "M2"},  // M1-M2
		{"U4", addK, "U3", "M3"},  // +M3
		{"C22", addK, "U4", "M6"}, // +M6
	}
	for _, p := range post {
		add(p.name, prog.NodeSpec{Kernel: p.op, Inputs: []string{p.a, p.b}, Output: p.name}, lpAdd)
	}
	return b.Finish()
}

// AElem and BElem generate the conceptual Strassen operands: smooth,
// deterministic, non-symmetric functions so quadrant mix-ups change the
// result.
func AElem(i, j int) float64 { return math.Sin(float64(3*i+2*j)/17.0) + 0.01*float64(i-j) }

// BElem generates the right operand.
func BElem(i, j int) float64 { return math.Cos(float64(2*i-j)/13.0) - 0.02*float64(i+j) }

// SyntheticPipeline builds a width×depth grid of matrix-multiply stages
// over an initialized matrix — the signal-processing-style workload class
// the paper's introduction motivates (independent filter branches expose
// functional parallelism; each stage is data parallel). Branch k applies
// `depth` chained multiplies by the source operator; a final reduction
// tree sums the branch outputs. The source entries are scaled so chained
// products stay O(1).
func SyntheticPipeline(n, width, depth int, src machine.LoopSource) (*prog.Program, error) {
	if n < 1 || width < 1 || depth < 1 {
		return nil, fmt.Errorf("programs: invalid pipeline %dx%d over %d", width, depth, n)
	}
	b := prog.NewBuilder(fmt.Sprintf("pipeline-w%d-d%d-%dx%d", width, depth, n, n))
	initK := kernels.Kernel{Op: kernels.OpInit, M: n, N: n,
		Init: func(i, j int) float64 { return float64(i+j+1) / float64(2*n*n) }}
	mulK := kernels.Kernel{Op: kernels.OpMul, M: n, N: n, K: n}
	addK := kernels.Kernel{Op: kernels.OpAdd, M: n, N: n}
	lpInit, err := loop(src, fmt.Sprintf("Matrix Init (%dx%d)", n, n), initK)
	if err != nil {
		return nil, err
	}
	lpMul, err := loop(src, fmt.Sprintf("Matrix Multiply (%dx%d)", n, n), mulK)
	if err != nil {
		return nil, err
	}
	lpAdd, err := loop(src, fmt.Sprintf("Matrix Addition (%dx%d)", n, n), addK)
	if err != nil {
		return nil, err
	}
	add := func(name string, spec prog.NodeSpec, lp costmodel.LoopParams) {
		spec.Axis = dist.ByRow
		b.AddNode(name, spec, lp)
	}
	add("source", prog.NodeSpec{Kernel: initK, Output: "src"}, lpInit)
	frontier := make([]string, width)
	for w := 0; w < width; w++ {
		prev := "src"
		for d := 0; d < depth; d++ {
			out := fmt.Sprintf("b%d_s%d", w, d)
			add(out, prog.NodeSpec{Kernel: mulK, Inputs: []string{prev, "src"}, Output: out}, lpMul)
			prev = out
		}
		frontier[w] = prev
	}
	// Reduction tree over branch outputs.
	level := 0
	for len(frontier) > 1 {
		var next []string
		for i := 0; i+1 < len(frontier); i += 2 {
			out := fmt.Sprintf("r%d_%d", level, i/2)
			add(out, prog.NodeSpec{Kernel: addK, Inputs: []string{frontier[i], frontier[i+1]}, Output: out}, lpAdd)
			next = append(next, out)
		}
		if len(frontier)%2 == 1 {
			next = append(next, frontier[len(frontier)-1])
		}
		frontier = next
		level++
	}
	return b.Finish()
}
