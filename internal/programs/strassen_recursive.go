package programs

import (
	"fmt"

	"paradigm/internal/costmodel"
	"paradigm/internal/dist"
	"paradigm/internal/kernels"
	"paradigm/internal/machine"
	"paradigm/internal/prog"
)

// StrassenRecursive builds Strassen's multiplication with the
// decomposition applied recursively at the MDG level: every half-size
// product below the cutoff depth expands into its own Strassen subgraph
// of quadrant extractions, pre-additions, seven recursive products and
// post-additions, with a final quadrant assembly. Depth 0 is a single
// multiply node; depth 1 matches the paper's program structure (modulo
// explicit extract/assemble nodes); depth 2 yields a 49-multiply MDG with
// far more functional parallelism — and far more redistribution overhead,
// the trade-off experiment E14 measures.
//
// The conceptual operands are the same AElem/BElem matrices as Strassen's,
// so every depth verifies against the same direct product. n must be
// divisible by 2^depth.
func StrassenRecursive(n, depth int, src machine.LoopSource) (*prog.Program, error) {
	if n < 1 {
		return nil, fmt.Errorf("programs: matrix size %d", n)
	}
	if depth < 0 {
		return nil, fmt.Errorf("programs: negative depth %d", depth)
	}
	if n%(1<<uint(depth)) != 0 {
		return nil, fmt.Errorf("programs: size %d not divisible by 2^%d", n, depth)
	}
	b := prog.NewBuilder(fmt.Sprintf("strassen-rec-%dx%d-d%d", n, n, depth))
	sb := &strassenBuilder{b: b, src: src}

	initA := kernels.Kernel{Op: kernels.OpInit, M: n, N: n, Init: AElem}
	initB := kernels.Kernel{Op: kernels.OpInit, M: n, N: n, Init: BElem}
	lpInit, err := src.Loop(fmt.Sprintf("Matrix Init (%dx%d)", n, n), initA)
	if err != nil {
		return nil, err
	}
	b.AddNode("init_A", prog.NodeSpec{Kernel: initA, Output: "A", Axis: dist.ByRow}, lpInit)
	b.AddNode("init_B", prog.NodeSpec{Kernel: initB, Output: "B", Axis: dist.ByRow}, lpInit)

	if err := sb.multiply("C", "A", "B", n, depth); err != nil {
		return nil, err
	}
	return b.Finish()
}

// strassenBuilder carries naming state through the recursion.
type strassenBuilder struct {
	b    *prog.Builder
	src  machine.LoopSource
	next int
}

func (sb *strassenBuilder) fresh(prefix string) string {
	sb.next++
	return fmt.Sprintf("%s_%d", prefix, sb.next)
}

func (sb *strassenBuilder) lp(name string, k kernels.Kernel) (costmodel.LoopParams, error) {
	return sb.src.Loop(name, k)
}

// node adds a row-distributed node with calibrated parameters.
func (sb *strassenBuilder) node(name string, k kernels.Kernel, inputs []string, output string) error {
	calName := fmt.Sprintf("%s (%dx%d)", k.Op, k.M, k.N)
	if k.Op == kernels.OpMul {
		calName = fmt.Sprintf("Matrix Multiply (%dx%d)", k.M, k.N)
	}
	costK := k
	if costK.Op == kernels.OpSub {
		costK.Op = kernels.OpAdd // subtraction costs what addition costs
		calName = fmt.Sprintf("add (%dx%d)", k.M, k.N)
	}
	lp, err := sb.lp(calName, costK)
	if err != nil {
		return err
	}
	sb.b.AddNode(name, prog.NodeSpec{Kernel: k, Inputs: inputs, Output: output, Axis: dist.ByRow}, lp)
	return nil
}

// multiply emits nodes computing out = a·b for size×size operands,
// recursing depth more levels.
func (sb *strassenBuilder) multiply(out, a, b string, size, depth int) error {
	if depth == 0 {
		return sb.node("mul_"+out,
			kernels.Kernel{Op: kernels.OpMul, M: size, N: size, K: size},
			[]string{a, b}, out)
	}
	h := size / 2

	// Quadrant extraction.
	quads := map[string]string{}
	for _, src := range []string{a, b} {
		for qi, anchor := range [][2]int{{0, 0}, {0, h}, {h, 0}, {h, h}} {
			name := sb.fresh(fmt.Sprintf("%s_q%d", src, qi+1))
			k := kernels.Extract(h, h, size, size, anchor[0], anchor[1])
			if err := sb.node("ext_"+name, k, []string{src}, name); err != nil {
				return err
			}
			quads[fmt.Sprintf("%s%d", src, qi+1)] = name
		}
	}
	a11, a12, a21, a22 := quads[a+"1"], quads[a+"2"], quads[a+"3"], quads[a+"4"]
	b11, b12, b21, b22 := quads[b+"1"], quads[b+"2"], quads[b+"3"], quads[b+"4"]

	addK := kernels.Kernel{Op: kernels.OpAdd, M: h, N: h}
	subK := kernels.Kernel{Op: kernels.OpSub, M: h, N: h}
	binary := func(k kernels.Kernel, x, y string) (string, error) {
		name := sb.fresh("t")
		label := "add_"
		if k.Op == kernels.OpSub {
			label = "sub_"
		}
		if err := sb.node(label+name, k, []string{x, y}, name); err != nil {
			return "", err
		}
		return name, nil
	}

	// Pre-additions (Winograd-free classical Strassen).
	s1, err := binary(addK, a11, a22)
	if err != nil {
		return err
	}
	t1, err := binary(addK, b11, b22)
	if err != nil {
		return err
	}
	s2, err := binary(addK, a21, a22)
	if err != nil {
		return err
	}
	t3, err := binary(subK, b12, b22)
	if err != nil {
		return err
	}
	t4, err := binary(subK, b21, b11)
	if err != nil {
		return err
	}
	s5, err := binary(addK, a11, a12)
	if err != nil {
		return err
	}
	s6, err := binary(subK, a21, a11)
	if err != nil {
		return err
	}
	t6, err := binary(addK, b11, b12)
	if err != nil {
		return err
	}
	s7, err := binary(subK, a12, a22)
	if err != nil {
		return err
	}
	t7, err := binary(addK, b21, b22)
	if err != nil {
		return err
	}

	// The seven products, recursively.
	ms := make([]string, 7)
	for i, pair := range [][2]string{
		{s1, t1}, {s2, b11}, {a11, t3}, {a22, t4}, {s5, b22}, {s6, t6}, {s7, t7},
	} {
		ms[i] = sb.fresh("M")
		if err := sb.multiply(ms[i], pair[0], pair[1], h, depth-1); err != nil {
			return err
		}
	}

	// Post-additions: C11 = M1+M4-M5+M7; C12 = M3+M5; C21 = M2+M4;
	// C22 = M1-M2+M3+M6.
	u1, err := binary(addK, ms[0], ms[3])
	if err != nil {
		return err
	}
	u2, err := binary(subK, u1, ms[4])
	if err != nil {
		return err
	}
	c11, err := binary(addK, u2, ms[6])
	if err != nil {
		return err
	}
	c12, err := binary(addK, ms[2], ms[4])
	if err != nil {
		return err
	}
	c21, err := binary(addK, ms[1], ms[3])
	if err != nil {
		return err
	}
	u3, err := binary(subK, ms[0], ms[1])
	if err != nil {
		return err
	}
	u4, err := binary(addK, u3, ms[2])
	if err != nil {
		return err
	}
	c22, err := binary(addK, u4, ms[5])
	if err != nil {
		return err
	}

	// Assemble the quadrants into the product.
	return sb.node("asm_"+out, kernels.Assemble4(size, size),
		[]string{c11, c12, c21, c22}, out)
}
