package programs

import (
	"math"
	"testing"

	"paradigm/internal/alloc"
	"paradigm/internal/codegen"
	"paradigm/internal/costmodel"
	"paradigm/internal/kernels"
	"paradigm/internal/machine"
	"paradigm/internal/matrix"
	"paradigm/internal/mdg"
	"paradigm/internal/prog"
	"paradigm/internal/sched"
	"paradigm/internal/sim"
	"paradigm/internal/trainsets"
)

func calibration(t testing.TB) *trainsets.Calibration {
	t.Helper()
	c, err := trainsets.Calibrate(machine.CM5(64))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFigureOneExampleNumbers(t *testing.T) {
	g := FigureOneMDG()
	m := costmodel.Model{}
	// Naive SPMD on 4 processors: 15.6 s (the paper's first scheme).
	spmd, err := sched.SPMD(g, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spmd.Makespan-15.6) > 0.05 {
		t.Fatalf("naive makespan = %v, want 15.6", spmd.Makespan)
	}
	// Mixed: N1 on 4, N2 and N3 on 2 each: 14.3 s (the second scheme).
	// Node ids: N1=0, N2=1, N3=2, then START/STOP dummies.
	allocv := make([]int, g.NumNodes())
	for i := range allocv {
		allocv[i] = 1
	}
	allocv[0] = 4
	allocv[1], allocv[2] = 2, 2
	mixed, err := sched.PSA(g, m, allocv, 4, sched.LowestEST)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mixed.Makespan-14.3) > 0.05 {
		t.Fatalf("mixed makespan = %v, want 14.3", mixed.Makespan)
	}
}

func TestFigureOneConvexAllocatorFindsSplit(t *testing.T) {
	g := FigureOneMDG()
	m := costmodel.Model{}
	ar, err := alloc.Solve(g, m, 4, alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(g, m, ar.P, 4, sched.Options{PB: 4})
	if err != nil {
		t.Fatal(err)
	}
	spmd, err := sched.SPMD(g, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan >= spmd.Makespan {
		t.Fatalf("pipeline makespan %v should beat naive %v", s.Makespan, spmd.Makespan)
	}
}

func TestComplexMatMulStructure(t *testing.T) {
	cal := calibration(t)
	p, err := ComplexMatMul(16, cal)
	if err != nil {
		t.Fatal(err)
	}
	// 10 computation nodes + START/STOP dummies.
	real := 0
	for _, spec := range p.Specs {
		if spec.Kernel.Op != kernels.OpNone {
			real++
		}
	}
	if real != 10 {
		t.Fatalf("computation nodes = %d, want 10", real)
	}
	// The paper: all transfers are 1D in both algorithms.
	for _, e := range p.G.Edges {
		for _, tr := range e.Transfers {
			if tr.Kind != mdg.Transfer1D {
				t.Fatalf("edge %d->%d has %v transfer, want all 1D", e.From, e.To, tr.Kind)
			}
		}
	}
}

// complexReference computes the complex product directly from the init
// generators.
func complexReference(t *testing.T, p *prog.Program) (cr, ci *matrix.Matrix) {
	t.Helper()
	ref, err := p.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	ar, ai, br, bi := ref["Ar"], ref["Ai"], ref["Br"], ref["Bi"]
	n := ar.Rows
	arbr, aibi, arbi, aibr := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	if err := matrix.Mul(arbr, ar, br); err != nil {
		t.Fatal(err)
	}
	if err := matrix.Mul(aibi, ai, bi); err != nil {
		t.Fatal(err)
	}
	if err := matrix.Mul(arbi, ar, bi); err != nil {
		t.Fatal(err)
	}
	if err := matrix.Mul(aibr, ai, br); err != nil {
		t.Fatal(err)
	}
	cr, ci = matrix.New(n, n), matrix.New(n, n)
	if err := matrix.Sub(cr, arbr, aibi); err != nil {
		t.Fatal(err)
	}
	if err := matrix.Add(ci, arbi, aibr); err != nil {
		t.Fatal(err)
	}
	return cr, ci
}

func TestComplexMatMulSimulatedCorrect(t *testing.T) {
	cal := calibration(t)
	p, err := ComplexMatMul(16, cal)
	if err != nil {
		t.Fatal(err)
	}
	model := cal.Model()
	ar, err := alloc.Solve(p.G, model, 16, alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(p.G, model, ar.P, 16, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := codegen.Generate(p, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(p, streams, machine.CM5(16))
	if err != nil {
		t.Fatal(err)
	}
	wantCr, wantCi := complexReference(t, p)
	gotCr, err := res.Gather("Cr")
	if err != nil {
		t.Fatal(err)
	}
	gotCi, err := res.Gather("Ci")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(gotCr, wantCr, 1e-9) || !matrix.Equal(gotCi, wantCi, 1e-9) {
		t.Fatal("simulated complex product differs from direct computation")
	}
}

func TestStrassenStructure(t *testing.T) {
	cal := calibration(t)
	p, err := Strassen(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[kernels.Op]int{}
	for _, spec := range p.Specs {
		counts[spec.Kernel.Op]++
	}
	if counts[kernels.OpInit] != 8 {
		t.Fatalf("inits = %d, want 8", counts[kernels.OpInit])
	}
	if counts[kernels.OpMul] != 7 {
		t.Fatalf("muls = %d, want 7 (Strassen's point)", counts[kernels.OpMul])
	}
	if counts[kernels.OpAdd]+counts[kernels.OpSub] != 18 {
		t.Fatalf("adds+subs = %d, want 18", counts[kernels.OpAdd]+counts[kernels.OpSub])
	}
	for _, e := range p.G.Edges {
		for _, tr := range e.Transfers {
			if tr.Kind != mdg.Transfer1D {
				t.Fatalf("transfer %v, want all 1D", tr.Kind)
			}
		}
	}
	if _, err := Strassen(31, cal); err == nil {
		t.Fatal("want error for odd size")
	}
}

// TestStrassenMatchesDirectMultiply: the whole point of the program — the
// quadrant assembly of the simulated Strassen run equals the direct
// product of the conceptual operands.
func TestStrassenMatchesDirectMultiply(t *testing.T) {
	cal := calibration(t)
	const n = 32
	p, err := Strassen(n, cal)
	if err != nil {
		t.Fatal(err)
	}
	model := cal.Model()
	ar, err := alloc.Solve(p.G, model, 16, alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(p.G, model, ar.P, 16, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := codegen.Generate(p, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(p, streams, machine.CM5(16))
	if err != nil {
		t.Fatal(err)
	}
	// Assemble C from simulated quadrants.
	h := n / 2
	c := matrix.New(n, n)
	for _, q := range []struct {
		name   string
		r0, c0 int
	}{{"C11", 0, 0}, {"C12", 0, h}, {"C21", h, 0}, {"C22", h, h}} {
		blk, err := res.Gather(q.name)
		if err != nil {
			t.Fatal(err)
		}
		c.SetBlock(q.r0, q.c0, blk)
	}
	// Direct product of the conceptual operands.
	a := matrix.New(n, n)
	bm := matrix.New(n, n)
	a.Fill(AElem)
	bm.Fill(BElem)
	want := matrix.New(n, n)
	if err := matrix.Mul(want, a, bm); err != nil {
		t.Fatal(err)
	}
	d, err := matrix.MaxAbsDiff(c, want)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Fatalf("Strassen result differs from direct multiply by %v", d)
	}
}

func TestSyntheticPipeline(t *testing.T) {
	cal := calibration(t)
	p, err := SyntheticPipeline(8, 3, 2, cal)
	if err != nil {
		t.Fatal(err)
	}
	// 1 init + width*depth adds + reduction (width-1 adds).
	real := 0
	for _, spec := range p.Specs {
		if spec.Kernel.Op != kernels.OpNone {
			real++
		}
	}
	if real != 1+3*2+2 {
		t.Fatalf("nodes = %d, want %d", real, 1+3*2+2)
	}
	if _, err := p.ReferenceRun(); err != nil {
		t.Fatal(err)
	}
	if _, err := SyntheticPipeline(0, 1, 1, cal); err == nil {
		t.Fatal("want size error")
	}
}

func BenchmarkStrassenPipeline16(b *testing.B) {
	cal := calibration(b)
	p, err := Strassen(32, cal)
	if err != nil {
		b.Fatal(err)
	}
	model := cal.Model()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar, err := alloc.Solve(p.G, model, 16, alloc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sched.Run(p.G, model, ar.P, 16, sched.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStrassenRecursiveDepths: every recursion depth produces the same
// numerically verified product through the full simulated pipeline.
func TestStrassenRecursiveDepths(t *testing.T) {
	cal := calibration(t)
	const n = 32
	a := matrix.New(n, n)
	bm := matrix.New(n, n)
	a.Fill(AElem)
	bm.Fill(BElem)
	want := matrix.New(n, n)
	if err := matrix.Mul(want, a, bm); err != nil {
		t.Fatal(err)
	}
	nodeCounts := map[int]int{}
	for depth := 0; depth <= 2; depth++ {
		p, err := StrassenRecursive(n, depth, cal)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		nodeCounts[depth] = p.G.NumNodes()
		model := cal.Model()
		ar, err := alloc.Solve(p.G, model, 16, alloc.Options{})
		if err != nil {
			t.Fatalf("depth %d alloc: %v", depth, err)
		}
		s, err := sched.Run(p.G, model, ar.P, 16, sched.Options{})
		if err != nil {
			t.Fatalf("depth %d sched: %v", depth, err)
		}
		streams, err := codegen.Generate(p, s)
		if err != nil {
			t.Fatalf("depth %d codegen: %v", depth, err)
		}
		res, err := sim.Run(p, streams, machine.CM5(16))
		if err != nil {
			t.Fatalf("depth %d sim: %v", depth, err)
		}
		got, err := res.Gather("C")
		if err != nil {
			t.Fatalf("depth %d gather: %v", depth, err)
		}
		d, err := matrix.MaxAbsDiff(got, want)
		if err != nil {
			t.Fatal(err)
		}
		if d > 1e-9 {
			t.Fatalf("depth %d: result differs from direct product by %v", depth, d)
		}
	}
	// Node counts must grow steeply with depth (7x multiplies per level).
	if !(nodeCounts[0] < nodeCounts[1] && nodeCounts[1] < nodeCounts[2]) {
		t.Fatalf("node counts not growing: %v", nodeCounts)
	}
	if nodeCounts[2] < 150 {
		t.Fatalf("depth-2 MDG suspiciously small: %d nodes", nodeCounts[2])
	}
}

func TestStrassenRecursiveValidation(t *testing.T) {
	cal := calibration(t)
	if _, err := StrassenRecursive(0, 1, cal); err == nil {
		t.Fatal("want size error")
	}
	if _, err := StrassenRecursive(32, -1, cal); err == nil {
		t.Fatal("want depth error")
	}
	if _, err := StrassenRecursive(30, 2, cal); err == nil {
		t.Fatal("want divisibility error")
	}
}
