package schedcache

import (
	"fmt"
	"sync"
	"testing"
)

func entry(n int, phi float64) Entry {
	e := Entry{
		PCanon:     make([]float64, n),
		Phi:        phi,
		AllocCanon: make([]int, n),
		Nodes:      make([]NodeSched, n),
		ProcsTotal: 8, PB: 4, Makespan: phi * 2, Policy: 1,
	}
	for i := 0; i < n; i++ {
		e.PCanon[i] = float64(i) + phi
		e.AllocCanon[i] = i + 1
		e.Nodes[i] = NodeSched{Start: float64(i), Finish: float64(i + 1), Procs: []int{i}}
	}
	return e
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(4, 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	want := entry(3, 1.5)
	c.Put("k", want)
	got, ok := c.Get("k")
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Phi != want.Phi || got.Makespan != want.Makespan || got.PB != want.PB ||
		got.ProcsTotal != want.ProcsTotal || got.Policy != want.Policy {
		t.Fatalf("scalar mismatch: got %+v want %+v", got, want)
	}
	for i := range want.PCanon {
		if got.PCanon[i] != want.PCanon[i] || got.AllocCanon[i] != want.AllocCanon[i] {
			t.Fatalf("alloc mismatch at %d", i)
		}
		if got.Nodes[i].Start != want.Nodes[i].Start ||
			got.Nodes[i].Finish != want.Nodes[i].Finish || got.Nodes[i].Procs[0] != want.Nodes[i].Procs[0] {
			t.Fatalf("node mismatch at %d", i)
		}
	}
}

// Mutating what Get returned, or what was handed to Put, must not change
// the cached entry.
func TestCloneIsolation(t *testing.T) {
	c := New(4, 1)
	in := entry(2, 1.0)
	c.Put("k", in)
	in.PCanon[0] = -99
	in.Nodes[0].Procs[0] = -99

	got, _ := c.Get("k")
	if got.PCanon[0] == -99 || got.Nodes[0].Procs[0] == -99 {
		t.Fatal("Put aliased caller memory")
	}
	got.PCanon[0] = -7
	got.Nodes[0].Procs[0] = -7
	again, _ := c.Get("k")
	if again.PCanon[0] == -7 || again.Nodes[0].Procs[0] == -7 {
		t.Fatal("Get aliased cached memory")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2, 1)
	c.Put("a", entry(1, 1))
	c.Put("b", entry(1, 2))
	if _, ok := c.Get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", entry(1, 3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry a evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestShardedCapacityAndRouting(t *testing.T) {
	c := New(8, 4)
	if c.Shards() != 4 {
		t.Fatalf("Shards = %d", c.Shards())
	}
	for i := 0; i < 64; i++ {
		c.Put(fmt.Sprintf("key-%d", i), entry(1, float64(i)))
	}
	if n := c.Len(); n > 8 {
		t.Fatalf("Len = %d exceeds capacity 8", n)
	}
	// Every shard holds at least one entry even when capacity < shards.
	small := New(1, 4)
	for i := 0; i < 16; i++ {
		small.Put(fmt.Sprintf("k%d", i), entry(1, 0))
	}
	if n := small.Len(); n > 4 {
		t.Fatalf("per-shard minimum violated: Len = %d", n)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(32, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key-%d", (w*7+i)%16)
				c.Put(k, entry(2, float64(i)))
				if e, ok := c.Get(k); ok && len(e.PCanon) != 2 {
					t.Errorf("corrupt entry under %s", k)
				}
			}
		}(w)
	}
	wg.Wait()
}
