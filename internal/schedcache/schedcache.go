// Package schedcache is a bounded, sharded LRU of memoized
// allocate→schedule pipeline results, keyed by the relabel-invariant
// canonical MDG hash plus the cost model, solve-shaping options, and
// processor count (the key is derived in the paradigm package; this
// package stores plain data so it depends on nothing above the standard
// library).
//
// Where internal/alloccache memoizes only the convex allocation, an
// entry here carries the whole planning half of the pipeline: the
// continuous allocation with its objective decomposition AND the rounded
// PSA schedule (per-node start/finish windows and concrete processor
// sets). An exact hit replays both byte-identically without compiling,
// solving, or list-scheduling — the downstream codegen and simulation
// stages are deterministic functions of (program, schedule), so a
// service front end amortizes the entire solver cost across repeated
// graphs. Unlike the allocation cache there is no near-hit seeding:
// exact replay or nothing, which is what keeps cached results pure
// functions of the request (the CacheExactOnly argument of DESIGN.md
// §14 extends to whole schedules — §15).
//
// Entries live in canonical node order, so graphs that differ only by
// node relabeling share one entry: allocations and schedules are
// permuted into canonical order on insert and permuted back through the
// querying graph's own canonicalizing permutation on replay.
//
// The cache is sharded: keys hash onto independently locked LRU shards,
// so concurrent service workers hitting different graphs never contend
// on one mutex. Capacity is divided evenly across shards (each shard
// holds at least one entry). All methods are safe for concurrent use.
package schedcache

import (
	"container/list"
	"hash/fnv"
	"sync"
)

// NodeSched is one node's scheduled window in canonical node order.
type NodeSched struct {
	Start, Finish float64
	// Procs are the concrete processor ids running the node, ascending.
	Procs []int
}

// Entry is one memoized allocate→schedule result in canonical node
// order.
type Entry struct {
	// PCanon holds the continuous per-node allocation permuted into
	// canonical order: PCanon[perm[i]] = P[i] for the canonicalizing
	// perm of the solved graph.
	PCanon []float64
	// Phi, Ap, Cp are the exact objective values of the stored solve.
	Phi, Ap, Cp float64
	// AllocCanon is the rounded-and-bounded per-node allocation in
	// canonical order.
	AllocCanon []int
	// Nodes are the scheduled windows in canonical order.
	Nodes []NodeSched
	// ProcsTotal, PB, Makespan and Policy mirror the schedule header.
	ProcsTotal, PB int
	Makespan       float64
	Policy         uint8
}

// clone deep-copies the entry so cached state and caller state can never
// alias each other in either direction.
func (e Entry) clone() Entry {
	e.PCanon = append([]float64(nil), e.PCanon...)
	e.AllocCanon = append([]int(nil), e.AllocCanon...)
	nodes := make([]NodeSched, len(e.Nodes))
	for i, n := range e.Nodes {
		n.Procs = append([]int(nil), n.Procs...)
		nodes[i] = n
	}
	e.Nodes = nodes
	return e
}

// Cache is a sharded, bounded LRU over exact keys.
type Cache struct {
	shards []*shard
}

type shard struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recent
	m   map[string]*list.Element // exact key -> element
}

type cacheItem struct {
	key   string
	entry Entry
}

// New creates a cache holding at most capacity entries spread over the
// given number of shards (minimums 1 and 1; each shard holds at least
// one entry, so the effective capacity is max(capacity, shards)).
func New(capacity, shards int) *Cache {
	if shards < 1 {
		shards = 1
	}
	if capacity < shards {
		capacity = shards
	}
	c := &Cache{shards: make([]*shard, shards)}
	per := capacity / shards
	extra := capacity % shards
	for i := range c.shards {
		n := per
		if i < extra {
			n++
		}
		c.shards[i] = &shard{
			cap: max(1, n),
			ll:  list.New(),
			m:   make(map[string]*list.Element),
		}
	}
	return c
}

// shardFor routes a key to its shard by FNV-1a.
func (c *Cache) shardFor(key string) *shard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[int(h.Sum32())%len(c.shards)]
}

// Len reports the number of stored entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Shards reports the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Get returns the entry stored under the exact key, marking it most
// recently used in its shard.
func (c *Cache) Get(key string) (Entry, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return Entry{}, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheItem).entry.clone(), true
}

// Put stores the entry under the exact key, evicting the least recently
// used entry of the key's shard past its capacity.
func (c *Cache) Put(key string, e Entry) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*cacheItem).entry = e.clone()
		s.ll.MoveToFront(el)
		return
	}
	s.m[key] = s.ll.PushFront(&cacheItem{key: key, entry: e.clone()})
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*cacheItem).key)
	}
}
