package codegen

import (
	"testing"

	"paradigm/internal/dist"
	"paradigm/internal/kernels"
	"paradigm/internal/prog"
	"paradigm/internal/sched"
)

// gridProgram builds a program whose multiply node is grid-distributed.
func gridProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("grid")
	initK := kernels.Kernel{Op: kernels.OpInit, M: 8, N: 8, Init: func(i, j int) float64 { return 1 }}
	b.AddNode("initA", prog.NodeSpec{Kernel: initK, Output: "A", Axis: dist.ByRow}, lp(0.05, 0.001))
	b.AddNode("initB", prog.NodeSpec{Kernel: kernels.Kernel{Op: kernels.OpInit, M: 8, N: 8,
		Init: func(i, j int) float64 { return 2 }}, Output: "B", Axis: dist.ByRow}, lp(0.05, 0.001))
	b.AddNode("mul", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpMul, M: 8, N: 8, K: 8},
		Inputs: []string{"A", "B"}, Output: "C", Axis: dist.ByGrid,
	}, lp(0.1, 0.01))
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlacementForGrid(t *testing.T) {
	pl, err := PlacementFor(prog.Array{Name: "A", Rows: 8, Cols: 8}, dist.ByGrid, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Blocks) != 4 {
		t.Fatalf("blocks = %d", len(pl.Blocks))
	}
	// 2x2 grid of 4x4 blocks, group order row-major.
	if b := pl.Blocks[3]; b.Proc != 3 || b.R0 != 4 || b.C0 != 4 {
		t.Fatalf("block 3 = %+v", b)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := PlacementFor(prog.Array{Rows: 8, Cols: 8}, dist.ByGrid, nil); err == nil {
		t.Fatal("want empty-group error")
	}
	if _, err := PlacementFor(prog.Array{Rows: 8, Cols: 8}, dist.ByRow, []int{0, 0}); err == nil {
		t.Fatal("want duplicate-proc error")
	}
}

func TestGenerateGridProgramStreams(t *testing.T) {
	p := gridProgram(t)
	allocv := make([]int, p.G.NumNodes())
	for i := range allocv {
		allocv[i] = 4
	}
	s, err := sched.PSA(p.G, cm5Fit, allocv, 4, sched.LowestEST)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := Generate(p, s)
	if err != nil {
		t.Fatal(err)
	}
	st := streams.Stats()
	if st.Execs != 12 { // 3 nodes × 4 procs
		t.Fatalf("execs = %d", st.Execs)
	}
	// Redistribution row -> grid with the same group produces both local
	// moves and real messages (blocks only partially overlap).
	if st.Moves == 0 || st.Sends == 0 {
		t.Fatalf("expected mixed moves and sends, got %+v", st)
	}
	if st.NetworkBytes+st.LocalBytes != 2*8*8*8 {
		t.Fatalf("moved %d bytes, want %d", st.NetworkBytes+st.LocalBytes, 2*8*8*8)
	}
}

func TestGenerateRejectsEmptyGroup(t *testing.T) {
	p := gridProgram(t)
	s := &sched.Schedule{
		ProcsTotal: 4,
		Entries:    make([]sched.Entry, p.G.NumNodes()),
		Alloc:      make([]int, p.G.NumNodes()),
	}
	if _, err := Generate(p, s); err == nil {
		t.Fatal("want empty-group error")
	}
}
