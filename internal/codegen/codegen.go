// Package codegen lowers a (program, schedule) pair into true MPMD code:
// one instruction stream per physical processor, mixing data
// redistribution (SEND/RECV/MOVE) with kernel execution (EXEC). This is
// Step 5 of the paper's pipeline — the per-processor programs the authors
// hand-wrote for the CM-5 — generated mechanically.
//
// Stream construction follows the cost model's accounting: a node's
// receives precede its EXEC and the sends to *all* of its successors
// follow it, exactly the decomposition T_i = Σt^R + t^C + Σt^S of
// Section 2. Per-processor instruction order follows the schedule's start
// times, which (for a valid schedule) makes the cross-processor
// dependency graph acyclic — the generated programs cannot deadlock.
package codegen

import (
	"context"
	"fmt"
	"sort"

	"paradigm/internal/dist"
	"paradigm/internal/kernels"
	"paradigm/internal/mdg"
	"paradigm/internal/prog"
	"paradigm/internal/sched"
)

// Rect is a half-open matrix rectangle rows [R0,R1) × cols [C0,C1).
type Rect struct {
	R0, R1, C0, C1 int
}

// Empty reports whether the rectangle has no elements.
func (r Rect) Empty() bool { return r.R0 >= r.R1 || r.C0 >= r.C1 }

// Bytes is the payload size of the rectangle.
func (r Rect) Bytes() int {
	if r.Empty() {
		return 0
	}
	return (r.R1 - r.R0) * (r.C1 - r.C0) * dist.ElemBytes
}

// Instance names one array instance in processor-local stores: the
// producing node's copy or a consumer's redistributed copy.
func Instance(array string, node mdg.NodeID) string {
	return fmt.Sprintf("%s@%d", array, node)
}

// Instr is one MPMD instruction. Exactly one of the concrete types below.
type Instr interface{ isInstr() }

// Send transmits the rectangle Payload of SrcInstance to processor To.
type Send struct {
	Tag         string
	To          int
	Payload     Rect
	SrcInstance string
}

// Recv blocks for the message Tag from processor From and stores its
// rectangle into DstInstance, whose full local block is Block.
type Recv struct {
	Tag         string
	From        int
	Payload     Rect
	DstInstance string
	Block       Rect
}

// Move copies a rectangle between two instances on the same processor
// (a redistribution overlap that stayed local).
type Move struct {
	Payload     Rect
	SrcInstance string
	DstInstance string
	Block       Rect
}

// Exec runs node Node's kernel as a group barrier across Group; MySlot is
// this processor's block index within the group.
type Exec struct {
	Node   mdg.NodeID
	Group  []int
	MySlot int
}

func (Send) isInstr() {}
func (Recv) isInstr() {}
func (Move) isInstr() {}
func (Exec) isInstr() {}

// Streams is the generated MPMD program.
type Streams struct {
	Procs   int
	PerProc [][]Instr
}

// Stats summarizes the communication volume of the program.
type Stats struct {
	Sends, Recvs, Moves, Execs int
	NetworkBytes               int
	LocalBytes                 int
}

// Stats tallies instruction counts and byte volumes.
func (s *Streams) Stats() Stats {
	var st Stats
	for _, stream := range s.PerProc {
		for _, in := range stream {
			switch v := in.(type) {
			case Send:
				st.Sends++
				st.NetworkBytes += v.Payload.Bytes()
			case Recv:
				st.Recvs++
			case Move:
				st.Moves++
				st.LocalBytes += v.Payload.Bytes()
			case Exec:
				st.Execs++
			}
		}
	}
	return st
}

// GroupDist builds the blocked 1D distribution of an array over a node's
// processor group along a linear axis.
func GroupDist(arr prog.Array, axis dist.Axis, group []int) (dist.Dist, error) {
	return dist.New(arr.Rows, arr.Cols, axis, group)
}

// PlacementFor builds the block map of an array over a node's processor
// group for any axis, including the grid extension. Block order follows
// the group order: Blocks[slot].Proc == group[slot].
func PlacementFor(arr prog.Array, axis dist.Axis, group []int) (dist.Placement, error) {
	if axis == dist.ByGrid {
		g, err := dist.NewGrid(arr.Rows, arr.Cols, group)
		if err != nil {
			return dist.Placement{}, err
		}
		return g.Placement(), nil
	}
	d, err := dist.New(arr.Rows, arr.Cols, axis, group)
	if err != nil {
		return dist.Placement{}, err
	}
	return d.Placement(), nil
}

// Generate lowers the program under the given schedule. The schedule must
// cover exactly the program's MDG (same node count) and be valid for its
// processor count.
func Generate(p *prog.Program, s *sched.Schedule) (*Streams, error) {
	return GenerateCtx(context.Background(), p, s)
}

// GenerateCtx is Generate with cancellation: ctx is checked once per
// node in the emission loop (each node can emit O(p²) redistribution
// messages, so emission is the long pole on large systems).
func GenerateCtx(ctx context.Context, p *prog.Program, s *sched.Schedule) (*Streams, error) {
	n := p.G.NumNodes()
	if len(s.Entries) != n {
		return nil, fmt.Errorf("codegen: schedule covers %d nodes, program has %d", len(s.Entries), n)
	}
	out := &Streams{Procs: s.ProcsTotal, PerProc: make([][]Instr, s.ProcsTotal)}

	// Process nodes in schedule order so each processor's stream is
	// ordered by start time (ties: node id, matching sched determinism).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := s.Entries[order[a]], s.Entries[order[b]]
		if ea.Start != eb.Start {
			return ea.Start < eb.Start
		}
		return order[a] < order[b]
	})

	emit := func(proc int, in Instr) error {
		if proc < 0 || proc >= out.Procs {
			return fmt.Errorf("codegen: processor %d outside [0,%d)", proc, out.Procs)
		}
		out.PerProc[proc] = append(out.PerProc[proc], in)
		return nil
	}

	// Precompute every redistribution: one per distinct (consumer, input
	// array) pair. Sends and local moves are emitted in the *producer's*
	// phase (the model accounts t^S inside T_m), receives in the
	// consumer's (t^R inside T_j).
	type redist struct {
		consumer mdg.NodeID
		srcInst  string
		dstInst  string
		msgs     []dist.Msg
		dstPlace dist.Placement
	}
	byProducer := make([][]redist, n)
	byConsumer := make([][]redist, n)
	for ci := 0; ci < n; ci++ {
		consumer := mdg.NodeID(ci)
		spec := p.Specs[consumer]
		if spec.Kernel.Op == kernels.OpNone {
			continue
		}
		if len(s.Entries[consumer].Procs) == 0 {
			return nil, fmt.Errorf("codegen: node %d has no processors", consumer)
		}
		seen := map[string]bool{}
		for _, in := range spec.Inputs {
			if seen[in] {
				continue // same array used as both operands: one copy
			}
			seen[in] = true
			src, ok := p.Producer(in)
			if !ok {
				return nil, fmt.Errorf("codegen: node %d consumes unproduced array %q", consumer, in)
			}
			arr := p.Arrays[in]
			srcPlace, err := PlacementFor(arr, p.Specs[src].Axis, s.Entries[src].Procs)
			if err != nil {
				return nil, fmt.Errorf("codegen: node %d source dist: %w", consumer, err)
			}
			dstPlace, err := PlacementFor(arr, spec.Axis, s.Entries[consumer].Procs)
			if err != nil {
				return nil, fmt.Errorf("codegen: node %d dest dist: %w", consumer, err)
			}
			msgs, err := dist.MessagesBetween(srcPlace, dstPlace)
			if err != nil {
				return nil, fmt.Errorf("codegen: node %d redistribution of %q: %w", consumer, in, err)
			}
			r := redist{
				consumer: consumer,
				srcInst:  Instance(in, src),
				dstInst:  Instance(in, consumer),
				msgs:     msgs,
				dstPlace: dstPlace,
			}
			byProducer[src] = append(byProducer[src], r)
			byConsumer[consumer] = append(byConsumer[consumer], r)
		}
	}

	blockRect := func(pl dist.Placement, proc int) (Rect, error) {
		b, ok := pl.BlockFor(proc)
		if !ok {
			return Rect{}, fmt.Errorf("codegen: processor %d not in destination group", proc)
		}
		return Rect{R0: b.R0, R1: b.R1, C0: b.C0, C1: b.C1}, nil
	}
	tagOf := func(r redist, mi int) string {
		return fmt.Sprintf("%s->%d#%d", r.srcInst, r.consumer, mi)
	}

	for _, ni := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		node := mdg.NodeID(ni)
		spec := p.Specs[node]
		if spec.Kernel.Op == kernels.OpNone {
			continue // dummy START/STOP: no data, no compute
		}
		group := s.Entries[node].Procs

		// Receive phase (t^R side of this node's weight).
		for _, r := range byConsumer[node] {
			for mi, m := range r.msgs {
				if m.From == m.To {
					continue // local move: emitted in the producer phase
				}
				block, err := blockRect(r.dstPlace, m.To)
				if err != nil {
					return nil, err
				}
				rect := Rect{R0: m.R0, R1: m.R1, C0: m.C0, C1: m.C1}
				if err := emit(m.To, Recv{Tag: tagOf(r, mi), From: m.From, Payload: rect, DstInstance: r.dstInst, Block: block}); err != nil {
					return nil, err
				}
			}
		}

		// Execute phase: one barrier EXEC per group member.
		for slot, proc := range group {
			if err := emit(proc, Exec{Node: node, Group: group, MySlot: slot}); err != nil {
				return nil, err
			}
		}

		// Send phase (t^S side): deliver this node's output toward every
		// consumer, in consumer order.
		for _, r := range byProducer[node] {
			for mi, m := range r.msgs {
				rect := Rect{R0: m.R0, R1: m.R1, C0: m.C0, C1: m.C1}
				if m.From == m.To {
					block, err := blockRect(r.dstPlace, m.To)
					if err != nil {
						return nil, err
					}
					if err := emit(m.From, Move{Payload: rect, SrcInstance: r.srcInst, DstInstance: r.dstInst, Block: block}); err != nil {
						return nil, err
					}
					continue
				}
				if err := emit(m.From, Send{Tag: tagOf(r, mi), To: m.To, Payload: rect, SrcInstance: r.srcInst}); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
