package codegen

import (
	"testing"

	"paradigm/internal/costmodel"
	"paradigm/internal/dist"
	"paradigm/internal/kernels"
	"paradigm/internal/mdg"
	"paradigm/internal/prog"
	"paradigm/internal/sched"
)

var cm5Fit = costmodel.Model{Transfer: costmodel.TransferParams{
	Tss: 777.56e-6, Tps: 486.98e-9, Tsr: 465.58e-6, Tpr: 426.25e-9, Tn: 0,
}}

func lp(a, t float64) costmodel.LoopParams { return costmodel.LoopParams{Alpha: a, Tau: t} }

func addProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("add")
	k := func(gen func(i, j int) float64) kernels.Kernel {
		return kernels.Kernel{Op: kernels.OpInit, M: 8, N: 8, Init: gen}
	}
	b.AddNode("initA", prog.NodeSpec{Kernel: k(func(i, j int) float64 { return 1 }), Output: "A", Axis: dist.ByRow}, lp(0.05, 0.001))
	b.AddNode("initB", prog.NodeSpec{Kernel: k(func(i, j int) float64 { return 2 }), Output: "B", Axis: dist.ByCol}, lp(0.05, 0.001))
	b.AddNode("add", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpAdd, M: 8, N: 8},
		Inputs: []string{"A", "B"}, Output: "C", Axis: dist.ByRow,
	}, lp(0.07, 0.004))
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func genStreams(t *testing.T, p *prog.Program, procs int) (*sched.Schedule, *Streams) {
	t.Helper()
	allocv := make([]int, p.G.NumNodes())
	for i := range allocv {
		allocv[i] = 2
	}
	s, err := sched.PSA(p.G, cm5Fit, allocv, procs, sched.LowestEST)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := Generate(p, s)
	if err != nil {
		t.Fatal(err)
	}
	return s, streams
}

func TestGenerateOrderingInvariants(t *testing.T) {
	p := addProgram(t)
	_, streams := genStreams(t, p, 4)
	// Per proc: a Send's source instance is produced by an earlier Exec
	// on the same stream, and every Recv destined for a node's input
	// precedes that node's Exec on the same stream.
	for pr, stream := range streams.PerProc {
		execAt := map[mdg.NodeID]int{}
		for i, in := range stream {
			if e, ok := in.(Exec); ok {
				execAt[e.Node] = i
			}
		}
		for i, in := range stream {
			switch v := in.(type) {
			case Recv:
				for node, pos := range execAt {
					for _, input := range p.Specs[node].Inputs {
						if Instance(input, node) == v.DstInstance && pos < i {
							t.Fatalf("proc %d: recv into %q at %d after consumer exec at %d",
								pr, v.DstInstance, i, pos)
						}
					}
				}
			case Send:
				found := false
				for j := 0; j < i; j++ {
					if e, ok := stream[j].(Exec); ok {
						if Instance(p.Specs[e.Node].Output, e.Node) == v.SrcInstance {
							found = true
						}
					}
				}
				if !found {
					t.Fatalf("proc %d: send at %d from %q before producing exec", pr, i, v.SrcInstance)
				}
			}
		}
	}
}

func TestStatsCounts(t *testing.T) {
	p := addProgram(t)
	_, streams := genStreams(t, p, 4)
	st := streams.Stats()
	if st.Execs != 6 { // 3 real nodes × 2 procs each
		t.Fatalf("execs = %d, want 6", st.Execs)
	}
	if st.Sends != st.Recvs {
		t.Fatalf("sends %d != recvs %d", st.Sends, st.Recvs)
	}
	if st.Sends+st.Moves == 0 {
		t.Fatal("expected some data movement")
	}
	// Total moved bytes = sum over redistributions of the array size:
	// A (8x8x8B) + B = 1024 B.
	if st.NetworkBytes+st.LocalBytes != 2*8*8*8 {
		t.Fatalf("moved %d bytes, want %d", st.NetworkBytes+st.LocalBytes, 2*8*8*8)
	}
}

func TestGenerateMismatchedSchedule(t *testing.T) {
	p := addProgram(t)
	s := &sched.Schedule{ProcsTotal: 4, Entries: make([]sched.Entry, 2), Alloc: []int{1, 1}}
	if _, err := Generate(p, s); err == nil {
		t.Fatal("want node-count mismatch error")
	}
}

func TestGenerateDummyNodesSilent(t *testing.T) {
	p := addProgram(t)
	_, streams := genStreams(t, p, 4)
	// Dummy START/STOP produce no instructions: count execs per node.
	for _, stream := range streams.PerProc {
		for _, in := range stream {
			if e, ok := in.(Exec); ok {
				if p.Specs[e.Node].Kernel.Op == kernels.OpNone {
					t.Fatalf("dummy node %d got an Exec", e.Node)
				}
			}
		}
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{R0: 1, R1: 3, C0: 0, C1: 4}
	if r.Empty() || r.Bytes() != 2*4*8 {
		t.Fatalf("rect = %+v bytes %d", r, r.Bytes())
	}
	e := Rect{R0: 2, R1: 2, C0: 0, C1: 4}
	if !e.Empty() || e.Bytes() != 0 {
		t.Fatal("empty rect misreported")
	}
	if Instance("A", 3) != "A@3" {
		t.Fatalf("Instance = %q", Instance("A", 3))
	}
}

func TestGroupDist(t *testing.T) {
	d, err := GroupDist(prog.Array{Name: "A", Rows: 8, Cols: 4}, dist.ByCol, []int{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if d.Axis != dist.ByCol || len(d.Procs) != 2 {
		t.Fatalf("dist = %+v", d)
	}
	if _, err := GroupDist(prog.Array{Rows: 8, Cols: 4}, dist.ByRow, nil); err == nil {
		t.Fatal("want error for empty group")
	}
}
