// Package matrix implements dense row-major float64 matrices: the data
// the test programs (Complex Matrix Multiply, Strassen) actually compute
// on. Every simulated program run moves and transforms real values, so
// scheduling and code-generation bugs surface as wrong numbers, not just
// wrong times.
package matrix

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) outside %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Fill assigns every element from f(i, j).
func (m *Matrix) Fill(f func(i, j int) float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] = f(i, j)
		}
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

func sameShape(a, b *Matrix) error {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Errorf("matrix: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return nil
}

// Add computes dst = a + b. dst may alias a or b.
func Add(dst, a, b *Matrix) error {
	if err := sameShape(a, b); err != nil {
		return err
	}
	if err := sameShape(dst, a); err != nil {
		return err
	}
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return nil
}

// Sub computes dst = a - b. dst may alias a or b.
func Sub(dst, a, b *Matrix) error {
	if err := sameShape(a, b); err != nil {
		return err
	}
	if err := sameShape(dst, a); err != nil {
		return err
	}
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return nil
}

// Mul computes dst = a·b with the classical triple loop (ikj order for
// cache friendliness). dst must not alias a or b.
func Mul(dst, a, b *Matrix) error {
	if a.Cols != b.Rows {
		return fmt.Errorf("matrix: inner dimensions %d vs %d", a.Cols, b.Rows)
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		return fmt.Errorf("matrix: dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols)
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return nil
}

// Scale computes dst = c·a. dst may alias a.
func Scale(dst *Matrix, c float64, a *Matrix) error {
	if err := sameShape(dst, a); err != nil {
		return err
	}
	for i := range dst.Data {
		dst.Data[i] = c * a.Data[i]
	}
	return nil
}

// Block returns a copy of the rectangle rows [r0,r1) × cols [c0,c1).
func (m *Matrix) Block(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.Rows || c0 < 0 || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("matrix: block [%d:%d,%d:%d] outside %dx%d", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Data[(i-r0)*out.Cols:(i-r0+1)*out.Cols], m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out
}

// SetBlock copies src into the rectangle anchored at (r0, c0).
func (m *Matrix) SetBlock(r0, c0 int, src *Matrix) {
	if r0 < 0 || r0+src.Rows > m.Rows || c0 < 0 || c0+src.Cols > m.Cols {
		panic(fmt.Sprintf("matrix: block %dx%d at (%d,%d) outside %dx%d",
			src.Rows, src.Cols, r0, c0, m.Rows, m.Cols))
	}
	for i := 0; i < src.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+src.Cols], src.Data[i*src.Cols:(i+1)*src.Cols])
	}
}

// MaxAbsDiff returns the max-norm distance between two same-shaped
// matrices, for verification against reference results.
func MaxAbsDiff(a, b *Matrix) (float64, error) {
	if err := sameShape(a, b); err != nil {
		return 0, err
	}
	d := 0.0
	for i := range a.Data {
		if v := math.Abs(a.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d, nil
}

// Equal reports elementwise equality within tol.
func Equal(a, b *Matrix, tol float64) bool {
	d, err := MaxAbsDiff(a, b)
	return err == nil && d <= tol
}
