package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func rnd(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	m.Fill(func(i, j int) float64 { return rng.NormFloat64() })
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("not zeroed")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At = %v", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Fatal("neighbor disturbed")
	}
}

func TestBoundsPanics(t *testing.T) {
	m := New(2, 2)
	for name, fn := range map[string]func(){
		"At row":       func() { m.At(2, 0) },
		"At col":       func() { m.At(0, -1) },
		"Set":          func() { m.Set(0, 5, 1) },
		"neg shape":    func() { New(-1, 2) },
		"block range":  func() { m.Block(0, 3, 0, 1) },
		"setblock fit": func() { m.SetBlock(1, 1, New(2, 2)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestAddSub(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	a.Fill(func(i, j int) float64 { return float64(i*2 + j) })
	b.Fill(func(i, j int) float64 { return 10 })
	dst := New(2, 2)
	if err := Add(dst, a, b); err != nil {
		t.Fatal(err)
	}
	if dst.At(1, 1) != 13 {
		t.Fatalf("add = %v", dst.At(1, 1))
	}
	if err := Sub(dst, dst, b); err != nil {
		t.Fatal(err)
	}
	if !Equal(dst, a, 0) {
		t.Fatal("a + b - b != a")
	}
	if err := Add(dst, a, New(3, 2)); err == nil {
		t.Fatal("want shape error")
	}
	if err := Add(New(1, 1), a, b); err == nil {
		t.Fatal("want dst shape error")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := rnd(rng, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	dst := New(4, 4)
	if err := Mul(dst, a, id); err != nil {
		t.Fatal(err)
	}
	if !Equal(dst, a, 1e-15) {
		t.Fatal("a·I != a")
	}
}

func TestMulKnown(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Matrix{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	dst := New(2, 2)
	if err := Mul(dst, a, b); err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("dst = %v, want %v", dst.Data, want)
		}
	}
	if err := Mul(New(2, 2), a, a); err == nil {
		t.Fatal("want inner dimension error")
	}
	if err := Mul(New(3, 3), a, b); err == nil {
		t.Fatal("want dst shape error")
	}
}

func TestScale(t *testing.T) {
	a := &Matrix{Rows: 1, Cols: 3, Data: []float64{1, -2, 3}}
	dst := New(1, 3)
	if err := Scale(dst, -2, a); err != nil {
		t.Fatal(err)
	}
	if dst.Data[0] != -2 || dst.Data[1] != 4 || dst.Data[2] != -6 {
		t.Fatalf("scale = %v", dst.Data)
	}
	if err := Scale(New(2, 2), 1, a); err == nil {
		t.Fatal("want shape error")
	}
}

func TestBlockSetBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := rnd(rng, 6, 5)
	blk := m.Block(1, 4, 2, 5)
	if blk.Rows != 3 || blk.Cols != 3 {
		t.Fatalf("block shape %dx%d", blk.Rows, blk.Cols)
	}
	if blk.At(0, 0) != m.At(1, 2) {
		t.Fatal("block content wrong")
	}
	m2 := New(6, 5)
	m2.SetBlock(1, 2, blk)
	if m2.At(2, 3) != m.At(2, 3) {
		t.Fatal("SetBlock content wrong")
	}
	if m2.At(0, 0) != 0 {
		t.Fatal("SetBlock touched outside rectangle")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("clone shares storage")
	}
}

// TestMulDistributesOverAdd: (a+b)·c == a·c + b·c on random matrices.
func TestMulDistributesOverAdd(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		a, b, c := rnd(rng, n, k), rnd(rng, n, k), rnd(rng, k, m)
		ab := New(n, k)
		if Add(ab, a, b) != nil {
			return false
		}
		lhs := New(n, m)
		if Mul(lhs, ab, c) != nil {
			return false
		}
		ac, bc := New(n, m), New(n, m)
		if Mul(ac, a, c) != nil || Mul(bc, b, c) != nil {
			return false
		}
		rhs := New(n, m)
		if Add(rhs, ac, bc) != nil {
			return false
		}
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBlockReassembly: cutting a matrix into quadrant blocks and
// reassembling reproduces it (the Strassen data path in miniature).
func TestBlockReassembly(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 * (1 + rng.Intn(6))
		m := rnd(rng, n, n)
		h := n / 2
		out := New(n, n)
		out.SetBlock(0, 0, m.Block(0, h, 0, h))
		out.SetBlock(0, h, m.Block(0, h, h, n))
		out.SetBlock(h, 0, m.Block(h, n, 0, h))
		out.SetBlock(h, h, m.Block(h, n, h, n))
		return Equal(out, m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := rnd(rng, 64, 64)
	y := rnd(rng, 64, 64)
	dst := New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Mul(dst, x, y); err != nil {
			b.Fatal(err)
		}
	}
}
