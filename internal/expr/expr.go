// Package expr implements a small expression DAG over log-space variables
// with memoized forward evaluation and exact reverse-mode gradients.
//
// The allocation formulation of the paper (Section 2) minimizes
// Φ = max(A_p, C_p) where every term is a posynomial in the processor
// counts p_i. Under the substitution x_i = ln p_i a posynomial
// Σ c_k·Π p_i^{a_ki} becomes Σ c_k·exp(a_k·x), which is convex, and the
// max/plus recursion defining the critical path C_p preserves convexity.
// This package represents exactly that class of expressions:
//
//   - Monomial: c·exp(Σ a_j·x_j), the log-space image of c·Π p_j^{a_j}
//   - Sum and Scale (with nonnegative factors)
//   - Mul of two expressions (used for processor-time products T_i·p_i)
//   - SmoothMax: a temperature-µ log-sum-exp softening of max, annealed
//     toward the exact max by the convex solver
//
// Nodes are created through a Graph builder and refer to children by ID,
// so shared subexpressions (a node weight appearing in both A_p and C_p)
// are evaluated once per sweep. Children always have smaller IDs than
// their parents, which makes a single reverse sweep a valid reverse-mode
// differentiation order.
package expr

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// ID names a node inside a Graph.
type ID int32

type kind uint8

const (
	kConst kind = iota
	kMonomial
	kSum
	kScale
	kMul
	kSmoothMax
)

// node is one vertex of the expression DAG.
type node struct {
	kind     kind
	coeff    float64   // kConst: value; kMonomial: c; kScale: factor
	varIdx   []int32   // kMonomial: variable indices
	varExp   []float64 // kMonomial: exponents a_j (parallel to varIdx)
	children []ID
}

// Graph is an append-only expression DAG. The zero value is ready to use.
// A Graph is not safe for concurrent mutation; evaluation through an
// Evaluator is safe as long as each goroutine uses its own Evaluator.
type Graph struct {
	nodes   []node
	numVars int
}

// NumNodes reports how many nodes have been created.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumVars reports the number of variables referenced (max index + 1).
func (g *Graph) NumVars() int { return g.numVars }

func (g *Graph) add(n node) ID {
	g.nodes = append(g.nodes, n)
	return ID(len(g.nodes) - 1)
}

// Const creates a constant node. Constants must be finite.
func (g *Graph) Const(c float64) ID {
	if math.IsNaN(c) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("expr: non-finite constant %v", c))
	}
	return g.add(node{kind: kConst, coeff: c})
}

// Monomial creates c·exp(Σ exps[v]·x_v), the log-space form of
// c·Π p_v^{exps[v]}. The coefficient must be positive and finite for the
// expression to remain convex (posynomial); zero is allowed and collapses
// to a constant.
func (g *Graph) Monomial(c float64, exps map[int]float64) ID {
	if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
		panic(fmt.Sprintf("expr: monomial coefficient %v must be finite and >= 0", c))
	}
	if c == 0 || len(exps) == 0 {
		// Degenerate: a pure constant (including c·p^0).
		if len(exps) == 0 {
			return g.add(node{kind: kConst, coeff: c})
		}
	}
	vars := make([]int, 0, len(exps))
	for v, a := range exps {
		if v < 0 {
			panic(fmt.Sprintf("expr: negative variable index %d", v))
		}
		if a != 0 {
			vars = append(vars, v)
		}
	}
	sort.Ints(vars)
	n := node{kind: kMonomial, coeff: c}
	for _, v := range vars {
		n.varIdx = append(n.varIdx, int32(v))
		n.varExp = append(n.varExp, exps[v])
		if v+1 > g.numVars {
			g.numVars = v + 1
		}
	}
	if len(n.varIdx) == 0 {
		return g.add(node{kind: kConst, coeff: c})
	}
	return g.add(n)
}

// Var creates the expression p_v, i.e. exp(x_v).
func (g *Graph) Var(v int) ID {
	return g.Monomial(1, map[int]float64{v: 1})
}

func (g *Graph) checkChildren(ids []ID) {
	for _, id := range ids {
		if int(id) < 0 || int(id) >= len(g.nodes) {
			panic(fmt.Sprintf("expr: child id %d out of range [0,%d)", id, len(g.nodes)))
		}
	}
}

// Sum creates Σ children. At least one child is required.
func (g *Graph) Sum(ids ...ID) ID {
	if len(ids) == 0 {
		panic("expr: Sum requires at least one child")
	}
	g.checkChildren(ids)
	if len(ids) == 1 {
		return ids[0]
	}
	return g.add(node{kind: kSum, children: append([]ID(nil), ids...)})
}

// Scale creates c·child with c >= 0 (preserving convexity).
func (g *Graph) Scale(c float64, id ID) ID {
	if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
		panic(fmt.Sprintf("expr: scale factor %v must be finite and >= 0", c))
	}
	g.checkChildren([]ID{id})
	if c == 1 {
		return id
	}
	return g.add(node{kind: kScale, coeff: c, children: []ID{id}})
}

// Mul creates a·b. Multiplication of two posynomials is again a
// posynomial, so convexity in log-space is preserved.
func (g *Graph) Mul(a, b ID) ID {
	g.checkChildren([]ID{a, b})
	return g.add(node{kind: kMul, children: []ID{a, b}})
}

// SmoothMax creates the temperature-smoothed maximum of its children:
// µ·log Σ exp(v_k/µ) at temperature µ > 0, and the exact max at µ <= 0.
// The temperature is supplied at evaluation time so the solver can anneal
// without rebuilding the graph.
func (g *Graph) SmoothMax(ids ...ID) ID {
	if len(ids) == 0 {
		panic("expr: SmoothMax requires at least one child")
	}
	g.checkChildren(ids)
	if len(ids) == 1 {
		return ids[0]
	}
	return g.add(node{kind: kSmoothMax, children: append([]ID(nil), ids...)})
}

// TempSlack returns a certified per-unit-temperature bound on the
// smoothing gap of root: for every x and every temperature T > 0,
//
//	Eval(root, x, 0) <= Eval(root, x, T) <= Eval(root, x, 0) + T·TempSlack(root)
//
// The bound is a structural DP over the DAG: constants and monomials are
// exact; a Sum accumulates its children's slacks; a Scale multiplies by
// its factor; a SmoothMax over k children adds ln k on top of the worst
// child (log-sum-exp exceeds max by at most T·ln k). A Mul whose operand
// carries slack has a value-dependent gap, so the DP returns +Inf for it
// — sound, just uninformative. The allocator's racing scheme uses this
// bound to turn a trajectory's smoothed stage value into a certified
// lower bound on the global minimum of the exact objective.
func (g *Graph) TempSlack(root ID) float64 {
	g.checkChildren([]ID{root})
	slack := make([]float64, int(root)+1)
	for i := 0; i <= int(root); i++ {
		n := &g.nodes[i]
		switch n.kind {
		case kConst, kMonomial:
			slack[i] = 0
		case kSum:
			s := 0.0
			for _, c := range n.children {
				s += slack[c]
			}
			slack[i] = s
		case kScale:
			if n.coeff == 0 {
				slack[i] = 0 // 0·Inf would poison the DP with NaN
			} else {
				slack[i] = n.coeff * slack[n.children[0]]
			}
		case kMul:
			if slack[n.children[0]] > 0 || slack[n.children[1]] > 0 {
				slack[i] = math.Inf(1)
			}
		case kSmoothMax:
			worst := 0.0
			for _, c := range n.children {
				if slack[c] > worst {
					worst = slack[c]
				}
			}
			slack[i] = worst + math.Log(float64(len(n.children)))
		}
	}
	return slack[root]
}

// TempGapBound returns a certified bound on the smoothing gap of root at
// one fixed temperature temp > 0, uniformly over the box [lower, upper]:
//
//	Eval(root, x, temp) <= Eval(root, x, 0) + TempGapBound(root, temp, lower, upper)
//
// for every x with lower <= x <= upper. It strengthens TempSlack where
// that DP gives up: a Mul's gap is value-dependent, but over a bounded
// box the factor values are bounded too —
//
//	a_T·b_T − a_0·b_0 = (a_T−a_0)·b_T + a_0·(b_T−b_0)
//	               <= gap_a·(ub_b+gap_b) + ub_a·gap_b
//
// for nonnegative factors, where ub is the factor's exact-value upper
// bound over the box (a monomial's box maximum is closed-form; sums,
// scales and maxes propagate). The DP therefore tracks (ub, gap) per
// node. A Mul with a possibly-negative operand (a negative constant
// somewhere below it) falls back to +Inf — sound, and impossible for the
// posynomial objectives the allocator builds. The allocator's racing
// certificate uses this bound: it turns a trajectory's smoothed stage
// value into a certified lower bound on the global minimum of the exact
// objective (alloc/race.go).
func (g *Graph) TempGapBound(root ID, temp float64, lower, upper []float64) float64 {
	g.checkChildren([]ID{root})
	if temp <= 0 {
		return 0
	}
	n := int(root) + 1
	ub := make([]float64, n)  // upper bound of the exact (temp-0) value
	neg := make([]bool, n)    // value could be negative somewhere in the box
	gap := make([]float64, n) // bound on val_T − val_0 over the box
	for i := 0; i < n; i++ {
		nd := &g.nodes[i]
		switch nd.kind {
		case kConst:
			ub[i] = nd.coeff
			neg[i] = nd.coeff < 0
		case kMonomial:
			// max over the box of c·exp(Σ a_j·x_j): each term maximizes
			// independently at the bound its exponent sign picks.
			dot := 0.0
			for k, v := range nd.varIdx {
				if int(v) >= len(lower) || int(v) >= len(upper) {
					return math.Inf(1)
				}
				dot += math.Max(nd.varExp[k]*lower[v], nd.varExp[k]*upper[v])
			}
			ub[i] = nd.coeff * math.Exp(dot)
		case kSum:
			for _, c := range nd.children {
				ub[i] += ub[c]
				gap[i] += gap[c]
				neg[i] = neg[i] || neg[c]
			}
		case kScale:
			if nd.coeff == 0 {
				ub[i], gap[i] = 0, 0 // 0·Inf would poison the DP with NaN
			} else {
				ub[i] = nd.coeff * ub[nd.children[0]]
				gap[i] = nd.coeff * gap[nd.children[0]]
			}
			neg[i] = neg[nd.children[0]]
		case kMul:
			a, b := nd.children[0], nd.children[1]
			ub[i] = ub[a] * ub[b]
			neg[i] = neg[a] || neg[b]
			switch {
			case gap[a] == 0 && gap[b] == 0:
				gap[i] = 0
			case neg[i]:
				gap[i] = math.Inf(1)
			default:
				gap[i] = gap[a]*(ub[b]+gap[b]) + ub[a]*gap[b]
			}
		case kSmoothMax:
			worstUB, worstGap := math.Inf(-1), 0.0
			for _, c := range nd.children {
				worstUB = math.Max(worstUB, ub[c])
				worstGap = math.Max(worstGap, gap[c])
				neg[i] = neg[i] || neg[c]
			}
			ub[i] = worstUB
			gap[i] = worstGap + temp*math.Log(float64(len(nd.children)))
		}
	}
	return gap[root]
}

// Evaluator holds per-evaluation scratch space for one Graph. Create one
// per goroutine with NewEvaluator; reuse across calls to avoid allocation.
type Evaluator struct {
	g   *Graph
	val []float64
	adj []float64
}

// NewEvaluator creates an Evaluator bound to g. The evaluator remains
// valid if more nodes are appended to g later (scratch space regrows).
func NewEvaluator(g *Graph) *Evaluator {
	return &Evaluator{g: g}
}

// EvaluatorPool recycles Evaluators for one Graph through a sync.Pool,
// so concurrent solvers (multi-start allocation, parallel experiment
// sweeps) reuse forward/adjoint scratch slices instead of allocating a
// pair per goroutine per solve. Evaluation state is fully rewritten by
// each forward sweep, so a recycled evaluator is indistinguishable from
// a fresh one — expr's pool guard test proves it.
type EvaluatorPool struct {
	g    *Graph
	pool sync.Pool
}

// NewEvaluatorPool creates a pool of evaluators bound to g.
func NewEvaluatorPool(g *Graph) *EvaluatorPool {
	p := &EvaluatorPool{g: g}
	p.pool.New = func() any { return NewEvaluator(g) }
	return p
}

// Get returns an evaluator for the pool's graph, recycled when one is
// available. Callers must return it with Put when done.
func (p *EvaluatorPool) Get() *Evaluator { return p.pool.Get().(*Evaluator) }

// Put returns an evaluator to the pool. The evaluator must have been
// created by this pool (or at least bound to the same Graph).
func (p *EvaluatorPool) Put(e *Evaluator) {
	if e == nil || e.g != p.g {
		panic("expr: EvaluatorPool.Put of an evaluator bound to a different graph")
	}
	p.pool.Put(e)
}

func (e *Evaluator) grow() {
	n := len(e.g.nodes)
	if cap(e.val) < n {
		e.val = make([]float64, n)
		e.adj = make([]float64, n)
	}
	e.val = e.val[:n]
	e.adj = e.adj[:n]
}

// forward computes values for every node (the DAG is append-ordered, so a
// single pass suffices). Temperature temp controls SmoothMax nodes.
func (e *Evaluator) forward(x []float64, temp float64) {
	e.grow()
	if len(x) < e.g.numVars {
		panic(fmt.Sprintf("expr: got %d variables, graph references %d", len(x), e.g.numVars))
	}
	for i := range e.g.nodes {
		n := &e.g.nodes[i]
		switch n.kind {
		case kConst:
			e.val[i] = n.coeff
		case kMonomial:
			dot := 0.0
			for k, v := range n.varIdx {
				dot += n.varExp[k] * x[v]
			}
			e.val[i] = n.coeff * math.Exp(dot)
		case kSum:
			s := 0.0
			for _, c := range n.children {
				s += e.val[c]
			}
			e.val[i] = s
		case kScale:
			e.val[i] = n.coeff * e.val[n.children[0]]
		case kMul:
			e.val[i] = e.val[n.children[0]] * e.val[n.children[1]]
		case kSmoothMax:
			e.val[i] = e.smoothMaxValue(n, temp)
		}
	}
}

func (e *Evaluator) smoothMaxValue(n *node, temp float64) float64 {
	m := math.Inf(-1)
	for _, c := range n.children {
		if e.val[c] > m {
			m = e.val[c]
		}
	}
	if temp <= 0 {
		return m
	}
	s := 0.0
	for _, c := range n.children {
		s += math.Exp((e.val[c] - m) / temp)
	}
	return m + temp*math.Log(s)
}

// Eval computes the value of root at log-space point x with SmoothMax
// temperature temp (temp <= 0 gives the exact max).
func (e *Evaluator) Eval(root ID, x []float64, temp float64) float64 {
	e.g.checkChildren([]ID{root})
	e.forward(x, temp)
	return e.val[root]
}

// EvalGrad computes the value of root and writes ∂root/∂x into grad,
// which must have length >= Graph.NumVars(). Reverse-mode: one forward
// sweep and one backward sweep over the DAG. At temp <= 0 the max nodes
// propagate a subgradient through the (first) argmax child.
func (e *Evaluator) EvalGrad(root ID, x []float64, temp float64, grad []float64) float64 {
	e.g.checkChildren([]ID{root})
	if len(grad) < e.g.numVars {
		panic(fmt.Sprintf("expr: gradient buffer %d too small for %d variables", len(grad), e.g.numVars))
	}
	e.forward(x, temp)
	for i := range e.adj {
		e.adj[i] = 0
	}
	for i := range grad {
		grad[i] = 0
	}
	e.adj[root] = 1
	for i := len(e.g.nodes) - 1; i >= 0; i-- {
		a := e.adj[i]
		if a == 0 {
			continue
		}
		n := &e.g.nodes[i]
		switch n.kind {
		case kConst:
			// no dependence
		case kMonomial:
			v := e.val[i]
			for k, vi := range n.varIdx {
				grad[vi] += a * v * n.varExp[k]
			}
		case kSum:
			for _, c := range n.children {
				e.adj[c] += a
			}
		case kScale:
			e.adj[n.children[0]] += a * n.coeff
		case kMul:
			l, r := n.children[0], n.children[1]
			e.adj[l] += a * e.val[r]
			e.adj[r] += a * e.val[l]
		case kSmoothMax:
			e.backpropSmoothMax(n, a, temp)
		}
	}
	return e.val[root]
}

func (e *Evaluator) backpropSmoothMax(n *node, a, temp float64) {
	if temp <= 0 {
		// Subgradient: all weight on the first argmax child.
		best, bi := math.Inf(-1), ID(-1)
		for _, c := range n.children {
			if e.val[c] > best {
				best, bi = e.val[c], c
			}
		}
		e.adj[bi] += a
		return
	}
	m := math.Inf(-1)
	for _, c := range n.children {
		if e.val[c] > m {
			m = e.val[c]
		}
	}
	s := 0.0
	for _, c := range n.children {
		s += math.Exp((e.val[c] - m) / temp)
	}
	for _, c := range n.children {
		w := math.Exp((e.val[c]-m)/temp) / s
		e.adj[c] += a * w
	}
}
