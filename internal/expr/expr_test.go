package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

func TestConstEval(t *testing.T) {
	var g Graph
	id := g.Const(3.25)
	ev := NewEvaluator(&g)
	if got := ev.Eval(id, nil, 0); got != 3.25 {
		t.Fatalf("Const eval = %v, want 3.25", got)
	}
}

func TestMonomialEval(t *testing.T) {
	var g Graph
	// 2 · p0^2 · p1^-1 at p0=3, p1=2 -> 2·9/2 = 9
	id := g.Monomial(2, map[int]float64{0: 2, 1: -1})
	ev := NewEvaluator(&g)
	x := []float64{math.Log(3), math.Log(2)}
	if got := ev.Eval(id, x, 0); !almostEqual(got, 9, 1e-12) {
		t.Fatalf("Monomial eval = %v, want 9", got)
	}
}

func TestVarEval(t *testing.T) {
	var g Graph
	id := g.Var(1)
	ev := NewEvaluator(&g)
	x := []float64{0, math.Log(7)}
	if got := ev.Eval(id, x, 0); !almostEqual(got, 7, 1e-12) {
		t.Fatalf("Var eval = %v, want 7", got)
	}
}

func TestSumScaleMul(t *testing.T) {
	var g Graph
	a := g.Const(2)
	b := g.Var(0)       // p0
	s := g.Sum(a, b)    // 2 + p0
	sc := g.Scale(3, s) // 6 + 3p0
	m := g.Mul(sc, b)   // (6 + 3p0)·p0
	ev := NewEvaluator(&g)
	x := []float64{math.Log(4)}
	if got := ev.Eval(m, x, 0); !almostEqual(got, (6+12)*4, 1e-12) {
		t.Fatalf("Mul eval = %v, want 72", got)
	}
}

func TestSumSingleChildCollapses(t *testing.T) {
	var g Graph
	a := g.Const(5)
	if got := g.Sum(a); got != a {
		t.Fatalf("Sum of one child should return the child id")
	}
	if got := g.Scale(1, a); got != a {
		t.Fatalf("Scale by 1 should return the child id")
	}
}

func TestHardMax(t *testing.T) {
	var g Graph
	a := g.Const(1)
	b := g.Const(5)
	c := g.Const(3)
	m := g.SmoothMax(a, b, c)
	ev := NewEvaluator(&g)
	if got := ev.Eval(m, nil, 0); got != 5 {
		t.Fatalf("hard max = %v, want 5", got)
	}
}

func TestSmoothMaxUpperBoundsMax(t *testing.T) {
	var g Graph
	a := g.Const(1)
	b := g.Const(5)
	m := g.SmoothMax(a, b)
	ev := NewEvaluator(&g)
	for _, temp := range []float64{1e-3, 0.1, 1, 10} {
		v := ev.Eval(m, nil, temp)
		if v < 5 {
			t.Fatalf("smooth max at temp %v = %v, must be >= hard max 5", temp, v)
		}
		// LSE overshoot is bounded by temp·log(k).
		if v > 5+temp*math.Log(2)+1e-12 {
			t.Fatalf("smooth max at temp %v = %v exceeds bound %v", temp, v, 5+temp*math.Log(2))
		}
	}
}

func TestSmoothMaxConvergesToMax(t *testing.T) {
	var g Graph
	a := g.Var(0)
	b := g.Const(2)
	m := g.SmoothMax(a, b)
	ev := NewEvaluator(&g)
	x := []float64{math.Log(3)}
	prev := math.Inf(1)
	for _, temp := range []float64{1, 0.1, 0.01, 0.001} {
		v := ev.Eval(m, x, temp)
		if v > prev+1e-15 {
			t.Fatalf("smooth max not monotone in temperature: %v then %v", prev, v)
		}
		prev = v
	}
	if !almostEqual(prev, 3, 1e-3) {
		t.Fatalf("smooth max at low temp = %v, want ~3", prev)
	}
}

// buildRandomGraph constructs a random expression DAG over nvars variables
// and returns its root. Structure mixes all node kinds.
func buildRandomGraph(rng *rand.Rand, g *Graph, nvars int) ID {
	ids := make([]ID, 0, 16)
	for v := 0; v < nvars; v++ {
		ids = append(ids, g.Var(v))
	}
	ids = append(ids, g.Const(0.5+rng.Float64()))
	for step := 0; step < 12; step++ {
		switch rng.Intn(5) {
		case 0:
			exps := map[int]float64{}
			for v := 0; v < nvars; v++ {
				if rng.Intn(2) == 0 {
					exps[v] = float64(rng.Intn(5)) - 2
				}
			}
			ids = append(ids, g.Monomial(0.1+rng.Float64(), exps))
		case 1:
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			ids = append(ids, g.Sum(a, b))
		case 2:
			ids = append(ids, g.Scale(rng.Float64()*3, ids[rng.Intn(len(ids))]))
		case 3:
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			ids = append(ids, g.Mul(a, b))
		case 4:
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			c := ids[rng.Intn(len(ids))]
			ids = append(ids, g.SmoothMax(a, b, c))
		}
	}
	return ids[len(ids)-1]
}

// TestGradientMatchesFiniteDifference checks reverse-mode gradients against
// central finite differences on random DAGs at positive temperature
// (where the objective is smooth).
func TestGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nvars = 4
	for trial := 0; trial < 200; trial++ {
		var g Graph
		root := buildRandomGraph(rng, &g, nvars)
		ev := NewEvaluator(&g)
		x := make([]float64, nvars)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		temp := 0.05 + rng.Float64()
		grad := make([]float64, nvars)
		ev.EvalGrad(root, x, temp, grad)
		const h = 1e-6
		for i := 0; i < nvars; i++ {
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[i] += h
			xm[i] -= h
			fd := (ev.Eval(root, xp, temp) - ev.Eval(root, xm, temp)) / (2 * h)
			if !almostEqual(grad[i], fd, 1e-4) {
				t.Fatalf("trial %d var %d: grad %v vs finite diff %v", trial, i, grad[i], fd)
			}
		}
	}
}

// TestMonomialConvexityInLogSpace samples the midpoint convexity inequality
// f((x+y)/2) <= (f(x)+f(y))/2 for sums of monomials — the property the
// whole allocation approach rests on.
func TestMonomialConvexityInLogSpace(t *testing.T) {
	type probe struct {
		E0, E1 int8 // exponents in [-128,127]; scaled down below
		X0, X1 uint8
		Y0, Y1 uint8
	}
	f := func(p probe) bool {
		var g Graph
		e0 := float64(p.E0) / 16
		e1 := float64(p.E1) / 16
		id := g.Sum(
			g.Monomial(1.5, map[int]float64{0: e0, 1: e1}),
			g.Monomial(0.5, map[int]float64{0: -e1, 1: e0}),
		)
		ev := NewEvaluator(&g)
		x := []float64{float64(p.X0)/64 - 2, float64(p.X1)/64 - 2}
		y := []float64{float64(p.Y0)/64 - 2, float64(p.Y1)/64 - 2}
		mid := []float64{(x[0] + y[0]) / 2, (x[1] + y[1]) / 2}
		fx := ev.Eval(id, x, 0)
		fy := ev.Eval(id, y, 0)
		fm := ev.Eval(id, mid, 0)
		return fm <= (fx+fy)/2+1e-9*(1+fx+fy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSmoothMaxConvexity checks midpoint convexity of SmoothMax over
// convex children in log space.
func TestSmoothMaxConvexity(t *testing.T) {
	type probe struct {
		X0, X1, Y0, Y1 uint8
		T              uint8
	}
	f := func(p probe) bool {
		var g Graph
		m := g.SmoothMax(
			g.Monomial(1, map[int]float64{0: 1}),
			g.Monomial(2, map[int]float64{0: -1, 1: 1}),
			g.Monomial(0.5, map[int]float64{1: -1}),
		)
		ev := NewEvaluator(&g)
		temp := 0.01 + float64(p.T)/64
		x := []float64{float64(p.X0)/64 - 2, float64(p.X1)/64 - 2}
		y := []float64{float64(p.Y0)/64 - 2, float64(p.Y1)/64 - 2}
		mid := []float64{(x[0] + y[0]) / 2, (x[1] + y[1]) / 2}
		fx := ev.Eval(m, x, temp)
		fy := ev.Eval(m, y, temp)
		fm := ev.Eval(m, mid, temp)
		return fm <= (fx+fy)/2+1e-9*(1+fx+fy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHardMaxSubgradient(t *testing.T) {
	var g Graph
	a := g.Var(0)   // p0
	b := g.Const(2) // constant branch
	m := g.SmoothMax(a, b)
	ev := NewEvaluator(&g)
	grad := make([]float64, 1)
	// p0 = 4 > 2: derivative flows through Var branch; d p0/d x0 = p0.
	ev.EvalGrad(m, []float64{math.Log(4)}, 0, grad)
	if !almostEqual(grad[0], 4, 1e-12) {
		t.Fatalf("subgradient = %v, want 4", grad[0])
	}
	// p0 = 1 < 2: max is the constant, zero gradient.
	ev.EvalGrad(m, []float64{0}, 0, grad)
	if grad[0] != 0 {
		t.Fatalf("subgradient = %v, want 0", grad[0])
	}
}

func TestEvaluatorReuseAfterGraphGrowth(t *testing.T) {
	var g Graph
	a := g.Var(0)
	ev := NewEvaluator(&g)
	if got := ev.Eval(a, []float64{0}, 0); got != 1 {
		t.Fatalf("eval = %v, want 1", got)
	}
	b := g.Sum(a, g.Const(1))
	if got := ev.Eval(b, []float64{0}, 0); got != 2 {
		t.Fatalf("eval after growth = %v, want 2", got)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"nan const", func() { var g Graph; g.Const(math.NaN()) }},
		{"negative monomial coeff", func() { var g Graph; g.Monomial(-1, nil) }},
		{"negative scale", func() { var g Graph; s := g.Const(1); g.Scale(-2, s) }},
		{"empty sum", func() { var g Graph; g.Sum() }},
		{"empty smoothmax", func() { var g Graph; g.SmoothMax() }},
		{"bad child id", func() { var g Graph; g.Scale(2, ID(7)) }},
		{"negative var index", func() { var g Graph; g.Monomial(1, map[int]float64{-1: 2}) }},
		{"short x", func() {
			var g Graph
			id := g.Var(3)
			NewEvaluator(&g).Eval(id, []float64{0}, 0)
		}},
		{"short grad", func() {
			var g Graph
			id := g.Var(1)
			NewEvaluator(&g).EvalGrad(id, []float64{0, 0}, 0, make([]float64, 1))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestZeroCoefficientMonomialIsConstantZero(t *testing.T) {
	var g Graph
	id := g.Monomial(0, map[int]float64{0: 3})
	ev := NewEvaluator(&g)
	grad := make([]float64, 1)
	v := ev.EvalGrad(id, []float64{1}, 0, grad)
	if v != 0 || grad[0] != 0 {
		t.Fatalf("zero monomial: value %v grad %v, want 0, 0", v, grad[0])
	}
}

func BenchmarkEvalGradMediumDAG(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var g Graph
	const nvars = 32
	roots := make([]ID, 0, 64)
	for i := 0; i < 64; i++ {
		roots = append(roots, buildRandomGraph(rng, &g, nvars))
	}
	root := g.SmoothMax(roots...)
	ev := NewEvaluator(&g)
	x := make([]float64, nvars)
	grad := make([]float64, nvars)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvalGrad(root, x, 0.1, grad)
	}
}

func TestTempSlackCertifiesSmoothingGap(t *testing.T) {
	// Structured DAG mirroring the allocator's shape: sums of monomials
	// feeding nested SmoothMax nodes through additions.
	var g Graph
	w0 := g.Sum(g.Monomial(2, map[int]float64{0: -1}), g.Const(0.5))
	w1 := g.Sum(g.Monomial(3, map[int]float64{1: -1}), g.Const(0.25))
	m1 := g.SmoothMax(w0, w1)
	y := g.Sum(m1, g.Monomial(1, map[int]float64{0: 1}))
	root := g.SmoothMax(y, g.Scale(0.5, g.Sum(w0, w1)))
	s := g.TempSlack(root)
	// Structural bound: ln 2 (inner max) + ln 2 (outer max).
	if want := 2 * math.Log(2); math.Abs(s-want) > 1e-12 {
		t.Fatalf("TempSlack = %v, want %v", s, want)
	}
	ev := NewEvaluator(&g)
	for _, temp := range []float64{1e-3, 0.1, 1, 10} {
		for _, x := range [][]float64{{0, 0}, {1, -1}, {-2, 3}, {0.5, 0.5}} {
			exact := ev.Eval(root, x, 0)
			smooth := ev.Eval(root, x, temp)
			if smooth < exact {
				t.Fatalf("temp %v x %v: smoothed %v below exact %v", temp, x, smooth, exact)
			}
			if smooth > exact+temp*s*(1+1e-12) {
				t.Fatalf("temp %v x %v: gap %v exceeds certified %v", temp, x, smooth-exact, temp*s)
			}
		}
	}
}

func TestTempSlackRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var g Graph
		const nvars = 4
		root := buildRandomGraph(rng, &g, nvars)
		s := g.TempSlack(root)
		if math.IsNaN(s) || s < 0 {
			t.Fatalf("trial %d: TempSlack = %v", trial, s)
		}
		if math.IsInf(s, 1) {
			continue // a Mul over smoothed operands: certified as unbounded
		}
		ev := NewEvaluator(&g)
		x := make([]float64, nvars)
		for _, temp := range []float64{0.01, 0.5, 2} {
			for probe := 0; probe < 8; probe++ {
				for i := range x {
					x[i] = rng.Float64()*2 - 1
				}
				exact := ev.Eval(root, x, 0)
				smooth := ev.Eval(root, x, temp)
				bound := exact + temp*s
				if smooth > bound+1e-9*math.Abs(bound) {
					t.Fatalf("trial %d temp %v: smoothed %v exceeds exact %v + %v", trial, temp, smooth, exact, temp*s)
				}
			}
		}
	}
}

// TestTempGapBoundCertifiesOverBox checks the box-aware smoothing-gap
// bound on random DAGs: at sampled points inside the box, the smoothed
// value never exceeds the exact value plus the certified gap.
func TestTempGapBoundCertifiesOverBox(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		var g Graph
		nvars := 1 + rng.Intn(3)
		root := buildRandomGraph(rng, &g, nvars)
		lower := make([]float64, nvars)
		upper := make([]float64, nvars)
		for v := range upper {
			upper[v] = 0.5 + 2*rng.Float64()
		}
		temp := math.Pow(10, -4*rng.Float64()) // (1e-4, 1]
		bound := g.TempGapBound(root, temp, lower, upper)
		if math.IsNaN(bound) {
			t.Fatalf("trial %d: NaN gap bound", trial)
		}
		if math.IsInf(bound, 1) {
			continue // sound but uninformative; nothing to check
		}
		ev := NewEvaluator(&g)
		x := make([]float64, nvars)
		for sample := 0; sample < 20; sample++ {
			for v := range x {
				x[v] = lower[v] + rng.Float64()*(upper[v]-lower[v])
			}
			exact := ev.Eval(root, x, 0)
			smoothed := ev.Eval(root, x, temp)
			if smoothed > exact+bound*(1+1e-12)+1e-12 {
				t.Fatalf("trial %d: smoothed %v > exact %v + bound %v", trial, smoothed, exact, bound)
			}
		}
	}
}

// TestTempGapBoundFiniteOnTransferPattern pins the pattern that matters:
// the cost model's Mul(SmoothMax(p_i, p_j), monomial) send/recv terms
// must get a finite box-aware gap even though TempSlack gives up on them.
func TestTempGapBoundFiniteOnTransferPattern(t *testing.T) {
	var g Graph
	mx := g.SmoothMax(g.Var(0), g.Var(1))
	term := g.Mul(mx, g.Monomial(1e-4, map[int]float64{0: -1}))
	root := g.SmoothMax(g.Sum(term, g.Const(0.5)), g.Monomial(0.3, map[int]float64{1: 1}))
	lower := []float64{0, 0}
	upper := []float64{math.Log(32), math.Log(32)}
	if s := g.TempSlack(root); !math.IsInf(s, 1) {
		t.Fatalf("TempSlack = %v, expected +Inf on the Mul pattern", s)
	}
	gap := g.TempGapBound(root, 1e-3, lower, upper)
	if math.IsInf(gap, 1) || math.IsNaN(gap) || gap <= 0 {
		t.Fatalf("TempGapBound = %v, want finite positive", gap)
	}
	// The bound must scale roughly linearly in temperature (the Mul terms
	// add a quadratic correction, but it is second order).
	gap10 := g.TempGapBound(root, 1e-2, lower, upper)
	if gap10 < 9*gap || gap10 > 12*gap {
		t.Fatalf("gap(1e-2)=%v not ~10x gap(1e-3)=%v", gap10, gap)
	}
	if g.TempGapBound(root, 0, lower, upper) != 0 {
		t.Fatal("zero temperature must have zero gap")
	}
}
