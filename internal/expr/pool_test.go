package expr

import (
	"math/rand"
	"sync"
	"testing"
)

// buildPoolTestGraph makes a DAG exercising every node kind.
func buildPoolTestGraph(rng *rand.Rand) (*Graph, ID) {
	var g Graph
	monos := make([]ID, 0, 6)
	for k := 0; k < 6; k++ {
		monos = append(monos, g.Monomial(0.2+2*rng.Float64(), map[int]float64{
			0: float64(rng.Intn(5)-2) / 2,
			1: float64(rng.Intn(5)-2) / 2,
			2: float64(rng.Intn(3) - 1),
		}))
	}
	s1 := g.Sum(monos[0], monos[1], monos[2])
	s2 := g.Scale(1.5, g.Sum(monos[3], monos[4]))
	m := g.Mul(s1, g.Sum(monos[5], g.Const(0.25)))
	root := g.SmoothMax(m, s2, s1)
	return &g, root
}

// TestPooledEvaluatorsMatchFresh is the pooling guard: two goroutines
// hammering pooled (recycled) evaluators must produce results
// bit-identical to fresh single-use evaluators at every point.
func TestPooledEvaluatorsMatchFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g, root := buildPoolTestGraph(rng)

	const points = 200
	xs := make([][]float64, points)
	for i := range xs {
		xs[i] = []float64{rng.Float64() * 3, rng.Float64() * 3, rng.Float64() * 3}
	}
	temps := []float64{0, 1e-3, 0.1, 1}

	// Reference: fresh evaluator per point.
	wantVal := make([][]float64, len(temps))
	wantGrad := make([][][]float64, len(temps))
	for ti, temp := range temps {
		wantVal[ti] = make([]float64, points)
		wantGrad[ti] = make([][]float64, points)
		for i, x := range xs {
			fresh := NewEvaluator(g)
			grad := make([]float64, g.NumVars())
			wantVal[ti][i] = fresh.EvalGrad(root, x, temp, grad)
			wantGrad[ti][i] = grad
			if v := NewEvaluator(g).Eval(root, x, temp); v != wantVal[ti][i] {
				t.Fatalf("Eval and EvalGrad values disagree at point %d temp %v", i, temp)
			}
		}
	}

	pool := NewEvaluatorPool(g)
	var wg sync.WaitGroup
	errs := make(chan string, 4)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			grad := make([]float64, g.NumVars())
			// Interleave gets and puts so recycled state crosses
			// goroutines mid-run.
			for rep := 0; rep < 3; rep++ {
				for ti, temp := range temps {
					for i, x := range xs {
						ev := pool.Get()
						got := ev.EvalGrad(root, x, temp, grad)
						if got != wantVal[ti][i] {
							errs <- "pooled value diverged from fresh evaluator"
							pool.Put(ev)
							return
						}
						for k := range grad {
							if grad[k] != wantGrad[ti][i][k] {
								errs <- "pooled gradient diverged from fresh evaluator"
								pool.Put(ev)
								return
							}
						}
						pool.Put(ev)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

func TestEvaluatorPoolRejectsForeignEvaluator(t *testing.T) {
	g1, _ := buildPoolTestGraph(rand.New(rand.NewSource(1)))
	g2, _ := buildPoolTestGraph(rand.New(rand.NewSource(2)))
	pool := NewEvaluatorPool(g1)
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a foreign evaluator must panic")
		}
	}()
	pool.Put(NewEvaluator(g2))
}
