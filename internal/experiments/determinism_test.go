package experiments

import (
	"fmt"
	"strings"
	"testing"

	"paradigm/internal/par"
)

// TestAllDeterministicAcrossWorkerWidths is the suite-level determinism
// guarantee: the full experiment battery rendered with PARADIGM_WORKERS=1
// must be byte-identical to a run at a wide pool width. Wall-clock timing
// columns (the only legitimately nondeterministic bytes) are normalized
// via PARADIGM_DETERMINISTIC.
func TestAllDeterministicAcrossWorkerWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("double full-suite run; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("double full-suite run; too slow under the race detector")
	}
	env := testEnv(t)
	t.Setenv(EnvDeterministic, "1")

	t.Setenv(par.EnvWorkers, "1")
	serial, err := All(env)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	t.Setenv(par.EnvWorkers, "8")
	wide, err := All(env)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if serial != wide {
		t.Fatalf("serial and parallel outputs differ:\n%s", firstDiff(serial, wide))
	}
}

// TestFullReportDeterministicAcrossWorkerWidths checks the JSON-facing
// report path the same way on its markdown rendering (cheaper than All;
// runs even under the race detector to exercise the concurrent drivers).
func TestFullReportDeterministicAcrossWorkerWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("double report run; skipped in -short mode")
	}
	env := testEnv(t)
	t.Setenv(EnvDeterministic, "1")

	t.Setenv(par.EnvWorkers, "1")
	r1, err := FullReport(env)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	t.Setenv(par.EnvWorkers, "8")
	r2, err := FullReport(env)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if a, b := r1.Markdown(), r2.Markdown(); a != b {
		t.Fatalf("serial and parallel reports differ:\n%s", firstDiff(a, b))
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  serial:   %s\n  parallel: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("outputs differ in length: %d vs %d lines", len(la), len(lb))
}
