package experiments

import (
	"context"
	"fmt"

	"paradigm/internal/par"
	"paradigm/internal/programs"
	"paradigm/internal/tables"
)

// RecursionRow is one Strassen decomposition depth.
type RecursionRow struct {
	Depth      int
	Nodes      int
	Multiplies int
	Phi        float64
	Predicted  float64
	Actual     float64
}

// RecursionResult carries experiment E14: how deep to unfold Strassen's
// recursion at the MDG level before redistribution overhead eats the
// extra functional parallelism.
type RecursionResult struct {
	Procs        int
	Size         int
	Rows         []RecursionRow
	WorstNumDiff float64
}

// StrassenRecursion runs E14 at the paper's 128×128 size on 64
// processors for depths 0, 1 and 2.
func StrassenRecursion(env *Env) (*RecursionResult, error) {
	const (
		procs = 64
		size  = 128
	)
	out := &RecursionResult{Procs: procs, Size: size}
	const depths = 3
	type rowDiff struct {
		row  RecursionRow
		diff float64
	}
	rds, err := par.Map(context.Background(), depths, func(_ context.Context, depth int) (rowDiff, error) {
		p, err := programs.StrassenRecursive(size, depth, env.Cal)
		if err != nil {
			return rowDiff{}, err
		}
		muls := 0
		for _, spec := range p.Specs {
			if spec.Kernel.Op.String() == "mul" {
				muls++
			}
		}
		run, err := RunPipeline(env, p, procs, MPMD)
		if err != nil {
			return rowDiff{}, fmt.Errorf("depth %d: %w", depth, err)
		}
		worst, err := VerifyNumerics(p, run.Sim)
		if err != nil {
			return rowDiff{}, err
		}
		return rowDiff{
			row: RecursionRow{
				Depth:      depth,
				Nodes:      p.G.NumNodes(),
				Multiplies: muls,
				Phi:        run.Alloc.Phi,
				Predicted:  run.Predicted,
				Actual:     run.Actual,
			},
			diff: worst,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rd := range rds {
		if rd.diff > out.WorstNumDiff {
			out.WorstNumDiff = rd.diff
		}
		out.Rows = append(out.Rows, rd.row)
	}
	return out, nil
}

// String renders E14.
func (r *RecursionResult) String() string {
	t := tables.New(
		fmt.Sprintf("E14 recursive Strassen depth sweep: %dx%d on p = %d (all runs verified)",
			r.Size, r.Size, r.Procs),
		"depth", "MDG nodes", "multiplies", "Phi (s)", "T_psa (s)", "actual (s)")
	for _, row := range r.Rows {
		t.Row(row.Depth, row.Nodes, row.Multiplies,
			fmt.Sprintf("%.4f", row.Phi),
			fmt.Sprintf("%.4f", row.Predicted),
			fmt.Sprintf("%.4f", row.Actual))
	}
	return t.String()
}
