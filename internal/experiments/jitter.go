package experiments

import (
	"fmt"

	"paradigm/internal/programs"
	"paradigm/internal/tables"
)

// JitterRow is one noise-level outcome.
type JitterRow struct {
	JitterPct       float64
	Actual          float64
	RatioPredActual float64
	NumDiff         float64
}

// JitterResult carries the ablation A7 sweep.
type JitterResult struct {
	Program   string
	Procs     int
	Predicted float64
	Rows      []JitterRow
}

// AblationJitter runs A7: the same MPMD program and schedule executed on
// machines with increasing execution-time noise. The schedule is static,
// so jitter cannot deadlock it or corrupt data — only stretch the actual
// makespan; this quantifies how gracefully prediction accuracy degrades
// on a noisy machine.
func AblationJitter(env *Env) (*JitterResult, error) {
	p, err := programs.ComplexMatMul(64, env.Cal)
	if err != nil {
		return nil, err
	}
	const procs = 32
	out := &JitterResult{Program: "Complex Matrix Multiply (64x64)", Procs: procs}
	for _, frac := range []float64{0, 0.05, 0.15, 0.30} {
		noisy := env.Machine
		noisy.JitterFrac = frac
		noisy.JitterSeed = 0xC0FFEE
		jEnv := &Env{Machine: noisy, Cal: env.Cal}
		run, err := RunPipeline(jEnv, p, procs, MPMD)
		if err != nil {
			return nil, fmt.Errorf("jitter %.0f%%: %w", frac*100, err)
		}
		numDiff, err := VerifyNumerics(p, run.Sim)
		if err != nil {
			return nil, err
		}
		if out.Predicted == 0 {
			out.Predicted = run.Predicted
		}
		out.Rows = append(out.Rows, JitterRow{
			JitterPct:       frac * 100,
			Actual:          run.Actual,
			RatioPredActual: run.Predicted / run.Actual,
			NumDiff:         numDiff,
		})
	}
	return out, nil
}

// String renders ablation A7.
func (r *JitterResult) String() string {
	t := tables.New(
		fmt.Sprintf("Ablation A7: execution jitter robustness — %s, p = %d, predicted %.4f s",
			r.Program, r.Procs, r.Predicted),
		"jitter (%)", "actual (s)", "pred/actual", "numeric deviation")
	for _, row := range r.Rows {
		t.Row(fmt.Sprintf("%.0f", row.JitterPct),
			fmt.Sprintf("%.4f", row.Actual),
			fmt.Sprintf("%.3f", row.RatioPredActual),
			fmt.Sprintf("%.2g", row.NumDiff))
	}
	return t.String()
}
