package experiments

import (
	"context"
	"fmt"

	"paradigm/internal/par"
	"paradigm/internal/programs"
	"paradigm/internal/tables"
)

// JitterRow is one noise-level outcome.
type JitterRow struct {
	JitterPct       float64
	Actual          float64
	RatioPredActual float64
	NumDiff         float64
}

// JitterResult carries the ablation A7 sweep.
type JitterResult struct {
	Program   string
	Procs     int
	Predicted float64
	Rows      []JitterRow
}

// AblationJitter runs A7: the same MPMD program and schedule executed on
// machines with increasing execution-time noise. The schedule is static,
// so jitter cannot deadlock it or corrupt data — only stretch the actual
// makespan; this quantifies how gracefully prediction accuracy degrades
// on a noisy machine.
func AblationJitter(env *Env) (*JitterResult, error) {
	p, err := programs.ComplexMatMul(64, env.Cal)
	if err != nil {
		return nil, err
	}
	const procs = 32
	out := &JitterResult{Program: "Complex Matrix Multiply (64x64)", Procs: procs}
	fracs := []float64{0, 0.05, 0.15, 0.30}
	type rowPred struct {
		row       JitterRow
		predicted float64
	}
	rps, err := par.Map(context.Background(), len(fracs), func(_ context.Context, i int) (rowPred, error) {
		frac := fracs[i]
		noisy := env.Machine
		noisy.JitterFrac = frac
		noisy.JitterSeed = 0xC0FFEE
		jEnv := &Env{Machine: noisy, Cal: env.Cal}
		run, err := RunPipeline(jEnv, p, procs, MPMD)
		if err != nil {
			return rowPred{}, fmt.Errorf("jitter %.0f%%: %w", frac*100, err)
		}
		numDiff, err := VerifyNumerics(p, run.Sim)
		if err != nil {
			return rowPred{}, err
		}
		return rowPred{
			row: JitterRow{
				JitterPct:       frac * 100,
				Actual:          run.Actual,
				RatioPredActual: run.Predicted / run.Actual,
				NumDiff:         numDiff,
			},
			predicted: run.Predicted,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rp := range rps {
		if out.Predicted == 0 {
			out.Predicted = rp.predicted
		}
		out.Rows = append(out.Rows, rp.row)
	}
	return out, nil
}

// String renders ablation A7.
func (r *JitterResult) String() string {
	t := tables.New(
		fmt.Sprintf("Ablation A7: execution jitter robustness — %s, p = %d, predicted %.4f s",
			r.Program, r.Procs, r.Predicted),
		"jitter (%)", "actual (s)", "pred/actual", "numeric deviation")
	for _, row := range r.Rows {
		t.Row(fmt.Sprintf("%.0f", row.JitterPct),
			fmt.Sprintf("%.4f", row.Actual),
			fmt.Sprintf("%.3f", row.RatioPredActual),
			fmt.Sprintf("%.2g", row.NumDiff))
	}
	return t.String()
}
