package experiments

import (
	"context"
	"fmt"

	"paradigm/internal/kernels"
	"paradigm/internal/par"
	"paradigm/internal/programs"
	"paradigm/internal/tables"
)

// GridDistRow is one system-size comparison of the two layouts.
type GridDistRow struct {
	Procs                  int
	Actual1D, ActualGrid   float64
	Speedup1D, SpeedupGrid float64
}

// GridDistResult carries experiment E12 — the paper's general-distribution
// extension evaluated end to end.
type GridDistResult struct {
	Alpha1DPct, AlphaGridPct float64 // fitted multiply serial fractions
	Rows                     []GridDistRow
	WorstNumDiff             float64
}

// GridDistribution runs E12: calibrate the grid-layout multiply (its
// Amdahl α should drop versus the 1D layout thanks to panel gathers), then
// run the Complex Matrix Multiply with grid-distributed multiply nodes
// against the original row-distributed version across system sizes.
func GridDistribution(env *Env) (*GridDistResult, error) {
	lin, err := env.Cal.LoopFit("Matrix Multiply (128x128)",
		kernels.Kernel{Op: kernels.OpMul, M: 128, N: 128, K: 128})
	if err != nil {
		return nil, err
	}
	grid, err := env.Cal.LoopFit("Matrix Multiply grid (128x128)",
		kernels.Kernel{Op: kernels.OpMul, M: 128, N: 128, K: 128, Grid: true})
	if err != nil {
		return nil, err
	}
	out := &GridDistResult{
		Alpha1DPct:   lin.Params.Alpha * 100,
		AlphaGridPct: grid.Params.Alpha * 100,
	}

	p1d, err := programs.ComplexMatMulLayout(128, env.Cal, false)
	if err != nil {
		return nil, err
	}
	pGrid, err := programs.ComplexMatMulLayout(128, env.Cal, true)
	if err != nil {
		return nil, err
	}
	serial, err := RunPipeline(env, p1d, 1, SPMD)
	if err != nil {
		return nil, err
	}
	sizes := SystemSizes()
	type rowDiff struct {
		row  GridDistRow
		diff float64
	}
	rds, err := par.Map(context.Background(), len(sizes), func(_ context.Context, i int) (rowDiff, error) {
		procs := sizes[i]
		r1, err := RunPipeline(env, p1d, procs, MPMD)
		if err != nil {
			return rowDiff{}, fmt.Errorf("1D p=%d: %w", procs, err)
		}
		rg, err := RunPipeline(env, pGrid, procs, MPMD)
		if err != nil {
			return rowDiff{}, fmt.Errorf("grid p=%d: %w", procs, err)
		}
		worst, err := VerifyNumerics(pGrid, rg.Sim)
		if err != nil {
			return rowDiff{}, err
		}
		return rowDiff{
			row: GridDistRow{
				Procs:       procs,
				Actual1D:    r1.Actual,
				ActualGrid:  rg.Actual,
				Speedup1D:   serial.Actual / r1.Actual,
				SpeedupGrid: serial.Actual / rg.Actual,
			},
			diff: worst,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rd := range rds {
		if rd.diff > out.WorstNumDiff {
			out.WorstNumDiff = rd.diff
		}
		out.Rows = append(out.Rows, rd.row)
	}
	return out, nil
}

// String renders E12.
func (r *GridDistResult) String() string {
	t := tables.New(
		fmt.Sprintf("E12 general 2D distributions: grid multiply alpha %.1f%% vs 1D %.1f%% (CMM 128x128, MPMD)",
			r.AlphaGridPct, r.Alpha1DPct),
		"p", "1D actual (s)", "grid actual (s)", "1D speedup", "grid speedup")
	for _, row := range r.Rows {
		t.Row(row.Procs,
			fmt.Sprintf("%.4f", row.Actual1D),
			fmt.Sprintf("%.4f", row.ActualGrid),
			fmt.Sprintf("%.2f", row.Speedup1D),
			fmt.Sprintf("%.2f", row.SpeedupGrid))
	}
	return t.String()
}
