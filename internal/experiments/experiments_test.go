package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
)

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { envVal, envErr = NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestExample3MatchesPaperNumbers(t *testing.T) {
	r, err := Example3Node(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.NaiveTime-15.6) > 0.05 {
		t.Fatalf("naive = %v, want 15.6", r.NaiveTime)
	}
	if math.Abs(r.MixedTime-14.3) > 0.1 {
		t.Fatalf("mixed = %v, want 14.3", r.MixedTime)
	}
	if r.MixedTime >= r.NaiveTime {
		t.Fatal("mixed must beat naive")
	}
	if !strings.Contains(r.String(), "14.3") && !strings.Contains(r.String(), "mixed") {
		t.Fatal("render missing content")
	}
}

func TestTable1PaperShape(t *testing.T) {
	r, err := Table1(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fits) != 2 {
		t.Fatalf("rows = %d", len(r.Fits))
	}
	add, mul := r.Fits[0], r.Fits[1]
	if !strings.Contains(add.Name, "Addition") || !strings.Contains(mul.Name, "Multiply") {
		t.Fatalf("row order: %q, %q", add.Name, mul.Name)
	}
	// Paper: α_add = 6.7% < α_mul = 12.1%; τ_add ≈ 3.7 ms, τ_mul ≈ 298 ms.
	if add.Params.Alpha >= mul.Params.Alpha {
		t.Fatalf("α ordering violated: %v vs %v", add.Params.Alpha, mul.Params.Alpha)
	}
	if mul.Params.Tau < 0.15 || mul.Params.Tau > 0.45 {
		t.Fatalf("τ_mul = %v", mul.Params.Tau)
	}
	if add.Params.Tau < 1.5e-3 || add.Params.Tau > 8e-3 {
		t.Fatalf("τ_add = %v", add.Params.Tau)
	}
	if add.R2 < 0.95 || mul.R2 < 0.95 {
		t.Fatalf("R² too low: %v / %v", add.R2, mul.R2)
	}
	if !strings.Contains(r.String(), "Table 1") {
		t.Fatal("render missing title")
	}
}

func TestFig3PredictionsTrackMeasurements(t *testing.T) {
	r, err := Fig3(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range r.Fits {
		if len(f.Samples) < 5 {
			t.Fatalf("%s: only %d samples", f.Name, len(f.Samples))
		}
		for _, s := range f.Samples {
			if rel := math.Abs(s.Predicted-s.Measured) / s.Measured; rel > 0.35 {
				t.Fatalf("%s at p=%d: rel error %v", f.Name, s.Procs, rel)
			}
		}
	}
	if !strings.Contains(r.String(), "Figure 3") {
		t.Fatal("render missing title")
	}
}

func TestTable2PaperMagnitudes(t *testing.T) {
	r, err := Table2(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	p := r.Fit.Params
	// Paper magnitudes: t_ss 778 µs, t_ps 487 ns, t_sr 466 µs, t_pr 426 ns.
	check := func(name string, got, paper float64) {
		if got < paper/3 || got > paper*3 {
			t.Fatalf("%s = %v, outside 3x of paper's %v", name, got, paper)
		}
	}
	check("t_ss", p.Tss, 777.56e-6)
	check("t_ps", p.Tps, 486.98e-9)
	check("t_sr", p.Tsr, 465.58e-6)
	check("t_pr", p.Tpr, 426.25e-9)
	if p.Tn != 0 {
		t.Fatalf("t_n = %v, want 0", p.Tn)
	}
	if r.Fit.SendR2 < 0.97 || r.Fit.RecvR2 < 0.97 {
		t.Fatalf("R² = %v/%v", r.Fit.SendR2, r.Fit.RecvR2)
	}
}

func TestFig5SamplesCoverBothKinds(t *testing.T) {
	r, err := Fig5(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, s := range r.Fit.Samples {
		kinds[s.Kind.String()] = true
	}
	if !kinds["1D"] || !kinds["2D"] {
		t.Fatalf("kinds covered: %v", kinds)
	}
	if !strings.Contains(r.String(), "Figure 5") {
		t.Fatal("render missing title")
	}
}

func TestFig6Structure(t *testing.T) {
	r, err := Fig6(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.CMMNodes != 12 { // 10 computation + START + STOP
		t.Fatalf("CMM nodes = %d", r.CMMNodes)
	}
	if r.StrassenNodes != 35 { // 33 computation + START + STOP
		t.Fatalf("Strassen nodes = %d", r.StrassenNodes)
	}
	if !strings.Contains(r.CMMDOT, "digraph") || !strings.Contains(r.StrassenDOT, "M7") {
		t.Fatal("DOT output incomplete")
	}
}

func TestFig7MixedSchedule(t *testing.T) {
	r, err := Fig7(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan <= 0 {
		t.Fatal("empty schedule")
	}
	// The 4 multiplies should run concurrently (the Figure 7 shape):
	// at least two multiplies share a start time.
	if !strings.Contains(r.SchedTab, "mul_ArBr") {
		t.Fatalf("schedule table missing nodes:\n%s", r.SchedTab)
	}
}

func TestFig8MPMDBeatsSPMD(t *testing.T) {
	r, err := Fig8(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	gap := map[string][]float64{}
	for _, row := range r.Rows {
		if row.MPMDSpeedup < row.SPMDSpeedup {
			t.Fatalf("%s p=%d: MPMD %v below SPMD %v",
				row.Program, row.Procs, row.MPMDSpeedup, row.SPMDSpeedup)
		}
		gap[row.Program] = append(gap[row.Program], row.MPMDSpeedup/row.SPMDSpeedup)
	}
	// Paper: the advantage grows with system size.
	for prog, gs := range gap {
		if gs[len(gs)-1] <= gs[0] {
			t.Fatalf("%s: MPMD advantage should grow with p: %v", prog, gs)
		}
	}
}

func TestFig9PredictionsClose(t *testing.T) {
	r, err := Fig9(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Normalized < 0.75 || row.Normalized > 1.30 {
			t.Fatalf("%s p=%d: predicted/actual = %v, model too loose",
				row.Program, row.Procs, row.Normalized)
		}
	}
}

func TestTable3DeviationsSmall(t *testing.T) {
	r, err := Table3(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Paper range: -2.6% to +15.6%. Allow a wider but same-regime
		// window: the PSA must stay near the convex optimum, never at
		// the Theorem-3 worst case (tens of times Φ).
		if row.PercentChange < -15 || row.PercentChange > 35 {
			t.Fatalf("%s p=%d: deviation %v%%", row.Program, row.Procs, row.PercentChange)
		}
	}
	// CMM (simple MDG) deviates less than Strassen (deep MDG) — the
	// paper's pattern.
	var cmmMax, strMax float64
	for _, row := range r.Rows {
		d := math.Abs(row.PercentChange)
		if strings.Contains(row.Program, "Complex") {
			cmmMax = math.Max(cmmMax, d)
		} else {
			strMax = math.Max(strMax, d)
		}
	}
	if cmmMax >= strMax {
		t.Fatalf("deviation pattern inverted: CMM %v vs Strassen %v", cmmMax, strMax)
	}
}

func TestAblationRoundingWithinBounds(t *testing.T) {
	r, err := AblationRounding(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if !row.RoundedWithinBound {
			t.Fatalf("%s p=%d: T_psa %v exceeds Theorem 3 bound %v",
				row.Program, row.Procs, row.TpsaRounded, row.Theorem3Bound)
		}
		if row.TpsaRounded < row.Phi*(1-1e-9) && row.TpsaRounded < row.Phi*0.5 {
			t.Fatalf("rounded schedule impossibly fast: %v vs Phi %v", row.TpsaRounded, row.Phi)
		}
	}
}

func TestAblationPBSweepShape(t *testing.T) {
	r, err := AblationPBSweep(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	var chosen float64
	sawChoice := false
	for _, row := range r.Rows {
		if row.Tpsa < best {
			best = row.Tpsa
		}
		if row.IsCorollary {
			chosen = row.Tpsa
			sawChoice = true
		}
	}
	if !sawChoice {
		t.Fatal("Corollary 1 choice not in sweep")
	}
	// The theory-guided choice should be near the empirical best.
	if chosen > best*1.25 {
		t.Fatalf("Corollary choice %v far from best %v", chosen, best)
	}
}

func TestAblationNoTransferCostsNeverHelps(t *testing.T) {
	r, err := AblationNoTransferCosts(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.PenaltyPct < -1 {
			t.Fatalf("%s p=%d: transfer-blind allocation beat aware by %v%%",
				row.Program, row.Procs, -row.PenaltyPct)
		}
	}
}

func TestAblationSchedulerRuns(t *testing.T) {
	r, err := AblationScheduler(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.PSATime <= 0 || row.FIFOTime <= 0 || row.HLFTime <= 0 {
			t.Fatalf("times: %+v", row)
		}
		// All three policies schedule the same allocation: makespans stay
		// within the same regime (no policy catastrophically worse).
		worst := math.Max(row.PSATime, math.Max(row.FIFOTime, row.HLFTime))
		best := math.Min(row.PSATime, math.Min(row.FIFOTime, row.HLFTime))
		if worst > 3*best {
			t.Fatalf("%s: policy spread too wide: %v", row.Workload, row)
		}
	}
	if !strings.Contains(r.String(), "Ablation A4") {
		t.Fatal("render missing title")
	}
}

func TestRunPipelineRejectsUnknownKind(t *testing.T) {
	env := testEnv(t)
	p, err := Fig6(env)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	if _, err := RunPipeline(env, nil, 4, RunKind(9)); err == nil {
		t.Fatal("want unknown-kind error")
	}
}

func TestAblationHeuristicConvexWins(t *testing.T) {
	r, err := AblationHeuristic(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Global optimality: the heuristic can tie but never beat the
		// convex solution (beyond solver tolerance).
		if row.GapPct < -0.5 {
			t.Fatalf("%s p=%d: heuristic beat convex by %v%%", row.Program, row.Procs, -row.GapPct)
		}
	}
}

func TestAblationStaticEstimate(t *testing.T) {
	r, err := AblationStaticEstimate(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.StaticTau <= 0 {
			t.Fatalf("%s: static tau %v", row.Loop, row.StaticTau)
		}
		// The static two-point estimate must stay in the same regime as
		// the trained fit (taus within 20%, alphas within a factor of 3).
		if math.Abs(row.StaticTau-row.TrainedTau) > 0.2*row.TrainedTau {
			t.Fatalf("%s: tau static %v vs trained %v", row.Loop, row.StaticTau, row.TrainedTau)
		}
	}
}

func TestPortabilityParagon(t *testing.T) {
	r, err := Portability(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	// The Paragon has a real wire: the calibration must recover t_n > 0
	// close to the ground truth (the CM-5 path pins it at 0).
	if r.FittedTnNs <= 0 {
		t.Fatal("fitted t_n must be positive on the Paragon")
	}
	if math.Abs(r.FittedTnNs-r.TruthTnNs) > 0.3*r.TruthTnNs {
		t.Fatalf("fitted t_n %v ns vs truth %v ns", r.FittedTnNs, r.TruthTnNs)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.DevPct < -15 || row.DevPct > 45 {
			t.Fatalf("%s p=%d: deviation %v%%", row.Program, row.Procs, row.DevPct)
		}
		if row.RatioPredActual < 0.6 || row.RatioPredActual > 1.7 {
			t.Fatalf("%s p=%d: pred/actual %v", row.Program, row.Procs, row.RatioPredActual)
		}
	}
	if r.WorstNumDiff > 1e-6 {
		t.Fatalf("numerical deviation %v on Paragon runs", r.WorstNumDiff)
	}
}

func TestAblationJitter(t *testing.T) {
	r, err := AblationJitter(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0].JitterPct != 0 {
		t.Fatal("first row must be the noiseless baseline")
	}
	base := r.Rows[0].Actual
	for i, row := range r.Rows {
		// Jitter only stretches execution: actual never below baseline,
		// data never corrupted.
		if row.Actual < base-1e-12 {
			t.Fatalf("row %d: jittered run faster than noiseless baseline", i)
		}
		if row.NumDiff > 1e-9 {
			t.Fatalf("row %d: jitter corrupted data (%v)", i, row.NumDiff)
		}
	}
	// At 30% noise the stretch stays bounded by the noise magnitude.
	worst := r.Rows[len(r.Rows)-1].Actual
	if worst > base*1.5 {
		t.Fatalf("30%% jitter stretched makespan by %vx", worst/base)
	}
}

func TestGridDistributionExtension(t *testing.T) {
	r, err := GridDistribution(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	// The SUMMA-style grid multiply must fit a lower serial fraction.
	if r.AlphaGridPct >= r.Alpha1DPct {
		t.Fatalf("grid alpha %v%% should be below 1D alpha %v%%", r.AlphaGridPct, r.Alpha1DPct)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// At the largest system the grid layout must win; numerics must hold.
	last := r.Rows[len(r.Rows)-1]
	if last.ActualGrid >= last.Actual1D {
		t.Fatalf("at p=%d grid (%v) should beat 1D (%v)", last.Procs, last.ActualGrid, last.Actual1D)
	}
	if r.WorstNumDiff > 1e-9 {
		t.Fatalf("grid runs corrupted data: %v", r.WorstNumDiff)
	}
}

func TestScalability(t *testing.T) {
	r, err := Scalability(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	prevNodes := 0
	for _, row := range r.Rows {
		if row.Nodes <= prevNodes {
			t.Fatalf("sizes must grow: %d after %d", row.Nodes, prevNodes)
		}
		prevNodes = row.Nodes
		// Global optimality at every size.
		if row.PhiHeuristic < row.PhiConvex*(1-5e-3) {
			t.Fatalf("%d nodes: heuristic %v beat convex %v", row.Nodes, row.PhiHeuristic, row.PhiConvex)
		}
		// The schedule exists and is sane.
		if row.Tpsa < row.PhiConvex*(1-1e-9) {
			t.Fatalf("%d nodes: T_psa %v below Phi %v", row.Nodes, row.Tpsa, row.PhiConvex)
		}
	}
	// Largest instance: 100+ nodes must still solve.
	if last := r.Rows[len(r.Rows)-1]; last.Nodes < 100 {
		t.Fatalf("largest instance only %d nodes", last.Nodes)
	}
}

func TestStrassenRecursion(t *testing.T) {
	r, err := StrassenRecursion(testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	wantMuls := []int{1, 7, 49}
	for i, row := range r.Rows {
		if row.Depth != i || row.Multiplies != wantMuls[i] {
			t.Fatalf("row %d: depth %d with %d multiplies", i, row.Depth, row.Multiplies)
		}
		if row.Actual <= 0 || row.Phi <= 0 {
			t.Fatalf("row %d: empty results %+v", i, row)
		}
	}
	if r.WorstNumDiff > 1e-9 {
		t.Fatalf("recursion corrupted data: %v", r.WorstNumDiff)
	}
	// Depth 1 (the paper's program) must beat the single monolithic
	// multiply at p=64 — the functional-parallelism payoff.
	if r.Rows[1].Actual >= r.Rows[0].Actual {
		t.Fatalf("depth 1 (%v) should beat depth 0 (%v)", r.Rows[1].Actual, r.Rows[0].Actual)
	}
}
