package experiments

import (
	"context"
	"os"
	"time"

	"paradigm/internal/par"
	"paradigm/internal/prog"
)

// The experiment drivers fan their independent units — whole artifacts in
// All/FullReport, (program, procs) cells inside each table or figure —
// across the shared worker pool (internal/par). Results are always
// assembled by task index, so the rendered tables are byte-identical at
// any PARADIGM_WORKERS width; the determinism test in
// determinism_test.go holds the suite to that.

// EnvDeterministic, when set to a non-empty value, makes the renderers
// print a fixed placeholder for wall-clock timing columns (which are the
// only nondeterministic bytes in the suite's output). Determinism tests
// set it so serial and parallel runs can be compared byte for byte.
const EnvDeterministic = "PARADIGM_DETERMINISTIC"

// fmtDuration renders a timing column, rounded to unit, honouring
// EnvDeterministic.
func fmtDuration(d time.Duration, unit time.Duration) string {
	if os.Getenv(EnvDeterministic) != "" {
		return "-"
	}
	return d.Round(unit).String()
}

// cell is one (program, procs) coordinate of the paper's evaluation
// sweeps, in canonical paper order.
type cell struct {
	Name  string
	Prog  *prog.Program
	Procs int
}

// cells flattens ProgramNames × SystemSizes over the given programs.
func cells(progs map[string]*prog.Program) []cell {
	out := make([]cell, 0, len(ProgramNames())*len(SystemSizes()))
	for _, name := range ProgramNames() {
		for _, procs := range SystemSizes() {
			out = append(out, cell{Name: name, Prog: progs[name], Procs: procs})
		}
	}
	return out
}

// mapCells runs fn over every (program, procs) cell on the worker pool
// and returns the per-cell results in paper order.
func mapCells[T any](progs map[string]*prog.Program, fn func(c cell) (T, error)) ([]T, error) {
	cs := cells(progs)
	return par.Map(context.Background(), len(cs), func(_ context.Context, i int) (T, error) {
		return fn(cs[i])
	})
}
