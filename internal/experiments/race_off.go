//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in; the
// determinism test uses it to skip its double full-suite run, which is
// an order of magnitude slower under instrumentation.
const raceEnabled = false
