package experiments

import (
	"fmt"
	"math"

	"paradigm/internal/alloc"
	"paradigm/internal/kernels"
	"paradigm/internal/tables"
	"paradigm/internal/trainsets"
)

// AblationHeuristicRow compares the convex allocator with the greedy
// doubling heuristic of the pre-convex prior work.
type AblationHeuristicRow struct {
	Program      string
	Procs        int
	PhiConvex    float64
	PhiHeuristic float64
	GapPct       float64 // (heuristic - convex) / convex
}

// AblationHeuristicResult carries all rows (ablation A5).
type AblationHeuristicResult struct{ Rows []AblationHeuristicRow }

// AblationHeuristic runs A5: the convex program against the greedy
// power-of-two doubling heuristic on both test programs.
func AblationHeuristic(env *Env) (*AblationHeuristicResult, error) {
	progs, err := testPrograms(env)
	if err != nil {
		return nil, err
	}
	model := env.Cal.Model()
	rows, err := mapCells(progs, func(c cell) (AblationHeuristicRow, error) {
		conv, err := alloc.Solve(c.Prog.G, model, c.Procs, alloc.Options{})
		if err != nil {
			return AblationHeuristicRow{}, err
		}
		heur, err := alloc.SolveHeuristic(c.Prog.G, model, c.Procs)
		if err != nil {
			return AblationHeuristicRow{}, err
		}
		return AblationHeuristicRow{
			Program:      c.Name,
			Procs:        c.Procs,
			PhiConvex:    conv.Phi,
			PhiHeuristic: heur.Phi,
			GapPct:       100 * (heur.Phi - conv.Phi) / conv.Phi,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationHeuristicResult{Rows: rows}, nil
}

// String renders ablation A5.
func (r *AblationHeuristicResult) String() string {
	t := tables.New("Ablation A5: convex allocation vs greedy doubling heuristic (prior work)",
		"program", "p", "Phi convex (s)", "Phi heuristic (s)", "gap (%)")
	for _, row := range r.Rows {
		t.Row(row.Program, row.Procs,
			fmt.Sprintf("%.4f", row.PhiConvex),
			fmt.Sprintf("%.4f", row.PhiHeuristic),
			fmt.Sprintf("%+.1f", row.GapPct))
	}
	return t.String()
}

// AblationStaticRow compares trained and static cost-model parameters.
type AblationStaticRow struct {
	Loop                      string
	TrainedAlpha, StaticAlpha float64
	TrainedTau, StaticTau     float64
	// WorstErrPct is the worst relative prediction error over the
	// processor sweep for each parameter source.
	TrainedWorstErrPct, StaticWorstErrPct float64
}

// AblationStaticResult carries all rows (ablation A6).
type AblationStaticResult struct{ Rows []AblationStaticRow }

// AblationStaticEstimate runs A6: the Gupta-Banerjee-style compile-time
// estimate against the training-sets regression for the paper's loops.
func AblationStaticEstimate(env *Env) (*AblationStaticResult, error) {
	loops := []struct {
		name string
		k    kernels.Kernel
	}{
		{"Matrix Addition (64x64)", kernels.Kernel{Op: kernels.OpAdd, M: 64, N: 64}},
		{"Matrix Multiply (64x64)", kernels.Kernel{Op: kernels.OpMul, M: 64, N: 64, K: 64}},
	}
	out := &AblationStaticResult{}
	for _, l := range loops {
		trained, err := env.Cal.LoopFit(l.name, l.k)
		if err != nil {
			return nil, err
		}
		static, err := trainsets.StaticLoopParams(env.Machine, l.k, env.Machine.Procs)
		if err != nil {
			return nil, err
		}
		row := AblationStaticRow{
			Loop:         l.name,
			TrainedAlpha: trained.Params.Alpha, StaticAlpha: static.Alpha,
			TrainedTau: trained.Params.Tau, StaticTau: static.Tau,
		}
		for _, s := range trained.Samples {
			q := float64(s.Procs)
			te := math.Abs(trained.Params.Processing(q)-s.Measured) / s.Measured
			se := math.Abs(static.Processing(q)-s.Measured) / s.Measured
			row.TrainedWorstErrPct = math.Max(row.TrainedWorstErrPct, 100*te)
			row.StaticWorstErrPct = math.Max(row.StaticWorstErrPct, 100*se)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders ablation A6.
func (r *AblationStaticResult) String() string {
	t := tables.New("Ablation A6: training-sets regression vs compile-time static estimate",
		"loop", "alpha trained", "alpha static", "tau trained (ms)", "tau static (ms)",
		"worst err trained (%)", "worst err static (%)")
	for _, row := range r.Rows {
		t.Row(row.Loop,
			fmt.Sprintf("%.3f", row.TrainedAlpha), fmt.Sprintf("%.3f", row.StaticAlpha),
			fmt.Sprintf("%.2f", row.TrainedTau*1e3), fmt.Sprintf("%.2f", row.StaticTau*1e3),
			fmt.Sprintf("%.1f", row.TrainedWorstErrPct), fmt.Sprintf("%.1f", row.StaticWorstErrPct))
	}
	return t.String()
}
