// Package experiments regenerates every table and figure of the paper's
// evaluation (plus the DESIGN.md ablations) on the simulated CM-5. Each
// driver returns a typed result whose String() prints the same rows or
// series the paper reports; cmd/experiments and the root benchmarks run
// them all, and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"

	"paradigm/internal/alloc"
	"paradigm/internal/codegen"
	"paradigm/internal/costmodel"
	"paradigm/internal/kernels"
	"paradigm/internal/machine"
	"paradigm/internal/matrix"
	"paradigm/internal/prog"
	"paradigm/internal/programs"
	"paradigm/internal/sched"
	"paradigm/internal/sim"
	"paradigm/internal/tables"
	"paradigm/internal/trainsets"
)

// Env is the shared experimental setup: the simulated 64-node CM-5 and
// its training-sets calibration.
type Env struct {
	Machine machine.Params
	Cal     *trainsets.Calibration
}

// NewEnv calibrates a fresh 64-processor CM-5 profile.
func NewEnv() (*Env, error) {
	mp := machine.CM5(64)
	cal, err := trainsets.Calibrate(mp)
	if err != nil {
		return nil, err
	}
	return &Env{Machine: mp, Cal: cal}, nil
}

// --- E1: the Section 1.2 / Figures 1-2 motivating example -----------------

// Example3Result compares the naive all-processors schedule with the
// convex-allocated mixed schedule on the 3-node example MDG.
type Example3Result struct {
	NaiveTime float64 // paper: 15.6 s
	MixedTime float64 // paper: 14.3 s
	Phi       float64
	Alloc     []float64
	Gantt     string
}

// Example3Node runs E1 on a 4-processor system.
func Example3Node(env *Env) (*Example3Result, error) {
	g := programs.FigureOneMDG()
	m := costmodel.Model{} // the example has no data transfer costs
	spmd, err := sched.SPMD(g, m, 4)
	if err != nil {
		return nil, err
	}
	ar, err := alloc.Solve(g, m, 4, alloc.Options{})
	if err != nil {
		return nil, err
	}
	s, err := sched.Run(g, m, ar.P, 4, sched.Options{PB: 4})
	if err != nil {
		return nil, err
	}
	return &Example3Result{
		NaiveTime: spmd.Makespan,
		MixedTime: s.Makespan,
		Phi:       ar.Phi,
		Alloc:     ar.P,
		Gantt:     s.Gantt(g, 64),
	}, nil
}

// String renders E1.
func (r *Example3Result) String() string {
	t := tables.New("Figures 1-2: 3-node example, p = 4 (paper: naive 15.6 s, mixed 14.3 s)",
		"scheme", "finish time (s)")
	t.Row("pure data parallel (naive)", r.NaiveTime)
	t.Row("mixed task+data parallel", r.MixedTime)
	return t.String() + "\n" + r.Gantt
}

// --- E2/E3: Table 1 and Figure 3 (processing cost calibration) ------------

// Table1Result holds the fitted Amdahl rows.
type Table1Result struct {
	Fits []trainsets.LoopFit
}

// Table1 calibrates the paper's two loops (64×64 Add and Multiply).
func Table1(env *Env) (*Table1Result, error) {
	add := kernels.Kernel{Op: kernels.OpAdd, M: 64, N: 64}
	mul := kernels.Kernel{Op: kernels.OpMul, M: 64, N: 64, K: 64}
	fa, err := env.Cal.LoopFit("Matrix Addition (64x64)", add)
	if err != nil {
		return nil, err
	}
	fm, err := env.Cal.LoopFit("Matrix Multiply (64x64)", mul)
	if err != nil {
		return nil, err
	}
	return &Table1Result{Fits: []trainsets.LoopFit{fa, fm}}, nil
}

// String renders Table 1 (paper: Add α=6.7%, τ=3.73 ms; Mul α=12.1%,
// τ=298.47 ms).
func (r *Table1Result) String() string {
	t := tables.New("Table 1: processing cost parameters (paper: Add 6.7%/3.73ms, Mul 12.1%/298.47ms)",
		"Node Name", "alpha (%)", "tau (ms)", "R^2")
	for _, f := range r.Fits {
		t.Row(f.Name, fmt.Sprintf("%.1f", f.Params.Alpha*100),
			fmt.Sprintf("%.2f", f.Params.Tau*1e3), fmt.Sprintf("%.4f", f.R2))
	}
	return t.String()
}

// Fig3Result is the actual-vs-predicted processing cost series.
type Fig3Result struct{ Fits []trainsets.LoopFit }

// Fig3 reuses the Table 1 fits and exposes their sample series.
func Fig3(env *Env) (*Fig3Result, error) {
	t1, err := Table1(env)
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Fits: t1.Fits}, nil
}

// String renders the Figure 3 series.
func (r *Fig3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3: actual versus predicted processing costs\n")
	for _, f := range r.Fits {
		t := tables.New(f.Name, "procs", "measured (ms)", "predicted (ms)", "error (%)")
		for _, s := range f.Samples {
			t.Row(s.Procs, fmt.Sprintf("%.3f", s.Measured*1e3),
				fmt.Sprintf("%.3f", s.Predicted*1e3),
				fmt.Sprintf("%+.1f", 100*(s.Predicted-s.Measured)/s.Measured))
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// --- E4/E5: Table 2 and Figure 5 (transfer cost calibration) --------------

// Table2Result wraps the fitted transfer parameters.
type Table2Result struct{ Fit trainsets.TransferFit }

// Table2 returns the transfer calibration performed by NewEnv.
func Table2(env *Env) (*Table2Result, error) {
	return &Table2Result{Fit: env.Cal.Transfer}, nil
}

// String renders Table 2 (paper: 777.56 µs, 486.98 ns, 465.58 µs,
// 426.25 ns, 0).
func (r *Table2Result) String() string {
	p := r.Fit.Params
	t := tables.New("Table 2: data transfer cost parameters (paper: 777.56uS 486.98nS 465.58uS 426.25nS 0nS)",
		"t_ss (uS)", "t_ps (nS)", "t_sr (uS)", "t_pr (nS)", "t_n (nS)")
	t.Row(fmt.Sprintf("%.2f", p.Tss*1e6), fmt.Sprintf("%.2f", p.Tps*1e9),
		fmt.Sprintf("%.2f", p.Tsr*1e6), fmt.Sprintf("%.2f", p.Tpr*1e9),
		fmt.Sprintf("%.2f", p.Tn*1e9))
	return t.String() +
		fmt.Sprintf("send fit R^2 = %.4f, receive fit R^2 = %.4f\n", r.Fit.SendR2, r.Fit.RecvR2)
}

// Fig5Result is the actual-vs-predicted transfer cost series.
type Fig5Result struct{ Fit trainsets.TransferFit }

// Fig5 exposes the calibration samples.
func Fig5(env *Env) (*Fig5Result, error) {
	return &Fig5Result{Fit: env.Cal.Transfer}, nil
}

// String renders the Figure 5 series (a subset: equal-group sweeps).
func (r *Fig5Result) String() string {
	t := tables.New("Figure 5: actual versus predicted transfer costs",
		"kind", "bytes", "pi", "pj", "measured send (us)", "predicted send (us)", "measured recv (us)", "predicted recv (us)")
	for _, s := range r.Fit.Samples {
		t.Row(s.Kind, s.Bytes, s.Pi, s.Pj,
			fmt.Sprintf("%.1f", s.MeasuredSend*1e6), fmt.Sprintf("%.1f", s.PredictedSend*1e6),
			fmt.Sprintf("%.1f", s.MeasuredRecv*1e6), fmt.Sprintf("%.1f", s.PredictedRecv*1e6))
	}
	return t.String()
}

// --- E6: Figure 6 (the test-program MDGs) ----------------------------------

// Fig6Result carries both program graphs in DOT form.
type Fig6Result struct {
	CMMNodes, StrassenNodes int
	CMMDOT, StrassenDOT     string
}

// Fig6 builds both test programs and renders their MDGs.
func Fig6(env *Env) (*Fig6Result, error) {
	cmm, err := programs.ComplexMatMul(64, env.Cal)
	if err != nil {
		return nil, err
	}
	str, err := programs.Strassen(128, env.Cal)
	if err != nil {
		return nil, err
	}
	return &Fig6Result{
		CMMNodes:      cmm.G.NumNodes(),
		StrassenNodes: str.G.NumNodes(),
		CMMDOT:        cmm.G.DOT("complex-matmul"),
		StrassenDOT:   str.G.DOT("strassen"),
	}, nil
}

// String summarizes Figure 6 (full DOT available in the fields).
func (r *Fig6Result) String() string {
	return fmt.Sprintf("Figure 6: MDGs — Complex Matrix Multiply: %d nodes; Strassen: %d nodes (DOT in result fields)\n",
		r.CMMNodes, r.StrassenNodes)
}

// --- shared pipeline helpers -----------------------------------------------

// RunKind distinguishes the two execution disciplines of Figure 8.
type RunKind uint8

const (
	// MPMD is the paper's mixed task+data parallel execution.
	MPMD RunKind = iota
	// SPMD is the pure data-parallel baseline.
	SPMD
)

// PipelineRun is one (program, procs, kind) execution: the model-predicted
// schedule and the simulated actuality.
type PipelineRun struct {
	Alloc     alloc.Result
	Sched     *sched.Schedule
	Predicted float64 // schedule makespan (the model's T_psa)
	Actual    float64 // simulated machine makespan
	Sim       *sim.Result
}

// RunPipeline executes the full pipeline for a program at a system size.
func RunPipeline(env *Env, p *prog.Program, procs int, kind RunKind) (*PipelineRun, error) {
	model := env.Cal.Model()
	out := &PipelineRun{}
	var s *sched.Schedule
	var err error
	switch kind {
	case MPMD:
		out.Alloc, err = alloc.Solve(p.G, model, procs, alloc.Options{})
		if err != nil {
			return nil, err
		}
		s, err = sched.Run(p.G, model, out.Alloc.P, procs, sched.Options{})
	case SPMD:
		out.Alloc, err = alloc.SPMD(p.G, model, procs)
		if err != nil {
			return nil, err
		}
		s, err = sched.SPMD(p.G, model, procs)
	default:
		return nil, fmt.Errorf("experiments: unknown run kind %d", kind)
	}
	if err != nil {
		return nil, err
	}
	if err := s.Validate(p.G, model); err != nil {
		return nil, err
	}
	streams, err := codegen.Generate(p, s)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(p, streams, env.Machine.WithProcs(procs))
	if err != nil {
		return nil, err
	}
	out.Sched = s
	out.Predicted = s.Makespan
	out.Actual = res.Makespan
	out.Sim = res
	return out, nil
}

// VerifyNumerics compares every simulated array against the sequential
// reference, returning the worst deviation.
func VerifyNumerics(p *prog.Program, res *sim.Result) (float64, error) {
	ref, err := p.ReferenceRun()
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for name := range p.Arrays {
		got, err := res.Gather(name)
		if err != nil {
			return 0, err
		}
		d, err := matrix.MaxAbsDiff(got, ref[name])
		if err != nil {
			return 0, err
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

// testPrograms builds the paper's two evaluation programs at their paper
// sizes (Complex Matrix Multiply 64×64, Strassen 128×128).
func testPrograms(env *Env) (map[string]*prog.Program, error) {
	cmm, err := programs.ComplexMatMul(64, env.Cal)
	if err != nil {
		return nil, err
	}
	str, err := programs.Strassen(128, env.Cal)
	if err != nil {
		return nil, err
	}
	return map[string]*prog.Program{
		"Complex Matrix Multiply (64x64)":      cmm,
		"Strassen's Matrix Multiply (128x128)": str,
	}, nil
}

// ProgramNames returns the canonical ordering of the test programs.
func ProgramNames() []string {
	return []string{
		"Complex Matrix Multiply (64x64)",
		"Strassen's Matrix Multiply (128x128)",
	}
}

// SystemSizes returns the paper's system-size sweep.
func SystemSizes() []int { return []int{16, 32, 64} }
