package experiments

import (
	"fmt"
	"time"

	"paradigm/internal/alloc"
	"paradigm/internal/mdg"
	"paradigm/internal/sched"
	"paradigm/internal/tables"
)

// ScalabilityRow is one synthetic-MDG size point.
type ScalabilityRow struct {
	Nodes, Edges  int
	Depth, Width  int
	AllocTime     time.Duration
	SchedTime     time.Duration
	HeuristicTime time.Duration
	PhiConvex     float64
	PhiHeuristic  float64
	Tpsa          float64
	SolverEvals   int
}

// ScalabilityResult carries experiment E13: how the compiler-side
// machinery (convex allocation + PSA) scales with MDG size.
type ScalabilityResult struct {
	Procs int
	Rows  []ScalabilityRow
}

// Scalability runs E13 on layered synthetic MDGs of growing size. The
// paper solves MDGs of up to ~35 nodes; this sweeps past 100 to show the
// approach stays practical for larger programs. The rows stay serial on
// purpose: each one times the allocator and scheduler, and concurrent
// siblings would contaminate those wall-clock measurements.
func Scalability(env *Env) (*ScalabilityResult, error) {
	const procs = 32
	model := env.Cal.Model()
	out := &ScalabilityResult{Procs: procs}
	for _, shape := range []struct{ layers, width int }{
		{3, 3}, {4, 5}, {6, 7}, {8, 13},
	} {
		g, err := mdg.RandomLayered(2026, shape.layers, shape.width, 3, 32768)
		if err != nil {
			return nil, err
		}
		metrics, err := g.ComputeMetrics()
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		conv, err := alloc.Solve(g, model, procs, alloc.Options{})
		if err != nil {
			return nil, fmt.Errorf("scalability %d nodes: %w", metrics.Nodes, err)
		}
		allocTime := time.Since(t0)

		t0 = time.Now()
		s, err := sched.Run(g, model, conv.P, procs, sched.Options{})
		if err != nil {
			return nil, err
		}
		schedTime := time.Since(t0)

		t0 = time.Now()
		heur, err := alloc.SolveHeuristic(g, model, procs)
		if err != nil {
			return nil, err
		}
		heurTime := time.Since(t0)

		out.Rows = append(out.Rows, ScalabilityRow{
			Nodes: metrics.Nodes, Edges: metrics.Edges,
			Depth: metrics.Depth, Width: metrics.Width,
			AllocTime: allocTime, SchedTime: schedTime, HeuristicTime: heurTime,
			PhiConvex: conv.Phi, PhiHeuristic: heur.Phi, Tpsa: s.Makespan,
			SolverEvals: conv.Solver.Evals,
		})
	}
	return out, nil
}

// String renders E13.
func (r *ScalabilityResult) String() string {
	t := tables.New(
		fmt.Sprintf("E13 allocator scalability on layered synthetic MDGs, p = %d", r.Procs),
		"nodes", "edges", "depth", "width", "alloc time", "evals", "sched time",
		"Phi convex (s)", "Phi heuristic (s)", "T_psa (s)")
	for _, row := range r.Rows {
		t.Row(row.Nodes, row.Edges, row.Depth, row.Width,
			fmtDuration(row.AllocTime, time.Millisecond),
			row.SolverEvals,
			fmtDuration(row.SchedTime, time.Microsecond),
			fmt.Sprintf("%.4f", row.PhiConvex),
			fmt.Sprintf("%.4f", row.PhiHeuristic),
			fmt.Sprintf("%.4f", row.Tpsa))
	}
	return t.String()
}
