package experiments

import (
	"fmt"

	"paradigm/internal/kernels"
	"paradigm/internal/machine"
	"paradigm/internal/prog"
	"paradigm/internal/programs"
	"paradigm/internal/tables"
	"paradigm/internal/trainsets"
)

// PortabilityRow is one (program, procs) pipeline outcome on the Paragon
// profile.
type PortabilityRow struct {
	Program           string
	Procs             int
	Phi               float64
	Predicted, Actual float64
	DevPct            float64 // T_psa vs Phi
	RatioPredActual   float64
}

// PortabilityResult carries the Paragon calibration summary and rows
// (experiment E11).
type PortabilityResult struct {
	FittedTnNs   float64 // must be > 0 on the Paragon, unlike the CM-5
	TruthTnNs    float64
	FittedTssUs  float64
	MulAlphaPct  float64
	MulTauMs     float64
	Rows         []PortabilityRow
	WorstNumDiff float64
}

// Portability runs E11: calibrate an Intel-Paragon-like profile from
// scratch (including the nonzero t_n the CM-5 lacks) and push both test
// programs through the full pipeline on it. The methodology — not the
// CM-5 constants — is what must survive the machine change.
func Portability(env *Env) (*PortabilityResult, error) {
	mp := machine.Paragon(64)
	cal, err := trainsets.Calibrate(mp)
	if err != nil {
		return nil, err
	}
	out := &PortabilityResult{
		FittedTnNs:  cal.Transfer.Params.Tn * 1e9,
		TruthTnNs:   mp.NetPerByte * 1e9,
		FittedTssUs: cal.Transfer.Params.Tss * 1e6,
	}
	mulFit, err := cal.LoopFit("Matrix Multiply (64x64)",
		kernels.Kernel{Op: kernels.OpMul, M: 64, N: 64, K: 64})
	if err != nil {
		return nil, err
	}
	out.MulAlphaPct = mulFit.Params.Alpha * 100
	out.MulTauMs = mulFit.Params.Tau * 1e3

	paragonEnv := &Env{Machine: mp, Cal: cal}
	cmm, err := programs.ComplexMatMul(64, cal)
	if err != nil {
		return nil, err
	}
	str, err := programs.Strassen(128, cal)
	if err != nil {
		return nil, err
	}
	for _, item := range []struct {
		name string
		prog *prog.Program
	}{
		{"Complex Matrix Multiply (64x64)", cmm},
		{"Strassen's Matrix Multiply (128x128)", str},
	} {
		for _, procs := range []int{16, 64} {
			run, err := RunPipeline(paragonEnv, item.prog, procs, MPMD)
			if err != nil {
				return nil, fmt.Errorf("paragon %s p=%d: %w", item.name, procs, err)
			}
			worst, err := VerifyNumerics(item.prog, run.Sim)
			if err != nil {
				return nil, err
			}
			if worst > out.WorstNumDiff {
				out.WorstNumDiff = worst
			}
			out.Rows = append(out.Rows, PortabilityRow{
				Program:         item.name,
				Procs:           procs,
				Phi:             run.Alloc.Phi,
				Predicted:       run.Predicted,
				Actual:          run.Actual,
				DevPct:          100 * (run.Predicted - run.Alloc.Phi) / run.Alloc.Phi,
				RatioPredActual: run.Predicted / run.Actual,
			})
		}
	}
	return out, nil
}

// String renders E11.
func (r *PortabilityResult) String() string {
	t := tables.New(
		fmt.Sprintf("E11 portability: Intel-Paragon-like profile (fitted t_n = %.2f nS, truth %.2f nS; t_ss = %.1f uS; mul alpha = %.1f%%, tau = %.2f ms)",
			r.FittedTnNs, r.TruthTnNs, r.FittedTssUs, r.MulAlphaPct, r.MulTauMs),
		"program", "p", "Phi (s)", "T_psa (s)", "actual (s)", "dev (%)", "pred/actual")
	for _, row := range r.Rows {
		t.Row(row.Program, row.Procs,
			fmt.Sprintf("%.5f", row.Phi),
			fmt.Sprintf("%.5f", row.Predicted),
			fmt.Sprintf("%.5f", row.Actual),
			fmt.Sprintf("%+.1f", row.DevPct),
			fmt.Sprintf("%.3f", row.RatioPredActual))
	}
	return t.String()
}
