package experiments

import (
	"context"
	"fmt"

	"paradigm/internal/kernels"
	"paradigm/internal/machine"
	"paradigm/internal/par"
	"paradigm/internal/prog"
	"paradigm/internal/programs"
	"paradigm/internal/tables"
	"paradigm/internal/trainsets"
)

// PortabilityRow is one (program, procs) pipeline outcome on the Paragon
// profile.
type PortabilityRow struct {
	Program           string
	Procs             int
	Phi               float64
	Predicted, Actual float64
	DevPct            float64 // T_psa vs Phi
	RatioPredActual   float64
}

// PortabilityResult carries the Paragon calibration summary and rows
// (experiment E11).
type PortabilityResult struct {
	FittedTnNs   float64 // must be > 0 on the Paragon, unlike the CM-5
	TruthTnNs    float64
	FittedTssUs  float64
	MulAlphaPct  float64
	MulTauMs     float64
	Rows         []PortabilityRow
	WorstNumDiff float64
}

// Portability runs E11: calibrate an Intel-Paragon-like profile from
// scratch (including the nonzero t_n the CM-5 lacks) and push both test
// programs through the full pipeline on it. The methodology — not the
// CM-5 constants — is what must survive the machine change.
func Portability(env *Env) (*PortabilityResult, error) {
	mp := machine.Paragon(64)
	cal, err := trainsets.Calibrate(mp)
	if err != nil {
		return nil, err
	}
	out := &PortabilityResult{
		FittedTnNs:  cal.Transfer.Params.Tn * 1e9,
		TruthTnNs:   mp.NetPerByte * 1e9,
		FittedTssUs: cal.Transfer.Params.Tss * 1e6,
	}
	mulFit, err := cal.LoopFit("Matrix Multiply (64x64)",
		kernels.Kernel{Op: kernels.OpMul, M: 64, N: 64, K: 64})
	if err != nil {
		return nil, err
	}
	out.MulAlphaPct = mulFit.Params.Alpha * 100
	out.MulTauMs = mulFit.Params.Tau * 1e3

	paragonEnv := &Env{Machine: mp, Cal: cal}
	cmm, err := programs.ComplexMatMul(64, cal)
	if err != nil {
		return nil, err
	}
	str, err := programs.Strassen(128, cal)
	if err != nil {
		return nil, err
	}
	var tasks []struct {
		name  string
		prog  *prog.Program
		procs int
	}
	for _, item := range []struct {
		name string
		prog *prog.Program
	}{
		{"Complex Matrix Multiply (64x64)", cmm},
		{"Strassen's Matrix Multiply (128x128)", str},
	} {
		for _, procs := range []int{16, 64} {
			tasks = append(tasks, struct {
				name  string
				prog  *prog.Program
				procs int
			}{item.name, item.prog, procs})
		}
	}
	type rowDiff struct {
		row  PortabilityRow
		diff float64
	}
	rds, err := par.Map(context.Background(), len(tasks), func(_ context.Context, i int) (rowDiff, error) {
		item := tasks[i]
		run, err := RunPipeline(paragonEnv, item.prog, item.procs, MPMD)
		if err != nil {
			return rowDiff{}, fmt.Errorf("paragon %s p=%d: %w", item.name, item.procs, err)
		}
		worst, err := VerifyNumerics(item.prog, run.Sim)
		if err != nil {
			return rowDiff{}, err
		}
		return rowDiff{
			row: PortabilityRow{
				Program:         item.name,
				Procs:           item.procs,
				Phi:             run.Alloc.Phi,
				Predicted:       run.Predicted,
				Actual:          run.Actual,
				DevPct:          100 * (run.Predicted - run.Alloc.Phi) / run.Alloc.Phi,
				RatioPredActual: run.Predicted / run.Actual,
			},
			diff: worst,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rd := range rds {
		if rd.diff > out.WorstNumDiff {
			out.WorstNumDiff = rd.diff
		}
		out.Rows = append(out.Rows, rd.row)
	}
	return out, nil
}

// String renders E11.
func (r *PortabilityResult) String() string {
	t := tables.New(
		fmt.Sprintf("E11 portability: Intel-Paragon-like profile (fitted t_n = %.2f nS, truth %.2f nS; t_ss = %.1f uS; mul alpha = %.1f%%, tau = %.2f ms)",
			r.FittedTnNs, r.TruthTnNs, r.FittedTssUs, r.MulAlphaPct, r.MulTauMs),
		"program", "p", "Phi (s)", "T_psa (s)", "actual (s)", "dev (%)", "pred/actual")
	for _, row := range r.Rows {
		t.Row(row.Program, row.Procs,
			fmt.Sprintf("%.5f", row.Phi),
			fmt.Sprintf("%.5f", row.Predicted),
			fmt.Sprintf("%.5f", row.Actual),
			fmt.Sprintf("%+.1f", row.DevPct),
			fmt.Sprintf("%.3f", row.RatioPredActual))
	}
	return t.String()
}
