package experiments

import (
	"context"
	"fmt"
	"strings"

	"paradigm/internal/alloc"
	"paradigm/internal/bounds"
	"paradigm/internal/mdg"
	"paradigm/internal/par"
	"paradigm/internal/programs"
	"paradigm/internal/sched"
	"paradigm/internal/tables"
)

// --- E7: Figure 7 (allocation and schedule for CMM on 4 processors) -------

// Fig7Result is the allocation and Gantt chart for Complex Matrix
// Multiply on a 4-processor system.
type Fig7Result struct {
	Alloc    alloc.Result
	Rounded  []int
	Gantt    string
	SchedTab string
	Makespan float64
}

// Fig7 reproduces the Figure 7 diagram.
func Fig7(env *Env) (*Fig7Result, error) {
	p, err := programs.ComplexMatMul(64, env.Cal)
	if err != nil {
		return nil, err
	}
	model := env.Cal.Model()
	ar, err := alloc.Solve(p.G, model, 4, alloc.Options{})
	if err != nil {
		return nil, err
	}
	s, err := sched.Run(p.G, model, ar.P, 4, sched.Options{PB: 4})
	if err != nil {
		return nil, err
	}
	if err := s.Validate(p.G, model); err != nil {
		return nil, err
	}
	return &Fig7Result{
		Alloc:    ar,
		Rounded:  s.Alloc,
		Gantt:    s.Gantt(p.G, 72),
		SchedTab: s.Table(p.G),
		Makespan: s.Makespan,
	}, nil
}

// String renders Figure 7.
func (r *Fig7Result) String() string {
	return "Figure 7: allocation and schedule for Complex Matrix Multiply, p = 4\n" +
		r.SchedTab + "\n" + r.Gantt
}

// --- E8: Figure 8 (speedup and efficiency, SPMD vs MPMD) ------------------

// Fig8Row is one (program, system size) comparison.
type Fig8Row struct {
	Program                  string
	Procs                    int
	SerialTime               float64
	SPMDTime, MPMDTime       float64
	SPMDSpeedup, MPMDSpeedup float64
	SPMDEff, MPMDEff         float64
}

// Fig8Result carries all rows.
type Fig8Result struct{ Rows []Fig8Row }

// Fig8 simulates both test programs under both disciplines across the
// paper's system sizes, with serial time from a one-processor run. The
// per-program serial baselines and every (program, procs) cell fan out on
// the worker pool.
func Fig8(env *Env) (*Fig8Result, error) {
	progs, err := testPrograms(env)
	if err != nil {
		return nil, err
	}
	names := ProgramNames()
	serials, err := par.Map(context.Background(), len(names), func(_ context.Context, i int) (float64, error) {
		run, err := RunPipeline(env, progs[names[i]], 1, SPMD)
		if err != nil {
			return 0, fmt.Errorf("%s serial: %w", names[i], err)
		}
		return run.Actual, nil
	})
	if err != nil {
		return nil, err
	}
	serialByName := make(map[string]float64, len(names))
	for i, name := range names {
		serialByName[name] = serials[i]
	}
	rows, err := mapCells(progs, func(c cell) (Fig8Row, error) {
		spmd, err := RunPipeline(env, c.Prog, c.Procs, SPMD)
		if err != nil {
			return Fig8Row{}, fmt.Errorf("%s SPMD p=%d: %w", c.Name, c.Procs, err)
		}
		mpmd, err := RunPipeline(env, c.Prog, c.Procs, MPMD)
		if err != nil {
			return Fig8Row{}, fmt.Errorf("%s MPMD p=%d: %w", c.Name, c.Procs, err)
		}
		// Every run must stay numerically correct.
		if worst, err := VerifyNumerics(c.Prog, mpmd.Sim); err != nil || worst > 1e-6 {
			return Fig8Row{}, fmt.Errorf("%s MPMD p=%d numerics: worst %v err %v", c.Name, c.Procs, worst, err)
		}
		row := Fig8Row{
			Program:    c.Name,
			Procs:      c.Procs,
			SerialTime: serialByName[c.Name],
			SPMDTime:   spmd.Actual,
			MPMDTime:   mpmd.Actual,
		}
		row.SPMDSpeedup = row.SerialTime / row.SPMDTime
		row.MPMDSpeedup = row.SerialTime / row.MPMDTime
		row.SPMDEff = row.SPMDSpeedup / float64(c.Procs)
		row.MPMDEff = row.MPMDSpeedup / float64(c.Procs)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Rows: rows}, nil
}

// String renders the Figure 8 rows.
func (r *Fig8Result) String() string {
	t := tables.New("Figure 8: speedup and efficiency, SPMD versus MPMD (simulated CM-5)",
		"program", "p", "serial (s)", "SPMD (s)", "MPMD (s)",
		"SPMD speedup", "MPMD speedup", "SPMD eff", "MPMD eff")
	for _, row := range r.Rows {
		t.Row(row.Program, row.Procs,
			fmt.Sprintf("%.4f", row.SerialTime),
			fmt.Sprintf("%.4f", row.SPMDTime),
			fmt.Sprintf("%.4f", row.MPMDTime),
			fmt.Sprintf("%.2f", row.SPMDSpeedup),
			fmt.Sprintf("%.2f", row.MPMDSpeedup),
			fmt.Sprintf("%.3f", row.SPMDEff),
			fmt.Sprintf("%.3f", row.MPMDEff))
	}
	return t.String()
}

// --- E9: Figure 9 (predicted versus actual, normalized) -------------------

// Fig9Row compares the model-predicted finish time with the simulated one.
type Fig9Row struct {
	Program    string
	Procs      int
	Predicted  float64
	Actual     float64
	Normalized float64 // Predicted / Actual (paper plots both normalized to actual)
}

// Fig9Result carries all rows.
type Fig9Result struct{ Rows []Fig9Row }

// Fig9 compares predictions with simulated actuals for the MPMD runs,
// one worker-pool task per (program, procs) cell.
func Fig9(env *Env) (*Fig9Result, error) {
	progs, err := testPrograms(env)
	if err != nil {
		return nil, err
	}
	rows, err := mapCells(progs, func(c cell) (Fig9Row, error) {
		run, err := RunPipeline(env, c.Prog, c.Procs, MPMD)
		if err != nil {
			return Fig9Row{}, err
		}
		return Fig9Row{
			Program:    c.Name,
			Procs:      c.Procs,
			Predicted:  run.Predicted,
			Actual:     run.Actual,
			Normalized: run.Predicted / run.Actual,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Rows: rows}, nil
}

// String renders the Figure 9 rows.
func (r *Fig9Result) String() string {
	t := tables.New("Figure 9: predicted versus actual execution times (normalized to actual)",
		"program", "p", "predicted (s)", "actual (s)", "predicted/actual")
	for _, row := range r.Rows {
		t.Row(row.Program, row.Procs,
			fmt.Sprintf("%.4f", row.Predicted),
			fmt.Sprintf("%.4f", row.Actual),
			fmt.Sprintf("%.3f", row.Normalized))
	}
	return t.String()
}

// --- E10: Table 3 (Φ versus T_psa) -----------------------------------------

// Table3Row compares the convex optimum with the PSA schedule time.
type Table3Row struct {
	Program       string
	Procs         int
	Phi           float64
	Tpsa          float64
	PercentChange float64
}

// Table3Result carries all rows.
type Table3Result struct{ Rows []Table3Row }

// Table3 reproduces the paper's Table 3, one worker-pool task per
// (program, procs) cell.
func Table3(env *Env) (*Table3Result, error) {
	progs, err := testPrograms(env)
	if err != nil {
		return nil, err
	}
	model := env.Cal.Model()
	rows, err := mapCells(progs, func(c cell) (Table3Row, error) {
		ar, err := alloc.Solve(c.Prog.G, model, c.Procs, alloc.Options{})
		if err != nil {
			return Table3Row{}, err
		}
		s, err := sched.Run(c.Prog.G, model, ar.P, c.Procs, sched.Options{})
		if err != nil {
			return Table3Row{}, err
		}
		return Table3Row{
			Program:       c.Name,
			Procs:         c.Procs,
			Phi:           ar.Phi,
			Tpsa:          s.Makespan,
			PercentChange: 100 * (s.Makespan - ar.Phi) / ar.Phi,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table3Result{Rows: rows}, nil
}

// String renders Table 3 (paper deviations: -2.6% to +15.6%).
func (r *Table3Result) String() string {
	t := tables.New("Table 3: deviation of T_psa from Phi (paper: -2.6% .. +15.6%)",
		"Program Name", "System Size", "Phi (S)", "T_psa (S)", "Percent Change")
	for _, row := range r.Rows {
		t.Row(row.Program, row.Procs,
			fmt.Sprintf("%.4f", row.Phi),
			fmt.Sprintf("%.4f", row.Tpsa),
			fmt.Sprintf("%+.1f", row.PercentChange))
	}
	return t.String()
}

// --- Ablations --------------------------------------------------------------

// AblationRoundingRow measures the cost of the rounding and bounding steps
// (the practical side of Theorem 2).
type AblationRoundingRow struct {
	Program            string
	Procs              int
	Phi                float64
	TpsaRounded        float64
	TpsaUnrounded      float64
	Theorem3Bound      float64
	RoundedWithinBound bool
}

// AblationRoundingResult carries all rows.
type AblationRoundingResult struct{ Rows []AblationRoundingRow }

// AblationRounding compares power-of-two rounding against floor-rounding
// (SkipRounding) and checks the Theorem 3 bound.
func AblationRounding(env *Env) (*AblationRoundingResult, error) {
	progs, err := testPrograms(env)
	if err != nil {
		return nil, err
	}
	model := env.Cal.Model()
	rows, err := mapCells(progs, func(c cell) (AblationRoundingRow, error) {
		ar, err := alloc.Solve(c.Prog.G, model, c.Procs, alloc.Options{})
		if err != nil {
			return AblationRoundingRow{}, err
		}
		rounded, err := sched.Run(c.Prog.G, model, ar.P, c.Procs, sched.Options{})
		if err != nil {
			return AblationRoundingRow{}, err
		}
		raw, err := sched.Run(c.Prog.G, model, ar.P, c.Procs, sched.Options{SkipRounding: true, PB: rounded.PB})
		if err != nil {
			return AblationRoundingRow{}, err
		}
		factor, err := bounds.Theorem3Factor(c.Procs, rounded.PB)
		if err != nil {
			return AblationRoundingRow{}, err
		}
		return AblationRoundingRow{
			Program:            c.Name,
			Procs:              c.Procs,
			Phi:                ar.Phi,
			TpsaRounded:        rounded.Makespan,
			TpsaUnrounded:      raw.Makespan,
			Theorem3Bound:      factor * ar.Phi,
			RoundedWithinBound: rounded.Makespan <= factor*ar.Phi+1e-9,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationRoundingResult{Rows: rows}, nil
}

// String renders ablation A1.
func (r *AblationRoundingResult) String() string {
	t := tables.New("Ablation A1: power-of-two rounding cost and the Theorem 3 bound",
		"program", "p", "Phi (s)", "T_psa pow2 (s)", "T_psa floor (s)", "Thm3 bound (s)", "within bound")
	for _, row := range r.Rows {
		t.Row(row.Program, row.Procs,
			fmt.Sprintf("%.4f", row.Phi),
			fmt.Sprintf("%.4f", row.TpsaRounded),
			fmt.Sprintf("%.4f", row.TpsaUnrounded),
			fmt.Sprintf("%.4f", row.Theorem3Bound),
			row.RoundedWithinBound)
	}
	return t.String()
}

// AblationPBRow sweeps the processor bound.
type AblationPBRow struct {
	PB          int
	BoundFactor float64
	Tpsa        float64
	IsCorollary bool
}

// AblationPBResult carries one program's sweep.
type AblationPBResult struct {
	Program string
	Procs   int
	Rows    []AblationPBRow
}

// AblationPBSweep sweeps PB over powers of two for Strassen at p = 32 and
// marks Corollary 1's choice.
func AblationPBSweep(env *Env) (*AblationPBResult, error) {
	p, err := programs.Strassen(128, env.Cal)
	if err != nil {
		return nil, err
	}
	model := env.Cal.Model()
	const procs = 32
	ar, err := alloc.Solve(p.G, model, procs, alloc.Options{})
	if err != nil {
		return nil, err
	}
	corollary, _, err := bounds.OptimalPB(procs)
	if err != nil {
		return nil, err
	}
	out := &AblationPBResult{Program: "Strassen's Matrix Multiply (128x128)", Procs: procs}
	var pbs []int
	for pb := 1; pb <= procs; pb *= 2 {
		pbs = append(pbs, pb)
	}
	out.Rows, err = par.Map(context.Background(), len(pbs), func(_ context.Context, i int) (AblationPBRow, error) {
		pb := pbs[i]
		s, err := sched.Run(p.G, model, ar.P, procs, sched.Options{PB: pb})
		if err != nil {
			return AblationPBRow{}, err
		}
		factor, err := bounds.Theorem3Factor(procs, pb)
		if err != nil {
			return AblationPBRow{}, err
		}
		return AblationPBRow{
			PB:          pb,
			BoundFactor: factor,
			Tpsa:        s.Makespan,
			IsCorollary: pb == corollary,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// String renders ablation A2.
func (r *AblationPBResult) String() string {
	t := tables.New(fmt.Sprintf("Ablation A2: PB sweep, %s, p = %d", r.Program, r.Procs),
		"PB", "Theorem 3 factor", "T_psa (s)", "Corollary 1 choice")
	for _, row := range r.Rows {
		mark := ""
		if row.IsCorollary {
			mark = "<= chosen"
		}
		t.Row(row.PB, fmt.Sprintf("%.1f", row.BoundFactor), fmt.Sprintf("%.4f", row.Tpsa), mark)
	}
	return t.String()
}

// AblationTransferRow compares transfer-aware and transfer-blind
// allocation under the true model.
type AblationTransferRow struct {
	Program    string
	Procs      int
	PhiAware   float64
	PhiBlind   float64
	PenaltyPct float64
}

// AblationTransferResult carries all rows.
type AblationTransferResult struct{ Rows []AblationTransferRow }

// AblationNoTransferCosts quantifies what ignoring data transfer costs in
// the allocation (as prior work did) costs under the full model.
func AblationNoTransferCosts(env *Env) (*AblationTransferResult, error) {
	progs, err := testPrograms(env)
	if err != nil {
		return nil, err
	}
	model := env.Cal.Model()
	rows, err := mapCells(progs, func(c cell) (AblationTransferRow, error) {
		aware, err := alloc.Solve(c.Prog.G, model, c.Procs, alloc.Options{})
		if err != nil {
			return AblationTransferRow{}, err
		}
		blind, err := alloc.Solve(c.Prog.G, model, c.Procs, alloc.Options{IgnoreTransfers: true})
		if err != nil {
			return AblationTransferRow{}, err
		}
		return AblationTransferRow{
			Program:    c.Name,
			Procs:      c.Procs,
			PhiAware:   aware.Phi,
			PhiBlind:   blind.Phi,
			PenaltyPct: 100 * (blind.Phi - aware.Phi) / aware.Phi,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationTransferResult{Rows: rows}, nil
}

// String renders ablation A3.
func (r *AblationTransferResult) String() string {
	t := tables.New("Ablation A3: allocation ignoring transfer costs (Prasanna-Agarwal style), true-model Phi",
		"program", "p", "Phi aware (s)", "Phi blind (s)", "penalty (%)")
	for _, row := range r.Rows {
		t.Row(row.Program, row.Procs,
			fmt.Sprintf("%.4f", row.PhiAware),
			fmt.Sprintf("%.4f", row.PhiBlind),
			fmt.Sprintf("%+.1f", row.PenaltyPct))
	}
	return t.String()
}

// AblationSchedulerResult compares the PSA priority rule against FIFO
// and critical-path (HLF) list scheduling on two workloads.
type AblationSchedulerResult struct {
	Procs int
	Rows  []AblationSchedulerRow
}

// AblationSchedulerRow is one workload's three-policy comparison.
type AblationSchedulerRow struct {
	Workload                   string
	PSATime, FIFOTime, HLFTime float64
}

// AblationScheduler runs A4: the PSA's lowest-EST priority against FIFO
// and HLF on the synthetic pipeline and a random layered MDG.
func AblationScheduler(env *Env) (*AblationSchedulerResult, error) {
	model := env.Cal.Model()
	const procs = 16
	out := &AblationSchedulerResult{Procs: procs}

	pipe, err := programs.SyntheticPipeline(64, 6, 3, env.Cal)
	if err != nil {
		return nil, err
	}
	layered, err := mdg.RandomLayered(99, 5, 6, 3, 32768)
	if err != nil {
		return nil, err
	}
	workloads := []struct {
		name string
		g    *mdg.Graph
	}{
		{pipe.Name, pipe.G},
		{"layered-5x6", layered},
	}
	out.Rows, err = par.Map(context.Background(), len(workloads), func(_ context.Context, i int) (AblationSchedulerRow, error) {
		w := workloads[i]
		ar, err := alloc.Solve(w.g, model, procs, alloc.Options{})
		if err != nil {
			return AblationSchedulerRow{}, err
		}
		row := AblationSchedulerRow{Workload: w.name}
		for _, pol := range []struct {
			p   sched.Policy
			dst *float64
		}{
			{sched.LowestEST, &row.PSATime},
			{sched.FIFO, &row.FIFOTime},
			{sched.HLF, &row.HLFTime},
		} {
			s, err := sched.Run(w.g, model, ar.P, procs, sched.Options{Policy: pol.p})
			if err != nil {
				return AblationSchedulerRow{}, err
			}
			if err := s.Validate(w.g, model); err != nil {
				return AblationSchedulerRow{}, err
			}
			*pol.dst = s.Makespan
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// String renders ablation A4.
func (r *AblationSchedulerResult) String() string {
	t := tables.New(fmt.Sprintf("Ablation A4: ready-queue policies, p = %d", r.Procs),
		"workload", "PSA lowest-EST (s)", "FIFO (s)", "HLF (s)")
	for _, row := range r.Rows {
		t.Row(row.Workload,
			fmt.Sprintf("%.4f", row.PSATime),
			fmt.Sprintf("%.4f", row.FIFOTime),
			fmt.Sprintf("%.4f", row.HLFTime))
	}
	return t.String()
}

// All runs every experiment and concatenates the printed outputs in paper
// order — the cmd/experiments payload. The artifacts are independent
// given the shared calibration, so they fan out on the worker pool (each
// one further fans its own cells); the rendered strings are joined by
// step index, so output order never depends on completion order.
func All(env *Env) (string, error) {
	steps := []func() (fmt.Stringer, error){
		func() (fmt.Stringer, error) { return Example3Node(env) },
		func() (fmt.Stringer, error) { return Table1(env) },
		func() (fmt.Stringer, error) { return Fig3(env) },
		func() (fmt.Stringer, error) { return Table2(env) },
		func() (fmt.Stringer, error) { return Fig5(env) },
		func() (fmt.Stringer, error) { return Fig6(env) },
		func() (fmt.Stringer, error) { return Fig7(env) },
		func() (fmt.Stringer, error) { return Fig8(env) },
		func() (fmt.Stringer, error) { return Fig9(env) },
		func() (fmt.Stringer, error) { return Table3(env) },
		func() (fmt.Stringer, error) { return AblationRounding(env) },
		func() (fmt.Stringer, error) { return AblationPBSweep(env) },
		func() (fmt.Stringer, error) { return AblationNoTransferCosts(env) },
		func() (fmt.Stringer, error) { return AblationScheduler(env) },
		func() (fmt.Stringer, error) { return AblationHeuristic(env) },
		func() (fmt.Stringer, error) { return AblationStaticEstimate(env) },
		func() (fmt.Stringer, error) { return Portability(env) },
		func() (fmt.Stringer, error) { return AblationJitter(env) },
		func() (fmt.Stringer, error) { return GridDistribution(env) },
		func() (fmt.Stringer, error) { return Scalability(env) },
		func() (fmt.Stringer, error) { return StrassenRecursion(env) },
	}
	texts, err := par.Map(context.Background(), len(steps), func(_ context.Context, i int) (string, error) {
		r, err := steps[i]()
		if err != nil {
			return "", err
		}
		return r.String(), nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, s := range texts {
		b.WriteString(s)
		b.WriteString("\n")
	}
	return b.String(), nil
}
