package experiments

import (
	"strings"
	"testing"
	"time"

	"paradigm/internal/trainsets"
)

// TestRenderersOnSyntheticResults exercises every result printer on
// hand-built values, independent of the (expensive) drivers.
func TestRenderersOnSyntheticResults(t *testing.T) {
	cases := []struct {
		name string
		r    interface{ String() string }
		want []string
	}{
		{"example3", &Example3Result{NaiveTime: 15.6, MixedTime: 14.3, Gantt: "G"},
			[]string{"15.6", "14.3"}},
		{"table1", &Table1Result{Fits: []trainsets.LoopFit{{Name: "L", R2: 0.99}}},
			[]string{"Table 1", "L"}},
		{"fig3", &Fig3Result{Fits: []trainsets.LoopFit{{Name: "L",
			Samples: []trainsets.LoopSample{{Procs: 2, Measured: 1, Predicted: 1.1}}}}},
			[]string{"Figure 3", "+10.0"}},
		{"table2", &Table2Result{}, []string{"Table 2"}},
		{"fig5", &Fig5Result{Fit: trainsets.TransferFit{Samples: []trainsets.TransferSample{
			{Bytes: 8, Pi: 1, Pj: 2}}}}, []string{"Figure 5"}},
		{"fig6", &Fig6Result{CMMNodes: 12, StrassenNodes: 35}, []string{"12", "35"}},
		{"fig7", &Fig7Result{SchedTab: "TAB", Gantt: "GANTT"}, []string{"Figure 7", "TAB"}},
		{"fig8", &Fig8Result{Rows: []Fig8Row{{Program: "P", Procs: 16, SerialTime: 1,
			SPMDTime: 0.5, MPMDTime: 0.25, SPMDSpeedup: 2, MPMDSpeedup: 4}}},
			[]string{"Figure 8", "4.00"}},
		{"fig9", &Fig9Result{Rows: []Fig9Row{{Program: "P", Procs: 16, Predicted: 1,
			Actual: 0.9, Normalized: 1.111}}}, []string{"Figure 9", "1.111"}},
		{"table3", &Table3Result{Rows: []Table3Row{{Program: "P", Procs: 16,
			Phi: 1, Tpsa: 1.1, PercentChange: 10}}}, []string{"Table 3", "+10.0"}},
		{"a1", &AblationRoundingResult{Rows: []AblationRoundingRow{{Program: "P",
			Procs: 16, RoundedWithinBound: true}}}, []string{"A1", "true"}},
		{"a2", &AblationPBResult{Program: "P", Procs: 32, Rows: []AblationPBRow{
			{PB: 8, BoundFactor: 82.1, Tpsa: 0.16, IsCorollary: true}}},
			[]string{"A2", "chosen"}},
		{"a3", &AblationTransferResult{Rows: []AblationTransferRow{{Program: "P",
			Procs: 16, PhiAware: 1, PhiBlind: 1.1, PenaltyPct: 10}}},
			[]string{"A3", "+10.0"}},
		{"a4", &AblationSchedulerResult{Procs: 16, Rows: []AblationSchedulerRow{
			{Workload: "w", PSATime: 1, FIFOTime: 1.1, HLFTime: 1.2}}},
			[]string{"A4", "w"}},
		{"a5", &AblationHeuristicResult{Rows: []AblationHeuristicRow{{Program: "P",
			Procs: 16, PhiConvex: 1, PhiHeuristic: 1.2, GapPct: 20}}},
			[]string{"A5", "+20.0"}},
		{"a6", &AblationStaticResult{Rows: []AblationStaticRow{{Loop: "L"}}},
			[]string{"A6", "L"}},
		{"a7", &JitterResult{Program: "P", Procs: 32, Rows: []JitterRow{
			{JitterPct: 15, Actual: 0.08, RatioPredActual: 0.97}}},
			[]string{"A7", "15"}},
		{"e11", &PortabilityResult{FittedTnNs: 6, TruthTnNs: 6,
			Rows: []PortabilityRow{{Program: "P", Procs: 16}}},
			[]string{"E11", "6.00"}},
		{"e12", &GridDistResult{Alpha1DPct: 4.1, AlphaGridPct: 1.1,
			Rows: []GridDistRow{{Procs: 64, Actual1D: 0.26, ActualGrid: 0.22}}},
			[]string{"E12", "1.1%"}},
		{"e13", &ScalabilityResult{Procs: 32, Rows: []ScalabilityRow{{Nodes: 106,
			AllocTime: time.Second, SchedTime: time.Millisecond}}},
			[]string{"E13", "106"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := c.r.String()
			if out == "" {
				t.Fatal("empty render")
			}
			for _, w := range c.want {
				if !strings.Contains(out, w) {
					t.Fatalf("render missing %q:\n%s", w, out)
				}
			}
		})
	}
}

// TestReportMarkdownOnSynthetic builds a Report by hand and checks the
// markdown renderer.
func TestReportMarkdownOnSynthetic(t *testing.T) {
	rep := &Report{
		Example3: &Example3Result{NaiveTime: 15.6, MixedTime: 14.3},
		Table1: &Table1Result{Fits: []trainsets.LoopFit{
			{Name: "Matrix Addition (64x64)"},
		}},
		Table2:      &Table2Result{},
		Fig6:        &Fig6Result{},
		Fig8:        &Fig8Result{Rows: []Fig8Row{{Program: "P", Procs: 64, SPMDSpeedup: 7.7, MPMDSpeedup: 23.5}}},
		Fig9:        &Fig9Result{Rows: []Fig9Row{{Program: "P", Procs: 16, Normalized: 1.06}}},
		Table3:      &Table3Result{Rows: []Table3Row{{Program: "Complex Matrix Multiply (64x64)", Procs: 16, PercentChange: 2.2}}},
		Rounding:    &AblationRoundingResult{},
		Transfer:    &AblationTransferResult{},
		Heuristic:   &AblationHeuristicResult{Rows: []AblationHeuristicRow{{GapPct: 36.3}}},
		Jitter:      &JitterResult{},
		Portability: &PortabilityResult{FittedTnNs: 6, TruthTnNs: 6},
		GridDist:    &GridDistResult{Alpha1DPct: 4.1, AlphaGridPct: 1.1},
	}
	md := rep.Markdown()
	for _, want := range []string{
		"# Live paper-vs-measured report",
		"| naive all-processors | 15.6 s | 15.60 s |",
		"23.50",
		"-2.6",   // paper Table 3 reference value
		"36.3 %", // heuristic gap
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
