package alloc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"paradigm/internal/convex"
	"paradigm/internal/costmodel"
	"paradigm/internal/errs"
	"paradigm/internal/mdg"
	"paradigm/internal/obs"
)

var cm5Fit = costmodel.Model{Transfer: costmodel.TransferParams{
	Tss: 777.56e-6, Tps: 486.98e-9, Tsr: 465.58e-6, Tpr: 426.25e-9, Tn: 0,
}}

// forkJoin builds the Figure-1 shape: N1 -> {N2, N3} with α high enough
// that running N2 and N3 concurrently on half the machine beats running
// them back-to-back on the whole machine.
func forkJoin(alpha float64) *mdg.Graph {
	var g mdg.Graph
	n1 := g.AddNode(mdg.Node{Name: "N1", Alpha: alpha, Tau: 4})
	n2 := g.AddNode(mdg.Node{Name: "N2", Alpha: alpha, Tau: 12})
	n3 := g.AddNode(mdg.Node{Name: "N3", Alpha: alpha, Tau: 12})
	stop := g.AddNode(mdg.Node{Name: "STOP"})
	g.AddEdge(n1, n2)
	g.AddEdge(n1, n3)
	g.AddEdge(n2, stop)
	g.AddEdge(n3, stop)
	return &g
}

func TestSingleChainUsesFullMachine(t *testing.T) {
	// With no functional parallelism and no transfers, Φ = C_p = Σ t^C_i,
	// minimized by giving every node all processors.
	var g mdg.Graph
	a := g.AddNode(mdg.Node{Name: "a", Alpha: 0.1, Tau: 1})
	b := g.AddNode(mdg.Node{Name: "b", Alpha: 0.1, Tau: 2})
	g.AddEdge(a, b)
	res, err := Solve(&g, costmodel.Model{}, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.P {
		if p < 7.5 {
			t.Fatalf("node %d allocated %v, want ~8 (result %+v)", i, p, res)
		}
	}
	lp := func(tau float64) float64 {
		return costmodel.LoopParams{Alpha: 0.1, Tau: tau}.Processing(8)
	}
	want := lp(1) + lp(2)
	if math.Abs(res.Phi-want) > 0.02*want {
		t.Fatalf("Phi = %v, want ~%v", res.Phi, want)
	}
}

func TestForkJoinSplitsProcessors(t *testing.T) {
	g := forkJoin(0.25)
	const procs = 4
	res, err := Solve(g, costmodel.Model{}, procs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The two parallel branches should share the machine roughly evenly
	// rather than each taking all 4 processors.
	if res.P[1] > 3.2 || res.P[2] > 3.2 {
		t.Fatalf("branches not split: P = %v", res.P)
	}
	if math.Abs(res.P[1]-res.P[2]) > 0.4 {
		t.Fatalf("symmetric branches got asymmetric allocation: %v vs %v", res.P[1], res.P[2])
	}
	// Mixed parallelism must beat the SPMD baseline.
	spmd, err := SPMD(g, costmodel.Model{}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phi >= spmd.Phi {
		t.Fatalf("convex allocation Phi %v should beat SPMD Phi %v", res.Phi, spmd.Phi)
	}
}

func TestAllocationsStayInBox(t *testing.T) {
	g := forkJoin(0.1)
	res, err := Solve(g, cm5Fit, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.P {
		if p < 1-1e-9 || p > 16+1e-9 {
			t.Fatalf("node %d allocation %v outside [1,16]", i, p)
		}
	}
	if res.Phi != math.Max(res.Ap, res.Cp) {
		t.Fatalf("Phi = %v, want max(%v, %v)", res.Phi, res.Ap, res.Cp)
	}
}

// TestSolverMatchesGridSearch compares the convex solution against a
// brute-force grid over allocations on a small graph with transfers.
func TestSolverMatchesGridSearch(t *testing.T) {
	var g mdg.Graph
	a := g.AddNode(mdg.Node{Name: "a", Alpha: 0.05, Tau: 0.5})
	b := g.AddNode(mdg.Node{Name: "b", Alpha: 0.3, Tau: 1})
	c := g.AddNode(mdg.Node{Name: "c", Alpha: 0.3, Tau: 1})
	d := g.AddNode(mdg.Node{Name: "d", Alpha: 0.05, Tau: 0.5})
	g.AddEdge(a, b, mdg.Transfer{Bytes: 32768, Kind: mdg.Transfer1D})
	g.AddEdge(a, c, mdg.Transfer{Bytes: 32768, Kind: mdg.Transfer2D})
	g.AddEdge(b, d, mdg.Transfer{Bytes: 32768, Kind: mdg.Transfer1D})
	g.AddEdge(c, d, mdg.Transfer{Bytes: 32768, Kind: mdg.Transfer1D})
	const procs = 8
	res, err := Solve(&g, cm5Fit, procs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive grid at quarter-processor resolution.
	best := math.Inf(1)
	grid := []float64{}
	for v := 1.0; v <= procs; v += 0.25 {
		grid = append(grid, v)
	}
	p := make([]float64, 4)
	for _, pa := range grid {
		p[0] = pa
		for _, pb := range grid {
			p[1] = pb
			for _, pc := range grid {
				p[2] = pc
				for _, pd := range grid {
					p[3] = pd
					phi, _, _, err := cm5Fit.Phi(&g, p, procs)
					if err != nil {
						t.Fatal(err)
					}
					if phi < best {
						best = phi
					}
				}
			}
		}
	}
	if res.Phi > best*1.01 {
		t.Fatalf("solver Phi %v worse than grid best %v", res.Phi, best)
	}
}

func TestIgnoreTransfersAblation(t *testing.T) {
	var g mdg.Graph
	a := g.AddNode(mdg.Node{Name: "a", Alpha: 0.05, Tau: 0.1})
	b := g.AddNode(mdg.Node{Name: "b", Alpha: 0.05, Tau: 0.1})
	g.AddEdge(a, b, mdg.Transfer{Bytes: 1 << 20, Kind: mdg.Transfer2D})
	full, err := Solve(&g, cm5Fit, 32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blind, err := Solve(&g, cm5Fit, 32, Options{IgnoreTransfers: true})
	if err != nil {
		t.Fatal(err)
	}
	// The transfer-blind allocation can be no better under the true model
	// (it optimizes the wrong objective); both report true-model Phi.
	if blind.Phi < full.Phi*(1-1e-6) {
		t.Fatalf("transfer-blind allocation (%v) beat transfer-aware (%v)", blind.Phi, full.Phi)
	}
}

func TestSPMDAllocation(t *testing.T) {
	g := forkJoin(0.2)
	res, err := SPMD(g, cm5Fit, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.P {
		if p != 16 {
			t.Fatalf("SPMD must allocate all processors, got %v", res.P)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	g := forkJoin(0.2)
	if _, err := Solve(g, cm5Fit, 0, Options{}); err == nil {
		t.Fatal("want error for procs=0")
	}
	if _, err := SPMD(g, cm5Fit, 0); err == nil {
		t.Fatal("want error for SPMD procs=0")
	}
	var cyc mdg.Graph
	a := cyc.AddNode(mdg.Node{})
	b := cyc.AddNode(mdg.Node{})
	cyc.AddEdge(a, b)
	cyc.AddEdge(b, a)
	if _, err := Solve(&cyc, cm5Fit, 4, Options{}); err == nil {
		t.Fatal("want error for cyclic graph")
	}
	if _, err := SPMD(&cyc, cm5Fit, 4); err == nil {
		t.Fatal("want error for cyclic SPMD")
	}
}

// TestOptimalityAgainstRandomPerturbations: no random feasible allocation
// beats the solver's Φ on random DAGs (global optimality, sampled).
func TestOptimalityAgainstRandomPerturbations(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		var g mdg.Graph
		n := 3 + rng.Intn(4)
		for i := 0; i < n; i++ {
			g.AddNode(mdg.Node{
				Alpha: rng.Float64() * 0.4,
				Tau:   0.1 + rng.Float64(),
			})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					kind := mdg.Transfer1D
					if rng.Intn(2) == 1 {
						kind = mdg.Transfer2D
					}
					g.AddEdge(mdg.NodeID(i), mdg.NodeID(j),
						mdg.Transfer{Bytes: 1024 + rng.Intn(65536), Kind: kind})
				}
			}
		}
		const procs = 16
		res, err := Solve(&g, cm5Fit, procs, Options{})
		if err != nil {
			return false
		}
		p := make([]float64, n)
		for trial := 0; trial < 60; trial++ {
			for i := range p {
				p[i] = 1 + rng.Float64()*(procs-1)
			}
			phi, _, _, err := cm5Fit.Phi(&g, p, procs)
			if err != nil {
				return false
			}
			if phi < res.Phi*(1-5e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveForkJoin16(b *testing.B) {
	g := forkJoin(0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(g, cm5Fit, 16, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMultiStartMatchesOrBeatsSingleStart(t *testing.T) {
	g := forkJoin(0.999)
	single, err := Solve(g, cm5Fit, 32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Solve(g, cm5Fit, 32, Options{MultiStart: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Start 0 of a multi-start run is the single-start point, so the
	// winner can never be worse than the single-start solution.
	if multi.Phi > single.Phi {
		t.Fatalf("multi-start Phi %v worse than single-start %v", multi.Phi, single.Phi)
	}
}

func TestMultiStartDeterministicAcrossWorkerWidths(t *testing.T) {
	g := forkJoin(0.99)
	solveAt := func(workers string) Result {
		t.Setenv("PARADIGM_WORKERS", workers)
		res, err := Solve(g, cm5Fit, 16, Options{MultiStart: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := solveAt("1")
	wide := solveAt("8")
	if serial.Phi != wide.Phi || serial.Ap != wide.Ap || serial.Cp != wide.Cp {
		t.Fatalf("multi-start Phi differs across worker widths: serial %v parallel %v", serial.Phi, wide.Phi)
	}
	for i := range serial.P {
		if serial.P[i] != wide.P[i] {
			t.Fatalf("P[%d] differs across worker widths: %v vs %v", i, serial.P[i], wide.P[i])
		}
	}
	if serial.Solver.Evals != wide.Solver.Evals || serial.Solver.Iters != wide.Solver.Iters {
		t.Fatalf("winning solver diagnostics differ across widths")
	}
}

// --- Graceful degradation (PR 3) -------------------------------------------

// failingStage returns an OnStage hook that fails every solve, the
// injection point for solver-breakdown tests.
func failingStage(stage int, temp float64, r convex.Result) error {
	return fmt.Errorf("injected solver breakdown")
}

func TestFallbackHeuristicOnSolverBreakdown(t *testing.T) {
	g := forkJoin(0.1)
	model := cm5Fit
	opts := Options{FallbackHeuristic: true}
	opts.Anneal.OnStage = failingStage
	rec := obs.NewRecorder()
	opts.Observer = rec
	res, err := SolveCtx(context.Background(), g, model, 8, opts)
	if err != nil {
		t.Fatalf("degraded solve failed: %v", err)
	}
	if math.IsNaN(res.Phi) || math.IsInf(res.Phi, 0) || res.Phi <= 0 {
		t.Fatalf("fallback Phi = %v", res.Phi)
	}
	// The heuristic must have been reached (retries use the same broken
	// anneal hook, so they fail too).
	sawFallback := false
	for _, e := range rec.Events() {
		if r, ok := e.(obs.Replan); ok && r.Stage == "heuristic-fallback" {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatal("no heuristic-fallback Replan event")
	}
	// Sanity: the fallback allocation is schedulable.
	for _, p := range res.P {
		if p < 1 || p > 8 {
			t.Fatalf("fallback allocation out of box: %v", res.P)
		}
	}
}

func TestNoFallbackPreservesError(t *testing.T) {
	g := forkJoin(0.1)
	opts := Options{}
	opts.Anneal.OnStage = failingStage
	if _, err := SolveCtx(context.Background(), g, cm5Fit, 8, opts); err == nil {
		t.Fatal("want solver error without FallbackHeuristic")
	}
}

func TestFallbackDoesNotMaskCancellation(t *testing.T) {
	g := forkJoin(0.1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveCtx(ctx, g, cm5Fit, 8, Options{FallbackHeuristic: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFallbackDoesNotMaskInfeasible(t *testing.T) {
	g := forkJoin(0.1)
	_, err := SolveCtx(context.Background(), g, cm5Fit, 0, Options{FallbackHeuristic: true})
	if !errors.Is(err, errs.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestFallbackOffPathUnchanged(t *testing.T) {
	// With a healthy solver, FallbackHeuristic must not change the result.
	g := forkJoin(0.1)
	a, err := SolveCtx(context.Background(), g, cm5Fit, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveCtx(context.Background(), g, cm5Fit, 8, Options{FallbackHeuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Phi != b.Phi {
		t.Fatalf("healthy solve changed under FallbackHeuristic: %v vs %v", a.Phi, b.Phi)
	}
	for i := range a.P {
		if a.P[i] != b.P[i] {
			t.Fatalf("allocation %d changed: %v vs %v", i, a.P[i], b.P[i])
		}
	}
}
