// Warm-start allocation cache (DESIGN.md §12): SolveCtx memoizes solved
// allocations in an alloccache.Cache keyed by the relabel-invariant
// canonical MDG hash, the cost-model fingerprint, the solve-shaping
// options, and the processor count. An exact hit replays the stored
// allocation byte-identically without compiling or solving. A near hit
// — same canonical program, different machine size — rescales the
// stored allocation into a log-space warm start that races against the
// cold starts with the highest tie-break rank (alloc.go, solveMulti).
//
// Entries live in canonical node order, so two graphs that differ only
// by node relabeling share one entry: allocations are permuted into
// canonical order on insert and permuted back through the querying
// graph's own canonicalizing permutation on replay.

package alloc

import (
	"fmt"
	"math"
	"strings"

	"paradigm/internal/alloccache"
	"paradigm/internal/costmodel"
	"paradigm/internal/mdg"
)

// cacheKeys derives the exact and near cache keys. The near key covers
// everything that shapes the solved allocation except the machine size:
// the canonical graph hash (node α/τ and edge transfers, names
// excluded), the transfer-parameter fingerprint, and the options that
// change which start wins (MultiStart, RaceTol, the anneal schedule).
// The exact key appends the processor count.
func cacheKeys(hash string, model costmodel.Model, procs int, opts Options) (exact, near string) {
	var b strings.Builder
	b.WriteString(hash)
	b.WriteByte('|')
	t := model.Transfer
	for _, v := range []float64{
		t.Tss, t.Tps, t.Tsr, t.Tpr, t.Tn,
		opts.RaceTol,
		opts.Anneal.StartTemp, opts.Anneal.EndTemp, opts.Anneal.Decay,
	} {
		fmt.Fprintf(&b, "%016x", math.Float64bits(v))
	}
	fmt.Fprintf(&b, "|ms%d|it%d|b%s", max(1, opts.MultiStart), opts.Anneal.Inner.MaxIter, opts.Backend)
	if opts.IgnoreTransfers {
		b.WriteString("|nt")
	}
	// Exact-only and seeded solves never share entries: a seeded solve's
	// stored allocation can embed the seed's basin, which an exact-only
	// caller must not replay.
	if opts.CacheExactOnly {
		b.WriteString("|xo")
	}
	near = b.String()
	exact = fmt.Sprintf("%s|p%d", near, procs)
	return exact, near
}

// entryFromResult permutes a solved allocation into canonical order for
// storage: perm[i] is the canonical rank of original node i.
func entryFromResult(res Result, perm []mdg.NodeID, procs int) alloccache.Entry {
	pc := make([]float64, len(res.P))
	for i, rank := range perm {
		pc[rank] = res.P[i]
	}
	return alloccache.Entry{PCanon: pc, Phi: res.Phi, Ap: res.Ap, Cp: res.Cp, Procs: procs}
}

// resultFromEntry replays a cached allocation into the querying graph's
// node order. Solver diagnostics are zero — nothing was solved.
func resultFromEntry(e alloccache.Entry, perm []mdg.NodeID) Result {
	res := Result{P: make([]float64, len(e.PCanon)), Phi: e.Phi, Ap: e.Ap, Cp: e.Cp}
	for i, rank := range perm {
		res.P[i] = e.PCanon[rank]
	}
	return res
}

// seedFromEntry rescales a near-hit allocation, solved for e.Procs
// processors, into a log-space warm start for a procs-processor solve:
// each p_i is scaled by the machine-size ratio and clamped into the new
// box [1, procs].
func seedFromEntry(e alloccache.Entry, perm []mdg.NodeID, procs int) []float64 {
	scale := float64(procs) / float64(e.Procs)
	seed := make([]float64, len(e.PCanon))
	for i, rank := range perm {
		p := min(max(e.PCanon[rank]*scale, 1), float64(procs))
		seed[i] = math.Log(p)
	}
	return seed
}
