package alloc

import (
	"context"
	"math"
	"testing"

	"paradigm/internal/mdg"
	"paradigm/internal/par"
)

func TestQuantizeOrdering(t *testing.T) {
	rs := newRaceState(0)
	cases := []struct{ lo, hi float64 }{
		{1, 1.001}, {1e-6, 2e-6}, {5, 50}, {1e9, 2e9},
	}
	for _, c := range cases {
		if rs.quantize(c.lo) > rs.quantize(c.hi) {
			t.Fatalf("quantize not monotone: Q(%v)=%d > Q(%v)=%d", c.lo, rs.quantize(c.lo), c.hi, rs.quantize(c.hi))
		}
	}
	// Values within a factor (1+tol) may tie; a full factor 2 may not.
	if rs.quantize(1) == rs.quantize(2) {
		t.Fatal("quantize collapsed a factor-2 gap")
	}
	if rs.quantize(math.NaN()) != math.MaxInt32 || rs.quantize(math.Inf(1)) != math.MaxInt32 {
		t.Fatal("NaN/+Inf must lose to everything")
	}
	if rs.quantize(-1) != math.MinInt32 || rs.quantize(0) != math.MinInt32 {
		t.Fatal("non-positive values must pin to the minimum bucket")
	}
}

func TestPackCandidateLexicographic(t *testing.T) {
	// Packed comparison must equal lexicographic (q, idx) comparison,
	// including the seed index -1.
	qs := []int32{math.MinInt32, -3, 0, 7, math.MaxInt32}
	idxs := []int{-1, 0, 1, 5, 1 << 20}
	for _, q1 := range qs {
		for _, i1 := range idxs {
			for _, q2 := range qs {
				for _, i2 := range idxs {
					wantLess := q1 < q2 || (q1 == q2 && i1 < i2)
					gotLess := packCandidate(q1, i1) < packCandidate(q2, i2)
					if wantLess != gotLess {
						t.Fatalf("pack(%d,%d) vs pack(%d,%d): lex %v, packed %v", q1, i1, q2, i2, wantLess, gotLess)
					}
				}
			}
		}
	}
}

func TestIncumbentAndBoundMonotone(t *testing.T) {
	rs := newRaceState(0)
	if rs.shouldAbandon(5) {
		t.Fatal("empty race state must not abandon")
	}
	rs.publishResult(rs.quantize(10), 2)
	if rs.shouldAbandon(5) {
		t.Fatal("no certified bound yet: must not abandon")
	}
	// A loose bound (far below the incumbent) proves nothing.
	rs.publishBound(1)
	if rs.shouldAbandon(5) {
		t.Fatal("loose bound must not abandon")
	}
	// A tight bound in the incumbent's bucket certifies it.
	rs.publishBound(10 * (1 - 1e-6))
	if !rs.shouldAbandon(5) {
		t.Fatal("tight bound + later index must abandon")
	}
	if rs.shouldAbandon(2) || rs.shouldAbandon(1) || rs.shouldAbandon(-1) {
		t.Fatal("the incumbent and earlier indices must never abandon")
	}
	// Weaker publications must not regress the state.
	rs.publishBound(0.5)
	rs.publishResult(rs.quantize(50), 0)
	if !rs.shouldAbandon(5) {
		t.Fatal("weaker publications regressed the race state")
	}
}

// TestCertifiedBoundIsGlobalLowerBound checks the racing certificate on
// real compiled problems: no certificate published from any point of any
// trajectory may exceed the best exact Φ any start ever achieves.
func TestCertifiedBoundIsGlobalLowerBound(t *testing.T) {
	graphs := map[string]*mdg.Graph{
		"forkJoin": forkJoin(0.9),
		"chain":    chainGraphForRace(),
	}
	for name, g := range graphs {
		prob, err := compile(g, cm5Fit, 16, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Gather every start's exact Φ without racing.
		starts := prob.startPoints(6)
		bestPhi := math.Inf(1)
		for i, x0 := range starts {
			r, _, err := prob.solveFromRace(context.Background(), i, x0, Options{}.Anneal, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			bestPhi = math.Min(bestPhi, r.Phi)
		}
		// Certify from arbitrary points (starts and midway blends) at
		// several temperatures; every bound must stay below bestPhi.
		ev := prob.pool.Get()
		defer prob.pool.Put(ev)
		grad := make([]float64, len(prob.upper))
		for _, x0 := range starts {
			for _, temp := range []float64{1e-1, 1e-3, 1e-6} {
				l := prob.certifyBound(ev, x0, temp, grad)
				if l > bestPhi*(1+1e-9) {
					t.Fatalf("%s: certificate %v exceeds best achievable Φ %v (temp %v)", name, l, bestPhi, temp)
				}
			}
		}
	}
}

func chainGraphForRace() *mdg.Graph {
	var g mdg.Graph
	a := g.AddNode(mdg.Node{Name: "a", Alpha: 0.85, Tau: 3})
	b := g.AddNode(mdg.Node{Name: "b", Alpha: 0.6, Tau: 7})
	c := g.AddNode(mdg.Node{Name: "c", Alpha: 0.95, Tau: 2})
	g.AddEdge(a, b, mdg.Transfer{Bytes: 4096, Kind: mdg.Transfer2D})
	g.AddEdge(b, c, mdg.Transfer{Bytes: 1024, Kind: mdg.Transfer1D})
	return &g
}

// TestRacingDeterministicAcrossWidths is the tentpole property test: the
// racing multi-start must return byte-identical allocations — solver
// Iters/Evals included — at any worker width, seed or no seed.
func TestRacingDeterministicAcrossWidths(t *testing.T) {
	graphs := map[string]*mdg.Graph{
		"forkJoin": forkJoin(0.9),
		"chain":    chainGraphForRace(),
	}
	for name, g := range graphs {
		for _, ms := range []int{2, 4, 7} {
			var base Result
			for wi, width := range []string{"1", "4", ""} {
				t.Setenv(par.EnvWorkers, width)
				res, err := Solve(g, cm5Fit, 16, Options{MultiStart: ms})
				if err != nil {
					t.Fatal(err)
				}
				if wi == 0 {
					base = res
					continue
				}
				if res.Phi != base.Phi || res.Ap != base.Ap || res.Cp != base.Cp {
					t.Fatalf("%s ms=%d width=%q: Φ/A_p/C_p differ: %+v vs %+v", name, ms, width, res, base)
				}
				for i := range res.P {
					if res.P[i] != base.P[i] {
						t.Fatalf("%s ms=%d width=%q: P[%d] = %v vs %v", name, ms, width, i, res.P[i], base.P[i])
					}
				}
				if res.Solver.Iters != base.Solver.Iters || res.Solver.Evals != base.Solver.Evals {
					t.Fatalf("%s ms=%d width=%q: solver trajectory differs: %d/%d vs %d/%d",
						name, ms, width, res.Solver.Iters, res.Solver.Evals, base.Solver.Iters, base.Solver.Evals)
				}
			}
		}
	}
}

// TestRacingSeedDeterministicAcrossWidths covers the warm-start path: a
// seeded race must also be width-independent.
func TestRacingSeedDeterministicAcrossWidths(t *testing.T) {
	g := forkJoin(0.9)
	prob, err := compile(g, cm5Fit, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]float64, len(prob.upper))
	for i := range seed {
		seed[i] = 0.7 * prob.upper[i]
	}
	var base Result
	for wi, width := range []string{"1", "4", ""} {
		t.Setenv(par.EnvWorkers, width)
		res, err := prob.solveMulti(context.Background(), 0, 4, seed, Options{MultiStart: 4})
		if err != nil {
			t.Fatal(err)
		}
		if wi == 0 {
			base = res
			continue
		}
		if res.Phi != base.Phi {
			t.Fatalf("width %q: seeded Φ %v vs %v", width, res.Phi, base.Phi)
		}
		for i := range res.P {
			if res.P[i] != base.P[i] {
				t.Fatalf("width %q: seeded P[%d] differs", width, i)
			}
		}
	}
}

// TestRacePruneCannotChangeWinner hammers the soundness claim: against
// run-to-completion selection with the same quantization, racing returns
// the same start's result.
func TestRacePruneCannotChangeWinner(t *testing.T) {
	for _, alpha := range []float64{0.5, 0.8, 0.95} {
		g := forkJoin(alpha)
		prob, err := compile(g, cm5Fit, 32, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Reference: run every start to completion, select by (Q, idx).
		rs := newRaceState(0)
		starts := prob.startPoints(5)
		bestQ, bestIdx := int32(math.MaxInt32), -2
		var want Result
		for i, x0 := range starts {
			r, _, err := prob.solveFromRace(context.Background(), i, x0, Options{}.Anneal, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if q := rs.quantize(r.Phi); q < bestQ || (q == bestQ && i < bestIdx) {
				bestQ, bestIdx, want = q, i, r
			}
		}
		got, err := prob.solveMulti(context.Background(), 0, 5, nil, Options{MultiStart: 5})
		if err != nil {
			t.Fatal(err)
		}
		if got.Phi != want.Phi {
			t.Fatalf("alpha %v: racing Φ %v != run-to-completion Φ %v (start %d)", alpha, got.Phi, want.Phi, bestIdx)
		}
		for i := range got.P {
			if got.P[i] != want.P[i] {
				t.Fatalf("alpha %v: racing P[%d] differs from run-to-completion", alpha, i)
			}
		}
	}
}
