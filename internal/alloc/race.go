// Racing multi-start: concurrent annealed solves that share a certified
// global lower bound on Φ and abandon trajectories that provably cannot
// win, without ever changing which start wins.
//
// Determinism is the hard requirement (DESIGN.md §12): the selected
// allocation must be byte-identical whether the starts run on one worker
// or sixteen. Pruning on observed Φ values alone is unsound — a
// trajectory that looks bad mid-anneal can still finish first — so the
// race prunes only against a certificate:
//
//	Φ* ≥ L = f_T(x) − G − S(T)
//
// where f_T(x) is the smoothed objective at any trajectory's current
// point, G = Σ_i worst-case first-order decrease of f_T over the box
// (convexity: f_T(y) ≥ f_T(x) + ∇f_T(x)·(y−x)), and S(T) bounds the
// log-sum-exp smoothing gap uniformly over the box via expr.TempGapBound
// (exact ≤ f_T ≤ exact + S(T)). L lower-bounds the exact Φ of EVERY
// trajectory's final answer, so it is publishable from any of them.
//
// The winner is the lexicographic minimum of (Q(Φ), startIdx) over
// completed starts, with Q(φ) = ⌊ln φ / ln(1+RaceTol)⌋ a relative
// quantization. A start j abandons only when an incumbent (Q_b, i_b)
// exists with Q_b ≤ Q(L·(1−ε)) and j > i_b: the incumbent is certified
// within one quantum of the global optimum, and j's eventual quantized
// value — which cannot be below Q(L') — would lose the index tie-break.
// A short induction shows the overall winner never satisfies this
// predicate, so pruning removes only provable losers and the selection
// is identical at any worker width and any interleaving.
package alloc

import (
	"errors"
	"math"
	"sync/atomic"

	"paradigm/internal/expr"
	"paradigm/internal/obs"
)

// errRaceAbandoned marks a start pruned by the racing bound. It is a
// sentinel, not a failure: the runner converts it into "no candidate"
// instead of propagating it, so par.Map's first-error cancellation never
// fires for an abandoned start.
var errRaceAbandoned = errors.New("alloc: racing start abandoned")

// defaultRaceTol is the relative quantization of the winner selection
// when Options.RaceTol is unset: Φ values within one part in 5000 of
// each other count as ties, broken by start index.
const defaultRaceTol = 2e-4

// boundSafety shrinks a certified lower bound before quantizing it, so
// float rounding in the certificate arithmetic can never promote a bound
// past the quantization boundary it belongs under.
const boundSafety = 1e-9

// raceState is the shared blackboard of one racing solve: the best
// completed candidate (for selection) and the best certified global
// lower bound (for pruning). Both evolve monotonically, so late reads
// only ever see equal-or-stronger facts — the soundness argument does
// not depend on timing.
type raceState struct {
	logTol float64
	// incumbent packs (quantized Φ, start index) of the best completed
	// candidate into one word: (q+2³¹)<<32 | (idx+1). Both components
	// are order-preserving, so integer min is lexicographic min.
	// math.MaxUint64 means "none yet".
	incumbent atomic.Uint64
	// lbound holds Float64bits of the largest certified global lower
	// bound on the exact Φ (init −Inf).
	lbound atomic.Uint64
}

const noIncumbent = math.MaxUint64

func newRaceState(tol float64) *raceState {
	if tol <= 0 {
		tol = defaultRaceTol
	}
	rs := &raceState{logTol: math.Log1p(tol)}
	rs.incumbent.Store(noIncumbent)
	rs.lbound.Store(math.Float64bits(math.Inf(-1)))
	return rs
}

// quantize maps an exact Φ to its selection bucket. NaN/+Inf lose to
// everything; non-positive values (impossible for real cost models, but
// cheap to pin down) win against everything positive.
func (rs *raceState) quantize(phi float64) int32 {
	if math.IsNaN(phi) || math.IsInf(phi, 1) {
		return math.MaxInt32
	}
	if phi <= 0 {
		return math.MinInt32
	}
	q := math.Floor(math.Log(phi) / rs.logTol)
	switch {
	case q >= math.MaxInt32:
		return math.MaxInt32
	case q <= math.MinInt32:
		return math.MinInt32
	}
	return int32(q)
}

func packCandidate(q int32, idx int) uint64 {
	return uint64(uint32(int64(q)+1<<31))<<32 | uint64(uint32(idx+1))
}

// publishResult folds a completed candidate into the incumbent
// (lexicographic min over (Q, idx)).
func (rs *raceState) publishResult(q int32, idx int) {
	packed := packCandidate(q, idx)
	for {
		cur := rs.incumbent.Load()
		if packed >= cur {
			return
		}
		if rs.incumbent.CompareAndSwap(cur, packed) {
			return
		}
	}
}

// publishBound folds a certified global lower bound (monotone max).
// Non-finite bounds (an unbounded TempGapBound, a −Inf certificate) are
// dropped.
func (rs *raceState) publishBound(l float64) {
	if math.IsNaN(l) || math.IsInf(l, 0) {
		return
	}
	for {
		cur := rs.lbound.Load()
		if l <= math.Float64frombits(cur) {
			return
		}
		if rs.lbound.CompareAndSwap(cur, math.Float64bits(l)) {
			return
		}
	}
}

// shouldAbandon reports whether start idx is a certified loser: an
// incumbent exists whose quantized Φ already matches the quantized
// certified lower bound (it cannot be beaten, only tied) and idx loses
// the tie-break. Reads two atomics — cheap enough for the solver's
// StopCheck poll.
func (rs *raceState) shouldAbandon(idx int) bool {
	inc := rs.incumbent.Load()
	if inc == noIncumbent {
		return false
	}
	l := math.Float64frombits(rs.lbound.Load())
	if math.IsInf(l, -1) {
		return false
	}
	qBound := rs.quantize(l - boundSafety*math.Abs(l))
	qBest := int32(int64(inc>>32) - 1<<31)
	bestIdx := int(uint32(inc)) - 1
	return qBest <= qBound && idx > bestIdx
}

// certifyBound computes the global lower bound L = f_T(x) − G − S(T)
// from one fused value+gradient evaluation at x. G is the exact
// worst-case first-order decrease over the box (per coordinate, the
// gradient sign picks the far face), which also makes active box
// constraints free: a coordinate pinned at its optimal face contributes
// nothing. S(T) = expr.TempGapBound is the box-uniform smoothing gap, so
// min over the box of the exact Φ is at least min f_T − S(T) ≥ L.
func (p *problem) certifyBound(ev *expr.Evaluator, x []float64, temp float64, grad []float64) float64 {
	f := ev.EvalGrad(p.phi, x, temp, grad)
	decrease := 0.0
	for i := range x {
		if g := grad[i]; g > 0 {
			decrease += g * (x[i] - p.lower[i])
		} else {
			decrease -= g * (p.upper[i] - x[i])
		}
	}
	return f - decrease - p.eg.TempGapBound(p.phi, temp, p.lower, p.upper)
}

// eventBuffer queues obs events from one racing start so that only the
// (deterministic) winner's trajectory reaches the real observer — folded
// metrics stay byte-identical at any worker width even though pruning
// points are timing-dependent.
type eventBuffer struct{ events []obs.Event }

// Observe implements obs.Observer.
func (b *eventBuffer) Observe(e obs.Event) { b.events = append(b.events, e) }

func (b *eventBuffer) flush(o obs.Observer) {
	if b == nil || o == nil {
		return
	}
	for _, e := range b.events {
		o.Observe(e)
	}
}
