package alloc

import (
	"math/rand"
	"testing"

	"paradigm/internal/mdg"
	"paradigm/internal/par"
)

// layeredGraph builds a deterministic layered DAG: layers × width nodes,
// each node wired to 1-2 nodes of the next layer.
func layeredGraph(layers, width int, seed int64) *mdg.Graph {
	rng := rand.New(rand.NewSource(seed))
	var g mdg.Graph
	ids := make([][]mdg.NodeID, layers)
	for l := 0; l < layers; l++ {
		ids[l] = make([]mdg.NodeID, width)
		for w := 0; w < width; w++ {
			ids[l][w] = g.AddNode(mdg.Node{
				Alpha: 0.1 + 0.8*rng.Float64(),
				Tau:   1e-3 + 1e-2*rng.Float64(),
			})
		}
	}
	for l := 0; l+1 < layers; l++ {
		for w := 0; w < width; w++ {
			for _, dst := range []int{w, (w + 1) % width}[:1+rng.Intn(2)] {
				g.AddEdge(ids[l][w], ids[l+1][dst], mdg.Transfer{
					Bytes: 256 << rng.Intn(6),
					Kind:  mdg.Transfer1D,
				})
			}
		}
	}
	return &g
}

func TestADMMPartitionCoversAllNodes(t *testing.T) {
	g := layeredGraph(6, 5, 3)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 7} {
		parts := admmPartition(g, order, k)
		covered := make([]bool, g.NumNodes())
		for _, nodes := range parts {
			for i := 1; i < len(nodes); i++ {
				if nodes[i-1] >= nodes[i] {
					t.Fatalf("k=%d: subgraph nodes not strictly ascending: %v", k, nodes)
				}
			}
			for _, v := range nodes {
				covered[v] = true
			}
		}
		for v, ok := range covered {
			if !ok {
				t.Fatalf("k=%d: node %d in no subgraph", k, v)
			}
		}
	}
}

func TestADMMMatchesAnnealOnSmallGraphs(t *testing.T) {
	graphs := map[string]*mdg.Graph{
		"forkJoin": forkJoin(0.9),
		"chain":    chainGraphForRace(),
		"layered":  layeredGraph(4, 3, 5),
	}
	for name, g := range graphs {
		anneal, err := Solve(g, cm5Fit, 16, Options{})
		if err != nil {
			t.Fatal(err)
		}
		admm, err := Solve(g, cm5Fit, 16, Options{Backend: "admm"})
		if err != nil {
			t.Fatalf("%s: admm: %v", name, err)
		}
		if admm.Backend != "admm" {
			t.Fatalf("%s: backend %q", name, admm.Backend)
		}
		if admm.Phi > anneal.Phi*1.02 {
			t.Fatalf("%s: ADMM Φ %v vs anneal Φ %v (ratio %v)", name, admm.Phi, anneal.Phi, admm.Phi/anneal.Phi)
		}
	}
}

func TestADMMDeterministicAcrossWidths(t *testing.T) {
	g := layeredGraph(5, 4, 7)
	for _, skipPolish := range []bool{false, true} {
		var base Result
		for wi, width := range []string{"1", "4", ""} {
			t.Setenv(par.EnvWorkers, width)
			res, err := Solve(g, cm5Fit, 16, Options{
				Backend: "admm",
				ADMM:    ADMMOptions{Subgraphs: 3, SkipPolish: skipPolish},
			})
			if err != nil {
				t.Fatal(err)
			}
			if wi == 0 {
				base = res
				continue
			}
			if res.Phi != base.Phi {
				t.Fatalf("polish=%v width %q: Φ %v vs %v", !skipPolish, width, res.Phi, base.Phi)
			}
			for i := range res.P {
				if res.P[i] != base.P[i] {
					t.Fatalf("polish=%v width %q: P[%d] = %v vs %v", !skipPolish, width, i, res.P[i], base.P[i])
				}
			}
		}
	}
}

func TestADMMAcceptsSeed(t *testing.T) {
	g := forkJoin(0.9)
	prob, err := compile(g, cm5Fit, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]float64, len(prob.upper))
	for i := range seed {
		seed[i] = 0.6 * prob.upper[i]
	}
	res, err := prob.solveADMM(t.Context(), seed, Options{Backend: "admm"})
	if err != nil {
		t.Fatal(err)
	}
	if !isFinite(res.Phi) || res.Phi <= 0 {
		t.Fatalf("seeded ADMM Φ = %v", res.Phi)
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	if _, err := Solve(forkJoin(0.9), cm5Fit, 8, Options{Backend: "simplex"}); err == nil {
		t.Fatal("unknown backend must error")
	}
}
