// Consensus-ADMM decomposition backend (DESIGN.md §12): instead of one
// annealed solve over all n log-processor variables, the MDG is split
// into overlapping subgraphs — contiguous blocks of the topological
// order plus their one-hop boundary — and each subgraph's own convex
// program is solved in parallel with a proximal term pulling its copy
// of every node toward the global consensus. Shared nodes (those in
// more than one subgraph) are reconciled by the standard over-relaxed
// consensus update (Boyd et al., Distributed Optimization via ADMM,
// §7.1-7.2): the z-update averages the local copies, the scaled duals u
// accumulate disagreement, and the loop stops when the primal and dual
// residuals fall under the usual absolute+relative tolerances (§3.3).
//
// The local objectives sum subgraph Φs rather than reproducing the
// global max structure, so the consensus point is an approximation; the
// loop therefore tracks the exact full-graph Φ of every consensus
// iterate and keeps the best ("incumbent"), and by default a final
// polish runs one full-problem annealed solve seeded at the incumbent.
// Smoothing anneals across outer iterations — each round's local solves
// run at a geometrically shrinking temperature, warm-started at the
// previous round's local solutions.
//
// Determinism: the partition derives from the deterministic topological
// order, local solves run under par.Map with per-subgraph state (no
// shared scratch), and the z/u updates walk nodes in fixed ascending
// order — so the backend returns identical allocations at any worker
// width.

package alloc

import (
	"context"
	"fmt"
	"math"
	"sort"

	"paradigm/internal/convex"
	"paradigm/internal/mdg"
	"paradigm/internal/par"
)

// ADMMOptions tunes the consensus-ADMM backend. The zero value selects
// robust defaults.
type ADMMOptions struct {
	// Subgraphs is the number of overlapping blocks the MDG is split
	// into. <= 0 selects n/64 clamped to [2, 16]; values above the node
	// count are clamped down.
	Subgraphs int
	// Rho is the augmented-Lagrangian penalty weight (<= 0: 1).
	Rho float64
	// Alpha is the over-relaxation factor; values in [1.5, 1.8]
	// typically accelerate consensus (<= 0: 1.6).
	Alpha float64
	// MaxIters caps consensus iterations (<= 0: 30).
	MaxIters int
	// AbsTol and RelTol are the primal/dual residual stopping
	// tolerances (<= 0: 1e-4 and 1e-3).
	AbsTol, RelTol float64
	// SkipPolish disables the final full-problem annealed solve seeded
	// at the best consensus iterate. Polishing costs one single-start
	// solve but recovers the exact-solver solution quality; skip it only
	// when raw decomposition throughput matters more than the last few
	// percent of Φ.
	SkipPolish bool
}

func (a ADMMOptions) withDefaults(n int) ADMMOptions {
	if a.Subgraphs <= 0 {
		a.Subgraphs = max(2, min(16, n/64))
	}
	a.Subgraphs = max(1, min(a.Subgraphs, n))
	if a.Rho <= 0 {
		a.Rho = 1
	}
	if a.Alpha <= 0 {
		a.Alpha = 1.6
	}
	if a.MaxIters <= 0 {
		a.MaxIters = 30
	}
	if a.AbsTol <= 0 {
		a.AbsTol = 1e-4
	}
	if a.RelTol <= 0 {
		a.RelTol = 1e-3
	}
	return a
}

// admmSub is one subgraph's local state: its compiled convex program,
// the ascending global node ids it covers (local index = position), and
// its local primal/dual copies.
type admmSub struct {
	prob  *problem
	nodes []int
	x, u  []float64
}

// admmPartition splits the topological order into k contiguous blocks
// and widens each with its one-hop boundary, returning each subgraph's
// global node ids in ascending order.
func admmPartition(g *mdg.Graph, order []mdg.NodeID, k int) [][]int {
	n := len(order)
	blocks := make([][]int, 0, k)
	for b := 0; b < k; b++ {
		lo, hi := b*n/k, (b+1)*n/k
		if lo >= hi {
			continue
		}
		in := make(map[int]bool, 2*(hi-lo))
		for _, v := range order[lo:hi] {
			in[int(v)] = true
			for _, p := range g.Preds(v) {
				in[int(p)] = true
			}
			for _, s := range g.Succs(v) {
				in[int(s)] = true
			}
		}
		nodes := make([]int, 0, len(in))
		for v := range in {
			nodes = append(nodes, v)
		}
		// map iteration order is random; ascending global id is the
		// canonical local order.
		sortInts(nodes)
		blocks = append(blocks, nodes)
	}
	return blocks
}

func sortInts(a []int) { sort.Ints(a) }

// subMDG builds the induced sub-MDG over the given ascending global
// node ids, keeping every edge with both endpoints inside.
func subMDG(g *mdg.Graph, nodes []int) *mdg.Graph {
	local := make(map[int]mdg.NodeID, len(nodes))
	var sg mdg.Graph
	for _, v := range nodes {
		local[v] = sg.AddNode(mdg.Node{Alpha: g.Nodes[v].Alpha, Tau: g.Nodes[v].Tau})
	}
	for _, e := range g.Edges {
		lf, okF := local[int(e.From)]
		lt, okT := local[int(e.To)]
		if okF && okT {
			sg.AddEdge(lf, lt, e.Transfers...)
		}
	}
	return &sg
}

// solveADMM runs the consensus-ADMM decomposition on the compiled
// problem. seed, when non-nil, initializes the consensus point (the
// warm-start cache's near-hit path works for this backend too).
func (p *problem) solveADMM(ctx context.Context, seed []float64, opts Options) (Result, error) {
	n := p.g.NumNodes()
	ao := opts.ADMM.withDefaults(n)
	order, err := p.g.TopoOrder()
	if err != nil {
		return Result{}, err
	}

	parts := admmPartition(p.g, order, ao.Subgraphs)
	subs := make([]*admmSub, len(parts))
	copies := make([]float64, n)
	for k, nodes := range parts {
		sp, cerr := compile(subMDG(p.g, nodes), p.model, p.procs, Options{IgnoreTransfers: opts.IgnoreTransfers})
		if cerr != nil {
			return Result{}, fmt.Errorf("alloc: admm subgraph %d: %w", k, cerr)
		}
		subs[k] = &admmSub{
			prob:  sp,
			nodes: nodes,
			x:     make([]float64, len(nodes)),
			u:     make([]float64, len(nodes)),
		}
		for _, v := range nodes {
			copies[v]++
		}
	}

	// Consensus point: the seed, else the box midpoint (start 0 of the
	// anneal backend, so both backends begin from the same guess).
	z := make([]float64, n)
	if seed != nil {
		copy(z, seed)
		for i := range z {
			z[i] = min(max(z[i], p.lower[i]), p.upper[i])
		}
	} else {
		for i := range z {
			z[i] = 0.5 * p.upper[i]
		}
	}
	for _, s := range subs {
		for i, v := range s.nodes {
			s.x[i] = z[v]
		}
	}

	exactPhi := func(zz []float64) (Result, error) {
		r := Result{P: make([]float64, n)}
		for i := range r.P {
			r.P[i] = math.Exp(zz[i])
		}
		var perr error
		r.Phi, r.Ap, r.Cp, perr = p.model.Phi(p.g, r.P, p.procs)
		return r, perr
	}

	best, err := exactPhi(z)
	if err != nil {
		return Result{}, err
	}
	bestZ := append([]float64(nil), z...)

	// Outer-iteration smoothing schedule: local solves start at ~5% of
	// the incumbent objective and anneal geometrically as consensus
	// tightens.
	temp := 0.05 * best.Phi
	if !(temp > 0) || math.IsInf(temp, 0) {
		temp = 1
	}
	endTemp := temp * 1e-4

	totalCopies := 0.0
	for _, c := range copies {
		totalCopies += c
	}
	sqrtN := math.Sqrt(totalCopies)

	for iter := 0; iter < ao.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		// x-update: each subgraph minimizes its smoothed Φ plus the
		// proximal pull toward v = z - u, warm-started at its previous
		// local solution. Subgraphs race on the worker pool but touch
		// only their own state, so the outcome is width-independent.
		localTemp := temp
		if _, err := par.Map(ctx, len(subs), func(ctx context.Context, k int) (struct{}, error) {
			s := subs[k]
			sp := s.prob
			ev := sp.pool.Get()
			defer sp.pool.Put(ev)
			v := make([]float64, len(s.nodes))
			for i, g := range s.nodes {
				v[i] = z[g] - s.u[i]
			}
			obj := convex.TempFunc(func(t float64, x, grad []float64) float64 {
				var f float64
				if grad == nil {
					f = ev.Eval(sp.phi, x, t)
				} else {
					f = ev.EvalGrad(sp.phi, x, t, grad)
				}
				for i := range x {
					d := x[i] - v[i]
					f += 0.5 * ao.Rho * d * d
					if grad != nil {
						grad[i] += ao.Rho * d
					}
				}
				return f
			})
			sol, serr := convex.MinimizeAnnealed(obj, sp.lower, sp.upper, s.x, convex.AnnealOptions{
				StartTemp: localTemp, EndTemp: localTemp,
				Inner: convex.Options{MaxIter: 500},
			})
			if serr != nil {
				return struct{}{}, fmt.Errorf("alloc: admm subgraph %d: %w", k, serr)
			}
			copy(s.x, sol.X)
			return struct{}{}, nil
		}); err != nil {
			return Result{}, err
		}

		// z-update: over-relaxed average of the local copies, projected
		// into the box. Fixed ascending-order accumulation keeps the
		// floating-point result independent of solve timing.
		zOld := append([]float64(nil), z...)
		sum := make([]float64, n)
		for _, s := range subs {
			for i, g := range s.nodes {
				xhat := ao.Alpha*s.x[i] + (1-ao.Alpha)*zOld[g]
				sum[g] += xhat + s.u[i]
			}
		}
		for g := 0; g < n; g++ {
			z[g] = min(max(sum[g]/copies[g], p.lower[g]), p.upper[g])
		}

		// u-update and residuals (Boyd §3.3): r stacks per-copy
		// disagreement x_k - z, s is ρ·(z - z_old) per copy.
		var r2, s2, xNorm2, zNorm2, uNorm2 float64
		for _, s := range subs {
			for i, g := range s.nodes {
				xhat := ao.Alpha*s.x[i] + (1-ao.Alpha)*zOld[g]
				s.u[i] += xhat - z[g]
				d := s.x[i] - z[g]
				r2 += d * d
				xNorm2 += s.x[i] * s.x[i]
				zNorm2 += z[g] * z[g]
				uNorm2 += s.u[i] * s.u[i]
			}
		}
		for g := 0; g < n; g++ {
			dz := z[g] - zOld[g]
			s2 += copies[g] * dz * dz
		}
		s2 *= ao.Rho * ao.Rho

		cand, perr := exactPhi(z)
		if perr != nil {
			return Result{}, perr
		}
		if cand.Phi < best.Phi {
			best = cand
			copy(bestZ, z)
		}

		epsPri := sqrtN*ao.AbsTol + ao.RelTol*math.Sqrt(max(xNorm2, zNorm2))
		epsDual := sqrtN*ao.AbsTol + ao.RelTol*ao.Rho*math.Sqrt(uNorm2)
		if math.Sqrt(r2) <= epsPri && math.Sqrt(s2) <= epsDual {
			break
		}
		temp = max(temp*0.5, endTemp)
	}

	if !ao.SkipPolish {
		res, perr := p.solveFrom(ctx, 0, bestZ, opts.Anneal, opts.Observer)
		if perr == nil && isFinite(res.Phi) && res.Phi <= best.Phi {
			res.Backend = BackendADMM
			return res, nil
		}
		if perr != nil && ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
	}
	best.Backend = BackendADMM
	return best, nil
}
