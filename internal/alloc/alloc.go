// Package alloc implements the MDG allocation algorithm of Section 2.
//
// Given an MDG with n nodes and a p-processor system, it chooses
// continuous processor counts p_i ∈ [1, p] minimizing
//
//	Φ = max(A_p, C_p)
//
// where A_p = (1/p)·Σ T_i·p_i is the processor-time-area lower bound and
// C_p = y_STOP with y_i = max over predecessors m of (y_m + t^D_mi) + T_i
// is the critical-path time; T_i combines the receive costs from all
// predecessors, the Amdahl processing cost, and the send costs to all
// successors (internal/costmodel).
//
// Because every cost term is posynomial (Lemmas 1-2), the substitution
// x_i = ln p_i makes the problem convex, so the minimum found is global —
// the property that distinguishes this paper from its heuristic
// predecessors. The max terms are smoothed by log-sum-exp and annealed to
// the exact max (internal/convex.MinimizeAnnealed); the reported Φ, A_p
// and C_p are re-evaluated with exact (hard-max) arithmetic at the
// solution point.
package alloc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"paradigm/internal/alloccache"
	"paradigm/internal/convex"
	"paradigm/internal/costmodel"
	"paradigm/internal/errs"
	"paradigm/internal/expr"
	"paradigm/internal/mdg"
	"paradigm/internal/obs"
	"paradigm/internal/par"
)

// Options tunes Solve. The zero value selects robust defaults.
type Options struct {
	// Anneal configures the temperature schedule and inner minimizer.
	// The start temperature is additionally scaled by the magnitude of
	// the objective at the start point so that problems measured in
	// milliseconds and in hours anneal alike.
	Anneal convex.AnnealOptions
	// IgnoreTransfers zeroes the data-transfer costs in the objective
	// (the Prasanna-Agarwal-style ablation A3 of DESIGN.md). The reported
	// Φ/A_p/C_p still use the full model.
	IgnoreTransfers bool
	// MultiStart > 1 runs that many annealed solves from deterministic
	// start points and keeps the lowest exact Φ up to the RaceTol
	// quantization, breaking ties by the lowest start index. Start 0 is
	// the classic box midpoint, so MultiStart <= 1 reproduces the
	// single-start behaviour exactly. The starts race concurrently on
	// the par worker pool with pooled evaluators, sharing a certified
	// lower bound that abandons provable losers early (race.go); the
	// selected result is identical at any pool width.
	MultiStart int
	// RaceTol is the relative quantization of the racing multi-start
	// winner selection: Φ values within a factor (1+RaceTol) of each
	// other are ties, broken by the lowest start index. It is also the
	// pruning threshold — a start abandons once an earlier-indexed
	// completed start is certified within one quantum of the global
	// optimum. <= 0 selects the default 2e-4. Only consulted when more
	// than one start runs.
	RaceTol float64
	// Backend selects the solve strategy: BackendAuto or BackendAnneal
	// runs the racing annealed multi-start (the default); BackendADMM
	// runs the consensus-ADMM decomposition (admm.go), which partitions
	// the MDG into overlapping subgraphs solved in parallel and agrees on
	// shared nodes — faster on large graphs, approximate within the
	// consensus tolerance. Any other value fails option validation with
	// errs.ErrUnknownBackend. Untyped string literals still compile
	// (Backend is a string type); ParseBackend covers CLI flags.
	Backend Backend
	// ADMM tunes the "admm" backend; ignored otherwise.
	ADMM ADMMOptions
	// Cache, when non-nil, memoizes solved allocations keyed by the
	// relabel-invariant canonical MDG hash, cost model, solve options and
	// processor count (cache.go). An exact hit replays the stored
	// allocation byte-identically without solving (Result.Solver is
	// zero); a hit on the same canonical graph at a different machine
	// size seeds the race with a rescaled warm start. Lookups and
	// inserts are safe for concurrent solves sharing one cache.
	Cache *alloccache.Cache
	// CacheExactOnly restricts the cache to exact-hit replay: near hits
	// never seed the race, so the solved allocation is a pure function
	// of (graph, model, options, procs) regardless of what the cache
	// happens to hold. Long-lived services that journal result digests
	// and must reproduce them byte-identically across restarts (with a
	// cold cache) set this; one-shot CLI runs keep the seeded speedup.
	CacheExactOnly bool
	// Observer, when non-nil, receives one obs.SolverStage event per
	// annealed temperature stage (per start), one obs.AllocCache event
	// per cache lookup, and one obs.AllocDone event per completed solve.
	// Nil costs one pointer comparison per stage.
	Observer obs.Observer
	// FallbackHeuristic enables graceful degradation: when the annealed
	// convex solve fails or returns a non-finite Φ, SolveCtx retries
	// from widened perturbed multi-starts (bounded), then falls back to
	// the greedy critical-path heuristic (SolveHeuristic). Each
	// degradation step emits one obs.Replan event to Observer.
	// Cancellation and infeasible/invalid inputs never degrade — they
	// return immediately.
	FallbackHeuristic bool
}

// Result reports one allocation.
type Result struct {
	// P holds the continuous per-node allocations, indexed by NodeID.
	P []float64
	// Phi, Ap, Cp are the exact objective values at P under the full
	// cost model: Phi = max(Ap, Cp).
	Phi, Ap, Cp float64
	// Solver carries the final-stage convex solver diagnostics (zero for
	// a cache-replayed allocation: nothing was solved).
	Solver convex.Result
	// Backend names the path that produced the allocation: BackendAnneal,
	// BackendADMM, BackendHeuristic (fallback), or BackendCache
	// (exact-hit replay).
	Backend Backend
	// CacheOutcome reports the warm-start cache lookup when a cache was
	// configured: "hit", "seed", "miss", or "" (no cache).
	CacheOutcome string
}

// problem is the compiled convex program for one (graph, model, procs)
// triple: the expression DAG is built once and shared by every annealed
// solve, with per-solve evaluators drawn from a pool so concurrent
// multi-start solves never contend on scratch space.
type problem struct {
	g            *mdg.Graph
	model        costmodel.Model
	procs        int
	phi          expr.ID
	pool         *expr.EvaluatorPool
	lower, upper []float64
	// eg is the expression graph behind phi, kept for the racing
	// certificate's box-aware smoothing-gap bound (expr.TempGapBound).
	eg *expr.Graph
}

// Solve runs the convex programming formulation for g on a procs-processor
// system. The graph must be a valid DAG; a unique START/STOP is not
// required for allocation (C_p is taken as the max finish time over all
// nodes, which equals y_STOP when a STOP exists).
//
// With Options.MultiStart > 1 the annealed solve is repeated from that
// many deterministic start points (concurrently, bounded by par.Workers)
// and the result with the lowest exact Φ wins, ties going to the lowest
// start index — a deterministic selection, so serial and parallel runs
// return bit-identical allocations.
func Solve(g *mdg.Graph, model costmodel.Model, procs int, opts Options) (Result, error) {
	return SolveCtx(context.Background(), g, model, procs, opts)
}

// SolveCtx is Solve with cancellation: ctx is checked before the solve
// starts and between annealed temperature stages, so a cancelled context
// aborts the optimization promptly with ctx.Err().
func SolveCtx(ctx context.Context, g *mdg.Graph, model costmodel.Model, procs int, opts Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := opts.Backend.Validate(); err != nil {
		return Result{}, err
	}
	started := time.Now()
	var seed []float64
	var exactKey, nearKey string
	var perm []mdg.NodeID
	outcome := ""
	if opts.Cache != nil {
		// A graph CanonicalHash rejects is one compile rejects below, so
		// hash errors just skip the cache and let compile report them.
		if hash, p, err := g.CanonicalHash(); err == nil {
			perm = p
			exactKey, nearKey = cacheKeys(hash, model, procs, opts)
			if e, ok := opts.Cache.Get(exactKey); ok && e.Procs == procs && len(e.PCanon) == g.NumNodes() {
				res := resultFromEntry(e, perm)
				res.Backend, res.CacheOutcome = BackendCache, "hit"
				if opts.Observer != nil {
					opts.Observer.Observe(obs.AllocCache{Outcome: "hit"})
					opts.Observer.Observe(obs.AllocDone{Backend: string(res.Backend), Phi: res.Phi, Seconds: time.Since(started).Seconds()})
				}
				return res, nil
			}
			if e, ok := opts.Cache.GetNear(nearKey); ok && !opts.CacheExactOnly && e.Procs >= 1 && len(e.PCanon) == g.NumNodes() {
				seed = seedFromEntry(e, perm, procs)
				outcome = "seed"
			} else {
				outcome = "miss"
			}
			if opts.Observer != nil {
				opts.Observer.Observe(obs.AllocCache{Outcome: outcome})
			}
		}
	}
	prob, err := compile(g, model, procs, opts)
	if err != nil {
		// Infeasible procs or a broken graph: the problem is wrong, not
		// the solver, so no retry or heuristic can help.
		return Result{}, err
	}
	var res Result
	if opts.Backend == BackendADMM {
		res, err = prob.solveADMM(ctx, seed, opts)
	} else {
		res, err = prob.solveWithFallback(ctx, seed, opts)
	}
	if err != nil {
		return res, err
	}
	res.CacheOutcome = outcome
	if opts.Cache != nil && exactKey != "" && isFinite(res.Phi) {
		opts.Cache.Put(exactKey, nearKey, entryFromResult(res, perm, procs))
	}
	if opts.Observer != nil {
		opts.Observer.Observe(obs.AllocDone{Backend: string(res.Backend), Phi: res.Phi, Seconds: time.Since(started).Seconds()})
	}
	return res, nil
}

// solveWithFallback runs the racing multi-start solve on the compiled
// problem (with an optional warm-start seed racing ahead of the cold
// starts) and, with FallbackHeuristic, degrades through widened retries
// to the greedy heuristic. The problem is compiled exactly once: retry
// widths extend the deterministic start sequence past the points already
// tried instead of recompiling and re-running them.
func (p *problem) solveWithFallback(ctx context.Context, seed []float64, opts Options) (Result, error) {
	res, err := p.solveMulti(ctx, 0, max(1, opts.MultiStart), seed, opts)
	if err == nil && isFinite(res.Phi) {
		res.Backend = BackendAnneal
		return res, nil
	}
	if !opts.FallbackHeuristic {
		return res, err
	}
	if degradeErr := ctx.Err(); degradeErr != nil {
		return Result{}, degradeErr
	}
	if err != nil && (errors.Is(err, errs.ErrInfeasible) || errors.Is(err, errs.ErrBadGraph)) {
		return Result{}, err
	}
	// Bounded retries from wider perturbed multi-starts: a bad basin or a
	// pathological annealing trajectory often yields to a different start.
	// Starts [0, tried) already failed deterministically, so each retry
	// runs only the newly extended tail of the start sequence.
	tried := max(1, opts.MultiStart)
	for _, width := range []int{max(3, 2*opts.MultiStart), max(5, 4*opts.MultiStart)} {
		if width <= tried {
			continue
		}
		r, rerr := p.solveMulti(ctx, tried, width, nil, opts)
		tried = width
		if cerr := ctx.Err(); cerr != nil {
			return Result{}, cerr
		}
		if rerr == nil && isFinite(r.Phi) {
			r.Backend = BackendAnneal
			if opts.Observer != nil {
				opts.Observer.Observe(obs.Replan{Stage: "multistart-retry", Procs: p.procs, Phi: r.Phi})
			}
			return r, nil
		}
	}
	hr, herr := SolveHeuristic(p.g, p.model, p.procs)
	if herr != nil || !isFinite(hr.Phi) {
		if herr == nil {
			herr = fmt.Errorf("alloc: heuristic Phi = %v", hr.Phi)
		}
		return Result{}, fmt.Errorf("alloc: convex solve failed (%v) and heuristic fallback failed: %w", err, herr)
	}
	hr.Backend = BackendHeuristic
	if opts.Observer != nil {
		opts.Observer.Observe(obs.Replan{Stage: "heuristic-fallback", Procs: p.procs, Phi: hr.Phi})
	}
	return hr, nil
}

// candidate is one racing start's outcome: ok is false when the start
// was abandoned by the racing bound (a certified loser, not a failure).
type candidate struct {
	res    Result
	q      int32
	selIdx int
	ok     bool
	buf    *eventBuffer
}

// solveMulti runs starts [lo, hi) of the deterministic start sequence as
// a race, plus an optional warm-start seed ranked before start 0 in the
// tie-break. The winner is the lexicographic minimum of (quantized Φ,
// start index) over completed starts — a timing-independent selection,
// so the result is identical at any worker width. With exactly one cold
// start and no seed it is the historical single-start solve, untouched.
func (p *problem) solveMulti(ctx context.Context, lo, hi int, seed []float64, opts Options) (Result, error) {
	starts := p.startPoints(hi)[lo:hi]
	if seed == nil && len(starts) == 1 {
		return p.solveFrom(ctx, lo, starts[0], opts.Anneal, opts.Observer)
	}
	type entry struct {
		selIdx int
		x0     []float64
	}
	entries := make([]entry, 0, len(starts)+1)
	if seed != nil {
		// The seed outranks every cold start in the tie-break: a cache
		// near-hit that lands in the optimal basin both wins ties and
		// lets the race prune the cold starts early.
		entries = append(entries, entry{selIdx: -1, x0: seed})
	}
	for i, x0 := range starts {
		entries = append(entries, entry{selIdx: lo + i, x0: x0})
	}
	rs := newRaceState(opts.RaceTol)
	cands, err := par.Map(ctx, len(entries), func(ctx context.Context, i int) (candidate, error) {
		var buf *eventBuffer
		var o obs.Observer
		if opts.Observer != nil {
			buf = &eventBuffer{}
			o = buf
		}
		res, ok, err := p.solveFromRace(ctx, entries[i].selIdx, entries[i].x0, opts.Anneal, o, rs)
		if err != nil {
			return candidate{}, err
		}
		return candidate{res: res, q: rs.quantize(res.Phi), selIdx: entries[i].selIdx, ok: ok, buf: buf}, nil
	})
	if err != nil {
		return Result{}, err
	}
	var best candidate
	for _, c := range cands {
		if !c.ok {
			continue
		}
		if !best.ok || c.q < best.q || (c.q == best.q && c.selIdx < best.selIdx) {
			best = c
		}
	}
	if !best.ok {
		// Unreachable: the lowest-ranked start can never satisfy the
		// abandonment predicate (race.go), so at least one completes.
		return Result{}, errors.New("alloc: every racing start was abandoned")
	}
	best.buf.flush(opts.Observer)
	return best.res, nil
}

// isFinite guards the degradation path against NaN/Inf objectives a
// broken solve can report without erroring.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// startPoints produces k deterministic start points inside the box.
// Start 0 is the box midpoint (the historical single-start point);
// further starts spread over the box by a golden-ratio low-discrepancy
// rule with a per-coordinate stagger, so no two starts or coordinates
// coincide yet every run generates the same sequence.
func (p *problem) startPoints(k int) [][]float64 {
	if k < 1 {
		k = 1
	}
	const (
		golden  = 0.6180339887498949 // 1/φ
		stagger = 0.3819660112501051 // 1/φ²
	)
	starts := make([][]float64, k)
	for s := range starts {
		x0 := make([]float64, len(p.upper))
		for i := range x0 {
			f := 0.5
			if s > 0 {
				f = math.Mod(0.5+float64(s)*golden+float64(i)*stagger, 1)
				// Keep away from the box edges where the smoothed
				// objective is flattest.
				f = 0.1 + 0.8*f
			}
			x0[i] = p.upper[i] * f
		}
		starts[s] = x0
	}
	return starts
}

// compile builds the expression DAG for the Φ objective once.
func compile(g *mdg.Graph, model costmodel.Model, procs int, opts Options) (*problem, error) {
	if procs < 1 {
		return nil, fmt.Errorf("alloc: %w: procs = %d, want >= 1", errs.ErrInfeasible, procs)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("alloc: invalid MDG: %w", err)
	}
	n := g.NumNodes()
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	objTP := model.Transfer
	if opts.IgnoreTransfers {
		objTP = costmodel.TransferParams{}
	}

	// --- Build the objective expression DAG ---------------------------
	var eg expr.Graph
	// Per-edge cost components, keyed by edge index.
	sendE := make([]expr.ID, len(g.Edges))
	netE := make([]expr.ID, len(g.Edges))
	recvE := make([]expr.ID, len(g.Edges))
	edgeIdx := make(map[[2]mdg.NodeID]int, len(g.Edges))
	for i, e := range g.Edges {
		sendE[i], netE[i], recvE[i] = costmodel.EdgeTransferExprs(&eg, objTP, e, int(e.From), int(e.To))
		edgeIdx[[2]mdg.NodeID{e.From, e.To}] = i
	}
	// Node weights T_i.
	weight := make([]expr.ID, n)
	for i := 0; i < n; i++ {
		id := mdg.NodeID(i)
		terms := []expr.ID{costmodel.ProcessingExpr(&eg, costmodel.LoopParams{
			Alpha: g.Nodes[i].Alpha, Tau: g.Nodes[i].Tau,
		}, i)}
		for _, m := range g.Preds(id) {
			terms = append(terms, recvE[edgeIdx[[2]mdg.NodeID{m, id}]])
		}
		for _, s := range g.Succs(id) {
			terms = append(terms, sendE[edgeIdx[[2]mdg.NodeID{id, s}]])
		}
		weight[i] = eg.Sum(terms...)
	}
	// A_p = (1/p)·Σ T_i·p_i.
	areas := make([]expr.ID, n)
	for i := 0; i < n; i++ {
		areas[i] = eg.Mul(weight[i], eg.Var(i))
	}
	ap := eg.Scale(1/float64(procs), eg.Sum(areas...))
	// C_p via the y_i recursion in topological order.
	y := make([]expr.ID, n)
	for _, v := range order {
		preds := g.Preds(v)
		if len(preds) == 0 {
			y[v] = weight[v]
			continue
		}
		arrivals := make([]expr.ID, 0, len(preds))
		for _, m := range preds {
			ei := edgeIdx[[2]mdg.NodeID{m, v}]
			arrivals = append(arrivals, eg.Sum(y[m], netE[ei]))
		}
		y[v] = eg.Sum(eg.SmoothMax(arrivals...), weight[v])
	}
	sinks := make([]expr.ID, 0, 1)
	for i := 0; i < n; i++ {
		if len(g.Succs(mdg.NodeID(i))) == 0 {
			sinks = append(sinks, y[i])
		}
	}
	cp := eg.SmoothMax(sinks...)
	phi := eg.SmoothMax(ap, cp)

	lower := make([]float64, n)
	upper := make([]float64, n)
	for i := range upper {
		upper[i] = math.Log(float64(procs))
	}
	return &problem{
		g: g, model: model, procs: procs,
		phi:   phi,
		pool:  expr.NewEvaluatorPool(&eg),
		lower: lower, upper: upper,
		eg: &eg,
	}, nil
}

// solveFrom runs one annealed solve from x0 and re-evaluates the exact
// (hard-max) Φ/A_p/C_p at the solution under the full cost model. The
// per-stage hook checks ctx between temperature stages and, with a
// non-nil observer, emits the solver-convergence trajectory.
func (p *problem) solveFrom(ctx context.Context, startIdx int, x0 []float64, anneal convex.AnnealOptions, o obs.Observer) (Result, error) {
	res, _, err := p.solveFromRace(ctx, startIdx, x0, anneal, o, nil)
	return res, err
}

// solveFromRace is solveFrom with racing hooks. With rs == nil it is
// exactly the historical single-start solve: no hook is installed and
// the annealing trajectory is untouched. With a race state it (a)
// publishes a certified global lower bound after every temperature stage
// and a tightened sequence after the final stage, (b) polls the
// abandonment predicate between stages and — via convex.Options.StopCheck
// — every few inner iterations, and (c) publishes the completed result
// as an incumbent. The returned ok is false iff the start was abandoned;
// an abandoned start is not an error. A winning trajectory is never
// perturbed by the hooks (StopCheck only reads), so its Result — solver
// Iters/Evals included — is byte-identical to a run without the race.
func (p *problem) solveFromRace(ctx context.Context, startIdx int, x0 []float64, anneal convex.AnnealOptions, o obs.Observer, rs *raceState) (Result, bool, error) {
	ev := p.pool.Get()
	defer p.pool.Put(ev)
	var certGrad []float64
	if rs != nil {
		certGrad = make([]float64, len(x0))
	}
	prev := anneal.OnStage
	anneal.OnStage = func(stage int, temp float64, r convex.Result) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if o != nil {
			o.Observe(obs.SolverStage{
				StartIdx: startIdx, Stage: stage, Temp: temp,
				Phi: r.F, Iters: r.Iters, Evals: r.Evals,
				Status: r.Status.String(),
			})
		}
		if rs != nil {
			rs.publishBound(p.certifyBound(ev, r.X, temp, certGrad))
			if rs.shouldAbandon(startIdx) {
				return errRaceAbandoned
			}
		}
		if prev != nil {
			return prev(stage, temp, r)
		}
		return nil
	}
	raceStopped := false
	if rs != nil {
		prevStop := anneal.Inner.StopCheck
		anneal.Inner.StopCheck = func() bool {
			if prevStop != nil && prevStop() {
				return true
			}
			if rs.shouldAbandon(startIdx) {
				raceStopped = true
				return true
			}
			return false
		}
	}
	obj := convex.TempFunc(func(temp float64, x, grad []float64) float64 {
		if grad == nil {
			return ev.Eval(p.phi, x, temp)
		}
		return ev.EvalGrad(p.phi, x, temp, grad)
	})
	if anneal.StartTemp <= 0 {
		// Scale with the problem: ~5% of the objective at the start point.
		anneal.StartTemp = 0.05 * ev.Eval(p.phi, x0, 0)
		if anneal.StartTemp <= 0 {
			anneal.StartTemp = 1
		}
	}
	if anneal.EndTemp <= 0 {
		anneal.EndTemp = anneal.StartTemp * 1e-5
	}
	if anneal.Inner.MaxIter == 0 {
		anneal.Inner.MaxIter = 4000
	}
	sol, err := convex.MinimizeAnnealed(obj, p.lower, p.upper, x0, anneal)
	if err != nil {
		if errors.Is(err, errRaceAbandoned) || (raceStopped && errors.Is(err, convex.ErrStopped)) {
			return Result{}, false, nil
		}
		return Result{}, false, fmt.Errorf("alloc: solver failed: %w", err)
	}

	res := Result{P: make([]float64, len(x0)), Solver: sol}
	for i := range res.P {
		res.P[i] = math.Exp(sol.X[i])
	}
	res.Phi, res.Ap, res.Cp, err = p.model.Phi(p.g, res.P, p.procs)
	if err != nil {
		return Result{}, false, err
	}
	if rs != nil {
		// The anneal stops at EndTemp, where the stage certificate still
		// carries a T·slack gap; re-certifying the solution at shrinking
		// temperatures tightens the published bound so stragglers can be
		// abandoned (the point is fixed — only the certificate sharpens).
		for _, t := range []float64{anneal.EndTemp, anneal.EndTemp / 8, anneal.EndTemp / 64} {
			rs.publishBound(p.certifyBound(ev, sol.X, t, certGrad))
		}
		rs.publishResult(rs.quantize(res.Phi), startIdx)
	}
	return res, true, nil
}

// SPMD returns the pure data-parallel allocation — every node on all
// procs processors — with its exact Φ/A_p/C_p, the baseline the paper's
// Figure 8 compares against.
func SPMD(g *mdg.Graph, model costmodel.Model, procs int) (Result, error) {
	if procs < 1 {
		return Result{}, fmt.Errorf("alloc: %w: procs = %d, want >= 1", errs.ErrInfeasible, procs)
	}
	if err := g.Validate(); err != nil {
		return Result{}, fmt.Errorf("alloc: invalid MDG: %w", err)
	}
	res := Result{P: make([]float64, g.NumNodes())}
	for i := range res.P {
		res.P[i] = float64(procs)
	}
	var err error
	res.Phi, res.Ap, res.Cp, err = model.Phi(g, res.P, procs)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}
