// Package alloc implements the MDG allocation algorithm of Section 2.
//
// Given an MDG with n nodes and a p-processor system, it chooses
// continuous processor counts p_i ∈ [1, p] minimizing
//
//	Φ = max(A_p, C_p)
//
// where A_p = (1/p)·Σ T_i·p_i is the processor-time-area lower bound and
// C_p = y_STOP with y_i = max over predecessors m of (y_m + t^D_mi) + T_i
// is the critical-path time; T_i combines the receive costs from all
// predecessors, the Amdahl processing cost, and the send costs to all
// successors (internal/costmodel).
//
// Because every cost term is posynomial (Lemmas 1-2), the substitution
// x_i = ln p_i makes the problem convex, so the minimum found is global —
// the property that distinguishes this paper from its heuristic
// predecessors. The max terms are smoothed by log-sum-exp and annealed to
// the exact max (internal/convex.MinimizeAnnealed); the reported Φ, A_p
// and C_p are re-evaluated with exact (hard-max) arithmetic at the
// solution point.
package alloc

import (
	"fmt"
	"math"

	"paradigm/internal/convex"
	"paradigm/internal/costmodel"
	"paradigm/internal/expr"
	"paradigm/internal/mdg"
)

// Options tunes Solve. The zero value selects robust defaults.
type Options struct {
	// Anneal configures the temperature schedule and inner minimizer.
	// The start temperature is additionally scaled by the magnitude of
	// the objective at the start point so that problems measured in
	// milliseconds and in hours anneal alike.
	Anneal convex.AnnealOptions
	// IgnoreTransfers zeroes the data-transfer costs in the objective
	// (the Prasanna-Agarwal-style ablation A3 of DESIGN.md). The reported
	// Φ/A_p/C_p still use the full model.
	IgnoreTransfers bool
}

// Result reports one allocation.
type Result struct {
	// P holds the continuous per-node allocations, indexed by NodeID.
	P []float64
	// Phi, Ap, Cp are the exact objective values at P under the full
	// cost model: Phi = max(Ap, Cp).
	Phi, Ap, Cp float64
	// Solver carries the final-stage convex solver diagnostics.
	Solver convex.Result
}

// Solve runs the convex programming formulation for g on a procs-processor
// system. The graph must be a valid DAG; a unique START/STOP is not
// required for allocation (C_p is taken as the max finish time over all
// nodes, which equals y_STOP when a STOP exists).
func Solve(g *mdg.Graph, model costmodel.Model, procs int, opts Options) (Result, error) {
	if procs < 1 {
		return Result{}, fmt.Errorf("alloc: procs = %d, want >= 1", procs)
	}
	if err := g.Validate(); err != nil {
		return Result{}, fmt.Errorf("alloc: invalid MDG: %w", err)
	}
	n := g.NumNodes()
	order, err := g.TopoOrder()
	if err != nil {
		return Result{}, err
	}

	objTP := model.Transfer
	if opts.IgnoreTransfers {
		objTP = costmodel.TransferParams{}
	}

	// --- Build the objective expression DAG ---------------------------
	var eg expr.Graph
	// Per-edge cost components, keyed by edge index.
	sendE := make([]expr.ID, len(g.Edges))
	netE := make([]expr.ID, len(g.Edges))
	recvE := make([]expr.ID, len(g.Edges))
	edgeIdx := make(map[[2]mdg.NodeID]int, len(g.Edges))
	for i, e := range g.Edges {
		sendE[i], netE[i], recvE[i] = costmodel.EdgeTransferExprs(&eg, objTP, e, int(e.From), int(e.To))
		edgeIdx[[2]mdg.NodeID{e.From, e.To}] = i
	}
	// Node weights T_i.
	weight := make([]expr.ID, n)
	for i := 0; i < n; i++ {
		id := mdg.NodeID(i)
		terms := []expr.ID{costmodel.ProcessingExpr(&eg, costmodel.LoopParams{
			Alpha: g.Nodes[i].Alpha, Tau: g.Nodes[i].Tau,
		}, i)}
		for _, m := range g.Preds(id) {
			terms = append(terms, recvE[edgeIdx[[2]mdg.NodeID{m, id}]])
		}
		for _, s := range g.Succs(id) {
			terms = append(terms, sendE[edgeIdx[[2]mdg.NodeID{id, s}]])
		}
		weight[i] = eg.Sum(terms...)
	}
	// A_p = (1/p)·Σ T_i·p_i.
	areas := make([]expr.ID, n)
	for i := 0; i < n; i++ {
		areas[i] = eg.Mul(weight[i], eg.Var(i))
	}
	ap := eg.Scale(1/float64(procs), eg.Sum(areas...))
	// C_p via the y_i recursion in topological order.
	y := make([]expr.ID, n)
	for _, v := range order {
		preds := g.Preds(v)
		if len(preds) == 0 {
			y[v] = weight[v]
			continue
		}
		arrivals := make([]expr.ID, 0, len(preds))
		for _, m := range preds {
			ei := edgeIdx[[2]mdg.NodeID{m, v}]
			arrivals = append(arrivals, eg.Sum(y[m], netE[ei]))
		}
		y[v] = eg.Sum(eg.SmoothMax(arrivals...), weight[v])
	}
	sinks := make([]expr.ID, 0, 1)
	for i := 0; i < n; i++ {
		if len(g.Succs(mdg.NodeID(i))) == 0 {
			sinks = append(sinks, y[i])
		}
	}
	cp := eg.SmoothMax(sinks...)
	phi := eg.SmoothMax(ap, cp)

	// --- Solve ----------------------------------------------------------
	ev := expr.NewEvaluator(&eg)
	lower := make([]float64, n)
	upper := make([]float64, n)
	x0 := make([]float64, n)
	for i := range upper {
		upper[i] = math.Log(float64(procs))
		x0[i] = upper[i] / 2
	}
	obj := convex.TempFunc(func(temp float64, x, grad []float64) float64 {
		if grad == nil {
			return ev.Eval(phi, x, temp)
		}
		return ev.EvalGrad(phi, x, temp, grad)
	})
	anneal := opts.Anneal
	if anneal.StartTemp <= 0 {
		// Scale with the problem: ~5% of the objective at the start point.
		anneal.StartTemp = 0.05 * ev.Eval(phi, x0, 0)
		if anneal.StartTemp <= 0 {
			anneal.StartTemp = 1
		}
	}
	if anneal.EndTemp <= 0 {
		anneal.EndTemp = anneal.StartTemp * 1e-5
	}
	if anneal.Inner.MaxIter == 0 {
		anneal.Inner.MaxIter = 4000
	}
	sol, err := convex.MinimizeAnnealed(obj, lower, upper, x0, anneal)
	if err != nil {
		return Result{}, fmt.Errorf("alloc: solver failed: %w", err)
	}

	res := Result{P: make([]float64, n), Solver: sol}
	for i := range res.P {
		res.P[i] = math.Exp(sol.X[i])
	}
	res.Phi, res.Ap, res.Cp, err = model.Phi(g, res.P, procs)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// SPMD returns the pure data-parallel allocation — every node on all
// procs processors — with its exact Φ/A_p/C_p, the baseline the paper's
// Figure 8 compares against.
func SPMD(g *mdg.Graph, model costmodel.Model, procs int) (Result, error) {
	if procs < 1 {
		return Result{}, fmt.Errorf("alloc: procs = %d, want >= 1", procs)
	}
	if err := g.Validate(); err != nil {
		return Result{}, fmt.Errorf("alloc: invalid MDG: %w", err)
	}
	res := Result{P: make([]float64, g.NumNodes())}
	for i := range res.P {
		res.P[i] = float64(procs)
	}
	var err error
	res.Phi, res.Ap, res.Cp, err = model.Phi(g, res.P, procs)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}
