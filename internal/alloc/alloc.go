// Package alloc implements the MDG allocation algorithm of Section 2.
//
// Given an MDG with n nodes and a p-processor system, it chooses
// continuous processor counts p_i ∈ [1, p] minimizing
//
//	Φ = max(A_p, C_p)
//
// where A_p = (1/p)·Σ T_i·p_i is the processor-time-area lower bound and
// C_p = y_STOP with y_i = max over predecessors m of (y_m + t^D_mi) + T_i
// is the critical-path time; T_i combines the receive costs from all
// predecessors, the Amdahl processing cost, and the send costs to all
// successors (internal/costmodel).
//
// Because every cost term is posynomial (Lemmas 1-2), the substitution
// x_i = ln p_i makes the problem convex, so the minimum found is global —
// the property that distinguishes this paper from its heuristic
// predecessors. The max terms are smoothed by log-sum-exp and annealed to
// the exact max (internal/convex.MinimizeAnnealed); the reported Φ, A_p
// and C_p are re-evaluated with exact (hard-max) arithmetic at the
// solution point.
package alloc

import (
	"context"
	"errors"
	"fmt"
	"math"

	"paradigm/internal/convex"
	"paradigm/internal/costmodel"
	"paradigm/internal/errs"
	"paradigm/internal/expr"
	"paradigm/internal/mdg"
	"paradigm/internal/obs"
	"paradigm/internal/par"
)

// Options tunes Solve. The zero value selects robust defaults.
type Options struct {
	// Anneal configures the temperature schedule and inner minimizer.
	// The start temperature is additionally scaled by the magnitude of
	// the objective at the start point so that problems measured in
	// milliseconds and in hours anneal alike.
	Anneal convex.AnnealOptions
	// IgnoreTransfers zeroes the data-transfer costs in the objective
	// (the Prasanna-Agarwal-style ablation A3 of DESIGN.md). The reported
	// Φ/A_p/C_p still use the full model.
	IgnoreTransfers bool
	// MultiStart > 1 runs that many annealed solves from deterministic
	// start points and keeps the lowest exact Φ, breaking ties by the
	// lowest start index. Start 0 is the classic box midpoint, so
	// MultiStart <= 1 reproduces the single-start behaviour exactly. The
	// starts run concurrently on the par worker pool with pooled
	// evaluators; the selected result is identical at any pool width.
	MultiStart int
	// Observer, when non-nil, receives one obs.SolverStage event per
	// annealed temperature stage (per start). Nil costs one pointer
	// comparison per stage.
	Observer obs.Observer
	// FallbackHeuristic enables graceful degradation: when the annealed
	// convex solve fails or returns a non-finite Φ, SolveCtx retries
	// from widened perturbed multi-starts (bounded), then falls back to
	// the greedy critical-path heuristic (SolveHeuristic). Each
	// degradation step emits one obs.Replan event to Observer.
	// Cancellation and infeasible/invalid inputs never degrade — they
	// return immediately.
	FallbackHeuristic bool
}

// Result reports one allocation.
type Result struct {
	// P holds the continuous per-node allocations, indexed by NodeID.
	P []float64
	// Phi, Ap, Cp are the exact objective values at P under the full
	// cost model: Phi = max(Ap, Cp).
	Phi, Ap, Cp float64
	// Solver carries the final-stage convex solver diagnostics.
	Solver convex.Result
}

// problem is the compiled convex program for one (graph, model, procs)
// triple: the expression DAG is built once and shared by every annealed
// solve, with per-solve evaluators drawn from a pool so concurrent
// multi-start solves never contend on scratch space.
type problem struct {
	g            *mdg.Graph
	model        costmodel.Model
	procs        int
	phi          expr.ID
	pool         *expr.EvaluatorPool
	lower, upper []float64
}

// Solve runs the convex programming formulation for g on a procs-processor
// system. The graph must be a valid DAG; a unique START/STOP is not
// required for allocation (C_p is taken as the max finish time over all
// nodes, which equals y_STOP when a STOP exists).
//
// With Options.MultiStart > 1 the annealed solve is repeated from that
// many deterministic start points (concurrently, bounded by par.Workers)
// and the result with the lowest exact Φ wins, ties going to the lowest
// start index — a deterministic selection, so serial and parallel runs
// return bit-identical allocations.
func Solve(g *mdg.Graph, model costmodel.Model, procs int, opts Options) (Result, error) {
	return SolveCtx(context.Background(), g, model, procs, opts)
}

// SolveCtx is Solve with cancellation: ctx is checked before the solve
// starts and between annealed temperature stages, so a cancelled context
// aborts the optimization promptly with ctx.Err().
func SolveCtx(ctx context.Context, g *mdg.Graph, model costmodel.Model, procs int, opts Options) (Result, error) {
	res, err := solveConvex(ctx, g, model, procs, opts)
	if err == nil && isFinite(res.Phi) {
		return res, nil
	}
	if !opts.FallbackHeuristic {
		return res, err
	}
	if degradeErr := ctx.Err(); degradeErr != nil {
		return Result{}, degradeErr
	}
	if err != nil && (errors.Is(err, errs.ErrInfeasible) || errors.Is(err, errs.ErrBadGraph)) {
		// The problem is wrong, not the solver: no retry can help.
		return Result{}, err
	}
	// Bounded retries from wider perturbed multi-starts: a bad basin or a
	// pathological annealing trajectory often yields to a different start.
	for _, width := range []int{maxInt(3, 2*opts.MultiStart), maxInt(5, 4*opts.MultiStart)} {
		retry := opts
		retry.MultiStart = width
		retry.FallbackHeuristic = false
		r, rerr := solveConvex(ctx, g, model, procs, retry)
		if cerr := ctx.Err(); cerr != nil {
			return Result{}, cerr
		}
		if rerr == nil && isFinite(r.Phi) {
			if opts.Observer != nil {
				opts.Observer.Observe(obs.Replan{Stage: "multistart-retry", Procs: procs, Phi: r.Phi})
			}
			return r, nil
		}
	}
	hr, herr := SolveHeuristic(g, model, procs)
	if herr != nil || !isFinite(hr.Phi) {
		if herr == nil {
			herr = fmt.Errorf("alloc: heuristic Phi = %v", hr.Phi)
		}
		return Result{}, fmt.Errorf("alloc: convex solve failed (%v) and heuristic fallback failed: %w", err, herr)
	}
	if opts.Observer != nil {
		opts.Observer.Observe(obs.Replan{Stage: "heuristic-fallback", Procs: procs, Phi: hr.Phi})
	}
	return hr, nil
}

// solveConvex is the annealed multi-start convex solve (the historical
// SolveCtx body, byte-identical behaviour without FallbackHeuristic).
func solveConvex(ctx context.Context, g *mdg.Graph, model costmodel.Model, procs int, opts Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	prob, err := compile(g, model, procs, opts)
	if err != nil {
		return Result{}, err
	}
	starts := prob.startPoints(opts.MultiStart)
	if len(starts) == 1 {
		return prob.solveFrom(ctx, 0, starts[0], opts.Anneal, opts.Observer)
	}
	results, err := par.Map(ctx, len(starts), func(ctx context.Context, i int) (Result, error) {
		return prob.solveFrom(ctx, i, starts[i], opts.Anneal, opts.Observer)
	})
	if err != nil {
		return Result{}, err
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.Phi < best.Phi {
			best = r
		}
	}
	return best, nil
}

// isFinite guards the degradation path against NaN/Inf objectives a
// broken solve can report without erroring.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// startPoints produces k deterministic start points inside the box.
// Start 0 is the box midpoint (the historical single-start point);
// further starts spread over the box by a golden-ratio low-discrepancy
// rule with a per-coordinate stagger, so no two starts or coordinates
// coincide yet every run generates the same sequence.
func (p *problem) startPoints(k int) [][]float64 {
	if k < 1 {
		k = 1
	}
	const (
		golden  = 0.6180339887498949 // 1/φ
		stagger = 0.3819660112501051 // 1/φ²
	)
	starts := make([][]float64, k)
	for s := range starts {
		x0 := make([]float64, len(p.upper))
		for i := range x0 {
			f := 0.5
			if s > 0 {
				f = math.Mod(0.5+float64(s)*golden+float64(i)*stagger, 1)
				// Keep away from the box edges where the smoothed
				// objective is flattest.
				f = 0.1 + 0.8*f
			}
			x0[i] = p.upper[i] * f
		}
		starts[s] = x0
	}
	return starts
}

// compile builds the expression DAG for the Φ objective once.
func compile(g *mdg.Graph, model costmodel.Model, procs int, opts Options) (*problem, error) {
	if procs < 1 {
		return nil, fmt.Errorf("alloc: %w: procs = %d, want >= 1", errs.ErrInfeasible, procs)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("alloc: invalid MDG: %w", err)
	}
	n := g.NumNodes()
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	objTP := model.Transfer
	if opts.IgnoreTransfers {
		objTP = costmodel.TransferParams{}
	}

	// --- Build the objective expression DAG ---------------------------
	var eg expr.Graph
	// Per-edge cost components, keyed by edge index.
	sendE := make([]expr.ID, len(g.Edges))
	netE := make([]expr.ID, len(g.Edges))
	recvE := make([]expr.ID, len(g.Edges))
	edgeIdx := make(map[[2]mdg.NodeID]int, len(g.Edges))
	for i, e := range g.Edges {
		sendE[i], netE[i], recvE[i] = costmodel.EdgeTransferExprs(&eg, objTP, e, int(e.From), int(e.To))
		edgeIdx[[2]mdg.NodeID{e.From, e.To}] = i
	}
	// Node weights T_i.
	weight := make([]expr.ID, n)
	for i := 0; i < n; i++ {
		id := mdg.NodeID(i)
		terms := []expr.ID{costmodel.ProcessingExpr(&eg, costmodel.LoopParams{
			Alpha: g.Nodes[i].Alpha, Tau: g.Nodes[i].Tau,
		}, i)}
		for _, m := range g.Preds(id) {
			terms = append(terms, recvE[edgeIdx[[2]mdg.NodeID{m, id}]])
		}
		for _, s := range g.Succs(id) {
			terms = append(terms, sendE[edgeIdx[[2]mdg.NodeID{id, s}]])
		}
		weight[i] = eg.Sum(terms...)
	}
	// A_p = (1/p)·Σ T_i·p_i.
	areas := make([]expr.ID, n)
	for i := 0; i < n; i++ {
		areas[i] = eg.Mul(weight[i], eg.Var(i))
	}
	ap := eg.Scale(1/float64(procs), eg.Sum(areas...))
	// C_p via the y_i recursion in topological order.
	y := make([]expr.ID, n)
	for _, v := range order {
		preds := g.Preds(v)
		if len(preds) == 0 {
			y[v] = weight[v]
			continue
		}
		arrivals := make([]expr.ID, 0, len(preds))
		for _, m := range preds {
			ei := edgeIdx[[2]mdg.NodeID{m, v}]
			arrivals = append(arrivals, eg.Sum(y[m], netE[ei]))
		}
		y[v] = eg.Sum(eg.SmoothMax(arrivals...), weight[v])
	}
	sinks := make([]expr.ID, 0, 1)
	for i := 0; i < n; i++ {
		if len(g.Succs(mdg.NodeID(i))) == 0 {
			sinks = append(sinks, y[i])
		}
	}
	cp := eg.SmoothMax(sinks...)
	phi := eg.SmoothMax(ap, cp)

	lower := make([]float64, n)
	upper := make([]float64, n)
	for i := range upper {
		upper[i] = math.Log(float64(procs))
	}
	return &problem{
		g: g, model: model, procs: procs,
		phi:   phi,
		pool:  expr.NewEvaluatorPool(&eg),
		lower: lower, upper: upper,
	}, nil
}

// solveFrom runs one annealed solve from x0 and re-evaluates the exact
// (hard-max) Φ/A_p/C_p at the solution under the full cost model. The
// per-stage hook checks ctx between temperature stages and, with a
// non-nil observer, emits the solver-convergence trajectory.
func (p *problem) solveFrom(ctx context.Context, startIdx int, x0 []float64, anneal convex.AnnealOptions, o obs.Observer) (Result, error) {
	prev := anneal.OnStage
	anneal.OnStage = func(stage int, temp float64, r convex.Result) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if o != nil {
			o.Observe(obs.SolverStage{
				StartIdx: startIdx, Stage: stage, Temp: temp,
				Phi: r.F, Iters: r.Iters, Evals: r.Evals,
				Status: r.Status.String(),
			})
		}
		if prev != nil {
			return prev(stage, temp, r)
		}
		return nil
	}
	ev := p.pool.Get()
	defer p.pool.Put(ev)
	obj := convex.TempFunc(func(temp float64, x, grad []float64) float64 {
		if grad == nil {
			return ev.Eval(p.phi, x, temp)
		}
		return ev.EvalGrad(p.phi, x, temp, grad)
	})
	if anneal.StartTemp <= 0 {
		// Scale with the problem: ~5% of the objective at the start point.
		anneal.StartTemp = 0.05 * ev.Eval(p.phi, x0, 0)
		if anneal.StartTemp <= 0 {
			anneal.StartTemp = 1
		}
	}
	if anneal.EndTemp <= 0 {
		anneal.EndTemp = anneal.StartTemp * 1e-5
	}
	if anneal.Inner.MaxIter == 0 {
		anneal.Inner.MaxIter = 4000
	}
	sol, err := convex.MinimizeAnnealed(obj, p.lower, p.upper, x0, anneal)
	if err != nil {
		return Result{}, fmt.Errorf("alloc: solver failed: %w", err)
	}

	res := Result{P: make([]float64, len(x0)), Solver: sol}
	for i := range res.P {
		res.P[i] = math.Exp(sol.X[i])
	}
	res.Phi, res.Ap, res.Cp, err = p.model.Phi(p.g, res.P, p.procs)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// SPMD returns the pure data-parallel allocation — every node on all
// procs processors — with its exact Φ/A_p/C_p, the baseline the paper's
// Figure 8 compares against.
func SPMD(g *mdg.Graph, model costmodel.Model, procs int) (Result, error) {
	if procs < 1 {
		return Result{}, fmt.Errorf("alloc: %w: procs = %d, want >= 1", errs.ErrInfeasible, procs)
	}
	if err := g.Validate(); err != nil {
		return Result{}, fmt.Errorf("alloc: invalid MDG: %w", err)
	}
	res := Result{P: make([]float64, g.NumNodes())}
	for i := range res.P {
		res.P[i] = float64(procs)
	}
	var err error
	res.Phi, res.Ap, res.Cp, err = model.Phi(g, res.P, procs)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}
