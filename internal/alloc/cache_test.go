package alloc

import (
	"math/rand"
	"testing"

	"paradigm/internal/alloccache"
	"paradigm/internal/mdg"
	"paradigm/internal/obs"
	"paradigm/internal/par"
)

func TestCacheExactHitReplaysByteIdentical(t *testing.T) {
	g := forkJoin(0.9)
	cache := alloccache.New(8)
	opts := Options{MultiStart: 4, Cache: cache}
	cold, err := Solve(g, cm5Fit, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheOutcome != "miss" || cold.Backend != "anneal" {
		t.Fatalf("cold solve: outcome %q backend %q", cold.CacheOutcome, cold.Backend)
	}
	warm, err := Solve(g, cm5Fit, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheOutcome != "hit" || warm.Backend != "cache" {
		t.Fatalf("warm solve: outcome %q backend %q", warm.CacheOutcome, warm.Backend)
	}
	if warm.Phi != cold.Phi || warm.Ap != cold.Ap || warm.Cp != cold.Cp {
		t.Fatalf("replayed objectives differ: %+v vs %+v", warm, cold)
	}
	for i := range cold.P {
		if warm.P[i] != cold.P[i] {
			t.Fatalf("P[%d]: replay %v != solve %v", i, warm.P[i], cold.P[i])
		}
	}
	if warm.Solver.Iters != 0 {
		t.Fatal("a replayed hit must not report solver work")
	}
}

func TestCacheHitOnRelabeledGraph(t *testing.T) {
	g := forkJoin(0.8)
	n := g.NumNodes()
	perm := make([]mdg.NodeID, n)
	for i := range perm {
		perm[i] = mdg.NodeID(i)
	}
	rng := rand.New(rand.NewSource(11))
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	g2, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}

	cache := alloccache.New(8)
	opts := Options{MultiStart: 2, Cache: cache}
	cold, err := Solve(g, cm5Fit, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(g2, cm5Fit, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheOutcome != "hit" {
		t.Fatalf("relabeled graph: outcome %q, want hit (canonical key must be relabel-invariant)", warm.CacheOutcome)
	}
	// Relabel maps node i of g to node perm[i] of g2, so the replayed
	// allocation must follow the same permutation exactly.
	for i := range cold.P {
		if warm.P[perm[i]] != cold.P[i] {
			t.Fatalf("replayed allocation not permuted: P2[%d] = %v, want P[%d] = %v",
				perm[i], warm.P[perm[i]], i, cold.P[i])
		}
	}
}

func TestCacheNearHitSeedsDifferentProcs(t *testing.T) {
	g := forkJoin(0.9)
	cache := alloccache.New(8)
	opts := Options{MultiStart: 3, Cache: cache}
	if _, err := Solve(g, cm5Fit, 16, opts); err != nil {
		t.Fatal(err)
	}
	seeded, err := Solve(g, cm5Fit, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seeded.CacheOutcome != "seed" {
		t.Fatalf("different procs: outcome %q, want seed", seeded.CacheOutcome)
	}
	coldOpts := Options{MultiStart: 3}
	cold, err := Solve(g, cm5Fit, 32, coldOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The seed races alongside the full cold start set and wins ties, so
	// the seeded winner can only match or beat the cold winner's bucket.
	if seeded.Phi > cold.Phi*(1+2*defaultRaceTol) {
		t.Fatalf("seeded Φ %v worse than cold Φ %v beyond the race tolerance", seeded.Phi, cold.Phi)
	}
}

// TestCacheSeededSolveDeterministicAcrossWidths primes a fresh cache
// identically per width and checks the near-hit seeded solve returns
// byte-identical allocations at any worker width.
func TestCacheSeededSolveDeterministicAcrossWidths(t *testing.T) {
	g := forkJoin(0.9)
	var base Result
	for wi, width := range []string{"1", "4", ""} {
		t.Setenv(par.EnvWorkers, width)
		cache := alloccache.New(8)
		opts := Options{MultiStart: 3, Cache: cache}
		if _, err := Solve(g, cm5Fit, 16, opts); err != nil {
			t.Fatal(err)
		}
		res, err := Solve(g, cm5Fit, 32, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheOutcome != "seed" {
			t.Fatalf("width %q: outcome %q", width, res.CacheOutcome)
		}
		if wi == 0 {
			base = res
			continue
		}
		if res.Phi != base.Phi {
			t.Fatalf("width %q: seeded Φ %v vs %v", width, res.Phi, base.Phi)
		}
		for i := range res.P {
			if res.P[i] != base.P[i] {
				t.Fatalf("width %q: seeded P[%d] differs", width, i)
			}
		}
	}
}

// TestCacheExactOnlyIgnoresNearHits pins the purity contract behind
// CacheExactOnly: a primed near entry must not seed the race, so the
// solve returns the cold allocation bit-for-bit regardless of cache
// history — the property long-lived services rely on to reproduce
// journaled result digests across restarts with a cold cache.
func TestCacheExactOnlyIgnoresNearHits(t *testing.T) {
	g := forkJoin(0.9)
	cold, err := Solve(g, cm5Fit, 32, Options{MultiStart: 3, CacheExactOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	cache := alloccache.New(8)
	opts := Options{MultiStart: 3, Cache: cache, CacheExactOnly: true}
	if _, err := Solve(g, cm5Fit, 16, opts); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, cm5Fit, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheOutcome != "miss" {
		t.Fatalf("exact-only near lookup: outcome %q, want miss", res.CacheOutcome)
	}
	if res.Phi != cold.Phi {
		t.Fatalf("exact-only solve diverged from cold: Φ %v vs %v", res.Phi, cold.Phi)
	}
	for i := range cold.P {
		if res.P[i] != cold.P[i] {
			t.Fatalf("exact-only P[%d] = %v, want cold %v", i, res.P[i], cold.P[i])
		}
	}
	// Exact replay still works within the mode.
	hit, err := Solve(g, cm5Fit, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit.CacheOutcome != "hit" || hit.Backend != BackendCache {
		t.Fatalf("exact-only repeat: outcome %q backend %q, want hit/cache", hit.CacheOutcome, hit.Backend)
	}
	// And entries never cross the mode boundary: a seeded-mode solve
	// must not replay an exact-only entry.
	crossed, err := Solve(g, cm5Fit, 32, Options{MultiStart: 3, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if crossed.CacheOutcome == "hit" {
		t.Fatal("seeded-mode solve replayed an exact-only entry")
	}
}

func TestCacheKeySeparatesSolveShape(t *testing.T) {
	g := forkJoin(0.9)
	cache := alloccache.New(8)
	if _, err := Solve(g, cm5Fit, 16, Options{MultiStart: 2, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	// A different multi-start width selects a potentially different
	// winner, so it must not reuse the stored entry.
	res, err := Solve(g, cm5Fit, 16, Options{MultiStart: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheOutcome == "hit" {
		t.Fatal("MultiStart changed but the cache replayed a stale entry")
	}
	// A different cost model must miss entirely.
	other := cm5Fit
	other.Transfer.Tps *= 2
	res, err = Solve(g, other, 16, Options{MultiStart: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheOutcome != "miss" {
		t.Fatalf("model changed: outcome %q, want miss", res.CacheOutcome)
	}
	// The ablated objective solves a different program.
	res, err = Solve(g, cm5Fit, 16, Options{MultiStart: 2, Cache: cache, IgnoreTransfers: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheOutcome == "hit" {
		t.Fatal("IgnoreTransfers changed but the cache replayed a stale entry")
	}
}

func TestCacheEmitsObsEvents(t *testing.T) {
	g := forkJoin(0.9)
	cache := alloccache.New(8)
	rec := obs.NewRecorder()
	opts := Options{MultiStart: 2, Cache: cache, Observer: rec}
	if _, err := Solve(g, cm5Fit, 16, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(g, cm5Fit, 16, opts); err != nil {
		t.Fatal(err)
	}
	var outcomes []string
	var backends []string
	for _, e := range rec.Events() {
		switch ev := e.(type) {
		case obs.AllocCache:
			outcomes = append(outcomes, ev.Outcome)
		case obs.AllocDone:
			backends = append(backends, ev.Backend)
		}
	}
	if len(outcomes) != 2 || outcomes[0] != "miss" || outcomes[1] != "hit" {
		t.Fatalf("cache outcomes = %v, want [miss hit]", outcomes)
	}
	if len(backends) != 2 || backends[0] != "anneal" || backends[1] != "cache" {
		t.Fatalf("solve backends = %v, want [anneal cache]", backends)
	}
}

func TestCacheKeysExactVersusNear(t *testing.T) {
	hash := "deadbeef"
	e16, n16 := cacheKeys(hash, cm5Fit, 16, Options{MultiStart: 2})
	e32, n32 := cacheKeys(hash, cm5Fit, 32, Options{MultiStart: 2})
	if e16 == e32 {
		t.Fatal("exact keys must separate processor counts")
	}
	if n16 != n32 {
		t.Fatal("near keys must unify processor counts")
	}
	_, nOther := cacheKeys(hash, cm5Fit, 16, Options{MultiStart: 3})
	if nOther == n16 {
		t.Fatal("near keys must separate solve options")
	}
}
