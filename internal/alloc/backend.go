// Typed allocation-backend selectors. Options.Backend used to be a bare
// string validated deep inside SolveCtx; the typed constants move the
// contract to the API surface, with errs.ErrUnknownBackend so callers
// can dispatch on the failure, while ParseBackend keeps CLI flags as
// plain strings.
package alloc

import (
	"fmt"

	"paradigm/internal/errs"
)

// Backend names an allocation solve strategy, and — on Result — the
// path that actually produced an allocation.
type Backend string

const (
	// BackendAuto selects the default strategy (the racing annealed
	// multi-start).
	BackendAuto Backend = ""
	// BackendAnneal is the racing annealed multi-start (race.go).
	BackendAnneal Backend = "anneal"
	// BackendADMM is the consensus-ADMM decomposition (admm.go).
	BackendADMM Backend = "admm"

	// BackendHeuristic and BackendCache appear only as Result labels:
	// the greedy fallback path and the warm-start cache's exact-hit
	// replay. They are not selectable strategies.
	BackendHeuristic Backend = "heuristic"
	BackendCache     Backend = "cache"
)

// Validate reports ErrUnknownBackend for values that name no selectable
// solve strategy.
func (b Backend) Validate() error {
	switch b {
	case BackendAuto, BackendAnneal, BackendADMM:
		return nil
	}
	return fmt.Errorf("alloc: %w: %q (want %q, %q or %q)",
		errs.ErrUnknownBackend, string(b), BackendAuto, BackendAnneal, BackendADMM)
}

// String returns the backend label ("auto" for the empty default).
func (b Backend) String() string {
	if b == BackendAuto {
		return "auto"
	}
	return string(b)
}

// ParseBackend maps a CLI string to a solve strategy: "", "auto" or
// "anneal" for the default race, "admm" for the decomposition. Anything
// else fails with ErrUnknownBackend.
func ParseBackend(s string) (Backend, error) {
	if s == "auto" {
		return BackendAuto, nil
	}
	b := Backend(s)
	if err := b.Validate(); err != nil {
		return BackendAuto, err
	}
	return b, nil
}
