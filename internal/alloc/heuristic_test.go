package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paradigm/internal/costmodel"
	"paradigm/internal/mdg"
)

func TestHeuristicForkJoinReasonable(t *testing.T) {
	g := forkJoin(0.25)
	res, err := SolveHeuristic(g, costmodel.Model{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.P {
		if v < 1 || v > 4 {
			t.Fatalf("node %d allocation %v outside [1,4]", i, v)
		}
	}
	// It must beat the trivial all-ones start.
	ones := []float64{1, 1, 1, 1}
	phiOnes, _, _, err := costmodel.Model{}.Phi(g, ones, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phi > phiOnes {
		t.Fatalf("heuristic Phi %v worse than all-ones %v", res.Phi, phiOnes)
	}
}

func TestHeuristicNeverBeatsConvex(t *testing.T) {
	// The convex solution is globally optimal: on random MDGs the greedy
	// heuristic can tie but never win (beyond solver tolerance).
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		var g mdg.Graph
		n := 3 + rng.Intn(5)
		for i := 0; i < n; i++ {
			g.AddNode(mdg.Node{Alpha: rng.Float64() * 0.4, Tau: 0.05 + rng.Float64()})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.35 {
					kind := mdg.Transfer1D
					if rng.Intn(2) == 1 {
						kind = mdg.Transfer2D
					}
					g.AddEdge(mdg.NodeID(i), mdg.NodeID(j),
						mdg.Transfer{Bytes: 1024 + rng.Intn(32768), Kind: kind})
				}
			}
		}
		const procs = 16
		conv, err := Solve(&g, cm5Fit, procs, Options{})
		if err != nil {
			return false
		}
		heur, err := SolveHeuristic(&g, cm5Fit, procs)
		if err != nil {
			return false
		}
		return heur.Phi >= conv.Phi*(1-5e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHeuristicErrors(t *testing.T) {
	g := forkJoin(0.2)
	if _, err := SolveHeuristic(g, cm5Fit, 0); err == nil {
		t.Fatal("want procs error")
	}
	var cyc mdg.Graph
	a := cyc.AddNode(mdg.Node{})
	b := cyc.AddNode(mdg.Node{})
	cyc.AddEdge(a, b)
	cyc.AddEdge(b, a)
	if _, err := SolveHeuristic(&cyc, cm5Fit, 4); err == nil {
		t.Fatal("want cycle error")
	}
}
