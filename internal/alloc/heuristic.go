package alloc

import (
	"fmt"
	"math"

	"paradigm/internal/costmodel"
	"paradigm/internal/mdg"
)

// SolveHeuristic is a reconstruction of the pre-convex allocation
// heuristics the paper supersedes (Ramaswamy-Banerjee ICPP'93 [6],
// Belkhale-Banerjee [17,18], in the spirit of Prasanna-Agarwal [8]):
// critical-path-driven greedy doubling over power-of-two allocations.
//
// All nodes start at one processor. Each step recomputes the critical
// path under the current allocation, tries doubling each node on it
// (capped at procs), and commits the doubling with the lowest objective
// Φ = max(A_p, C_p), accepting non-worsening moves (symmetric parallel
// branches need several equal-Φ doublings before the objective drops).
// Doublings are monotone and capped at n·log₂(p), so termination is
// guaranteed. The result carries no global-optimality guarantee —
// precisely the gap the convex formulation closes, which ablation A5
// quantifies.
func SolveHeuristic(g *mdg.Graph, model costmodel.Model, procs int) (Result, error) {
	if procs < 1 {
		return Result{}, fmt.Errorf("alloc: procs = %d, want >= 1", procs)
	}
	if err := g.Validate(); err != nil {
		return Result{}, fmt.Errorf("alloc: invalid MDG: %w", err)
	}
	n := g.NumNodes()
	p := make([]float64, n)
	for i := range p {
		p[i] = 1
	}
	phi, _, _, err := model.Phi(g, p, procs)
	if err != nil {
		return Result{}, err
	}

	evals := 0
	maxSteps := 1
	for q := 1; q < procs; q *= 2 {
		maxSteps += n
	}
	// Exploration tolerance: a doubling may transiently lengthen sibling
	// paths (extra send startups at shared predecessors) before parallel
	// branches catch up, so moves within 5% of the incumbent are
	// accepted while the best allocation seen is remembered.
	const tolerance = 1.05
	bestP := append([]float64(nil), p...)
	bestPhi := phi
	for step := 0; step < maxSteps; step++ {
		cand := criticalNodes(g, model, p)
		moveNode := -1
		movePhi := math.Inf(1)
		for _, i := range cand {
			if p[i]*2 > float64(procs) {
				continue
			}
			p[i] *= 2
			v, _, _, err := model.Phi(g, p, procs)
			evals++
			if err != nil {
				return Result{}, err
			}
			p[i] /= 2
			if v < movePhi {
				movePhi = v
				moveNode = int(i)
			}
		}
		if moveNode < 0 || movePhi > phi*tolerance {
			break // every critical-path doubling worsens Φ too much
		}
		p[moveNode] *= 2
		phi = movePhi
		if phi < bestPhi {
			bestPhi = phi
			copy(bestP, p)
		}
	}

	res := Result{P: bestP}
	res.Phi, res.Ap, res.Cp, err = model.Phi(g, bestP, procs)
	if err != nil {
		return Result{}, err
	}
	res.Solver.Evals = evals
	return res, nil
}

// criticalNodes returns the nodes on one critical path under allocation p
// (the argmax chain of the y_i recursion).
func criticalNodes(g *mdg.Graph, model costmodel.Model, p []float64) []mdg.NodeID {
	y, _, err := g.CriticalPath(
		func(i mdg.NodeID) float64 { return model.NodeWeight(g, i, p) },
		func(e mdg.Edge) float64 { return model.EdgeDelay(g, e, p) },
	)
	if err != nil {
		return nil
	}
	// Walk back from the max-finish node through the binding predecessor.
	cur := mdg.NodeID(0)
	for i := range y {
		if y[i] > y[cur] {
			cur = mdg.NodeID(i)
		}
	}
	var path []mdg.NodeID
	for {
		path = append(path, cur)
		preds := g.Preds(cur)
		if len(preds) == 0 {
			break
		}
		best := preds[0]
		bestT := math.Inf(-1)
		for _, m := range preds {
			e, _ := g.EdgeBetween(m, cur)
			if t := y[m] + model.EdgeDelay(g, e, p); t > bestT {
				bestT = t
				best = m
			}
		}
		cur = best
	}
	return path
}
