package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"paradigm/internal/alloc"
	"paradigm/internal/codegen"
	"paradigm/internal/dist"
	"paradigm/internal/kernels"
	"paradigm/internal/machine"
	"paradigm/internal/prog"
	"paradigm/internal/sched"
	"paradigm/internal/sim"
	"paradigm/internal/trainsets"
)

// tinyProgram builds a 2-node program with a real transfer.
func tinyProgram(t *testing.T) (*prog.Program, *sched.Schedule, *sim.Result) {
	t.Helper()
	cal, err := trainsets.Calibrate(machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	b := prog.NewBuilder("tiny")
	initK := kernels.Kernel{Op: kernels.OpInit, M: 16, N: 16,
		Init: func(i, j int) float64 { return float64(i + j) }}
	addK := kernels.Kernel{Op: kernels.OpAdd, M: 16, N: 16}
	lpI, _ := cal.Loop("i", initK)
	lpA, _ := cal.Loop("a", addK)
	b.AddNode("src", prog.NodeSpec{Kernel: initK, Output: "X", Axis: dist.ByRow}, lpI)
	b.AddNode("dbl", prog.NodeSpec{Kernel: addK, Inputs: []string{"X", "X"}, Output: "Y", Axis: dist.ByCol}, lpA)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	model := cal.Model()
	ar, err := alloc.Solve(p.G, model, 4, alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(p.G, model, ar.P, 4, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := codegen.Generate(p, s)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run(p, streams, machine.CM5(4))
	if err != nil {
		t.Fatal(err)
	}
	return p, s, r
}

// parsed mirrors the trace file structure for decoding in tests.
type parsed struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	} `json:"traceEvents"`
}

func TestWriteScheduleProducesValidJSON(t *testing.T) {
	p, s, _ := tinyProgram(t)
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, p.G, s); err != nil {
		t.Fatal(err)
	}
	var out parsed
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	names := map[string]bool{}
	for _, e := range out.TraceEvents {
		if e.Ph != "X" || e.Dur <= 0 || e.Ts < 0 {
			t.Fatalf("bad event %+v", e)
		}
		if e.Pid != 0 || e.Cat != "predicted" {
			t.Fatalf("schedule events must be pid 0 predicted: %+v", e)
		}
		names[e.Name] = true
	}
	if !names["src"] || !names["dbl"] {
		t.Fatalf("missing node events: %v", names)
	}
	// Dummy START/STOP (zero duration) must be filtered.
	if names["START"] || names["STOP"] {
		t.Fatal("zero-length dummies should be omitted")
	}
}

func TestWriteRunAlignsPredictionAndActual(t *testing.T) {
	p, s, r := tinyProgram(t)
	var buf bytes.Buffer
	if err := WriteRun(&buf, p.G, s, r); err != nil {
		t.Fatal(err)
	}
	var out parsed
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	pids := map[int]int{}
	for _, e := range out.TraceEvents {
		pids[e.Pid]++
	}
	if pids[0] == 0 || pids[1] == 0 {
		t.Fatalf("want events on both pid 0 (predicted) and pid 1 (actual): %v", pids)
	}
}

func TestWriteRunRejectsMismatch(t *testing.T) {
	p, s, r := tinyProgram(t)
	r.NodeStart = r.NodeStart[:1]
	var buf bytes.Buffer
	if err := WriteRun(&buf, p.G, s, r); err == nil {
		t.Fatal("want mismatch error")
	}
}

func TestWriteScheduleEmpty(t *testing.T) {
	// A schedule of only zero-duration dummies yields a valid trace with
	// no events.
	_, s, _ := tinyProgram(t)
	for i := range s.Entries {
		s.Entries[i].Finish = s.Entries[i].Start
	}
	var buf bytes.Buffer
	p2, _, _ := tinyProgram(t)
	if err := WriteSchedule(&buf, p2.G, s); err != nil {
		t.Fatal(err)
	}
	var out parsed
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != 0 {
		t.Fatalf("expected no events, got %d", len(out.TraceEvents))
	}
}
