// Package trace exports schedules and simulated runs in the Chrome Trace
// Event format (the JSON consumed by chrome://tracing and Perfetto), so
// predicted and actual executions can be inspected visually next to each
// other: one track per processor, one complete event per (node,
// processor) occupancy.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"paradigm/internal/mdg"
	"paradigm/internal/sched"
	"paradigm/internal/sim"
)

// event is one Chrome trace event (the "X" complete-event form).
type event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// file is the top-level trace container.
type file struct {
	TraceEvents []event `json:"traceEvents"`
	DisplayUnit string  `json:"displayTimeUnit"`
	// OtherData carries run-level annotations (Chrome trace format's
	// free-form metadata object); omitted when empty so historical
	// exports stay byte-identical.
	OtherData map[string]string `json:"otherData,omitempty"`
}

const secToUs = 1e6

// WriteSchedule exports a PSA (or SPMD) schedule: the model's *predicted*
// execution. pid 0 groups the prediction.
func WriteSchedule(w io.Writer, g *mdg.Graph, s *sched.Schedule) error {
	f := file{DisplayUnit: "ms"}
	for i, e := range s.Entries {
		name := g.Nodes[i].Name
		if name == "" {
			name = fmt.Sprintf("n%d", i)
		}
		if e.Finish <= e.Start {
			continue // zero-length dummies clutter the view
		}
		for _, p := range e.Procs {
			f.TraceEvents = append(f.TraceEvents, event{
				Name: name,
				Cat:  "predicted",
				Ph:   "X",
				Ts:   e.Start * secToUs,
				Dur:  (e.Finish - e.Start) * secToUs,
				Pid:  0,
				Tid:  p,
				Args: map[string]any{
					"node":  fmt.Sprintf("%d", i),
					"procs": fmt.Sprintf("%d", len(e.Procs)),
				},
			})
		}
	}
	return json.NewEncoder(w).Encode(f)
}

// WriteRun exports a simulated run's actual node windows next to the
// schedule's predictions: pid 0 carries the prediction, pid 1 the
// simulated actuality, aligned on the same time axis.
func WriteRun(w io.Writer, g *mdg.Graph, s *sched.Schedule, r *sim.Result) error {
	if len(r.NodeStart) != g.NumNodes() {
		return fmt.Errorf("trace: run covers %d nodes, graph has %d", len(r.NodeStart), g.NumNodes())
	}
	f := file{DisplayUnit: "ms"}
	add := func(pid int, cat string, name string, tid int, start, finish float64, node int, q int) {
		if finish <= start {
			return
		}
		f.TraceEvents = append(f.TraceEvents, event{
			Name: name, Cat: cat, Ph: "X",
			Ts: start * secToUs, Dur: (finish - start) * secToUs,
			Pid: pid, Tid: tid,
			Args: map[string]any{
				"node":  fmt.Sprintf("%d", node),
				"procs": fmt.Sprintf("%d", q),
			},
		})
	}
	for i, e := range s.Entries {
		name := g.Nodes[i].Name
		if name == "" {
			name = fmt.Sprintf("n%d", i)
		}
		for _, p := range e.Procs {
			add(0, "predicted", name, p, e.Start, e.Finish, i, len(e.Procs))
			add(1, "actual", name, p, r.NodeStart[i], r.NodeFinish[i], i, len(e.Procs))
		}
	}
	return json.NewEncoder(w).Encode(f)
}
