package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"paradigm/internal/obs"
)

func TestWriteUnifiedMergesEventTracks(t *testing.T) {
	p, s, r := tinyProgram(t)
	events := []obs.Event{
		// Out of order on purpose: the exporter must sort by intrinsic
		// coordinates, not arrival order.
		obs.SolverStage{StartIdx: 0, Stage: 1, Temp: 0.1, Phi: 0.8, Iters: 10, Evals: 20, Status: "converged"},
		obs.SolverStage{StartIdx: 0, Stage: 0, Temp: 1.0, Phi: 0.9, Iters: 12, Evals: 24, Status: "converged"},
		obs.PSARound{Node: 1, Continuous: 2.7, Rounded: 4, Final: 2, Clipped: true},
		obs.PSAPick{Node: 1, EST: 0.1, PST: 0.2, Start: 0.2, Finish: 0.5, Procs: 2},
		obs.Comm{Tag: "X", From: 0, To: 1, Bytes: 128, SendStart: 0.1, SendEnd: 0.12, NetReady: 0.13, RecvStart: 0.14, RecvEnd: 0.15},
	}
	var buf bytes.Buffer
	if err := WriteUnified(&buf, p.G, s, r, events); err != nil {
		t.Fatal(err)
	}
	var out parsed
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	pids := map[int]int{}
	phases := map[string]int{}
	for _, e := range out.TraceEvents {
		pids[e.Pid]++
		phases[e.Ph]++
	}
	for pid := pidPredicted; pid <= pidSolver; pid++ {
		if pids[pid] == 0 {
			t.Fatalf("no events on pid %d: %v", pid, pids)
		}
	}
	if phases["M"] != 4 {
		t.Fatalf("want 4 process_name metadata events, got %d", phases["M"])
	}
	if phases["C"] != 2 {
		t.Fatalf("want 2 solver counter samples, got %d", phases["C"])
	}
	if phases["i"] != 1 {
		t.Fatalf("want 1 PSA pick instant, got %d", phases["i"])
	}
	// The solver counter track must come out stage-sorted.
	var counterTs []float64
	for _, e := range out.TraceEvents {
		if e.Ph == "C" {
			counterTs = append(counterTs, e.Ts)
		}
	}
	if len(counterTs) == 2 && counterTs[0] > counterTs[1] {
		t.Fatalf("counter samples not stage-sorted: %v", counterTs)
	}
}

func TestWriteUnifiedNilEventsMatchesRunShape(t *testing.T) {
	p, s, r := tinyProgram(t)
	var uni, run bytes.Buffer
	if err := WriteUnified(&uni, p.G, s, r, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteRun(&run, p.G, s, r); err != nil {
		t.Fatal(err)
	}
	var u, w parsed
	if err := json.Unmarshal(uni.Bytes(), &u); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(run.Bytes(), &w); err != nil {
		t.Fatal(err)
	}
	// Identical occupancy slices; the unified form adds only the four
	// track-name metadata records.
	if got, want := len(u.TraceEvents), len(w.TraceEvents)+4; got != want {
		t.Fatalf("unified has %d events, want %d (run %d + 4 metadata)", got, want, len(w.TraceEvents))
	}
}

func TestWriteUnifiedRejectsMismatch(t *testing.T) {
	p, s, r := tinyProgram(t)
	r.NodeStart = r.NodeStart[:1]
	var buf bytes.Buffer
	if err := WriteUnified(&buf, p.G, s, r, nil); err == nil {
		t.Fatal("want mismatch error")
	}
}
