// Unified export: merge the predicted/actual execution tracks with the
// pipeline's structured observability events into one Chrome/Perfetto
// trace — the solver's convergence as a counter track, the PSA's
// decisions as instants on the predicted timeline, and every simulated
// message as a slice on a communication track.
//
// Events may arrive in worker-pool emission order (multi-start solves
// run concurrently), so every track sorts by the events' intrinsic
// coordinates before encoding: the export is byte-deterministic for a
// deterministic pipeline run.

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"paradigm/internal/mdg"
	"paradigm/internal/obs"
	"paradigm/internal/sched"
	"paradigm/internal/sim"
)

// Process ids of the unified trace.
const (
	pidPredicted = 0 // the PSA schedule (model time)
	pidActual    = 1 // the simulated run (simulated time)
	pidComm      = 2 // per-message traffic, one row per receiving processor
	pidSolver    = 3 // solver convergence, one counter track per start
)

// Meta carries run-level annotations into the trace file's metadata
// object.
type Meta struct {
	// Machine names the machine model the run targeted (e.g. "CM5",
	// "Paragon-memcap8"); empty omits the annotation.
	Machine string
	// MachineKind is the backend family ("trained", "analytical",
	// "file"); empty omits the annotation.
	MachineKind string
}

// WriteUnified exports the schedule, the simulated run, and the recorded
// pipeline events as one trace file. events may be nil (the output then
// matches WriteRun plus track metadata).
func WriteUnified(w io.Writer, g *mdg.Graph, s *sched.Schedule, r *sim.Result, events []obs.Event) error {
	return WriteUnifiedMeta(w, g, s, r, events, Meta{})
}

// WriteUnifiedMeta is WriteUnified with run-level metadata attached; a
// zero Meta writes an identical file.
func WriteUnifiedMeta(w io.Writer, g *mdg.Graph, s *sched.Schedule, r *sim.Result, events []obs.Event, meta Meta) error {
	if len(r.NodeStart) != g.NumNodes() {
		return fmt.Errorf("trace: run covers %d nodes, graph has %d", len(r.NodeStart), g.NumNodes())
	}
	f := file{DisplayUnit: "ms"}
	if meta.Machine != "" {
		f.OtherData = map[string]string{"machine": meta.Machine}
		if meta.MachineKind != "" {
			f.OtherData["machine_kind"] = meta.MachineKind
		}
	}

	// Named process tracks so Perfetto labels the pid groups.
	for pid, name := range map[int]string{
		pidPredicted: "predicted (PSA schedule)",
		pidActual:    "actual (simulated)",
		pidComm:      "comm (messages)",
		pidSolver:    "solver (convex anneal)",
	} {
		f.TraceEvents = append(f.TraceEvents, event{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	sort.Slice(f.TraceEvents, func(a, b int) bool { return f.TraceEvents[a].Pid < f.TraceEvents[b].Pid })

	// Predicted and actual node occupancy, as in WriteRun.
	add := func(pid int, cat, name string, tid int, start, finish float64, args map[string]any) {
		if finish <= start {
			return
		}
		f.TraceEvents = append(f.TraceEvents, event{
			Name: name, Cat: cat, Ph: "X",
			Ts: start * secToUs, Dur: (finish - start) * secToUs,
			Pid: pid, Tid: tid, Args: args,
		})
	}
	// PSA decisions index by node; collect them first so the predicted
	// slices can carry the rounding context.
	rounds := map[int]obs.PSARound{}
	var picks []obs.PSAPick
	var comms []obs.Comm
	var stages []obs.SolverStage
	for _, e := range events {
		switch ev := e.(type) {
		case obs.PSARound:
			rounds[ev.Node] = ev
		case obs.PSAPick:
			picks = append(picks, ev)
		case obs.Comm:
			comms = append(comms, ev)
		case obs.SolverStage:
			stages = append(stages, ev)
		}
	}

	for i, e := range s.Entries {
		name := g.Nodes[i].Name
		if name == "" {
			name = fmt.Sprintf("n%d", i)
		}
		args := map[string]any{
			"node":  fmt.Sprintf("%d", i),
			"procs": fmt.Sprintf("%d", len(e.Procs)),
		}
		if rd, ok := rounds[i]; ok {
			args["p_continuous"] = fmt.Sprintf("%.3f", rd.Continuous)
			args["p_rounded"] = fmt.Sprintf("%d", rd.Rounded)
			if rd.Clipped {
				args["pb_clipped"] = "true"
			}
		}
		for _, p := range e.Procs {
			add(pidPredicted, "predicted", name, p, e.Start, e.Finish, args)
			add(pidActual, "actual", name, p, r.NodeStart[i], r.NodeFinish[i], args)
		}
	}

	// PSA picks: instants on the predicted timeline at the pick's start,
	// on the row of the first granted processor (tid 0 keeps rows stable
	// when the pick context is unknown).
	sort.Slice(picks, func(a, b int) bool {
		if picks[a].Start != picks[b].Start {
			return picks[a].Start < picks[b].Start
		}
		return picks[a].Node < picks[b].Node
	})
	for _, p := range picks {
		tid := 0
		if p.Node < len(s.Entries) && len(s.Entries[p.Node].Procs) > 0 {
			tid = s.Entries[p.Node].Procs[0]
		}
		f.TraceEvents = append(f.TraceEvents, event{
			Name: fmt.Sprintf("pick n%d", p.Node), Cat: "psa", Ph: "i",
			Ts: p.Start * secToUs, Pid: pidPredicted, Tid: tid,
			Args: map[string]any{
				"est":   fmt.Sprintf("%.6f", p.EST),
				"pst":   fmt.Sprintf("%.6f", p.PST),
				"wait":  fmt.Sprintf("%.6f", p.Start-p.EST),
				"procs": fmt.Sprintf("%d", p.Procs),
			},
		})
	}

	// Per-message comm slices: sender-to-receiver latency on the
	// receiving processor's row of the comm track.
	sort.Slice(comms, func(a, b int) bool {
		if comms[a].SendStart != comms[b].SendStart {
			return comms[a].SendStart < comms[b].SendStart
		}
		return comms[a].Tag < comms[b].Tag
	})
	for _, c := range comms {
		f.TraceEvents = append(f.TraceEvents, event{
			Name: c.Tag, Cat: "comm", Ph: "X",
			Ts: c.SendStart * secToUs, Dur: (c.RecvEnd - c.SendStart) * secToUs,
			Pid: pidComm, Tid: c.To,
			Args: map[string]any{
				"from":       fmt.Sprintf("%d", c.From),
				"to":         fmt.Sprintf("%d", c.To),
				"bytes":      fmt.Sprintf("%d", c.Bytes),
				"net_ready":  fmt.Sprintf("%.6f", c.NetReady),
				"recv_start": fmt.Sprintf("%.6f", c.RecvStart),
			},
		})
	}

	// Solver convergence: one counter track per multi-start, sampled at
	// the stage index (the anneal has no wall-clock of its own — stage
	// order is its time axis).
	sort.Slice(stages, func(a, b int) bool {
		if stages[a].StartIdx != stages[b].StartIdx {
			return stages[a].StartIdx < stages[b].StartIdx
		}
		return stages[a].Stage < stages[b].Stage
	})
	for _, st := range stages {
		f.TraceEvents = append(f.TraceEvents, event{
			Name: fmt.Sprintf("phi start%d", st.StartIdx), Cat: "solver", Ph: "C",
			Ts: float64(st.Stage), Pid: pidSolver, Tid: st.StartIdx,
			Args: map[string]any{
				"phi": st.Phi,
			},
		})
	}

	return json.NewEncoder(w).Encode(f)
}
