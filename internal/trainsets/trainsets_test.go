package trainsets

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"paradigm/internal/kernels"
	"paradigm/internal/machine"
	"paradigm/internal/mdg"
	"paradigm/internal/obs"
)

var cm5 = machine.CM5(64)

func sweep() []int { return []int{1, 2, 4, 8, 16, 32, 64} }

func TestCalibrateLoopMulMatchesPaperBallpark(t *testing.T) {
	k := kernels.Kernel{Op: kernels.OpMul, M: 64, N: 64, K: 64}
	lf, err := CalibrateLoop(cm5, "Matrix Multiply (64x64)", k, sweep())
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 1: α = 12.1%, τ = 298.47 ms. Same magnitude expected.
	if lf.Params.Tau < 0.15 || lf.Params.Tau > 0.45 {
		t.Fatalf("τ = %v, want ~0.3 s", lf.Params.Tau)
	}
	if lf.Params.Alpha < 0.02 || lf.Params.Alpha > 0.30 {
		t.Fatalf("α = %v, want ~0.12", lf.Params.Alpha)
	}
	if lf.R2 < 0.95 {
		t.Fatalf("R² = %v, fit too loose", lf.R2)
	}
}

func TestCalibrateLoopAddLowerAlphaThanMul(t *testing.T) {
	add := kernels.Kernel{Op: kernels.OpAdd, M: 64, N: 64}
	mul := kernels.Kernel{Op: kernels.OpMul, M: 64, N: 64, K: 64}
	la, err := CalibrateLoop(cm5, "add", add, sweep())
	if err != nil {
		t.Fatal(err)
	}
	lm, err := CalibrateLoop(cm5, "mul", mul, sweep())
	if err != nil {
		t.Fatal(err)
	}
	// Paper ordering: α_add (6.7%) < α_mul (12.1%).
	if la.Params.Alpha >= lm.Params.Alpha {
		t.Fatalf("α_add %v should be below α_mul %v", la.Params.Alpha, lm.Params.Alpha)
	}
	// τ_add ≈ 3.7 ms scale.
	if la.Params.Tau < 1e-3 || la.Params.Tau > 10e-3 {
		t.Fatalf("τ_add = %v", la.Params.Tau)
	}
}

func TestCalibrateLoopPredictionsCloseToMeasurements(t *testing.T) {
	k := kernels.Kernel{Op: kernels.OpMul, M: 64, N: 64, K: 64}
	lf, err := CalibrateLoop(cm5, "mul", k, sweep())
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3's visual claim: predicted tracks measured closely.
	for _, s := range lf.Samples {
		rel := math.Abs(s.Predicted-s.Measured) / s.Measured
		if rel > 0.35 {
			t.Fatalf("at p=%d: predicted %v vs measured %v (rel %v)", s.Procs, s.Predicted, s.Measured, rel)
		}
	}
}

func TestCalibrateLoopErrors(t *testing.T) {
	k := kernels.Kernel{Op: kernels.OpAdd, M: 4, N: 4}
	if _, err := CalibrateLoop(cm5, "x", k, []int{1}); err == nil {
		t.Fatal("want error for short sweep")
	}
	if _, err := CalibrateLoop(cm5, "x", k, []int{1, 0}); err == nil {
		t.Fatal("want error for bad count")
	}
	if _, err := CalibrateLoop(cm5, "x", kernels.Kernel{Op: kernels.OpAdd}, sweep()); err == nil {
		t.Fatal("want error for invalid kernel")
	}
}

func TestMeasureTransfer1DSymmetric(t *testing.T) {
	send, recv, _, err := MeasureTransfer(cm5, mdg.Transfer1D, 32768, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Each of 4 senders sends its quarter in one message.
	wantSend := cm5.SendStartup + 32768.0/4*cm5.SendPerByte
	wantRecv := cm5.RecvStartup + cm5.MsgMatchOverhead + 32768.0/4*cm5.RecvPerByte
	if math.Abs(send-wantSend) > 1e-12 || math.Abs(recv-wantRecv) > 1e-12 {
		t.Fatalf("send %v recv %v, want %v %v", send, recv, wantSend, wantRecv)
	}
}

func TestMeasureTransfer2DMoreMessages(t *testing.T) {
	s1, r1, _, err := MeasureTransfer(cm5, mdg.Transfer1D, 32768, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, r2, _, err := MeasureTransfer(cm5, mdg.Transfer2D, 32768, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s2 <= s1 || r2 <= r1 {
		t.Fatalf("2D (%v,%v) should cost more than 1D (%v,%v)", s2, r2, s1, r1)
	}
}

func TestMeasureTransferErrors(t *testing.T) {
	if _, _, _, err := MeasureTransfer(cm5, mdg.Transfer1D, 32768, 0, 4); err == nil {
		t.Fatal("want group size error")
	}
	if _, _, _, err := MeasureTransfer(cm5, mdg.Transfer1D, 4, 1, 1); err == nil {
		t.Fatal("want tiny array error")
	}
}

func TestCalibrateTransfersRecoversMachineParams(t *testing.T) {
	tf, err := CalibrateTransfers(cm5, DefaultTransferConfigs(64))
	if err != nil {
		t.Fatal(err)
	}
	p := tf.Params
	// The fitted send parameters should recover the machine's ground
	// truth closely (the send path has no unmodeled overheads).
	if rel := math.Abs(p.Tss-cm5.SendStartup) / cm5.SendStartup; rel > 0.15 {
		t.Fatalf("t_ss = %v vs truth %v", p.Tss, cm5.SendStartup)
	}
	if rel := math.Abs(p.Tps-cm5.SendPerByte) / cm5.SendPerByte; rel > 0.15 {
		t.Fatalf("t_ps = %v vs truth %v", p.Tps, cm5.SendPerByte)
	}
	// The receive fit absorbs the per-message matching overhead:
	// t_sr ≈ RecvStartup + MsgMatchOverhead.
	wantTsr := cm5.RecvStartup + cm5.MsgMatchOverhead
	if rel := math.Abs(p.Tsr-wantTsr) / wantTsr; rel > 0.15 {
		t.Fatalf("t_sr = %v vs truth+overhead %v", p.Tsr, wantTsr)
	}
	if p.Tn != 0 {
		t.Fatalf("t_n = %v, CM-5 semantics demand 0", p.Tn)
	}
	if tf.SendR2 < 0.99 || tf.RecvR2 < 0.99 {
		t.Fatalf("R² = %v/%v, fits too loose", tf.SendR2, tf.RecvR2)
	}
}

func TestCalibrateTransfersNeedsConfigs(t *testing.T) {
	if _, err := CalibrateTransfers(cm5, nil); err == nil {
		t.Fatal("want error for no configs")
	}
}

func TestCalibrationCachingAndModel(t *testing.T) {
	c, err := Calibrate(cm5)
	if err != nil {
		t.Fatal(err)
	}
	k := kernels.Kernel{Op: kernels.OpAdd, M: 64, N: 64}
	lp1, err := c.Loop("add64", k)
	if err != nil {
		t.Fatal(err)
	}
	lp2, err := c.Loop("add64", k)
	if err != nil {
		t.Fatal(err)
	}
	if lp1 != lp2 {
		t.Fatal("cached fit differs")
	}
	if len(c.LoopFits()) != 1 {
		t.Fatalf("LoopFits = %d entries", len(c.LoopFits()))
	}
	m := c.Model()
	if m.Transfer.Tss <= 0 {
		t.Fatal("model transfer params empty")
	}
	if _, err := c.LoopFit("add64", k); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateRejectsBadMachine(t *testing.T) {
	bad := cm5
	bad.Procs = 0
	if _, err := Calibrate(bad); err == nil {
		t.Fatal("want machine validation error")
	}
}

// TestTransferPredictionsTrackMeasurements: Figure 5's claim, as a
// property over random configurations.
func TestTransferPredictionsTrackMeasurements(t *testing.T) {
	tf, err := CalibrateTransfers(cm5, DefaultTransferConfigs(64))
	if err != nil {
		t.Fatal(err)
	}
	f := func(idx uint16) bool {
		s := tf.Samples[int(idx)%len(tf.Samples)]
		okSend := math.Abs(s.PredictedSend-s.MeasuredSend) <= 0.30*s.MeasuredSend+1e-6
		okRecv := math.Abs(s.PredictedRecv-s.MeasuredRecv) <= 0.30*s.MeasuredRecv+1e-6
		return okSend && okRecv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCalibrateTransfers(b *testing.B) {
	cfgs := DefaultTransferConfigs(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CalibrateTransfers(cm5, cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStaticLoopParams(t *testing.T) {
	mul := kernels.Kernel{Op: kernels.OpMul, M: 64, N: 64, K: 64}
	lp, err := StaticLoopParams(cm5, mul, 64)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Tau <= 0 || lp.Alpha <= 0 || lp.Alpha > 1 {
		t.Fatalf("static params %+v", lp)
	}
	// Endpoint-exact by construction.
	if math.Abs(lp.Processing(1)-mul.SerialTime(cm5)) > 1e-12 {
		t.Fatal("static estimate must be exact at q=1")
	}
	if math.Abs(lp.Processing(64)-mul.MaxProcTime(cm5, 64)) > 1e-9*lp.Tau {
		t.Fatal("static estimate must be exact at q=procs")
	}
	if _, err := StaticLoopParams(cm5, mul, 1); err == nil {
		t.Fatal("want error for procs < 2")
	}
	if _, err := StaticLoopParams(cm5, kernels.Kernel{Op: kernels.OpAdd}, 8); err == nil {
		t.Fatal("want error for invalid kernel")
	}
	// Dummy kernels estimate to zero cost.
	z, err := StaticLoopParams(cm5, kernels.Kernel{Op: kernels.OpNone}, 8)
	if err != nil || z.Tau != 0 {
		t.Fatalf("OpNone static = %+v err %v", z, err)
	}
}

func TestMeasureRobustMedian(t *testing.T) {
	// Odd count: exact middle value of the sorted draws.
	seq := []float64{5, 1, 3}
	i := 0
	v, err := measureRobust(3, func() float64 { v := seq[i%len(seq)]; i++; return v })
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("median = %v, want 3", v)
	}
}

func TestMeasureRobustRejectsNonFinite(t *testing.T) {
	// NaN and Inf draws are discarded; bounded retry (2k draws) still
	// collects enough finite readings.
	seq := []float64{math.NaN(), 2, math.Inf(1), 4, 6}
	i := 0
	v, err := measureRobust(3, func() float64 { v := seq[i%len(seq)]; i++; return v })
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Fatalf("median = %v, want 4 (non-finite draws discarded)", v)
	}
}

func TestMeasureRobustAllBadErrors(t *testing.T) {
	if _, err := measureRobust(3, func() float64 { return math.NaN() }); err == nil {
		t.Fatal("want error when every draw is non-finite")
	}
}

func TestMeasureRobustEvenCountAverages(t *testing.T) {
	// If the bounded retry ends with an even sample count the two middle
	// values average. Force it: k=2, both draws finite.
	seq := []float64{1, 3}
	i := 0
	v, err := measureRobust(2, func() float64 { v := seq[i%len(seq)]; i++; return v })
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("even-count median = %v, want 2", v)
	}
}

func TestMeasureRobustDeterministicOnStableMeasure(t *testing.T) {
	// On the deterministic simulator every draw coincides, so the median
	// equals the single measurement — the fit pipeline stays bit-identical.
	v, err := measureRobust(3, func() float64 { return 0.125 })
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.125 {
		t.Fatalf("stable measure median = %v, want 0.125", v)
	}
}

func TestCalibFitWarningTracksR2(t *testing.T) {
	// Every CalibFit event's Warning flag must equal R2 < R2WarnThreshold;
	// the clean CM-5 sweeps fit well, so none should warn.
	rec := obs.NewRecorder()
	cal, err := CalibrateCtx(context.Background(), machine.CM5(8), rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cal.Loop("Matrix Multiply (16x16)", kernels.Kernel{Op: kernels.OpMul, M: 16, N: 16, K: 16}); err != nil {
		t.Fatal(err)
	}
	fits := 0
	for _, e := range rec.Events() {
		cf, ok := e.(obs.CalibFit)
		if !ok {
			continue
		}
		fits++
		if cf.Warning != (cf.R2 < R2WarnThreshold) {
			t.Fatalf("fit %q: Warning = %v with R2 = %v (threshold %v)",
				cf.Name, cf.Warning, cf.R2, R2WarnThreshold)
		}
		if cf.Warning {
			t.Fatalf("clean CM-5 fit %q unexpectedly warned (R2 = %v)", cf.Name, cf.R2)
		}
	}
	if fits < 3 {
		t.Fatalf("saw %d CalibFit events, want transfer-send, transfer-recv and the loop fit", fits)
	}
}
