package trainsets

import (
	"fmt"

	"paradigm/internal/costmodel"
	"paradigm/internal/kernels"
	"paradigm/internal/machine"
)

// StaticLoopParams estimates a loop's Amdahl parameters without any
// measurement sweep — the compile-time estimation alternative the paper
// mentions (Gupta-Banerjee [2, 11]) to "eliminate the need for some of
// the measurements in the future".
//
// The estimate uses only two analytic evaluations of the machine's
// datasheet formulas: the serial time gives τ directly, and a two-point
// Amdahl fit between q = 1 and q = procs gives α:
//
//	t(q) = ατ + (1-α)τ/q  ⇒  α = (P·t(P) − τ) / (τ·(P − 1))
//
// Compared with the full training-sets regression the estimate is
// cheaper but systematically less accurate in the middle of the
// processor range (it interpolates only the endpoints); the
// AblationStaticEstimate experiment quantifies the gap.
func StaticLoopParams(mp machine.Params, k kernels.Kernel, procs int) (costmodel.LoopParams, error) {
	if err := k.Validate(); err != nil {
		return costmodel.LoopParams{}, err
	}
	if procs < 2 {
		return costmodel.LoopParams{}, fmt.Errorf("trainsets: static estimate needs procs >= 2, got %d", procs)
	}
	tau := k.SerialTime(mp)
	if tau <= 0 {
		return costmodel.LoopParams{Alpha: 0, Tau: 0}, nil
	}
	tp := k.MaxProcTime(mp, procs)
	p := float64(procs)
	alpha := (p*tp - tau) / (tau * (p - 1))
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	return costmodel.LoopParams{Alpha: alpha, Tau: tau}, nil
}
