// The trained machine-model backend: today's training-sets regression
// served through the machine.Backend interface. It is a thin view over a
// Calibration — loop fits come from the lazy Amdahl sweeps, the transfer
// surface from the Table 2 regression — so pipelines driven through the
// interface stay byte-identical to ones driven through the Calibration
// directly.
package trainsets

import (
	"paradigm/internal/costmodel"
	"paradigm/internal/machine"
)

// Trained adapts a Calibration to machine.Backend. (Calibration itself
// cannot implement the interface: its exported Transfer field already
// occupies the method name.)
type Trained struct {
	cal *Calibration
}

// Backend returns the calibration's machine.Backend view.
func (c *Calibration) Backend() *Trained { return &Trained{cal: c} }

// Calibration returns the underlying fitted calibration.
func (t *Trained) Calibration() *Calibration { return t.cal }

// Name implements machine.Backend.
func (t *Trained) Name() string { return t.cal.Machine.Name }

// Kind implements machine.Backend.
func (t *Trained) Kind() machine.Kind { return machine.KindTrained }

// Procs implements machine.Backend.
func (t *Trained) Procs() int { return t.cal.Machine.Procs }

// SimParams implements machine.Backend.
func (t *Trained) SimParams() machine.Params { return t.cal.Machine }

// Transfer implements machine.Backend with the fitted Table 2 surface.
func (t *Trained) Transfer() costmodel.TransferParams { return t.cal.Transfer.Params }

// Loop implements machine.Backend with the lazy Table 1 fits.
func (t *Trained) Loop(name string, spec machine.LoopSpec) (costmodel.LoopParams, error) {
	return t.cal.Loop(name, spec)
}

// Speed implements machine.Backend.
func (t *Trained) Speed(proc int) float64 { return t.cal.Machine.SpeedOf(proc) }

// Capacity implements machine.Backend.
func (t *Trained) Capacity(proc int) int64 { return t.cal.Machine.CapacityOf(proc) }

// Topology implements machine.Backend.
func (t *Trained) Topology() machine.Topology {
	return machine.DefaultTopology(t.cal.Machine.Name, t.cal.Machine.Procs)
}

// Interface conformance checks for the three backend families.
var _ machine.Backend = (*Trained)(nil)
var _ machine.LoopSource = (*Calibration)(nil)
