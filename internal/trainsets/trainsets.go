// Package trainsets implements the Training Sets calibration methodology
// of Section 4 (following Balasundaram et al. [10]): run microbenchmarks
// on the target machine, then fit the free parameters of the posynomial
// cost models by linear regression.
//
//   - Loop calibration (Table 1, Figure 3): measure each loop nest's
//     execution time over a sweep of processor counts and fit Amdahl's
//     (α, τ). The measurement comes from the machine ground truth in
//     internal/kernels — the exact arithmetic the simulator charges for
//     an EXEC — which includes ceiling imbalance and collectives the
//     Amdahl form can only approximate.
//
//   - Transfer calibration (Table 2, Figure 5): measure redistribution
//     send/receive busy times over sweeps of (p_i, p_j, L) for both 1D
//     and 2D patterns, and fit (t_ss, t_ps) and (t_sr, t_pr). The
//     measurement enumerates the exact message lists of internal/dist and
//     charges the simulator's per-message costs; per-message matching
//     overhead and ceiling effects land in the fit as residuals, exactly
//     as real-machine noise did for the authors. t_n is 0 by the CM-5
//     receive semantics (Section 4's discussion).
package trainsets

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"paradigm/internal/costmodel"
	"paradigm/internal/dist"
	"paradigm/internal/machine"
	"paradigm/internal/mdg"
	"paradigm/internal/obs"
	"paradigm/internal/par"
	"paradigm/internal/regress"
)

// R2WarnThreshold is the fit-quality floor: a regression whose R² falls
// below it is kept (the pipeline still needs parameters) but its
// obs.CalibFit event carries Warning, and the fold counts it under
// calib_fit_warnings_total. 0.9 keeps the paper's own fits comfortably
// clean while flagging genuinely broken measurement sweeps.
const R2WarnThreshold = 0.9

// robustSamples is the per-point measurement redundancy: each sweep
// point is measured this many times and the median taken, rejecting
// outliers and non-finite readings. On the deterministic simulated
// machine all draws coincide, so fits stay bit-identical to the
// single-measurement pipeline; on a noisy host the median is what makes
// the regression trustworthy.
const robustSamples = 3

// measureRobust draws up to 2×k samples from measure until k finite
// readings accumulate, then returns their median — bounded retry with
// outlier rejection for one calibration sweep point.
func measureRobust(k int, measure func() float64) (float64, error) {
	if k < 1 {
		k = 1
	}
	vals := make([]float64, 0, k)
	for draws := 0; len(vals) < k && draws < 2*k; draws++ {
		if v := measure(); !math.IsNaN(v) && !math.IsInf(v, 0) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, fmt.Errorf("trainsets: no finite measurement in %d attempts", 2*k)
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid], nil
	}
	return (vals[mid-1] + vals[mid]) / 2, nil
}

// LoopSample is one loop measurement at a processor count.
type LoopSample struct {
	Procs     int
	Measured  float64
	Predicted float64 // by the fitted Amdahl model
}

// LoopFit is one Table 1 row plus its Figure 3 series.
type LoopFit struct {
	Name    string
	Params  costmodel.LoopParams
	R2      float64
	Samples []LoopSample
}

// CalibrateLoop measures loop nest k at each processor count and fits
// Amdahl's law: t(q) = ατ + (1-α)τ/q is linear in (ατ, (1-α)τ). Any
// machine.LoopSpec works; internal/kernels.Kernel is the usual one.
func CalibrateLoop(mp machine.Params, name string, k machine.LoopSpec, procCounts []int) (LoopFit, error) {
	if err := k.Validate(); err != nil {
		return LoopFit{}, err
	}
	if len(procCounts) < 2 {
		return LoopFit{}, fmt.Errorf("trainsets: need >= 2 processor counts, got %d", len(procCounts))
	}
	X := make([][]float64, len(procCounts))
	y := make([]float64, len(procCounts))
	// Each sweep point is an independent measurement; fan them out and
	// assemble by index so the fit sees the same row order at any width.
	if err := par.Do(context.Background(), len(procCounts), func(_ context.Context, i int) error {
		q := procCounts[i]
		if q < 1 {
			return fmt.Errorf("trainsets: processor count %d", q)
		}
		X[i] = []float64{1, 1 / float64(q)}
		v, err := measureRobust(robustSamples, func() float64 { return k.MaxProcTime(mp, q) })
		if err != nil {
			return fmt.Errorf("trainsets: loop %q at q=%d: %w", name, q, err)
		}
		y[i] = v
		return nil
	}); err != nil {
		return LoopFit{}, err
	}
	fit, err := regress.LeastSquares(X, y)
	if err != nil {
		return LoopFit{}, err
	}
	serial, parallel := fit.Coeffs[0], fit.Coeffs[1]
	tau := serial + parallel
	alpha := 0.0
	if tau > 0 {
		alpha = serial / tau
	}
	// The true machine behaviour is not exactly Amdahl; clamp the fit
	// into the model's domain.
	alpha = math.Min(1, math.Max(0, alpha))
	if tau < 0 {
		tau = 0
	}
	lf := LoopFit{Name: name, Params: costmodel.LoopParams{Alpha: alpha, Tau: tau}, R2: fit.R2}
	for i, q := range procCounts {
		lf.Samples = append(lf.Samples, LoopSample{
			Procs:     q,
			Measured:  y[i],
			Predicted: lf.Params.Processing(float64(q)),
		})
	}
	return lf, nil
}

// TransferSample is one redistribution measurement.
type TransferSample struct {
	Kind          mdg.TransferKind
	Bytes         int
	Pi, Pj        int
	MeasuredSend  float64
	MeasuredRecv  float64
	MeasuredNet   float64
	PredictedSend float64
	PredictedRecv float64
	PredictedNet  float64
}

// TransferFit is the Table 2 row plus the Figure 5 series.
type TransferFit struct {
	Params         costmodel.TransferParams
	SendR2, RecvR2 float64
	Samples        []TransferSample
}

// MeasureTransfer runs the redistribution microbenchmark: an L-byte array
// moves from a pi-processor group to a disjoint pj-processor group, with
// axes chosen to realize the requested pattern. Returned are the busiest
// sender's send time, the busiest receiver's receive time, and the
// longest single-message network transit — the quantities the model's
// t^S, t^R and t^D predict. The arithmetic is the simulator's Send/Recv
// cost path.
func MeasureTransfer(mp machine.Params, kind mdg.TransferKind, bytes, pi, pj int) (send, recv, net float64, err error) {
	if pi < 1 || pj < 1 {
		return 0, 0, 0, fmt.Errorf("trainsets: group sizes (%d,%d)", pi, pj)
	}
	// Square-ish array of the requested volume: rows*cols*8 = bytes.
	elems := bytes / dist.ElemBytes
	if elems < 1 {
		return 0, 0, 0, fmt.Errorf("trainsets: array of %d bytes too small", bytes)
	}
	rows := int(math.Sqrt(float64(elems)))
	if rows < 1 {
		rows = 1
	}
	cols := elems / rows
	if cols < 1 {
		cols = 1
	}
	// Disjoint groups, as between two nodes of an MPMD schedule.
	srcProcs := make([]int, pi)
	for i := range srcProcs {
		srcProcs[i] = i
	}
	dstProcs := make([]int, pj)
	for i := range dstProcs {
		dstProcs[i] = pi + i
	}
	dstAxis := dist.ByRow
	if kind == mdg.Transfer2D {
		dstAxis = dist.ByCol
	}
	src, err := dist.New(rows, cols, dist.ByRow, srcProcs)
	if err != nil {
		return 0, 0, 0, err
	}
	dst, err := dist.New(rows, cols, dstAxis, dstProcs)
	if err != nil {
		return 0, 0, 0, err
	}
	msgs, err := dist.Messages(src, dst)
	if err != nil {
		return 0, 0, 0, err
	}
	// Senders occupy [0, pi) and receivers [pi, pi+pj), so flat slices
	// replace the per-call busy maps (the allocation hot spot of the
	// calibration sweep).
	busy := make([]float64, pi+pj)
	for _, m := range msgs {
		b := float64(m.Bytes())
		busy[m.From] += mp.SendStartup + b*mp.SendPerByte
		busy[m.To] += mp.RecvStartup + mp.MsgMatchOverhead + b*mp.RecvPerByte
		if transit := b * mp.NetPerByte; transit > net {
			net = transit
		}
	}
	for _, v := range busy[:pi] {
		if v > send {
			send = v
		}
	}
	for _, v := range busy[pi:] {
		if v > recv {
			recv = v
		}
	}
	return send, recv, net, nil
}

// TransferConfig is one calibration point.
type TransferConfig struct {
	Kind   mdg.TransferKind
	Bytes  int
	Pi, Pj int
}

// DefaultTransferConfigs sweeps group sizes and array sizes for both
// transfer kinds, the training set used by Calibrate.
func DefaultTransferConfigs(maxProcs int) []TransferConfig {
	var out []TransferConfig
	for _, kind := range []mdg.TransferKind{mdg.Transfer1D, mdg.Transfer2D} {
		for pi := 1; pi*2 <= maxProcs; pi *= 2 {
			for pj := 1; pj*2 <= maxProcs; pj *= 2 {
				for _, bytes := range []int{8192, 32768, 131072} {
					out = append(out, TransferConfig{Kind: kind, Bytes: bytes, Pi: pi, Pj: pj})
				}
			}
		}
		// Non-power-of-two points: block ceilings stop dividing evenly,
		// giving the regression genuine residuals (real machines never
		// fit the model exactly).
		for _, c := range []TransferConfig{
			{Kind: kind, Bytes: 30000, Pi: 3, Pj: 5},
			{Kind: kind, Bytes: 50000, Pi: 5, Pj: 3},
			{Kind: kind, Bytes: 30000, Pi: 6, Pj: 4},
			{Kind: kind, Bytes: 72000, Pi: 7, Pj: 2},
		} {
			if c.Pi <= maxProcs && c.Pj <= maxProcs {
				out = append(out, c)
			}
		}
	}
	return out
}

// CalibrateTransfers fits (t_ss, t_ps), (t_sr, t_pr) and t_n over the
// configs. On machines with CM-5 receive semantics (zero network transit)
// the t_n fit correctly comes out 0; on machines with a real wire delay
// (e.g. the Paragon profile) it recovers the per-byte transit.
func CalibrateTransfers(mp machine.Params, configs []TransferConfig) (TransferFit, error) {
	return calibrateTransfersCtx(context.Background(), mp, configs)
}

func calibrateTransfersCtx(ctx context.Context, mp machine.Params, configs []TransferConfig) (TransferFit, error) {
	if len(configs) < 4 {
		return TransferFit{}, fmt.Errorf("trainsets: need >= 4 transfer configs, got %d", len(configs))
	}
	// Every (kind, bytes, pi, pj) cell is an independent microbenchmark:
	// fan the sweep out on the worker pool and collect by config index, so
	// the regression sees rows in config order at any pool width.
	type cell struct{ send, recv, net float64 }
	cells, err := par.Map(ctx, len(configs), func(_ context.Context, i int) (cell, error) {
		c := configs[i]
		send, recv, net, err := MeasureTransfer(mp, c.Kind, c.Bytes, c.Pi, c.Pj)
		return cell{send, recv, net}, err
	})
	if err != nil {
		return TransferFit{}, err
	}
	sendX := make([][]float64, 0, len(configs))
	sendY := make([]float64, 0, len(configs))
	recvX := make([][]float64, 0, len(configs))
	recvY := make([]float64, 0, len(configs))
	netX := make([][]float64, 0, len(configs))
	netY := make([]float64, 0, len(configs))
	samples := make([]TransferSample, 0, len(configs))
	for i, c := range configs {
		send, recv, net := cells[i].send, cells[i].recv, cells[i].net
		pi, pj, l := float64(c.Pi), float64(c.Pj), float64(c.Bytes)
		// Regressor rows per Equations 2 and 3.
		var sRow, rRow, nRow []float64
		if c.Kind == mdg.Transfer1D {
			mx := math.Max(pi, pj)
			sRow = []float64{mx / pi, l / pi}
			rRow = []float64{mx / pj, l / pj}
			nRow = []float64{l / mx}
		} else {
			sRow = []float64{pj, l / pi}
			rRow = []float64{pi, l / pj}
			nRow = []float64{l / (pi * pj)}
		}
		sendX = append(sendX, sRow)
		sendY = append(sendY, send)
		recvX = append(recvX, rRow)
		recvY = append(recvY, recv)
		netX = append(netX, nRow)
		netY = append(netY, net)
		samples = append(samples, TransferSample{
			Kind: c.Kind, Bytes: c.Bytes, Pi: c.Pi, Pj: c.Pj,
			MeasuredSend: send, MeasuredRecv: recv, MeasuredNet: net,
		})
	}
	sFit, err := regress.LeastSquares(sendX, sendY)
	if err != nil {
		return TransferFit{}, err
	}
	rFit, err := regress.LeastSquares(recvX, recvY)
	if err != nil {
		return TransferFit{}, err
	}
	tn := 0.0
	if nFit, err := regress.LeastSquares(netX, netY); err == nil {
		// Rank deficiency (all-zero transits) keeps tn at 0.
		tn = math.Max(0, nFit.Coeffs[0])
	}
	tf := TransferFit{
		Params: costmodel.TransferParams{
			Tss: math.Max(0, sFit.Coeffs[0]),
			Tps: math.Max(0, sFit.Coeffs[1]),
			Tsr: math.Max(0, rFit.Coeffs[0]),
			Tpr: math.Max(0, rFit.Coeffs[1]),
			Tn:  tn,
		},
		SendR2:  sFit.R2,
		RecvR2:  rFit.R2,
		Samples: samples,
	}
	for i := range tf.Samples {
		s := &tf.Samples[i]
		c := tf.Params.Transfer(s.Kind, s.Bytes, float64(s.Pi), float64(s.Pj))
		s.PredictedSend = c.Send
		s.PredictedRecv = c.Recv
		s.PredictedNet = c.Net
	}
	return tf, nil
}

// Calibration bundles the fitted model for one machine profile and caches
// per-kernel loop fits. The lazy loop cache is guarded by a mutex, so a
// Calibration may be shared by concurrent experiment workers.
type Calibration struct {
	Machine  machine.Params
	Transfer TransferFit
	// ProcSweep is the processor-count sweep used for loop fits.
	ProcSweep []int

	mu    sync.Mutex
	loops map[string]LoopFit
	// ob receives obs.CalibFit events for each completed fit (nil: none).
	ob obs.Observer
}

// Calibrate runs the full training-set suite on a machine profile: the
// transfer sweep immediately, loop fits lazily per kernel.
func Calibrate(mp machine.Params) (*Calibration, error) {
	return CalibrateCtx(context.Background(), mp, nil)
}

// CalibrateCtx is Calibrate with cancellation and instrumentation: the
// transfer sweep honours ctx through the worker pool, and every
// completed fit (the immediate send/recv transfer fits and each lazy
// loop fit) emits one obs.CalibFit event carrying the regression R² and
// worst absolute residual.
func CalibrateCtx(ctx context.Context, mp machine.Params, o obs.Observer) (*Calibration, error) {
	if err := mp.Validate(); err != nil {
		return nil, err
	}
	sweep := []int{}
	for q := 1; q <= mp.Procs; q *= 2 {
		sweep = append(sweep, q)
	}
	if len(sweep) < 2 {
		sweep = []int{1, 2}
	}
	tf, err := calibrateTransfersCtx(ctx, mp, DefaultTransferConfigs(max(4, mp.Procs)))
	if err != nil {
		return nil, err
	}
	if o != nil {
		var sendRes, recvRes float64
		for _, s := range tf.Samples {
			if d := math.Abs(s.MeasuredSend - s.PredictedSend); d > sendRes {
				sendRes = d
			}
			if d := math.Abs(s.MeasuredRecv - s.PredictedRecv); d > recvRes {
				recvRes = d
			}
		}
		o.Observe(obs.CalibFit{Name: "transfer-send", R2: tf.SendR2,
			MaxAbsResidual: sendRes, Samples: len(tf.Samples),
			Warning: tf.SendR2 < R2WarnThreshold})
		o.Observe(obs.CalibFit{Name: "transfer-recv", R2: tf.RecvR2,
			MaxAbsResidual: recvRes, Samples: len(tf.Samples),
			Warning: tf.RecvR2 < R2WarnThreshold})
	}
	return &Calibration{
		Machine:   mp,
		Transfer:  tf,
		ProcSweep: sweep,
		loops:     map[string]LoopFit{},
		ob:        o,
	}, nil
}

// Loop returns the fitted Amdahl parameters for a kernel shape, running
// the calibration on first use. Safe for concurrent callers; a cache miss
// calibrates outside the lock (the fit is deterministic, so a racing
// duplicate computes the identical value). The signature satisfies
// machine.LoopSource, so a Calibration plugs directly into the program
// builders.
func (c *Calibration) Loop(name string, k machine.LoopSpec) (costmodel.LoopParams, error) {
	lf, err := c.LoopFit(name, k)
	return lf.Params, err
}

// LoopFit returns the cached full fit for a kernel, calibrating if needed.
func (c *Calibration) LoopFit(name string, k machine.LoopSpec) (LoopFit, error) {
	key := k.Shape().Key()
	c.mu.Lock()
	lf, ok := c.loops[key]
	c.mu.Unlock()
	if ok {
		return lf, nil
	}
	lf, err := CalibrateLoop(c.Machine, name, k, c.ProcSweep)
	if err != nil {
		return LoopFit{}, err
	}
	c.mu.Lock()
	_, lost := c.loops[key]
	if !lost {
		c.loops[key] = lf
	}
	c.mu.Unlock()
	// Emit only for the winning insert: a racing duplicate computes the
	// identical fit, and double emission would make the calib_* metrics
	// schedule-dependent.
	if c.ob != nil && !lost {
		worst := 0.0
		for _, s := range lf.Samples {
			if d := math.Abs(s.Measured - s.Predicted); d > worst {
				worst = d
			}
		}
		c.ob.Observe(obs.CalibFit{Name: lf.Name, R2: lf.R2,
			MaxAbsResidual: worst, Samples: len(lf.Samples),
			Warning: lf.R2 < R2WarnThreshold})
	}
	return lf, nil
}

// Model returns the fitted cost model for allocation and scheduling.
func (c *Calibration) Model() costmodel.Model {
	return costmodel.Model{Transfer: c.Transfer.Params}
}

// LoopFits lists every cached loop fit sorted by name (stable output for
// the Table 1 printer).
func (c *Calibration) LoopFits() []LoopFit {
	c.mu.Lock()
	out := make([]LoopFit, 0, len(c.loops))
	for _, lf := range c.loops {
		out = append(out, lf)
	}
	c.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Snapshot is the serializable form of a Calibration for checkpointing:
// the machine profile, transfer fit, processor sweep, and every loop fit
// cached at snapshot time, keyed by the internal kernel cache key. All
// fields are plain data (JSON-safe), so a snapshot round-trips exactly.
type Snapshot struct {
	Machine   machine.Params     `json:"machine"`
	Transfer  TransferFit        `json:"transfer"`
	ProcSweep []int              `json:"proc_sweep"`
	Loops     map[string]LoopFit `json:"loops,omitempty"`
}

// Snapshot captures the calibration's current state. Loop fits are
// calibrated lazily, so a snapshot taken right after CalibrateCtx holds
// only the transfer fit; fits cached since then ride along.
func (c *Calibration) Snapshot() Snapshot {
	s := Snapshot{
		Machine:   c.Machine,
		Transfer:  c.Transfer,
		ProcSweep: append([]int(nil), c.ProcSweep...),
	}
	c.mu.Lock()
	if len(c.loops) > 0 {
		s.Loops = make(map[string]LoopFit, len(c.loops))
		for k, lf := range c.loops {
			s.Loops[k] = lf
		}
	}
	c.mu.Unlock()
	return s
}

// FromSnapshot rebuilds a Calibration from a checkpoint snapshot,
// skipping the transfer sweep entirely. Loop fits absent from the
// snapshot calibrate lazily on first use, exactly as after CalibrateCtx.
func FromSnapshot(s Snapshot, o obs.Observer) (*Calibration, error) {
	if err := s.Machine.Validate(); err != nil {
		return nil, err
	}
	if len(s.ProcSweep) == 0 {
		return nil, fmt.Errorf("trainsets: snapshot has an empty processor sweep")
	}
	loops := make(map[string]LoopFit, len(s.Loops))
	for k, lf := range s.Loops {
		loops[k] = lf
	}
	return &Calibration{
		Machine:   s.Machine,
		Transfer:  s.Transfer,
		ProcSweep: append([]int(nil), s.ProcSweep...),
		loops:     loops,
		ob:        o,
	}, nil
}
