package convex

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"paradigm/internal/expr"
)

func approx(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

// quadratic builds f(x) = Σ w_i (x_i - c_i)² as an Objective.
func quadratic(w, c []float64) Objective {
	return Func(func(x, grad []float64) float64 {
		f := 0.0
		for i := range x {
			d := x[i] - c[i]
			f += w[i] * d * d
			if grad != nil {
				grad[i] = 2 * w[i] * d
			}
		}
		return f
	})
}

func TestUnconstrainedQuadratic(t *testing.T) {
	w := []float64{1, 3, 0.5}
	c := []float64{2, -1, 4}
	lo := []float64{-10, -10, -10}
	hi := []float64{10, 10, 10}
	res, err := Minimize(quadratic(w, c), lo, hi, []float64{0, 0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged() {
		t.Fatalf("did not converge: %+v", res)
	}
	for i := range c {
		if !approx(res.X[i], c[i], 1e-5) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], c[i])
		}
	}
	if res.F > 1e-9 {
		t.Fatalf("f = %v, want ~0", res.F)
	}
}

func TestActiveBoxConstraint(t *testing.T) {
	// Minimum of (x-5)² on [0,2] is at x=2.
	res, err := Minimize(quadratic([]float64{1}, []float64{5}),
		[]float64{0}, []float64{2}, []float64{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.X[0], 2, 1e-8) {
		t.Fatalf("x = %v, want 2", res.X[0])
	}
	if !res.Converged() {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestStartOutsideBoxIsProjected(t *testing.T) {
	res, err := Minimize(quadratic([]float64{1}, []float64{0}),
		[]float64{-1}, []float64{1}, []float64{100}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.X[0], 0, 1e-6) {
		t.Fatalf("x = %v, want 0", res.X[0])
	}
}

func TestIllConditionedQuadratic(t *testing.T) {
	// Condition number 1e4.
	w := []float64{1, 1e4}
	c := []float64{3, -2}
	res, err := Minimize(quadratic(w, c), []float64{-10, -10}, []float64{10, 10},
		[]float64{-5, 5}, Options{MaxIter: 20000, GradTol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.X[0], 3, 1e-4) || !approx(res.X[1], -2, 1e-4) {
		t.Fatalf("x = %v, want [3 -2] (status %v, iters %d)", res.X, res.Status, res.Iters)
	}
}

func TestSmoothMaxObjectiveMatchesGridSearch(t *testing.T) {
	// f(p) = max(2/p, 0.5·p) in log space (the A_p-vs-C_p tension in
	// miniature): minimum where 2/p = p/2, i.e. p = 2, f = 1.
	var g expr.Graph
	m := g.SmoothMax(
		g.Monomial(2, map[int]float64{0: -1}),
		g.Monomial(0.5, map[int]float64{0: 1}),
	)
	ev := expr.NewEvaluator(&g)
	temp := 1e-4
	obj := Func(func(x, grad []float64) float64 {
		if grad == nil {
			return ev.Eval(m, x, temp)
		}
		return ev.EvalGrad(m, x, temp, grad)
	})
	res, err := Minimize(obj, []float64{0}, []float64{math.Log(64)}, []float64{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := math.Exp(res.X[0])
	if !approx(p, 2, 1e-2) {
		t.Fatalf("argmin p = %v, want 2", p)
	}
	if !approx(res.F, 1, 1e-2) {
		t.Fatalf("min f = %v, want 1", res.F)
	}
}

// TestRandomPosynomialVsGrid compares the solver against brute-force grid
// search on random 2-variable posynomial objectives (smoothed max of a few
// monomials) over the box [1, 64]².
func TestRandomPosynomialVsGrid(t *testing.T) {
	const temp = 1e-3
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		var g expr.Graph
		nTerms := 2 + rng.Intn(3)
		ids := make([]expr.ID, 0, nTerms)
		for k := 0; k < nTerms; k++ {
			ids = append(ids, g.Monomial(0.2+2*rng.Float64(), map[int]float64{
				0: float64(rng.Intn(5)-2) / 2,
				1: float64(rng.Intn(5)-2) / 2,
			}))
		}
		root := g.SmoothMax(g.Sum(ids...), g.Monomial(0.1+rng.Float64(), map[int]float64{0: 1, 1: 1}))
		ev := expr.NewEvaluator(&g)
		obj := TempFunc(func(tt float64, x, grad []float64) float64 {
			if grad == nil {
				return ev.Eval(root, x, tt)
			}
			return ev.EvalGrad(root, x, tt, grad)
		})
		lo := []float64{0, 0}
		hi := []float64{math.Log(64), math.Log(64)}
		res, err := MinimizeAnnealed(obj, lo, hi, []float64{1, 1},
			AnnealOptions{EndTemp: temp, Inner: Options{MaxIter: 5000}})
		if err != nil {
			return false
		}
		// Brute-force grid.
		best := math.Inf(1)
		const steps = 200
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				x := []float64{hi[0] * float64(i) / steps, hi[1] * float64(j) / steps}
				if v := ev.Eval(root, x, temp); v < best {
					best = v
				}
			}
		}
		// Solver must match or beat the grid up to grid resolution.
		return res.F <= best*(1+5e-3)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIter != 2000 || o.GradTol != 1e-8 || o.InitStep != 1.0 ||
		o.Backtrack != 0.5 || o.Armijo != 1e-4 || o.MaxBacktracks != 60 || o.FTol != 1e-12 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
	custom := Options{MaxIter: 5, GradTol: 1, FTol: 1, InitStep: 2, Backtrack: 0.25, Armijo: 0.5, MaxBacktracks: 3}
	got := custom.withDefaults()
	if got.MaxIter != custom.MaxIter || got.GradTol != custom.GradTol || got.FTol != custom.FTol ||
		got.InitStep != custom.InitStep || got.Backtrack != custom.Backtrack ||
		got.Armijo != custom.Armijo || got.MaxBacktracks != custom.MaxBacktracks {
		t.Fatalf("custom options were overridden: %+v", got)
	}
}

func TestErrorCases(t *testing.T) {
	obj := quadratic([]float64{1}, []float64{0})
	if _, err := Minimize(obj, nil, nil, nil, Options{}); err == nil {
		t.Fatal("want error for empty x0")
	}
	if _, err := Minimize(obj, []float64{0}, []float64{0, 1}, []float64{0}, Options{}); err == nil {
		t.Fatal("want error for bounds length mismatch")
	}
	if _, err := Minimize(obj, []float64{2}, []float64{1}, []float64{0}, Options{}); err == nil {
		t.Fatal("want error for inverted bounds")
	}
	if _, err := Minimize(obj, []float64{math.NaN()}, []float64{1}, []float64{0}, Options{}); err == nil {
		t.Fatal("want error for NaN bound")
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{GradientConverged, ObjectiveConverged, MaxIterReached, LineSearchStalled, Status(99)} {
		if s.String() == "" {
			t.Fatalf("empty status string for %d", int(s))
		}
	}
}

func TestDegenerateBoxSinglePoint(t *testing.T) {
	// lower == upper: the only feasible point is returned immediately.
	res, err := Minimize(quadratic([]float64{1}, []float64{5}),
		[]float64{2}, []float64{2}, []float64{2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 2 {
		t.Fatalf("x = %v, want 2", res.X[0])
	}
	if !res.Converged() {
		t.Fatalf("status = %v", res.Status)
	}
}

func BenchmarkMinimizeQuadratic32(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 32
	w := make([]float64, n)
	c := make([]float64, n)
	lo := make([]float64, n)
	hi := make([]float64, n)
	x0 := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = 0.5 + rng.Float64()*10
		c[i] = rng.NormFloat64() * 3
		lo[i], hi[i] = -10, 10
	}
	obj := quadratic(w, c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Minimize(obj, lo, hi, x0, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStopCheckAbortsPromptly(t *testing.T) {
	n := 8
	w := make([]float64, n)
	c := make([]float64, n)
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := range w {
		w[i] = float64(i + 1)
		c[i] = 3
		lo[i], hi[i] = -10, 10
	}
	calls := 0
	opts := Options{
		GradTol: 1e-300, FTol: 1e-300, MaxIter: 100000,
		StopCheck: func() bool { calls++; return calls >= 3 },
	}
	res, err := Minimize(quadratic(w, c), lo, hi, make([]float64, n), opts)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if res.Iters > 4*stopCheckStride {
		t.Fatalf("ran %d iterations after stop was requested", res.Iters)
	}
}

func TestNilStopCheckUnchanged(t *testing.T) {
	base, err := Minimize(quadratic([]float64{1, 2}, []float64{1, -1}),
		[]float64{-5, -5}, []float64{5, 5}, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hooked, err := Minimize(quadratic([]float64{1, 2}, []float64{1, -1}),
		[]float64{-5, -5}, []float64{5, 5}, []float64{0, 0},
		Options{StopCheck: func() bool { return false }})
	if err != nil {
		t.Fatal(err)
	}
	if base.F != hooked.F || base.Iters != hooked.Iters || base.Evals != hooked.Evals {
		t.Fatalf("non-firing StopCheck changed the trajectory: %+v vs %+v", base, hooked)
	}
}
