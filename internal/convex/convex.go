// Package convex implements a box-constrained first-order convex minimizer.
//
// The paper's allocation step (Section 2) requires the exact minimum of a
// convex program: Φ = max(A_p, C_p) over log-processor variables inside the
// box [0, ln p]^n. Go has no convex-programming library, so this package
// provides one sized for the problem class: smooth convex objectives with
// exact gradients on a box. The method is projected gradient descent with
// Nesterov acceleration, adaptive restart, and Armijo backtracking line
// search — for smooth convex f this converges to the global minimum; the
// allocator anneals the smoothing temperature of its max terms and
// warm-starts each stage, so the overall pipeline converges to the true
// (non-smooth) optimum Φ.
package convex

import (
	"errors"
	"fmt"
	"math"
)

// Objective is a differentiable function. Eval returns f(x) and, when grad
// is non-nil, writes ∂f/∂x into it. Implementations must treat x as
// read-only.
type Objective interface {
	Eval(x []float64, grad []float64) float64
}

// Func adapts a closure to the Objective interface.
type Func func(x []float64, grad []float64) float64

// Eval implements Objective.
func (f Func) Eval(x []float64, grad []float64) float64 { return f(x, grad) }

// Options tunes Minimize. The zero value selects sensible defaults.
type Options struct {
	// MaxIter caps outer iterations (default 2000).
	MaxIter int
	// GradTol stops when the projected-gradient infinity norm falls below
	// it (default 1e-8).
	GradTol float64
	// FTol stops when the relative objective decrease over an iteration
	// falls below it (default 1e-12).
	FTol float64
	// InitStep is the first trial step length (default 1.0).
	InitStep float64
	// Backtrack is the step shrink factor in (0,1) (default 0.5).
	Backtrack float64
	// Armijo is the sufficient-decrease constant in (0,1) (default 1e-4).
	Armijo float64
	// MaxBacktracks caps line-search halvings per iteration (default 60).
	MaxBacktracks int
	// StopCheck, when non-nil, is polled every few iterations; returning
	// true aborts the minimization with ErrStopped. The hook exists for
	// cooperative cancellation of racing solves: it must be cheap (an
	// atomic load) and is never called with partial state exposed.
	StopCheck func() bool
}

// ErrStopped is returned when Options.StopCheck requested an abort. The
// caller that installed the hook knows why; everyone else treats it as a
// failed solve.
var ErrStopped = errors.New("convex: stopped by StopCheck")

// stopCheckStride is how many outer iterations run between StopCheck
// polls: frequent enough that an abandoned racing solve stops within
// microseconds, rare enough to stay invisible in profiles.
const stopCheckStride = 16

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-8
	}
	if o.FTol <= 0 {
		o.FTol = 1e-12
	}
	if o.InitStep <= 0 {
		o.InitStep = 1.0
	}
	if o.Backtrack <= 0 || o.Backtrack >= 1 {
		o.Backtrack = 0.5
	}
	if o.Armijo <= 0 || o.Armijo >= 1 {
		o.Armijo = 1e-4
	}
	if o.MaxBacktracks <= 0 {
		o.MaxBacktracks = 60
	}
	return o
}

// Status describes why Minimize stopped.
type Status int

const (
	// GradientConverged: projected gradient norm below GradTol.
	GradientConverged Status = iota
	// ObjectiveConverged: relative objective decrease below FTol.
	ObjectiveConverged
	// MaxIterReached: iteration budget exhausted.
	MaxIterReached
	// LineSearchStalled: no decreasing step found (objective flat to
	// machine precision along the projected direction).
	LineSearchStalled
)

// String renders the status for diagnostics.
func (s Status) String() string {
	switch s {
	case GradientConverged:
		return "gradient-converged"
	case ObjectiveConverged:
		return "objective-converged"
	case MaxIterReached:
		return "max-iterations"
	case LineSearchStalled:
		return "line-search-stalled"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Result reports the minimizer outcome.
type Result struct {
	X     []float64
	F     float64
	Iters int
	// Evals counts objective evaluations — every call into the
	// objective, line search included, counts exactly once whether or
	// not a gradient was requested. The accepted line-search point is
	// evaluated once (value and gradient fused), never twice.
	Evals  int
	Status Status
}

// Converged reports whether the stop was a convergence criterion rather
// than an iteration cap.
func (r Result) Converged() bool {
	return r.Status == GradientConverged || r.Status == ObjectiveConverged || r.Status == LineSearchStalled
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// workspace holds the minimizer's scratch vectors in one backing buffer.
// Minimize allocates a fresh one per call; MinimizeAnnealed reuses a
// single workspace across all temperature stages, eliminating the
// per-stage allocation churn on the allocator hot path.
type workspace struct {
	buf []float64
}

func (w *workspace) vectors(n int) (x, grad, gradPrev, gradTrial, trial, xPrev []float64) {
	if cap(w.buf) < 6*n {
		w.buf = make([]float64, 6*n)
	}
	b := w.buf[:6*n]
	return b[0:n], b[n : 2*n], b[2*n : 3*n], b[3*n : 4*n], b[4*n : 5*n], b[5*n : 6*n]
}

// Minimize minimizes obj over the box [lower, upper] starting from x0
// (projected into the box). lower, upper and x0 must share a length >= 1
// with lower <= upper componentwise.
func Minimize(obj Objective, lower, upper, x0 []float64, opts Options) (Result, error) {
	return minimize(obj, lower, upper, x0, opts, &workspace{})
}

func minimize(obj Objective, lower, upper, x0 []float64, opts Options, ws *workspace) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{}, errors.New("convex: empty start point")
	}
	if len(lower) != n || len(upper) != n {
		return Result{}, fmt.Errorf("convex: bounds length %d/%d, want %d", len(lower), len(upper), n)
	}
	for i := range lower {
		if lower[i] > upper[i] {
			return Result{}, fmt.Errorf("convex: lower[%d]=%v > upper[%d]=%v", i, lower[i], i, upper[i])
		}
		if math.IsNaN(lower[i]) || math.IsNaN(upper[i]) {
			return Result{}, fmt.Errorf("convex: NaN bound at %d", i)
		}
	}
	o := opts.withDefaults()

	x, grad, gradPrev, gradTrial, trial, xPrev := ws.vectors(n)
	for i := range x {
		x[i] = clamp(x0[i], lower[i], upper[i])
	}

	evals := 0
	eval := func(pt []float64, g []float64) float64 {
		evals++
		v := obj.Eval(pt, g)
		if math.IsNaN(v) {
			panic("convex: objective returned NaN")
		}
		return v
	}

	fx := eval(x, grad)
	step := o.InitStep
	smallDecreases := 0 // consecutive iterations with negligible progress
	havePrev := false

	res := Result{X: x, Status: MaxIterReached}
	for iter := 1; iter <= o.MaxIter; iter++ {
		res.Iters = iter
		if o.StopCheck != nil && iter%stopCheckStride == 0 && o.StopCheck() {
			res.X, res.F, res.Evals = x, fx, evals
			return res, ErrStopped
		}

		// Projected-gradient stationarity: the box-constrained analogue
		// of ‖∇f‖∞ = 0.
		pgNorm := 0.0
		for i := range x {
			g := grad[i]
			if (x[i] <= lower[i] && g > 0) || (x[i] >= upper[i] && g < 0) {
				g = 0
			}
			if a := math.Abs(g); a > pgNorm {
				pgNorm = a
			}
		}
		if pgNorm < o.GradTol {
			res.Status = GradientConverged
			break
		}

		// Spectral (Barzilai-Borwein) trial step: step = sᵀs / sᵀz where
		// s = x - xPrev, z = grad - gradPrev. Adapts automatically to the
		// local curvature, which defeats the zigzag of plain steepest
		// descent on ill-conditioned or barely-smoothed objectives.
		if havePrev {
			sts, stz := 0.0, 0.0
			for i := range x {
				s := x[i] - xPrev[i]
				z := grad[i] - gradPrev[i]
				sts += s * s
				stz += s * z
			}
			if stz > 1e-300 && sts > 0 {
				step = clamp(sts/stz, 1e-12, 1e8)
			}
		}

		// Armijo backtracking on the projected step. The first trial is
		// evaluated with a fused value+gradient pass: the spectral step
		// is accepted without backtracking in the vast majority of
		// iterations, and fusing saves the redundant value recomputation
		// the old accept path paid just to obtain the gradient.
		accepted := false
		gradReady := false
		var fNew float64
		for bt := 0; bt < o.MaxBacktracks; bt++ {
			for i := range trial {
				trial[i] = clamp(x[i]-step*grad[i], lower[i], upper[i])
			}
			// Sufficient decrease against the projected displacement.
			decr := 0.0
			moved := false
			for i := range trial {
				d := trial[i] - x[i]
				if d != 0 {
					moved = true
				}
				decr += grad[i] * d
			}
			if !moved {
				break
			}
			if bt == 0 {
				fNew = eval(trial, gradTrial)
			} else {
				fNew = eval(trial, nil)
			}
			if fNew <= fx+o.Armijo*decr {
				accepted = true
				gradReady = bt == 0
				break
			}
			step *= o.Backtrack
		}
		if !accepted {
			// No decrease along the projected direction: numerically
			// stationary on the box.
			res.Status = LineSearchStalled
			break
		}

		copy(xPrev, x)
		copy(gradPrev, grad)
		copy(x, trial)
		fPrev := fx
		fx = fNew
		if gradReady {
			grad, gradTrial = gradTrial, grad
		} else {
			// Accepted only after backtracking: one evaluation obtains
			// the gradient (its value pass equals fNew, already known).
			fx = eval(x, grad)
		}
		havePrev = true

		if fPrev-fx <= o.FTol*math.Max(1, math.Abs(fPrev)) {
			smallDecreases++
			if smallDecreases >= 8 {
				res.Status = ObjectiveConverged
				break
			}
		} else {
			smallDecreases = 0
		}
	}

	res.X = x
	res.F = fx
	res.Evals = evals
	return res, nil
}

// TempObjective is an objective parameterized by a smoothing temperature,
// typically a log-sum-exp softening of max terms that approaches the exact
// function as the temperature goes to zero.
type TempObjective interface {
	EvalAtTemp(temp float64, x []float64, grad []float64) float64
}

// TempFunc adapts a closure to TempObjective.
type TempFunc func(temp float64, x, grad []float64) float64

// EvalAtTemp implements TempObjective.
func (f TempFunc) EvalAtTemp(temp float64, x, grad []float64) float64 { return f(temp, x, grad) }

// AnnealOptions tunes MinimizeAnnealed.
type AnnealOptions struct {
	// StartTemp is the first smoothing temperature (default: 1).
	StartTemp float64
	// EndTemp is the final (smallest) temperature (default: 1e-4).
	EndTemp float64
	// Decay is the per-stage temperature multiplier in (0,1)
	// (default: 0.2).
	Decay float64
	// Inner configures the per-stage minimizer.
	Inner Options
	// OnStage, when non-nil, is called after every temperature stage
	// with the 0-based stage index, the stage temperature, and that
	// stage's Result (per-stage Iters/Evals, not cumulative). Returning
	// a non-nil error aborts the anneal and surfaces the error from
	// MinimizeAnnealed — the hook the allocator uses for context
	// cancellation and solver-convergence events. r.X aliases solver
	// scratch reused by later stages; copy it if retained.
	OnStage func(stage int, temp float64, r Result) error
}

func (a AnnealOptions) withDefaults() AnnealOptions {
	if a.StartTemp <= 0 {
		a.StartTemp = 1
	}
	if a.EndTemp <= 0 {
		a.EndTemp = 1e-4
	}
	if a.EndTemp > a.StartTemp {
		a.EndTemp = a.StartTemp
	}
	if a.Decay <= 0 || a.Decay >= 1 {
		a.Decay = 0.2
	}
	return a
}

// MinimizeAnnealed minimizes a temperature-smoothed convex objective by
// solving a sequence of decreasing-temperature stages, warm-starting each
// stage from the previous solution. The returned Result reflects the final
// stage at EndTemp; Iters and Evals aggregate across all stages. One
// scratch workspace and one objective closure are shared across every
// stage, so the whole anneal performs a constant number of allocations.
func MinimizeAnnealed(obj TempObjective, lower, upper, x0 []float64, opts AnnealOptions) (Result, error) {
	a := opts.withDefaults()
	x := x0
	var (
		ws    workspace
		temp  float64
		total Result
	)
	inner := Func(func(x, grad []float64) float64 { return obj.EvalAtTemp(temp, x, grad) })
	for stage := 0; ; stage++ {
		t := a.StartTemp * math.Pow(a.Decay, float64(stage))
		last := t <= a.EndTemp
		if last {
			t = a.EndTemp
		}
		temp = t
		res, err := minimize(inner, lower, upper, x, a.Inner, &ws)
		if err != nil {
			return Result{}, err
		}
		if a.OnStage != nil {
			if err := a.OnStage(stage, t, res); err != nil {
				return Result{}, err
			}
		}
		total.Iters += res.Iters
		total.Evals += res.Evals
		total.X = res.X
		total.F = res.F
		total.Status = res.Status
		x = res.X
		if last {
			return total, nil
		}
	}
}
