package regress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

func TestExactLine(t *testing.T) {
	// y = 2 + 3x, no noise.
	X := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 5, 8, 11}
	fit, err := LeastSquares(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Coeffs[0], 2, 1e-10) || !approx(fit.Coeffs[1], 3, 1e-10) {
		t.Fatalf("coeffs = %v, want [2 3]", fit.Coeffs)
	}
	if !approx(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestOverdeterminedMinimizesRSS(t *testing.T) {
	// Classic: y over x in {0,1,2} with y = {0, 1, 1}. OLS slope = 0.5,
	// intercept = 1/6.
	X := [][]float64{{1, 0}, {1, 1}, {1, 2}}
	y := []float64{0, 1, 1}
	fit, err := LeastSquares(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Coeffs[1], 0.5, 1e-10) || !approx(fit.Coeffs[0], 1.0/6, 1e-10) {
		t.Fatalf("coeffs = %v", fit.Coeffs)
	}
}

func TestRankDeficient(t *testing.T) {
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	y := []float64{1, 2, 3}
	_, err := LeastSquares(X, y)
	if !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("err = %v, want ErrRankDeficient", err)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Fatal("want error for empty X")
	}
	if _, err := LeastSquares([][]float64{{}}, []float64{1}); err == nil {
		t.Fatal("want error for zero predictors")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("want error for m < n")
	}
	if _, err := LeastSquares([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Fatal("want error for len(y) mismatch")
	}
	if _, err := LeastSquares([][]float64{{1}, {math.NaN()}}, []float64{1, 2}); err == nil {
		t.Fatal("want error for NaN design entry")
	}
	if _, err := LeastSquares([][]float64{{1}, {2}}, []float64{1, math.Inf(1)}); err == nil {
		t.Fatal("want error for Inf response")
	}
	if _, err := LeastSquares([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Fatal("want error for ragged rows")
	}
}

// TestRecoverPlantedModel: regression on noiseless synthetic data recovers
// the planted coefficients for random well-conditioned designs.
func TestRecoverPlantedModel(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 1 + rng.Intn(4)
		m := n + 2 + rng.Intn(20)
		beta := make([]float64, n)
		for j := range beta {
			beta[j] = rng.NormFloat64() * 10
		}
		X := make([][]float64, m)
		y := make([]float64, m)
		for i := range X {
			X[i] = make([]float64, n)
			for j := range X[i] {
				X[i][j] = rng.NormFloat64()
			}
			for j := range X[i] {
				y[i] += X[i][j] * beta[j]
			}
		}
		fit, err := LeastSquares(X, y)
		if err != nil {
			// Random Gaussian designs are a.s. full rank; treat failure
			// as a property violation.
			return false
		}
		for j := range beta {
			if !approx(fit.Coeffs[j], beta[j], 1e-7) {
				return false
			}
		}
		return fit.R2 > 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestNoisyFitBeatsPerturbations: the OLS solution has RSS no larger than
// nearby perturbed coefficient vectors (first-order optimality, sampled).
func TestNoisyFitBeatsPerturbations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m, n := 40, 3
	X := make([][]float64, m)
	y := make([]float64, m)
	for i := range X {
		X[i] = []float64{1, rng.Float64() * 10, rng.Float64() * 10}
		y[i] = 2 + 0.5*X[i][1] - 1.5*X[i][2] + rng.NormFloat64()
	}
	fit, err := LeastSquares(X, y)
	if err != nil {
		t.Fatal(err)
	}
	rss := func(beta []float64) float64 {
		s := 0.0
		for i := range X {
			pred := 0.0
			for j := range beta {
				pred += X[i][j] * beta[j]
			}
			d := y[i] - pred
			s += d * d
		}
		return s
	}
	base := rss(fit.Coeffs)
	if !approx(base, fit.RSS, 1e-9) {
		t.Fatalf("reported RSS %v != recomputed %v", fit.RSS, base)
	}
	for trial := 0; trial < 100; trial++ {
		pert := append([]float64(nil), fit.Coeffs...)
		pert[rng.Intn(n)] += (rng.Float64() - 0.5) * 0.1
		if rss(pert) < base-1e-9 {
			t.Fatalf("perturbation beats OLS: %v < %v", rss(pert), base)
		}
	}
}

func TestConstantResponse(t *testing.T) {
	X := [][]float64{{1}, {1}, {1}}
	y := []float64{4, 4, 4}
	fit, err := LeastSquares(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Coeffs[0], 4, 1e-12) || fit.R2 != 1 {
		t.Fatalf("fit = %+v", fit)
	}
}

func TestPredict(t *testing.T) {
	fit := Fit{Coeffs: []float64{2, 3}}
	if got := fit.Predict([]float64{1, 4}); got != 14 {
		t.Fatalf("Predict = %v, want 14", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong row length")
		}
	}()
	fit.Predict([]float64{1})
}

func BenchmarkLeastSquares100x5(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m, n := 100, 5
	X := make([][]float64, m)
	y := make([]float64, m)
	for i := range X {
		X[i] = make([]float64, n)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(X, y); err != nil {
			b.Fatal(err)
		}
	}
}
