// Package regress implements linear least squares via Householder QR.
//
// The paper's "training sets" methodology (Section 4, following
// Balasundaram et al.) measures loop and transfer timings on the target
// machine and fits the free parameters of the posynomial cost models by
// linear regression: the models are linear in their parameters
// (τ·α, τ·(1-α), t_ss, t_ps, …) once the processor counts are fixed, so
// ordinary least squares recovers them directly.
package regress

import (
	"errors"
	"fmt"
	"math"
)

// Fit is the result of a least-squares solve.
type Fit struct {
	// Coeffs are the fitted parameters, one per design-matrix column.
	Coeffs []float64
	// Residuals are y - X·Coeffs, one per observation.
	Residuals []float64
	// RSS is the residual sum of squares.
	RSS float64
	// R2 is the coefficient of determination (1 - RSS/TSS). If the
	// response is constant, R2 is reported as 1 when the fit is exact and
	// 0 otherwise.
	R2 float64
}

// ErrRankDeficient is returned when the design matrix does not have full
// column rank (within a numerical tolerance).
var ErrRankDeficient = errors.New("regress: design matrix is rank deficient")

// LeastSquares solves min ‖X·β − y‖₂ for β, where X is an m×n design matrix
// given as m rows, m >= n >= 1. The matrix is not modified.
func LeastSquares(X [][]float64, y []float64) (Fit, error) {
	m := len(X)
	if m == 0 {
		return Fit{}, errors.New("regress: no observations")
	}
	n := len(X[0])
	if n == 0 {
		return Fit{}, errors.New("regress: no predictors")
	}
	if m < n {
		return Fit{}, fmt.Errorf("regress: %d observations < %d predictors", m, n)
	}
	if len(y) != m {
		return Fit{}, fmt.Errorf("regress: len(y)=%d, want %d", len(y), m)
	}
	// Working copies: A is column-major for cache-friendly Householder
	// application; b is the transformed response.
	a := make([]float64, m*n)
	maxAbs := 0.0
	for i, row := range X {
		if len(row) != n {
			return Fit{}, fmt.Errorf("regress: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return Fit{}, fmt.Errorf("regress: non-finite design entry X[%d][%d]=%v", i, j, v)
			}
			a[j*m+i] = v
			if av := math.Abs(v); av > maxAbs {
				maxAbs = av
			}
		}
	}
	b := make([]float64, m)
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Fit{}, fmt.Errorf("regress: non-finite response y[%d]=%v", i, v)
		}
		b[i] = v
	}

	// Householder QR: for each column k, build reflector v annihilating
	// below-diagonal entries, apply to remaining columns and to b.
	rankTol := float64(m) * 1e-13 * math.Max(maxAbs, 1)
	v := make([]float64, m)
	for k := 0; k < n; k++ {
		col := a[k*m:]
		// norm of col[k:m]
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, col[i])
		}
		if norm <= rankTol {
			return Fit{}, ErrRankDeficient
		}
		alpha := -math.Copysign(norm, col[k])
		vnorm2 := 0.0
		for i := k; i < m; i++ {
			v[i] = col[i]
			if i == k {
				v[i] -= alpha
			}
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			return Fit{}, ErrRankDeficient
		}
		// Apply H = I - 2vvᵀ/(vᵀv) to columns k..n-1 and to b.
		for j := k; j < n; j++ {
			cj := a[j*m:]
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i] * cj[i]
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				cj[i] -= f * v[i]
			}
		}
		dot := 0.0
		for i := k; i < m; i++ {
			dot += v[i] * b[i]
		}
		f := 2 * dot / vnorm2
		for i := k; i < m; i++ {
			b[i] -= f * v[i]
		}
	}

	// Back-substitute R·β = b[0:n].
	beta := make([]float64, n)
	for j := n - 1; j >= 0; j-- {
		s := b[j]
		for k := j + 1; k < n; k++ {
			s -= a[k*m+j] * beta[k]
		}
		d := a[j*m+j]
		if math.Abs(d) <= rankTol {
			return Fit{}, ErrRankDeficient
		}
		beta[j] = s / d
	}

	fit := Fit{Coeffs: beta, Residuals: make([]float64, m)}
	mean := 0.0
	for _, yi := range y {
		mean += yi
	}
	mean /= float64(m)
	tss := 0.0
	for i, row := range X {
		pred := 0.0
		for j, v := range row {
			pred += v * beta[j]
		}
		r := y[i] - pred
		fit.Residuals[i] = r
		fit.RSS += r * r
		d := y[i] - mean
		tss += d * d
	}
	switch {
	case tss > 0:
		fit.R2 = 1 - fit.RSS/tss
	case fit.RSS <= 1e-18:
		fit.R2 = 1
	default:
		fit.R2 = 0
	}
	return fit, nil
}

// Predict evaluates the linear model at one design row.
func (f Fit) Predict(row []float64) float64 {
	if len(row) != len(f.Coeffs) {
		panic(fmt.Sprintf("regress: row has %d entries, model has %d", len(row), len(f.Coeffs)))
	}
	s := 0.0
	for j, v := range row {
		s += v * f.Coeffs[j]
	}
	return s
}
