package tables

import (
	"strings"
	"testing"
)

func TestAlignment(t *testing.T) {
	tb := New("Title", "name", "value")
	tb.Row("a", 1)
	tb.Row("longer-name", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title line = %q", lines[0])
	}
	// Header, separator and both rows must share a left-aligned first
	// column wide enough for the longest cell.
	if !strings.HasPrefix(lines[1], "name       ") {
		t.Fatalf("header not padded: %q", lines[1])
	}
	if !strings.Contains(out, "longer-name") || !strings.Contains(out, "2.5") {
		t.Fatalf("rows missing:\n%s", out)
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator missing: %q", lines[2])
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "v")
	tb.Row(0.000123456789)
	if !strings.Contains(tb.String(), "0.000123457") {
		t.Fatalf("float formatting: %q", tb.String())
	}
}

func TestRaggedRows(t *testing.T) {
	tb := New("", "a", "b")
	tb.Row("x", "y", "z") // extra cell beyond headers
	tb.Row("only")
	out := tb.String()
	if !strings.Contains(out, "z") || !strings.Contains(out, "only") {
		t.Fatalf("ragged rows mishandled:\n%s", out)
	}
}

func TestUntitled(t *testing.T) {
	tb := New("", "h")
	tb.Row(1)
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("untitled table should not start with a blank line")
	}
}
