// Package tables renders aligned text tables for the experiment drivers —
// the same rows/series the paper's tables and figures report.
package tables

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New starts a table with a title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Row appends one row; cells are formatted with %v.
func (t *Table) Row(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	line(t.headers)
	total := 0
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)))
	b.WriteString("\n")
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
