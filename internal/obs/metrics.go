// Metrics: a zero-dependency registry of counters, gauges and histograms
// with a deterministic snapshot/text encoding.
//
// Determinism is the design constraint (it must hold to the byte under
// PARADIGM_WORKERS=8, like every other output of the reproduction):
//
//   - Counters add integers — associative and commutative, so any
//     emission order yields the same total.
//   - Histograms store integer bucket counts plus a fixed-point sum
//     (nanounit resolution): each observation quantizes independently
//     before accumulation, so float non-associativity cannot leak
//     schedule-dependent low bits into the encoding.
//   - Gauges are last-write-wins and belong on serial paths (final Φ,
//     makespans); concurrent writers would race by construction.
//
// The text encoding sorts metrics by name within each type section, so
// two registries fed the same multiset of updates encode byte-identically.

package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	mu sync.Mutex
	v  uint64
}

// Add increments the counter by n (negative n is ignored).
func (c *Counter) Add(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.v += uint64(n)
	c.mu.Unlock()
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a last-write-wins float metric for serial emission paths.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// histScale is the fixed-point quantum for histogram sums: one nanounit.
// Observations quantize to this grid before accumulating, trading 1e-9
// absolute precision for order-independent (integer) addition.
const histScale = 1e9

// Histogram counts observations into fixed upper-bound buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf follows
	counts []uint64  // len(bounds)+1
	n      uint64
	sumQ   int64 // fixed-point sum, histScale units
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	q := int64(math.Round(v * histScale))
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.n++
	h.sumQ += q
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the quantized observation sum.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return float64(h.sumQ) / histScale
}

// DefaultBuckets is a decade ladder wide enough for seconds-scale times,
// byte counts and dimensionless ratios alike.
var DefaultBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1e3, 1e4, 1e5, 1e6,
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil selects DefaultBuckets). Later calls
// ignore the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		if bounds == nil {
			bounds = DefaultBuckets
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry, detached from further
// updates and encodable as deterministic text.
type Snapshot struct {
	Counters []CounterPoint
	Gauges   []GaugePoint
	Hists    []HistPoint
}

// CounterPoint is one counter sample.
type CounterPoint struct {
	Name  string
	Value uint64
}

// GaugePoint is one gauge sample.
type GaugePoint struct {
	Name  string
	Value float64
}

// HistPoint is one histogram sample.
type HistPoint struct {
	Name   string
	Bounds []float64
	Counts []uint64
	N      uint64
	Sum    float64
}

// Snapshot copies every metric, sorted by name within each section.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		h.mu.Lock()
		s.Hists = append(s.Hists, HistPoint{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			N:      h.n,
			Sum:    float64(h.sumQ) / histScale,
		})
		h.mu.Unlock()
	}
	sort.Slice(s.Counters, func(a, b int) bool { return s.Counters[a].Name < s.Counters[b].Name })
	sort.Slice(s.Gauges, func(a, b int) bool { return s.Gauges[a].Name < s.Gauges[b].Name })
	sort.Slice(s.Hists, func(a, b int) bool { return s.Hists[a].Name < s.Hists[b].Name })
	return s
}

// fmtFloat renders floats with the shortest round-trip representation —
// a canonical encoding, so equal values always print identically.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Text renders the snapshot in the registry text format:
//
//	counter <name> <value>
//	gauge <name> <value>
//	hist <name> count=<n> sum=<sum> <bound>:<count> ... +Inf:<count>
//
// Lines are sorted by type section then name; equal registries encode
// byte-identically.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "counter %s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "gauge %s %s\n", g.Name, fmtFloat(g.Value))
	}
	for _, h := range s.Hists {
		fmt.Fprintf(&b, "hist %s count=%d sum=%s", h.Name, h.N, fmtFloat(h.Sum))
		for i, c := range h.Counts {
			bound := "+Inf"
			if i < len(h.Bounds) {
				bound = fmtFloat(h.Bounds[i])
			}
			fmt.Fprintf(&b, " %s:%d", bound, c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
