// Package obs is the pipeline observability layer: structured events and
// a zero-dependency metrics registry the whole reproduction reports into.
//
// The paper's argument rests on predicted-vs-actual agreement (Section 5,
// Figures 7-8), but a pipeline that only returns two makespans cannot
// show *why* a schedule costs what it costs. This package defines the
// event vocabulary each stage emits — the convex solver's per-stage
// convergence (SolverStage), the PSA's rounding and list-scheduling
// decisions (PSARound, PSAPick), the simulator's per-message traffic and
// per-processor accounting (Comm, NodeRun, ProcStat), and the
// training-sets fit quality (CalibFit) — plus the Observer interface that
// receives them.
//
// Design constraints, in order:
//
//   - Zero cost when unused: every instrumented call site guards with a
//     nil check, so the uninstrumented pipeline pays one pointer
//     comparison per would-be event.
//   - Determinism: events may be emitted concurrently (multi-start
//     allocation solves, calibration sweeps run on the par pool), so
//     consumers that promise deterministic output must either fold events
//     commutatively (the metrics registry does — see metrics.go) or sort
//     them by their intrinsic coordinates (the trace exporter does).
//   - No dependencies: events carry plain ints/floats/strings; the
//     package imports only the standard library.
package obs

import "sync"

// Observer receives structured pipeline events. Implementations must be
// safe for concurrent use: the allocator's multi-start solves and the
// calibration sweep emit from worker-pool goroutines.
type Observer interface {
	Observe(Event)
}

// Kind discriminates event types without reflection.
type Kind uint8

const (
	// KindSolverStage: one annealed temperature stage of a convex solve.
	KindSolverStage Kind = iota
	// KindPSARound: the rounding/bounding decision for one node.
	KindPSARound
	// KindPSAPick: one list-scheduling pick.
	KindPSAPick
	// KindComm: one simulated point-to-point message.
	KindComm
	// KindNodeRun: one simulated node execution window.
	KindNodeRun
	// KindProcStat: one processor's busy/idle account for a run.
	KindProcStat
	// KindCalibFit: one training-sets fit summary.
	KindCalibFit
	// KindFault: one injected fault taking effect in the simulator.
	KindFault
	// KindRecovery: one recovery attempt after a halted simulation.
	KindRecovery
	// KindReplan: one replanning (or allocator degradation) decision.
	KindReplan
	// KindCheckpoint: one stage snapshot committed to the WAL.
	KindCheckpoint
	// KindResume: one stage restored from a committed WAL record.
	KindResume
	// KindRetry: one budget-governed stage retry about to back off.
	KindRetry
	// KindBreaker: one circuit-breaker decision at a stage boundary.
	KindBreaker
	// KindAllocCache: one warm-start cache lookup by the allocator.
	KindAllocCache
	// KindAllocDone: one completed allocation solve, any backend.
	KindAllocDone
	// KindJournal: one record made durable in the service job journal.
	KindJournal
	// KindSchedCache: one pipeline-level schedule-cache lookup.
	KindSchedCache
	// KindClusterDecision: one routing/placement decision by the cluster
	// event loop.
	KindClusterDecision
	// KindPoolHealth: one processor health transition in the cluster pool.
	KindPoolHealth
)

// Event is one structured pipeline event.
type Event interface {
	Kind() Kind
}

// SolverStage reports one annealed temperature stage of the convex
// allocation solve: the smoothing temperature, the smoothed objective Φ
// at the stage solution, and the cumulative iteration/line-search-eval
// counts — the data behind a solver-convergence trajectory.
type SolverStage struct {
	// StartIdx is the multi-start index (0 for the classic midpoint
	// start); Stage counts temperature stages within one start.
	StartIdx, Stage int
	// Temp is the log-sum-exp smoothing temperature of the stage.
	Temp float64
	// Phi is the smoothed objective at the stage solution.
	Phi float64
	// Iters and Evals count this stage's inner iterations and
	// line-search objective evaluations.
	Iters, Evals int
	// Status is the inner minimizer's stop reason.
	Status string
}

// Kind implements Event.
func (SolverStage) Kind() Kind { return KindSolverStage }

// PSARound reports the rounding-off + bounding decision for one node:
// the continuous allocation, the arithmetic-nearest power of two, and
// the value after the Corollary-1 PB clip.
type PSARound struct {
	Node int
	// Continuous is the convex program's p_i.
	Continuous float64
	// Rounded is the nearest power of two before bounding; Final is the
	// allocation after the PB clamp. Clipped reports Final < Rounded.
	Rounded, Final int
	Clipped        bool
}

// Kind implements Event.
func (PSARound) Kind() Kind { return KindPSARound }

// PSAPick reports one list-scheduling decision: the ready node picked
// (lowest EST under the paper's policy), its earliest start time, the
// processor satisfaction time of the chosen processor set, and the
// resulting execution window.
type PSAPick struct {
	Node int
	// EST is the precedence-imposed earliest start; PST is when the
	// chosen processors free up; Start = max(EST, PST).
	EST, PST, Start, Finish float64
	// Procs is the allocation size actually granted.
	Procs int
}

// Kind implements Event.
func (PSAPick) Kind() Kind { return KindPSAPick }

// Comm reports one simulated point-to-point message, recorded when the
// receive completes (the only moment the full timeline is known).
type Comm struct {
	// Tag is the codegen message tag (unique per run).
	Tag      string
	From, To int
	Bytes    int
	// SendStart..SendEnd is the sender's busy window; NetReady is when
	// the payload clears the network; RecvStart..RecvEnd is the
	// receiver's busy window.
	SendStart, SendEnd, NetReady, RecvStart, RecvEnd float64
}

// Kind implements Event.
func (Comm) Kind() Kind { return KindComm }

// NodeRun reports one node's actual (simulated) execution window.
type NodeRun struct {
	Node          int
	Start, Finish float64
	Procs         int
}

// Kind implements Event.
func (NodeRun) Kind() Kind { return KindNodeRun }

// ProcStat reports one processor's final accounting for a simulated run:
// Busy is time spent advancing the clock (sends, receives, copies,
// kernel execution); Idle is Makespan - final clock plus intra-run waits
// (blocked receives, barrier waits).
type ProcStat struct {
	Proc       int
	Busy, Idle float64
}

// Kind implements Event.
func (ProcStat) Kind() Kind { return KindProcStat }

// CalibFit reports one training-sets regression: the fit name (a Table 1
// loop row or the Table 2 send/recv fit), its R², the worst absolute
// residual over the sweep, and the sample count. Warning is set when the
// R² fell below the trainsets quality threshold — the fit is kept but
// flagged instead of silently trusted.
type CalibFit struct {
	Name           string
	R2             float64
	MaxAbsResidual float64
	Samples        int
	Warning        bool
}

// Kind implements Event.
func (CalibFit) Kind() Kind { return KindCalibFit }

// Fault reports one injected fault taking effect in the simulator:
// Kind is "proc-fail", "msg-drop", "msg-duplicate", "msg-delay" or
// "straggler"; the coordinate fields that do not apply are -1/"".
// Time is the virtual time at which the fault fired.
type Fault struct {
	FaultKind string
	Proc      int
	Node      int
	Tag       string
	Time      float64
}

// Kind implements Event.
func (Fault) Kind() Kind { return KindFault }

// Recovery reports one recovery attempt after a halted simulation:
// Cause names the halt sentinel, Failed/Survivors count processors,
// Restored counts arrays salvaged from surviving blocks, Residual
// counts nodes that must re-execute.
type Recovery struct {
	Attempt   int
	Cause     string
	Failed    int
	Survivors int
	Restored  int
	Residual  int
}

// Kind implements Event.
func (Recovery) Kind() Kind { return KindRecovery }

// Replan reports one replanning decision: a recovery-driven reschedule
// (Stage "recovery") or an allocator degradation step (Stage
// "multistart-retry" / "heuristic-fallback"). Phi is the objective of
// the replacement allocation; Procs the system size it targets.
type Replan struct {
	Attempt int
	Stage   string
	Procs   int
	Phi     float64
}

// Kind implements Event.
func (Replan) Kind() Kind { return KindReplan }

// Checkpoint reports one stage snapshot made durable in the write-ahead
// checkpoint log: the stage name, its sequence number in commit order,
// and the payload size.
type Checkpoint struct {
	Stage string
	Seq   int
	Bytes int
}

// Kind implements Event.
func (Checkpoint) Kind() Kind { return KindCheckpoint }

// Resume reports one stage restored from a committed checkpoint record
// instead of recomputed — the signature of a resumed run.
type Resume struct {
	Stage string
	Seq   int
}

// Kind implements Event.
func (Resume) Kind() Kind { return KindResume }

// Retry reports one budget-governed retry: attempt numbers the failure
// (1-based), DelaySeconds is the decorrelated-jitter backoff about to be
// slept, Err the failure being retried.
type Retry struct {
	Stage        string
	Attempt      int
	DelaySeconds float64
	Err          string
}

// Kind implements Event.
func (Retry) Kind() Kind { return KindRetry }

// Breaker reports one circuit-breaker decision: State is the breaker
// state observed at the decision ("open" means the call was shed to the
// heuristic fallback without touching the solver).
type Breaker struct {
	Stage string
	State string
}

// Kind implements Event.
func (Breaker) Kind() Kind { return KindBreaker }

// AllocCache reports one warm-start cache lookup: Outcome is "hit" (an
// exact entry replayed without solving), "seed" (a same-graph entry for
// a different machine size rescaled into a warm start), or "miss". The
// outcome sequence is deterministic for a given request sequence, so
// folding it preserves registry determinism.
type AllocCache struct {
	Outcome string
}

// Kind implements Event.
func (AllocCache) Kind() Kind { return KindAllocCache }

// AllocDone reports one completed allocation solve. Backend names the
// path that produced the allocation ("anneal", "admm", "heuristic", or
// "cache" for a replayed exact hit); Phi is its exact objective.
// Seconds is wall-clock solve time — consumers that promise
// deterministic output must ignore it (the canonical fold does).
type AllocDone struct {
	Backend string
	Phi     float64
	Seconds float64
}

// Kind implements Event.
func (AllocDone) Kind() Kind { return KindAllocDone }

// JournalAppend reports one record committed durably to the service job
// journal: Record is "submit" for an accepted job or the status the
// transition landed on ("queued", "running", "done", "failed"); Bytes is
// the payload size. The append sequence for a given request sequence is
// deterministic, so the metric fold preserves registry determinism.
type JournalAppend struct {
	Record string
	Bytes  int
}

// Kind implements Event.
func (JournalAppend) Kind() Kind { return KindJournal }

// SchedCache reports one pipeline-level schedule-cache lookup: Outcome
// is "hit" (a memoized allocate→schedule pair replayed without touching
// the solver or the PSA) or "miss". The cache never seeds a solve —
// exact replay or nothing — so the outcome sequence is deterministic
// for a given request sequence and folding it preserves registry
// determinism.
type SchedCache struct {
	Outcome string
}

// Kind implements Event.
func (SchedCache) Kind() Kind { return KindSchedCache }

// ClusterDecision reports one decision by the cluster event loop:
// Decision is "place", "degrade", "requeue", "shed", "evict", "replace"
// or "finish"; Job names the affected job (empty for pool-scoped
// decisions), Router the routing policy in force. Requested/Granted are
// partition sizes (Granted < Requested marks a degraded placement; both
// are -1 when sizing does not apply). Time is the cluster's virtual
// clock at the decision.
type ClusterDecision struct {
	Decision  string
	Job       string
	Router    string
	Requested int
	Granted   int
	Time      float64
}

// Kind implements Event.
func (ClusterDecision) Kind() Kind { return KindClusterDecision }

// PoolHealth reports one processor health transition in the cluster
// pool: State is "suspect" (the processor failed in fact but detection
// has not fired) or "dead" (the failure detector declared it at Time;
// the processor leaves the assignable pool permanently).
type PoolHealth struct {
	Proc  int
	State string
	Time  float64
}

// Kind implements Event.
func (PoolHealth) Kind() Kind { return KindPoolHealth }

// Multi fans every event out to each non-nil observer. A result of nil
// (no observers) preserves the nil fast path at the emit sites.
func Multi(obs ...Observer) Observer {
	flat := make(multi, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			flat = append(flat, o)
		}
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	}
	return flat
}

type multi []Observer

// Observe implements Observer.
func (m multi) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// Recorder is an Observer that collects every event in memory, for the
// trace exporter and for tests. Safe for concurrent emitters; the
// recorded order is emission order, which for events produced by
// worker-pool stages is nondeterministic — consumers needing stable
// output sort by the events' intrinsic coordinates (see trace.WriteUnified).
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Observe implements Observer.
func (r *Recorder) Observe(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a snapshot copy of the recorded events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}
