// The canonical event→metrics fold: an Observer that aggregates pipeline
// events into a Registry. Every fold operation is commutative (counter
// adds, histogram observations), so the resulting snapshot is
// deterministic no matter how the worker pool interleaved the emitters.

package obs

// Ratio buckets for rounding deltas (rounded/continuous ∈ [2/3, 4/3] by
// Theorem 2) and R² values.
var ratioBuckets = []float64{0.5, 0.667, 0.8, 0.9, 0.95, 1, 1.05, 1.1, 1.25, 1.333, 1.5, 2}

// timeBuckets cover the simulated-seconds scale of the CM-5 runs.
var timeBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}

// byteBuckets cover message sizes.
var byteBuckets = []float64{64, 512, 4096, 32768, 262144, 2097152, 16777216}

// MetricsObserver returns an Observer folding events into r under the
// canonical metric names (see DESIGN.md §8 for the taxonomy).
func MetricsObserver(r *Registry) Observer {
	if r == nil {
		return nil
	}
	return &metricsObserver{r: r}
}

type metricsObserver struct{ r *Registry }

// Observe implements Observer.
func (m *metricsObserver) Observe(e Event) {
	r := m.r
	switch ev := e.(type) {
	case SolverStage:
		r.Counter("alloc_solver_stages_total").Inc()
		r.Counter("alloc_solver_iters_total").Add(ev.Iters)
		r.Counter("alloc_solver_evals_total").Add(ev.Evals)
		r.Histogram("alloc_solver_stage_phi", nil).Observe(ev.Phi)
		r.Histogram("alloc_solver_stage_temp", nil).Observe(ev.Temp)
	case PSARound:
		r.Counter("sched_round_nodes_total").Inc()
		if ev.Clipped {
			r.Counter("sched_round_clipped_total").Inc()
		}
		if ev.Continuous > 0 {
			r.Histogram("sched_round_ratio", ratioBuckets).
				Observe(float64(ev.Final) / ev.Continuous)
		}
	case PSAPick:
		r.Counter("sched_picks_total").Inc()
		// Wait = Start - EST: how long the pick sat on processors
		// (PST > EST means the bound stretched the critical path).
		if w := ev.Start - ev.EST; w > 0 {
			r.Histogram("sched_pick_wait_seconds", timeBuckets).Observe(w)
		}
	case Comm:
		r.Counter("sim_messages_total").Inc()
		r.Counter("sim_network_bytes_total").Add(ev.Bytes)
		r.Histogram("sim_msg_bytes", byteBuckets).Observe(float64(ev.Bytes))
		if w := ev.RecvStart - ev.SendStart; w > 0 {
			r.Histogram("sim_msg_latency_seconds", timeBuckets).Observe(w)
		}
	case NodeRun:
		r.Counter("sim_node_runs_total").Inc()
		r.Histogram("sim_node_span_seconds", timeBuckets).Observe(ev.Finish - ev.Start)
	case ProcStat:
		r.Histogram("sim_proc_busy_seconds", timeBuckets).Observe(ev.Busy)
		r.Histogram("sim_proc_idle_seconds", timeBuckets).Observe(ev.Idle)
	case CalibFit:
		r.Counter("calib_fits_total").Inc()
		r.Histogram("calib_fit_r2", ratioBuckets).Observe(ev.R2)
		r.Histogram("calib_fit_residual_seconds", timeBuckets).Observe(ev.MaxAbsResidual)
		if ev.Warning {
			r.Counter("calib_fit_warnings_total").Inc()
		}
	case Fault:
		r.Counter("fault_injected_total").Inc()
		r.Counter("fault_injected_" + ev.FaultKind + "_total").Inc()
	case Recovery:
		r.Counter("recovery_attempts_total").Inc()
		r.Counter("recovery_failed_procs_total").Add(ev.Failed)
		r.Counter("recovery_restored_arrays_total").Add(ev.Restored)
		r.Counter("recovery_residual_nodes_total").Add(ev.Residual)
	case Replan:
		r.Counter("replan_total").Inc()
		r.Counter("replan_" + sanitizeMetricFragment(ev.Stage) + "_total").Inc()
		r.Histogram("replan_phi", nil).Observe(ev.Phi)
	case Checkpoint:
		r.Counter("ckpt_commits_total").Inc()
		r.Counter("ckpt_commit_bytes_total").Add(ev.Bytes)
		r.Histogram("ckpt_record_bytes", byteBuckets).Observe(float64(ev.Bytes))
	case Resume:
		r.Counter("ckpt_resume_total").Inc()
		r.Counter("ckpt_resume_" + sanitizeMetricFragment(ev.Stage) + "_total").Inc()
	case Retry:
		r.Counter("retry_total").Inc()
		r.Counter("retry_" + sanitizeMetricFragment(ev.Stage) + "_total").Inc()
		r.Histogram("retry_delay_seconds", timeBuckets).Observe(ev.DelaySeconds)
	case Breaker:
		r.Counter("breaker_decisions_total").Inc()
		r.Counter("breaker_" + sanitizeMetricFragment(ev.State) + "_total").Inc()
	case AllocCache:
		r.Counter("alloc_cache_requests_total").Inc()
		r.Counter("alloc_cache_" + sanitizeMetricFragment(ev.Outcome) + "_total").Inc()
	case SchedCache:
		r.Counter("sched_cache_requests_total").Inc()
		r.Counter("sched_cache_" + sanitizeMetricFragment(ev.Outcome) + "_total").Inc()
	case JournalAppend:
		r.Counter("job_journal_appends_total").Inc()
		r.Counter("job_journal_append_" + sanitizeMetricFragment(ev.Record) + "_total").Inc()
		r.Histogram("job_journal_record_bytes", byteBuckets).Observe(float64(ev.Bytes))
	case ClusterDecision:
		r.Counter("cluster_decisions_total").Inc()
		r.Counter("cluster_" + sanitizeMetricFragment(ev.Decision) + "_total").Inc()
		if ev.Granted > 0 {
			r.Histogram("cluster_granted_procs", nil).Observe(float64(ev.Granted))
		}
		if ev.Decision == "degrade" && ev.Requested > 0 && ev.Granted > 0 {
			r.Histogram("cluster_degrade_ratio", ratioBuckets).
				Observe(float64(ev.Granted) / float64(ev.Requested))
		}
	case PoolHealth:
		r.Counter("cluster_pool_transitions_total").Inc()
		r.Counter("cluster_pool_" + sanitizeMetricFragment(ev.State) + "_total").Inc()
	case AllocDone:
		// Seconds is wall-clock and deliberately not folded: the registry
		// snapshot stays byte-identical across worker widths and machines.
		r.Counter("alloc_solves_total").Inc()
		r.Counter("alloc_solve_" + sanitizeMetricFragment(ev.Backend) + "_total").Inc()
		r.Histogram("alloc_solve_phi", nil).Observe(ev.Phi)
	}
}

// sanitizeMetricFragment maps an event label into a metric-name-safe
// fragment (the Stage strings use '-' separators).
func sanitizeMetricFragment(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c == '-' || c == ' ' {
			b[i] = '_'
		}
	}
	return string(b)
}
