package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestMultiNilCollapse(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	rec := NewRecorder()
	if Multi(nil, rec, nil) != Observer(rec) {
		t.Fatal("Multi with one live observer should return it unwrapped")
	}
	r2 := NewRecorder()
	m := Multi(rec, r2)
	m.Observe(PSAPick{Node: 3})
	if rec.Len() != 1 || r2.Len() != 1 {
		t.Fatalf("fan-out miss: %d/%d", rec.Len(), r2.Len())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Observe(Comm{Bytes: i})
			}
		}()
	}
	wg.Wait()
	if rec.Len() != 800 {
		t.Fatalf("recorded %d events, want 800", rec.Len())
	}
}

func TestRegistryTextEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_count").Add(3)
	r.Counter("a_count").Inc()
	r.Gauge("phi").Set(0.125)
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	got := r.Snapshot().Text()
	want := strings.Join([]string{
		"counter a_count 1",
		"counter b_count 3",
		"gauge phi 0.125",
		"hist lat count=3 sum=55.5 1:1 10:1 +Inf:1",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("encoding mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegistryOrderIndependence is the core determinism property: the
// same multiset of updates applied in different orders (here: reversed)
// must encode byte-identically, including histogram sums.
func TestRegistryOrderIndependence(t *testing.T) {
	vals := []float64{0.1, 0.3, 1e-7, 123.456, 0.2, 7.7, 1e-7, 3.3}
	enc := func(order []float64) string {
		r := NewRegistry()
		h := r.Histogram("x", nil)
		for _, v := range order {
			h.Observe(v)
			r.Counter("n").Inc()
		}
		return r.Snapshot().Text()
	}
	rev := make([]float64, len(vals))
	for i, v := range vals {
		rev[len(vals)-1-i] = v
	}
	if a, b := enc(vals), enc(rev); a != b {
		t.Fatalf("order-dependent encoding:\n%s\nvs\n%s", a, b)
	}
}

// TestRegistryConcurrentDeterminism hammers one registry from 8
// goroutines and compares against a serial reference.
func TestRegistryConcurrentDeterminism(t *testing.T) {
	apply := func(r *Registry, worker int) {
		h := r.Histogram("obs", nil)
		c := r.Counter("total")
		for i := 0; i < 200; i++ {
			h.Observe(float64(i%17) * 0.013)
			c.Add(i % 5)
		}
	}
	serial := NewRegistry()
	for w := 0; w < 8; w++ {
		apply(serial, w)
	}
	conc := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) { defer wg.Done(); apply(conc, w) }(w)
	}
	wg.Wait()
	if a, b := serial.Snapshot().Text(), conc.Snapshot().Text(); a != b {
		t.Fatalf("concurrent encoding differs from serial:\n%s\nvs\n%s", a, b)
	}
}

func TestMetricsObserverFold(t *testing.T) {
	r := NewRegistry()
	o := MetricsObserver(r)
	o.Observe(SolverStage{Stage: 0, Temp: 0.1, Phi: 2.5, Iters: 10, Evals: 12})
	o.Observe(SolverStage{Stage: 1, Temp: 0.02, Phi: 2.4, Iters: 7, Evals: 8})
	o.Observe(PSARound{Node: 1, Continuous: 3.1, Rounded: 4, Final: 2, Clipped: true})
	o.Observe(PSAPick{Node: 1, EST: 1.0, PST: 1.5, Start: 1.5, Finish: 2.0, Procs: 2})
	o.Observe(Comm{Tag: "t", Bytes: 1024, SendStart: 0, RecvStart: 0.5, RecvEnd: 0.6})
	o.Observe(NodeRun{Node: 1, Start: 0, Finish: 0.25, Procs: 2})
	o.Observe(ProcStat{Proc: 0, Busy: 0.2, Idle: 0.05})
	o.Observe(CalibFit{Name: "mul", R2: 0.99, MaxAbsResidual: 1e-4, Samples: 7})
	for name, want := range map[string]uint64{
		"alloc_solver_stages_total": 2,
		"alloc_solver_iters_total":  17,
		"alloc_solver_evals_total":  20,
		"sched_round_nodes_total":   1,
		"sched_round_clipped_total": 1,
		"sched_picks_total":         1,
		"sim_messages_total":        1,
		"sim_network_bytes_total":   1024,
		"sim_node_runs_total":       1,
		"calib_fits_total":          1,
	} {
		if got := r.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if n := r.Histogram("sched_pick_wait_seconds", nil).Count(); n != 1 {
		t.Errorf("pick wait count = %d, want 1", n)
	}
	if MetricsObserver(nil) != nil {
		t.Error("MetricsObserver(nil) must be nil for the fast path")
	}
}
