// Package sim is the deterministic simulator of a distributed-memory
// multicomputer — the stand-in for the paper's 64-node Thinking Machines
// CM-5 (see DESIGN.md, substitution table).
//
// It interprets the MPMD instruction streams produced by internal/codegen.
// Every processor has a private block store and a virtual clock; messages
// are matched by tag with CM-5 receive semantics (the network transit is
// paid inside the receive, so t_n = 0 at the model level); kernel
// executions are group barriers whose per-processor cost comes from the
// machine ground truth in internal/kernels, including ceiling-based block
// imbalance and log-tree collectives.
//
// Crucially, real float64 data moves through the simulated network and
// real arithmetic runs in the kernels: Gather reassembles any produced
// array so tests can verify the end-to-end numerical result against the
// program's sequential reference. A scheduling or code-generation bug
// either deadlocks (reported with a full blocked-processor diagnosis) or
// produces wrong numbers — it cannot hide.
//
// Fault injection: Options.Faults attaches a deterministic fault.Plan.
// A fail-stop processor executes no instruction once its clock reaches
// its fail time; messages still in the network at its death are dropped,
// as are messages a Drop fault discards. When the run stops making
// progress, the virtual-time watchdog classifies the halt — processor
// loss, message loss, or plain deadlock — and returns a HaltError whose
// Partial result carries the surviving block stores and the set of
// completed nodes, the state the recovery driver replans from.
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"paradigm/internal/codegen"
	"paradigm/internal/dist"
	"paradigm/internal/errs"
	"paradigm/internal/fault"
	"paradigm/internal/kernels"
	"paradigm/internal/machine"
	"paradigm/internal/matrix"
	"paradigm/internal/mdg"
	"paradigm/internal/obs"
	"paradigm/internal/prog"
)

// block is one processor-local piece of an array instance.
type block struct {
	rect codegen.Rect
	data *matrix.Matrix // (R1-R0)×(C1-C0); nil for empty rects
}

func newBlock(r codegen.Rect) *block {
	b := &block{rect: r}
	if !r.Empty() {
		b.data = matrix.New(r.R1-r.R0, r.C1-r.C0)
	}
	return b
}

// message is an in-flight payload.
type message struct {
	readyAt float64
	payload codegen.Rect
	data    *matrix.Matrix
	// from and the send window feed the per-message Comm event.
	from               int
	sendStart, sendEnd float64
	// dup marks a Duplicate-faulted message: the receiver pays one extra
	// tag-matching overhead discarding the spurious copy.
	dup bool
}

// Options configures a simulated run.
type Options struct {
	// Observer, when non-nil, receives one obs.Comm event per received
	// message, one obs.NodeRun event per executed node, and one
	// obs.ProcStat event per processor at run end. Nil costs one pointer
	// comparison per would-be event.
	Observer obs.Observer
	// Faults, when non-nil, is the deterministic fault schedule this run
	// interprets: fail-stop deaths, message loss/duplication/delay, and
	// kernel stragglers. Each fault that fires emits one obs.Fault event.
	Faults *fault.Plan
	// VirtualDeadline, when > 0, halts the run with a deadlock diagnosis
	// once any processor's virtual clock exceeds it — the watchdog bound
	// for runs a straggler or fault has stretched beyond all plausibility.
	VirtualDeadline float64
}

// HaltError reports a simulated run that stopped before completing: the
// watchdog found no runnable instruction (or the virtual deadline
// passed). It wraps one of the errs sentinels — ErrProcessorLost when a
// fail-stop death is implicated, ErrMessageLost when a receiver waits on
// a dropped message, ErrDeadlock otherwise — and carries the partial
// machine state the recovery driver replans from.
type HaltError struct {
	// Sentinel is errs.ErrProcessorLost, errs.ErrMessageLost or
	// errs.ErrDeadlock.
	Sentinel error
	// Failed lists fail-stop processors that died, ascending.
	Failed []int
	// Blocked describes each stuck processor and what it waits on.
	Blocked string
	// Partial is the machine state at the halt: clocks, completed nodes,
	// and the surviving block stores (failed processors' blocks are
	// lost — SalvageArray skips them).
	Partial *Result
}

// Error implements error.
func (e *HaltError) Error() string {
	return fmt.Sprintf("sim: %v;%s", e.Sentinel, e.Blocked)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *HaltError) Unwrap() error { return e.Sentinel }

// Result reports one simulated run.
type Result struct {
	// ProcClock holds each processor's final virtual time.
	ProcClock []float64
	// Makespan is the maximum final clock: the program's actual
	// execution time on the simulated machine.
	Makespan float64
	// NodeStart and NodeFinish are the actual execution windows of each
	// MDG node (barrier entry to slowest-member completion); dummy nodes
	// report zeros.
	NodeStart, NodeFinish []float64
	// Messages and NetworkBytes count point-to-point traffic.
	Messages     int
	NetworkBytes int
	// ProcBusy is each processor's time spent advancing its clock
	// (sends, receives, copies, kernel execution); Makespan minus the
	// final clock plus the intra-run waits is idle time. Indexed like
	// ProcClock.
	ProcBusy []float64
	// NodeDone marks nodes whose group barrier executed; dummy
	// (OpNone) nodes stay false — they run no barrier.
	NodeDone []bool
	// FailedProcs lists fail-stop processors that died during the run,
	// ascending (empty without a fault plan).
	FailedProcs []int

	stores []map[string]*block
	p      *prog.Program
}

// Run executes the streams on the machine profile. The profile's Procs
// must cover the stream count.
func Run(p *prog.Program, streams *codegen.Streams, mp machine.Params) (*Result, error) {
	return RunCtx(context.Background(), p, streams, mp, Options{})
}

// RunCtx is Run with cancellation and instrumentation: ctx is checked on
// every scheduler sweep of the step loop, so a cancelled context aborts
// the simulation promptly with ctx.Err().
func RunCtx(ctx context.Context, p *prog.Program, streams *codegen.Streams, mp machine.Params, o Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := mp.Validate(); err != nil {
		return nil, err
	}
	if mp.Procs < streams.Procs {
		return nil, fmt.Errorf("sim: machine has %d processors, program needs %d", mp.Procs, streams.Procs)
	}
	nProcs := streams.Procs
	nNodes := p.G.NumNodes()
	ob := o.Observer
	plan := o.Faults
	if plan.Empty() {
		plan = nil // one nil check per fault hook on the clean path
	}
	if err := plan.Validate(nProcs); err != nil {
		return nil, err
	}

	res := &Result{
		ProcClock:  make([]float64, nProcs),
		NodeStart:  make([]float64, nNodes),
		NodeFinish: make([]float64, nNodes),
		ProcBusy:   make([]float64, nProcs),
		NodeDone:   make([]bool, nNodes),
		stores:     make([]map[string]*block, nProcs),
		p:          p,
	}
	for i := range res.stores {
		res.stores[i] = map[string]*block{}
	}

	pc := make([]int, nProcs)
	mailbox := map[string]message{}
	// Fault bookkeeping: dead processors, and tags discarded by Drop
	// faults or by a sender's death (for the watchdog's classification).
	var dead []bool
	dropped := map[string]bool{}
	if plan != nil {
		dead = make([]bool, nProcs)
	}
	// kill marks a processor dead at time at: it executes no further
	// instruction, and its messages still in the network are dropped.
	kill := func(pr int, at float64) {
		dead[pr] = true
		res.FailedProcs = append(res.FailedProcs, pr)
		sort.Ints(res.FailedProcs)
		var lost []string
		for tag, m := range mailbox {
			if m.from == pr && m.readyAt > at {
				lost = append(lost, tag)
			}
		}
		sort.Strings(lost) // deterministic event order under map iteration
		for _, tag := range lost {
			delete(mailbox, tag)
			dropped[tag] = true
			if ob != nil {
				ob.Observe(obs.Fault{FaultKind: "msg-drop", Proc: pr, Node: -1, Tag: tag, Time: at})
			}
		}
		if ob != nil {
			ob.Observe(obs.Fault{FaultKind: "proc-fail", Proc: pr, Node: -1, Time: at})
		}
	}
	type barrier struct {
		arrived  map[int]bool
		executed bool
		start    float64
	}
	barriers := map[mdg.NodeID]*barrier{}

	// step attempts to advance processor pr by one instruction. Returns
	// whether progress was made, or an error.
	step := func(pr int) (bool, error) {
		stream := streams.PerProc[pr]
		if pc[pr] >= len(stream) {
			return false, nil
		}
		switch in := stream[pc[pr]].(type) {
		case codegen.Send:
			src, ok := res.stores[pr][in.SrcInstance]
			if !ok {
				return false, fmt.Errorf("sim: proc %d sends from missing instance %q", pr, in.SrcInstance)
			}
			data, err := extract(src, in.Payload)
			if err != nil {
				return false, fmt.Errorf("sim: proc %d send %q: %w", pr, in.Tag, err)
			}
			bytes := float64(in.Payload.Bytes())
			sendStart := res.ProcClock[pr]
			cost := mp.SendStartup + bytes*mp.SendPerByte
			res.ProcClock[pr] += cost
			res.ProcBusy[pr] += cost
			if _, dup := mailbox[in.Tag]; dup {
				return false, fmt.Errorf("sim: duplicate message tag %q", in.Tag)
			}
			seq := res.Messages
			res.Messages++
			res.NetworkBytes += in.Payload.Bytes()
			msg := message{
				readyAt:   res.ProcClock[pr] + bytes*mp.NetPerByte,
				payload:   in.Payload,
				data:      data,
				from:      pr,
				sendStart: sendStart,
				sendEnd:   res.ProcClock[pr],
			}
			if mf, hit := plan.MsgFaultFor(seq, in.Tag); hit {
				switch mf.Kind {
				case fault.Drop:
					// The sender paid its cost; the payload never arrives.
					// The blocked receiver is the watchdog's problem.
					dropped[in.Tag] = true
					if ob != nil {
						ob.Observe(obs.Fault{FaultKind: "msg-drop", Proc: pr, Node: -1, Tag: in.Tag, Time: res.ProcClock[pr]})
					}
					pc[pr]++
					return true, nil
				case fault.Duplicate:
					msg.dup = true
					if ob != nil {
						ob.Observe(obs.Fault{FaultKind: "msg-duplicate", Proc: pr, Node: -1, Tag: in.Tag, Time: res.ProcClock[pr]})
					}
				case fault.Delay:
					msg.readyAt += mf.Extra
					if ob != nil {
						ob.Observe(obs.Fault{FaultKind: "msg-delay", Proc: pr, Node: -1, Tag: in.Tag, Time: res.ProcClock[pr]})
					}
				}
			}
			mailbox[in.Tag] = msg
			pc[pr]++
			return true, nil

		case codegen.Recv:
			msg, ok := mailbox[in.Tag]
			if !ok {
				return false, nil // blocked: sender not there yet
			}
			delete(mailbox, in.Tag)
			bytes := float64(in.Payload.Bytes())
			t := math.Max(res.ProcClock[pr], msg.readyAt)
			cost := mp.RecvStartup + mp.MsgMatchOverhead + bytes*mp.RecvPerByte
			if msg.dup {
				// Discarding the spurious duplicate copy costs one extra
				// tag match; the payload itself is idempotent.
				cost += mp.MsgMatchOverhead
			}
			res.ProcClock[pr] = t + cost
			res.ProcBusy[pr] += cost
			if ob != nil {
				ob.Observe(obs.Comm{
					Tag: in.Tag, From: msg.from, To: pr,
					Bytes:     in.Payload.Bytes(),
					SendStart: msg.sendStart, SendEnd: msg.sendEnd,
					NetReady: msg.readyAt, RecvStart: t, RecvEnd: res.ProcClock[pr],
				})
			}
			dst := res.stores[pr][in.DstInstance]
			if dst == nil {
				dst = newBlock(in.Block)
				res.stores[pr][in.DstInstance] = dst
			}
			if err := insert(dst, in.Payload, msg.data); err != nil {
				return false, fmt.Errorf("sim: proc %d recv %q: %w", pr, in.Tag, err)
			}
			pc[pr]++
			return true, nil

		case codegen.Move:
			src, ok := res.stores[pr][in.SrcInstance]
			if !ok {
				return false, fmt.Errorf("sim: proc %d moves from missing instance %q", pr, in.SrcInstance)
			}
			data, err := extract(src, in.Payload)
			if err != nil {
				return false, fmt.Errorf("sim: proc %d move: %w", pr, err)
			}
			dst := res.stores[pr][in.DstInstance]
			if dst == nil {
				dst = newBlock(in.Block)
				res.stores[pr][in.DstInstance] = dst
			}
			if err := insert(dst, in.Payload, data); err != nil {
				return false, fmt.Errorf("sim: proc %d move: %w", pr, err)
			}
			cost := float64(in.Payload.Bytes()) * mp.CopyPerByte
			res.ProcClock[pr] += cost
			res.ProcBusy[pr] += cost
			pc[pr]++
			return true, nil

		case codegen.Exec:
			b := barriers[in.Node]
			if b == nil {
				b = &barrier{arrived: map[int]bool{}}
				barriers[in.Node] = b
			}
			if b.executed {
				pc[pr]++
				return true, nil
			}
			if !b.arrived[pr] {
				b.arrived[pr] = true
				if b.start < res.ProcClock[pr] {
					b.start = res.ProcClock[pr]
				}
			}
			if len(b.arrived) < len(in.Group) {
				return false, nil // blocked on slower group members
			}
			// Last arrival executes the node for the whole group.
			if err := execNode(res, p, mp, in, b.start, ob, plan); err != nil {
				return false, err
			}
			b.executed = true
			pc[pr]++
			return true, nil
		}
		return false, fmt.Errorf("sim: proc %d: unknown instruction %T", pr, stream[pc[pr]])
	}

	for {
		// One cancellation check per scheduler sweep: cheap relative to
		// the work a sweep performs, and prompt enough that an
		// already-cancelled context aborts before any instruction runs.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		progress := false
		done := true
		for pr := 0; pr < nProcs; pr++ {
			for {
				// Fail-stop check before every instruction: a processor
				// whose clock reached its fail time while work remains
				// dies here. A fail time past the last instruction has no
				// effect — the processor already finished its stream.
				if plan != nil && !dead[pr] && pc[pr] < len(streams.PerProc[pr]) {
					if at, ok := plan.FailAt(pr); ok && res.ProcClock[pr] >= at {
						kill(pr, at)
						progress = true
					}
				}
				if dead != nil && dead[pr] {
					break
				}
				adv, err := step(pr)
				if err != nil {
					return nil, err
				}
				if !adv {
					break
				}
				progress = true
			}
			if pc[pr] < len(streams.PerProc[pr]) && (dead == nil || !dead[pr]) {
				done = false
			}
		}
		if o.VirtualDeadline > 0 {
			for pr := 0; pr < nProcs; pr++ {
				if res.ProcClock[pr] > o.VirtualDeadline {
					return nil, halt(streams, pc, dead, dropped, res,
						fmt.Sprintf(" virtual deadline %g exceeded by P%d;", o.VirtualDeadline, pr))
				}
			}
		}
		if done {
			incomplete := false
			for _, fp := range res.FailedProcs {
				if pc[fp] < len(streams.PerProc[fp]) {
					incomplete = true
					break
				}
			}
			if !incomplete {
				break
			}
			// Survivors ran out of work but a dead processor's stream never
			// finished: the run cannot have produced every array, so a
			// silent "success" here would hide the loss.
			return nil, halt(streams, pc, dead, dropped, res, "")
		}
		if !progress {
			// A cancelled context is not a deadlock: re-check before
			// diagnosing, so callers racing cancellation against a stuck
			// sweep get context.Canceled, not a misleading halt report.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, halt(streams, pc, dead, dropped, res, "")
		}
	}

	for _, c := range res.ProcClock {
		if c > res.Makespan {
			res.Makespan = c
		}
	}
	if ob != nil {
		for pr := 0; pr < nProcs; pr++ {
			ob.Observe(obs.ProcStat{
				Proc: pr,
				Busy: res.ProcBusy[pr],
				Idle: res.Makespan - res.ProcBusy[pr],
			})
		}
	}
	return res, nil
}

// execNode runs one kernel as a group: advances every member's clock by
// its ground-truth cost (linear or grid layout) and computes the real
// output blocks.
func execNode(res *Result, p *prog.Program, mp machine.Params, in codegen.Exec, start float64, ob obs.Observer, plan *fault.Plan) error {
	spec := p.Specs[in.Node]
	k := spec.Kernel
	q := len(in.Group)
	arr := p.Arrays[spec.Output]
	outPlace, err := codegen.PlacementFor(arr, spec.Axis, in.Group)
	if err != nil {
		return fmt.Errorf("sim: node %d: %w", in.Node, err)
	}
	if len(outPlace.Blocks) != q {
		return fmt.Errorf("sim: node %d placement has %d blocks for %d processors", in.Node, len(outPlace.Blocks), q)
	}

	// Advance clocks: each member pays its own share (block imbalance),
	// scaled by the machine's execution jitter (OS noise emulation).
	pr, pc := 0, 0
	if spec.Axis == dist.ByGrid {
		pr, pc = dist.GridShape(q)
	}
	finish := start
	for slot, proc := range in.Group {
		b := outPlace.Blocks[slot]
		if b.Proc != proc {
			return fmt.Errorf("sim: node %d slot %d placement/group mismatch (%d vs %d)", in.Node, slot, b.Proc, proc)
		}
		var cost float64
		if spec.Axis == dist.ByGrid {
			cost = k.GridProcTime(mp, pr, pc, b.R1-b.R0, b.C1-b.C0)
		} else {
			extent := b.R1 - b.R0
			if spec.Axis == dist.ByCol {
				extent = b.C1 - b.C0
			}
			cost = k.ProcTime(mp, q, extent)
		}
		// Heterogeneous profiles: processor-relative speed scales the
		// compute cost (communication costs stay machine-wide). The guard
		// keeps homogeneous runs bit-identical — no division is applied.
		if s := mp.SpeedOf(proc); s != 1 {
			cost /= s
		}
		if f := plan.SlowdownFor(int(in.Node), proc); f > 1 {
			cost *= f
			if ob != nil {
				ob.Observe(obs.Fault{FaultKind: "straggler", Proc: proc, Node: int(in.Node), Time: start})
			}
		}
		t := start + cost*mp.Jitter(int(in.Node), proc)
		res.ProcClock[proc] = t
		res.ProcBusy[proc] += t - start
		if t > finish {
			finish = t
		}
	}
	res.NodeStart[in.Node] = start
	res.NodeFinish[in.Node] = finish
	if k.Op != kernels.OpNone {
		res.NodeDone[in.Node] = true
	}
	if ob != nil {
		ob.Observe(obs.NodeRun{
			Node: int(in.Node), Start: start, Finish: finish, Procs: q,
		})
	}

	// Compute real data.
	outInst := codegen.Instance(spec.Output, in.Node)
	rectOf := func(b dist.PlacedRect) codegen.Rect {
		return codegen.Rect{R0: b.R0, R1: b.R1, C0: b.C0, C1: b.C1}
	}
	// inputBlock fetches a member's redistributed block of an operand,
	// tolerating absent entries only for empty shares.
	inputBlock := func(operand, slot int) (*block, error) {
		name := spec.Inputs[operand]
		inst := codegen.Instance(name, in.Node)
		proc := in.Group[slot]
		b, ok := res.stores[proc][inst]
		if ok {
			return b, nil
		}
		a := p.Arrays[name]
		pl, err := codegen.PlacementFor(a, spec.Axis, in.Group)
		if err != nil {
			return nil, err
		}
		want := pl.Blocks[slot]
		if want.Empty() {
			return newBlock(rectOf(want)), nil
		}
		return nil, fmt.Errorf("sim: node %d proc %d missing input instance %q", in.Node, proc, inst)
	}
	// assembleInput reassembles a full operand matrix from the group's
	// redistributed blocks (the data image of the gathers whose cost the
	// ProcTime rules already charged).
	assembleInput := func(operand int) (*matrix.Matrix, error) {
		name := spec.Inputs[operand]
		a := p.Arrays[name]
		pl, err := codegen.PlacementFor(a, spec.Axis, in.Group)
		if err != nil {
			return nil, err
		}
		full := matrix.New(a.Rows, a.Cols)
		for slot := range in.Group {
			b, err := inputBlock(operand, slot)
			if err != nil {
				return nil, err
			}
			if b.rect != rectOf(pl.Blocks[slot]) {
				return nil, fmt.Errorf("sim: node %d slot %d operand %d block %v, want %v",
					in.Node, slot, operand, b.rect, rectOf(pl.Blocks[slot]))
			}
			if b.data != nil {
				full.SetBlock(b.rect.R0, b.rect.C0, b.data)
			}
		}
		return full, nil
	}

	switch k.Op {
	case kernels.OpNone:
		return nil

	case kernels.OpInit:
		for slot, proc := range in.Group {
			b := newBlock(rectOf(outPlace.Blocks[slot]))
			if b.data != nil {
				r0, c0 := b.rect.R0, b.rect.C0
				b.data.Fill(func(i, j int) float64 { return k.Init(r0+i, c0+j) })
			}
			res.stores[proc][outInst] = b
		}
		return nil

	case kernels.OpAdd, kernels.OpSub:
		for slot, proc := range in.Group {
			out := newBlock(rectOf(outPlace.Blocks[slot]))
			if out.data != nil {
				a, err := inputBlock(0, slot)
				if err != nil {
					return err
				}
				bb, err := inputBlock(1, slot)
				if err != nil {
					return err
				}
				if a.rect != out.rect || bb.rect != out.rect {
					return fmt.Errorf("sim: node %d proc %d operand blocks %v/%v mismatch output %v",
						in.Node, proc, a.rect, bb.rect, out.rect)
				}
				var err2 error
				if k.Op == kernels.OpAdd {
					err2 = matrix.Add(out.data, a.data, bb.data)
				} else {
					err2 = matrix.Sub(out.data, a.data, bb.data)
				}
				if err2 != nil {
					return fmt.Errorf("sim: node %d: %w", in.Node, err2)
				}
			}
			res.stores[proc][outInst] = out
		}
		return nil

	case kernels.OpExtract:
		full, err := assembleInput(0)
		if err != nil {
			return err
		}
		for slot, proc := range in.Group {
			out := newBlock(rectOf(outPlace.Blocks[slot]))
			if out.data != nil {
				out.data.SetBlock(0, 0, full.Block(
					k.OffR+out.rect.R0, k.OffR+out.rect.R1,
					k.OffC+out.rect.C0, k.OffC+out.rect.C1))
			}
			res.stores[proc][outInst] = out
		}
		return nil

	case kernels.OpAssemble4:
		composed := matrix.New(k.M, k.N)
		hr, hc := k.M/2, k.N/2
		for idx, anchor := range [][2]int{{0, 0}, {0, hc}, {hr, 0}, {hr, hc}} {
			q, err := assembleInput(idx)
			if err != nil {
				return err
			}
			composed.SetBlock(anchor[0], anchor[1], q)
		}
		for slot, proc := range in.Group {
			out := newBlock(rectOf(outPlace.Blocks[slot]))
			if out.data != nil {
				out.data.SetBlock(0, 0, composed.Block(out.rect.R0, out.rect.R1, out.rect.C0, out.rect.C1))
			}
			res.stores[proc][outInst] = out
		}
		return nil

	case kernels.OpMul:
		// Assemble both operands from the group's blocks; each member
		// multiplies its output rectangle's row strip of A by its column
		// strip of B. Correct for every layout; the layout-specific
		// gather costs were charged above.
		fullA, err := assembleInput(0)
		if err != nil {
			return err
		}
		fullB, err := assembleInput(1)
		if err != nil {
			return err
		}
		for slot, proc := range in.Group {
			out := newBlock(rectOf(outPlace.Blocks[slot]))
			if out.data != nil {
				aStrip := fullA.Block(out.rect.R0, out.rect.R1, 0, fullA.Cols)
				bStrip := fullB.Block(0, fullB.Rows, out.rect.C0, out.rect.C1)
				if err := matrix.Mul(out.data, aStrip, bStrip); err != nil {
					return fmt.Errorf("sim: node %d: %w", in.Node, err)
				}
			}
			res.stores[proc][outInst] = out
		}
		return nil
	}
	return fmt.Errorf("sim: node %d: unknown op %v", in.Node, k.Op)
}

// extract copies the rectangle rect (global coordinates) out of a block.
func extract(b *block, rect codegen.Rect) (*matrix.Matrix, error) {
	if rect.R0 < b.rect.R0 || rect.R1 > b.rect.R1 || rect.C0 < b.rect.C0 || rect.C1 > b.rect.C1 {
		return nil, fmt.Errorf("rect %v outside block %v", rect, b.rect)
	}
	if b.data == nil {
		return nil, fmt.Errorf("extract from empty block %v", b.rect)
	}
	return b.data.Block(rect.R0-b.rect.R0, rect.R1-b.rect.R0, rect.C0-b.rect.C0, rect.C1-b.rect.C0), nil
}

// insert copies data into the rectangle rect (global coordinates) of a block.
func insert(b *block, rect codegen.Rect, data *matrix.Matrix) error {
	if rect.R0 < b.rect.R0 || rect.R1 > b.rect.R1 || rect.C0 < b.rect.C0 || rect.C1 > b.rect.C1 {
		return fmt.Errorf("rect %v outside block %v", rect, b.rect)
	}
	if b.data == nil {
		return fmt.Errorf("insert into empty block %v", b.rect)
	}
	b.data.SetBlock(rect.R0-b.rect.R0, rect.C0-b.rect.C0, data)
	return nil
}

// halt classifies a stopped run and builds its HaltError: processor loss
// when a fail-stop death is implicated, message loss when a live
// processor waits on a dropped tag, plain deadlock otherwise. The
// partial Result rides along for the recovery driver.
func halt(streams *codegen.Streams, pc []int, dead []bool, dropped map[string]bool, res *Result, note string) error {
	for _, c := range res.ProcClock {
		if c > res.Makespan {
			res.Makespan = c
		}
	}
	sentinel := errs.ErrDeadlock
	if len(res.FailedProcs) > 0 {
		sentinel = errs.ErrProcessorLost
	} else {
		for pr, stream := range streams.PerProc {
			if pc[pr] >= len(stream) {
				continue
			}
			if in, ok := stream[pc[pr]].(codegen.Recv); ok && dropped[in.Tag] {
				sentinel = errs.ErrMessageLost
				break
			}
		}
	}
	var b strings.Builder
	b.WriteString(note)
	b.WriteString(" blocked processors:")
	for pr, stream := range streams.PerProc {
		if pc[pr] >= len(stream) {
			continue
		}
		if dead != nil && dead[pr] {
			fmt.Fprintf(&b, " P%d@dead(pc %d/%d)", pr, pc[pr], len(stream))
			continue
		}
		switch in := stream[pc[pr]].(type) {
		case codegen.Recv:
			if dropped[in.Tag] {
				fmt.Fprintf(&b, " P%d@recv(%s, dropped)", pr, in.Tag)
			} else {
				fmt.Fprintf(&b, " P%d@recv(%s)", pr, in.Tag)
			}
		case codegen.Exec:
			fmt.Fprintf(&b, " P%d@exec(node %d)", pr, in.Node)
		default:
			fmt.Fprintf(&b, " P%d@%T", pr, in)
		}
	}
	return &HaltError{
		Sentinel: sentinel,
		Failed:   append([]int(nil), res.FailedProcs...),
		Blocked:  b.String(),
		Partial:  res,
	}
}

// Gather reassembles the named array from the producing node's blocks
// across all processor stores, for verification.
func (r *Result) Gather(array string) (*matrix.Matrix, error) {
	producer, ok := r.p.Producer(array)
	if !ok {
		return nil, fmt.Errorf("sim: unknown array %q", array)
	}
	arr := r.p.Arrays[array]
	inst := codegen.Instance(array, producer)
	out := matrix.New(arr.Rows, arr.Cols)
	covered := 0
	// Deterministic iteration over processors.
	for pr := 0; pr < len(r.stores); pr++ {
		b, ok := r.stores[pr][inst]
		if !ok || b.data == nil {
			continue
		}
		out.SetBlock(b.rect.R0, b.rect.C0, b.data)
		covered += (b.rect.R1 - b.rect.R0) * (b.rect.C1 - b.rect.C0)
	}
	if covered != arr.Rows*arr.Cols {
		return nil, fmt.Errorf("sim: array %q blocks cover %d of %d elements", array, covered, arr.Rows*arr.Cols)
	}
	return out, nil
}

// SalvageArray reassembles the named array from surviving processors'
// blocks. It succeeds only when the producing node's barrier executed
// and every element is covered by a non-failed processor's store — the
// recovery driver's test for "restore this array" versus "recompute its
// producer".
func (r *Result) SalvageArray(array string) (*matrix.Matrix, bool) {
	producer, ok := r.p.Producer(array)
	if !ok || !r.NodeDone[producer] {
		return nil, false
	}
	failed := map[int]bool{}
	for _, pr := range r.FailedProcs {
		failed[pr] = true
	}
	arr := r.p.Arrays[array]
	inst := codegen.Instance(array, producer)
	out := matrix.New(arr.Rows, arr.Cols)
	covered := 0
	for pr := 0; pr < len(r.stores); pr++ {
		if failed[pr] {
			continue
		}
		b, ok := r.stores[pr][inst]
		if !ok || b.data == nil {
			continue
		}
		out.SetBlock(b.rect.R0, b.rect.C0, b.data)
		covered += (b.rect.R1 - b.rect.R0) * (b.rect.C1 - b.rect.C0)
	}
	if covered != arr.Rows*arr.Cols {
		return nil, false
	}
	return out, true
}

// BusyTimes returns each processor's final clock, sorted descending — a
// quick load-balance diagnostic.
func (r *Result) BusyTimes() []float64 {
	out := append([]float64(nil), r.ProcClock...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
