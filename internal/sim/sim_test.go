package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"paradigm/internal/alloc"
	"paradigm/internal/codegen"
	"paradigm/internal/costmodel"
	"paradigm/internal/dist"
	"paradigm/internal/kernels"
	"paradigm/internal/machine"
	"paradigm/internal/matrix"
	"paradigm/internal/prog"
	"paradigm/internal/sched"
)

var cm5Fit = costmodel.Model{Transfer: costmodel.TransferParams{
	Tss: 777.56e-6, Tps: 486.98e-9, Tsr: 465.58e-6, Tpr: 426.25e-9, Tn: 0,
}}

func lp(a, t float64) costmodel.LoopParams { return costmodel.LoopParams{Alpha: a, Tau: t} }

// mulProgram builds C = A·B (n×n) with A ByRow, B ByCol (forcing a 2D
// redistribution), C ByRow.
func mulProgram(t testing.TB, n int) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("mul")
	b.AddNode("initA", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpInit, M: n, N: n,
			Init: func(i, j int) float64 { return float64(i*3+j) / 7 }},
		Output: "A", Axis: dist.ByRow,
	}, lp(0.05, 0.002))
	b.AddNode("initB", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpInit, M: n, N: n,
			Init: func(i, j int) float64 { return float64(i-2*j) / 5 }},
		Output: "B", Axis: dist.ByCol,
	}, lp(0.05, 0.002))
	b.AddNode("mul", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpMul, M: n, N: n, K: n},
		Inputs: []string{"A", "B"}, Output: "C", Axis: dist.ByRow,
	}, lp(0.12, 0.3))
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// pipeline runs alloc -> PSA -> codegen for a program.
func pipeline(t testing.TB, p *prog.Program, procs int) (*sched.Schedule, *codegen.Streams) {
	t.Helper()
	ar, err := alloc.Solve(p.G, cm5Fit, procs, alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(p.G, cm5Fit, ar.P, procs, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(p.G, cm5Fit); err != nil {
		t.Fatal(err)
	}
	streams, err := codegen.Generate(p, s)
	if err != nil {
		t.Fatal(err)
	}
	return s, streams
}

func TestMulPipelineEndToEnd(t *testing.T) {
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	res, err := Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
	ref, err := p.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Gather("C")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, ref["C"], 1e-9) {
		d, _ := matrix.MaxAbsDiff(got, ref["C"])
		t.Fatalf("simulated C differs from reference by %v", d)
	}
}

func TestSPMDPipelineEndToEnd(t *testing.T) {
	p := mulProgram(t, 16)
	s, err := sched.SPMD(p.G, cm5Fit, 8)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := codegen.Generate(p, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := p.ReferenceRun()
	got, err := res.Gather("C")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, ref["C"], 1e-9) {
		t.Fatal("SPMD simulated C differs from reference")
	}
}

func TestGatherUnknownArray(t *testing.T) {
	p := mulProgram(t, 8)
	_, streams := pipeline(t, p, 4)
	res, err := Run(p, streams, machine.CM5(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Gather("nope"); err == nil {
		t.Fatal("want error for unknown array")
	}
}

func TestNodeTimesConsistent(t *testing.T) {
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	res, err := Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	mulID := -1
	for i, nd := range p.G.Nodes {
		if nd.Name == "mul" {
			mulID = i
		}
	}
	if mulID < 0 {
		t.Fatal("mul node not found")
	}
	// The multiply cannot start before both inits finish (data dependency).
	for i, nd := range p.G.Nodes {
		if strings.HasPrefix(nd.Name, "init") && res.NodeFinish[i] > res.NodeStart[mulID] {
			t.Fatalf("mul started at %v before %s finished at %v",
				res.NodeStart[mulID], nd.Name, res.NodeFinish[i])
		}
	}
	if res.Makespan < res.NodeFinish[mulID] {
		t.Fatalf("makespan %v < mul finish %v", res.Makespan, res.NodeFinish[mulID])
	}
}

func TestByColMultiply(t *testing.T) {
	// Multiply distributed by columns: gathers A instead of B.
	b := prog.NewBuilder("mulcol")
	n := 12
	b.AddNode("initA", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpInit, M: n, N: n,
			Init: func(i, j int) float64 { return float64(i + 2*j) }},
		Output: "A", Axis: dist.ByRow,
	}, lp(0.05, 0.001))
	b.AddNode("initB", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpInit, M: n, N: n,
			Init: func(i, j int) float64 { return float64(3*i - j) }},
		Output: "B", Axis: dist.ByRow,
	}, lp(0.05, 0.001))
	b.AddNode("mul", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpMul, M: n, N: n, K: n},
		Inputs: []string{"A", "B"}, Output: "C", Axis: dist.ByCol,
	}, lp(0.12, 0.05))
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	_, streams := pipeline(t, p, 4)
	res, err := Run(p, streams, machine.CM5(4))
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := p.ReferenceRun()
	got, err := res.Gather("C")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, ref["C"], 1e-9) {
		t.Fatal("ByCol multiply wrong")
	}
}

func TestMoreProcsThanRows(t *testing.T) {
	// 4x4 matrices on 8 processors: some blocks are empty; the run must
	// still complete and verify.
	p := mulProgram(t, 4)
	s, err := sched.SPMD(p.G, cm5Fit, 8)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := codegen.Generate(p, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := p.ReferenceRun()
	got, err := res.Gather("C")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, ref["C"], 1e-9) {
		t.Fatal("empty-block multiply wrong")
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Corrupt a generated program: drop one Send so its Recv blocks
	// forever. The simulator must diagnose, not hang.
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	removed := false
	for pr, stream := range streams.PerProc {
		for i, in := range stream {
			if _, ok := in.(codegen.Send); ok {
				streams.PerProc[pr] = append(stream[:i:i], stream[i+1:]...)
				removed = true
				break
			}
		}
		if removed {
			break
		}
	}
	if !removed {
		t.Skip("no sends generated")
	}
	_, err := Run(p, streams, machine.CM5(8))
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock diagnosis", err)
	}
}

func TestMissingInstanceDiagnosed(t *testing.T) {
	// Corrupt the program: make a Send read a nonexistent instance.
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	patched := false
	for pr, stream := range streams.PerProc {
		for i, in := range stream {
			if s, ok := in.(codegen.Send); ok {
				s.SrcInstance = "ghost@99"
				streams.PerProc[pr][i] = s
				patched = true
				break
			}
		}
		if patched {
			break
		}
	}
	if !patched {
		t.Skip("no sends generated")
	}
	_, err := Run(p, streams, machine.CM5(8))
	if err == nil || !strings.Contains(err.Error(), "missing instance") {
		t.Fatalf("err = %v, want missing-instance diagnosis", err)
	}
}

func TestMachineValidation(t *testing.T) {
	p := mulProgram(t, 8)
	_, streams := pipeline(t, p, 4)
	bad := machine.CM5(4)
	bad.FMATime = -1
	if _, err := Run(p, streams, bad); err == nil {
		t.Fatal("want machine validation error")
	}
	small := machine.CM5(2)
	if _, err := Run(p, streams, small); err == nil {
		t.Fatal("want too-few-processors error")
	}
}

func TestClocksMonotone(t *testing.T) {
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	res, err := Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	for pr, c := range res.ProcClock {
		if c < 0 {
			t.Fatalf("proc %d clock %v", pr, c)
		}
	}
	bt := res.BusyTimes()
	for i := 1; i < len(bt); i++ {
		if bt[i] > bt[i-1] {
			t.Fatal("BusyTimes not descending")
		}
	}
}

// randomAddChainProgram builds a random chain/diamond of adds over one
// initialized matrix, with random axes (forcing a mix of 1D and 2D
// redistributions).
func randomAddChainProgram(rng *rand.Rand, n, depth int) (*prog.Program, error) {
	b := prog.NewBuilder("rand")
	axis := func() dist.Axis {
		if rng.Intn(2) == 0 {
			return dist.ByRow
		}
		return dist.ByCol
	}
	b.AddNode("init0", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpInit, M: n, N: n,
			Init: func(i, j int) float64 { return float64(i*n+j) / 11 }},
		Output: "m0", Axis: axis(),
	}, lp(0.05, 0.001))
	names := []string{"m0"}
	for d := 1; d <= depth; d++ {
		a := names[rng.Intn(len(names))]
		c := names[rng.Intn(len(names))]
		op := kernels.OpAdd
		if rng.Intn(2) == 1 {
			op = kernels.OpSub
		}
		out := "m" + string(rune('0'+d))
		b.AddNode("n"+out, prog.NodeSpec{
			Kernel: kernels.Kernel{Op: op, M: n, N: n},
			Inputs: []string{a, c}, Output: out, Axis: axis(),
		}, lp(0.1, 0.002))
		names = append(names, out)
	}
	return b.Finish()
}

// TestRandomProgramsNumericallyCorrect: the full pipeline preserves
// numerical semantics on random DAG programs under random schedules.
func TestRandomProgramsNumericallyCorrect(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		p, err := randomAddChainProgram(rng, 4+rng.Intn(12), 2+rng.Intn(6))
		if err != nil {
			return false
		}
		const procs = 8
		// Random power-of-two allocation rather than the optimizer, to
		// explore more schedule shapes.
		allocv := make([]int, p.G.NumNodes())
		for i := range allocv {
			allocv[i] = 1 << rng.Intn(4)
		}
		s, err := sched.PSA(p.G, cm5Fit, allocv, procs, sched.LowestEST)
		if err != nil {
			return false
		}
		streams, err := codegen.Generate(p, s)
		if err != nil {
			return false
		}
		res, err := Run(p, streams, machine.CM5(procs))
		if err != nil {
			return false
		}
		ref, err := p.ReferenceRun()
		if err != nil {
			return false
		}
		for name := range p.Arrays {
			got, err := res.Gather(name)
			if err != nil {
				return false
			}
			if !matrix.Equal(got, ref[name], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimulateMul32On8(b *testing.B) {
	p := mulProgram(b, 32)
	_, streams := pipeline(b, p, 8)
	mp := machine.CM5(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, streams, mp); err != nil {
			b.Fatal(err)
		}
	}
}

// gridMulProgram builds C = A·B with the multiply on a grid layout,
// exercising L2G redistribution and the grid exec path.
func gridMulProgram(t testing.TB, n int) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("gridmul")
	b.AddNode("initA", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpInit, M: n, N: n,
			Init: func(i, j int) float64 { return float64(2*i-j) / 9 }},
		Output: "A", Axis: dist.ByRow,
	}, lp(0.05, 0.002))
	b.AddNode("initB", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpInit, M: n, N: n,
			Init: func(i, j int) float64 { return float64(i+3*j) / 7 }},
		Output: "B", Axis: dist.ByCol,
	}, lp(0.05, 0.002))
	b.AddNode("mul", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpMul, M: n, N: n, K: n},
		Inputs: []string{"A", "B"}, Output: "C", Axis: dist.ByGrid,
	}, lp(0.08, 0.3))
	b.AddNode("post", prog.NodeSpec{
		Kernel: kernels.Kernel{Op: kernels.OpAdd, M: n, N: n},
		Inputs: []string{"C", "A"}, Output: "D", Axis: dist.ByRow,
	}, lp(0.06, 0.004))
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGridMulEndToEnd(t *testing.T) {
	p := gridMulProgram(t, 20)
	// The mul node's edges must carry the extended kinds.
	mulID, _ := p.Producer("C")
	aID, _ := p.Producer("A")
	e, ok := p.G.EdgeBetween(aID, mulID)
	if !ok || e.Transfers[0].Kind.String() != "L2G" {
		t.Fatalf("A->mul edge = %+v", e)
	}
	postID, _ := p.Producer("D")
	e, ok = p.G.EdgeBetween(mulID, postID)
	if !ok || e.Transfers[0].Kind.String() != "G2L" {
		t.Fatalf("mul->post edge = %+v", e)
	}
	_, streams := pipeline(t, p, 8)
	res, err := Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"C", "D"} {
		got, err := res.Gather(name)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(got, ref[name], 1e-9) {
			t.Fatalf("grid pipeline array %q wrong", name)
		}
	}
}

func TestGridMulNonSquareGroupAndOddSizes(t *testing.T) {
	// 6 processors (2x3 grid), 11x11 matrices: uneven blocks everywhere.
	p := gridMulProgram(t, 11)
	allocv := make([]int, p.G.NumNodes())
	for i := range allocv {
		allocv[i] = 1
	}
	mulID, _ := p.Producer("C")
	allocv[mulID] = 6
	s, err := sched.PSA(p.G, cm5Fit, allocv, 8, sched.LowestEST)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := codegen.Generate(p, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := p.ReferenceRun()
	got, err := res.Gather("D")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, ref["D"], 1e-9) {
		t.Fatal("odd-size grid multiply wrong")
	}
}

func TestDuplicateTagDiagnosed(t *testing.T) {
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	// Duplicate an existing Send immediately after the original, so the
	// second copy lands before any receiver can drain the first.
	found := false
	for pr, stream := range streams.PerProc {
		for i, in := range stream {
			if s, ok := in.(codegen.Send); ok {
				patched := append([]codegen.Instr{}, stream[:i+1]...)
				patched = append(patched, s)
				patched = append(patched, stream[i+1:]...)
				streams.PerProc[pr] = patched
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no sends")
	}
	_, err := Run(p, streams, machine.CM5(8))
	if err == nil || !strings.Contains(err.Error(), "duplicate message tag") {
		t.Fatalf("err = %v, want duplicate-tag diagnosis", err)
	}
}

func TestMoveFromMissingInstance(t *testing.T) {
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	// Prepend a Move reading a nonexistent instance on proc 0.
	streams.PerProc[0] = append([]codegen.Instr{codegen.Move{
		Payload:     codegen.Rect{R0: 0, R1: 1, C0: 0, C1: 1},
		SrcInstance: "ghost@1",
		DstInstance: "ghost@2",
		Block:       codegen.Rect{R0: 0, R1: 1, C0: 0, C1: 1},
	}}, streams.PerProc[0]...)
	_, err := Run(p, streams, machine.CM5(8))
	if err == nil || !strings.Contains(err.Error(), "missing instance") {
		t.Fatalf("err = %v, want missing-instance diagnosis", err)
	}
}

func TestGatherDetectsIncompleteCoverage(t *testing.T) {
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	res, err := Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	// Delete one block of C from its owner's store.
	producer, _ := p.Producer("C")
	inst := codegen.Instance("C", producer)
	removed := false
	for pr := range res.stores {
		if _, ok := res.stores[pr][inst]; ok {
			delete(res.stores[pr], inst)
			removed = true
			break
		}
	}
	if !removed {
		t.Fatal("no C block found")
	}
	if _, err := res.Gather("C"); err == nil {
		t.Fatal("want coverage error")
	}
}

func TestJitteredRunStillVerifies(t *testing.T) {
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	mp := machine.CM5(8)
	mp.JitterFrac = 0.25
	mp.JitterSeed = 7
	res, err := Run(p, streams, mp)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < clean.Makespan {
		t.Fatalf("jittered run faster than clean: %v < %v", res.Makespan, clean.Makespan)
	}
	ref, _ := p.ReferenceRun()
	got, err := res.Gather("C")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, ref["C"], 1e-9) {
		t.Fatal("jitter corrupted data")
	}
}
