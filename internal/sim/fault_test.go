package sim

import (
	"context"
	"errors"
	"testing"

	"paradigm/internal/errs"
	"paradigm/internal/fault"
	"paradigm/internal/machine"
	"paradigm/internal/matrix"
	"paradigm/internal/obs"
)

// runWithFaults is the fault-injection harness over the shared pipeline
// helper: one program, one plan, one run.
func runWithFaults(t *testing.T, n, procs int, o Options) (*Result, error) {
	t.Helper()
	p := mulProgram(t, n)
	_, streams := pipeline(t, p, procs)
	return RunCtx(context.Background(), p, streams, machine.CM5(procs), o)
}

func TestProcFailureClassified(t *testing.T) {
	_, err := runWithFaults(t, 16, 8, Options{
		Faults: &fault.Plan{ProcFails: []fault.ProcFail{{Proc: 2, At: 0}}},
	})
	if err == nil {
		t.Fatal("want halt from processor death at t=0")
	}
	if !errors.Is(err, errs.ErrProcessorLost) {
		t.Fatalf("err = %v, want ErrProcessorLost", err)
	}
	var halt *HaltError
	if !errors.As(err, &halt) {
		t.Fatalf("err = %T, want *HaltError", err)
	}
	if len(halt.Failed) != 1 || halt.Failed[0] != 2 {
		t.Fatalf("Failed = %v, want [2]", halt.Failed)
	}
	if halt.Partial == nil {
		t.Fatal("HaltError carries no partial result")
	}
	if got := halt.Partial.FailedProcs; len(got) != 1 || got[0] != 2 {
		t.Fatalf("Partial.FailedProcs = %v, want [2]", got)
	}
}

func TestMsgDropClassifiedAsMessageLost(t *testing.T) {
	_, err := runWithFaults(t, 16, 8, Options{
		Faults: &fault.Plan{MsgFaults: []fault.MsgFault{{Kind: fault.Drop, Seq: 0}}},
	})
	if err == nil {
		t.Skip("schedule generated no messages")
	}
	if !errors.Is(err, errs.ErrMessageLost) {
		t.Fatalf("err = %v, want ErrMessageLost", err)
	}
	if errors.Is(err, errs.ErrProcessorLost) {
		t.Fatal("message loss misclassified as processor loss")
	}
}

func TestDelayAndDuplicateBenign(t *testing.T) {
	rec := obs.NewRecorder()
	res, err := runWithFaults(t, 16, 8, Options{
		Observer: rec,
		Faults: &fault.Plan{MsgFaults: []fault.MsgFault{
			{Kind: fault.Delay, Seq: 0, Extra: 5e-3},
			{Kind: fault.Duplicate, Seq: 1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := mulProgram(t, 16)
	ref, _ := p.ReferenceRun()
	got, err := res.Gather("C")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, ref["C"], 0) {
		t.Fatal("delay/duplicate faults corrupted data")
	}
	kinds := map[string]int{}
	for _, e := range rec.Events() {
		if f, ok := e.(obs.Fault); ok {
			kinds[f.FaultKind]++
		}
	}
	if kinds["msg-delay"] != 1 || kinds["msg-duplicate"] != 1 {
		t.Fatalf("fault events = %v, want one msg-delay and one msg-duplicate", kinds)
	}
}

func TestStragglerStretchesRun(t *testing.T) {
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	mp := machine.CM5(8)
	clean, err := Run(p, streams, mp)
	if err != nil {
		t.Fatal(err)
	}
	mulID, _ := p.Producer("C")
	var plan fault.Plan
	for pr := 0; pr < 8; pr++ {
		plan.Stragglers = append(plan.Stragglers, fault.Straggler{Node: int(mulID), Proc: pr, Factor: 10})
	}
	rec := obs.NewRecorder()
	slow, err := RunCtx(context.Background(), p, streams, mp, Options{Observer: rec, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= clean.Makespan {
		t.Fatalf("straggler run %v not slower than clean %v", slow.Makespan, clean.Makespan)
	}
	ref, _ := p.ReferenceRun()
	got, _ := slow.Gather("C")
	if !matrix.Equal(got, ref["C"], 0) {
		t.Fatal("straggler corrupted data")
	}
	seen := false
	for _, e := range rec.Events() {
		if f, ok := e.(obs.Fault); ok && f.FaultKind == "straggler" {
			seen = true
		}
	}
	if !seen {
		t.Fatal("no straggler fault event emitted")
	}
}

func TestCancelledContextBeatsHaltDiagnosis(t *testing.T) {
	// Satellite regression: an already-cancelled context must surface as
	// context.Canceled, never as a deadlock/fault diagnosis — even when
	// the fault plan would halt the run.
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, p, streams, machine.CM5(8), Options{
		Faults: &fault.Plan{ProcFails: []fault.ProcFail{{Proc: 0, At: 0}}},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, errs.ErrProcessorLost) || errors.Is(err, errs.ErrDeadlock) {
		t.Fatalf("cancellation misreported as halt: %v", err)
	}
}

func TestVirtualDeadline(t *testing.T) {
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	_, err := RunCtx(context.Background(), p, streams, machine.CM5(8), Options{
		VirtualDeadline: 1e-9,
	})
	if err == nil {
		t.Fatal("want virtual-deadline halt")
	}
	if !errors.Is(err, errs.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock sentinel", err)
	}
}

func TestDeadPastStreamEndIsHarmless(t *testing.T) {
	// A fail time past a processor's last instruction never fires: the
	// run completes and verifies.
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	clean, err := Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCtx(context.Background(), p, streams, machine.CM5(8), Options{
		Faults: &fault.Plan{ProcFails: []fault.ProcFail{{Proc: 0, At: clean.Makespan * 10}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != clean.Makespan {
		t.Fatalf("late fail time changed makespan: %v vs %v", res.Makespan, clean.Makespan)
	}
}

func TestNodeDoneAndSalvage(t *testing.T) {
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	res, err := Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A", "B", "C"} {
		prod, _ := p.Producer(name)
		if !res.NodeDone[prod] {
			t.Fatalf("producer of %q not marked done", name)
		}
	}
	ref, _ := p.ReferenceRun()
	got, ok := res.SalvageArray("C")
	if !ok {
		t.Fatal("SalvageArray failed on a complete fault-free run")
	}
	if !matrix.Equal(got, ref["C"], 0) {
		t.Fatal("salvaged C differs from reference")
	}

	// Block restoration respects failure: mark the owner of a C block
	// failed and salvage must refuse (its blocks are lost).
	prod, _ := p.Producer("C")
	inst := "C@" + itoa(int(prod))
	owner := -1
	for pr := range res.stores {
		if b, ok := res.stores[pr][inst]; ok && b.data != nil {
			owner = pr
			break
		}
	}
	if owner < 0 {
		t.Fatal("no C block owner found")
	}
	res.FailedProcs = []int{owner}
	if _, ok := res.SalvageArray("C"); ok {
		t.Fatal("SalvageArray used blocks of a failed processor")
	}

	// An un-executed producer blocks salvage even when blocks exist.
	res.FailedProcs = nil
	res.NodeDone[prod] = false
	if _, ok := res.SalvageArray("C"); ok {
		t.Fatal("SalvageArray trusted blocks of an unfinished node")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestMidRunDeathSalvageIsExact(t *testing.T) {
	// Kill one processor halfway through the clean makespan: whatever the
	// partial state lets us salvage must equal the reference bit for bit.
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	clean, err := Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := p.ReferenceRun()
	for pr := 0; pr < 8; pr++ {
		_, err := RunCtx(context.Background(), p, streams, machine.CM5(8), Options{
			Faults: &fault.Plan{ProcFails: []fault.ProcFail{{Proc: pr, At: clean.Makespan / 2}}},
		})
		if err == nil {
			continue // this processor had finished by then
		}
		var halt *HaltError
		if !errors.As(err, &halt) {
			t.Fatalf("proc %d: err = %v, want *HaltError", pr, err)
		}
		for name := range p.Arrays {
			if got, ok := halt.Partial.SalvageArray(name); ok {
				if !matrix.Equal(got, ref[name], 0) {
					t.Fatalf("proc %d: salvaged %q differs from reference", pr, name)
				}
			}
		}
	}
}

func TestEmptyPlanByteIdentical(t *testing.T) {
	p := mulProgram(t, 16)
	_, streams := pipeline(t, p, 8)
	clean, err := Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := RunCtx(context.Background(), p, streams, machine.CM5(8), Options{Faults: &fault.Plan{}})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Makespan != faulted.Makespan || clean.Messages != faulted.Messages {
		t.Fatalf("empty fault plan changed the run: %v/%d vs %v/%d",
			clean.Makespan, clean.Messages, faulted.Makespan, faulted.Messages)
	}
	a, _ := clean.Gather("C")
	b, _ := faulted.Gather("C")
	if !matrix.Equal(a, b, 0) {
		t.Fatal("empty fault plan changed the data")
	}
}
