package frontend

import (
	"fmt"

	"paradigm/internal/dist"
	"paradigm/internal/errs"
	"paradigm/internal/kernels"
	"paradigm/internal/machine"
	"paradigm/internal/prog"
)

// Compile parses source text and lowers it to an executable MDG program,
// pricing each distinct loop shape through any machine model — a
// trained Calibration or another machine backend (the path a real
// PARADIGM front-end would take).
func Compile(name, src string, m machine.LoopSource) (*prog.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	stmts, err := parse(toks)
	if err != nil {
		return nil, err
	}
	return compile(name, stmts, m)
}

// matInfo tracks a defined matrix during semantic analysis.
type matInfo struct {
	rows, cols int
	line       int
	axis       dist.Axis
}

func compile(name string, stmts []stmt, src machine.LoopSource) (*prog.Program, error) {
	params := map[string]int{}
	mats := map[string]matInfo{}
	b := prog.NewBuilder(name)
	genPhase := 0

	resolve := func(o operand, line int) (int, error) {
		if !o.isRef {
			return o.lit, nil
		}
		v, ok := params[o.ref]
		if !ok {
			return 0, fmt.Errorf("frontend: line %d: undefined param %q", line, o.ref)
		}
		return v, nil
	}
	axisOf := func(s stmt, def dist.Axis) dist.Axis {
		if !s.axisExplicit {
			// Binary nodes inherit their left operand's axis by default,
			// avoiding gratuitous redistribution; inits default to rows.
			return def
		}
		switch {
		case s.axisGrid:
			return dist.ByGrid
		case s.axisCol:
			return dist.ByCol
		default:
			return dist.ByRow
		}
	}

	for _, s := range stmts {
		switch s.kind {
		case stmtParam:
			if _, dup := params[s.name]; dup {
				return nil, fmt.Errorf("frontend: line %d: param %q redefined", s.line, s.name)
			}
			if _, dup := mats[s.name]; dup {
				return nil, fmt.Errorf("frontend: line %d: %q already names a matrix", s.line, s.name)
			}
			params[s.name] = s.value

		case stmtInit:
			if _, dup := mats[s.name]; dup {
				return nil, fmt.Errorf("frontend: line %d: matrix %q redefined", s.line, s.name)
			}
			if _, dup := params[s.name]; dup {
				return nil, fmt.Errorf("frontend: line %d: %q already names a param", s.line, s.name)
			}
			rows, err := resolve(s.rows, s.line)
			if err != nil {
				return nil, err
			}
			cols, err := resolve(s.cols, s.line)
			if err != nil {
				return nil, err
			}
			k := kernels.Kernel{Op: kernels.OpInit, M: rows, N: cols, Init: s.gen.generator(genPhase)}
			genPhase++
			lp, err := src.Loop(fmt.Sprintf("Matrix Init (%dx%d)", rows, cols), k)
			if err != nil {
				return nil, err
			}
			axis := axisOf(s, dist.ByRow)
			b.AddNode("init_"+s.name, prog.NodeSpec{
				Kernel: k, Output: s.name, Axis: axis,
			}, lp)
			mats[s.name] = matInfo{rows: rows, cols: cols, line: s.line, axis: axis}

		case stmtExpr:
			if _, dup := mats[s.name]; dup {
				return nil, fmt.Errorf("frontend: line %d: matrix %q redefined", s.line, s.name)
			}
			if _, dup := params[s.name]; dup {
				return nil, fmt.Errorf("frontend: line %d: %q already names a param", s.line, s.name)
			}
			temps := 0
			// addBinary creates one computation node for l <op> r.
			addBinary := func(op opKind, leftName, rightName string, l, r matInfo, out string, axis dist.Axis, line int) (matInfo, error) {
				var k kernels.Kernel
				var rows, cols int
				var label string
				switch op {
				case opAdd, opSub:
					if l.rows != r.rows || l.cols != r.cols {
						return matInfo{}, fmt.Errorf("frontend: line %d: %w: shape mismatch %dx%d vs %dx%d",
							line, errs.ErrBadGraph, l.rows, l.cols, r.rows, r.cols)
					}
					rows, cols = l.rows, l.cols
					kop := kernels.OpAdd
					label = "add"
					if op == opSub {
						kop = kernels.OpSub
						label = "sub"
					}
					k = kernels.Kernel{Op: kop, M: rows, N: cols}
				case opMul:
					if l.cols != r.rows {
						return matInfo{}, fmt.Errorf("frontend: line %d: %w: inner dimensions %d vs %d", line, errs.ErrBadGraph, l.cols, r.rows)
					}
					rows, cols = l.rows, r.cols
					k = kernels.Kernel{Op: kernels.OpMul, M: rows, N: cols, K: l.cols}
					label = "mul"
				}
				costK := k
				calName := fmt.Sprintf("Matrix %s (%dx%d)", label, rows, cols)
				if costK.Op == kernels.OpSub {
					costK.Op = kernels.OpAdd // subtraction costs what addition costs
					calName = fmt.Sprintf("Matrix add (%dx%d)", rows, cols)
				}
				if axis == dist.ByGrid {
					costK.Grid = true
					calName += " grid"
				}
				lp, err := src.Loop(calName, costK)
				if err != nil {
					return matInfo{}, err
				}
				b.AddNode(label+"_"+out, prog.NodeSpec{
					Kernel: k, Inputs: []string{leftName, rightName}, Output: out, Axis: axis,
				}, lp)
				return matInfo{rows: rows, cols: cols, line: line, axis: axis}, nil
			}
			// emit lowers an expression tree, returning its array name.
			var emit func(e exprNode, isRoot bool) (string, matInfo, error)
			emit = func(e exprNode, isRoot bool) (string, matInfo, error) {
				switch v := e.(type) {
				case exprName:
					info, ok := mats[v.name]
					if !ok {
						return "", matInfo{}, fmt.Errorf("frontend: line %d: %w: undefined matrix %q", v.line, errs.ErrBadGraph, v.name)
					}
					return v.name, info, nil
				case exprBin:
					leftName, l, err := emit(v.l, false)
					if err != nil {
						return "", matInfo{}, err
					}
					rightName, r, err := emit(v.r, false)
					if err != nil {
						return "", matInfo{}, err
					}
					out := s.name
					axis := axisOf(s, l.axis)
					if !isRoot {
						temps++
						out = fmt.Sprintf("%s__t%d", s.name, temps)
						axis = l.axis // temporaries inherit the left operand's layout
					}
					info, err := addBinary(v.op, leftName, rightName, l, r, out, axis, v.line)
					if err != nil {
						return "", matInfo{}, err
					}
					mats[out] = info
					return out, info, nil
				default:
					return "", matInfo{}, fmt.Errorf("frontend: line %d: %w: unsupported expression", s.line, errs.ErrBadGraph)
				}
			}
			if _, _, err := emit(s.expr, true); err != nil {
				return nil, err
			}
		}
	}
	if len(mats) == 0 {
		return nil, fmt.Errorf("frontend: %w: program defines no matrices", errs.ErrBadGraph)
	}
	return b.Finish()
}
