// Package frontend compiles a small matrix-program language into an
// executable MDG program — the role PARADIGM's compiler front-end plays
// before the allocation and scheduling steps this repository reproduces
// (the paper's Step 1, for which the authors "do not have any methods
// developed yet" and cite Girkar-Polychronopoulos; this is the minimal
// equivalent for the regular matrix computations the paper targets).
//
// The language:
//
//	# comments run to end of line
//	param n = 64                 # integer constants
//	matrix A = init(n, n, ramp)  # generators: ramp | wave | ones | ident
//	matrix B = init(n, n, wave)
//	matrix C = A * B @ col       # optional distribution axis (default row)
//	matrix D = C + A
//	matrix E = D - B
//
// Each `matrix` statement becomes one MDG node (a loop nest); data
// dependences become edges with transfer kinds derived from the operand
// axes. The result is a prog.Program ready for the full pipeline.
package frontend

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokEquals
	tokLParen
	tokRParen
	tokComma
	tokPlus
	tokMinus
	tokStar
	tokAt
	tokNewline
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokEquals:
		return "'='"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokAt:
		return "'@'"
	case tokNewline:
		return "newline"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// token is one lexeme with its source line (1-based).
type token struct {
	kind tokenKind
	text string
	line int
}

// lex splits source text into tokens. Newlines are significant (they
// terminate statements); comments and blank lines are skipped.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	emit := func(k tokenKind, text string) {
		toks = append(toks, token{kind: k, text: text, line: line})
	}
	lastWasNewline := true // collapse leading/duplicate newlines
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			if !lastWasNewline {
				emit(tokNewline, "\\n")
				lastWasNewline = true
			}
			line++
			i++
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			continue
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			continue
		}
		lastWasNewline = false
		switch {
		case c == '=':
			emit(tokEquals, "=")
			i++
		case c == '(':
			emit(tokLParen, "(")
			i++
		case c == ')':
			emit(tokRParen, ")")
			i++
		case c == ',':
			emit(tokComma, ",")
			i++
		case c == '+':
			emit(tokPlus, "+")
			i++
		case c == '-':
			emit(tokMinus, "-")
			i++
		case c == '*':
			emit(tokStar, "*")
			i++
		case c == '@':
			emit(tokAt, "@")
			i++
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			emit(tokNumber, src[i:j])
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			emit(tokIdent, src[i:j])
			i = j
		default:
			return nil, fmt.Errorf("frontend: line %d: unexpected character %q", line, string(c))
		}
	}
	if len(toks) > 0 && toks[len(toks)-1].kind != tokNewline {
		emit(tokNewline, "\\n")
	}
	emit(tokEOF, "")
	return toks, nil
}

// describe renders a token for error messages.
func describe(t token) string {
	if t.kind == tokIdent || t.kind == tokNumber {
		return fmt.Sprintf("%s %q", t.kind, t.text)
	}
	return t.kind.String()
}

// isKeyword reports reserved words that cannot name matrices or params.
func isKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "param", "matrix", "init", "row", "col", "grid", "ramp", "wave", "ones", "ident":
		return true
	}
	return false
}
